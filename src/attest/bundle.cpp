#include "attest/bundle.h"

#include "common/serde.h"
#include "crypto/chacha20.h"

namespace recipe::attest {

std::string channel_secret_name(NodeId a, NodeId b) {
  const std::uint64_t lo = std::min(a.value, b.value);
  const std::uint64_t hi = std::max(a.value, b.value);
  return "chan/" + std::to_string(lo) + ":" + std::to_string(hi);
}

Bytes SecretsBundle::serialize() const {
  Writer w;
  w.id(assigned_id);
  w.u32(static_cast<std::uint32_t>(membership.size()));
  for (NodeId n : membership) w.id(n);
  w.u32(static_cast<std::uint32_t>(channel_keys.size()));
  for (const auto& [peer, key] : channel_keys) {
    w.id(peer);
    w.bytes(key.view());
  }
  w.boolean(confidentiality);
  w.bytes(value_key.view());
  w.bytes(root_key.view());
  return std::move(w).take();
}

Result<SecretsBundle> SecretsBundle::parse(BytesView data) {
  Reader r(data);
  SecretsBundle bundle;
  auto id = r.id<NodeId>();
  auto n_members = r.u32();
  if (!id || !n_members) {
    return Status::error(ErrorCode::kInvalidArgument, "truncated bundle");
  }
  bundle.assigned_id = *id;
  for (std::uint32_t i = 0; i < *n_members; ++i) {
    auto m = r.id<NodeId>();
    if (!m) return Status::error(ErrorCode::kInvalidArgument,
                                 "truncated bundle");
    bundle.membership.push_back(*m);
  }
  auto n_keys = r.u32();
  if (!n_keys) return Status::error(ErrorCode::kInvalidArgument,
                                    "truncated bundle");
  for (std::uint32_t i = 0; i < *n_keys; ++i) {
    auto peer = r.id<NodeId>();
    auto key = r.bytes();
    if (!peer || !key) {
      return Status::error(ErrorCode::kInvalidArgument, "truncated bundle");
    }
    bundle.channel_keys.emplace_back(*peer,
                                     crypto::SymmetricKey{std::move(*key)});
  }
  auto conf = r.boolean();
  auto vkey = r.bytes();
  auto rkey = r.bytes();
  if (!conf || !vkey || !rkey) {
    return Status::error(ErrorCode::kInvalidArgument, "truncated bundle");
  }
  bundle.confidentiality = *conf;
  bundle.value_key = crypto::SymmetricKey{std::move(*vkey)};
  bundle.root_key = crypto::SymmetricKey{std::move(*rkey)};
  return bundle;
}

Bytes seal_bundle(const SecretsBundle& bundle, const crypto::SymmetricKey& key,
                  std::uint64_t nonce_counter) {
  Bytes plaintext = bundle.serialize();
  const auto nonce = crypto::make_nonce(0x4341u /*"CA"*/, nonce_counter);
  crypto::chacha20_xor(key.view(), nonce, 0, plaintext);

  Writer w;
  w.u64(nonce_counter);
  w.bytes(as_view(plaintext));
  const crypto::Mac mac = crypto::hmac_sha256(key.view(), as_view(w.buffer()));
  w.raw(BytesView(mac.data(), mac.size()));
  return std::move(w).take();
}

Result<ProvisionInfo> open_and_install_bundle(tee::Enclave& enclave,
                                              std::uint64_t challenger_dh_pub,
                                              BytesView sealed,
                                              BytesView context) {
  auto key = enclave.dh_shared_key(challenger_dh_pub, context);
  if (!key) return key.status();

  if (sealed.size() < crypto::kMacSize) {
    return Status::error(ErrorCode::kInvalidArgument, "short sealed bundle");
  }
  const BytesView body = sealed.first(sealed.size() - crypto::kMacSize);
  const BytesView mac = sealed.last(crypto::kMacSize);
  if (!crypto::hmac_verify(key.value().view(), body, mac)) {
    return Status::error(ErrorCode::kAuthFailed, "bundle MAC mismatch");
  }

  Reader r(body);
  auto nonce_counter = r.u64();
  auto ciphertext = r.bytes();
  if (!nonce_counter || !ciphertext) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "truncated sealed bundle");
  }
  const auto nonce = crypto::make_nonce(0x4341u, *nonce_counter);
  crypto::chacha20_xor(key.value().view(), nonce, 0, *ciphertext);

  auto bundle = SecretsBundle::parse(as_view(*ciphertext));
  if (!bundle) return bundle.status();

  // Install secrets inside the enclave.
  for (auto& [peer, chan_key] : bundle.value().channel_keys) {
    const Status st = enclave.install_secret(
        channel_secret_name(bundle.value().assigned_id,
                            peer), std::move(chan_key));
    if (!st.is_ok()) return st;
  }
  if (bundle.value().confidentiality) {
    const Status st =
        enclave.install_secret(kValueKeyName,
                               std::move(bundle.value().value_key));
    if (!st.is_ok()) return st;
  }
  if (!bundle.value().root_key.empty()) {
    const Status st = enclave.install_secret(
        kClusterRootName, std::move(bundle.value().root_key));
    if (!st.is_ok()) return st;
  }

  ProvisionInfo info;
  info.assigned_id = bundle.value().assigned_id;
  info.membership = std::move(bundle.value().membership);
  info.confidentiality = bundle.value().confidentiality;
  return info;
}

}  // namespace recipe::attest
