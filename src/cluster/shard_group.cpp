#include "cluster/shard_group.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/registry.h"
#include "recipe/recovery.h"

namespace recipe::cluster {

Result<std::unique_ptr<ShardGroup>> ShardGroup::create(
    sim::Simulator& simulator, net::SimNetwork& network,
    tee::TeePlatform& platform, ShardGroupOptions options) {
  const ProtocolFactory* factory =
      ProtocolRegistry::instance().find(options.protocol);
  if (factory == nullptr) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "unknown protocol: " + options.protocol);
  }
  if (options.num_replicas == 0) {
    return Status::error(ErrorCode::kInvalidArgument, "empty shard group");
  }

  auto group = std::unique_ptr<ShardGroup>(
      new ShardGroup(simulator, network, std::move(options)));
  const ShardGroupOptions& opts = group->options_;

  for (std::size_t i = 0; i < opts.num_replicas; ++i) {
    group->membership_.push_back(NodeId{opts.base_id + i});
  }
  for (NodeId id : group->membership_) {
    // SimNetwork::attach silently replaces an existing endpoint, which
    // would hijack a live node's traffic — refuse the collision instead.
    if (network.attached(id)) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "NodeId " + std::to_string(id.value) +
                               " already attached; shard id ranges collide");
    }
    auto enclave =
        std::make_unique<tee::Enclave>(platform, "recipe-replica", id.value);
    if (opts.secured) {
      auto installed = enclave->install_secret(attest::kClusterRootName,
                                               opts.root);
      if (!installed.is_ok()) return installed;
      if (opts.confidentiality) {
        installed = enclave->install_secret(attest::kValueKeyName,
                                            opts.value_key);
        if (!installed.is_ok()) return installed;
      }
    }

    ReplicaOptions replica_options;
    replica_options.self = id;
    replica_options.membership = group->membership_;
    replica_options.secured = opts.secured;
    replica_options.confidentiality = opts.confidentiality;
    replica_options.enclave = enclave.get();
    replica_options.cost_model = opts.cost_model;
    replica_options.heartbeat_period = opts.heartbeat_period;
    replica_options.stack = opts.secured
                                ? net::NetStackParams::direct_io_tee()
                                : net::NetStackParams::direct_io_native();
    if (opts.confidentiality) {
      replica_options.kv_config.value_encryption_key = opts.value_key;
    }

    group->replicas_.push_back(
        (*factory)(simulator, network, std::move(replica_options)));
    group->enclaves_.push_back(std::move(enclave));
  }
  for (auto& replica : group->replicas_) replica->start();
  return group;
}

void ShardGroup::stop() {
  for (auto& replica : replicas_) {
    if (replica->running()) replica->stop();
  }
}

void ShardGroup::stop_replica(std::size_t i) {
  if (i < replicas_.size() && replicas_[i]->running()) replicas_[i]->stop();
}

void ShardGroup::recover_replica(
    std::size_t i, std::function<void(Result<std::size_t>)> done) {
  if (i >= replicas_.size()) {
    done(Status::error(ErrorCode::kInvalidArgument, "no such replica"));
    return;
  }
  ReplicaNode& node = *replicas_[i];
  tee::Enclave& enclave = *enclaves_[i];
  if (node.running()) {
    done(Status::error(ErrorCode::kAlreadyExists, "replica is running"));
    return;
  }

  // Fresh enclave + pre-attested re-provisioning (the group stands in for
  // the CAS: it holds the cluster root, exactly like the bootstrap path).
  // The machine reboot also emptied the host process.
  enclave.restart();
  node.wipe_state();
  if (options_.secured) {
    auto installed = enclave.install_secret(attest::kClusterRootName,
                                            options_.root);
    if (!installed.is_ok()) {
      done(installed);
      return;
    }
    if (options_.confidentiality) {
      installed = enclave.install_secret(attest::kValueKeyName,
                                         options_.value_key);
      if (!installed.is_ok()) {
        done(installed);
        return;
      }
    }
  }
  // The fast-path analog of the CAS fresh-node notice: every peer resets
  // the rejoiner's channel counters and replay window.
  for (auto& peer : replicas_) {
    if (peer.get() != &node && peer->running()) {
      peer->security().reset_peer(node.self());
    }
  }

  // Donor: any active peer (nullopt when the rest of the group is down).
  ReplicaNode* donor = nullptr;
  for (auto& peer : replicas_) {
    if (peer.get() != &node && peer->active()) {
      donor = peer.get();
      break;
    }
  }
  if (donor == nullptr) {
    done(Status::error(ErrorCode::kUnavailable, "no active donor replica"));
    return;
  }

  node.start_as_shadow();
  node.catch_up_from(
      donor->self(), [this, &node, done](Result<std::size_t> streamed) {
        if (!streamed) {
          done(streamed.status());
          return;
        }
        // Promote as soon as the protocol agrees (Raft waits for its log
        // backfill); same poll cadence as the RejoinDriver defaults.
        const RejoinOptions defaults;
        await_promotion(simulator_, node, defaults.promote_poll,
                        defaults.max_promote_polls,
                        [done, streamed](bool promoted) {
                          if (!promoted) {
                            done(Status::error(ErrorCode::kTimeout,
                                               "replica stuck in shadow"));
                            return;
                          }
                          done(streamed.value());
                        });
      });
}

NodeId ShardGroup::write_coordinator() const {
  for (const auto& replica : replicas_) {
    if (replica->active() && replica->coordinates_writes()) {
      return replica->self();
    }
  }
  return membership_.front();
}

NodeId ShardGroup::read_replica(std::uint64_t hint) const {
  std::vector<NodeId> eligible;
  for (const auto& replica : replicas_) {
    if (replica->active() && replica->coordinates_reads()) {
      eligible.push_back(replica->self());
    }
  }
  if (eligible.empty()) return membership_.front();
  return eligible[hint % eligible.size()];
}

void ShardGroup::pull_state_from(
    ShardGroup& donor,
    std::function<void(std::size_t installed, std::size_t errors)> done) {
  // One fetch per (active receiver, active donor-replica) pair; completion
  // fires `done`. Crashed endpoints are skipped up front — a send to one
  // would silently never call back (the shield fails before anything hits
  // the wire) and the handoff would stall. Shadows are skipped on both
  // sides: as donors their state is incomplete (they also refuse
  // kStateFetch), and as receivers they get their state through their own
  // catch-up stream.
  std::vector<ReplicaNode*> receivers;
  for (auto& replica : replicas_) {
    if (replica->active()) receivers.push_back(replica.get());
  }
  std::vector<NodeId> sources;
  for (std::size_t i = 0; i < donor.size(); ++i) {
    if (donor.replica(i).active()) sources.push_back(donor.replica(i).self());
  }

  struct Progress {
    std::size_t outstanding{0};
    std::size_t installed{0};
    std::size_t errors{0};
    std::function<void(std::size_t, std::size_t)> done;
  };
  auto progress = std::make_shared<Progress>();
  progress->done = std::move(done);
  progress->outstanding = receivers.size() * sources.size();
  if (progress->outstanding == 0) {
    progress->done(0, 0);
    return;
  }
  for (ReplicaNode* replica : receivers) {
    for (NodeId source : sources) {
      replica->sync_state_from(source, [progress](Result<std::size_t> r) {
        if (r.is_ok()) {
          progress->installed += r.value();
        } else {
          ++progress->errors;
        }
        if (--progress->outstanding == 0) {
          progress->done(progress->installed, progress->errors);
        }
      });
    }
  }
}

std::size_t ShardGroup::prune_keys(
    const std::function<bool(std::string_view)>& pred) {
  // The predicate can be expensive (ring hash + cross-shard ownership
  // probe), so evaluate it once per distinct key across the group, then
  // erase everywhere.
  std::set<std::string, std::less<>> keys;
  for (auto& replica : replicas_) {
    replica->kv().scan([&](std::string_view key, const kv::Timestamp&) {
      keys.emplace(key);
      return true;
    });
  }
  std::vector<std::string> doomed;
  for (const std::string& key : keys) {
    if (pred(key)) doomed.push_back(key);
  }
  std::size_t erased_on_first = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    for (const std::string& key : doomed) {
      if (replicas_[i]->kv().erase(key) && i == 0) ++erased_on_first;
    }
  }
  return erased_on_first;
}

bool ShardGroup::holds_key(std::string_view key) {
  bool any_running = false;
  for (auto& replica : replicas_) {
    if (!replica->running()) continue;
    any_running = true;
    if (!replica->kv().contains(key)) return false;
  }
  return any_running;
}

std::size_t ShardGroup::keys() {
  const NodeId reader = read_replica();
  for (auto& replica : replicas_) {
    if (replica->self() == reader) return replica->kv().size();
  }
  return replicas_.front()->kv().size();
}

std::uint64_t ShardGroup::committed_ops() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->committed_ops();
  return total;
}

}  // namespace recipe::cluster
