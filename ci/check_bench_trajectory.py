#!/usr/bin/env python3
"""Bench-trajectory gate: fail CI when a freshly produced bench JSON regresses
its headline metrics by more than the allowed fraction against the committed
baseline.

Usage:
  ci/check_bench_trajectory.py \
      --baseline BENCH_shield_verify.json --fresh fresh/BENCH_shield_verify.json \
      --baseline BENCH_batching.json      --fresh fresh/BENCH_batching.json \
      [--max-regression 0.25]

--baseline/--fresh are paired positionally (first baseline vs first fresh,
and so on). Each file's "bench" field selects its headline-metric extractor.
Improvements and noise up to the threshold pass; a >threshold drop on ANY
headline metric fails with a table of every metric. Baseline metrics missing
from the fresh file fail too (a silently dropped metric is a regression).

Injecting a synthetic regression to prove the gate bites:
  python3 - <<'EOF'
  import json; d = json.load(open('BENCH_batching.json'))
  for row in d['seam']: row['msgs_per_sec'] = int(row['msgs_per_sec'] * 0.5)
  json.dump(d, open('fresh/BENCH_batching.json', 'w'))
  EOF
  ci/check_bench_trajectory.py --baseline BENCH_batching.json \
      --fresh fresh/BENCH_batching.json  # exits 1
"""

import argparse
import json
import sys


def shield_verify_headline(doc):
    """Headline: the fast-vs-pre_pr speedup per config. Ratios are
    machine-relative, so the gate survives CI runners slower or faster than
    the box that produced the committed baseline; absolute pairs/sec would
    flag every hardware change as a regression."""
    out = {}
    for row in doc.get("speedup_fast_over_pre_pr", []):
        key = f"speedup {row['mode']} {row['payload_bytes']}B fast/pre_pr"
        out[key] = float(row["ratio"])
    return out


def batching_headline(doc):
    """Headline: batched-vs-unbatched seam speedups (machine-relative) plus
    the protocol testbed ops/sec — the latter run on the deterministic
    simulator, so they are machine-independent and gate tightly. The 2x
    acceptance flag must stay true."""
    out = {}
    for row in doc.get("seam_speedup_vs_unbatched", []):
        key = (f"seam speedup {row['mode']} {row['payload_bytes']}B "
               f"batch{row['batch_size']}")
        out[key] = float(row["ratio"])
    for row in doc.get("protocols", []):
        mode = "batched" if row.get("batched") else "unbatched"
        out[f"protocol {row['protocol']} {mode} ops/sec"] = float(
            row["ops_per_sec"])
    out["acceptance_2x_at_batch16_small"] = (
        1.0 if doc.get("acceptance_2x_at_batch16_small") else 0.0)
    return out


def transport_headline(doc):
    """Headline: the acceptance boolean (every loopback config completed its
    full op count with zero failed ops) plus a HARD floor on the staged
    egress pipeline's batching speedup. batched_over_unbatched_shielded is a
    same-machine, same-run ratio (best-of-N trials of each config), so
    unlike the absolute throughput/latency numbers — which stay in the JSON
    as telemetry, ungated — it is robust to whatever runner CI lands on and
    must never fall below 1.5x. The floor is encoded as a boolean metric so
    the generic regression threshold cannot soften it.

    The shard-scaling sweep contributes ONLY its acceptance boolean: the
    bench already compares the 8-shard/1-shard speedup against a floor
    derived from the cores of the machine that ran it, so re-gating the raw
    speedup here would double-judge a machine-dependent number with a
    machine-independent threshold. (Absent on pre-sweep baselines: gated
    once the committed baseline carries the section.)

    The obs_overhead section likewise contributes only its acceptance
    boolean: the bench already compares metrics-on vs metrics-off throughput
    of the same config in the same run against the 3% ceiling, a
    same-machine ratio. (Absent on pre-observability baselines.)"""
    out = {
        "acceptance_all_configs_ok": (
            1.0 if doc.get("acceptance_all_configs_ok") else 0.0),
        "hard_floor_batched_over_unbatched_shielded_1.5": (
            1.0
            if float(doc.get("batched_over_unbatched_shielded", 0.0)) >= 1.5
            else 0.0),
    }
    scaling = doc.get("scaling")
    if scaling is not None:
        out["acceptance_shard_scaling_ok"] = (
            1.0 if scaling.get("acceptance_shard_scaling_ok") else 0.0)
    obs = doc.get("obs_overhead")
    if obs is not None:
        out["acceptance_obs_overhead_ok"] = (
            1.0 if obs.get("acceptance_obs_overhead_ok") else 0.0)
    return out


def durability_headline(doc):
    """Headline: recovery-time-vs-write-volume and group-commit
    amortization, both same-run machine-relative ratios (absolute
    entries/sec stay in the JSON as ungated telemetry). The acceptance
    booleans — exact idempotent warm replay, the 1.2x amortization floor
    and the linear-restart-cost floor — are hard: encoded as 0/1 metrics so
    the generic regression threshold cannot soften them."""
    return {
        "group-commit amortization 16/1": float(
            doc.get("group16_over_group1", 0.0)),
        "replay throughput 40k/10k": float(
            doc.get("replay_tput_40k_over_10k", 0.0)),
        "acceptance_warm_replay_exact": (
            1.0 if doc.get("acceptance_warm_replay_exact") else 0.0),
        "hard_floor_group_commit_amortizes_1.2": (
            1.0 if doc.get("acceptance_group_commit_amortizes") else 0.0),
        "hard_floor_replay_scales_linearly": (
            1.0 if doc.get("acceptance_replay_scales_linearly") else 0.0),
    }


EXTRACTORS = {
    "shield_verify": shield_verify_headline,
    "batching": batching_headline,
    "transport": transport_headline,
    "durability": durability_headline,
}


def report_chaos(doc):
    """Chaos-run telemetry is printed for trend-watching but NEVER gated:
    fault injection makes throughput a weather report, not a capability
    claim, so a drop here must not fail CI. The seed is echoed so a curious
    reader can replay the exact run with RECIPE_TEST_SEED=<seed>."""
    chaos = doc.get("chaos")
    if not chaos:
        return
    print(f"info  chaos (ungated): seed={chaos.get('seed')} "
          f"ops={chaos.get('ops')} ops/sec={chaos.get('ops_per_sec', 0):.0f} "
          f"failed={chaos.get('failed')} dropped={chaos.get('dropped')} "
          f"duplicated={chaos.get('duplicated')} "
          f"reordered={chaos.get('reordered')} delayed={chaos.get('delayed')}")


def load(path):
    with open(path) as f:
        return json.load(f)


def check_pair(baseline_path, fresh_path, max_regression):
    baseline = load(baseline_path)
    fresh = load(fresh_path)
    bench = baseline.get("bench")
    if bench != fresh.get("bench"):
        print(f"FAIL  {fresh_path}: bench kind {fresh.get('bench')!r} != "
              f"baseline {bench!r}")
        return False
    extractor = EXTRACTORS.get(bench)
    if extractor is None:
        print(f"FAIL  {baseline_path}: no headline extractor for {bench!r}")
        return False

    base_metrics = extractor(baseline)
    fresh_metrics = extractor(fresh)
    ok = True
    print(f"== {bench}: {fresh_path} vs baseline {baseline_path} "
          f"(allowed regression {max_regression:.0%})")
    for name, base_value in sorted(base_metrics.items()):
        fresh_value = fresh_metrics.get(name)
        if fresh_value is None:
            print(f"FAIL  {name}: missing from fresh results")
            ok = False
            continue
        if base_value <= 0:
            continue  # nothing to gate against
        ratio = fresh_value / base_value
        verdict = "ok  " if ratio >= 1.0 - max_regression else "FAIL"
        if verdict == "FAIL":
            ok = False
        print(f"{verdict}  {name}: {fresh_value:.0f} vs {base_value:.0f} "
              f"({ratio:.2f}x)")
    report_chaos(fresh)
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", action="append", required=True)
    parser.add_argument("--fresh", action="append", required=True)
    parser.add_argument("--max-regression", type=float, default=0.25)
    args = parser.parse_args()
    if len(args.baseline) != len(args.fresh):
        parser.error("--baseline and --fresh must be paired")

    ok = True
    for baseline_path, fresh_path in zip(args.baseline, args.fresh):
        ok = check_pair(baseline_path, fresh_path, args.max_regression) and ok
    if not ok:
        print("bench-trajectory gate: REGRESSION over threshold")
        return 1
    print("bench-trajectory gate: all headline metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
