// Byzantine-behaviour tests: a Dolev-Yao network adversary and a corrupting
// host attack the cluster. R- (Recipe) protocols must preserve safety;
// the same attacks demonstrably corrupt the NATIVE CFT runs — the paper's
// core motivation (§1, §4.1).
#include <gtest/gtest.h>

#include "cluster_harness.h"
#include "protocols/abd/abd.h"
#include "protocols/raft/raft.h"
#include "recipe/message.h"

namespace recipe::protocols {
namespace {

using testing::Cluster;

// RPC wire framing helpers (the adversary sits below the RPC layer):
// [kind u8][request type u32][rpc id u64][payload bytes].
struct RpcFrame {
  std::uint8_t kind;
  std::uint32_t type;
  std::uint64_t rpc_id;
  Bytes payload;
};

std::optional<RpcFrame> unwrap_rpc(BytesView wire) {
  Reader r(wire);
  auto kind = r.u8();
  auto type = r.u32();
  auto rpc_id = r.u64();
  auto payload = r.bytes();
  if (!kind || !type || !rpc_id || !payload) return std::nullopt;
  return RpcFrame{*kind, *type, *rpc_id, std::move(*payload)};
}

Bytes wrap_rpc(const RpcFrame& frame) {
  Writer w;
  w.u8(frame.kind);
  w.u32(frame.type);
  w.u64(frame.rpc_id);
  w.bytes(as_view(frame.payload));
  return std::move(w).take();
}

// --- Network tampering ----------------------------------------------------------

TEST(Byzantine, TamperedReplicationTrafficDroppedUnderRecipe) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();

  // The adversary flips a byte in every inter-replica packet payload.
  std::uint64_t tampered = 0;
  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value <= 3 && p.dst.value <= 3 && !p.payload.empty()) {
      action.kind = net::AdversaryAction::Kind::kTamper;
      action.payload = p.payload;
      action.payload[action.payload.size() / 2] ^= 0x40;
      ++tampered;
    }
    return action;
  });

  // With every replica->replica packet corrupted, writes cannot gather a
  // remote quorum -> the system must refuse (timeout), never accept bad data.
  bool completed_ok = false;
  client.put(NodeId{1}, "k", to_bytes("v"),
             [&](const ClientReply& r) { completed_ok = r.ok; });
  cluster.run_for(5 * sim::kSecond);
  EXPECT_GT(tampered, 0u);
  EXPECT_FALSE(completed_ok);

  // No replica ever stored a corrupted value.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto v = cluster.node(i).kv().get("k");
    if (v.is_ok()) {
      EXPECT_EQ(to_string(as_view(v.value().value)), "v");
    }
  }
}

TEST(Byzantine, SelectiveTamperingToleratedByQuorum) {
  // Adversary corrupts only traffic towards replica 3: the quorum {1,2}
  // still commits, replica 3 rejects everything corrupted.
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();

  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.dst == NodeId{3} && p.src.value <= 3 && !p.payload.empty()) {
      action.kind = net::AdversaryAction::Kind::kTamper;
      action.payload = p.payload;
      action.payload[0] ^= 0xFF;
    }
    return action;
  });

  EXPECT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{2}, "k").value)), "v");
  EXPECT_FALSE(cluster.node(2).kv().contains("k"));  // everything to 3 was junk
}

TEST(Byzantine, NativeCftAcceptsTamperedTraffic) {
  // The same attack against the NATIVE protocol succeeds: followers accept
  // and store attacker-chosen bytes. This is the vulnerability Recipe fixes.
  Cluster<AbdNode>::Config config;
  config.secured = false;
  Cluster<AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();

  const Bytes evil = to_bytes("EVIL");
  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    // Replace the value inside replica->replica PUT payloads; with framing-
    // only security the receiver cannot tell.
    if (p.src.value > 3 || p.dst.value > 3) return action;
    auto frame = unwrap_rpc(as_view(p.payload));
    if (!frame || frame->type != abd_msg::kPut) return action;
    auto msg = ShieldedMessage::parse(as_view(frame->payload));
    if (!msg.is_ok()) return action;
    Reader r(as_view(msg.value().payload));
    auto key = r.str();
    auto value = r.bytes();
    if (!key || !value || *key != "k" || value->empty()) return action;
    Writer w;
    w.str(*key);
    w.bytes(as_view(evil));
    auto tail = r.raw(r.remaining());
    w.raw(as_view(*tail));
    msg.value().payload = std::move(w).take();
    frame->payload = msg.value().serialize();
    action.kind = net::AdversaryAction::Kind::kReplace;
    action.payload = wrap_rpc(*frame);
    return action;
  });

  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "honest").ok);
  // At least one follower stored the attacker's value.
  bool corrupted = false;
  for (std::size_t i = 1; i < cluster.size(); ++i) {
    auto v = cluster.node(i).kv().get("k");
    if (v.is_ok() && v.value().value == evil) corrupted = true;
  }
  EXPECT_TRUE(corrupted) << "native CFT should be corruptible (sanity check "
                            "that the attack itself works)";
}

// --- Replay ----------------------------------------------------------------------

TEST(Byzantine, ReplayedPacketsRejectedUnderRecipe) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();

  // Replay every replica-to-replica packet once.
  cluster.network().set_adversary([](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value <= 3 && p.dst.value <= 3) action.injected.push_back(p);
    return action;
  });

  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v1").ok);
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v2").ok);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{2}, "k").value)), "v2");

  // The replicas observed and rejected replays.
  std::uint64_t replays = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& sec = dynamic_cast<RecipeSecurity&>(cluster.node(i).security());
    replays += sec.rejected_replay();
  }
  EXPECT_GT(replays, 0u);
}

TEST(Byzantine, ReplayedClientRequestExecutesExactlyOnce) {
  Cluster<RaftNode> cluster;
  RaftOptions raft;
  raft.initial_leader = NodeId{1};
  cluster.build(raft);
  auto& client = cluster.add_client();

  // Replay every client->replica packet 3 times.
  cluster.network().set_adversary([](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value >= 2000 && p.dst.value <= 3) {
      for (int i = 0; i < 3; ++i) action.injected.push_back(p);
    }
    return action;
  });

  ASSERT_TRUE(cluster.put(client, NodeId{1}, "counter", "1").ok);
  cluster.run_for(sim::kSecond);
  // Exactly one commit despite 4 deliveries of the same request.
  EXPECT_EQ(cluster.node(0).committed_ops(), 1u);
}

// --- Forgery / impersonation --------------------------------------------------------

TEST(Byzantine, ForgedLeaderMessagesIgnored) {
  // The adversary injects fabricated "AppendEntries" packets claiming to be
  // from the leader. Without channel keys the MAC cannot be produced.
  Cluster<RaftNode> cluster;
  RaftOptions raft;
  raft.initial_leader = NodeId{1};
  cluster.build(raft);
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "good").ok);

  ShieldedMessage forged;
  forged.header.view = ViewId{1};
  forged.header.cq = directed_channel(NodeId{1}, NodeId{2});
  forged.header.cnt = 999;
  forged.header.sender = NodeId{1};
  forged.header.receiver = NodeId{2};
  forged.payload = to_bytes("malicious append");
  forged.mac = Bytes(32, 0xAB);

  // Wrap it like an RPC request of the Raft append type and inject.
  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value >= 2000) {  // piggyback on client traffic for timing
      net::Packet evil;
      evil.src = NodeId{1};
      evil.dst = NodeId{2};
      evil.type = p.type;
      evil.payload = wrap_rpc(RpcFrame{/*kind=request*/ 1, raft_msg::kAppend,
                                       424242, forged.serialize()});
      action.injected.push_back(std::move(evil));
    }
    return action;
  });

  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k2", "alsogood").ok);
  cluster.run_for(sim::kSecond);
  auto& follower_security =
      dynamic_cast<RecipeSecurity&>(cluster.node(1).security());
  EXPECT_GT(follower_security.rejected_auth(), 0u);
  // Replicated state is unaffected.
  EXPECT_EQ(to_string(as_view(cluster.node(1).kv().get("k").value().value)),
            "good");
}

TEST(Byzantine, ClientImpersonationRejected) {
  // A malicious client (with its own valid keys) cannot speak for another
  // client id: the channel binds the sender identity.
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& mallory = cluster.add_client(2001);

  // Mallory crafts a request claiming client id 2002.
  ClientRequest forged;
  forged.client = ClientId{2002};
  forged.rid = RequestId{1};
  forged.op = OpType::kPut;
  forged.key = "victim-key";
  forged.value = to_bytes("ownage");

  // Encode through Mallory's own channel (the only keys she has).
  bool replied = false;
  mallory.put(NodeId{1}, "my-key", to_bytes("fine"),
              [&](const ClientReply&) { replied = true; });
  cluster.run_for(sim::kSecond);
  ASSERT_TRUE(replied);

  // Direct injection: shield with Mallory's key but lie in the payload.
  auto& sec = cluster.node(0).security();
  (void)sec;
  tee::Enclave mallory_enclave(cluster.platform(), "recipe-client", 555);
  ASSERT_TRUE(mallory_enclave
                  .install_secret(attest::kClusterRootName, cluster.root())
                  .is_ok());
  RecipeSecurity mallory_sec(mallory_enclave, NodeId{2001}, nullptr, nullptr, {});
  auto wire = mallory_sec.shield(NodeId{1}, ViewId{0},
                                 as_view(forged.serialize()));
  ASSERT_TRUE(wire.is_ok());

  rpc::RpcObject injector(cluster.sim(), cluster.network(), NodeId{2001},
                          net::NetStackParams::direct_io_native());
  injector.send(NodeId{1}, msg::kClientRequest, wire.value());
  cluster.run_for(sim::kSecond);

  EXPECT_FALSE(cluster.node(0).kv().contains("victim-key"));
}

// --- Byzantine host memory ------------------------------------------------------------

TEST(Byzantine, HostMemoryCorruptionDetectedOnLocalRead) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);

  // The Byzantine host of replica 1 scribbles over the stored value.
  auto ptr = cluster.node(0).kv().host_ptr("k");
  ASSERT_TRUE(ptr.has_value());
  ASSERT_TRUE(cluster.node(0).kv().host_arena().corrupt(*ptr).is_ok());

  // Replica 1 detects the violation; the read via another coordinator that
  // consults the quorum still returns the correct value.
  EXPECT_EQ(cluster.node(0).kv().get("k").code(),
            ErrorCode::kIntegrityViolation);
  auto get = cluster.get(client, NodeId{2}, "k");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(to_string(as_view(get.value)), "v");
}

// --- Crash-only TEEs -----------------------------------------------------------------

TEST(Byzantine, CrashedEnclaveCannotEquivocateOrSend) {
  Cluster<AbdNode> cluster;
  cluster.build();
  cluster.enclave(0).crash();
  // The node's host may still be up, but nothing shieldable leaves it: a
  // put coordinated elsewhere succeeds with the remaining majority.
  auto& client = cluster.add_client();
  EXPECT_TRUE(cluster.put(client, NodeId{2}, "k", "v").ok);
  EXPECT_FALSE(cluster.node(0).kv().contains("k"));
}

}  // namespace
}  // namespace recipe::protocols
