// TcpTransport tests: real loopback sockets under the Transport interface —
// echo RPC across two event loops, stream reassembly of large frames,
// backpressure, multi-endpoint local delivery, crash/recover semantics, and
// the degradation machinery (dial backoff, egress shedding, EMFILE
// accept-shed, byte-paced trickle, injected resets).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "recipe/client.h"
#include "rpc/rpc.h"
#include "transport/tcp_transport.h"

namespace recipe::transport {
namespace {

constexpr rpc::RequestType kEcho = 1;
constexpr rpc::RequestType kSum = 2;

struct Peer {
  explicit Peer(NodeId id, TcpTransportOptions options = {})
      : id(id), transport(std::move(options)) {
    auto port = transport.listen(id, 0);
    EXPECT_TRUE(port.is_ok());
    listen_port = port.value();
  }
  ~Peer() {
    transport.run_sync([this] { rpc.reset(); });
  }

  void start() {
    transport.run_sync([this] {
      rpc = std::make_unique<rpc::RpcObject>(
          transport.clock(), transport, id,
          net::NetStackParams::direct_io_native());
      rpc->register_handler(kEcho, [](rpc::RequestContext& ctx) {
        ctx.respond(ctx.payload);
      });
    });
  }

  NodeId id;
  TcpTransport transport;
  std::uint16_t listen_port{0};
  std::unique_ptr<rpc::RpcObject> rpc;
};

TEST(TcpTransportTest, EchoAcrossTwoEventLoops) {
  Peer a{NodeId{1}};
  Peer b{NodeId{2}};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  auto done = std::make_shared<std::promise<Bytes>>();
  auto future = done->get_future();
  a.transport.run_sync([&] {
    a.rpc->send(b.id, kEcho, to_bytes("over real sockets"),
                [done](NodeId src, Bytes payload) {
                  EXPECT_EQ(src, NodeId{2});
                  done->set_value(std::move(payload));
                });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(to_string(as_view(future.get())), "over real sockets");
  EXPECT_GT(a.transport.packets_sent(), 0u);
  EXPECT_GT(b.transport.packets_delivered(), 0u);
}

// A payload far larger than one read()/write() chunk must reassemble across
// many partial reads (and exercise the backpressure path on the writer).
TEST(TcpTransportTest, LargePayloadReassembles) {
  Peer a{NodeId{1}};
  Peer b{NodeId{2}};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  Bytes big(3 * 1024 * 1024, 0);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }

  auto done = std::make_shared<std::promise<Bytes>>();
  auto future = done->get_future();
  a.transport.run_sync([&] {
    a.rpc->send(b.id, kEcho, big, [done](NodeId, Bytes payload) {
      done->set_value(std::move(payload));
    });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(future.get(), big);
}

TEST(TcpTransportTest, ManyRequestsAllComplete) {
  constexpr int kCount = 500;
  Peer a{NodeId{1}};
  Peer b{NodeId{2}};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  auto remaining = std::make_shared<int>(kCount);
  a.transport.run_sync([&] {
    for (int i = 0; i < kCount; ++i) {
      a.rpc->send(b.id, kEcho, to_bytes("r" + std::to_string(i)),
                  [done, remaining](NodeId, Bytes) {
                    if (--*remaining == 0) done->set_value();
                  });
    }
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);

  std::uint64_t responses = 0;
  a.transport.run_sync([&] { responses = a.rpc->responses_received(); });
  EXPECT_EQ(responses, static_cast<std::uint64_t>(kCount));
}

// Two endpoints sharing one transport reach each other without sockets, but
// with the same asynchronous delivery discipline.
TEST(TcpTransportTest, CoHostedEndpointsLoopBack) {
  TcpTransport shared;
  std::unique_ptr<rpc::RpcObject> one;
  std::unique_ptr<rpc::RpcObject> two;
  shared.run_sync([&] {
    one = std::make_unique<rpc::RpcObject>(
        shared.clock(), shared, NodeId{10},
        net::NetStackParams::direct_io_native());
    two = std::make_unique<rpc::RpcObject>(
        shared.clock(), shared, NodeId{20},
        net::NetStackParams::direct_io_native());
    two->register_handler(kSum, [](rpc::RequestContext& ctx) {
      ctx.respond(to_bytes("from co-hosted peer"));
    });
  });

  auto done = std::make_shared<std::promise<Bytes>>();
  auto future = done->get_future();
  shared.run_sync([&] {
    one->send(NodeId{20}, kSum, to_bytes("hi"),
              [done](NodeId, Bytes payload) {
                done->set_value(std::move(payload));
              });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(to_string(as_view(future.get())), "from co-hosted peer");

  shared.run_sync([&] {
    one.reset();
    two.reset();
  });
}

TEST(TcpTransportTest, SendWithoutRouteDropsSilently) {
  Peer a{NodeId{1}};
  a.start();

  bool timed_out = false;
  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  a.transport.run_sync([&] {
    a.rpc->send(NodeId{99}, kEcho, to_bytes("into the void"),
                [](NodeId, Bytes) { FAIL() << "no peer exists"; },
                /*timeout=*/30 * sim::kMillisecond,
                [&timed_out, done] {
                  timed_out = true;
                  done->set_value();
                });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_TRUE(timed_out);
  EXPECT_GT(a.transport.packets_dropped(), 0u);
}

// A deliberately tiny SO_SNDBUF makes every sendmsg() stop short: the
// egress queue (many frames deep, each its own iovec chain) can only drain
// through repeated partial writes and EAGAIN -> EPOLLOUT resumptions, with
// the short write routinely landing MID-frame and MID-iovec. Every payload
// carries its own byte pattern, so any slip in the resumption offset — a
// repeated chunk, a skipped chunk, a frame spliced into its neighbor —
// corrupts a length prefix or a pattern and fails loudly.
TEST(TcpTransportTest, TinySndbufForcesPartialWriteResumption) {
  TcpTransportOptions tiny;
  tiny.so_sndbuf = 4096;  // kernel clamps to its floor; still << the queue
  Peer a{NodeId{1}, tiny};
  Peer b{NodeId{2}, tiny};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  constexpr int kCount = 120;
  constexpr std::size_t kPayload = 8 * 1024;  // > move threshold: own iovec
  auto pattern = [](int i) {
    Bytes p(kPayload, 0);
    for (std::size_t j = 0; j < p.size(); ++j) {
      p[j] = static_cast<std::uint8_t>(j * 31 + static_cast<std::size_t>(i));
    }
    return p;
  };

  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  auto remaining = std::make_shared<int>(kCount);
  auto mismatches = std::make_shared<int>(0);
  a.transport.run_sync([&] {
    for (int i = 0; i < kCount; ++i) {
      // All requests enqueue back-to-back on the loop thread: ~1 MB of
      // frames stack up behind a ~4 KB socket buffer.
      a.rpc->send(b.id, kEcho, pattern(i),
                  [done, remaining, mismatches, expected = pattern(i)](
                      NodeId, Bytes payload) {
                    if (payload != expected) ++*mismatches;
                    if (--*remaining == 0) done->set_value();
                  });
    }
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  a.transport.run_sync([&] {
    EXPECT_EQ(*mismatches, 0);
    EXPECT_EQ(a.rpc->responses_received(),
              static_cast<std::uint64_t>(kCount));
  });
}

// The same squeezed socket under SCATTER sends: gathered head||body||tail
// frames (rpc::send_gather) interleaved with contiguous ones, so partial
// writes must resume correctly across the iovec boundaries WITHIN one
// logical frame, not just between frames.
TEST(TcpTransportTest, TinySndbufGatheredFramesArriveIntact) {
  TcpTransportOptions tiny;
  tiny.so_sndbuf = 4096;
  Peer a{NodeId{1}, tiny};
  Peer b{NodeId{2}, tiny};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  constexpr int kCount = 60;
  constexpr std::size_t kSeg = 4 * 1024;
  auto segment = [](int i, std::uint8_t salt) {
    Bytes s(kSeg, 0);
    for (std::size_t j = 0; j < s.size(); ++j) {
      s[j] = static_cast<std::uint8_t>(j * 17 + salt +
                                       static_cast<std::size_t>(i));
    }
    return s;
  };

  // Count arrivals on the receiver; gather-sends are fire-and-forget, so
  // completion is observed at b.
  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  auto received = std::make_shared<int>(0);
  auto mismatches = std::make_shared<int>(0);
  b.transport.run_sync([&] {
    b.rpc->register_handler(kSum, [done, received, mismatches, segment](
                                      rpc::RequestContext& ctx) {
      // Logical payload = the three gathered segments, contiguous on entry.
      const int i = *received;
      Bytes expected = segment(i, 1);
      append(expected, as_view(segment(i, 2)));
      append(expected, as_view(segment(i, 3)));
      if (ctx.payload != expected) ++*mismatches;
      if (++*received == kCount) done->set_value();
    });
  });
  a.transport.run_sync([&] {
    for (int i = 0; i < kCount; ++i) {
      std::vector<Bytes> segments;
      segments.push_back(segment(i, 1));
      segments.push_back(segment(i, 2));
      segments.push_back(segment(i, 3));
      a.rpc->send_gather(b.id, kSum, std::move(segments));
    }
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  b.transport.run_sync([&] { EXPECT_EQ(*mismatches, 0); });
}

// crash() must kill the listener and every established connection; traffic
// resumes after recover() re-binds the same port.
TEST(TcpTransportTest, CrashDropsTrafficRecoverRestoresIt) {
  Peer a{NodeId{1}};
  Peer b{NodeId{2}};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  // Warm the connection.
  {
    auto done = std::make_shared<std::promise<void>>();
    auto future = done->get_future();
    a.transport.run_sync([&] {
      a.rpc->send(b.id, kEcho, to_bytes("warm"),
                  [done](NodeId, Bytes) { done->set_value(); });
    });
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
  }

  b.transport.crash(b.id);
  EXPECT_TRUE(b.transport.is_crashed(b.id));
  {
    auto done = std::make_shared<std::promise<bool>>();
    auto future = done->get_future();
    a.transport.run_sync([&] {
      a.rpc->send(b.id, kEcho, to_bytes("while down"),
                  [done](NodeId, Bytes) { done->set_value(false); },
                  /*timeout=*/100 * sim::kMillisecond,
                  [done] { done->set_value(true); });
    });
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_TRUE(future.get()) << "a crashed endpoint must not answer";
  }

  b.transport.recover(b.id);
  EXPECT_FALSE(b.transport.is_crashed(b.id));
  {
    auto done = std::make_shared<std::promise<Bytes>>();
    auto future = done->get_future();
    a.transport.run_sync([&] {
      a.rpc->send(b.id, kEcho, to_bytes("back again"),
                  [done](NodeId, Bytes payload) {
                    done->set_value(std::move(payload));
                  },
                  /*timeout=*/2 * sim::kSecond,
                  [done] { done->set_value({}); });
    });
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_EQ(to_string(as_view(future.get())), "back again");
  }
}

// --- degradation machinery ---------------------------------------------

// A raw TCP listener that accepts nothing: connects succeed through the
// kernel backlog, but no byte is ever read — the remote's egress backs up.
struct BlackholeListener {
  BlackholeListener() {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    // Queued (never-accepted) connections inherit the listener's rcvbuf;
    // keep it tiny so the kernel cannot quietly absorb a sender's backlog —
    // the egress queue under test must stay visibly congested.
    const int tiny = 4096;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port = ntohs(addr.sin_port);
  }
  ~BlackholeListener() { ::close(fd); }
  int fd{-1};
  std::uint16_t port{0};
};

// Regression: a dead peer used to trigger one dial per SEND — a hot loop of
// socket()/connect() syscalls at client-op rate. The per-peer backoff must
// collapse hundreds of sends into a handful of dial attempts.
TEST(TcpTransportTest, DialBackoffStopsHotRedialLoop) {
  // A port that was just live and then closed: every connect is refused.
  std::uint16_t dead_port = 0;
  {
    BlackholeListener tmp;
    dead_port = tmp.port;
  }
  TcpTransport a;
  ASSERT_TRUE(a.add_route(NodeId{2}, "127.0.0.1", dead_port).is_ok());
  a.run_sync([&] {
    a.attach(NodeId{1}, net::NetStackParams::direct_io_native(),
             [](net::Packet&&) {});
  });

  for (int i = 0; i < 40; ++i) {
    a.run_sync([&] {
      net::Packet packet;
      packet.src = NodeId{1};
      packet.dst = NodeId{2};
      packet.payload = to_bytes("x");
      a.send(std::move(packet));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // 40 sends over ~400ms: without backoff that is 40 dials; with
  // exponential backoff from 10ms it is at most ~7.
  EXPECT_GE(a.dials_attempted(), 1u);
  EXPECT_LE(a.dials_attempted(), 12u);
  EXPECT_GE(a.dials_failed(), 1u);
  EXPECT_GT(a.packets_dropped(), 0u);
}

// Egress toward a non-reading peer must stay BOUNDED: the hard cap sheds
// packets instead of queueing without limit, the overload signal trips, and
// sub-normal priorities are shed first at the high watermark.
TEST(TcpTransportTest, EgressOverloadShedsBoundedAndSignals) {
  BlackholeListener blackhole;
  TcpTransportOptions options;
  options.so_sndbuf = 4096;
  options.max_egress_bytes = 64 * 1024;
  TcpTransport a{options};
  ASSERT_TRUE(a.add_route(NodeId{2}, "127.0.0.1", blackhole.port).is_ok());
  a.run_sync([&] {
    a.attach(NodeId{1}, net::NetStackParams::direct_io_native(),
             [](net::Packet&&) {});
  });

  const Bytes chunk(8 * 1024, 0xAB);
  a.run_sync([&] {
    for (int i = 0; i < 64; ++i) {  // 512 KB >> the 64 KB cap
      net::Packet packet;
      packet.src = NodeId{1};
      packet.dst = NodeId{2};
      packet.payload = chunk;
      a.send(std::move(packet));
    }
  });
  EXPECT_GT(a.packets_shed(), 0u);
  EXPECT_LE(a.egress_backlog(), options.max_egress_bytes);
  // Cross-thread overload probe reads the global gauge; the backlog sits
  // far above the watermark (cap/2).
  EXPECT_TRUE(a.overloaded(NodeId{2}));

  // At the watermark, an advisory packet is shed even though a normal one
  // would still fit under the hard cap.
  const std::uint64_t shed_before = a.packets_shed();
  a.run_sync([&] {
    net::Packet probe;
    probe.src = NodeId{1};
    probe.dst = NodeId{2};
    probe.payload = to_bytes("probe");
    probe.priority = net::PacketPriority::kOptional;
    a.send(std::move(probe));
  });
  EXPECT_EQ(a.packets_shed(), shed_before + 1);
}

// The client-visible face of the same condition: an op issued toward an
// overloaded link fails FAST with kOverloaded instead of joining the queue.
TEST(TcpTransportTest, ClientFailsFastWithOverloadedOnCongestedLink) {
  BlackholeListener blackhole;
  TcpTransportOptions options;
  options.so_sndbuf = 4096;
  options.max_egress_bytes = 64 * 1024;
  TcpTransport a{options};
  ASSERT_TRUE(a.add_route(NodeId{2}, "127.0.0.1", blackhole.port).is_ok());

  std::unique_ptr<KvClient> client;
  a.run_sync([&] {
    ClientOptions copts;
    copts.id = ClientId{77};
    copts.secured = false;
    client = std::make_unique<KvClient>(a.clock(), a, copts);
  });

  // Saturate the link past the watermark.
  const Bytes chunk(8 * 1024, 0xCD);
  a.run_sync([&] {
    for (int i = 0; i < 64; ++i) {
      net::Packet packet;
      packet.src = NodeId{77};
      packet.dst = NodeId{2};
      packet.payload = chunk;
      a.send(std::move(packet));
    }
  });

  auto done = std::make_shared<std::promise<ClientReply>>();
  auto future = done->get_future();
  a.run_sync([&] {
    client->put(NodeId{2}, "k", to_bytes("v"),
                [done](const ClientReply& r) { done->set_value(r); });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "overload fast-fail must not wait out the full retry schedule";
  const ClientReply reply = future.get();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, ErrorCode::kOverloaded);

  a.run_sync([&] { client.reset(); });
}

// fd-table exhaustion: the listener must shed the pending connection via
// its reserve fd (accept-and-close) instead of spinning on EMFILE, and keep
// serving once descriptors free up.
TEST(TcpTransportTest, EmfileAcceptShedsInsteadOfSpinning) {
  Peer a{NodeId{1}};
  Peer b{NodeId{2}};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  // Raw client socket created while descriptors are still available;
  // connect() itself allocates nothing new.
  const int raw = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(raw, 0);

  std::size_t open_fds = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++open_fds;
  }

  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  struct RestoreLimit {
    rlimit saved;
    ~RestoreLimit() { ::setrlimit(RLIMIT_NOFILE, &saved); }
  } restore{saved};
  rlimit tight = saved;
  // Leave a little headroom above the current table, then FILL it: every
  // slot below the limit is occupied, so the next allocation (b's accept)
  // hits EMFILE regardless of fd-numbering gaps.
  tight.rlim_cur = open_fds + 4;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> fillers;
  for (int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC); fd >= 0;
       fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC)) {
    fillers.push_back(fd);
    ASSERT_LT(fillers.size(), 64u) << "fd table never filled";
  }
  ASSERT_EQ(errno, EMFILE);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(b.listen_port);
  ASSERT_EQ(
      ::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "backlog connect must succeed without a new local fd";

  // The shed is asynchronous on b's loop; poll for the counter.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (b.transport.accepts_shed() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(b.transport.accepts_shed(), 1u);

  // Restore descriptors and prove the listener still accepts real peers.
  for (int fd : fillers) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  ::close(raw);
  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  a.transport.run_sync([&] {
    a.rpc->send(b.id, kEcho, to_bytes("still alive"),
                [done](NodeId, Bytes) { done->set_value(); });
  });
  EXPECT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "a: sent=" << a.transport.packets_sent()
      << " dropped=" << a.transport.packets_dropped()
      << " dials=" << a.transport.dials_attempted()
      << " dial_fail=" << a.transport.dials_failed()
      << " | b: delivered=" << b.transport.packets_delivered()
      << " shed=" << b.transport.accepts_shed()
      << " sent=" << b.transport.packets_sent()
      << " dropped=" << b.transport.packets_dropped();
}

// Byte-paced trickle egress: frames leave in trickle_bytes slices spaced by
// trickle_interval, so a frame's wire time is observable — and the receiver
// still reassembles it intact.
TEST(TcpTransportTest, TricklePacedEgressReassemblesIntact) {
  TcpTransportOptions slow;
  slow.trickle_bytes = 256;
  slow.trickle_interval = sim::kMillisecond;
  Peer a{NodeId{1}, slow};
  Peer b{NodeId{2}};  // replies return at full speed
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  Bytes payload(4 * 1024, 0);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 13 + 5);
  }
  const auto started = std::chrono::steady_clock::now();
  auto done = std::make_shared<std::promise<Bytes>>();
  auto future = done->get_future();
  a.transport.run_sync([&] {
    a.rpc->send(b.id, kEcho, payload, [done](NodeId, Bytes echoed) {
      done->set_value(std::move(echoed));
    });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(future.get(), payload);
  // ~4KB at 256 bytes per 1ms slice: at least ~16ms of pacing (allow wide
  // scheduling slack downward but reject an unpaced instant send).
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_GE(elapsed, std::chrono::milliseconds(8));
}

// Injected connection resets (the chaos reset storm's hook): the victim
// link is RST-killed, the counter ticks, and traffic recovers by redialing.
TEST(TcpTransportTest, ResetPeerConnectionsRstsAndRecovers) {
  Peer a{NodeId{1}};
  Peer b{NodeId{2}};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  // Warm the connection.
  {
    auto done = std::make_shared<std::promise<void>>();
    auto future = done->get_future();
    a.transport.run_sync([&] {
      a.rpc->send(b.id, kEcho, to_bytes("warm"),
                  [done](NodeId, Bytes) { done->set_value(); });
    });
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
  }

  a.transport.reset_peer_connections(b.id);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (a.transport.resets_injected() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(a.transport.resets_injected(), 1u);

  auto done = std::make_shared<std::promise<Bytes>>();
  auto future = done->get_future();
  a.transport.run_sync([&] {
    a.rpc->send(b.id, kEcho, to_bytes("after reset"),
                [done](NodeId, Bytes payload) {
                  done->set_value(std::move(payload));
                },
                /*timeout=*/5 * sim::kSecond, [done] { done->set_value({}); });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(to_string(as_view(future.get())), "after reset");
}

}  // namespace
}  // namespace recipe::transport
