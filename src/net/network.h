// Simulated message-passing network — the deterministic Transport.
//
// Stands in for the paper's 40GbE testbed with DPDK/RDMA (direct I/O) or
// kernel sockets when an experiment needs determinism or a fault/cost model.
// Since the Transport extraction it is ONE OF THREE interchangeable
// substrates the stack runs over — transport::TcpTransport moves the same
// packets over real epoll-driven TCP sockets, and
// transport::ShardedTcpTransport spreads them across N such loops per
// instance (see net/transport.h). The simulated network is:
//   * point-to-point, fully connected, bidirectional;
//   * unreliable: messages can be delayed, reordered, duplicated or dropped
//     (partial synchrony: after GST every message arrives within delta);
//   * Byzantine: an adversary interceptor may observe, tamper with, replay,
//     inject or drop any packet (Dolev-Yao).
//
// Per-endpoint NetStackParams charge send/receive CPU and wire time, which
// is how kernel-net vs direct-I/O and native vs TEE stacks are modelled
// (Fig. 6b).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace recipe::net {

// What the Dolev-Yao adversary decided to do with a packet in flight.
struct AdversaryAction {
  enum class Kind { kPass, kDrop, kTamper, kReplace };
  Kind kind = Kind::kPass;
  // For kTamper/kReplace: the payload to deliver instead.
  Bytes payload;
  // Extra packets the adversary injects (replays, forgeries, redirects).
  std::vector<Packet> injected;
};

// Interceptor signature: inspect the packet, return the action.
using Adversary = std::function<AdversaryAction(const Packet&)>;

struct NetworkFaults {
  double drop_rate = 0.0;         // pre-GST random loss
  double duplicate_rate = 0.0;    // pre-GST duplication
  sim::Time jitter_max = 0;       // extra uniform random delay
  sim::Time gst = 0;              // Global Stabilization Time
  sim::Time delta = 200 * sim::kMicrosecond;  // post-GST delivery bound
};

class SimNetwork final : public Transport {
 public:
  SimNetwork(sim::Simulator& simulator, Rng rng)
      : simulator_(simulator), rng_(rng) {}

  sim::Clock& clock() override { return simulator_; }

  // Registers a node endpoint with its stack model and receive handler.
  void attach(NodeId id, NetStackParams stack,
              DeliveryHandler handler) override;
  void detach(NodeId id) override;
  bool attached(NodeId id) const override { return endpoints_.contains(id); }

  // Sends a packet; all delay/fault/adversary processing is applied here.
  void send(Packet packet) override;

  NodeCpu& cpu(NodeId id) override;
  const NetStackParams& stack(NodeId id) const;

  // --- Fault injection -----------------------------------------------------
  void set_faults(NetworkFaults faults) { faults_ = faults; }
  const NetworkFaults& faults() const { return faults_; }

  // Crash a node: all traffic to/from it disappears (fail-stop at the
  // network level; the enclave object is crashed separately). Crashing also
  // invalidates every packet already in flight TOWARDS the node: a machine
  // failure empties its NIC/kernel buffers, so a later recover() must never
  // deliver pre-crash frames — a restarted node's fresh replay window would
  // wrongly accept them.
  void crash(NodeId id) override {
    crashed_.insert(id);
    ++crash_epochs_[id];
  }
  void recover(NodeId id) override { crashed_.erase(id); }
  bool is_crashed(NodeId id) const override { return crashed_.contains(id); }
  std::uint64_t crash_epoch(NodeId id) const {
    const auto it = crash_epochs_.find(id);
    return it == crash_epochs_.end() ? 0 : it->second;
  }

  // Bidirectional partition between two nodes.
  void partition(NodeId a, NodeId b, bool blocked);

  // Installs the Dolev-Yao adversary. Replaces any previous one.
  void set_adversary(Adversary adversary) { adversary_ = std::move(adversary); }

  // --- Statistics ------------------------------------------------------
  std::uint64_t packets_sent() const override { return packets_sent_; }
  std::uint64_t packets_delivered() const override {
    return packets_delivered_;
  }
  std::uint64_t packets_dropped() const override { return packets_dropped_; }
  std::uint64_t bytes_sent() const override { return bytes_sent_; }

 private:
  struct Endpoint {
    NetStackParams stack;
    DeliveryHandler handler;
    NodeCpu cpu;
    // NIC egress: packets serialize onto the wire at line rate.
    sim::Time egress_free_at{0};
  };

  void deliver_with_faults(Packet&& packet, bool adversary_copy);
  void schedule_delivery(Packet&& packet, sim::Time departure);

  sim::Simulator& simulator_;
  Rng rng_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  std::unordered_set<NodeId> crashed_;
  // Bumped on every crash; in-flight deliveries captured the epoch at send
  // time and are dropped when it moved (pre-crash frames die with the node).
  std::unordered_map<NodeId, std::uint64_t> crash_epochs_;
  // Unordered node pair; full 64-bit ids (a packed 64-bit key would collide
  // for ids >= 2^32).
  std::set<std::pair<std::uint64_t, std::uint64_t>> partitions_;
  NetworkFaults faults_{};
  Adversary adversary_;

  std::uint64_t packets_sent_{0};
  std::uint64_t packets_delivered_{0};
  std::uint64_t packets_dropped_{0};
  std::uint64_t bytes_sent_{0};

  static std::pair<std::uint64_t, std::uint64_t> partition_key(NodeId a,
                                                               NodeId b) {
    return {std::min(a.value, b.value), std::max(a.value, b.value)};
  }
};

}  // namespace recipe::net
