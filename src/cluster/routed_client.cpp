#include "cluster/routed_client.h"

#include <utility>

#include "attest/bundle.h"

namespace recipe::cluster {

RoutedClient::RoutedClient(ShardedCluster& cluster, RoutedClientOptions options)
    : cluster_(cluster), options_(options) {
  // SimNetwork::attach silently replaces an existing endpoint, so a second
  // client on the default id would hijack the first's replies — bump to the
  // next free NodeId instead.
  while (cluster_.network().attached(NodeId{options_.id})) ++options_.id;
  const ClusterOptions& copts = cluster_.options();
  enclave_ = std::make_unique<tee::Enclave>(cluster_.platform(),
                                            "recipe-client", options_.id);
  if (copts.secured) {
    (void)enclave_->install_secret(attest::kClusterRootName, copts.root);
    if (copts.confidentiality) {
      (void)enclave_->install_secret(attest::kValueKeyName, copts.value_key);
    }
  }
  ClientOptions client_options;
  client_options.id = ClientId{options_.id};
  client_options.secured = copts.secured;
  client_options.confidentiality = copts.confidentiality;
  client_options.enclave = enclave_.get();
  client_options.request_timeout = options_.request_timeout;
  client_options.retry = options_.retry;
  client_options.metrics = options_.metrics;
  client_ = std::make_unique<KvClient>(cluster_.sim(), cluster_.network(),
                                       client_options);
  // A replaced replica rejoins with restarted counters; without this reset
  // the client's old replay window would reject its post-recovery replies.
  fresh_listener_token_ = cluster_.add_fresh_node_listener(
      [this](NodeId fresh) { client_->security().reset_peer(fresh); });
}

RoutedClient::~RoutedClient() {
  cluster_.remove_fresh_node_listener(fresh_listener_token_);
}

void RoutedClient::put(const std::string& key, Bytes value,
                       KvClient::ReplyCallback done) {
  const ShardId shard = cluster_.owner_of(key);  // one hash per op
  if (shard == ConsistentHashRing::kNoShard) {
    done(ClientReply{});  // empty cluster: fail cleanly, not UB
    return;
  }
  const NodeId target = cluster_.shard(shard).write_coordinator();
  const sim::Time start = cluster_.sim().now();
  client_->put(target, key, std::move(value),
               [this, shard, start,
                done = std::move(done)](const ClientReply& r) {
                 record(shard, start);
                 done(r);
               });
}

void RoutedClient::get(const std::string& key, KvClient::ReplyCallback done) {
  const ShardId shard = cluster_.owner_of(key);  // one hash per op
  if (shard == ConsistentHashRing::kNoShard) {
    done(ClientReply{});
    return;
  }
  const NodeId target = cluster_.shard(shard).read_replica(read_hint_++);
  const sim::Time start = cluster_.sim().now();
  client_->get(target, key,
               [this, shard, start,
                done = std::move(done)](const ClientReply& r) {
                 record(shard, start);
                 done(r);
               });
}

bool RoutedClient::put_sync(const std::string& key, const std::string& value) {
  bool done = false;
  bool ok = false;
  put(key, to_bytes(value), [&](const ClientReply& r) {
    ok = r.ok;
    done = true;
  });
  cluster_.drive(done, options_.sync_wait);
  return done && ok;
}

std::optional<std::string> RoutedClient::get_sync(const std::string& key) {
  bool done = false;
  std::optional<std::string> out;
  get(key, [&](const ClientReply& r) {
    if (r.ok && r.found) out = to_string(as_view(r.value));
    done = true;
  });
  cluster_.drive(done, options_.sync_wait);
  return out;
}

obs::Histogram& RoutedClient::shard_histogram(ShardId shard) {
  auto it = shard_latency_us_.find(shard);
  if (it == shard_latency_us_.end()) {
    obs::Histogram handle =
        options_.metrics != nullptr && options_.metrics->enabled()
            ? options_.metrics->histogram(
                  "recipe_client_shard_latency_us",
                  "shard=\"" + std::to_string(shard) + "\"")
            : obs::Histogram::detached();
    it = shard_latency_us_.emplace(shard, std::move(handle)).first;
  }
  return it->second;
}

Histogram RoutedClient::shard_latency_us(ShardId shard) const {
  const auto it = shard_latency_us_.find(shard);
  return it == shard_latency_us_.end() ? Histogram{} : it->second.value();
}

Histogram RoutedClient::latency_us() const {
  Histogram merged;
  for (const auto& [shard, handle] : shard_latency_us_) {
    (void)shard;
    merged.merge(handle.value());
  }
  return merged;
}

void RoutedClient::record(ShardId shard, sim::Time start) {
  shard_histogram(shard).record(
      (cluster_.sim().now() - start) / sim::kMicrosecond);
}

}  // namespace recipe::cluster
