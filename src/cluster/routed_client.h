// RoutedClient: a cluster-aware KV client. Applications call put/get by
// key; the client resolves the owning shard through the cluster's hash
// ring, picks the right replica for the op (write coordinator vs. a
// read-serving replica, hiding head-vs-tail and leader selection) and
// issues an attested request through an ordinary KvClient.
//
// Latency is recorded per SHARD and merged on demand (Histogram::merge),
// so a deployment mixing protocols can attribute tail latency to the
// group that caused it.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "recipe/client.h"

namespace recipe::cluster {

struct RoutedClientOptions {
  // Bumped to the next free NodeId when already attached, so multiple
  // default-constructed clients coexist.
  std::uint64_t id = 5000;
  sim::Time request_timeout = 500 * sim::kMillisecond;
  // Retransmit policy forwarded to the underlying KvClient (timeout
  // growth, decorrelated-jitter backoff, attempt/deadline budget);
  // request_timeout above still pins the first attempt's timeout.
  rpc::RetryPolicy retry = ClientOptions{}.retry;
  // Bound on the *_sync helpers' simulator drive.
  sim::Time sync_wait = 10 * sim::kSecond;
  // When set, the underlying KvClient's recipe_client_* series and this
  // router's per-shard latency histograms (recipe_client_shard_latency_us,
  // labeled shard="k") land in this registry, which must outlive the
  // client. Null keeps the stats private (detached cells).
  obs::MetricsRegistry* metrics = nullptr;
};

class RoutedClient {
 public:
  RoutedClient(ShardedCluster& cluster, RoutedClientOptions options = {});
  ~RoutedClient();

  // Asynchronous ops: routed to the owning shard; reads round-robin over
  // its read-serving replicas.
  void put(const std::string& key, Bytes value, KvClient::ReplyCallback done);
  void get(const std::string& key, KvClient::ReplyCallback done);

  // Synchronous helpers for tests/examples: drive the simulator until the
  // reply arrives (or the cluster quiesces without one).
  bool put_sync(const std::string& key, const std::string& value);
  std::optional<std::string> get_sync(const std::string& key);

  // --- stats ---------------------------------------------------------------
  std::uint64_t issued() const { return client_->issued(); }
  std::uint64_t completed() const { return client_->completed(); }
  std::uint64_t failed() const { return client_->failed(); }
  // Per-shard request latency snapshot (empty histogram for shards never
  // contacted). By value: the backing cells keep counting in the registry.
  Histogram shard_latency_us(ShardId shard) const;
  // All shards merged.
  Histogram latency_us() const;

 private:
  void record(ShardId shard, sim::Time start);
  obs::Histogram& shard_histogram(ShardId shard);

  ShardedCluster& cluster_;
  RoutedClientOptions options_;
  std::unique_ptr<tee::Enclave> enclave_;
  std::unique_ptr<KvClient> client_;
  std::uint64_t fresh_listener_token_{0};
  std::uint64_t read_hint_{0};
  // Registry-backed handles when options_.metrics is set, detached cells
  // otherwise; the old per-client Histogram copies lived here before the
  // unified registry.
  std::map<ShardId, obs::Histogram> shard_latency_us_;
};

}  // namespace recipe::cluster
