// ReplicaNode: the runtime every protocol node (CFT, R-, and BFT baseline)
// builds on.
//
// It wires together the RPC object, the security policy (Null vs Recipe —
// the ONLY difference between a native protocol and its R- transform), the
// partitioned KV store, the client table, the lease-based failure detector,
// and TEE cost accounting. Protocol subclasses express their logic purely in
// terms of on()/send_to()/broadcast()/respond() and the KV wrappers, exactly
// like Listing 1 in the paper.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.h"
#include "kvstore/kvstore.h"
#include "kvstore/wal.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "recipe/batcher.h"
#include "recipe/client_table.h"
#include "recipe/failure_detector.h"
#include "recipe/quorum.h"
#include "recipe/security.h"
#include "recipe/types.h"
#include "rpc/rpc.h"
#include "sim/simulator.h"
#include "tee/cost_model.h"
#include "tee/enclave.h"
#include "tee/lease.h"

namespace recipe {

namespace msg {
constexpr rpc::RequestType kClientRequest = 0xC0001;
constexpr rpc::RequestType kHeartbeat = 0xC0002;
constexpr rpc::RequestType kStateFetch = 0xC0003;
// Carrier for a shielded BatchFrame; sub-messages are dispatched to their
// own types after the single batch-level verify.
constexpr rpc::RequestType kBatch = 0xC0004;
// Recovery (paper §3.7): a re-attested node announces it is back as a
// SHADOW replica. Peers exclude it from quorums/chain position but tee live
// writes at it until it promotes.
constexpr rpc::RequestType kShadowJoin = 0xC0005;
// The caught-up shadow re-enters the active membership; each peer flips it
// back atomically on receipt of this (authenticated) notice.
constexpr rpc::RequestType kPromote = 0xC0006;
// RTT pacing probe: an empty tracked request answered with an empty
// response, both riding the normal batched path. Sent only when batching
// runs with rtt_fraction > 0, so fire-and-forward protocols (whose traffic
// never completes an RPC) still measure the per-peer round trip that the
// flush-delay autotuner paces against.
constexpr rpc::RequestType kPacingProbe = 0xC0007;
}  // namespace msg

struct ReplicaOptions {
  NodeId self{};
  std::vector<NodeId> membership;
  net::NetStackParams stack = net::NetStackParams::direct_io_tee();
  rpc::RpcConfig rpc_config{};
  kv::KvConfig kv_config{};

  // Security mode: secured=false -> NullSecurity (native CFT baseline);
  // secured=true -> RecipeSecurity over `enclave` (required).
  bool secured = true;
  bool confidentiality = false;
  tee::Enclave* enclave = nullptr;
  const tee::TeeCostModel* cost_model = nullptr;

  // EPC working-set model: resident runtime footprint (SCONE etc.) plus a
  // message-buffer estimate, added to the KV's enclave bytes.
  std::uint64_t enclave_runtime_bytes = 0;
  std::uint64_t msg_buffer_bytes = 0;

  // Failure detection (0 disables heartbeats).
  sim::Time heartbeat_period = 0;
  sim::Time suspect_timeout = 150 * sim::kMillisecond;
  // Phi-accrual layer on top of the lease floor (failure_detector.h):
  // with phi_threshold > 0 a peer is suspected only when its trusted lease
  // surely expired AND its accrued suspicion passed the threshold — the
  // adaptive layer suppresses the false positives a fixed timeout produces
  // under jittery links. 0 keeps lease-only suspicion.
  double phi_threshold = 0.0;
  PhiDetectorOptions phi{};

  // Adaptive batching of outgoing protocol traffic (requests AND responses,
  // including client replies). Disabled by default: every frame then keeps
  // the golden-pinned unbatched wire format. Receivers always understand
  // batch frames regardless of this setting.
  BatchConfig batch{};

  // Identity of the CAS, whose fresh-node notices reset channel state.
  NodeId cas_id{1000};

  // Chunked state streaming (recovery / shard handoff): entries per
  // kStateFetch round trip. Each chunk rides the normal send path, so with
  // batching enabled the stream coalesces with live protocol traffic.
  std::size_t state_chunk_entries = 64;

  // Sealed group-commit WAL (durability). Non-null enables the write-ahead
  // log: every applied KV write is appended under the enclave SEALING key
  // and committed once per dispatch boundary (one commit record per applied
  // batch). Requires secured mode + an enclave; the storage object must
  // outlive the node. Null (default) keeps the purely in-memory node.
  kv::WalStorage* wal_storage = nullptr;
  kv::WalOptions wal{};
  // B.1 counter-vault stride: sealed horizon rewrites happen once per this
  // many send-counter allocations.
  Counter counter_stride = 1024;

  // Observability: when set, the node registers its protocol/security/
  // batcher/WAL/RPC series (recipe_node_*, recipe_security_*,
  // recipe_batch_*, recipe_wal_*, recipe_rpc_*) into this registry. Must
  // outlive the node. Null keeps the node scrape-free (existing accessors
  // still work).
  obs::MetricsRegistry* metrics = nullptr;
};

using ReplyFn = std::function<void(const ClientReply&)>;

class ReplicaNode {
 public:
  ReplicaNode(sim::Clock& clock, net::Transport& network,
              ReplicaOptions options);
  virtual ~ReplicaNode();

  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  // Begins protocol operation (heartbeats etc.). Subclasses override and
  // must call the base.
  virtual void start();

  // Crash-stop: detaches from the network and crashes the enclave. Models a
  // machine failure.
  virtual void stop();
  bool running() const { return running_; }

  NodeId self() const { return options_.self; }
  const std::vector<NodeId>& membership() const { return options_.membership; }
  std::vector<NodeId> peers() const;
  std::size_t quorum() const { return majority(options_.membership.size()); }

  // True when this node may coordinate client requests right now.
  virtual bool is_coordinator() const = 0;
  // Op-aware refinements used by the routing layer (src/cluster/): some
  // protocols accept PUTs and GETs at different nodes (CR: writes at the
  // head, reads at the tail; CRAQ: writes at the head, reads anywhere).
  virtual bool coordinates_writes() const { return is_coordinator(); }
  virtual bool coordinates_reads() const { return is_coordinator(); }
  // Protocol-specific request execution; invoked on the coordinator.
  virtual void submit(const ClientRequest& request, ReplyFn reply) = 0;

  // True when this node can serve a linearizable read locally (no quorum).
  virtual bool serves_local_reads() const { return false; }

  std::uint64_t committed_ops() const {
    return committed_ops_.load(std::memory_order_relaxed);
  }
  SecurityPolicy& security() { return *security_; }
  MessageBatcher& batcher() { return batcher_; }
  // Drains every pending batch immediately (latency-sensitive callers).
  void flush_batches() { batcher_.flush_all(); }
  kv::KvStore& kv() { return kv_; }
  rpc::RpcObject& rpc() { return rpc_; }
  sim::Clock& sim() { return clock_; }
  net::Transport& network() { return network_; }
  const ReplicaOptions& options() const { return options_; }

  // Adjusts the modelled in-enclave message-buffer footprint (batching).
  void set_msg_buffer_bytes(std::uint64_t bytes) {
    options_.msg_buffer_bytes = bytes;
  }

  // --- Recovery (paper §3.7) ----------------------------------------------
  //
  // Lifecycle of a crashed replica: stop() -> enclave restart + CAS
  // re-attestation (RejoinDriver) -> start_as_shadow() -> catch_up_from()
  // -> promote(). While shadow, the node applies streamed state and teed
  // live writes but never acks, votes, serves clients, or donates state —
  // so it cannot count toward any quorum or chain position until caught up.

  // Machine reboot: wipes everything that lived in the dead process — the
  // KV store (enclave metadata + host values) and the client dedup table.
  // The recovery drivers call this between the enclave restart and the
  // shadow join; a warm start then comes ONLY from a sealed snapshot.
  void wipe_state();

  // Re-enters operation as a shadow replica: reopens the network endpoint,
  // wipes all receive-side channel state (the restarted enclave lost it),
  // starts the runtime and announces kShadowJoin to the peers (retried a few
  // times — the announcement races the CAS fresh-node notice that resets
  // this node's counters at the peers).
  void start_as_shadow();
  bool is_shadow() const { return shadow_; }
  // Running AND not shadow: eligible for coordination/quorums/reads.
  bool active() const { return running_ && !shadow_; }

  // Atomically flips this node (and, via kPromote, each peer's view of it)
  // back into the active membership.
  void promote();

  // Peers currently known to be in shadow mode (excluded from quorums).
  const std::set<NodeId>& shadow_peers() const { return shadow_peers_; }

  // One full chunked state pass from `peer` (used by shard handoff and as
  // the building block of catch_up_from). `done` receives the number of
  // entries that moved local state FORWARD (last-writer-wins by timestamp).
  void sync_state_from(NodeId peer,
                       std::function<void(Result<std::size_t>)> done);

  // Shadow catch-up: repeats sync passes until one installs nothing new
  // (fixpoint; live teed traffic covers everything committed after the
  // shadow join, so the loop closes the sync-vs-tee race window) or
  // `max_passes` is hit. `done` receives the total entries installed.
  void catch_up_from(NodeId peer, std::function<void(Result<std::size_t>)> done,
                     std::size_t max_passes = 6);

  // True when the protocol considers this shadow fully caught up (base:
  // state-stream fixpoint is enough; Raft waits for log backfill).
  virtual bool shadow_caught_up() const { return true; }

  // --- Sealed snapshots (rollback-protected durability) -------------------

  // Seals the full KV state under the enclave sealing key as the next
  // hardware-counter version. The blob lives on UNTRUSTED storage.
  Result<Bytes> seal_snapshot();
  // Verifies + installs a sealed snapshot. A blob older than the hardware
  // counter is rejected with ErrorCode::kRollback and pinned in
  // snapshot_rollback_rejected().
  Result<std::size_t> restore_snapshot(BytesView sealed);
  std::uint64_t snapshot_rollback_rejected() const {
    return snapshot_rollback_rejected_.load(std::memory_order_relaxed);
  }
  // Sealed-snapshot restores that failed for a NON-rollback reason (tampered
  // or truncated blob). The rejoin driver degrades these to a cold rejoin
  // instead of aborting — the count pins that the corruption was noticed.
  std::uint64_t snapshot_corrupt() const {
    return snapshot_corrupt_.load(std::memory_order_relaxed);
  }

  // --- Sealed group-commit WAL (cheap restart) -----------------------------
  //
  // With options_.wal_storage set, every applied write is logged under the
  // sealing key and a clean shutdown leaves a rollback-pinned marker that
  // lets the NEXT incarnation warm_restart(): replay locally, fast-forward
  // send counters past their B.1 stride, and resume ACTIVE — zero CAS round
  // trips, zero peer state-stream entries. A crash leaves no marker, so the
  // next incarnation takes the full §3.7 attested rejoin.

  bool has_wal() const { return wal_ != nullptr; }
  kv::Wal* wal() { return wal_.get(); }
  kv::CounterVault* counter_vault() { return counter_vault_.get(); }

  // Orderly shutdown: flushes the group-commit tail, compacts if sealed
  // snapshot state entered outside the log, seals the enclave's volatile
  // state (secrets + exact send counters) into the clean marker at a fresh
  // hardware-counter version, then stop()s. Without a WAL this is stop().
  Status shutdown_clean();

  struct WarmRestart {
    std::size_t snapshot_entries{0};  // installed from the compacted snapshot
    std::size_t log_entries{0};       // installed from WAL segments
    std::size_t counters_restored{0};  // B.1 vault horizons applied
  };
  // The cheap-restart fast path, valid only after a clean shutdown: validates
  // the marker against the hardware rollback counter, restores the sealed
  // enclave state, floors counters at their vault horizons, replays the WAL
  // into the KV, burns the marker (reopening reserves a fresh boot epoch),
  // and resumes ACTIVE. Any failure leaves the caller to run the cold path.
  Result<WarmRestart> warm_restart();

  // --- Failure detection ---------------------------------------------------
  // Hybrid verdict: trusted-lease floor, gated by the adaptive phi-accrual
  // layer when phi_threshold > 0.
  bool suspected(NodeId peer) const;
  // Accrued suspicion level for `peer` right now (phi-accrual layer;
  // +infinity for a peer never heard from). Exposed for tests/telemetry.
  double suspicion_phi(NodeId peer) const {
    return phi_detector_.phi(peer, trusted_clock_.now());
  }

 protected:
  using EnvelopeHandler =
      std::function<void(VerifiedEnvelope&, rpc::RequestContext&)>;
  using ResponseHandler = std::function<void(VerifiedEnvelope&)>;

  // Registers a protocol message handler; the payload the handler sees has
  // already been verified (and decrypted) by the security policy.
  void on(rpc::RequestType type, EnvelopeHandler handler);

  // Shields and sends; the continuation receives the VERIFIED response.
  void send_to(NodeId peer, rpc::RequestType type, BytesView payload,
               ResponseHandler continuation = nullptr,
               std::optional<sim::Time> timeout = std::nullopt,
               rpc::TimeoutHandler on_timeout = nullptr);

  // send_to() to every peer (membership minus self).
  void broadcast(rpc::RequestType type, BytesView payload,
                 ResponseHandler continuation = nullptr,
                 std::optional<sim::Time> timeout = std::nullopt,
                 rpc::TimeoutHandler on_timeout = nullptr);

  // Shields and responds to a received request.
  void respond(rpc::RequestContext& ctx, NodeId peer, BytesView payload);

  // Returns a callable that can respond to `ctx` after the handler returned
  // (asynchronous quorum phases).
  std::function<void(Bytes)> deferred_responder(const rpc::RequestContext& ctx);

  // KV operations with TEE cost accounting.
  bool kv_write(std::string_view key, BytesView value, kv::Timestamp ts = {});
  Result<kv::VersionedValue> kv_get(std::string_view key);

  void record_commit() {
    committed_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  // Work executed by a single dedicated thread — the paper's R-Raft "writer
  // thread that serialized all writes" and R-AllConcur's per-round message
  // tracking. Such work does not benefit from the node's parallelism, so it
  // consumes a full node-time unit per unit of work on the fluid-CPU model.
  void charge_serialized(sim::Time duration) {
    cpu().charge(duration * cpu().cores());
  }

  // View the security layer binds into shielded messages.
  virtual ViewId current_view() const { return ViewId{0}; }

  // Called once per newly suspected peer (heartbeats enabled only).
  virtual void on_suspected(NodeId /*peer*/) {}

  // --- Recovery hooks ------------------------------------------------------
  // Called once when a peer announces itself as a shadow replica: protocols
  // drop it from chains/quorums and start teeing live writes at it.
  virtual void on_peer_shadow(NodeId /*peer*/) {}
  // Called once when a shadow peer promotes back to active.
  virtual void on_peer_promoted(NodeId /*peer*/) {}
  // Called on THIS node right after promote() flipped it to active.
  virtual void on_promoted() {}
  // Largest ts.counter installed by state streaming with ts.node == 0 — the
  // sequence-style timestamps CR/CRAQ/Raft write with. Protocols use it to
  // resume their sequence tracking after a promotion.
  std::uint64_t synced_max_counter() const { return synced_max_counter_; }

  net::NodeCpu& cpu() { return network_.cpu(options_.self); }
  std::uint64_t enclave_working_set() const;
  const tee::TeeCostModel* cost_model() const { return options_.cost_model; }

 private:
  void handle_client_request(VerifiedEnvelope& env, rpc::RequestContext& ctx);
  void heartbeat_tick();
  // Fire-and-forget broadcast of a recovery notice, retried `attempts` times
  // (1ms apart): the first copies may race the CAS fresh-node notice that
  // resets this node's counters at the peers.
  void broadcast_notice(rpc::RequestType type, int attempts);
  // One chunk round trip of a state pass; recurses until the donor reports
  // done, accumulating into `installed`. No cursor = from the very first
  // key (distinct from a cursor of "" — an entry stored under the empty
  // key must still stream).
  void request_state_chunk(NodeId peer,
                           const std::optional<std::string>& cursor,
                           std::shared_ptr<std::size_t> installed,
                           std::function<void(Result<std::size_t>)> done);
  void run_catch_up_pass(NodeId peer, std::size_t passes_left,
                         std::size_t total,
                         std::function<void(Result<std::size_t>)> done);
  // Runs the registered handler for `type` (plus any strict-mode drained
  // futures); shared by the wire path and the batch dispatcher.
  void dispatch_request(rpc::RequestType type, VerifiedEnvelope& env,
                        rpc::RequestContext& ctx);
  // Unpacks a verified batch frame: requests go to their handlers,
  // responses complete their tracked rpcs.
  void dispatch_batch(VerifiedEnvelope& env, rpc::RequestContext& ctx);
  // Ships one flushed batch body as a single shielded frame.
  void send_batch(NodeId peer, Bytes body);
  VerifiedEnvelope sub_envelope(const VerifiedEnvelope& batch_env,
                                BytesView payload) const;
  // (Re)creates the WAL with a boot epoch freshly reserved from the hardware
  // rollback counter — called at construction and on every restart path, so
  // segment ids (and with them record nonces) are strictly increasing across
  // incarnations and any outstanding clean marker is burned.
  void reopen_wal();
  // Group commit at a dispatch boundary: one WAL commit record covers every
  // entry the just-dispatched message/batch applied. Triggers background
  // compaction when a rotation pushed the sealed-segment count past the
  // threshold.
  void wal_group_commit();

  sim::Clock& clock_;
  net::Transport& network_;
  ReplicaOptions options_;
  rpc::RpcObject rpc_;
  std::unique_ptr<SecurityPolicy> security_;
  MessageBatcher batcher_;
  // Post-verification response continuations by rpc id. Responses complete
  // from EITHER path: the unbatched wire path (rpc continuation -> verify ->
  // handler) or a batched sub-message (already verified -> handler). The
  // send timestamp rides along so either completion path can feed the
  // measured round trip into the batcher's RTT pacing.
  struct PendingResponse {
    ResponseHandler handler;
    NodeId peer{};
    sim::Time sent_at{0};
  };
  std::unordered_map<std::uint64_t, PendingResponse> response_handlers_;
  // rpc_id of the request currently being dispatched on this node's loop —
  // lets deep apply paths (kv_write) key their flight-recorder spans to the
  // op without threading the id through every protocol. Saved/restored by
  // dispatch_request, so nested dispatches label correctly.
  std::uint64_t current_op_rpc_id_{0};
  // Feeds one completed round trip into the batcher's pacing EWMA.
  void feed_rtt(const PendingResponse& pending);
  // Keeps a paced link measured: with rtt_fraction > 0, enqueues a tracked
  // kPacingProbe toward `peer` at most every rtt_probe_period (one probe in
  // flight per peer). Called on each batch flush, so only peers this node
  // actually batches toward are probed.
  void maybe_probe_rtt(NodeId peer);
  std::unordered_map<rpc::RequestType, EnvelopeHandler> handlers_;
  kv::KvStore kv_;
  ClientTable client_table_;
  tee::TrustedClock trusted_clock_;
  tee::LeaseFailureDetector failure_detector_;
  // Adaptive layer over the lease floor; fed from the same authenticated
  // sign-of-life sites, consulted by suspected() when phi_threshold > 0.
  PhiAccrualDetector phi_detector_;
  // Feeds both detectors (lease lease-renewal + phi arrival sample).
  void note_alive(NodeId peer);
  std::vector<NodeId> suspected_already_;
  // Pacing-probe throttle state: last probe send time per peer, plus the
  // set of peers with a probe currently in flight.
  std::unordered_map<NodeId, sim::Time> probe_last_;
  std::set<NodeId> probe_inflight_;
  sim::TimerHandle heartbeat_timer_;
  bool running_{false};
  bool shadow_{false};
  std::set<NodeId> shadow_peers_;
  sim::TimerHandle notice_timer_;
  std::uint64_t synced_max_counter_{0};
  // Relaxed atomics: bumped on the loop thread, read by metrics scrapes
  // (and tests) from any thread.
  std::atomic<std::uint64_t> snapshot_rollback_rejected_{0};
  std::atomic<std::uint64_t> snapshot_corrupt_{0};
  std::atomic<std::uint64_t> committed_ops_{0};
  std::atomic<std::uint64_t> fd_suspicions_{0};
  // Durability (null unless options_.wal_storage is set). The vault outlives
  // every Wal incarnation: horizons are monotone across restarts.
  std::unique_ptr<kv::CounterVault> counter_vault_;
  std::unique_ptr<kv::Wal> wal_;
  // True when KV state was installed OUTSIDE the logged apply path (a sealed
  // snapshot restore): the clean-shutdown path must compact before writing
  // the marker or that baseline would be missing from a replay.
  bool wal_baseline_dirty_{false};

  // --- observability handles (null/no-op when options_.metrics is null) ----
  // Cell-backed handles are node-owned (NOT owned by wal_/security_) so
  // increments at commit/append sites never race a WAL reopen.
  obs::Counter rpc_requests_;
  obs::Counter rpc_timeouts_;
  obs::Counter wal_entries_;
  obs::Counter wal_group_commits_;
  obs::Counter wal_commit_failures_;
  obs::Counter wal_compactions_;
  obs::Histogram wal_commit_us_;
  obs::Histogram apply_us_;
  // Declared last: read-callbacks (security/batcher/node counters)
  // unregister before anything they read is torn down.
  std::vector<obs::CallbackHandle> metric_handles_;
};

}  // namespace recipe
