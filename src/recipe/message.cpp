#include "recipe/message.h"

#include "common/serde.h"

namespace recipe {

Bytes ShieldedMessage::authenticated_data() const {
  Writer w(payload.size() + 48);
  w.id(header.view);
  w.id(header.cq);
  w.u64(header.cnt);
  w.id(header.sender);
  w.id(header.receiver);
  w.u8(header.flags);
  w.bytes(as_view(payload));
  return std::move(w).take();
}

Bytes ShieldedMessage::serialize() const {
  Writer w(payload.size() + mac.size() + 56);
  w.id(header.view);
  w.id(header.cq);
  w.u64(header.cnt);
  w.id(header.sender);
  w.id(header.receiver);
  w.u8(header.flags);
  w.bytes(as_view(payload));
  w.bytes(as_view(mac));
  return std::move(w).take();
}

Result<ShieldedMessage> ShieldedMessage::parse(BytesView wire) {
  Reader r(wire);
  ShieldedMessage msg;
  auto view = r.id<ViewId>();
  auto cq = r.id<ChannelId>();
  auto cnt = r.u64();
  auto sender = r.id<NodeId>();
  auto receiver = r.id<NodeId>();
  auto flags = r.u8();
  auto payload = r.bytes();
  auto mac = r.bytes();
  if (!view || !cq || !cnt || !sender || !receiver || !flags || !payload ||
      !mac || !r.exhausted()) {
    return Status::error(ErrorCode::kInvalidArgument, "malformed shielded message");
  }
  msg.header.view = *view;
  msg.header.cq = *cq;
  msg.header.cnt = *cnt;
  msg.header.sender = *sender;
  msg.header.receiver = *receiver;
  msg.header.flags = *flags;
  msg.payload = std::move(*payload);
  msg.mac = std::move(*mac);
  return msg;
}

ChannelId directed_channel(NodeId sender, NodeId receiver) {
  return ChannelId{(sender.value << 20) | (receiver.value & 0xFFFFF)};
}

}  // namespace recipe
