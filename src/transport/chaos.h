// ChaosTransport: a fault-injecting decorator over any net::Transport.
//
// Sits between the protocol stack and a real (or simulated) substrate and
// torments every directed link with a seed-derived schedule:
//
//   * added latency — fixed propagation plus uniform jitter;
//   * loss — per-packet drop probability;
//   * duplication — a second copy delivered on its own (jittered) delay;
//   * reordering — a fraction of packets held back an extra window, so
//     later sends overtake them;
//   * bandwidth caps — per-link serialization (a link is busy until the
//     previous packet's wire time elapses; queueing delay accumulates);
//   * partitions — directed link blocks, set explicitly by a test or by the
//     self-driving partition storm (every partition_period, maybe block a
//     random observed link for partition_duration — one direction only on
//     a coin flip, so partitions are genuinely asymmetric);
//   * connection resets — the reset storm invokes reset_hook(peer) (wired
//     to TcpTransport::reset_peer_connections → RST) on random peers.
//
// Every decision comes from one Rng seeded by ChaosOptions::seed, which
// tests derive from RECIPE_TEST_SEED: replaying a failed run with the
// printed seed reproduces the same fault schedule. Under the single-
// threaded Simulator the replay is bit-exact; over real sockets the
// per-decision sequence is seed-determined while wall-clock interleaving
// (which send asks first) stays the kernel's — the schedule's CHARACTER
// reproduces, which is what shaking out protocol bugs needs.
//
// Delayed deliveries are scheduled on the inner transport's clock, so the
// decorator adds no threads of its own and fault timing obeys whichever
// time domain (simulated or real) the substrate lives in. The full
// Transport seam forwards — including send_gather, endpoint registry,
// crash/recover and backpressure — so a ChaosTransport drops in anywhere a
// transport is expected (TcpCluster wraps each replica's transport with
// one when chaos is enabled).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace recipe::transport {

// Fault parameters for one directed link (or the default for all links).
struct LinkFaults {
  sim::Time latency = 0;  // fixed added one-way delay
  sim::Time jitter = 0;   // plus uniform [0, jitter)
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  // reorder_rate of packets are held an EXTRA reorder_window, letting
  // packets sent after them arrive first.
  double reorder_rate = 0.0;
  sim::Time reorder_window = 500 * sim::kMicrosecond;
  // 0 = uncapped. Capped links serialize packets at this rate; a burst
  // queues behind the link's busy time.
  double bandwidth_gbps = 0.0;
};

struct ChaosOptions {
  std::uint64_t seed = 0xC4A05;
  // Default faults for every directed link (override per link with
  // set_link_faults).
  LinkFaults faults{};

  // Partition storm: every partition_period (0 = off), with probability
  // partition_chance, block a random observed directed link (both
  // directions on a coin flip) for partition_duration.
  sim::Time partition_period = 0;
  double partition_chance = 0.5;
  sim::Time partition_duration = 100 * sim::kMillisecond;

  // Reset storm: every reset_period (0 = off), with probability
  // reset_chance, invoke reset_hook on a random observed peer.
  sim::Time reset_period = 0;
  double reset_chance = 0.5;
  std::function<void(NodeId peer)> reset_hook;

  // When set, the injector's telemetry counters register as
  // recipe_chaos_*_total read-callbacks. Must outlive the decorator.
  obs::MetricsRegistry* metrics = nullptr;
};

class ChaosTransport final : public net::Transport {
 public:
  ChaosTransport(net::Transport& inner, ChaosOptions options);
  ~ChaosTransport() override;

  ChaosTransport(const ChaosTransport&) = delete;
  ChaosTransport& operator=(const ChaosTransport&) = delete;

  // --- net::Transport ------------------------------------------------------
  sim::Clock& clock() override { return inner_.clock(); }
  void attach(NodeId id, net::NetStackParams stack,
              DeliveryHandler handler) override {
    inner_.attach(id, stack, std::move(handler));
  }
  void detach(NodeId id) override { inner_.detach(id); }
  bool attached(NodeId id) const override { return inner_.attached(id); }
  void send(net::Packet packet) override;
  void send_gather(net::Packet packet) override;
  net::NodeCpu& cpu(NodeId id) override { return inner_.cpu(id); }
  void crash(NodeId id) override { inner_.crash(id); }
  void recover(NodeId id) override { inner_.recover(id); }
  bool is_crashed(NodeId id) const override { return inner_.is_crashed(id); }
  bool overloaded(NodeId dst) const override {
    return inner_.overloaded(dst);
  }

  std::uint64_t packets_sent() const override { return inner_.packets_sent(); }
  std::uint64_t packets_delivered() const override {
    return inner_.packets_delivered();
  }
  std::uint64_t packets_dropped() const override {
    return inner_.packets_dropped();
  }
  std::uint64_t bytes_sent() const override { return inner_.bytes_sent(); }

  // --- manual fault control (tests drive schedules directly) ---------------
  void set_default_faults(LinkFaults faults);
  void set_link_faults(NodeId src, NodeId dst, LinkFaults faults);
  // Block/unblock a link. Directed when bidirectional=false (src→dst only:
  // an asymmetric partition — acks flow, requests do not).
  void partition(NodeId a, NodeId b, bool blocked, bool bidirectional = true);

  // --- chaos telemetry -----------------------------------------------------
  std::uint64_t chaos_dropped() const;
  std::uint64_t chaos_duplicated() const;
  std::uint64_t chaos_reordered() const;
  std::uint64_t chaos_delayed() const;
  std::uint64_t partitions_injected() const;
  std::uint64_t resets_injected() const;

 private:
  using LinkKey = std::pair<std::uint64_t, std::uint64_t>;

  // Everything timers touch lives behind a shared_ptr: a delayed-delivery
  // or storm callback sitting in the inner clock's timer queue may fire (or
  // be destroyed) after this decorator is gone — the state outlives it and
  // the `stopped` flag makes late callbacks no-ops.
  struct State {
    std::mutex mu;
    net::Transport* inner;
    ChaosOptions options;
    Rng rng;
    std::map<LinkKey, LinkFaults> per_link;
    std::map<LinkKey, bool> blocked;     // directed partitions
    std::map<LinkKey, sim::Time> free_at;  // bandwidth serialization
    std::vector<std::uint64_t> peers;    // observed node ids, storm targets
    bool stopped = false;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t delayed = 0;
    std::uint64_t partitions = 0;
    std::uint64_t resets = 0;
  };

  void inject(net::Packet packet, bool gather);
  void deliver_after(net::Packet packet, sim::Time delay, bool gather);
  static void note_peer(State& st, std::uint64_t id);
  static void schedule_partition_storm(const std::shared_ptr<State>& st);
  static void schedule_reset_storm(const std::shared_ptr<State>& st);

  net::Transport& inner_;
  std::shared_ptr<State> state_;
  // Declared last: unregisters before state_ (the callbacks read it).
  std::vector<obs::CallbackHandle> metric_handles_;
};

}  // namespace recipe::transport
