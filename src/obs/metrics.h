// Sharded metrics registry: named counters, gauges, and log-bucketed
// histograms with per-handle cache-line-aligned slots, aggregated only at
// scrape time.
//
// Threading model
//   - Every handle owns a PRIVATE cache-line-aligned cell. Hot-path updates
//     are relaxed atomic ops on that cell; two handles never share a cache
//     line, so the sharded transport's event loops never contend.
//   - The registry aggregates cells (and registered callbacks) under a mutex
//     when scraped; scrapes tolerate concurrent writers, and totals are
//     exact once the writing threads have been joined (thread join gives
//     the scraper a happens-before edge over every relaxed increment).
//   - Cells are owned by the registry (or by the handle itself for detached
//     handles) and are never freed while the registry lives, so handles can
//     hold raw pointers.
//
// Wiring model
//   - Components that keep their own atomics (transport packet counters,
//     security rejection counters, chaos injector tallies) register a
//     read-callback instead of double-counting: on_counter()/on_gauge()
//     return an RAII CallbackHandle that unregisters on destruction. The
//     component must destroy the handle before the state the callback reads.
//   - A null registry pointer means "no registration": value-holding users
//     (e.g. KvClient bookkeeping) fall back to detached handles, which
//     count into a privately owned cell and simply never appear in a scrape.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"

namespace obs {

class MetricsRegistry;

namespace detail {

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) GaugeCell {
  std::atomic<std::int64_t> value{0};
};

// Lock-free shadow of recipe::Histogram: same bucket layout, all fields
// relaxed atomics. min/max converge via CAS races (each loses only to a
// strictly better value, so the post-join result is exact).
struct alignas(64) HistogramCell {
  std::atomic<std::uint64_t> buckets[recipe::Histogram::kNumBuckets]{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{~0ULL};
  std::atomic<std::uint64_t> max{0};

  void record(std::uint64_t value);
  void merge_into(recipe::Histogram& out) const;
  void reset();
};

}  // namespace detail

// Relaxed-atomic counter handle. Null handles (default-constructed, or
// vended by a disabled registry) ignore increments and read zero.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) {
    if (cell_) cell_->value.fetch_add(n, std::memory_order_relaxed);
  }
  // Value recorded through THIS handle's cell only (other handles on the
  // same series have their own cells; the registry sums them at scrape).
  std::uint64_t value() const {
    return cell_ ? cell_->value.load(std::memory_order_relaxed) : 0;
  }
  void reset() {
    if (cell_) cell_->value.store(0, std::memory_order_relaxed);
  }
  explicit operator bool() const { return cell_ != nullptr; }

  // A counting handle not attached to any registry (never scraped).
  static Counter detached();

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}

  detail::CounterCell* cell_ = nullptr;
  std::shared_ptr<detail::CounterCell> owned_;
};

class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) {
    if (cell_) cell_->value.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) {
    if (cell_) cell_->value.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return cell_ ? cell_->value.load(std::memory_order_relaxed) : 0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

  static Gauge detached();

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}

  detail::GaugeCell* cell_ = nullptr;
  std::shared_ptr<detail::GaugeCell> owned_;
};

// Log-bucketed histogram handle (recipe::Histogram bucket layout).
class Histogram {
 public:
  Histogram() = default;

  void record(std::uint64_t value) {
    if (cell_) cell_->record(value);
  }
  // Snapshot of THIS handle's cell as a plain recipe::Histogram.
  recipe::Histogram value() const;
  void reset() {
    if (cell_) cell_->reset();
  }
  explicit operator bool() const { return cell_ != nullptr; }

  static Histogram detached();

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}

  detail::HistogramCell* cell_ = nullptr;
  std::shared_ptr<detail::HistogramCell> owned_;
};

// RAII registration of a read-callback series; unregisters in the dtor.
// Destroy before the state the callback closes over, and before the
// registry itself.
class CallbackHandle {
 public:
  CallbackHandle() = default;
  CallbackHandle(CallbackHandle&& other) noexcept;
  CallbackHandle& operator=(CallbackHandle&& other) noexcept;
  CallbackHandle(const CallbackHandle&) = delete;
  CallbackHandle& operator=(const CallbackHandle&) = delete;
  ~CallbackHandle();

  void release();

 private:
  friend class MetricsRegistry;
  CallbackHandle(MetricsRegistry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true);
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry for standalone binaries (examples, tools).
  // Library code always takes an explicit registry pointer instead.
  static MetricsRegistry& global();

  bool enabled() const { return enabled_; }

  // Each call allocates a fresh cell for the (name, labels) series, so
  // independent threads/shards can hold independent handles on the same
  // series without sharing cache lines. `labels` is a raw Prometheus label
  // body, e.g. `shard="3"` (no braces), empty for none. A disabled
  // registry returns null handles, which compile down to a branch on null.
  Counter counter(const std::string& name, const std::string& labels = {});
  Gauge gauge(const std::string& name, const std::string& labels = {});
  Histogram histogram(const std::string& name, const std::string& labels = {});

  // Read-callback series for components that already maintain atomics.
  // Multiple callbacks on one (name, labels) series sum at scrape time.
  CallbackHandle on_counter(const std::string& name, const std::string& labels,
                            std::function<std::uint64_t()> read);
  CallbackHandle on_gauge(const std::string& name, const std::string& labels,
                          std::function<std::int64_t()> read);

  // --- scrape side -------------------------------------------------------

  // Prometheus text exposition. Counters/gauges render one line per
  // labelset; histograms render summary-style (quantile 0.5/0.99/0.999
  // lines plus _sum and _count).
  std::string render_prometheus() const;
  // Distinct rendered series: 1 per counter/gauge labelset, 5 per
  // histogram labelset (three quantiles + _sum + _count).
  std::size_t series_count() const;

  // Aggregated reads for tests and in-process consumers. Counter/gauge
  // reads return 0 for unknown series; histogram reads return an empty
  // histogram.
  std::uint64_t counter_value(const std::string& name,
                              const std::string& labels = {}) const;
  std::int64_t gauge_value(const std::string& name,
                           const std::string& labels = {}) const;
  recipe::Histogram histogram_value(const std::string& name,
                                    const std::string& labels = {}) const;

 private:
  friend class CallbackHandle;

  enum class Kind { kCounter, kGauge, kHistogram };

  struct Callback {
    std::uint64_t id;
    std::function<std::uint64_t()> read_counter;
    std::function<std::int64_t()> read_gauge;
  };

  struct Series {
    std::vector<std::unique_ptr<detail::CounterCell>> counter_cells;
    std::vector<std::unique_ptr<detail::GaugeCell>> gauge_cells;
    std::vector<std::unique_ptr<detail::HistogramCell>> histogram_cells;
    std::vector<Callback> callbacks;
  };

  struct Family {
    Kind kind;
    // labels body -> series; std::map keeps renders deterministic.
    std::map<std::string, Series> series;
  };

  Series& series_slot(const std::string& name, const std::string& labels,
                      Kind kind);
  void remove_callback(std::uint64_t id);
  std::uint64_t counter_sum_locked(const Series& s) const;
  std::int64_t gauge_sum_locked(const Series& s) const;

  const bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::uint64_t next_callback_id_ = 1;
};

}  // namespace obs
