// Adaptive shielded batching benchmark: batch size x payload x protocol.
//
// Two layers of measurement, both written to BENCH_batching.json (path via
// argv[1]):
//
//  1. The security seam in isolation ("seam" rows): shield+verify throughput
//     in MESSAGES per second when N sub-messages share one frame (one
//     header, one counter, one nonce, one MAC) versus the unbatched
//     per-message pipeline. The verify side includes BatchView parsing and
//     the per-sub-message payload copy, mirroring the real dispatch cost.
//     The acceptance gate lives here: >= 2x messages/sec for <= 256 B
//     payloads at batch size >= 16.
//
//  2. Whole-protocol simulations ("protocol" rows): CR, CRAQ and Raft on the
//     calibrated 3-replica testbed, batching off vs on, reporting simulated
//     closed-loop ops/sec and network packets per committed op — the
//     per-packet fixed costs (NetStackParams bases + the 64-byte packet
//     header) amortize alongside the crypto.
#include <chrono>
#include <map>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "protocols/craq/craq.h"
#include "recipe/batcher.h"
#include "recipe/message.h"
#include "recipe/security.h"

namespace recipe::bench {
namespace {

using workload::Router;

constexpr std::size_t kSmallPayloads[] = {64, 256};
constexpr std::size_t kBatchSizes[] = {4, 16, 64};

template <typename Fn>
double wall_seconds(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Measures `one_round` (processing `msgs_per_round` messages per call) until
// ~0.5s elapsed; returns messages per second.
template <typename Fn>
double measure_msgs_per_sec(std::size_t msgs_per_round, Fn&& one_round) {
  for (int i = 0; i < 50; ++i) one_round();  // warm the channel caches
  std::size_t rounds = 0;
  double elapsed = 0;
  while (elapsed < 0.5) {
    elapsed += wall_seconds([&] {
      for (int i = 0; i < 50; ++i) one_round();
    });
    rounds += 50;
  }
  return static_cast<double>(rounds * msgs_per_round) / elapsed;
}

struct SeamRow {
  const char* mode;
  std::size_t payload;
  std::size_t batch;  // 1 = unbatched
  double msgs_per_sec;
};

struct SecurityPair {
  tee::TeePlatform platform{1};
  tee::Enclave enclave_a{platform, "code", 1};
  tee::Enclave enclave_b{platform, "code", 2};
  RecipeSecurity a;
  RecipeSecurity b;

  explicit SecurityPair(bool confidential)
      : a(enclave_a, NodeId{1}, nullptr, nullptr, cfg(confidential)),
        b(enclave_b, NodeId{2}, nullptr, nullptr, cfg(confidential)) {
    const crypto::SymmetricKey root{Bytes(32, 0x77)};
    (void)enclave_a.install_secret(attest::kClusterRootName, root);
    (void)enclave_b.install_secret(attest::kClusterRootName, root);
  }
  static RecipeSecurityConfig cfg(bool confidential) {
    RecipeSecurityConfig c;
    c.confidentiality = confidential;
    return c;
  }
};

std::vector<SeamRow> run_seam_sweep() {
  std::vector<SeamRow> rows;
  for (bool confidential : {false, true}) {
    const char* mode = confidential ? "confidentiality" : "auth";
    for (std::size_t payload_size : kSmallPayloads) {
      const Bytes payload(payload_size, 0xAB);

      // Unbatched baseline: one frame per message.
      {
        SecurityPair pair(confidential);
        const double rate = measure_msgs_per_sec(1, [&] {
          auto wire = pair.a.shield(NodeId{2}, ViewId{1}, as_view(payload));
          auto env = pair.b.verify(NodeId{1}, as_view(wire.value()));
          if (!env) std::abort();
        });
        rows.push_back({mode, payload_size, 1, rate});
      }

      for (std::size_t batch : kBatchSizes) {
        SecurityPair pair(confidential);
        Bytes sink;
        const double rate = measure_msgs_per_sec(batch, [&] {
          BatchFrame frame;
          frame.reserve(kBatchCountSize +
                        batch * (kBatchItemOverhead + payload.size()));
          for (std::size_t i = 0; i < batch; ++i) {
            frame.add(BatchItem::kKindRequest, 0xC201, i, as_view(payload));
          }
          auto wire = pair.a.shield_batch(NodeId{2}, ViewId{1},
                                          as_view(frame.take_body()));
          auto env = pair.b.verify(NodeId{1}, as_view(wire.value()));
          if (!env) std::abort();
          // Mirror the receive-side dispatch: parse the batch body and copy
          // each sub-payload out (what dispatch_batch does per envelope).
          auto view = BatchView::parse(as_view(env.value().payload));
          if (!view) std::abort();
          for (const BatchItem& item : view.value()) {
            sink.assign(item.payload.begin(), item.payload.end());
          }
        });
        rows.push_back({mode, payload_size, batch, rate});
      }
    }
  }
  return rows;
}

struct ProtocolRow {
  const char* protocol;
  bool batched;
  double ops_per_sec;
  double packets_per_op;
  double p50_us;
};

BatchConfig bench_batch_config() {
  BatchConfig batch;
  batch.enabled = true;
  batch.max_count = 16;
  batch.max_bytes = 32 * 1024;
  batch.max_delay = 10 * sim::kMicrosecond;
  return batch;
}

template <typename Node, typename... Extra>
ProtocolRow run_protocol(const char* name, bool batched, Router router,
                         Extra&&... extra) {
  ExperimentParams params;
  params.value_size = 128;
  params.read_fraction = 0.5;
  params.num_clients = 32;
  params.window = 60 * sim::kMillisecond;
  TestbedConfig config = recipe_testbed(params);
  config.workload.num_keys = 2000;
  if (batched) config.batch = bench_batch_config();

  Testbed<Node> testbed(config);
  testbed.build(std::forward<Extra>(extra)...);
  testbed.preload();
  const std::uint64_t packets_before = testbed.network().packets_sent();
  RunResult result = testbed.run(std::move(router));
  const std::uint64_t packets =
      testbed.network().packets_sent() - packets_before;
  ProtocolRow row;
  row.protocol = name;
  row.batched = batched;
  row.ops_per_sec = result.ops_per_sec;
  row.packets_per_op =
      result.completed == 0
          ? 0
          : static_cast<double>(packets) /
                static_cast<double>(result.completed);
  row.p50_us = result.latency_us.percentile(0.5);
  return row;
}

std::vector<ProtocolRow> run_protocol_sweep() {
  std::vector<ProtocolRow> rows;
  for (bool batched : {false, true}) {
    {
      Testbed<protocols::ChainNode> probe({});  // router helper needs members
      rows.push_back(run_protocol<protocols::ChainNode>(
          "cr", batched, probe.route_head_tail()));
    }
    {
      // CRAQ: writes at the head, reads apportioned round-robin.
      Router router = [](OpType op, std::uint64_t n) {
        return op == OpType::kPut ? NodeId{1} : NodeId{1 + n % 3};
      };
      rows.push_back(run_protocol<protocols::CraqNode>("craq", batched,
                                                       router));
    }
    {
      protocols::RaftOptions raft;
      raft.initial_leader = NodeId{1};
      rows.push_back(run_protocol<protocols::RaftNode>(
          "raft", batched,
          Testbed<protocols::RaftNode>::route_all_to(NodeId{1}),
          raft));
    }
  }
  return rows;
}

}  // namespace
}  // namespace recipe::bench

int main(int argc, char** argv) {
  using namespace recipe;
  using namespace recipe::bench;

  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_batching.json");

  std::printf("--- security seam: batched vs unbatched shield/verify ---\n");
  const auto seam = run_seam_sweep();
  for (const SeamRow& row : seam) {
    std::printf("%-16s %5zu B  batch %3zu   %12.0f msgs/s\n", row.mode,
                row.payload, row.batch, row.msgs_per_sec);
  }

  std::printf("--- protocols on the calibrated testbed ---\n");
  const auto protocols = run_protocol_sweep();
  for (const ProtocolRow& row : protocols) {
    std::printf("%-5s %-9s   %10.0f ops/s   %6.2f packets/op   p50 %6.0f us\n",
                row.protocol, row.batched ? "batched" : "unbatched",
                row.ops_per_sec, row.packets_per_op, row.p50_us);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"batching\",\n"
               "  \"seam_unit\": \"shield+verify messages per second, single "
               "channel\",\n  \"seam\": [\n");
  for (std::size_t i = 0; i < seam.size(); ++i) {
    const SeamRow& r = seam[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"payload_bytes\": %zu, "
                 "\"batch_size\": %zu, \"msgs_per_sec\": %.0f}%s\n",
                 r.mode, r.payload, r.batch, r.msgs_per_sec,
                 i + 1 < seam.size() ? "," : "");
  }
  // Acceptance view: batched throughput over the unbatched baseline of the
  // same (mode, payload). The gate: for every small payload (<= 256 B), SOME
  // batch size >= 16 must reach 2x in auth mode — auth is the per-message
  // overhead batching amortizes; confidentiality adds per-BYTE stream-cipher
  // work no batching can remove, so those rows are reported, not gated.
  std::fprintf(f, "  ],\n  \"seam_speedup_vs_unbatched\": [\n");
  bool first = true;
  std::map<std::size_t, double> best_auth_ratio;  // payload -> best batch>=16
  for (const SeamRow& r : seam) {
    if (r.batch == 1) continue;
    double base = 0;
    for (const SeamRow& b : seam) {
      if (b.batch == 1 && std::string_view(b.mode) == r.mode &&
          b.payload == r.payload) {
        base = b.msgs_per_sec;
      }
    }
    const double ratio = base > 0 ? r.msgs_per_sec / base : 0;
    if (std::string_view(r.mode) == "auth" && r.batch >= 16 &&
        r.payload <= 256) {
      best_auth_ratio[r.payload] = std::max(best_auth_ratio[r.payload], ratio);
    }
    std::fprintf(f,
                 "%s    {\"mode\": \"%s\", \"payload_bytes\": %zu, "
                 "\"batch_size\": %zu, \"ratio\": %.2f}",
                 first ? "" : ",\n", r.mode, r.payload, r.batch, ratio);
    first = false;
  }
  bool acceptance = !best_auth_ratio.empty();
  for (const auto& [payload, ratio] : best_auth_ratio) {
    if (ratio < 2.0) acceptance = false;
  }
  std::fprintf(f, "\n  ],\n  \"protocols\": [\n");
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const ProtocolRow& r = protocols[i];
    std::fprintf(f,
                 "    {\"protocol\": \"%s\", \"batched\": %s, "
                 "\"ops_per_sec\": %.0f, \"packets_per_op\": %.2f, "
                 "\"p50_us\": %.0f}%s\n",
                 r.protocol, r.batched ? "true" : "false", r.ops_per_sec,
                 r.packets_per_op, r.p50_us,
                 i + 1 < protocols.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"acceptance_2x_at_batch16_small\": %s\n}\n",
               acceptance ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s (acceptance_2x_at_batch16_small=%s)\n",
              out_path.c_str(), acceptance ? "true" : "false");
  return acceptance ? 0 : 1;
}
