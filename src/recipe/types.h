// Client-facing request/reply types for the replicated KV service.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/serde.h"

namespace recipe {

enum class OpType : std::uint8_t { kPut = 1, kGet = 2 };

struct ClientRequest {
  ClientId client{};
  RequestId rid{};
  OpType op{OpType::kGet};
  std::string key;
  Bytes value;  // empty for kGet

  Bytes serialize() const {
    Writer w(key.size() + value.size() + 32);
    w.id(client);
    w.id(rid);
    w.enumeration(op);
    w.str(key);
    w.bytes(as_view(value));
    return std::move(w).take();
  }

  static Result<ClientRequest> parse(BytesView data) {
    Reader r(data);
    ClientRequest req;
    auto client = r.id<ClientId>();
    auto rid = r.id<RequestId>();
    auto op = r.enumeration<OpType>();
    auto key = r.str();
    auto value = r.bytes();
    if (!client || !rid || !op || !key || !value) {
      return Status::error(ErrorCode::kInvalidArgument, "truncated request");
    }
    req.client = *client;
    req.rid = *rid;
    req.op = *op;
    req.key = std::move(*key);
    req.value = std::move(*value);
    return req;
  }
};

struct ClientReply {
  bool ok{false};
  bool found{false};  // for kGet
  Bytes value;
  // Client-LOCAL failure classification — never serialized (the wire format
  // below is golden-pinned). KvClient sets it when an op fails without a
  // server verdict: kTimeout (retries exhausted), kAuthFailed (shield or
  // reply verification), kOverloaded (egress backpressure), kInternal
  // (authenticated-but-malformed reply). rpc::RetryPolicy::fatal() on this
  // code tells outer retry loops whether re-routing can help.
  ErrorCode error{ErrorCode::kOk};

  Bytes serialize() const {
    Writer w(value.size() + 8);
    w.boolean(ok);
    w.boolean(found);
    w.bytes(as_view(value));
    return std::move(w).take();
  }

  static Result<ClientReply> parse(BytesView data) {
    Reader r(data);
    ClientReply reply;
    auto ok = r.boolean();
    auto found = r.boolean();
    auto value = r.bytes();
    if (!ok || !found || !value) {
      return Status::error(ErrorCode::kInvalidArgument, "truncated reply");
    }
    reply.ok = *ok;
    reply.found = *found;
    reply.value = std::move(*value);
    return reply;
  }
};

}  // namespace recipe
