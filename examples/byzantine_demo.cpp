// byzantine_demo: the paper's motivation, live. The same network adversary
// (tamper + replay) attacks two deployments of the SAME protocol code (ABD):
//   1. native CFT  -> silently corrupted replicas;
//   2. R-ABD       -> every attack detected and rejected.
#include <cstdio>
#include <memory>
#include <vector>

#include "attest/bundle.h"
#include "protocols/abd/abd.h"
#include "recipe/client.h"
#include "recipe/message.h"

using namespace recipe;

namespace {

struct Deployment {
  sim::Simulator simulator;
  net::SimNetwork network{simulator, Rng(3)};
  tee::TeePlatform platform{1};
  crypto::SymmetricKey root{Bytes(32, 0x77)};
  std::vector<std::unique_ptr<tee::Enclave>> enclaves;
  std::vector<std::unique_ptr<protocols::AbdNode>> replicas;
  std::unique_ptr<tee::Enclave> client_enclave;
  std::unique_ptr<KvClient> client;

  explicit Deployment(bool secured) {
    const std::vector<NodeId> membership = {NodeId{1}, NodeId{2}, NodeId{3}};
    for (NodeId id : membership) {
      auto enclave =
          std::make_unique<tee::Enclave>(platform, "recipe-replica", id.value);
      (void)enclave->install_secret(attest::kClusterRootName, root);
      ReplicaOptions options;
      options.self = id;
      options.membership = membership;
      options.secured = secured;
      options.enclave = enclave.get();
      replicas.push_back(std::make_unique<protocols::AbdNode>(
          simulator, network, std::move(options)));
      enclaves.push_back(std::move(enclave));
    }
    for (auto& replica : replicas) replica->start();

    client_enclave = std::make_unique<tee::Enclave>(platform, "recipe-client",
                                                    2000);
    (void)client_enclave->install_secret(attest::kClusterRootName, root);
    ClientOptions options;
    options.id = ClientId{2000};
    options.secured = secured;
    options.enclave = client_enclave.get();
    client = std::make_unique<KvClient>(simulator, network, options);
  }

  // Adversary: replace the value inside replica-to-replica PUT messages and
  // replay each packet once.
  std::uint64_t attacks = 0;
  void arm_adversary() {
    network.set_adversary([this](const net::Packet& p) {
      net::AdversaryAction action;
      if (p.src.value > 3 || p.dst.value > 3) return action;
      // Tamper with ABD PUT payloads (RPC frame: kind,type,id,payload);
      // replay everything else.
      Reader r(as_view(p.payload));
      auto kind = r.u8();
      auto type = r.u32();
      auto rpc_id = r.u64();
      auto inner = r.bytes();
      if (!kind || !type || !rpc_id || !inner ||
          *type != protocols::abd_msg::kPut) {
        action.injected.push_back(p);  // replay attack
        return action;
      }
      auto msg = ShieldedMessage::parse(as_view(*inner));
      if (!msg.is_ok()) return action;
      Reader body(as_view(msg.value().payload));
      auto key = body.str();
      auto value = body.bytes();
      if (!key || !value || value->empty()) return action;
      Writer forged_body;
      forged_body.str(*key);
      forged_body.bytes(as_view(to_bytes("PWNED-BY-MALLORY")));
      auto tail = body.raw(body.remaining());
      forged_body.raw(as_view(*tail));
      msg.value().payload = std::move(forged_body).take();
      Writer wire;
      wire.u8(*kind);
      wire.u32(*type);
      wire.u64(*rpc_id);
      wire.bytes(as_view(msg.value().serialize()));
      action.kind = net::AdversaryAction::Kind::kReplace;
      action.payload = std::move(wire).take();
      ++attacks;
      return action;
    });
  }

  void report(const char* label) {
    std::printf("\n--- %s ---\n", label);
    std::printf("  attacks launched: %llu\n",
                static_cast<unsigned long long>(attacks));
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      auto value = replicas[i]->kv().get("balance");
      std::printf("  replica %zu stores: %s\n", i + 1,
                  value.is_ok()
                      ? ("\"" + to_string(as_view(value.value().value)) +
                         "\"")
                            .c_str()
                      : "(nothing)");
      if (auto* sec = dynamic_cast<RecipeSecurity*>(&replicas[i]->security())) {
        std::printf(
            "             rejected: %llu forged/tampered, %llu replays\n",
                    static_cast<unsigned long long>(sec->rejected_auth()),
                    static_cast<unsigned long long>(sec->rejected_replay()));
      }
    }
  }
};

}  // namespace

int main() {
  std::printf(
      "Scenario: client writes balance=\"100 coins\" while a Dolev-Yao\n"
              "adversary tampers with and replays all replication traffic.\n");

  {
    Deployment native(/*secured=*/false);
    native.arm_adversary();
    native.client->put(NodeId{1}, "balance", to_bytes("100 coins"),
                       [](const ClientReply&) {});
    native.simulator.run_for(2 * sim::kSecond);
    native.report("NATIVE CFT (ABD): assumes a trusted network");
    std::printf("  => the adversary's value reached honest replicas.\n");
  }

  {
    Deployment recipe_mode(/*secured=*/true);
    recipe_mode.arm_adversary();
    bool ok = false;
    recipe_mode.client->put(NodeId{1}, "balance", to_bytes("100 coins"),
                            [&](const ClientReply& r) { ok = r.ok; });
    recipe_mode.simulator.run_for(2 * sim::kSecond);
    recipe_mode.report("R-ABD (Recipe): transferable auth + non-equivocation");
    std::printf("  => every tampered/replayed message rejected; %s\n",
                ok ? "write committed from intact copies."
                   : "the system refused rather than accept corruption.");

    // Once the adversary is off the wire, the same cluster proceeds.
    recipe_mode.network.set_adversary(nullptr);
    bool ok2 = false;
    recipe_mode.client->put(NodeId{1}, "balance", to_bytes("100 coins"),
                            [&](const ClientReply& r) { ok2 = r.ok; });
    recipe_mode.simulator.run_for(2 * sim::kSecond);
    std::printf("  => adversary gone: write %s.\n",
                ok2 ? "committed" : "still failing");
  }
  return 0;
}
