// Randomized equivalence: the ring-bitmap ReplayWindow must reproduce the
// pre-refactor std::map<Counter, bool> sliding-window semantics verdict-for-
// verdict over shuffled, duplicated and stale counter streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <random>
#include <vector>

#include "recipe/replay_window.h"

namespace recipe {
namespace {

// Reimplementation of the pre-refactor window-mode logic from
// RecipeSecurity::verify (map + GC loop), with the staleness comparisons in
// subtraction form: the historical `cnt + window_ <= max_seen_` wraps for
// counters near UINT64_MAX, and the model must not pin that bug into the
// equivalence test.
class MapWindowModel {
 public:
  explicit MapWindowModel(std::size_t window) : window_(window) {}

  ReplayWindow::Verdict check_and_set(Counter cnt) {
    if (cnt <= max_seen_ && max_seen_ - cnt >= window_) {
      return ReplayWindow::Verdict::kStale;
    }
    if (seen_.contains(cnt)) return ReplayWindow::Verdict::kDuplicate;
    seen_.emplace(cnt, true);
    if (cnt > max_seen_) max_seen_ = cnt;
    while (!seen_.empty() && max_seen_ - seen_.begin()->first >= window_) {
      seen_.erase(seen_.begin());
    }
    return ReplayWindow::Verdict::kAccept;
  }

 private:
  std::size_t window_;
  Counter max_seen_{0};
  std::map<Counter, bool> seen_;
};

void run_stream(const std::vector<Counter>& stream, std::size_t window) {
  ReplayWindow ring(window);
  MapWindowModel model(window);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto expected = model.check_and_set(stream[i]);
    const auto got = ring.check_and_set(stream[i]);
    ASSERT_EQ(got, expected)
        << "divergence at step " << i << " cnt=" << stream[i]
        << " window=" << window;
  }
}

TEST(ReplayWindow, InOrderStream) {
  std::vector<Counter> stream;
  for (Counter c = 1; c <= 5000; ++c) stream.push_back(c);
  run_stream(stream, 64);
}

TEST(ReplayWindow, EveryCounterTwice) {
  std::vector<Counter> stream;
  for (Counter c = 1; c <= 2000; ++c) {
    stream.push_back(c);
    stream.push_back(c);  // immediate replay
  }
  run_stream(stream, 128);
}

TEST(ReplayWindow, ShuffledWithDuplicatesAndStale) {
  std::mt19937_64 rng(1234);
  for (const std::size_t window : {1u, 2u, 63u, 64u, 65u, 1000u, 4096u}) {
    std::vector<Counter> stream;
    Counter base = 1;
    for (int batch = 0; batch < 40; ++batch) {
      // A batch of fresh counters around the current base...
      std::vector<Counter> fresh;
      for (Counter c = base; c < base + 200; ++c) fresh.push_back(c);
      base += 200;
      // ...plus duplicates and deep-stale counters mixed in.
      for (int i = 0; i < 60; ++i) {
        fresh.push_back(1 + rng() % base);  // anywhere in history
      }
      std::shuffle(fresh.begin(), fresh.end(), rng);
      stream.insert(stream.end(), fresh.begin(), fresh.end());
    }
    run_stream(stream, window);
  }
}

TEST(ReplayWindow, LargeJumpsClearStaleState) {
  std::mt19937_64 rng(99);
  std::vector<Counter> stream;
  Counter base = 1;
  for (int jump = 0; jump < 30; ++jump) {
    for (int i = 0; i < 50; ++i) stream.push_back(base + rng() % 40);
    base += 100000 + rng() % 5000;  // far beyond the window
    stream.push_back(base);
    // Ring slots from before the jump alias (cnt % window) with new
    // counters; verdicts must still match the map model exactly.
    for (int i = 0; i < 50; ++i) stream.push_back(base - rng() % 40);
  }
  run_stream(stream, 256);
}

TEST(ReplayWindow, NearWrapCountersAreNotMisclassified) {
  // Regression for the additive staleness check `cnt + window <= max_seen`:
  // once any counter has been seen, a counter near UINT64_MAX makes the sum
  // wrap to a tiny value and a FRESH far-forward jump is rejected as stale.
  const Counter top = std::numeric_limits<Counter>::max();
  ReplayWindow ring(64);
  EXPECT_EQ(ring.check_and_set(100), ReplayWindow::Verdict::kAccept);
  // top-2 + 64 wraps to 61 <= 100: the buggy form said kStale here.
  EXPECT_EQ(ring.check_and_set(top - 2), ReplayWindow::Verdict::kAccept);
  EXPECT_EQ(ring.check_and_set(top - 2), ReplayWindow::Verdict::kDuplicate);
  EXPECT_EQ(ring.check_and_set(top), ReplayWindow::Verdict::kAccept);
  EXPECT_EQ(ring.check_and_set(top - 1), ReplayWindow::Verdict::kAccept);
  // Genuinely below the window: top - 100 is 98 under max_seen = top.
  EXPECT_EQ(ring.check_and_set(top - 100), ReplayWindow::Verdict::kStale);
  // And the boundary itself: exactly window-distance below is stale, one
  // inside is accepted.
  EXPECT_EQ(ring.check_and_set(top - 64), ReplayWindow::Verdict::kStale);
  EXPECT_EQ(ring.check_and_set(top - 63), ReplayWindow::Verdict::kAccept);
}

TEST(ReplayWindow, RandomizedNearWrapStreams) {
  // The map-equivalence harness seeded with counters crowding UINT64_MAX:
  // shuffled fresh ranges, duplicates, deep-stale values and the occasional
  // small (pre-jump) counter, across window sizes.
  const Counter top = std::numeric_limits<Counter>::max();
  std::mt19937_64 rng(777);
  for (const std::size_t window : {1u, 2u, 64u, 65u, 1000u, 4096u}) {
    std::vector<Counter> stream;
    // Start low so max_seen is small when the first near-wrap counter lands.
    for (Counter c = 1; c <= 50; ++c) stream.push_back(c);
    Counter base = top - 5000;
    for (int batch = 0; batch < 25; ++batch) {
      std::vector<Counter> fresh;
      for (Counter c = base; c < base + 150; ++c) fresh.push_back(c);
      base += 150;
      for (int i = 0; i < 40; ++i) {
        // Duplicates / stale counters anywhere in the near-wrap history,
        // plus a few tiny pre-jump counters.
        fresh.push_back(i % 8 == 0 ? 1 + rng() % 50
                                   : top - 5000 + rng() % 5000);
      }
      std::shuffle(fresh.begin(), fresh.end(), rng);
      stream.insert(stream.end(), fresh.begin(), fresh.end());
    }
    stream.push_back(top);  // land exactly on the maximum
    run_stream(stream, window);
  }
}

TEST(ReplayWindow, CounterZeroAndWindowEdges) {
  // cnt=0 (forged frames carry it; enclave counters start at 1) and exact
  // window-boundary counters.
  run_stream({0, 0, 1, 0, 64, 65, 1, 2, 129, 65, 66}, 64);
  run_stream({5, 5 + 64, 5, 6, 4, 70, 69, 6}, 64);
}

}  // namespace
}  // namespace recipe
