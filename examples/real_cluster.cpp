// real_cluster: process-per-replica deployment over real TCP sockets.
//
// The same protocol stack every simulator experiment uses — shield/verify,
// adaptive batching, RPC credits — but each replica is its own OS process
// with its own epoll event loop, and the bytes move through the kernel's
// TCP stack. Run a 3-replica chain on one machine (three terminals):
//
//   M=1@127.0.0.1:7101,2@127.0.0.1:7102,3@127.0.0.1:7103
//   ./real_cluster --id 1 --replicas $M
//   ./real_cluster --id 2 --replicas $M
//   ./real_cluster --id 3 --replicas $M
//
// then drive it from a fourth:
//
//   ./real_cluster --client --replicas $M --ops 5000
//
// Knobs: --protocol cr|craq|raft|abd|hermes, --no-batch, --unsecured,
// --confidential, --bind 0.0.0.0 (multi-machine), --value-bytes N,
// --pipeline N. Every process derives the cluster root from the SAME
// built-in demo secret (the pre-attested fast path the test harness uses);
// a production deployment would provision each enclave through the CAS.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "attest/bundle.h"
#include "cluster/registry.h"
#include "cluster/tcp_cluster.h"
#include "obs/admin.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "recipe/client.h"
#include "recipe/node_base.h"
#include "tee/enclave.h"
#include "tee/platform.h"
#include "transport/tcp_transport.h"

using namespace recipe;

namespace {

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop = true; }

struct Member {
  NodeId id{};
  std::string host;
  std::uint16_t port{0};
};

struct Args {
  std::uint64_t id = 0;  // 0: client mode
  bool client = false;
  std::vector<Member> members;
  std::string protocol = "cr";
  std::string bind_host = "127.0.0.1";
  bool secured = true;
  bool confidential = false;
  bool batch = true;
  std::size_t ops = 1000;
  std::size_t value_bytes = 64;
  std::size_t pipeline = 8;
  // Replica mode: loopback admin/introspection endpoint (-1 off, 0 picks an
  // ephemeral port, >0 binds exactly that port). Serves /metrics (Prometheus
  // text), /trace (flight-recorder JSON) and /healthz.
  int admin_port = -1;
};

bool parse_members(const std::string& spec, std::vector<Member>& out) {
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    const std::size_t at = item.find('@');
    const std::size_t colon = item.rfind(':');
    if (at == std::string::npos || colon == std::string::npos || colon < at) {
      std::fprintf(stderr, "bad member '%s' (want id@host:port)\n",
                   item.c_str());
      return false;
    }
    Member m;
    m.id = NodeId{std::strtoull(item.substr(0, at).c_str(), nullptr, 10)};
    m.host = item.substr(at + 1, colon - at - 1);
    m.port = static_cast<std::uint16_t>(
        std::strtoul(item.substr(colon + 1).c_str(), nullptr, 10));
    out.push_back(std::move(m));
    start = end + 1;
  }
  return !out.empty();
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--id") {
      const char* v = next();
      if (v == nullptr) return false;
      args.id = std::strtoull(v, nullptr, 10);
    } else if (a == "--client") {
      args.client = true;
    } else if (a == "--replicas") {
      const char* v = next();
      if (v == nullptr || !parse_members(v, args.members)) return false;
    } else if (a == "--protocol") {
      const char* v = next();
      if (v == nullptr) return false;
      args.protocol = v;
    } else if (a == "--bind") {
      const char* v = next();
      if (v == nullptr) return false;
      args.bind_host = v;
    } else if (a == "--unsecured") {
      args.secured = false;
    } else if (a == "--confidential") {
      args.confidential = true;
    } else if (a == "--no-batch") {
      args.batch = false;
    } else if (a == "--ops") {
      const char* v = next();
      if (v == nullptr) return false;
      args.ops = std::strtoull(v, nullptr, 10);
    } else if (a == "--value-bytes") {
      const char* v = next();
      if (v == nullptr) return false;
      args.value_bytes = std::strtoull(v, nullptr, 10);
    } else if (a == "--pipeline") {
      const char* v = next();
      if (v == nullptr) return false;
      args.pipeline = std::strtoull(v, nullptr, 10);
    } else if (a == "--admin-port") {
      const char* v = next();
      if (v == nullptr) return false;
      args.admin_port = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return false;
    }
  }
  if (args.members.empty() || (!args.client && args.id == 0)) return false;
  return true;
}

// Demo deployment secrets: both sides of every channel must hold the same
// cluster root. The CAS flow (attest/cas.h) replaces this in production.
crypto::SymmetricKey demo_root() {
  return crypto::SymmetricKey{Bytes(32, 0x77)};
}
crypto::SymmetricKey demo_value_key() {
  return crypto::SymmetricKey{Bytes(32, 0x44)};
}

void provision(tee::Enclave& enclave, const Args& args) {
  if (!args.secured) return;
  if (!enclave.install_secret(attest::kClusterRootName, demo_root()).is_ok() ||
      (args.confidential &&
       !enclave.install_secret(attest::kValueKeyName, demo_value_key())
            .is_ok())) {
    std::fprintf(stderr, "secret provisioning failed\n");
    std::exit(1);
  }
}

int run_replica(const Args& args) {
  const auto* factory =
      cluster::ProtocolRegistry::instance().find(args.protocol);
  if (factory == nullptr) {
    std::fprintf(stderr, "unknown protocol '%s'\n", args.protocol.c_str());
    return 1;
  }
  const Member* self = nullptr;
  std::vector<NodeId> membership;
  for (const Member& m : args.members) {
    membership.push_back(m.id);
    if (m.id.value == args.id) self = &m;
  }
  if (self == nullptr) {
    std::fprintf(stderr, "--id %llu is not in --replicas\n",
                 static_cast<unsigned long long>(args.id));
    return 1;
  }

  // One registry per replica process: the transport, the node and the WAL
  // all register into it; the admin endpoint scrapes it.
  obs::MetricsRegistry registry;
  transport::TcpTransportOptions topts;
  topts.bind_host = args.bind_host;
  topts.metrics = &registry;
  transport::TcpTransport transport(topts);
  auto port = transport.listen(self->id, self->port);
  if (!port.is_ok()) {
    std::fprintf(stderr, "listen on %s:%u failed: %s\n",
                 args.bind_host.c_str(), self->port,
                 port.status().message().c_str());
    return 1;
  }
  for (const Member& m : args.members) {
    if (m.id == self->id) continue;
    const Status routed = transport.add_route(m.id, m.host, m.port);
    if (!routed.is_ok()) {
      std::fprintf(stderr, "route to %llu: %s\n",
                   static_cast<unsigned long long>(m.id.value),
                   routed.message().c_str());
      return 1;
    }
  }

  tee::TeePlatform platform{1};
  std::unique_ptr<tee::Enclave> enclave;
  std::unique_ptr<ReplicaNode> node;
  transport.run_sync([&] {
    enclave = std::make_unique<tee::Enclave>(platform, "recipe-replica",
                                             self->id.value);
    provision(*enclave, args);

    ReplicaOptions options;
    options.self = self->id;
    options.membership = membership;
    options.secured = args.secured;
    options.confidentiality = args.confidential;
    options.enclave = enclave.get();
    options.heartbeat_period = 50 * sim::kMillisecond;
    options.batch.enabled = args.batch;
    if (args.confidential) {
      options.kv_config.value_encryption_key = demo_value_key();
    }
    options.metrics = &registry;
    node = (*factory)(transport.clock(), transport, std::move(options));
    node->start();
  });

  std::unique_ptr<obs::AdminServer> admin;
  if (args.admin_port >= 0) {
    obs::AdminServer::Options admin_options;
    admin_options.port = args.admin_port;
    admin_options.metrics = &registry;
    admin_options.recorder = &obs::FlightRecorder::global();
    admin_options.name = "replica-" + std::to_string(self->id.value);
    admin = std::make_unique<obs::AdminServer>(admin_options);
    if (admin->port() < 0) {
      std::fprintf(stderr, "admin endpoint bind failed (port %d)\n",
                   args.admin_port);
      return 1;
    }
    std::printf("admin endpoint on http://127.0.0.1:%d (/metrics /trace)\n",
                admin->port());
  }

  std::printf("replica %llu (%s) listening on %s:%u — Ctrl-C to stop\n",
              static_cast<unsigned long long>(self->id.value),
              args.protocol.c_str(), args.bind_host.c_str(), port.value());
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::uint64_t last_committed = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::seconds(2));
    std::uint64_t committed = 0;
    bool coordinator = false;
    transport.run_sync([&] {
      committed = node->committed_ops();
      coordinator = node->is_coordinator();
    });
    if (committed != last_committed) {
      std::printf("  committed=%llu (%s)\n",
                  static_cast<unsigned long long>(committed),
                  coordinator ? "coordinator" : "replica");
      last_committed = committed;
    }
  }
  transport.run_sync([&] {
    node.reset();
    enclave.reset();
  });
  return 0;
}

int run_client(const Args& args) {
  transport::TcpTransport transport;
  for (const Member& m : args.members) {
    const Status routed = transport.add_route(m.id, m.host, m.port);
    if (!routed.is_ok()) {
      std::fprintf(stderr, "route to %llu: %s\n",
                   static_cast<unsigned long long>(m.id.value),
                   routed.message().c_str());
      return 1;
    }
  }
  // CR/CRAQ: head writes, tail reads. Raft: first member boots as leader.
  const NodeId write_target = args.members.front().id;
  const NodeId read_target = args.protocol == "raft"
                                 ? args.members.front().id
                                 : args.members.back().id;

  tee::TeePlatform platform{2};
  std::unique_ptr<tee::Enclave> enclave;
  std::unique_ptr<KvClient> client;
  transport.run_sync([&] {
    enclave = std::make_unique<tee::Enclave>(platform, "recipe-client", 9000);
    provision(*enclave, args);
    ClientOptions options;
    options.id = ClientId{9000};
    options.secured = args.secured;
    options.confidentiality = args.confidential;
    options.enclave = enclave.get();
    client = std::make_unique<KvClient>(transport.clock(), transport,
                                        options);
  });

  const Bytes value(args.value_bytes, 'x');
  const std::size_t total = args.ops;
  const double secs = cluster::drive_closed_loop_puts(
      transport, *client, write_target, total, args.pipeline, value);
  if (secs < 0) {
    std::fprintf(stderr, "closed-loop run never completed (lost op?)\n");
    return 1;
  }

  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  transport.run_sync([&] {
    ok = client->completed();
    failed = client->failed();
    p50 = client->latency_us().percentile(0.50);
    p99 = client->latency_us().percentile(0.99);
  });
  std::printf("%zu ops in %.3fs: %.0f ops/s, p50=%lluus p99=%lluus, "
              "ok=%llu failed=%llu\n",
              total, secs, static_cast<double>(total) / secs,
              static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99),
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(failed));

  // Read-back sanity through the read-serving replica.
  auto reply_promise = std::make_shared<std::promise<ClientReply>>();
  auto reply_future = reply_promise->get_future();
  transport.run_sync([&] {
    client->get(read_target, "key0", [reply_promise](const ClientReply& r) {
      reply_promise->set_value(r);
    });
  });
  const ClientReply reply = reply_future.get();
  std::printf("GET key0 via %llu: ok=%d found=%d (%zu bytes)\n",
              static_cast<unsigned long long>(read_target.value), reply.ok,
              reply.found, reply.value.size());

  transport.run_sync([&] {
    client.reset();
    enclave.reset();
  });
  return failed == 0 && reply.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    std::fprintf(
        stderr,
        "usage:\n"
        "  %s --id N --replicas id@host:port,... [--protocol cr] "
        "[--bind 0.0.0.0] [--unsecured] [--confidential] [--no-batch] "
        "[--admin-port P]\n"
        "  %s --client --replicas id@host:port,... [--ops N] "
        "[--value-bytes N] [--pipeline N]\n",
        argv[0], argv[0]);
    return 2;
  }
  return args.client ? run_client(args) : run_replica(args);
}
