#include "recipe/client.h"

#include <cassert>

#include "obs/flight_recorder.h"

namespace recipe {

KvClient::KvClient(sim::Clock& clock, net::Transport& network,
                   ClientOptions options)
    : clock_(clock),
      options_(std::move(options)),
      policy_(options_.retry),
      rpc_(clock, network, NodeId{options_.id.value}, options_.stack),
      backoff_rng_(0x9E3779B97F4A7C15ULL ^ options_.id.value) {
  // The long-standing basic knobs win over the policy's own values.
  policy_.initial_timeout = options_.request_timeout;
  policy_.max_attempts = options_.max_retries;
  if (options_.metrics != nullptr && options_.metrics->enabled()) {
    obs::MetricsRegistry& m = *options_.metrics;
    ops_issued_ = m.counter("recipe_client_ops_issued_total");
    ops_completed_ = m.counter("recipe_client_ops_completed_total");
    ops_failed_ = m.counter("recipe_client_ops_failed_total");
    retries_ = m.counter("recipe_client_retries_total");
    op_latency_us_ = m.histogram("recipe_client_op_latency_us");
  } else {
    // No registry (or a disabled one): private detached cells so issued()/
    // latency_us() keep reporting — this is the pre-registry cost profile.
    ops_issued_ = obs::Counter::detached();
    ops_completed_ = obs::Counter::detached();
    ops_failed_ = obs::Counter::detached();
    retries_ = obs::Counter::detached();
    op_latency_us_ = obs::Histogram::detached();
  }
  if (options_.secured) {
    assert(options_.enclave != nullptr && "secured client requires an enclave");
    RecipeSecurityConfig config;
    config.confidentiality = options_.confidentiality;
    security_ = std::make_unique<RecipeSecurity>(
        *options_.enclave, node_id(), /*cost_model=*/nullptr, /*cpu=*/nullptr,
        config);
  } else {
    security_ = std::make_unique<NullSecurity>(node_id());
  }

  // Replicas may coalesce replies to this client into batch frames: one
  // verify covers all of them, then each sub-response completes its rpc.
  rpc_.register_handler(msg::kBatch, [this](rpc::RequestContext& ctx) {
    auto env = security_->verify(ctx.src, as_view(ctx.payload));
    if (!env || !env.value().batch) return;
    auto view = BatchView::parse(as_view(env.value().payload));
    if (!view) return;
    for (const BatchItem& item : view.value()) {
      // Clients serve nothing: only responses matter.
      if (item.kind != BatchItem::kKindResponse) continue;
      if (!rpc_.settle(item.rpc_id)) continue;  // timed out / already done
      VerifiedEnvelope sub;
      sub.sender = env.value().sender;
      sub.view = env.value().view;
      sub.cnt = env.value().cnt;
      sub.payload.assign(item.payload.begin(), item.payload.end());
      complete(item.rpc_id, sub);
    }
  });

  // CAS fresh-node notice (paper §3.7): a replica re-attested and restarts
  // its counters — drop our receive-side channel state for it, or its
  // post-rejoin replies would collide with the old replay window.
  rpc_.register_handler(attest::msg::kFreshNode,
                        [this](rpc::RequestContext& ctx) {
    auto env = security_->verify(ctx.src, as_view(ctx.payload));
    if (!env) return;
    if (env.value().sender.value != options_.cas_id.value) return;
    Reader r(as_view(env.value().payload));
    const auto fresh = r.id<NodeId>();
    if (fresh) security_->reset_peer(*fresh);
  });
}

KvClient::~KvClient() {
  for (auto& [token, timer] : backoff_timers_) timer.cancel();
}

void KvClient::fail(const std::shared_ptr<RetryState>& state, ErrorCode why) {
  ops_failed_.inc();
  if (state->started_ns != 0) {
    // Whole-op span closed by failure; detail carries the error code.
    obs::FlightRecorder::global().record(
        obs::SpanKind::kClientOp, state->last_rpc_id, options_.id.value,
        state->started_ns, obs::FlightRecorder::now_ns(),
        static_cast<std::uint64_t>(why));
    state->started_ns = 0;
  }
  if (state->done) {
    ClientReply reply;
    reply.error = why;
    state->done(reply);
  }
}

void KvClient::schedule_retry(NodeId coordinator,
                              std::shared_ptr<RetryState> state, int attempt,
                              ErrorCode why) {
  if (attempt >= policy_.max_attempts) {
    fail(state, why);
    return;
  }
  const sim::Time backoff =
      policy_.next_backoff(state->prev_backoff, backoff_rng_);
  state->prev_backoff = backoff;
  if (policy_.deadline > 0 &&
      clock_.now() + backoff > state->started + policy_.deadline) {
    fail(state, why);
    return;
  }
  retries_.inc();
  if (obs::FlightRecorder::global().enabled()) {
    // Backoff window as a span: [now, now + backoff] in wall-clock ns; the
    // sim::Time backoff is already nanoseconds.
    const std::uint64_t t0 = obs::FlightRecorder::now_ns();
    obs::FlightRecorder::global().record(
        obs::SpanKind::kRetryBackoff, state->last_rpc_id, options_.id.value,
        t0, t0 + static_cast<std::uint64_t>(backoff),
        static_cast<std::uint64_t>(attempt));
  }
  const std::uint64_t token = next_backoff_token_++;
  backoff_timers_[token] = clock_.schedule(
      backoff, [this, token, coordinator, state = std::move(state), attempt] {
        backoff_timers_.erase(token);
        issue(coordinator, state, attempt);
      });
}

void KvClient::complete(std::uint64_t rpc_id, VerifiedEnvelope& env) {
  const auto it = pending_replies_.find(rpc_id);
  if (it == pending_replies_.end()) return;
  auto handler = std::move(it->second);
  pending_replies_.erase(it);
  handler(env);
}

void KvClient::put(NodeId coordinator, std::string key, Bytes value,
                   ReplyCallback done) {
  ClientRequest request;
  request.client = options_.id;
  request.rid = RequestId{next_rid_++};
  request.op = OpType::kPut;
  request.key = std::move(key);
  request.value = std::move(value);
  ops_issued_.inc();
  issue(coordinator, std::move(request), std::move(done), 0);
}

void KvClient::get(NodeId coordinator, std::string key, ReplyCallback done) {
  ClientRequest request;
  request.client = options_.id;
  request.rid = RequestId{next_rid_++};
  request.op = OpType::kGet;
  request.key = std::move(key);
  ops_issued_.inc();
  issue(coordinator, std::move(request), std::move(done), 0);
}

void KvClient::issue(NodeId coordinator, ClientRequest request,
                     ReplyCallback done, int attempt) {
  // Hot path: one shared allocation holds the retry state (request bytes +
  // completion callback) for all three closures below; a retransmit (same
  // rid, the coordinator's client table deduplicates) re-enters here
  // without re-copying the payload.
  issue(coordinator,
        std::make_shared<RetryState>(
            RetryState{std::move(request), std::move(done)}),
        attempt);
}

void KvClient::issue(NodeId coordinator, std::shared_ptr<RetryState> state,
                     int attempt) {
  if (attempt == 0) {
    state->started = clock_.now();
    if (obs::FlightRecorder::global().enabled()) {
      state->started_ns = obs::FlightRecorder::now_ns();
    }
    // Backpressure: egress toward the coordinator is past its watermark —
    // fail fast with kOverloaded instead of stacking a fresh request onto a
    // congested link. Retransmits (attempt > 0) still go: their op is
    // already paid for, and the transport sheds them first if it must.
    if (rpc_.overloaded(coordinator)) {
      fail(state, ErrorCode::kOverloaded);
      return;
    }
  }
  // Allocate the rpc id BEFORE shielding so even a shield-failure span (and
  // this attempt's retry/backoff spans) carry a usable correlation key.
  const std::uint64_t rpc_id = rpc_.allocate_rpc_id();
  state->last_rpc_id = rpc_id;
  auto wire = security_->shield(coordinator, ViewId{0},
                                as_view(state->request.serialize()));
  if (!wire) {
    // Shield failure is local and permanent (crashed enclave, missing
    // keys): no amount of retrying the same bytes can help.
    fail(state, ErrorCode::kAuthFailed);
    return;
  }

  const sim::Time started = clock_.now();
  pending_replies_[rpc_id] = [this, started, state](VerifiedEnvelope& env) {
    auto reply = ClientReply::parse(as_view(env.payload));
    if (!reply) {
      // Authenticated but malformed (a replica-side bug): the rpc was
      // already settled, so no timeout remains to retry — fail the op
      // rather than strand it forever.
      fail(state, ErrorCode::kInternal);
      return;
    }
    op_latency_us_.record((clock_.now() - started) / sim::kMicrosecond);
    if (reply.value().ok) {
      ops_completed_.inc();
    } else {
      ops_failed_.inc();
    }
    if (state->started_ns != 0) {
      // Whole-op span (first attempt -> verified reply); detail 0 = success.
      obs::FlightRecorder::global().record(
          obs::SpanKind::kClientOp, state->last_rpc_id, options_.id.value,
          state->started_ns, obs::FlightRecorder::now_ns(),
          reply.value().ok ? 0
                           : static_cast<std::uint64_t>(reply.value().error));
      state->started_ns = 0;
    }
    if (state->done) state->done(reply.value());
  };
  rpc_.send(
      coordinator, msg::kClientRequest, std::move(wire).take(),
      [this, rpc_id, coordinator, state, attempt](NodeId src, Bytes response) {
        // The rpc is finished either way: detach the reply handler first so
        // no rejection path below can strand it in pending_replies_.
        const auto it = pending_replies_.find(rpc_id);
        if (it == pending_replies_.end()) return;
        auto handler = std::move(it->second);
        pending_replies_.erase(it);
        auto env = security_->verify(src, as_view(response));
        if (!env || env.value().batch) {
          // Forged/replayed reply (or a mis-typed batch frame). The
          // transport settled the rpc, so the real reply can no longer
          // complete this attempt — retransmit like a timeout, or the op
          // would strand forever.
          schedule_retry(coordinator, state, attempt + 1,
                         ErrorCode::kAuthFailed);
          return;
        }
        handler(env.value());
      },
      policy_.attempt_timeout(attempt),
      [this, rpc_id, coordinator, state, attempt] {
        pending_replies_.erase(rpc_id);
        schedule_retry(coordinator, state, attempt + 1, ErrorCode::kTimeout);
      },
      rpc_id,
      attempt == 0 ? net::PacketPriority::kNormal
                   : net::PacketPriority::kRetransmit);
}

}  // namespace recipe
