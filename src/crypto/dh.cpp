#include "crypto/dh.h"

#include "common/serde.h"

namespace recipe::crypto {

namespace {
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t mod) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % mod);
}
}  // namespace

std::uint64_t DiffieHellman::modexp(std::uint64_t base, std::uint64_t exp,
                                    std::uint64_t mod) {
  std::uint64_t result = 1;
  base %= mod;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, mod);
    base = mulmod(base, base, mod);
    exp >>= 1;
  }
  return result;
}

DhKeyPair DiffieHellman::generate(Rng& rng) {
  // Private exponent in [2, p-2].
  const std::uint64_t priv = rng.range(2, kPrime - 2);
  return DhKeyPair{priv, public_from_private(priv)};
}

std::uint64_t DiffieHellman::public_from_private(
    std::uint64_t private_exponent) {
  return modexp(kGenerator, private_exponent, kPrime);
}

SymmetricKey DiffieHellman::shared_key(std::uint64_t private_exponent,
                                       std::uint64_t peer_public,
                                       BytesView context_info) {
  const std::uint64_t shared = modexp(peer_public, private_exponent, kPrime);
  Writer w;
  w.u64(shared);
  const Bytes salt = to_bytes("recipe-dh-v1");
  return SymmetricKey{hkdf_sha256(as_view(w.buffer()), as_view(salt),
                                  context_info, kSymmetricKeySize)};
}

}  // namespace recipe::crypto
