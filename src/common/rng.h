// Deterministic pseudo-random number generation for simulation.
//
// All stochastic behaviour in the simulator (network jitter, drop decisions,
// workload key choice, adversary scheduling) draws from seeded Rng instances
// so every test and benchmark run is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace recipe {

// SplitMix64: used to expand a single seed into stream seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna — fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEE) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (~bound + 1) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool chance(double p) { return uniform() < p; }

  // Derives an independent child stream (e.g., one per node).
  Rng fork() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace recipe
