// End-to-end integration: the full Recipe lifecycle from Fig. 1 —
// transferable authentication through the CAS, initialization, normal
// operation under client load, view change, and recovery of a fresh node
// (attest -> shadow replica state fetch -> participation).
#include <gtest/gtest.h>

#include "attest/cas.h"
#include "protocols/abd/abd.h"
#include "protocols/raft/raft.h"
#include "recipe/client.h"

namespace recipe {
namespace {

constexpr NodeId kCasId{1000};

// A replica whose enclave gets its secrets through the REAL attestation
// protocol (no pre-provisioning).
template <typename Node, typename... Extra>
struct AttestedReplica {
  tee::Enclave enclave;
  std::unique_ptr<Node> node;
  std::unique_ptr<rpc::RpcObject> bootstrap_rpc;
  std::unique_ptr<attest::AttestationClient> attestation;

  AttestedReplica(sim::Simulator& simulator, net::SimNetwork& network,
                  tee::TeePlatform& platform, NodeId id,
                  std::vector<NodeId> membership, Extra... extra)
      : enclave(platform, "recipe-replica", id.value) {
    // Phase 1: a bootstrap endpoint answers the attestation challenge.
    bootstrap_rpc = std::make_unique<rpc::RpcObject>(
        simulator, network, id, net::NetStackParams::direct_io_tee());
    attestation = std::make_unique<attest::AttestationClient>(
        *bootstrap_rpc, enclave,
        [this, &simulator, &network, id, membership = std::move(membership),
         extra...](const attest::ProvisionInfo& info) {
          // Phase 2: provisioned -> hand the endpoint over to the protocol.
          EXPECT_EQ(info.assigned_id, id);
          bootstrap_rpc->shutdown();
          ReplicaOptions options;
          options.self = id;
          options.membership = membership;
          options.secured = true;
          options.enclave = &enclave;
          options.stack = net::NetStackParams::direct_io_tee();
          node = std::make_unique<Node>(simulator, network, std::move(options),
                                        extra...);
          node->start();
        });
  }
};

struct IntegrationHarness {
  sim::Simulator simulator;
  net::SimNetwork network{simulator, Rng(17)};
  tee::TeePlatform platform{1};
  attest::AttestationAuthority cas{simulator, network, kCasId,
                                   net::NetStackParams::direct_io_native(),
                                   attest::AuthorityParams{}};
  std::vector<NodeId> membership{NodeId{1}, NodeId{2}, NodeId{3}};

  IntegrationHarness() {
    cas.register_platform(platform);
    attest::ClusterPlan plan;
    plan.replicas = membership;
    cas.upload_plan(plan, crypto::Sha256::hash(as_view("recipe-replica")));
    cas.allow_measurement(crypto::Sha256::hash(as_view("recipe-client")));
  }

  // Attests `target` through the CAS; returns success.
  bool attest(NodeId target, bool full_member = true) {
    bool ok = false;
    bool done = false;
    cas.attest_and_provision(target, target, full_member,
                             [&](Status s, sim::Time) {
                               ok = s.is_ok();
                               done = true;
                             });
    const sim::Time deadline = simulator.now() + 30 * sim::kSecond;
    while (!done && simulator.now() < deadline && !simulator.idle()) {
      simulator.step();
    }
    return ok && done;
  }
};

TEST(Integration, FullLifecycleAbd) {
  IntegrationHarness h;

  // --- Transferable authentication phase (Fig. 1, blue box) ---
  std::vector<std::unique_ptr<AttestedReplica<protocols::AbdNode>>> replicas;
  for (NodeId id : h.membership) {
    replicas.push_back(std::make_unique<AttestedReplica<protocols::AbdNode>>(
        h.simulator, h.network, h.platform, id, h.membership));
  }
  for (NodeId id : h.membership) ASSERT_TRUE(h.attest(id));
  h.simulator.run_for(sim::kSecond);
  for (auto& r : replicas) ASSERT_NE(r->node, nullptr);

  // --- Client attests as a principal (non-member) ---
  tee::Enclave client_enclave(h.platform, "recipe-client", 2000);
  rpc::RpcObject client_bootstrap(h.simulator, h.network, NodeId{2000},
                                  net::NetStackParams::direct_io_native());
  attest::AttestationClient client_attestation(client_bootstrap, client_enclave,
                                               nullptr);
  ASSERT_TRUE(h.attest(NodeId{2000}, /*full_member=*/false));
  client_bootstrap.shutdown();

  ClientOptions client_options;
  client_options.id = ClientId{2000};
  client_options.secured = true;
  client_options.enclave = &client_enclave;
  KvClient client(h.simulator, h.network, client_options);

  // --- Normal operation (red box) ---
  bool put_ok = false;
  client.put(NodeId{1}, "k", to_bytes("v"),
             [&](const ClientReply& r) { put_ok = r.ok; });
  h.simulator.run_for(sim::kSecond);
  ASSERT_TRUE(put_ok);

  Bytes read_value;
  client.get(NodeId{2}, "k",
             [&](const ClientReply& r) { read_value = r.value; });
  h.simulator.run_for(sim::kSecond);
  EXPECT_EQ(to_string(as_view(read_value)), "v");

  // --- Recovery (§3.7): node 3's machine fails; a fresh enclave re-attests
  // and joins as a shadow replica, fetching state before participating. ---
  replicas[2]->node->stop();
  replicas[2].reset();           // old process is gone entirely
  h.network.recover(NodeId{3});  // machine replaced / rebooted
  replicas[2] = std::make_unique<AttestedReplica<protocols::AbdNode>>(
      h.simulator, h.network, h.platform, NodeId{3}, h.membership);
  ASSERT_TRUE(h.attest(NodeId{3}));
  h.simulator.run_for(sim::kSecond);
  ASSERT_NE(replicas[2]->node, nullptr);

  bool synced = false;
  std::size_t entries = 0;
  replicas[2]->node->sync_state_from(NodeId{1}, [&](Result<std::size_t> r) {
    synced = r.is_ok();
    if (r.is_ok()) entries = r.value();
  });
  h.simulator.run_for(sim::kSecond);
  EXPECT_TRUE(synced);
  EXPECT_EQ(entries, 1u);
  EXPECT_TRUE(replicas[2]->node->kv().contains("k"));

  // The recovered node participates again (coordinates a write).
  bool put2_ok = false;
  client.put(NodeId{3}, "k2", to_bytes("v2"),
             [&](const ClientReply& r) { put2_ok = r.ok; });
  h.simulator.run_for(sim::kSecond);
  EXPECT_TRUE(put2_ok);
}

TEST(Integration, FullLifecycleRaftWithViewChange) {
  IntegrationHarness h;

  protocols::RaftOptions raft;
  raft.initial_leader = NodeId{1};
  std::vector<std::unique_ptr<
      AttestedReplica<protocols::RaftNode, protocols::RaftOptions>>>
      replicas;
  for (NodeId id : h.membership) {
    replicas.push_back(
        std::make_unique<
            AttestedReplica<protocols::RaftNode, protocols::RaftOptions>>(
            h.simulator, h.network, h.platform, id, h.membership, raft));
  }
  for (NodeId id : h.membership) ASSERT_TRUE(h.attest(id));
  h.simulator.run_for(sim::kSecond);
  for (auto& r : replicas) ASSERT_NE(r->node, nullptr);

  tee::Enclave client_enclave(h.platform, "recipe-client", 2000);
  rpc::RpcObject client_bootstrap(h.simulator, h.network, NodeId{2000},
                                  net::NetStackParams::direct_io_native());
  attest::AttestationClient client_attestation(client_bootstrap, client_enclave,
                                               nullptr);
  ASSERT_TRUE(h.attest(NodeId{2000}, false));
  client_bootstrap.shutdown();

  ClientOptions client_options;
  client_options.id = ClientId{2000};
  client_options.secured = true;
  client_options.enclave = &client_enclave;
  KvClient client(h.simulator, h.network, client_options);

  bool ok = false;
  client.put(NodeId{1}, "pre-failover", to_bytes("1"),
             [&](const ClientReply& r) { ok = r.ok; });
  h.simulator.run_for(sim::kSecond);
  ASSERT_TRUE(ok);

  // View change: leader dies; survivors elect a new one.
  replicas[0]->node->stop();
  h.simulator.run_for(3 * sim::kSecond);
  protocols::RaftNode* leader = nullptr;
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    if (replicas[i]->node->role() == protocols::RaftNode::Role::kLeader) {
      leader = replicas[i]->node.get();
    }
  }
  ASSERT_NE(leader, nullptr);

  // Committed state survived; the new leader serves reads and writes.
  Bytes value;
  client.get(leader->self(), "pre-failover",
             [&](const ClientReply& r) { value = r.value; });
  h.simulator.run_for(sim::kSecond);
  EXPECT_EQ(to_string(as_view(value)), "1");

  ok = false;
  client.put(leader->self(), "post-failover", to_bytes("2"),
             [&](const ClientReply& r) { ok = r.ok; });
  h.simulator.run_for(sim::kSecond);
  EXPECT_TRUE(ok);
}

TEST(Integration, UnattestedNodeCannotParticipate) {
  IntegrationHarness h;

  std::vector<std::unique_ptr<AttestedReplica<protocols::AbdNode>>> replicas;
  for (NodeId id : {NodeId{1}, NodeId{2}}) {
    replicas.push_back(std::make_unique<AttestedReplica<protocols::AbdNode>>(
        h.simulator, h.network, h.platform, id, h.membership));
  }
  ASSERT_TRUE(h.attest(NodeId{1}));
  ASSERT_TRUE(h.attest(NodeId{2}));
  h.simulator.run_for(sim::kSecond);

  // Node 3 skips attestation and starts the protocol with an unprovisioned
  // enclave: it cannot shield or verify anything.
  tee::Enclave rogue_enclave(h.platform, "recipe-replica", 3);
  ReplicaOptions options;
  options.self = NodeId{3};
  options.membership = h.membership;
  options.secured = true;
  options.enclave = &rogue_enclave;
  protocols::AbdNode rogue(h.simulator, h.network, std::move(options));
  rogue.start();

  // The attested majority still serves clients.
  tee::Enclave client_enclave(h.platform, "recipe-client", 2000);
  rpc::RpcObject client_bootstrap(h.simulator, h.network, NodeId{2000},
                                  net::NetStackParams::direct_io_native());
  attest::AttestationClient ac(client_bootstrap, client_enclave, nullptr);
  ASSERT_TRUE(h.attest(NodeId{2000}, false));
  client_bootstrap.shutdown();
  ClientOptions client_options;
  client_options.id = ClientId{2000};
  client_options.secured = true;
  client_options.enclave = &client_enclave;
  KvClient client(h.simulator, h.network, client_options);

  bool ok = false;
  client.put(NodeId{1}, "k", to_bytes("v"),
             [&](const ClientReply& r) { ok = r.ok; });
  h.simulator.run_for(2 * sim::kSecond);
  EXPECT_TRUE(ok);
  // The unattested node never acquired the data (it cannot verify updates).
  EXPECT_FALSE(rogue.kv().contains("k"));
}

}  // namespace
}  // namespace recipe
