// Calibrated experiment rig for the paper's evaluation (§B).
//
// Builds a cluster of any protocol node type in a chosen deployment mode
// (native CFT, Recipe, Recipe+confidentiality, classical BFT, hybrid BFT),
// wires cost models / network stacks / core counts, provisions enclaves,
// preloads the YCSB keyspace, and measures closed-loop throughput over a
// simulated window.
//
// Hardware model mirrors the paper's testbed: 3x i9-9900K (8 cores),
// 40GbE, SGXv1 with ~94MB usable EPC, SCONE runtime.
#pragma once

#include <memory>
#include <vector>

#include "attest/bundle.h"
#include "net/network.h"
#include "recipe/client.h"
#include "recipe/node_base.h"
#include "sim/simulator.h"
#include "tee/cost_model.h"
#include "tee/enclave.h"
#include "tee/platform.h"
#include "workload/workload.h"

namespace recipe::workload {

struct TestbedConfig {
  std::size_t num_replicas = 3;
  std::size_t num_clients = 16;
  WorkloadConfig workload{};

  bool secured = true;
  bool confidentiality = false;
  net::NetStackParams replica_stack = net::NetStackParams::direct_io_tee();
  unsigned replica_cores = 8;

  // Adaptive shielded batching on every replica (replication traffic and
  // client replies); off by default to preserve the calibrated baselines.
  BatchConfig batch{};

  bool use_cost_model = true;
  tee::TeeCostParams cost_params{};
  // SCONE process footprint resident in the EPC (code+heap); message buffers
  // and KV metadata come on top. ~90MB leaves headroom that large values and
  // batching exhaust (the Fig. 3 cliff).
  std::uint64_t enclave_runtime_bytes = 90ULL << 20;
  // Ring-buffer slots per session in the in-enclave networking layer.
  std::size_t ring_slots_per_session = 128;
  // Batching protocols keep multiples of the wire batch resident.
  std::size_t buffer_amplifier = 1;

  sim::Time warmup = 100 * sim::kMillisecond;
  sim::Time window = 400 * sim::kMillisecond;
  std::uint64_t seed = 7;
};

struct RunResult {
  double ops_per_sec{0};
  std::uint64_t completed{0};
  std::uint64_t failed{0};
  Histogram latency_us;
};

template <typename Node>
class Testbed {
 public:
  explicit Testbed(TestbedConfig config)
      : config_(config),
        network_(simulator_, Rng(config.seed)),
        cost_model_(config.cost_params) {
    for (std::size_t i = 0; i < config_.num_replicas; ++i) {
      membership_.push_back(NodeId{i + 1});
    }
  }

  // Builds replicas (+ forwards protocol-specific options) and clients.
  template <typename... Extra>
  void build(Extra&&... extra) {
    for (std::size_t i = 0; i < config_.num_replicas; ++i) {
      auto enclave = std::make_unique<tee::Enclave>(platform_, "recipe-replica",
                                                    membership_[i].value);
      if (config_.secured) provision(*enclave);

      ReplicaOptions options;
      options.self = membership_[i];
      options.membership = membership_;
      options.secured = config_.secured;
      options.confidentiality = config_.confidentiality;
      options.enclave = enclave.get();
      options.stack = config_.replica_stack;
      options.cost_model = config_.use_cost_model ? &cost_model_ : nullptr;
      if (config_.secured) {
        options.enclave_runtime_bytes = config_.enclave_runtime_bytes;
        options.msg_buffer_bytes = estimated_msg_buffer_bytes();
      }
      if (config_.confidentiality) {
        options.kv_config.value_encryption_key = value_key_;
      }
      // Larger RPC windows for load generation.
      options.rpc_config.session_credits = 256;
      options.batch = config_.batch;

      enclaves_.push_back(std::move(enclave));
      nodes_.push_back(std::make_unique<Node>(simulator_, network_,
                                              std::move(options), extra...));
      network_.cpu(membership_[i]).set_cores(config_.replica_cores);
    }
    for (auto& node : nodes_) node->start();

    for (std::size_t c = 0; c < config_.num_clients; ++c) {
      const std::uint64_t id = 2000 + c;
      auto enclave = std::make_unique<tee::Enclave>(platform_, "recipe-client",
                                                    id);
      if (config_.secured) provision(*enclave);
      ClientOptions options;
      options.id = ClientId{id};
      options.secured = config_.secured;
      options.confidentiality = config_.confidentiality;
      options.enclave = enclave.get();
      options.request_timeout = 2 * sim::kSecond;
      client_enclaves_.push_back(std::move(enclave));
      clients_.push_back(
          std::make_unique<KvClient>(simulator_, network_, options));
    }
  }

  // Populates the keyspace directly in every replica's KV store (state is
  // identical everywhere, as after a YCSB load phase).
  void preload() {
    for (std::uint64_t k = 0; k < config_.workload.num_keys; ++k) {
      const std::string key = key_name(k);
      const Bytes value = make_value(config_.workload.value_size, k);
      for (auto& node : nodes_) {
        node->kv().write(key, as_view(value));
      }
    }
  }

  // Runs warmup + measurement window under the router; reports throughput.
  RunResult run(Router router) {
    ClosedLoopDriver driver(client_pointers(), config_.workload,
                            std::move(router));
    driver.start();
    simulator_.run_for(config_.warmup);
    driver.reset_stats();
    const sim::Time started = simulator_.now();
    simulator_.run_for(config_.window);
    const double elapsed_sec =
        static_cast<double>(simulator_.now() - started) /
        static_cast<double>(sim::kSecond);
    driver.stop();

    RunResult result;
    result.completed = driver.completed();
    result.failed = driver.failed();
    result.ops_per_sec = static_cast<double>(result.completed) / elapsed_sec;
    result.latency_us = driver.merged_latency_us();
    return result;
  }

  Node& node(std::size_t i) { return *nodes_[i]; }
  std::size_t size() const { return nodes_.size(); }
  const std::vector<NodeId>& membership() const { return membership_; }
  sim::Simulator& sim() { return simulator_; }
  net::SimNetwork& network() { return network_; }
  const TestbedConfig& config() const { return config_; }

  // --- Routers -------------------------------------------------------------
  static Router route_all_to(NodeId coordinator) {
    return [coordinator](OpType, std::uint64_t) { return coordinator; };
  }
  Router route_round_robin() const {
    auto members = membership_;
    return [members](OpType, std::uint64_t op) {
      return members[op % members.size()];
    };
  }
  // Chain replication: writes to the head, reads to the tail.
  Router route_head_tail() const {
    const NodeId head = membership_.front();
    const NodeId tail = membership_.back();
    return [head, tail](OpType op, std::uint64_t) {
      return op == OpType::kPut ? head : tail;
    };
  }

 private:
  std::uint64_t estimated_msg_buffer_bytes() const {
    const std::size_t sessions = config_.num_clients + config_.num_replicas;
    return static_cast<std::uint64_t>(config_.ring_slots_per_session) *
           sessions * config_.workload.value_size * config_.buffer_amplifier;
  }

  std::vector<KvClient*> client_pointers() {
    std::vector<KvClient*> out;
    out.reserve(clients_.size());
    for (auto& client : clients_) out.push_back(client.get());
    return out;
  }

  void provision(tee::Enclave& enclave) {
    (void)enclave.install_secret(attest::kClusterRootName, root_);
    if (config_.confidentiality) {
      (void)enclave.install_secret(attest::kValueKeyName, value_key_);
    }
  }

  TestbedConfig config_;
  sim::Simulator simulator_;
  net::SimNetwork network_;
  tee::TeePlatform platform_{1};
  tee::TeeCostModel cost_model_;
  crypto::SymmetricKey root_{Bytes(32, 0x77)};
  crypto::SymmetricKey value_key_{Bytes(32, 0x44)};
  std::vector<NodeId> membership_;
  std::vector<std::unique_ptr<tee::Enclave>> enclaves_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<tee::Enclave>> client_enclaves_;
  std::vector<std::unique_ptr<KvClient>> clients_;
};

}  // namespace recipe::workload
