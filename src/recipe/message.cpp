#include "recipe/message.h"

#include <cassert>
#include <cstring>

#include "common/endian.h"
#include "common/serde.h"

namespace recipe {

namespace {

inline void encode_header(std::uint8_t* out, const ShieldedHeader& h) {
  store_le64(out + 0, h.view.value);
  store_le64(out + 8, h.cq.value);
  store_le64(out + 16, h.cnt);
  store_le64(out + 24, h.sender.value);
  store_le64(out + 32, h.receiver.value);
  out[40] = h.flags;
}

}  // namespace

Bytes encode_shielded_frame(const ShieldedHeader& header, BytesView payload,
                            std::size_t mac_size) {
  const std::size_t total =
      kShieldedPayloadOffset + payload.size() + 4 + mac_size;
  Bytes wire;
  wire.reserve(total);
  wire.resize(kShieldedPayloadOffset);  // header region, fully overwritten
  encode_header(wire.data(), header);
  store_le32(wire.data() + kShieldedHeaderSize,
             static_cast<std::uint32_t>(payload.size()));
  // Payload lands via a single bulk insert — no pre-zeroing pass over it.
  wire.insert(wire.end(), payload.begin(), payload.end());
  wire.resize(total);  // MAC length field + zeroed MAC suffix
  store_le32(wire.data() + kShieldedPayloadOffset + payload.size(),
             static_cast<std::uint32_t>(mac_size));
  return wire;
}

void write_frame_mac(Bytes& wire, const crypto::Hmac& hmac) {
  const std::size_t covered = wire.size() - crypto::kMacSize - 4;
  // Only frames encoded with mac_size == crypto::kMacSize have a suffix this
  // function can fill; the length field sits exactly at `covered`.
  assert(wire.size() >= kShieldedPayloadOffset + 4 + crypto::kMacSize);
  assert(load_le32(wire.data() + covered) == crypto::kMacSize);
  crypto::Sha256 inner = hmac.begin();
  inner.update(BytesView(wire.data(), covered));
  const crypto::Mac mac = hmac.finish(inner);
  std::memcpy(wire.data() + wire.size() - crypto::kMacSize, mac.data(),
              crypto::kMacSize);
}

Bytes encode_shielded_frame_head(const ShieldedHeader& header,
                                 std::size_t payload_size) {
  Bytes head(kShieldedPayloadOffset);
  encode_header(head.data(), header);
  store_le32(head.data() + kShieldedHeaderSize,
             static_cast<std::uint32_t>(payload_size));
  return head;
}

Bytes gathered_frame_tail(BytesView head, BytesView payload,
                          const crypto::Hmac& hmac) {
  // Same coverage as write_frame_mac(): the wire prefix, here streamed in
  // two updates instead of one contiguous pass.
  crypto::Sha256 inner = hmac.begin();
  inner.update(head);
  inner.update(payload);
  const crypto::Mac mac = hmac.finish(inner);
  Bytes tail(4 + crypto::kMacSize);
  store_le32(tail.data(), crypto::kMacSize);
  std::memcpy(tail.data() + 4, mac.data(), crypto::kMacSize);
  return tail;
}

Result<ShieldedView> ShieldedView::parse(BytesView wire) {
  if (wire.size() < kShieldedPayloadOffset) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "malformed shielded message");
  }
  const std::uint8_t* in = wire.data();
  ShieldedView v;
  v.header.view = ViewId{load_le64(in + 0)};
  v.header.cq = ChannelId{load_le64(in + 8)};
  v.header.cnt = load_le64(in + 16);
  v.header.sender = NodeId{load_le64(in + 24)};
  v.header.receiver = NodeId{load_le64(in + 32)};
  v.header.flags = in[40];

  const std::uint64_t payload_len = load_le32(in + kShieldedHeaderSize);
  const std::uint64_t mac_at = kShieldedPayloadOffset + payload_len;
  if (mac_at + 4 > wire.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "malformed shielded message");
  }
  const std::uint64_t mac_len = load_le32(in + mac_at);
  if (mac_at + 4 + mac_len != wire.size()) {  // trailing garbage or truncation
    return Status::error(ErrorCode::kInvalidArgument,
                         "malformed shielded message");
  }
  v.payload = wire.subspan(kShieldedPayloadOffset, payload_len);
  v.mac = wire.subspan(mac_at + 4, mac_len);
  v.authenticated = wire.subspan(0, mac_at);
  return v;
}

Bytes ShieldedMessage::authenticated_data() const {
  Writer w(payload.size() + 48);
  w.id(header.view);
  w.id(header.cq);
  w.u64(header.cnt);
  w.id(header.sender);
  w.id(header.receiver);
  w.u8(header.flags);
  w.bytes(as_view(payload));
  return std::move(w).take();
}

Bytes ShieldedMessage::serialize() const {
  Writer w(payload.size() + mac.size() + 56);
  w.id(header.view);
  w.id(header.cq);
  w.u64(header.cnt);
  w.id(header.sender);
  w.id(header.receiver);
  w.u8(header.flags);
  w.bytes(as_view(payload));
  w.bytes(as_view(mac));
  return std::move(w).take();
}

Result<ShieldedMessage> ShieldedMessage::parse(BytesView wire) {
  Reader r(wire);
  ShieldedMessage msg;
  auto view = r.id<ViewId>();
  auto cq = r.id<ChannelId>();
  auto cnt = r.u64();
  auto sender = r.id<NodeId>();
  auto receiver = r.id<NodeId>();
  auto flags = r.u8();
  auto payload = r.bytes();
  auto mac = r.bytes();
  if (!view || !cq || !cnt || !sender || !receiver || !flags || !payload ||
      !mac || !r.exhausted()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "malformed shielded message");
  }
  msg.header.view = *view;
  msg.header.cq = *cq;
  msg.header.cnt = *cnt;
  msg.header.sender = *sender;
  msg.header.receiver = *receiver;
  msg.header.flags = *flags;
  msg.payload = std::move(*payload);
  msg.mac = std::move(*mac);
  return msg;
}

ChannelId directed_channel(NodeId sender, NodeId receiver) {
  return ChannelId{(sender.value << 20) | (receiver.value & 0xFFFFF)};
}

// --- Batch frames ------------------------------------------------------------

BatchFrame::BatchFrame() : body_(kBatchCountSize, 0) {}

void BatchFrame::add(std::uint8_t kind, std::uint32_t type,
                     std::uint64_t rpc_id, BytesView payload) {
  const std::size_t at = body_.size();
  body_.resize(at + kBatchItemOverhead);
  body_[at] = kind;
  store_le32(body_.data() + at + 1, type);
  store_le64(body_.data() + at + 5, rpc_id);
  store_le32(body_.data() + at + 13,
             static_cast<std::uint32_t>(payload.size()));
  append(body_, payload);
  ++count_;
}

Bytes BatchFrame::take_body() {
  store_le32(body_.data(), count_);
  Bytes out = std::move(body_);
  body_.assign(kBatchCountSize, 0);
  count_ = 0;
  return out;
}

Result<BatchView> BatchView::parse(BytesView body) {
  if (body.size() < kBatchCountSize) {
    return Status::error(ErrorCode::kInvalidArgument, "malformed batch body");
  }
  const std::uint32_t count = load_le32(body.data());
  BatchView view;
  // Reserve from the byte budget, not the (attacker-controlled) count.
  view.items_.reserve(std::min<std::size_t>(
      count, (body.size() - kBatchCountSize) / kBatchItemOverhead + 1));
  std::size_t pos = kBatchCountSize;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (body.size() - pos < kBatchItemOverhead) {
      return Status::error(ErrorCode::kInvalidArgument, "malformed batch body");
    }
    BatchItem item;
    item.kind = body[pos];
    item.type = load_le32(body.data() + pos + 1);
    item.rpc_id = load_le64(body.data() + pos + 5);
    const std::uint32_t len = load_le32(body.data() + pos + 13);
    pos += kBatchItemOverhead;
    if (body.size() - pos < len) {
      return Status::error(ErrorCode::kInvalidArgument, "malformed batch body");
    }
    item.payload = body.subspan(pos, len);
    pos += len;
    view.items_.push_back(item);
  }
  if (pos != body.size()) {  // trailing garbage
    return Status::error(ErrorCode::kInvalidArgument, "malformed batch body");
  }
  return view;
}

}  // namespace recipe
