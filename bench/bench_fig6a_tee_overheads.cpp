// Figure 6a: overhead of the Recipe transformation + TEEs relative to a
// NATIVE execution of the same protocol code (same direct-I/O network stack,
// no authentication layer, no enclave). Paper: 2x-15x slowdown, highest for
// the batching/total-order protocols (Raft, AllConcur).
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace recipe::bench;

  // Three representative mixes (the full five-point sweep is identical in
  // shape and doubles the runtime of the native runs).
  const std::vector<double> read_fractions = {0.50, 0.90, 0.99};

  std::printf("Figure 6a: TEE+transformation overhead (native ops / R- ops)\n");
  std::printf("%-8s %10s %10s %12s %10s\n", "R%", "R-Raft", "R-CR",
              "R-AllConcur", "R-ABD");

  for (double r : read_fractions) {
    ExperimentParams secured;
    secured.read_fraction = r;
    ExperimentParams native = secured;
    native.secured = false;

    const double raft = run_raft(native).ops_per_sec /
                        run_raft(secured).ops_per_sec;
    const double cr = run_cr(native).ops_per_sec / run_cr(secured).ops_per_sec;
    const double allconcur = run_allconcur(native).ops_per_sec /
                             run_allconcur(secured).ops_per_sec;
    const double abd = run_abd(native).ops_per_sec /
                       run_abd(secured).ops_per_sec;
    std::printf("%-8.0f %9.1fx %9.1fx %11.1fx %9.1fx\n", r * 100, raft, cr,
                allconcur, abd);
  }
  std::printf("(paper: overall 2x-15x; Raft/AllConcur highest)\n");
  return 0;
}
