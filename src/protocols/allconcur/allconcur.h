// AllConcur (Poke, Hoefler & Glass) — leaderless atomic broadcast with total
// ordering (paper §B.2 category D).
//
// Execution proceeds in rounds. Every node contributes one (possibly empty)
// batch of client operations per round and disseminates it through the
// overlay digraph G; a round completes at a node once it holds the round's
// contribution from every live node, at which point all contributions are
// applied in a deterministic order (ascending node id) with no further
// synchronization — the total order is position-derived, exactly the
// paper's "predetermined static allocation of write-ids to nodes".
//
// Rounds are demand-driven: a node with pending client ops opens the next
// round; any node receiving a round-r contribution before sending its own
// immediately broadcasts its (possibly empty) round-r batch.
//
// Simplifications vs full AllConcur (documented): for the evaluated cluster
// sizes (3-7 nodes) the overlay G is the complete digraph, whose vertex
// connectivity n-1 >= f+1 matches the paper's 3-node setup; failure
// handling uses Recipe's lease failure detector in place of AllConcur's
// failure-notification flooding. Reads are served locally (sequential
// consistency) by default, or routed through the total order when
// `linearizable_reads` is set — both variants from the paper's discussion.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "recipe/node_base.h"

namespace recipe::protocols {

namespace ac_msg {
constexpr rpc::RequestType kRound = 0xAC01;  // [round, count, ops...]
}  // namespace ac_msg

struct AllConcurOptions {
  bool linearizable_reads = false;
  std::size_t max_batch_ops = 64;
};

class AllConcurNode final : public ReplicaNode {
 public:
  AllConcurNode(sim::Clock& clock, net::Transport& network,
                ReplicaOptions options, AllConcurOptions ac_options = {});

  bool is_coordinator() const override { return running(); }  // leaderless
  bool serves_local_reads() const override {
    return !ac_.linearizable_reads;
  }
  void submit(const ClientRequest& request, ReplyFn reply) override;

  std::uint64_t round() const { return round_; }

 protected:
  void on_suspected(NodeId peer) override;

 private:
  struct PendingOp {
    Bytes op;
    ReplyFn reply;
  };

  void open_round_if_needed();
  void broadcast_contribution(std::uint64_t round);
  void try_complete_round();
  void apply_round();

  AllConcurOptions ac_;
  std::uint64_t round_{1};  // the round currently being collected
  std::deque<PendingOp> pending_;
  // Own in-flight contribution per round: ops + their client replies.
  std::map<std::uint64_t, std::vector<PendingOp>> my_contribution_;
  std::map<std::uint64_t, bool> broadcast_done_;
  // round -> sender -> batch of ops.
  std::map<std::uint64_t, std::map<NodeId, std::vector<Bytes>>> contributions_;
  std::set<NodeId> dead_;
};

}  // namespace recipe::protocols
