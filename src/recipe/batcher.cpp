#include "recipe/batcher.h"

#include <algorithm>

#include "obs/flight_recorder.h"

namespace recipe {

MessageBatcher::MessageBatcher(sim::Clock& clock, BatchConfig config,
                               FlushFn flush)
    : clock_(clock), config_(config), flush_(std::move(flush)) {
  // A floor above the ceiling would make the adaptive walk oscillate.
  config_.min_delay = std::min(config_.min_delay, config_.max_delay);
  config_.max_count = std::max<std::size_t>(config_.max_count, 1);
  config_.max_bytes = std::max<std::size_t>(config_.max_bytes, 1);
}

MessageBatcher::~MessageBatcher() { cancel_all(); }

void MessageBatcher::enqueue(NodeId peer, std::uint8_t kind,
                             std::uint32_t type, std::uint64_t rpc_id,
                             BytesView payload) {
  Pending& pending = pending_[peer];
  if (pending.delay == 0 && config_.max_delay > 0) {
    // First traffic to this peer starts at the ceiling (the RTT budget when
    // pacing already has samples, max_delay otherwise).
    pending.delay = delay_ceiling(pending);
  }
  if (pending.frame.empty()) {
    pending.frame.reserve(std::min<std::size_t>(config_.max_bytes, 8 * 1024));
  }
  const bool was_empty = pending.frame.empty();
  pending.frame.add(kind, type, rpc_id, payload);
  buffered_bytes_.fetch_add(kBatchItemOverhead + payload.size(),
                            std::memory_order_relaxed);
  messages_batched_.fetch_add(1, std::memory_order_relaxed);
  if (was_empty) {
    pending.first_enqueue_ns = obs::FlightRecorder::global().enabled()
                                   ? obs::FlightRecorder::now_ns()
                                   : 0;
  }

  if (pending.frame.count() >= config_.max_count ||
      pending.frame.body_bytes() >= config_.max_bytes) {
    flush_pending(peer, pending, /*by_timer=*/false);
    return;
  }
  if (pending.frame.count() == 1) {
    // First sub-message arms the drain timer; max_delay == 0 degenerates to
    // "coalesce everything enqueued by the current simulation event".
    pending.timer = clock_.schedule(pending.delay, [this, peer] {
      const auto it = pending_.find(peer);
      if (it == pending_.end() || it->second.frame.empty()) return;
      flush_pending(peer, it->second, /*by_timer=*/true);
    });
  }
}

void MessageBatcher::flush(NodeId peer) {
  const auto it = pending_.find(peer);
  if (it == pending_.end() || it->second.frame.empty()) return;
  flush_pending(peer, it->second, /*by_timer=*/false);
}

void MessageBatcher::flush_all() {
  // Snapshot the peer set first: flush_ may re-enter enqueue(), and a
  // pending_ insertion mid-iteration would invalidate a live iterator.
  std::vector<NodeId> peers;
  peers.reserve(pending_.size());
  for (const auto& [peer, pending] : pending_) {
    if (!pending.frame.empty()) peers.push_back(peer);
  }
  for (NodeId peer : peers) flush(peer);
}

void MessageBatcher::cancel_all() {
  for (auto& [peer, pending] : pending_) pending.timer.cancel();
  pending_.clear();
  buffered_bytes_.store(0, std::memory_order_relaxed);
}

sim::Time MessageBatcher::current_delay(NodeId peer) const {
  const auto it = pending_.find(peer);
  if (it == pending_.end()) return config_.max_delay;
  if (it->second.delay == 0) return delay_ceiling(it->second);
  return it->second.delay;
}

void MessageBatcher::record_rtt(NodeId peer, sim::Time rtt) {
  Pending& pending = pending_[peer];
  const double sample = static_cast<double>(rtt);
  pending.rtt_ewma = pending.rtt_ewma == 0.0
                         ? sample
                         : pending.rtt_ewma +
                               config_.rtt_alpha * (sample - pending.rtt_ewma);
  // A shrunken round trip pulls an over-budget delay back under it
  // immediately; growth is left to the occupancy walk, which only spends
  // the larger budget when timer flushes show the patience pays.
  pending.delay = std::min(pending.delay, delay_ceiling(pending));
}

sim::Time MessageBatcher::delay_ceiling(const Pending& pending) const {
  if (config_.rtt_fraction <= 0.0 || pending.rtt_ewma == 0.0 ||
      config_.max_delay == 0) {
    return config_.max_delay;
  }
  // The RTT budget: a flush wait no longer than this fraction of the
  // measured round trip stays hidden inside it. The 1 ns floor keeps clear
  // of the delay==0 sentinel.
  const auto paced =
      static_cast<sim::Time>(pending.rtt_ewma * config_.rtt_fraction);
  return std::clamp(paced, std::max(config_.min_delay, sim::Time{1}),
                    config_.max_delay);
}

sim::Time MessageBatcher::rtt_ewma(NodeId peer) const {
  const auto it = pending_.find(peer);
  return it == pending_.end() ? 0
                              : static_cast<sim::Time>(it->second.rtt_ewma);
}

void MessageBatcher::flush_pending(NodeId peer, Pending& pending,
                                   bool by_timer) {
  pending.timer.cancel();
  const std::size_t count = pending.frame.count();
  Bytes body = pending.frame.take_body();
  buffered_bytes_.fetch_sub(body.size() - kBatchCountSize,
                            std::memory_order_relaxed);
  batches_flushed_.fetch_add(1, std::memory_order_relaxed);
  if (by_timer) {
    flushes_by_timer_.fetch_add(1, std::memory_order_relaxed);
    adapt(pending, count);
  } else {
    flushes_by_size_.fetch_add(1, std::memory_order_relaxed);
  }
  if (pending.first_enqueue_ns != 0) {
    // Queue-wait span: oldest sub-message enqueue -> this flush.
    obs::FlightRecorder::global().record(
        obs::SpanKind::kBatchQueueWait, /*rpc_id=*/0, /*actor=*/peer.value,
        pending.first_enqueue_ns, obs::FlightRecorder::now_ns(),
        /*detail=*/count);
    pending.first_enqueue_ns = 0;
  }
  // flush_ may re-enter enqueue() for a DIFFERENT peer (it never sends back
  // through the batcher to the same flush), after this peer's state is clean.
  flush_(peer, std::move(body), count);
}

void MessageBatcher::adapt(Pending& pending, std::size_t flushed_count) {
  if (!config_.adaptive || config_.max_delay == 0) return;
  if (flushed_count <= std::max<std::size_t>(config_.max_count / 4, 1)) {
    // The wait bought (almost) nothing: stop taxing sparse traffic. Floor at
    // 1 ns: delay == 0 is the "uninitialized" sentinel in Pending.
    pending.delay =
        std::max({config_.min_delay, pending.delay / 2, sim::Time{1}});
  } else {
    // Nearly full at the deadline: a little more patience fills the frame —
    // up to the RTT budget, past which the wait would poke out of the round
    // trip and show up as client latency.
    pending.delay = std::min(delay_ceiling(pending), pending.delay * 2);
  }
}

}  // namespace recipe
