// PBFT baseline (Castro & Liskov; BFT-smart-style configuration).
//
// The comparison baseline for the paper's evaluation (Figs. 3-5): a
// classical BFT protocol with
//   * n = 3f+1 replicas (vs Recipe's 2f+1),
//   * three broadcast phases (pre-prepare, prepare, commit) and O(n^2)
//     message complexity,
//   * MAC-vector authenticators (cost charged per message via the cost
//     model; no TEEs),
//   * kernel-socket networking (BFT-smart is a TCP/Java system).
//
// Simplifications vs production PBFT (documented): no checkpointing /
// garbage collection of the slot log, and a simplified view change (new
// primary re-proposes undecided slots; sufficient for the crash-fault
// liveness exercised in tests — the paper's evaluation only measures
// normal-case operation).
#pragma once

#include <map>
#include <set>

#include "recipe/node_base.h"

namespace recipe::bft {

namespace pbft_msg {
constexpr rpc::RequestType kPrePrepare = 0xBF01;
constexpr rpc::RequestType kPrepare = 0xBF02;
constexpr rpc::RequestType kCommit = 0xBF03;
constexpr rpc::RequestType kViewChange = 0xBF04;
constexpr rpc::RequestType kNewView = 0xBF05;
}  // namespace pbft_msg

class PbftNode final : public ReplicaNode {
 public:
  PbftNode(sim::Clock& clock, net::Transport& network,
           ReplicaOptions options);

  bool is_coordinator() const override { return primary() == self(); }
  void submit(const ClientRequest& request, ReplyFn reply) override;

  std::size_t f() const { return (membership().size() - 1) / 3; }
  NodeId primary() const {
    return membership()[view_ % membership().size()];
  }
  std::uint64_t view() const { return view_; }
  std::uint64_t executed_upto() const { return executed_upto_; }

 protected:
  ViewId current_view() const override { return ViewId{view_}; }
  void on_suspected(NodeId peer) override;

 private:
  struct Slot {
    Bytes request;
    crypto::Sha256Digest digest{};
    bool pre_prepared{false};
    std::set<NodeId> prepares;
    std::set<NodeId> commits;
    bool sent_commit{false};
    bool committed{false};
    ReplyFn reply;  // primary only
  };

  void charge_mac(std::size_t bytes);
  void handle_pre_prepare(VerifiedEnvelope& env);
  void handle_prepare(VerifiedEnvelope& env);
  void handle_commit(VerifiedEnvelope& env);
  void maybe_prepared(std::uint64_t seq);
  void maybe_committed(std::uint64_t seq);
  void execute_ready();
  void start_view_change();

  std::uint64_t view_{0};
  std::uint64_t next_seq_{0};      // primary: last assigned slot
  std::uint64_t executed_upto_{0};
  std::map<std::uint64_t, Slot> slots_;
  std::set<NodeId> view_change_votes_;
};

}  // namespace recipe::bft
