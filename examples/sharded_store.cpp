// sharded_store: the full Fig. 2 stack — a distributed data-store layer
// (consistent-hash routing table) in front of multiple independent Recipe
// replication groups (shards), each a 3-replica R-CR chain.
#include <cstdio>
#include <memory>
#include <vector>

#include "attest/bundle.h"
#include "protocols/cr/cr.h"
#include "recipe/client.h"
#include "workload/routing.h"
#include "workload/workload.h"

using namespace recipe;

namespace {

// One shard: an independent 3-node R-CR chain with its own client handle.
struct Shard {
  std::vector<std::unique_ptr<tee::Enclave>> enclaves;
  std::vector<std::unique_ptr<protocols::ChainNode>> replicas;
  std::unique_ptr<tee::Enclave> client_enclave;
  std::unique_ptr<KvClient> client;
  NodeId head;
  NodeId tail;

  Shard(sim::Simulator& simulator, net::SimNetwork& network,
        tee::TeePlatform& platform, const crypto::SymmetricKey& root,
        std::uint64_t base_id) {
    std::vector<NodeId> membership;
    for (std::uint64_t i = 0; i < 3; ++i) membership.push_back(NodeId{base_id + i});
    head = membership.front();
    tail = membership.back();
    for (NodeId id : membership) {
      auto enclave =
          std::make_unique<tee::Enclave>(platform, "recipe-replica", id.value);
      (void)enclave->install_secret(attest::kClusterRootName, root);
      ReplicaOptions options;
      options.self = id;
      options.membership = membership;
      options.secured = true;
      options.enclave = enclave.get();
      replicas.push_back(std::make_unique<protocols::ChainNode>(
          simulator, network, std::move(options)));
      enclaves.push_back(std::move(enclave));
    }
    for (auto& replica : replicas) replica->start();

    client_enclave = std::make_unique<tee::Enclave>(platform, "recipe-client",
                                                    base_id + 1000);
    (void)client_enclave->install_secret(attest::kClusterRootName, root);
    ClientOptions options;
    options.id = ClientId{base_id + 1000};
    options.secured = true;
    options.enclave = client_enclave.get();
    client = std::make_unique<KvClient>(simulator, network, options);
  }

  std::size_t keys() const { return replicas[0]->kv().size(); }
};

}  // namespace

int main() {
  sim::Simulator simulator;
  net::SimNetwork network(simulator, Rng(21));
  tee::TeePlatform platform(1);
  const crypto::SymmetricKey root{Bytes(32, 0x77)};

  // Three shards (nine replicas total) + the routing table.
  constexpr std::size_t kShards = 3;
  workload::ConsistentHashRing ring;
  std::vector<std::unique_ptr<Shard>> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    ring.add_shard(static_cast<workload::ShardId>(s));
    shards.push_back(std::make_unique<Shard>(simulator, network, platform, root,
                                             /*base_id=*/1 + 100 * s));
  }
  std::printf("deployed %zu shards x 3 replicas; routing via consistent "
              "hashing (%zu shards on the ring)\n",
              kShards, ring.shard_count());

  // Write 60 keys through the routing layer.
  int written = 0;
  for (int i = 0; i < 60; ++i) {
    const std::string key = workload::key_name(static_cast<std::uint64_t>(i));
    Shard& shard = *shards[ring.lookup(key)];
    shard.client->put(shard.head, key, to_bytes("value-" + std::to_string(i)),
                      [&](const ClientReply& r) {
                        if (r.ok) ++written;
                      });
  }
  simulator.run_for(2 * sim::kSecond);
  std::printf("writes committed: %d/60\n", written);

  // Read them back through the same routing.
  int correct = 0;
  for (int i = 0; i < 60; ++i) {
    const std::string key = workload::key_name(static_cast<std::uint64_t>(i));
    Shard& shard = *shards[ring.lookup(key)];
    const std::string expected = "value-" + std::to_string(i);
    shard.client->get(shard.tail, key, [&, expected](const ClientReply& r) {
      if (r.found && to_string(as_view(r.value)) == expected) ++correct;
    });
  }
  simulator.run_for(2 * sim::kSecond);
  std::printf("reads correct:    %d/60\n", correct);

  for (std::size_t s = 0; s < kShards; ++s) {
    std::printf("shard %zu owns %zu keys\n", s, shards[s]->keys());
  }
  std::printf("(keys partition across shards; each shard replicates "
              "independently with Recipe guarantees)\n");
  return 0;
}
