// Adaptive shielded message batching (ROADMAP: batching + async for heavy
// small-op traffic).
//
// PR 2 made one shield/verify round trip cheap; what remains on the small-KV
// hot path is PER-MESSAGE overhead: a full frame header, a MAC, a trusted
// counter increment, a replay-window slot and the fixed per-packet network
// cost (NetStackParams::*_cpu_base, the 64-byte Packet::wire_size() header).
// MessageBatcher amortizes all of these: sub-messages destined for the same
// peer are coalesced into one BatchFrame body and flushed as a SINGLE
// shielded frame — one header, one counter/nonce, one MAC, one packet.
//
// Flush policy (per peer, all simulated-time driven):
//  * max_count  — flush when the pending batch holds this many sub-messages;
//  * max_bytes  — ...or when its encoded body reaches this many bytes;
//  * max_delay  — ...or when the oldest sub-message has waited this long
//                 (a sim::Simulator timer, so batches always drain).
// With `adaptive` set the per-peer delay self-tunes between min_delay and
// max_delay: timer flushes that caught almost nothing halve the delay (don't
// hold lone messages hostage), timer flushes that nearly filled the batch
// grow it back (a little more patience buys a full frame). Size/count
// flushes leave the delay alone — under dense traffic the timer never fires.
//
// RTT pacing (`rtt_fraction` > 0): the MEASURED per-peer round-trip time
// sets the CEILING the occupancy walk may grow the delay to — the owner
// feeds response RTTs into record_rtt(), an EWMA smooths them, and the
// per-peer delay budget becomes rtt_ewma * rtt_fraction (clamped to
// [min_delay, max_delay]). The rationale: a flush delay is invisible while
// it hides inside the network round trip ahead of it, so the budget is the
// largest wait the latency budget allows — on a fast loopback it collapses
// toward min_delay, across a real network it stretches toward max_delay.
// The occupancy walk stays active UNDER the budget (sparse timer flushes
// still halve the delay so straggler traffic drains fast); only its growth
// is capped, and a shrinking RTT pulls an over-budget delay back down
// immediately.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/bytes.h"
#include "common/ids.h"
#include "recipe/message.h"
#include "sim/clock.h"

namespace recipe {

struct BatchConfig {
  bool enabled = false;  // default off: unbatched wire format, golden-pinned
  std::size_t max_count = 16;
  std::size_t max_bytes = 32 * 1024;
  sim::Time max_delay = 10 * sim::kMicrosecond;
  sim::Time min_delay = 1 * sim::kMicrosecond;  // adaptive floor
  bool adaptive = true;
  // RTT pacing: when > 0, a peer's flush-delay CEILING is re-paced to
  // rtt_ewma(peer) * rtt_fraction (clamped to [min_delay, max_delay]); the
  // occupancy walk adapts underneath it. 0 (default) keeps the fixed
  // max_delay ceiling and the exact historical flush timing.
  double rtt_fraction = 0.0;
  // EWMA smoothing weight for new RTT samples (0 < alpha <= 1).
  double rtt_alpha = 0.2;
  // Minimum spacing between the owner's pacing probes to one peer. Tracked
  // protocol traffic feeds record_rtt() for free, but fire-and-forward
  // protocols (CR's chain, AllConcur's rounds) never see an RPC response;
  // with rtt_fraction > 0 the node keeps every paced link measured by
  // enqueuing a tiny tracked probe at most this often (it rides inside a
  // batch, so a probe costs one 17-byte sub-message).
  sim::Time rtt_probe_period = 1 * sim::kMillisecond;
};

class MessageBatcher {
 public:
  // Invoked with the finalized batch body when a peer's batch flushes; the
  // owner shields it (SecurityPolicy::shield_batch) and ships one frame.
  using FlushFn = std::function<void(NodeId peer, Bytes body,
                                     std::size_t count)>;

  MessageBatcher(sim::Clock& clock, BatchConfig config, FlushFn flush);
  ~MessageBatcher();

  MessageBatcher(const MessageBatcher&) = delete;
  MessageBatcher& operator=(const MessageBatcher&) = delete;

  bool enabled() const { return config_.enabled; }
  const BatchConfig& config() const { return config_; }

  // Appends one sub-message to `peer`'s pending batch and applies the flush
  // policy. Call only when enabled().
  void enqueue(NodeId peer, std::uint8_t kind, std::uint32_t type,
               std::uint64_t rpc_id, BytesView payload);

  // Flushes a peer's pending batch immediately (no-op when empty).
  void flush(NodeId peer);
  void flush_all();

  // Drops all pending batches WITHOUT flushing and cancels timers (node
  // crash: nothing more may leave this node).
  void cancel_all();

  // Bytes currently buffered across all peers (enclave working-set model).
  std::size_t buffered_bytes() const {
    return buffered_bytes_.load(std::memory_order_relaxed);
  }

  // The adaptive delay currently applied to `peer` (max_delay when the peer
  // has no history yet).
  sim::Time current_delay(NodeId peer) const;

  // Feeds one measured response round-trip time for `peer` into the pacing
  // EWMA. With rtt_fraction > 0 this re-paces the peer's flush-delay budget;
  // with the default 0 it only records (rtt_ewma() stays observable either
  // way).
  void record_rtt(NodeId peer, sim::Time rtt);

  // The smoothed RTT for `peer` (0 when no samples were recorded).
  sim::Time rtt_ewma(NodeId peer) const;

  // --- Statistics ------------------------------------------------------------
  // Written on the owner's loop thread; relaxed atomics so a metrics scrape
  // from the admin thread reads them without a race.
  std::uint64_t messages_batched() const {
    return messages_batched_.load(std::memory_order_relaxed);
  }
  std::uint64_t batches_flushed() const {
    return batches_flushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t flushes_by_size() const {
    return flushes_by_size_.load(std::memory_order_relaxed);
  }
  std::uint64_t flushes_by_timer() const {
    return flushes_by_timer_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    BatchFrame frame;
    sim::TimerHandle timer;
    sim::Time delay{0};      // adaptive per-peer delay; 0 = not initialized
    double rtt_ewma{0.0};    // smoothed response RTT in ns; 0 = no samples
    // Wall-clock of the oldest queued sub-message, captured only while the
    // flight recorder is enabled; feeds the kBatchQueueWait span.
    std::uint64_t first_enqueue_ns{0};
  };

  void flush_pending(NodeId peer, Pending& pending, bool by_timer);
  void adapt(Pending& pending, std::size_t flushed_count);
  // The largest delay the occupancy walk may grow to for this peer: the
  // RTT budget when pacing is on and samples exist, max_delay otherwise.
  sim::Time delay_ceiling(const Pending& pending) const;

  sim::Clock& clock_;
  BatchConfig config_;
  FlushFn flush_;
  std::unordered_map<NodeId, Pending> pending_;
  std::atomic<std::size_t> buffered_bytes_{0};

  std::atomic<std::uint64_t> messages_batched_{0};
  std::atomic<std::uint64_t> batches_flushed_{0};
  std::atomic<std::uint64_t> flushes_by_size_{0};
  std::atomic<std::uint64_t> flushes_by_timer_{0};
};

}  // namespace recipe
