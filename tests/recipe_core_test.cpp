// Tests for the Recipe core: shielded message format, NullSecurity vs
// RecipeSecurity (Algorithm 1 semantics: authentication, replay rejection,
// strict ordering with future buffering, window mode), client table, and the
// client <-> ReplicaNode runtime loop.
#include <gtest/gtest.h>

#include "recipe/client.h"
#include "recipe/client_table.h"
#include "recipe/message.h"
#include "recipe/node_base.h"
#include "recipe/quorum.h"
#include "recipe/security.h"

namespace recipe {
namespace {

// --- Shielded message format -------------------------------------------------

TEST(ShieldedMessage, SerializeParseRoundTrip) {
  ShieldedMessage msg;
  msg.header.view = ViewId{4};
  msg.header.cq = ChannelId{77};
  msg.header.cnt = 12;
  msg.header.sender = NodeId{1};
  msg.header.receiver = NodeId{2};
  msg.header.flags = ShieldedHeader::kFlagEncrypted;
  msg.payload = to_bytes("payload");
  msg.mac = Bytes(32, 0xAA);

  auto parsed = ShieldedMessage::parse(as_view(msg.serialize()));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().header.view, ViewId{4});
  EXPECT_EQ(parsed.value().header.cnt, 12u);
  EXPECT_TRUE(parsed.value().header.encrypted());
  EXPECT_EQ(parsed.value().payload, to_bytes("payload"));
  EXPECT_EQ(parsed.value().mac, Bytes(32, 0xAA));
}

TEST(ShieldedMessage, ParseRejectsTrailingGarbage) {
  ShieldedMessage msg;
  msg.payload = to_bytes("x");
  Bytes wire = msg.serialize();
  wire.push_back(0x00);
  EXPECT_FALSE(ShieldedMessage::parse(as_view(wire)).is_ok());
}

TEST(ShieldedMessage, DirectedChannelsDiffer) {
  EXPECT_NE(directed_channel(NodeId{1}, NodeId{2}),
            directed_channel(NodeId{2}, NodeId{1}));
  EXPECT_EQ(directed_channel(NodeId{1}, NodeId{2}),
            directed_channel(NodeId{1}, NodeId{2}));
}

// --- Security policies
// ----------------------------------------------------------

struct SecurityFixture : public ::testing::Test {
  tee::TeePlatform platform{1};
  tee::Enclave enclave_a{platform, "code", 1};
  tee::Enclave enclave_b{platform, "code", 2};
  crypto::SymmetricKey root{Bytes(32, 0x77)};

  void SetUp() override {
    ASSERT_TRUE(enclave_a.install_secret(attest::kClusterRootName,
                                         root).is_ok());
    ASSERT_TRUE(enclave_b.install_secret(attest::kClusterRootName,
                                         root).is_ok());
  }

  RecipeSecurity make(tee::Enclave& e, NodeId self,
                      RecipeSecurityConfig config = {}) {
    return RecipeSecurity(e, self, nullptr, nullptr, config);
  }
};

TEST_F(SecurityFixture, ShieldVerifyRoundTrip) {
  auto a = make(enclave_a, NodeId{1});
  auto b = make(enclave_b, NodeId{2});
  auto wire = a.shield(NodeId{2}, ViewId{1}, as_view("hello"));
  ASSERT_TRUE(wire.is_ok());
  auto env = b.verify(NodeId{1}, as_view(wire.value()));
  ASSERT_TRUE(env.is_ok()) << env.status().to_string();
  EXPECT_EQ(to_string(as_view(env.value().payload)), "hello");
  EXPECT_EQ(env.value().sender, NodeId{1});
  EXPECT_EQ(env.value().view, ViewId{1});
  EXPECT_EQ(env.value().cnt, 1u);
}

TEST_F(SecurityFixture, TamperedPayloadRejected) {
  auto a = make(enclave_a, NodeId{1});
  auto b = make(enclave_b, NodeId{2});
  auto wire = a.shield(NodeId{2}, ViewId{1}, as_view("transfer $10"));
  Bytes tampered = wire.value();
  // Flip a byte inside the payload region.
  tampered[tampered.size() / 2] ^= 0x01;
  EXPECT_EQ(b.verify(NodeId{1}, as_view(tampered)).code(),
            ErrorCode::kAuthFailed);
  EXPECT_EQ(b.rejected_auth(), 1u);
}

TEST_F(SecurityFixture, ReplayRejected) {
  auto a = make(enclave_a, NodeId{1});
  auto b = make(enclave_b, NodeId{2});
  auto wire = a.shield(NodeId{2}, ViewId{1}, as_view("x"));
  EXPECT_TRUE(b.verify(NodeId{1}, as_view(wire.value())).is_ok());
  EXPECT_EQ(b.verify(NodeId{1}, as_view(wire.value())).code(),
            ErrorCode::kReplay);
  EXPECT_EQ(b.rejected_replay(), 1u);
}

TEST_F(SecurityFixture, ImpersonationRejected) {
  auto a = make(enclave_a, NodeId{1});
  auto b = make(enclave_b, NodeId{2});
  auto wire = a.shield(NodeId{2}, ViewId{1}, as_view("x"));
  // Network claims the message came from node 3.
  EXPECT_EQ(b.verify(NodeId{3}, as_view(wire.value())).code(),
            ErrorCode::kAuthFailed);
}

TEST_F(SecurityFixture, WrongRecipientRejected) {
  auto a = make(enclave_a, NodeId{1});
  auto b = make(enclave_b, NodeId{2});
  auto wire = a.shield(NodeId{3}, ViewId{1}, as_view("x"));  // meant for 3
  EXPECT_EQ(b.verify(NodeId{1}, as_view(wire.value())).code(),
            ErrorCode::kAuthFailed);
}

TEST_F(SecurityFixture, ForgeryWithoutKeysRejected) {
  auto b = make(enclave_b, NodeId{2});
  // An adversary without channel keys fabricates a message from scratch.
  ShieldedMessage forged;
  forged.header.view = ViewId{1};
  forged.header.cq = directed_channel(NodeId{1}, NodeId{2});
  forged.header.cnt = 1;
  forged.header.sender = NodeId{1};
  forged.header.receiver = NodeId{2};
  forged.payload = to_bytes("evil");
  forged.mac = Bytes(32, 0x00);
  EXPECT_EQ(b.verify(NodeId{1}, as_view(forged.serialize())).code(),
            ErrorCode::kAuthFailed);
}

TEST_F(SecurityFixture, ViewMismatchRejectedWhenRequired) {
  auto a = make(enclave_a, NodeId{1});
  auto b = make(enclave_b, NodeId{2});
  auto wire = a.shield(NodeId{2}, ViewId{1}, as_view("x"));
  EXPECT_EQ(b.verify(NodeId{1}, as_view(wire.value()), ViewId{2}).code(),
            ErrorCode::kWrongView);
  EXPECT_EQ(b.rejected_view(), 1u);
}

TEST_F(SecurityFixture, CountersIncreaseMonotonically) {
  auto a = make(enclave_a, NodeId{1});
  auto b = make(enclave_b, NodeId{2});
  for (Counter expected = 1; expected <= 5; ++expected) {
    auto wire = a.shield(NodeId{2}, ViewId{1}, as_view("m"));
    auto env = b.verify(NodeId{1}, as_view(wire.value()));
    ASSERT_TRUE(env.is_ok());
    EXPECT_EQ(env.value().cnt, expected);
  }
}

TEST_F(SecurityFixture, StrictModeBuffersFutureMessages) {
  RecipeSecurityConfig config;
  config.order = OrderPolicy::kStrict;
  auto a = make(enclave_a, NodeId{1}, config);
  auto b = make(enclave_b, NodeId{2}, config);

  auto m1 = a.shield(NodeId{2}, ViewId{1}, as_view("first"));
  auto m2 = a.shield(NodeId{2}, ViewId{1}, as_view("second"));
  auto m3 = a.shield(NodeId{2}, ViewId{1}, as_view("third"));

  // Deliver out of order: 3 and 2 are futures, buffered.
  EXPECT_EQ(b.verify(NodeId{1}, as_view(m3.value())).code(),
            ErrorCode::kOutOfOrder);
  EXPECT_EQ(b.verify(NodeId{1}, as_view(m2.value())).code(),
            ErrorCode::kOutOfOrder);
  EXPECT_EQ(b.buffered_future(), 2u);
  EXPECT_TRUE(b.drain_ready().empty());

  // Message 1 arrives: accepted, and 2+3 become ready in order.
  auto env = b.verify(NodeId{1}, as_view(m1.value()));
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(to_string(as_view(env.value().payload)), "first");
  auto ready = b.drain_ready();
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(to_string(as_view(ready[0].payload)), "second");
  EXPECT_EQ(to_string(as_view(ready[1].payload)), "third");
}

TEST_F(SecurityFixture, StrictModeRejectsPast) {
  RecipeSecurityConfig config;
  config.order = OrderPolicy::kStrict;
  auto a = make(enclave_a, NodeId{1}, config);
  auto b = make(enclave_b, NodeId{2}, config);
  auto m1 = a.shield(NodeId{2}, ViewId{1}, as_view("1"));
  auto m2 = a.shield(NodeId{2}, ViewId{1}, as_view("2"));
  EXPECT_TRUE(b.verify(NodeId{1}, as_view(m1.value())).is_ok());
  EXPECT_TRUE(b.verify(NodeId{1}, as_view(m2.value())).is_ok());
  EXPECT_EQ(b.verify(NodeId{1}, as_view(m1.value())).code(),
            ErrorCode::kReplay);
}

TEST_F(SecurityFixture, WindowModeAcceptsReorderingOnce) {
  auto a = make(enclave_a, NodeId{1});
  auto b = make(enclave_b, NodeId{2});
  auto m1 = a.shield(NodeId{2}, ViewId{1}, as_view("1"));
  auto m2 = a.shield(NodeId{2}, ViewId{1}, as_view("2"));
  auto m3 = a.shield(NodeId{2}, ViewId{1}, as_view("3"));
  // Reordered delivery: all accepted exactly once.
  EXPECT_TRUE(b.verify(NodeId{1}, as_view(m3.value())).is_ok());
  EXPECT_TRUE(b.verify(NodeId{1}, as_view(m1.value())).is_ok());
  EXPECT_TRUE(b.verify(NodeId{1}, as_view(m2.value())).is_ok());
  // Replays of each are rejected.
  EXPECT_EQ(b.verify(NodeId{1}, as_view(m1.value())).code(),
            ErrorCode::kReplay);
  EXPECT_EQ(b.verify(NodeId{1}, as_view(m2.value())).code(),
            ErrorCode::kReplay);
  EXPECT_EQ(b.verify(NodeId{1}, as_view(m3.value())).code(),
            ErrorCode::kReplay);
}

TEST_F(SecurityFixture, ConfidentialityHidesPayload) {
  RecipeSecurityConfig config;
  config.confidentiality = true;
  auto a = make(enclave_a, NodeId{1}, config);
  auto b = make(enclave_b, NodeId{2}, config);
  const Bytes secret = to_bytes("top-secret-payload-material");
  auto wire = a.shield(NodeId{2}, ViewId{1}, as_view(secret));
  // Ciphertext on the wire: the plaintext must not be a substring.
  auto it = std::search(wire.value().begin(), wire.value().end(),
                        secret.begin(),
                        secret.end());
  EXPECT_EQ(it, wire.value().end());
  auto env = b.verify(NodeId{1}, as_view(wire.value()));
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().payload, secret);
}

TEST_F(SecurityFixture, StrictModeOverflowBumpsCounter) {
  RecipeSecurityConfig config;
  config.order = OrderPolicy::kStrict;
  config.max_future_buffer = 2;
  auto a = make(enclave_a, NodeId{1}, config);
  auto b = make(enclave_b, NodeId{2}, config);

  std::vector<Bytes> wires;
  for (int i = 0; i < 5; ++i) {
    wires.push_back(a.shield(NodeId{2}, ViewId{1}, as_view("m")).value());
  }
  // Deliver 2..5 while 1 is missing: two futures fit, the rest overflow.
  EXPECT_EQ(b.verify(NodeId{1}, as_view(wires[1])).code(),
            ErrorCode::kOutOfOrder);
  EXPECT_EQ(b.verify(NodeId{1}, as_view(wires[2])).code(),
            ErrorCode::kOutOfOrder);
  EXPECT_EQ(b.rejected_overflow(), 0u);
  EXPECT_EQ(b.verify(NodeId{1}, as_view(wires[3])).code(),
            ErrorCode::kOutOfOrder);
  EXPECT_EQ(b.verify(NodeId{1}, as_view(wires[4])).code(),
            ErrorCode::kOutOfOrder);
  EXPECT_EQ(b.rejected_overflow(), 2u);
  EXPECT_EQ(b.buffered_future(), 2u);  // overflowed drops were NOT buffered
}

TEST_F(SecurityFixture, ChannelCryptoCacheInvalidatedByReattestation) {
  auto a = make(enclave_a, NodeId{1});
  auto b = make(enclave_b, NodeId{2});
  // Warm both caches.
  auto w1 = a.shield(NodeId{2}, ViewId{1}, as_view("warm"));
  ASSERT_TRUE(b.verify(NodeId{1}, as_view(w1.value())).is_ok());

  // Peer crashes, restarts, and re-attests under a DIFFERENT cluster root
  // (e.g. a new deployment secret). The receiver is told via reset_peer.
  enclave_a.crash();
  // The cached context must not serve a crashed enclave.
  EXPECT_EQ(a.shield(NodeId{2}, ViewId{1}, as_view("x")).code(),
            ErrorCode::kUnavailable);
  enclave_a.restart();
  const crypto::SymmetricKey new_root{Bytes(32, 0x99)};
  ASSERT_TRUE(enclave_a.install_secret(attest::kClusterRootName,
                                       new_root).is_ok());
  b.reset_peer(NodeId{1});

  // Sender's cache re-derives from the new root (keyset epoch moved), so
  // the receiver — still on the old root — must reject the MAC.
  auto w2 = a.shield(NodeId{2}, ViewId{1}, as_view("new-root"));
  ASSERT_TRUE(w2.is_ok());
  EXPECT_EQ(b.verify(NodeId{1}, as_view(w2.value())).code(),
            ErrorCode::kAuthFailed);

  // Once the receiver's enclave learns the new root too, traffic flows.
  ASSERT_TRUE(enclave_b.install_secret(attest::kClusterRootName,
                                       new_root).is_ok());
  auto w3 = a.shield(NodeId{2}, ViewId{1}, as_view("agreed"));
  auto env = b.verify(NodeId{1}, as_view(w3.value()));
  ASSERT_TRUE(env.is_ok()) << env.status().to_string();
  EXPECT_EQ(to_string(as_view(env.value().payload)), "agreed");
}

TEST_F(SecurityFixture, ConfidentialityWithLargeNodeIdsRoundTrips) {
  // Node ids beyond the 20-bit channel packing field: the nonce derivation
  // must still keep the two directions of the pairwise key apart (see
  // ChannelNonce.RegressionLargeNodeIdsNoLongerCollide for the unit-level
  // collision proof).
  const NodeId big_a{5};
  const NodeId big_b{5 + (1ull << 20)};
  RecipeSecurityConfig config;
  config.confidentiality = true;
  auto a = make(enclave_a, big_a, config);
  auto b = make(enclave_b, big_b, config);

  auto ab = a.shield(big_b, ViewId{1}, as_view("a to b plaintext"));
  auto ba = b.shield(big_a, ViewId{1}, as_view("b to a plaintext"));
  ASSERT_TRUE(ab.is_ok());
  ASSERT_TRUE(ba.is_ok());

  auto env_b = b.verify(big_a, as_view(ab.value()));
  auto env_a = a.verify(big_b, as_view(ba.value()));
  ASSERT_TRUE(env_b.is_ok()) << env_b.status().to_string();
  ASSERT_TRUE(env_a.is_ok()) << env_a.status().to_string();
  EXPECT_EQ(to_string(as_view(env_b.value().payload)), "a to b plaintext");
  EXPECT_EQ(to_string(as_view(env_a.value().payload)), "b to a plaintext");
}

TEST_F(SecurityFixture, CrashedEnclaveCannotShield) {
  auto a = make(enclave_a, NodeId{1});
  enclave_a.crash();
  EXPECT_EQ(a.shield(NodeId{2}, ViewId{1}, as_view("x")).code(),
            ErrorCode::kUnavailable);
}

TEST_F(SecurityFixture, UnprovisionedEnclaveCannotVerify) {
  tee::Enclave fresh(platform, "code", 9);
  auto s = RecipeSecurity(fresh, NodeId{9}, nullptr, nullptr, {});
  auto a = make(enclave_a, NodeId{1});
  auto wire = a.shield(NodeId{9}, ViewId{1}, as_view("x"));
  EXPECT_EQ(s.verify(NodeId{1}, as_view(wire.value())).code(),
            ErrorCode::kNotAttested);
}

TEST(NullSecurity, PassthroughAcceptsAnything) {
  NullSecurity a(NodeId{1});
  NullSecurity b(NodeId{2});
  auto wire = a.shield(NodeId{2}, ViewId{0}, as_view("x"));
  ASSERT_TRUE(wire.is_ok());
  auto env = b.verify(NodeId{1}, as_view(wire.value()));
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(to_string(as_view(env.value().payload)), "x");
  // Replays sail through: this is the CFT baseline's vulnerability.
  EXPECT_TRUE(b.verify(NodeId{1}, as_view(wire.value())).is_ok());
}

// --- Client table
// -----------------------------------------------------------------

TEST(ClientTable, ExactlyOnceStateMachine) {
  ClientTable table;
  const ClientId c{7};
  EXPECT_EQ(table.admit(c, RequestId{1}), ClientTable::Decision::kExecute);
  table.begin(c, RequestId{1});
  EXPECT_EQ(table.admit(c, RequestId{1}), ClientTable::Decision::kInFlight);
  table.complete(c, RequestId{1}, to_bytes("reply1"));
  EXPECT_EQ(table.admit(c, RequestId{1}), ClientTable::Decision::kCached);
  EXPECT_EQ(*table.cached_reply(c, RequestId{1}), to_bytes("reply1"));
  EXPECT_EQ(table.admit(c, RequestId{2}), ClientTable::Decision::kExecute);
  table.begin(c, RequestId{2});
  // A retransmit of the completed older request is still answerable from
  // the window — starting a newer request must not turn it into a replay.
  EXPECT_EQ(table.admit(c, RequestId{1}), ClientTable::Decision::kCached);
}

// A pipelined client has many requests outstanding; reordered delivery makes
// an older id arrive after a newer one began. Each id keeps its own
// exactly-once state — regression test for the latest-only table that
// dropped every reordered id as a replay (chaos jitter made pipelined ops
// unable to ever complete).
TEST(ClientTable, PipelinedOutOfOrderRequestsKeepIndependentState) {
  ClientTable table;
  const ClientId c{7};
  table.begin(c, RequestId{4});
  EXPECT_EQ(table.admit(c, RequestId{2}), ClientTable::Decision::kExecute);
  table.begin(c, RequestId{2});
  table.complete(c, RequestId{2}, to_bytes("r2"));
  table.complete(c, RequestId{4}, to_bytes("r4"));
  EXPECT_EQ(table.admit(c, RequestId{2}), ClientTable::Decision::kCached);
  EXPECT_EQ(*table.cached_reply(c, RequestId{2}), to_bytes("r2"));
  EXPECT_EQ(*table.cached_reply(c, RequestId{4}), to_bytes("r4"));
  EXPECT_EQ(table.admit(c, RequestId{3}), ClientTable::Decision::kExecute);
}

TEST(ClientTable, BelowWindowIdsRejectedAndEvictedCompletionsIgnored) {
  ClientTable table(/*window=*/4);
  const ClientId c{7};
  for (std::uint64_t rid = 1; rid <= 6; ++rid) table.begin(c, RequestId{rid});
  // 1 and 2 slid out of the 4-entry window: replays, execution forbidden.
  EXPECT_EQ(table.admit(c, RequestId{1}), ClientTable::Decision::kStale);
  EXPECT_EQ(table.admit(c, RequestId{2}), ClientTable::Decision::kStale);
  table.complete(c, RequestId{2}, to_bytes("late"));  // evicted: dropped
  EXPECT_EQ(table.cached_reply(c, RequestId{2}), nullptr);
  EXPECT_EQ(table.admit(c, RequestId{5}), ClientTable::Decision::kInFlight);
  // begin() below the floor must not resurrect an evicted id.
  table.begin(c, RequestId{1});
  EXPECT_EQ(table.admit(c, RequestId{1}), ClientTable::Decision::kStale);
}

TEST(ClientTable, IndependentClients) {
  ClientTable table;
  table.begin(ClientId{1}, RequestId{5});
  EXPECT_EQ(table.admit(ClientId{2}, RequestId{1}),
            ClientTable::Decision::kExecute);
}

// --- QuorumTracker
// -------------------------------------------------------------

TEST(QuorumTracker, FiresOnceAtThreshold) {
  int fired = 0;
  QuorumTracker q(2, [&] { ++fired; });
  EXPECT_TRUE(q.ack(NodeId{1}));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.ack(NodeId{2}));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.ack(NodeId{3}));  // post-quorum acks not counted
  EXPECT_EQ(fired, 1);
}

TEST(QuorumTracker, DuplicateAcksIgnored) {
  int fired = 0;
  QuorumTracker q(2, [&] { ++fired; });
  EXPECT_TRUE(q.ack(NodeId{1}));
  EXPECT_FALSE(q.ack(NodeId{1}));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.ack(NodeId{2}));
  EXPECT_EQ(fired, 1);
}

TEST(Majority, Formula) {
  EXPECT_EQ(majority(3), 2u);
  EXPECT_EQ(majority(4), 3u);
  EXPECT_EQ(majority(5), 3u);
  EXPECT_EQ(majority(1), 1u);
}

}  // namespace
}  // namespace recipe
