#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kNone:
      return "none";
    case SpanKind::kClientOp:
      return "client_op";
    case SpanKind::kShield:
      return "shield";
    case SpanKind::kBatchQueueWait:
      return "batch_queue_wait";
    case SpanKind::kSocketWrite:
      return "socket_write";
    case SpanKind::kVerify:
      return "verify";
    case SpanKind::kApply:
      return "apply";
    case SpanKind::kWalGroupCommit:
      return "wal_group_commit";
    case SpanKind::kRetryBackoff:
      return "retry_backoff";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

std::uint64_t FlightRecorder::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t FlightRecorder::next_instance_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() {
  // The cached ring is keyed by the owning recorder's never-reused instance
  // id, not its address: a stack-allocated recorder can die and a new one
  // can reuse the same address, so an address key would dangle. On an id
  // mismatch the thread simply registers a fresh ring with this recorder.
  thread_local std::uint64_t cached_owner = 0;
  thread_local Ring* cached = nullptr;
  if (cached == nullptr || cached_owner != id_) {
    auto ring = std::make_unique<Ring>();
    cached = ring.get();
    cached_owner = id_;
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings_.push_back(std::move(ring));
  }
  return cached;
}

void FlightRecorder::record(SpanKind kind, std::uint64_t rpc_id,
                            std::uint64_t actor, std::uint64_t t0_ns,
                            std::uint64_t t1_ns, std::uint64_t detail) {
  if (!enabled()) return;
  Ring* ring = ring_for_this_thread();
  const std::uint64_t seq = ring->head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring->slots[seq % kRingSlots];
  // Relaxed stores: only this thread writes this ring; readers accept
  // torn events (header threading rule).
  slot.rpc_id.store(rpc_id, std::memory_order_relaxed);
  slot.actor.store(actor, std::memory_order_relaxed);
  slot.t0_ns.store(t0_ns, std::memory_order_relaxed);
  slot.t1_ns.store(t1_ns, std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint64_t>(kind), std::memory_order_relaxed);
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() const {
  std::vector<Event> out;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    for (const Slot& slot : ring->slots) {
      const std::uint64_t kind = slot.kind.load(std::memory_order_relaxed);
      if (kind == 0) continue;
      Event ev;
      ev.kind = static_cast<SpanKind>(kind);
      ev.rpc_id = slot.rpc_id.load(std::memory_order_relaxed);
      ev.actor = slot.actor.load(std::memory_order_relaxed);
      ev.t0_ns = slot.t0_ns.load(std::memory_order_relaxed);
      ev.t1_ns = slot.t1_ns.load(std::memory_order_relaxed);
      ev.detail = slot.detail.load(std::memory_order_relaxed);
      out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.t0_ns < b.t0_ns; });
  return out;
}

std::string FlightRecorder::dump_json() const {
  const std::vector<Event> events = snapshot();
  std::string out = "{\"events\":[";
  char line[256];
  bool first = true;
  for (const Event& ev : events) {
    std::snprintf(line, sizeof(line),
                  "%s{\"kind\":\"%s\",\"rpc_id\":%llu,\"actor\":%llu,"
                  "\"t0_ns\":%llu,\"t1_ns\":%llu,\"detail\":%llu}",
                  first ? "" : ",", span_kind_name(ev.kind),
                  static_cast<unsigned long long>(ev.rpc_id),
                  static_cast<unsigned long long>(ev.actor),
                  static_cast<unsigned long long>(ev.t0_ns),
                  static_cast<unsigned long long>(ev.t1_ns),
                  static_cast<unsigned long long>(ev.detail));
    out += line;
    first = false;
  }
  out += "]}";
  return out;
}

bool FlightRecorder::dump_json_to(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = dump_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (auto& ring : rings_) {
    for (Slot& slot : ring->slots) {
      slot.kind.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
