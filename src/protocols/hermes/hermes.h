// Hermes (Katsarakis et al., ASPLOS'20; paper Table 1: leaderless, per-key
// order) — a broadcast invalidation protocol with LOCAL reads at every
// replica.
//
// Writes (coordinated by any node) take two broadcast rounds to ALL live
// replicas:
//   1. INV(key, value, ts): each replica transitions the key to INVALID,
//      buffers the new version, acks;
//   2. once ALL live replicas acked, the write is committed; the coordinator
//      broadcasts VAL(key, ts) and replicas transition back to VALID.
// Because a write reaches every live replica before completing, any replica
// may serve a linearizable read locally — as long as the key is VALID;
// reads of INVALID keys stall until the VAL arrives (paper: local reads "at
// the cost of availability").
//
// Conflicts resolve by logical timestamp (Lamport clock, node id
// tie-breaker), exactly like the paper's description of per-key-ordered
// protocols whose writes reach all nodes.
#pragma once

#include <deque>
#include <set>
#include <unordered_map>

#include "recipe/node_base.h"

namespace recipe::protocols {

namespace hermes_msg {
constexpr rpc::RequestType kInv = 0x4E01;  // [key, value, ts] -> ack [ts]
constexpr rpc::RequestType kVal = 0x4E02;  // [key, ts]
}  // namespace hermes_msg

class HermesNode final : public ReplicaNode {
 public:
  HermesNode(sim::Clock& clock, net::Transport& network,
             ReplicaOptions options);

  bool is_coordinator() const override { return running(); }  // any node
  bool serves_local_reads() const override { return true; }
  void submit(const ClientRequest& request, ReplyFn reply) override;

  // Introspection for tests.
  bool is_invalid(std::string_view key) const {
    return invalid_.contains(std::string(key));
  }
  std::uint64_t stalled_reads() const { return stalled_reads_; }

 protected:
  void on_suspected(NodeId peer) override;
  void on_peer_shadow(NodeId peer) override;
  void on_peer_promoted(NodeId peer) override;
  void on_promoted() override;

 private:
  void serve_local_read(const std::string& key, ReplyFn reply);
  void flush_stalled(const std::string& key);
  std::vector<NodeId> live_peers() const;
  // Hermes write replay (paper §recovery): re-drives a pending INV/VAL round
  // for `key` as a fresh coordinator — used by a promoted replica to heal
  // keys whose VAL it missed while shadow.
  void replay_write(const std::string& key);

  std::set<NodeId> dead_;
  std::uint64_t lamport_{0};
  // Keys currently in INVALID state: key -> pending timestamp.
  std::unordered_map<std::string, kv::Timestamp> invalid_;
  // Reads waiting for a VAL on their key.
  std::unordered_map<std::string, std::deque<ReplyFn>> stalled_;
  std::uint64_t stalled_reads_{0};
};

}  // namespace recipe::protocols
