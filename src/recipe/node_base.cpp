#include "recipe/node_base.h"

#include <algorithm>
#include <cassert>

namespace recipe {

ReplicaNode::ReplicaNode(sim::Simulator& simulator, net::SimNetwork& network,
                         ReplicaOptions options)
    : simulator_(simulator),
      network_(network),
      options_(std::move(options)),
      rpc_(simulator, network, options_.self, options_.stack,
           options_.rpc_config),
      batcher_(simulator, options_.batch,
               [this](NodeId peer, Bytes body, std::size_t /*count*/) {
                 send_batch(peer, std::move(body));
               }),
      kv_(options_.kv_config),
      clock_(simulator),
      failure_detector_(clock_, options_.suspect_timeout,
                        options_.suspect_timeout / 4) {
  if (options_.secured) {
    assert(options_.enclave != nullptr && "secured mode requires an enclave");
    RecipeSecurityConfig config;
    config.confidentiality = options_.confidentiality;
    config.working_set = [this] { return enclave_working_set(); };
    security_ = std::make_unique<RecipeSecurity>(
        *options_.enclave, options_.self, options_.cost_model,
        &network_.cpu(options_.self), config);
  } else {
    security_ = std::make_unique<NullSecurity>(options_.self);
  }

  // Batch carrier: ONE verify (MAC + replay slot) covers every sub-message.
  // Registered directly with the rpc layer (not via on()) so a batch frame
  // can never be dispatched as a protocol payload or vice versa.
  rpc_.register_handler(msg::kBatch, [this](rpc::RequestContext& ctx) {
    if (!running_) return;
    auto env = security_->verify(ctx.src, as_view(ctx.payload));
    if (!env) return;  // drop: unauthenticated / replayed / malformed
    if (!env.value().batch) return;  // single frame re-typed as a batch
    dispatch_batch(env.value(), ctx);
    // Strict-order mode: futures promoted by this batch. Batch futures are
    // dispatchable; a promoted SINGLE frame's rpc type is unrecoverable here
    // (it lives outside the shielded frame) so it must be dropped, exactly
    // as the pre-batching code lost it to the wrong type's handler.
    for (VerifiedEnvelope& ready : security_->drain_ready()) {
      if (ready.batch) dispatch_batch(ready, ctx);
    }
  });

  on(msg::kClientRequest, [this](VerifiedEnvelope& env, rpc::RequestContext& ctx) {
    handle_client_request(env, ctx);
  });
  on(msg::kHeartbeat, [this](VerifiedEnvelope& env, rpc::RequestContext&) {
    failure_detector_.heartbeat(env.sender);
  });

  // CAS notice: a node re-attested and rejoins as a FRESH replica — restart
  // its channel counters (paper §3.7 step 3). Authenticated like any peer
  // message: only the CAS (which holds the cluster root) can produce it.
  on(attest::msg::kFreshNode,
     [this](VerifiedEnvelope& env, rpc::RequestContext&) {
       if (env.sender != options_.cas_id) return;
       Reader r(as_view(env.payload));
       const auto fresh = r.id<NodeId>();
       if (!fresh || *fresh == options_.self) return;
       security_->reset_peer(*fresh);
       failure_detector_.heartbeat(*fresh);  // fresh grace period
       std::erase(suspected_already_, *fresh);
     });

  // State transfer to a recovering shadow replica: serialize every
  // (key, value, timestamp) the peer holds. Values are re-read through the
  // integrity-checking path so a corrupted host can never poison a joiner.
  on(msg::kStateFetch, [this](VerifiedEnvelope& env, rpc::RequestContext& ctx) {
    Writer w;
    std::uint32_t count = 0;
    Writer entries;
    kv_.scan([&](std::string_view key, const kv::Timestamp&) {
      auto value = kv_.get(key);
      if (value.is_ok()) {
        entries.str(key);
        entries.bytes(as_view(value.value().value));
        entries.u64(value.value().timestamp.counter);
        entries.u64(value.value().timestamp.node);
        ++count;
      }
      return true;
    });
    w.u32(count);
    w.raw(as_view(entries.buffer()));
    respond(ctx, env.sender, as_view(w.buffer()));
  });
}

ReplicaNode::~ReplicaNode() { heartbeat_timer_.cancel(); }

void ReplicaNode::start() {
  running_ = true;
  for (NodeId peer : peers()) failure_detector_.heartbeat(peer);  // grace period
  if (options_.heartbeat_period > 0) heartbeat_tick();
}

void ReplicaNode::stop() {
  running_ = false;
  heartbeat_timer_.cancel();
  // Machine failure: buffered batches die with the node, nothing is flushed.
  batcher_.cancel_all();
  network_.crash(options_.self);
  if (options_.enclave != nullptr) options_.enclave->crash();
}

std::vector<NodeId> ReplicaNode::peers() const {
  std::vector<NodeId> out;
  out.reserve(options_.membership.size());
  for (NodeId n : options_.membership) {
    if (n != options_.self) out.push_back(n);
  }
  return out;
}

std::uint64_t ReplicaNode::enclave_working_set() const {
  // Batches accumulate inside the enclave before their flush: they are part
  // of the modelled in-enclave message-buffer footprint (EPC pressure).
  return options_.enclave_runtime_bytes + options_.msg_buffer_bytes +
         batcher_.buffered_bytes() + kv_.enclave_bytes();
}

void ReplicaNode::on(rpc::RequestType type, EnvelopeHandler handler) {
  handlers_[type] = std::move(handler);
  rpc_.register_handler(type, [this, type](rpc::RequestContext& ctx) {
    if (!running_) return;  // a stopped node processes nothing
    auto env = security_->verify(ctx.src, as_view(ctx.payload));
    if (!env) return;  // drop: unauthenticated / replayed / malformed
    if (env.value().batch) return;  // batch frames only enter via msg::kBatch
    dispatch_request(type, env.value(), ctx);
  });
}

void ReplicaNode::dispatch_request(rpc::RequestType type, VerifiedEnvelope& env,
                                   rpc::RequestContext& ctx) {
  const auto it = handlers_.find(type);
  if (it == handlers_.end()) return;  // unknown (or nested-batch) type: drop
  it->second(env, ctx);
  // Strict-order mode may have unblocked buffered futures. A promoted future
  // can itself be a batch frame — route it through the batch dispatcher, not
  // the triggering type's handler.
  for (VerifiedEnvelope& ready : security_->drain_ready()) {
    if (ready.batch) {
      dispatch_batch(ready, ctx);
    } else {
      it->second(ready, ctx);
    }
  }
}

void ReplicaNode::dispatch_batch(VerifiedEnvelope& env,
                                 rpc::RequestContext& ctx) {
  auto view = BatchView::parse(as_view(env.payload));
  if (!view) return;  // malformed body despite a valid MAC (Null mode only)
  for (const BatchItem& item : view.value()) {
    if (item.kind == BatchItem::kKindRequest) {
      VerifiedEnvelope sub = sub_envelope(env, item.payload);
      // The synthesized context lets handlers respond exactly as if the
      // sub-message had arrived as its own packet.
      rpc::RequestContext sub_ctx{ctx.rpc, ctx.src, item.type, item.rpc_id,
                                  Bytes{}};
      dispatch_request(item.type, sub, sub_ctx);
    } else if (item.kind == BatchItem::kKindResponse) {
      // settle() refuses rpcs that already timed out or completed, so a
      // straggler batch cannot double-complete a request.
      if (!rpc_.settle(item.rpc_id)) continue;
      const auto it = response_handlers_.find(item.rpc_id);
      if (it == response_handlers_.end()) continue;
      ResponseHandler handler = std::move(it->second);
      response_handlers_.erase(it);
      VerifiedEnvelope sub = sub_envelope(env, item.payload);
      if (handler) handler(sub);
    }
    // Unknown kinds are skipped: forward compatibility inside a valid MAC.
  }
}

VerifiedEnvelope ReplicaNode::sub_envelope(const VerifiedEnvelope& batch_env,
                                           BytesView payload) const {
  VerifiedEnvelope sub;
  sub.sender = batch_env.sender;
  sub.view = batch_env.view;
  sub.cnt = batch_env.cnt;
  sub.payload.assign(payload.begin(), payload.end());
  return sub;
}

void ReplicaNode::send_batch(NodeId peer, Bytes body) {
  auto wire = security_->shield_batch(peer, current_view(), as_view(body));
  if (!wire) return;  // crashed enclave: the batch dies like any send
  // Fire-and-forget at the transport level; tracked sub-requests were
  // registered via expect_response() and time out individually.
  rpc_.send(peer, msg::kBatch, std::move(wire).take());
}

void ReplicaNode::send_to(NodeId peer, rpc::RequestType type, BytesView payload,
                          ResponseHandler continuation,
                          std::optional<sim::Time> timeout,
                          rpc::TimeoutHandler on_timeout) {
  const bool tracked = continuation != nullptr || on_timeout != nullptr;
  const std::uint64_t rpc_id = rpc_.allocate_rpc_id();

  rpc::Continuation wrapped;
  rpc::TimeoutHandler timeout_wrapped;
  if (tracked) {
    if (continuation) response_handlers_[rpc_id] = std::move(continuation);
    // Unbatched wire path. (When the peer answers from inside a batch the
    // batch dispatcher completes the rpc instead and this never runs.)
    wrapped = [this, rpc_id](NodeId src, Bytes response) {
      const auto it = response_handlers_.find(rpc_id);
      if (it == response_handlers_.end()) return;
      ResponseHandler handler = std::move(it->second);
      response_handlers_.erase(it);
      if (!running_) return;
      auto env = security_->verify(src, as_view(response));
      if (!env) return;  // forged/replayed response: drop
      if (env.value().batch) return;  // a batch frame is never a direct response
      if (handler) handler(env.value());
    };
    timeout_wrapped = [this, rpc_id, cb = std::move(on_timeout)] {
      response_handlers_.erase(rpc_id);
      if (cb) cb();
    };
  }

  if (batcher_.enabled()) {
    if (tracked) {
      rpc_.expect_response(peer, rpc_id, std::move(wrapped), timeout,
                           std::move(timeout_wrapped));
    }
    batcher_.enqueue(peer, BatchItem::kKindRequest, type, rpc_id, payload);
    return;
  }

  auto wire = security_->shield(peer, current_view(), payload);
  if (!wire) {  // crashed enclave: cannot send (and nothing was registered)
    response_handlers_.erase(rpc_id);
    return;
  }
  rpc_.send(peer, type, std::move(wire).take(), std::move(wrapped), timeout,
            std::move(timeout_wrapped), rpc_id);
}

void ReplicaNode::broadcast(rpc::RequestType type, BytesView payload,
                            ResponseHandler continuation,
                            std::optional<sim::Time> timeout,
                            rpc::TimeoutHandler on_timeout) {
  for (NodeId peer : peers()) {
    send_to(peer, type, payload, continuation, timeout, on_timeout);
  }
}

void ReplicaNode::respond(rpc::RequestContext& ctx, NodeId peer,
                          BytesView payload) {
  if (batcher_.enabled()) {
    batcher_.enqueue(peer, BatchItem::kKindResponse, ctx.type, ctx.rpc_id,
                     payload);
    return;
  }
  auto wire = security_->shield(peer, current_view(), payload);
  if (!wire) return;
  ctx.respond(std::move(wire).take());
}

std::function<void(Bytes)> ReplicaNode::deferred_responder(
    const rpc::RequestContext& ctx) {
  const NodeId dst = ctx.src;
  const rpc::RequestType type = ctx.type;
  const std::uint64_t rpc_id = ctx.rpc_id;
  return [this, dst, type, rpc_id](Bytes payload) {
    if (batcher_.enabled()) {
      batcher_.enqueue(dst, BatchItem::kKindResponse, type, rpc_id,
                       as_view(payload));
      return;
    }
    auto wire = security_->shield(dst, current_view(), as_view(payload));
    if (!wire) return;
    rpc_.respond_to(dst, type, rpc_id, std::move(wire).take());
  };
}

bool ReplicaNode::kv_write(std::string_view key, BytesView value,
                           kv::Timestamp ts) {
  if (options_.cost_model != nullptr) {
    sim::Time cost = options_.cost_model->hash(value.size()) +
                     options_.cost_model->enclave_copy(value.size(),
                                                       enclave_working_set());
    if (kv_.confidential()) cost += options_.cost_model->encrypt(value.size());
    cpu().charge(cost);
  }
  return kv_.write(key, value, ts);
}

Result<kv::VersionedValue> ReplicaNode::kv_get(std::string_view key) {
  if (options_.cost_model != nullptr) {
    sim::Time cost = options_.cost_model->hash(256) +
                     options_.cost_model->enclave_copy(256, enclave_working_set());
    if (kv_.confidential()) cost += options_.cost_model->encrypt(256);
    cpu().charge(cost);
  }
  return kv_.get(key);
}

void ReplicaNode::handle_client_request(VerifiedEnvelope& env,
                                        rpc::RequestContext& ctx) {
  auto parsed = ClientRequest::parse(as_view(env.payload));
  if (!parsed) return;
  const ClientRequest& request = parsed.value();

  // The authenticated channel binds the sender: a Byzantine client cannot
  // impersonate another client id when security is on.
  if (security_->secured() && request.client.value != env.sender.value) return;

  switch (client_table_.admit(request.client, request.rid)) {
    case ClientTable::Decision::kStale:
    case ClientTable::Decision::kInFlight:
      return;  // drop replays/duplicates
    case ClientTable::Decision::kCached: {
      const Bytes* cached = client_table_.cached_reply(request.client);
      if (cached != nullptr) respond(ctx, env.sender, as_view(*cached));
      return;
    }
    case ClientTable::Decision::kExecute:
      break;
  }

  if (!is_coordinator()) {
    // Not the coordinator for this protocol: refuse (the data-store routing
    // layer retries against the right node).
    ClientReply reply;
    reply.ok = false;
    respond(ctx, env.sender, as_view(reply.serialize()));
    return;
  }

  client_table_.begin(request.client, request.rid);
  auto responder = deferred_responder(ctx);
  const ClientId client = request.client;
  const RequestId rid = request.rid;
  submit(request, [this, responder = std::move(responder), client,
                   rid](const ClientReply& reply) {
    Bytes encoded = reply.serialize();
    client_table_.complete(client, rid, encoded);
    if (reply.ok) record_commit();
    responder(std::move(encoded));
  });
}

void ReplicaNode::sync_state_from(
    NodeId peer, std::function<void(Result<std::size_t>)> done) {
  send_to(peer, msg::kStateFetch, BytesView{},
          [this, done](VerifiedEnvelope& env) {
            Reader r(as_view(env.payload));
            auto count = r.u32();
            if (!count) {
              done(Status::error(ErrorCode::kInvalidArgument,
                                 "malformed state snapshot"));
              return;
            }
            std::size_t installed = 0;
            for (std::uint32_t i = 0; i < *count; ++i) {
              auto key = r.str();
              auto value = r.bytes();
              auto ts_counter = r.u64();
              auto ts_node = r.u64();
              if (!key || !value || !ts_counter || !ts_node) {
                done(Status::error(ErrorCode::kInvalidArgument,
                                   "truncated state snapshot"));
                return;
              }
              if (kv_.write(*key, as_view(*value),
                            kv::Timestamp{*ts_counter, *ts_node})) {
                ++installed;
              }
            }
            done(installed);
          },
          5 * sim::kSecond,
          [done] { done(Status::error(ErrorCode::kTimeout, "state fetch")); });
}

bool ReplicaNode::suspected(NodeId peer) const {
  return failure_detector_.suspected(peer);
}

void ReplicaNode::heartbeat_tick() {
  if (!running_) return;
  // Heartbeats are shielded fire-and-forget messages.
  for (NodeId peer : peers()) {
    auto wire = security_->shield(peer, current_view(), BytesView{});
    if (wire) rpc_.send(peer, msg::kHeartbeat, std::move(wire).take());
  }
  // Surface newly suspected peers to the protocol.
  for (NodeId peer : peers()) {
    if (failure_detector_.suspected(peer) &&
        std::find(suspected_already_.begin(), suspected_already_.end(), peer) ==
            suspected_already_.end()) {
      suspected_already_.push_back(peer);
      on_suspected(peer);
    }
  }
  heartbeat_timer_ = simulator_.schedule(options_.heartbeat_period,
                                         [this] { heartbeat_tick(); });
}

}  // namespace recipe
