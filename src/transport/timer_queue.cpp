#include "transport/timer_queue.h"

namespace recipe::transport {

sim::TimerHandle TimerQueue::schedule_at(sim::Time when, Callback fn) {
  auto flag = std::make_shared<bool>(false);
  sim::TimerHandle handle = sim::make_timer_handle(std::weak_ptr<bool>(flag));
  bool became_earliest = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    became_earliest = queue_.empty() || when < queue_.top().when;
    queue_.push(Entry{when, next_seq_++, std::move(fn), std::move(flag)});
  }
  if (became_earliest && wakeup_) wakeup_();
  return handle;
}

std::optional<sim::Time> TimerQueue::next_deadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  return queue_.top().when;
}

std::size_t TimerQueue::run_due() {
  std::size_t fired = 0;
  for (;;) {
    Entry entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty() || queue_.top().when > now()) break;
      entry = std::move(const_cast<Entry&>(queue_.top()));
      queue_.pop();
    }
    // The cancellation flag is only written on this thread (loop-affine
    // handles), so reading it outside the lock is safe.
    if (*entry.cancelled) continue;
    entry.fn();
    ++fired;
  }
  return fired;
}

std::size_t TimerQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace recipe::transport
