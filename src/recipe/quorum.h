// Quorum tracking helper for broadcast-and-collect protocol phases.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <unordered_set>

#include "common/ids.h"

namespace recipe {

// Collects per-peer acknowledgements and fires `on_quorum` exactly once when
// `threshold` distinct responders have been counted. Create via make_shared
// and capture the shared_ptr in each continuation so the tracker lives as
// long as late responses may arrive.
class QuorumTracker {
 public:
  QuorumTracker(std::size_t threshold, std::function<void()> on_quorum)
      : threshold_(threshold), on_quorum_(std::move(on_quorum)) {}

  // Returns true if this ack was counted (not a duplicate, not post-quorum).
  bool ack(NodeId from) {
    if (fired_) return false;
    if (!responders_.insert(from).second) return false;
    if (responders_.size() >= threshold_) {
      fired_ = true;
      // Detach the callback before firing: it is never called again, and
      // releasing it promptly frees whatever state its closure captured
      // (avoids tracker -> closure -> tracker retain cycles).
      if (auto fn = std::move(on_quorum_)) fn();
    }
    return true;
  }

  bool fired() const { return fired_; }
  std::size_t count() const { return responders_.size(); }
  std::size_t threshold() const { return threshold_; }

 private:
  std::size_t threshold_;
  std::function<void()> on_quorum_;
  std::unordered_set<NodeId> responders_;
  bool fired_{false};
};

// Majority of `n` replicas (including self where applicable).
constexpr std::size_t majority(std::size_t n) { return n / 2 + 1; }

}  // namespace recipe
