// MpscQueue: an unbounded lock-free multi-producer / single-consumer queue
// (Vyukov's intrusive algorithm, non-intrusive wrapper) — the cross-shard
// data plane of the sharded TCP transport.
//
// Producers (other shard loops, caller threads) push with one atomic
// exchange + one release store: wait-free, no mutex, no CAS loop, so a shard
// handing a packet to a sibling never contends with the sibling's own hot
// path. The single consumer (the owning shard's event loop) pops without any
// atomic RMW at all.
//
// Contract:
//  * push() — any thread, any number of threads concurrently;
//  * try_pop()/drain-side calls — exactly ONE consumer thread, ever;
//  * a push is visible to the consumer once the producer's release store
//    lands. Between a producer's exchange and that store the queue is in a
//    transient "blocked" state: try_pop() may report empty even though a
//    later element is already linked. Producers therefore signal the
//    consumer (eventfd) AFTER push() returns, so a blocked pop is always
//    followed by another wakeup — the loop never sleeps on a lost element.
//  * per-producer FIFO order is preserved; cross-producer order is the
//    exchange order.
#pragma once

#include <atomic>
#include <utility>

namespace recipe::transport {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    // Consumer-side teardown: no producers may be alive here.
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      if (node != &stub_) delete node;
      node = next;
    }
  }

  // Any thread. Wait-free (one exchange, one store).
  void push(T value) {
    Node* node = new Node(std::move(value));
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  // Consumer thread only. Returns false when the queue is empty OR
  // transiently blocked by an in-flight push (see header comment).
  bool try_pop(T& out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return false;  // empty (or blocked at the stub)
      tail_ = next;
      tail = next;
      next = tail->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      out = std::move(tail->value);
      tail_ = next;
      delete tail;
      return true;
    }
    // `tail` is the last linked node; re-enqueue the stub behind it so the
    // element can be consumed while keeping one node always in the list.
    if (head_.load(std::memory_order_acquire) != tail) {
      return false;  // a producer is mid-push right behind tail: come back
    }
    stub_.next.store(nullptr, std::memory_order_relaxed);
    Node* prev = head_.exchange(&stub_, std::memory_order_acq_rel);
    prev->next.store(&stub_, std::memory_order_release);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      out = std::move(tail->value);
      tail_ = next;
      delete tail;
      return true;
    }
    return false;  // racing producer slipped in between; the wakeup re-runs us
  }

  // Consumer thread only: true when a pop MIGHT succeed (used by the event
  // loop to poll with a zero timeout instead of sleeping while a producer is
  // mid-push). May report true for a transiently blocked queue; never
  // reports false while an element is poppable.
  bool maybe_nonempty() const {
    return tail_->next.load(std::memory_order_acquire) != nullptr ||
           head_.load(std::memory_order_acquire) != tail_;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T&& v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  std::atomic<Node*> head_;  // producers exchange onto the head
  Node* tail_;               // consumer-owned
  Node stub_;
};

}  // namespace recipe::transport
