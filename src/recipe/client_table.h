// Client table: exactly-once semantics for client requests (paper §3.4 #3.1).
//
// The coordinator records the latest request id executed per client together
// with the cached reply. Retransmissions of the latest request are answered
// from the cache; older request ids are rejected as replays.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/bytes.h"
#include "common/ids.h"

namespace recipe {

class ClientTable {
 public:
  enum class Decision {
    kExecute,   // new request: run the protocol
    kCached,    // duplicate of the latest request: reply from cache
    kStale,     // older than the latest: drop (replay)
    kInFlight,  // same request already executing: drop duplicate
  };

  Decision admit(ClientId client, RequestId rid) const {
    const auto it = entries_.find(client);
    if (it == entries_.end()) return Decision::kExecute;
    const Entry& e = it->second;
    if (rid.value < e.latest.value) return Decision::kStale;
    if (rid.value == e.latest.value) {
      return e.reply.has_value() ? Decision::kCached : Decision::kInFlight;
    }
    return Decision::kExecute;
  }

  // Marks a request as executing (no cached reply yet).
  void begin(ClientId client, RequestId rid) {
    Entry& e = entries_[client];
    e.latest = rid;
    e.reply.reset();
  }

  // Records the reply for the latest request.
  void complete(ClientId client, RequestId rid, Bytes reply) {
    Entry& e = entries_[client];
    if (e.latest == rid) e.reply = std::move(reply);
  }

  const Bytes* cached_reply(ClientId client) const {
    const auto it = entries_.find(client);
    if (it == entries_.end() || !it->second.reply) return nullptr;
    return &*it->second.reply;
  }

  std::size_t size() const { return entries_.size(); }

  // Machine reboot: the dedup table was enclave/host memory and is gone.
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    RequestId latest{};
    std::optional<Bytes> reply;
  };
  std::unordered_map<ClientId, Entry> entries_;
};

}  // namespace recipe
