// Strongly-typed identifiers used across the Recipe stack.
//
// Each identifier is a distinct type so a NodeId cannot be passed where a
// ClientId is expected; all are cheap value types.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace recipe {

namespace detail {

// CRTP base providing comparison, hashing and formatting for id wrappers.
template <typename Tag, typename Rep = std::uint64_t>
struct StrongId {
  Rep value{0};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  std::string to_string() const { return std::to_string(value); }
};

}  // namespace detail

struct NodeIdTag {};
struct ClientIdTag {};
struct RequestIdTag {};
struct ViewIdTag {};
struct ChannelIdTag {};
struct EpochIdTag {};

// Identity of a replica / server node.
using NodeId = detail::StrongId<NodeIdTag>;
// Identity of an external client.
using ClientId = detail::StrongId<ClientIdTag>;
// Client-assigned request sequence number (for exactly-once semantics).
using RequestId = detail::StrongId<RequestIdTag>;
// View / term / epoch number of the replication protocol.
using ViewId = detail::StrongId<ViewIdTag>;
// Identifier of a point-to-point communication channel ("cq" in the paper).
using ChannelId = detail::StrongId<ChannelIdTag>;

// Per-channel message counter value ("cnt_cq" in the paper).
using Counter = std::uint64_t;

constexpr NodeId kNoNode{~0ULL};

}  // namespace recipe

namespace std {
template <typename Tag, typename Rep>
struct hash<recipe::detail::StrongId<Tag, Rep>> {
  size_t operator()(const recipe::detail::StrongId<Tag,
                    Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};
}  // namespace std
