#include "obs/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace obs {

namespace {

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int code, const char* status,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + status +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

AdminServer::AdminServer(Options options) : options_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  thread_ = std::thread([this] { serve_loop(); });
}

AdminServer::~AdminServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void AdminServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void AdminServer::handle_connection(int fd) {
  // Bound how long a stalled client can hold the (serial) serve loop.
  timeval tv{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[1024];
  const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  // "GET /path HTTP/1.x" — everything else is a 404.
  std::string path;
  if (std::strncmp(buf, "GET ", 4) == 0) {
    const char* start = buf + 4;
    const char* end = std::strchr(start, ' ');
    if (end != nullptr) path.assign(start, end);
  }
  if (path == "/metrics") {
    const std::string body =
        options_.metrics != nullptr ? options_.metrics->render_prometheus()
                                    : std::string{};
    send_all(fd, http_response(200, "OK", "text/plain; version=0.0.4", body));
  } else if (path == "/trace") {
    const std::string body = options_.recorder != nullptr
                                 ? options_.recorder->dump_json()
                                 : std::string{"{\"events\":[]}"};
    send_all(fd, http_response(200, "OK", "application/json", body));
  } else if (path == "/healthz") {
    std::string body = "ok";
    if (!options_.name.empty()) body += " " + options_.name;
    body += "\n";
    send_all(fd, http_response(200, "OK", "text/plain", body));
  } else {
    send_all(fd, http_response(404, "Not Found", "text/plain", "not found\n"));
  }
}

}  // namespace obs
