// Figure 5: Recipe with CONFIDENTIALITY (values and network payloads
// encrypted with ChaCha20 before leaving the enclave) vs plain PBFT, at 50%
// and 95% reads, 256B values. Paper: confidentiality costs about 2x, yet
// Recipe still beats PBFT by ~7x (50%R) and ~13x (95%R) on average.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace recipe::bench;

  std::printf(
      "Figure 5: throughput (Ops/s) with confidentiality, 256B values\n");
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "R%", "PBFT", "R-Raft", "R-CR",
              "R-AllConcur", "R-ABD");

  for (double r : {0.50, 0.95}) {
    ExperimentParams params;
    params.read_fraction = r;
    params.value_size = 256;
    params.confidentiality = true;
    const double pbft = run_pbft(params).ops_per_sec;  // no confidentiality!
    const double raft = run_raft(params).ops_per_sec;
    const double cr = run_cr(params).ops_per_sec;
    const double allconcur = run_allconcur(params).ops_per_sec;
    const double abd = run_abd(params).ops_per_sec;
    std::printf("%-8.0f %12.0f %12.0f %12.0f %12.0f %12.0f\n", r * 100, pbft,
                raft, cr, allconcur, abd);
    std::printf("  speedup vs PBFT: R-Raft %.1fx  R-CR %.1fx  R-AllConcur "
                "%.1fx  R-ABD %.1fx  (paper avg: %s)\n",
                raft / pbft, cr / pbft, allconcur / pbft, abd / pbft,
                r < 0.9 ? "7x" : "13x");
  }

  // Confidentiality cost factor (paper: ~2x).
  std::printf("\nConfidentiality overhead (plain / confidential), 95%%R:\n");
  ExperimentParams plain;
  plain.read_fraction = 0.95;
  ExperimentParams conf = plain;
  conf.confidentiality = true;
  std::printf("  R-CR   %.2fx\n",
              run_cr(plain).ops_per_sec / run_cr(conf).ops_per_sec);
  std::printf("  R-ABD  %.2fx (paper: minimal degradation - rate-limited)\n",
              run_abd(plain).ops_per_sec / run_abd(conf).ops_per_sec);
  return 0;
}
