// Unit + property tests for the partitioned KV store: skiplist correctness,
// timestamp semantics, integrity detection against a Byzantine host, and
// confidentiality mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kvstore/kvstore.h"

namespace recipe::kv {
namespace {

TEST(KvStore, PutGetRoundTrip) {
  KvStore kv;
  EXPECT_TRUE(kv.write("k1", as_view("v1")));
  auto got = kv.get("k1");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(as_view(got.value().value)), "v1");
}

TEST(KvStore, MissingKeyIsNotFound) {
  KvStore kv;
  EXPECT_EQ(kv.get("nope").code(), ErrorCode::kNotFound);
  EXPECT_FALSE(kv.contains("nope"));
  EXPECT_FALSE(kv.timestamp("nope").has_value());
}

TEST(KvStore, OverwriteUpdatesValue) {
  KvStore kv;
  kv.write("k", as_view("v1"));
  kv.write("k", as_view("v2"));
  EXPECT_EQ(to_string(as_view(kv.get("k").value().value)), "v2");
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, TimestampedWriteRejectsStale) {
  KvStore kv;
  EXPECT_TRUE(kv.write("k", as_view("new"), Timestamp{5, 1}));
  EXPECT_FALSE(kv.write("k", as_view("old"), Timestamp{3, 2}));
  EXPECT_EQ(to_string(as_view(kv.get("k").value().value)), "new");
  EXPECT_EQ(kv.timestamp("k").value(), (Timestamp{5, 1}));
}

TEST(KvStore, TimestampTieBrokenByNode) {
  KvStore kv;
  EXPECT_TRUE(kv.write("k", as_view("a"), Timestamp{5, 1}));
  EXPECT_TRUE(kv.write("k", as_view("b"), Timestamp{5,
                                                    2}));  // higher node wins
  EXPECT_FALSE(kv.write("k", as_view("c"), Timestamp{5, 1}));
  EXPECT_EQ(to_string(as_view(kv.get("k").value().value)), "b");
}

TEST(KvStore, UntimestampedWriteAlwaysApplies) {
  KvStore kv;
  kv.write("k", as_view("v1"), Timestamp{9, 9});
  EXPECT_TRUE(kv.write("k", as_view("v2")));  // protocol-ordered write
  EXPECT_EQ(to_string(as_view(kv.get("k").value().value)), "v2");
}

TEST(KvStore, EraseRemoves) {
  KvStore kv;
  kv.write("a", as_view("1"));
  kv.write("b", as_view("2"));
  EXPECT_TRUE(kv.erase("a"));
  EXPECT_FALSE(kv.erase("a"));
  EXPECT_FALSE(kv.contains("a"));
  EXPECT_TRUE(kv.contains("b"));
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, ScanIsSorted) {
  KvStore kv;
  for (const char* k : {"delta", "alpha", "charlie", "bravo"}) {
    kv.write(k, as_view("v"));
  }
  std::vector<std::string> keys;
  kv.scan([&](std::string_view k, const Timestamp&) {
    keys.emplace_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"alpha", "bravo", "charlie",
                                            "delta"}));
}

TEST(KvStore, ScanEarlyStop) {
  KvStore kv;
  for (const char* k : {"a", "b", "c"}) kv.write(k, as_view("v"));
  int seen = 0;
  kv.scan([&](std::string_view, const Timestamp&) { return ++seen < 2; });
  EXPECT_EQ(seen, 2);
}

TEST(KvStore, ScanFromIsStrictlyAfterCursor) {
  KvStore kv;
  for (const char* k : {"a", "b", "c"}) kv.write(k, as_view("v"));
  std::vector<std::string> keys;
  kv.scan_from("a", [&](std::string_view k, const Timestamp&) {
    keys.emplace_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"b", "c"}));
}

TEST(KvStore, ScanFromEmptyCursorSkipsOnlyTheEmptyKey) {
  // The empty string is a VALID key. scan_from("") means "strictly after
  // the empty key" — it must yield every named key but never "" itself
  // (streaming "from the very first key" is scan(), flagged separately on
  // the wire via has_cursor).
  KvStore kv;
  kv.write("", as_view("empty"));
  kv.write("a", as_view("v"));
  std::vector<std::string> keys;
  kv.scan_from("", [&](std::string_view k, const Timestamp&) {
    keys.emplace_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"a"}));
}

TEST(KvStore, ScanFromCursorAtOrPastLastKeyYieldsNothing) {
  KvStore kv;
  for (const char* k : {"a", "b", "c"}) kv.write(k, as_view("v"));
  int seen = 0;
  const auto count = [&](std::string_view, const Timestamp&) {
    ++seen;
    return true;
  };
  kv.scan_from("c", count);  // cursor == last key
  EXPECT_EQ(seen, 0);
  kv.scan_from("zzz", count);  // cursor past every key
  EXPECT_EQ(seen, 0);
  KvStore empty;
  empty.scan_from("", count);  // empty store, empty cursor
  empty.scan_from("a", count);
  EXPECT_EQ(seen, 0);
}

TEST(KvStore, ScanFromEarlyStop) {
  KvStore kv;
  for (const char* k : {"a", "b", "c", "d"}) kv.write(k, as_view("v"));
  int seen = 0;
  kv.scan_from("a", [&](std::string_view, const Timestamp&) {
    return ++seen < 2;
  });
  EXPECT_EQ(seen, 2);
}

TEST(KvStore, ValuesLiveInHostMemoryKeysInEnclave) {
  KvStore kv;
  const Bytes big(100000, 'x');
  kv.write("k", as_view(big));
  EXPECT_GE(kv.host_bytes(), big.size());
  EXPECT_LT(kv.enclave_bytes(), 1000u);  // only key + metadata
}

// --- Byzantine host attacks --------------------------------------------------

TEST(KvStore, DetectsHostCorruption) {
  KvStore kv;
  kv.write("k", as_view("value"));
  ASSERT_TRUE(kv.host_arena().corrupt(kv.host_ptr("k").value()).is_ok());
  EXPECT_EQ(kv.get("k").code(), ErrorCode::kIntegrityViolation);
}

TEST(KvStore, DetectsValueSwapAttack) {
  // Host swaps two legitimate values: each is individually "valid" data, but
  // bound to the wrong key. The key-bound digest must catch it.
  KvStore kv;
  kv.write("alice", as_view("rich"));
  kv.write("bob", as_view("poor"));
  ASSERT_TRUE(kv.host_arena()
                  .swap(kv.host_ptr("alice").value(),
                        kv.host_ptr("bob").value())
                  .is_ok());
  EXPECT_EQ(kv.get("alice").code(), ErrorCode::kIntegrityViolation);
  EXPECT_EQ(kv.get("bob").code(), ErrorCode::kIntegrityViolation);
}

TEST(KvStore, DetectsHostFreeingValue) {
  KvStore kv;
  kv.write("k", as_view("value"));
  kv.host_arena().free(kv.host_ptr("k").value());
  EXPECT_EQ(kv.get("k").code(), ErrorCode::kIntegrityViolation);
}

TEST(KvStore, RewriteAfterCorruptionHeals) {
  KvStore kv;
  kv.write("k", as_view("v1"));
  ASSERT_TRUE(kv.host_arena().corrupt(kv.host_ptr("k").value()).is_ok());
  kv.write("k", as_view("v2"));
  EXPECT_EQ(to_string(as_view(kv.get("k").value().value)), "v2");
}

// --- Confidentiality mode
// ------------------------------------------------------

KvConfig confidential_config() {
  KvConfig config;
  config.value_encryption_key =
      crypto::SymmetricKey{Bytes(crypto::kSymmetricKeySize, 0x33)};
  return config;
}

TEST(KvStore, ConfidentialRoundTrip) {
  KvStore kv(confidential_config());
  EXPECT_TRUE(kv.confidential());
  kv.write("k", as_view("secret-value"));
  EXPECT_EQ(to_string(as_view(kv.get("k").value().value)), "secret-value");
}

TEST(KvStore, HostMemoryHoldsCiphertextOnly) {
  KvStore kv(confidential_config());
  const Bytes plaintext = to_bytes("super-secret-payload");
  kv.write("k", as_view(plaintext));
  const Bytes host_view =
      kv.host_arena().load(kv.host_ptr("k").value()).value();
  EXPECT_EQ(host_view.size(), plaintext.size());
  EXPECT_NE(host_view, plaintext);  // encrypted at rest in host memory
}

TEST(KvStore, ConfidentialUpdatesUseFreshNonce) {
  KvStore kv(confidential_config());
  kv.write("k", as_view("same-value"));
  const Bytes c1 = kv.host_arena().load(kv.host_ptr("k").value()).value();
  kv.write("k", as_view("same-value"));
  const Bytes c2 = kv.host_arena().load(kv.host_ptr("k").value()).value();
  EXPECT_NE(c1, c2);  // version-bound nonce: no keystream reuse
}

TEST(KvStore, ConfidentialDetectsCorruption) {
  KvStore kv(confidential_config());
  kv.write("k", as_view("value"));
  ASSERT_TRUE(kv.host_arena().corrupt(kv.host_ptr("k").value()).is_ok());
  EXPECT_EQ(kv.get("k").code(), ErrorCode::kIntegrityViolation);
}

// --- Property sweep: random ops mirror a std::map model
// -------------------------

class KvStoreModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvStoreModelTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  KvStore kv;
  std::map<std::string, std::string> model;

  for (int op = 0; op < 2000; ++op) {
    const std::string key = "key" + std::to_string(rng.below(50));
    const int action = static_cast<int>(rng.below(10));
    if (action < 5) {  // write
      const std::string value = "v" + std::to_string(rng.next());
      kv.write(key, as_view(value));
      model[key] = value;
    } else if (action < 8) {  // read
      auto got = kv.get(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(got.code(), ErrorCode::kNotFound);
      } else {
        ASSERT_TRUE(got.is_ok());
        EXPECT_EQ(to_string(as_view(got.value().value)), it->second);
      }
    } else {  // erase
      EXPECT_EQ(kv.erase(key), model.erase(key) > 0);
    }
    EXPECT_EQ(kv.size(), model.size());
  }

  // Final scan equals model iteration order.
  std::vector<std::string> scanned;
  kv.scan([&](std::string_view k, const Timestamp&) {
    scanned.emplace_back(k);
    return true;
  });
  std::vector<std::string> expected;
  for (const auto& [k, v] : model) expected.push_back(k);
  EXPECT_EQ(scanned, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvStoreModelTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace recipe::kv
