// Recipe's partitioned key-value store (paper §A.3).
//
// A skiplist whose keys + metadata (value digest, Lamport timestamp, host
// pointer) live in ENCLAVE memory, while the values themselves live in the
// untrusted HostArena. get() re-hashes the host value and compares against
// the enclave-resident digest, so a Byzantine host that corrupts, swaps or
// stales values is always detected — this is what makes trusted LOCAL reads
// possible (no quorum needed to read).
//
// Confidentiality mode (Fig. 5) encrypts values with ChaCha20 before they
// leave the enclave; the digest covers the plaintext, the nonce is bound to
// the entry's version so stream reuse cannot occur.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "kvstore/host_arena.h"

namespace recipe::kv {

// Lamport timestamp used by ABD and for per-key freshness: (counter, node)
// with lexicographic comparison.
struct Timestamp {
  std::uint64_t counter{0};
  std::uint64_t node{0};

  friend constexpr auto operator<=>(const Timestamp&,
                                    const Timestamp&) = default;
  bool is_zero() const { return counter == 0 && node == 0; }
};

struct KvConfig {
  // Value-encryption key: non-empty enables confidentiality mode.
  crypto::SymmetricKey value_encryption_key{};
  std::uint64_t skiplist_seed = 0x5EED;
};

// Result of a successful get(): the (verified, decrypted) value and its
// enclave-resident metadata.
struct VersionedValue {
  Bytes value;
  Timestamp timestamp;
  std::uint64_t version{0};
};

class KvStore {
 public:
  explicit KvStore(KvConfig config = {});
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Writes (inserts or updates) a value with the given timestamp. A write
  // with an OLDER timestamp than the stored one is rejected with kOk=false
  // semantics: returns false, store unchanged (ABD semantics: last writer
  // wins by timestamp). Pass Timestamp{} to always overwrite (protocols with
  // their own ordering, e.g. Raft's log, apply in commit order).
  bool write(std::string_view key, BytesView value, Timestamp ts = {});

  // Reads the value for `key` into the protected area, verifying integrity
  // against the enclave digest. kIntegrityViolation if the host tampered.
  Result<VersionedValue> get(std::string_view key) const;

  // Reads only enclave-resident metadata (no host access, always trusted).
  std::optional<Timestamp> timestamp(std::string_view key) const;

  // The recovery-merge admission rule, shared by state streaming and
  // snapshot restore: install only entries that move local state FORWARD —
  // the key is absent, or `ts` is non-zero and strictly newer than the
  // stored timestamp. The STRICT comparison is load-bearing: write()
  // accepts equal timestamps, so without it a repeated pass over unchanged
  // state would count installs forever and the catch-up fixpoint loop
  // would never converge.
  bool would_advance(std::string_view key, Timestamp ts) const {
    const auto existing = timestamp(key);
    if (!existing) return true;
    if (ts.is_zero()) return false;
    return *existing < ts;
  }

  bool erase(std::string_view key);
  bool contains(std::string_view key) const;
  std::size_t size() const { return size_; }

  // Drops every entry (enclave metadata AND host values). Models a machine
  // reboot for the recovery path; versions keep increasing so confidential
  // value nonces never repeat across the wipe.
  void clear();

  // In-order iteration (skiplist level 0). `fn` returning false stops early.
  void scan(const std::function<bool(std::string_view key,
                                     const Timestamp&)>& fn) const;

  // In-order iteration starting STRICTLY AFTER `cursor` (empty cursor: from
  // the first key). O(log n) positioning via the skiplist towers — this is
  // what makes chunked state streaming resumable without re-walking the
  // prefix on every chunk.
  void scan_from(std::string_view cursor,
                 const std::function<bool(std::string_view key,
                                          const Timestamp&)>& fn) const;

  // Memory accounting for the TEE cost model.
  std::uint64_t enclave_bytes() const { return enclave_bytes_; }
  std::uint64_t host_bytes() const { return arena_.bytes_used(); }
  bool confidential() const { return !config_.value_encryption_key.empty(); }

  // Test access to the untrusted side.
  HostArena& host_arena() { return arena_; }
  // Exposes the host pointer so tests can target corruption at a key.
  std::optional<HostPtr> host_ptr(std::string_view key) const;

 private:
  static constexpr int kMaxLevel = 16;

  struct Node;

  Node* find(std::string_view key) const;
  int random_level();
  Bytes seal(BytesView plaintext, std::uint64_t version) const;
  Bytes unseal(BytesView ciphertext, std::uint64_t version) const;

  KvConfig config_;
  HostArena arena_;
  Rng rng_;
  Node* head_;
  int level_{1};
  std::size_t size_{0};
  std::uint64_t enclave_bytes_{0};
  std::uint64_t next_version_{1};
};

}  // namespace recipe::kv
