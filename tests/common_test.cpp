// Unit tests for src/common: bytes/hex, serde codec, Result, RNG, Zipfian,
// histogram.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/stats.h"
#include "common/zipf.h"

namespace recipe {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x5a};
  EXPECT_EQ(to_hex(as_view(data)), "0001abff5a");
  EXPECT_EQ(from_hex("0001abff5a"), data);
  EXPECT_EQ(from_hex("0001ABFF5A"), data);
}

TEST(Bytes, FromHexRejectsMalformed) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // non-hex
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, StringRoundTrip) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(to_string(as_view(b)), "hello");
}

TEST(Serde, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.boolean(true);
  w.str("payload");

  Reader r(as_view(w.buffer()));
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_EQ(r.str().value(), "payload");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, IdRoundTrip) {
  Writer w;
  w.id(NodeId{7});
  w.id(ViewId{3});
  Reader r(as_view(w.buffer()));
  EXPECT_EQ(r.id<NodeId>().value(), NodeId{7});
  EXPECT_EQ(r.id<ViewId>().value(), ViewId{3});
}

TEST(Serde, TruncationIsDetectedNotUB) {
  Writer w;
  w.u64(1);
  Bytes buf = w.buffer();
  buf.resize(4);  // truncate mid-integer
  Reader r(as_view(buf));
  EXPECT_FALSE(r.u64().has_value());
}

TEST(Serde, TruncatedBytesLengthPrefix) {
  Writer w;
  w.bytes(as_view(to_bytes("abcdef")));
  Bytes buf = w.buffer();
  buf.resize(buf.size() - 2);
  Reader r(as_view(buf));
  EXPECT_FALSE(r.bytes().has_value());
}

TEST(Serde, HostileLengthPrefixDoesNotOverread) {
  Writer w;
  w.u32(0xFFFFFFFF);  // claims 4GB payload
  Reader r(as_view(w.buffer()));
  EXPECT_FALSE(r.bytes().has_value());
}

TEST(Result, OkAndErrorPaths) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.code(), ErrorCode::kOk);

  Result<int> err(Status::error(ErrorCode::kReplay, "stale"));
  ASSERT_FALSE(err.is_ok());
  EXPECT_EQ(err.code(), ErrorCode::kReplay);
  EXPECT_EQ(err.status().message(), "stale");
}

TEST(Result, StatusToString) {
  EXPECT_EQ(Status::ok().to_string(), "OK");
  EXPECT_EQ(Status::error(ErrorCode::kAuthFailed, "bad mac").to_string(),
            "AUTH_FAILED: bad mac");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(123), c2(124);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork();
  EXPECT_NE(parent.next(), child.next());
}

TEST(Zipf, SkewsTowardsLowItems) {
  Rng rng(42);
  ZipfianGenerator zipf(10000, 0.99);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.next(rng)]++;

  // Item 0 must be the most popular and all samples in range.
  int max_count = 0;
  std::uint64_t max_item = 0;
  for (const auto& [item, count] : counts) {
    EXPECT_LT(item, 10000u);
    if (count > max_count) {
      max_count = count;
      max_item = item;
    }
  }
  EXPECT_EQ(max_item, 0u);
  // With theta=0.99 over 10k items, the hottest item takes a few % of mass.
  EXPECT_GT(max_count, kSamples / 100);
}

TEST(Zipf, UniformThetaZeroIsRoughlyFlat) {
  Rng rng(42);
  ZipfianGenerator zipf(10, 0.01);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.next(rng)]++;
  EXPECT_EQ(counts.size(), 10u);
}

TEST(Zipf, DegenerateItemCountsAreSafe) {
  // Regression: n == 0 divided by zero in the eta_ precomputation and
  // n == 1 made its denominator vanish (zeta(2)/zeta(1) > 1); both now
  // degenerate to "always item 0" instead of NaN/UB.
  Rng rng(7);
  ZipfianGenerator empty(0);
  EXPECT_EQ(empty.item_count(), 1u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(empty.next(rng), 0u);

  ZipfianGenerator single(1);
  EXPECT_EQ(single.item_count(), 1u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(single.next(rng), 0u);
}

TEST(Zipf, TwoItemsStayInRange) {
  Rng rng(7);
  ZipfianGenerator zipf(2, 0.99);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[zipf.next(rng)]++;
  for (const auto& [item, count] : counts) {
    EXPECT_LT(item, 2u);
    EXPECT_GT(count, 0);
  }
  // Item 0 is the more popular of the two.
  EXPECT_GT(counts[0], counts[1]);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 0.01);
  // Log-bucketing gives ~6% error at this magnitude.
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 500.0, 40.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.99)), 990.0, 70.0);
}

TEST(Histogram, MergeAccumulates) {
  Histogram a, b;
  a.record(10);
  b.record(20);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 20u);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  // Edge quantiles of an empty histogram are 0 too, not ~0ULL garbage.
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(Histogram, PercentileEdgesAreExact) {
  Histogram h;
  h.record(7);
  h.record(10000);
  h.record(123456);
  // min/max are tracked exactly, so the edge quantiles bypass the bucket
  // walk and its ~2% midpoint error entirely — including q outside [0,1].
  EXPECT_EQ(h.percentile(0.0), 7u);
  EXPECT_EQ(h.percentile(-0.5), 7u);
  EXPECT_EQ(h.percentile(1.0), 123456u);
  EXPECT_EQ(h.percentile(1.5), 123456u);
  // Interior quantiles stay clamped into [min, max].
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_GE(h.percentile(q), 7u) << q;
    EXPECT_LE(h.percentile(q), 123456u) << q;
  }
}

TEST(Histogram, SingleSampleAllQuantilesAgree) {
  Histogram h;
  h.record(42);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), 42u) << q;
  }
}

TEST(Histogram, BucketBoundariesExactBelowSubBucketRange) {
  // Values below the linear/log seam (16) get a dedicated bucket each, so
  // quantiles are EXACT there — the bucket midpoint IS the value.
  Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(1.0), 15u);
  EXPECT_EQ(h.percentile(0.5), 7u);
  // Each value landed in its own bucket.
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::bucket_for(v), static_cast<std::size_t>(v)) << v;
  }
  // The seam: 15 is the last linear bucket, 16 starts the log groups, and
  // bucket indices never regress as values grow through powers of two.
  std::size_t prev = Histogram::bucket_for(15);
  for (std::uint64_t v : {16ull, 17ull, 31ull, 32ull, 255ull, 256ull, 257ull,
                          1ull << 20, (1ull << 20) + 1, ~0ull}) {
    const std::size_t bucket = Histogram::bucket_for(v);
    EXPECT_GE(bucket, prev) << v;
    EXPECT_LT(bucket, Histogram::kNumBuckets) << v;
    prev = bucket;
  }
}

TEST(Histogram, MergePreservesTallyInvariants) {
  // merge(a, b) must behave exactly as if every sample had been recorded
  // into one histogram: count/sum/min/max equal, quantiles identical.
  Histogram a, b, combined;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    a.record(v * 3);
    combined.record(v * 3);
  }
  for (std::uint64_t v = 1; v <= 300; ++v) {
    b.record(v * 7 + 1000);
    combined.record(v * 7 + 1000);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.percentile(q), combined.percentile(q)) << q;
  }
}

TEST(Histogram, MergeEmptyDoesNotCorruptMin) {
  Histogram a, empty;
  a.record(50);
  a.merge(empty);  // empty's sentinel min must not leak in
  EXPECT_EQ(a.min(), 50u);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);  // merging INTO an empty histogram adopts a's stats
  EXPECT_EQ(empty.min(), 50u);
  EXPECT_EQ(empty.max(), 50u);
  EXPECT_EQ(empty.percentile(0.5), 50u);
}

TEST(StrongIds, DistinctTypesAndHashable) {
  NodeId n{1};
  ClientId c{1};
  EXPECT_EQ(n, NodeId{1});
  EXPECT_NE(n, NodeId{2});
  std::set<NodeId> s{NodeId{1}, NodeId{2}, NodeId{1}};
  EXPECT_EQ(s.size(), 2u);
  (void)c;
}

}  // namespace
}  // namespace recipe
