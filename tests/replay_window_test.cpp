// Randomized equivalence: the ring-bitmap ReplayWindow must reproduce the
// pre-refactor std::map<Counter, bool> sliding-window semantics verdict-for-
// verdict over shuffled, duplicated and stale counter streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "recipe/replay_window.h"

namespace recipe {
namespace {

// Verbatim reimplementation of the pre-refactor window-mode logic from
// RecipeSecurity::verify (map + GC loop).
class MapWindowModel {
 public:
  explicit MapWindowModel(std::size_t window) : window_(window) {}

  ReplayWindow::Verdict check_and_set(Counter cnt) {
    if (cnt + window_ <= max_seen_) return ReplayWindow::Verdict::kStale;
    if (seen_.contains(cnt)) return ReplayWindow::Verdict::kDuplicate;
    seen_.emplace(cnt, true);
    if (cnt > max_seen_) max_seen_ = cnt;
    while (!seen_.empty() && seen_.begin()->first + window_ <= max_seen_) {
      seen_.erase(seen_.begin());
    }
    return ReplayWindow::Verdict::kAccept;
  }

 private:
  std::size_t window_;
  Counter max_seen_{0};
  std::map<Counter, bool> seen_;
};

void run_stream(const std::vector<Counter>& stream, std::size_t window) {
  ReplayWindow ring(window);
  MapWindowModel model(window);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto expected = model.check_and_set(stream[i]);
    const auto got = ring.check_and_set(stream[i]);
    ASSERT_EQ(got, expected)
        << "divergence at step " << i << " cnt=" << stream[i]
        << " window=" << window;
  }
}

TEST(ReplayWindow, InOrderStream) {
  std::vector<Counter> stream;
  for (Counter c = 1; c <= 5000; ++c) stream.push_back(c);
  run_stream(stream, 64);
}

TEST(ReplayWindow, EveryCounterTwice) {
  std::vector<Counter> stream;
  for (Counter c = 1; c <= 2000; ++c) {
    stream.push_back(c);
    stream.push_back(c);  // immediate replay
  }
  run_stream(stream, 128);
}

TEST(ReplayWindow, ShuffledWithDuplicatesAndStale) {
  std::mt19937_64 rng(1234);
  for (const std::size_t window : {1u, 2u, 63u, 64u, 65u, 1000u, 4096u}) {
    std::vector<Counter> stream;
    Counter base = 1;
    for (int batch = 0; batch < 40; ++batch) {
      // A batch of fresh counters around the current base...
      std::vector<Counter> fresh;
      for (Counter c = base; c < base + 200; ++c) fresh.push_back(c);
      base += 200;
      // ...plus duplicates and deep-stale counters mixed in.
      for (int i = 0; i < 60; ++i) {
        fresh.push_back(1 + rng() % base);  // anywhere in history
      }
      std::shuffle(fresh.begin(), fresh.end(), rng);
      stream.insert(stream.end(), fresh.begin(), fresh.end());
    }
    run_stream(stream, window);
  }
}

TEST(ReplayWindow, LargeJumpsClearStaleState) {
  std::mt19937_64 rng(99);
  std::vector<Counter> stream;
  Counter base = 1;
  for (int jump = 0; jump < 30; ++jump) {
    for (int i = 0; i < 50; ++i) stream.push_back(base + rng() % 40);
    base += 100000 + rng() % 5000;  // far beyond the window
    stream.push_back(base);
    // Ring slots from before the jump alias (cnt % window) with new
    // counters; verdicts must still match the map model exactly.
    for (int i = 0; i < 50; ++i) stream.push_back(base - rng() % 40);
  }
  run_stream(stream, 256);
}

TEST(ReplayWindow, CounterZeroAndWindowEdges) {
  // cnt=0 (forged frames carry it; enclave counters start at 1) and exact
  // window-boundary counters.
  run_stream({0, 0, 1, 0, 64, 65, 1, 2, 129, 65, 66}, 64);
  run_stream({5, 5 + 64, 5, 6, 4, 70, 69, 6}, 64);
}

}  // namespace
}  // namespace recipe
