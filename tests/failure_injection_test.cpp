// Randomized failure-injection sweeps: crash schedules, network faults
// (pre-GST loss/duplication/jitter) and combined chaos, asserting the two
// invariants that must never break while failures stay within the fault
// budget:
//   durability — every acknowledged write remains readable;
//   convergence — replica state machines agree after quiescence.
#include <gtest/gtest.h>

#include <map>

#include "cluster_harness.h"
#include "protocols/abd/abd.h"
#include "protocols/raft/raft.h"
#include "workload/routing.h"

namespace recipe {
namespace {

using testing::Cluster;

class FaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSweep, AbdDurabilityUnderLossyNetwork) {
  Cluster<protocols::AbdNode> cluster;
  cluster.build();
  net::NetworkFaults faults;
  faults.drop_rate = 0.05;
  faults.duplicate_rate = 0.05;
  faults.jitter_max = 50 * sim::kMicrosecond;
  faults.gst = 30 * sim::kSecond;  // faulty for the whole test
  cluster.network().set_faults(faults);

  auto& client = cluster.add_client();
  Rng rng(GetParam());
  std::map<std::string, std::string> acked;
  std::map<std::string, std::set<std::string>> unacked;

  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(rng.below(8));
    const std::string value = "v" + std::to_string(i);
    const NodeId coord{rng.below(3) + 1};
    const ClientReply reply = cluster.put(client, coord, key, value);
    if (reply.ok) {
      acked[key] = value;
      // A newly acked write supersedes... nothing we can prune: an earlier
      // UNACKED write may carry a higher timestamp (tie broken by node id)
      // and legally linearize after this one. Keep the set.
    } else {
      unacked[key].insert(value);
    }
  }

  // Durability: a quorum read returns the latest acked value, or the value
  // of an incomplete write (which linearizability allows to take effect) —
  // never anything else, and never "missing".
  for (const auto& [key, value] : acked) {
    const ClientReply get = cluster.get(client, NodeId{rng.below(3) + 1}, key);
    ASSERT_TRUE(get.ok);
    EXPECT_TRUE(get.found) << key;
    const std::string observed = to_string(as_view(get.value));
    const bool valid = observed == value || unacked[key].contains(observed);
    EXPECT_TRUE(valid) << key << " -> " << observed << " (acked: " << value
                       << ")";
  }
}

TEST_P(FaultSweep, RaftChaosWithCrashAndRecovery) {
  Cluster<protocols::RaftNode> cluster;
  protocols::RaftOptions raft;
  raft.initial_leader = NodeId{1};
  cluster.build(raft);
  auto& client = cluster.add_client();
  Rng rng(GetParam() ^ 0xFEED);

  std::map<std::string, std::string> acked;
  std::size_t crashed_follower = 1 + rng.below(2);  // node 2 or 3
  bool crashed = false;

  for (int i = 0; i < 30; ++i) {
    if (i == 10) {
      cluster.crash(crashed_follower);  // one follower dies mid-run
      crashed = true;
    }
    // Find the current leader (might change under chaos).
    NodeId leader = kNoNode;
    for (std::size_t n = 0; n < cluster.size(); ++n) {
      if (cluster.node(n).running() &&
          cluster.node(n).role() == protocols::RaftNode::Role::kLeader) {
        leader = cluster.node(n).self();
      }
    }
    if (leader == kNoNode) {
      cluster.run_for(sim::kSecond);
      continue;
    }
    const std::string key = "k" + std::to_string(rng.below(6));
    const std::string value = "v" + std::to_string(i);
    const ClientReply reply = cluster.put(client, leader, key, value);
    if (reply.ok) acked[key] = value;
  }
  ASSERT_TRUE(crashed);
  ASSERT_GT(acked.size(), 0u);
  cluster.run_for(2 * sim::kSecond);

  // Durability at the leader.
  NodeId leader = kNoNode;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    if (cluster.node(n).running() &&
        cluster.node(n).role() == protocols::RaftNode::Role::kLeader) {
      leader = cluster.node(n).self();
    }
  }
  ASSERT_NE(leader, kNoNode);
  for (const auto& [key, value] : acked) {
    const ClientReply get = cluster.get(client, leader, key);
    EXPECT_TRUE(get.found) << key;
    EXPECT_EQ(to_string(as_view(get.value)), value) << key;
  }

  // Convergence of the two survivors.
  std::vector<protocols::RaftNode*> survivors;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    if (cluster.node(n).running()) survivors.push_back(&cluster.node(n));
  }
  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_EQ(survivors[0]->commit_index(), survivors[1]->commit_index());
  for (const auto& [key, value] : acked) {
    auto v0 = survivors[0]->kv().get(key);
    auto v1 = survivors[1]->kv().get(key);
    ASSERT_TRUE(v0.is_ok() && v1.is_ok()) << key;
    EXPECT_EQ(v0.value().value, v1.value().value) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

// --- Consistent-hash routing (Fig. 2 distributed data-store layer) ---------------

TEST(ConsistentHashRing, DistributesKeys) {
  workload::ConsistentHashRing ring;
  for (workload::ShardId s = 0; s < 4; ++s) ring.add_shard(s);
  EXPECT_EQ(ring.shard_count(), 4u);

  std::map<workload::ShardId, int> counts;
  for (int i = 0; i < 4000; ++i) {
    counts[ring.lookup("user" + std::to_string(i))]++;
  }
  // Every shard owns a reasonable fraction (no starvation).
  for (workload::ShardId s = 0; s < 4; ++s) {
    EXPECT_GT(counts[s], 400) << "shard " << s;
  }
}

TEST(ConsistentHashRing, LookupIsStable) {
  workload::ConsistentHashRing ring;
  for (workload::ShardId s = 0; s < 3; ++s) ring.add_shard(s);
  const auto owner = ring.lookup("some-key");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ring.lookup("some-key"), owner);
}

TEST(ConsistentHashRing, RemovalMovesOnlyAffectedKeys) {
  workload::ConsistentHashRing ring;
  for (workload::ShardId s = 0; s < 4; ++s) ring.add_shard(s);
  std::map<std::string, workload::ShardId> before;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "user" + std::to_string(i);
    before[key] = ring.lookup(key);
  }
  ring.remove_shard(2);
  int moved = 0;
  for (const auto& [key, shard] : before) {
    const auto now = ring.lookup(key);
    if (shard != 2) {
      EXPECT_EQ(now, shard) << "key not owned by the removed shard moved";
    } else {
      EXPECT_NE(now, 2u);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(ConsistentHashRing, AddingShardMovesBoundedFraction) {
  // Adding one shard to an N-shard ring must move only ~1/(N+1) of the
  // keyspace — and every moved key must move TO the new shard (consistent
  // hashing never shuffles keys between existing shards).
  constexpr int kShards = 5;
  constexpr int kKeys = 10000;
  workload::ConsistentHashRing ring;
  for (workload::ShardId s = 0; s < kShards; ++s) ring.add_shard(s);

  std::map<std::string, workload::ShardId> before;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "user" + std::to_string(i);
    before[key] = ring.lookup(key);
  }

  ring.add_shard(kShards);
  int moved = 0;
  for (const auto& [key, owner] : before) {
    const auto now = ring.lookup(key);
    if (now != owner) {
      EXPECT_EQ(now, static_cast<workload::ShardId>(kShards))
          << "key moved between pre-existing shards";
      ++moved;
    }
  }
  const double fraction = static_cast<double>(moved) / kKeys;
  const double expected = 1.0 / (kShards + 1);
  EXPECT_GT(fraction, expected / 3) << "new shard starved";
  EXPECT_LT(fraction, expected * 2.5) << "far more than its share moved";
}

TEST(ConsistentHashRing, RemovingShardMovesBoundedFraction) {
  constexpr int kShards = 5;
  constexpr int kKeys = 10000;
  workload::ConsistentHashRing ring;
  for (workload::ShardId s = 0; s < kShards; ++s) ring.add_shard(s);

  int owned = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (ring.lookup("user" + std::to_string(i)) == 0) ++owned;
  }
  // RemovalMovesOnlyAffectedKeys covers WHICH keys move; this bounds HOW MANY.
  const double fraction = static_cast<double>(owned) / kKeys;
  EXPECT_GT(fraction, 1.0 / kShards / 3);
  EXPECT_LT(fraction, 2.5 / kShards);
}

TEST(ConsistentHashRing, RemoveDownToEmptyRing) {
  workload::ConsistentHashRing ring;
  for (workload::ShardId s = 0; s < 3; ++s) ring.add_shard(s);
  EXPECT_FALSE(ring.empty());

  ring.remove_shard(0);
  ring.remove_shard(2);
  EXPECT_EQ(ring.shard_count(), 1u);
  // All keys land on the sole survivor.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.lookup("user" + std::to_string(i)), 1u);
  }

  ring.remove_shard(1);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.shard_count(), 0u);
  // Lookup on an empty ring is well-defined (no owner), not UB.
  EXPECT_EQ(ring.lookup("user1"), workload::ConsistentHashRing::kNoShard);
  // Removing from an empty ring is a no-op.
  ring.remove_shard(1);
  EXPECT_TRUE(ring.empty());
}

TEST(ConsistentHashRing, ShardedAbdDeployment) {
  // Two independent ABD replication groups; the routing layer steers each
  // key to its owning shard (Fig. 2 end-to-end).
  workload::ConsistentHashRing ring;
  ring.add_shard(0);
  ring.add_shard(1);

  Cluster<protocols::AbdNode> shard0;
  shard0.build();
  Cluster<protocols::AbdNode> shard1;
  shard1.build();
  auto& client0 = shard0.add_client(2001);
  auto& client1 = shard1.add_client(2002);

  for (int i = 0; i < 20; ++i) {
    const std::string key = "user" + std::to_string(i);
    const std::string value = "v" + std::to_string(i);
    if (ring.lookup(key) == 0) {
      ASSERT_TRUE(shard0.put(client0, NodeId{1}, key, value).ok);
    } else {
      ASSERT_TRUE(shard1.put(client1, NodeId{1}, key, value).ok);
    }
  }
  // Reads route identically and find every key.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "user" + std::to_string(i);
    const ClientReply get = ring.lookup(key) == 0
                                ? shard0.get(client0, NodeId{2}, key)
                                : shard1.get(client1, NodeId{2}, key);
    EXPECT_TRUE(get.found) << key;
  }
}

}  // namespace
}  // namespace recipe
