// sharded_store: the full Fig. 2 stack — the distributed data-store layer
// (src/cluster/) in front of multiple independent Recipe replication
// groups, each running its own protocol, with online shard addition.
#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/routed_client.h"
#include "workload/workload.h"

using namespace recipe;

int main() {
  sim::Simulator simulator;
  net::SimNetwork network(simulator, Rng(21));
  tee::TeePlatform platform(1);

  // A mixed-protocol deployment: one R-CR chain, one R-CRAQ chain, one
  // R-Hermes group — the routing layer hides which shard runs what.
  cluster::ShardedCluster store(simulator, network, platform);
  for (const char* protocol : {"cr", "craq", "hermes"}) {
    auto added = store.add_shard(protocol);
    if (!added) {
      std::printf("failed to deploy %s shard\n", protocol);
      return 1;
    }
  }
  std::printf("deployed %zu shards x %zu replicas; routing via consistent "
              "hashing (%zu shards on the ring)\n",
              store.shard_count(), store.options().replicas_per_shard,
              store.ring().shard_count());

  // Write 60 keys through the routing layer.
  cluster::RoutedClient client(store);
  int written = 0;
  for (int i = 0; i < 60; ++i) {
    const std::string key = workload::key_name(static_cast<std::uint64_t>(i));
    if (client.put_sync(key, "value-" + std::to_string(i))) ++written;
  }
  std::printf("writes committed: %d/60\n", written);

  // Scale out ONLINE: a fourth shard (Raft this time) joins, pulls its key
  // range from the existing shards, and the ring rebalances.
  auto added = store.add_shard("raft");
  if (!added) {
    std::printf("online shard addition failed\n");
    return 1;
  }
  std::printf("added shard %u (raft) online; ring now has %zu shards\n",
              added.value(), store.ring().shard_count());

  // Every acknowledged write is still readable after the rebalance.
  int correct = 0;
  for (int i = 0; i < 60; ++i) {
    const std::string key = workload::key_name(static_cast<std::uint64_t>(i));
    auto value = client.get_sync(key);
    if (value && *value == "value-" + std::to_string(i)) ++correct;
  }
  std::printf("reads correct:    %d/60 (after online rebalance)\n", correct);

  auto stats = store.stats();
  for (const auto& shard : stats.per_shard) {
    std::printf("shard %u (%s) owns %zu keys\n", shard.id,
                shard.protocol.c_str(), shard.keys);
  }
  std::printf("aggregate client latency: %s\n",
              client.latency_us().summary().c_str());
  std::printf("(keys partition across shards; each shard replicates "
              "independently with Recipe guarantees)\n");
  return 0;
}
