// End-to-end cluster runs over REAL TCP loopback sockets: the acceptance
// smoke for the transport tentpole. A 3-replica group (CR and Raft) with
// shielding + batching enabled serves client ops across four OS threads,
// survives a crash + §3.7 attested-style rejoin, and the sequential history
// stays linearizable: every read returns the latest completed write.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>

#include "cluster/tcp_cluster.h"

namespace recipe::cluster {
namespace {

BatchConfig small_batches() {
  BatchConfig batch;
  batch.enabled = true;
  batch.max_count = 8;
  batch.max_bytes = 16 * 1024;
  batch.max_delay = 200 * sim::kMicrosecond;  // real microseconds here
  return batch;
}

// Sequential closed-loop client: with one outstanding op at a time,
// linearizability degenerates to "every ok-GET returns the latest ok-PUT".
// A GET after a failed PUT may see either value (the write may or may not
// have taken effect) — the checker tracks both admissible values.
class SequentialChecker {
 public:
  void completed_put(const std::string& key, const std::string& value,
                     bool ok) {
    auto& entry = admissible_[key];
    if (ok) {
      entry.clear();
      entry.insert(value);
    } else {
      entry.insert(value);  // maybe-applied: both old and new are legal
    }
  }

  void check_get(const std::string& key, const ClientReply& reply) {
    ASSERT_TRUE(reply.ok) << "read of " << key << " failed outright";
    const auto it = admissible_.find(key);
    ASSERT_NE(it, admissible_.end());
    EXPECT_TRUE(it->second.contains(to_string(as_view(reply.value))))
        << "non-linearizable read of " << key << ": got '"
        << to_string(as_view(reply.value)) << "'";
  }

 private:
  std::map<std::string, std::set<std::string>> admissible_;
};

void run_crash_rejoin_smoke(const std::string& protocol,
                            std::size_t crash_index) {
  TcpClusterOptions options;
  options.protocol = protocol;
  options.replicas = 3;
  options.secured = true;
  options.batch = small_batches();
  options.heartbeat_period = 20 * sim::kMillisecond;
  options.suspect_timeout = 100 * sim::kMillisecond;
  TcpCluster cluster(options);
  KvClient& client = cluster.add_client(2000);
  SequentialChecker checker;

  // Phase 1: writes + reads with all replicas up.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i % 5);
    const std::string value = "v1-" + std::to_string(i);
    const ClientReply reply = cluster.put(client, key, value);
    checker.completed_put(key, value, reply.ok);
    EXPECT_TRUE(reply.ok) << protocol << " put " << i << " failed";
  }
  for (int i = 0; i < 5; ++i) {
    const std::string key = "k" + std::to_string(i);
    checker.check_get(key, cluster.get(client, key));
  }

  // Phase 2: crash one replica; keep writing. Ops may fail while the
  // failure detector converges — the checker tolerates maybe-applied
  // writes, linearizability must still hold for whatever succeeds.
  cluster.crash(crash_index);
  int succeeded = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i % 5);
    const std::string value = "v2-" + std::to_string(i);
    const ClientReply reply = cluster.put(client, key, value);
    checker.completed_put(key, value, reply.ok);
    if (reply.ok) ++succeeded;
  }
  EXPECT_GT(succeeded, 0) << protocol
                          << ": cluster never regained write availability "
                             "after a single crash";

  // Phase 3: full rejoin over TCP (enclave restart, channel resets, shadow
  // join, state streaming from a live donor, promotion).
  NodeId donor{};
  for (std::size_t j = 0; j < cluster.size(); ++j) {
    if (j == crash_index) continue;
    donor = cluster.membership()[j];
    if (protocol == "cr") donor = cluster.membership().back();  // the tail
    break;
  }
  if (protocol == "cr" && crash_index == 2) {
    donor = cluster.membership()[1];
  }
  const Status rejoined = cluster.rejoin(crash_index, donor);
  ASSERT_TRUE(rejoined.is_ok()) << protocol
                                << " rejoin: " << rejoined.message();
  bool active = false;
  cluster.run_on(crash_index, [&] {
    active = cluster.node(crash_index).active();
  });
  EXPECT_TRUE(active);

  // Phase 4: writes and reads with the restored membership.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i % 5);
    const std::string value = "v3-" + std::to_string(i);
    const ClientReply reply = cluster.put(client, key, value);
    checker.completed_put(key, value, reply.ok);
    EXPECT_TRUE(reply.ok) << protocol << " post-rejoin put " << i;
  }
  for (int i = 0; i < 5; ++i) {
    const std::string key = "k" + std::to_string(i);
    checker.check_get(key, cluster.get(client, key));
  }

  EXPECT_GT(cluster.committed_ops(), 0u);
}

// The headline acceptance runs: CR and Raft, shielded + batched, spanning
// one crash/rejoin each.
TEST(TcpClusterTest, ChainReplicationCrashRejoinLinearizableOverTcp) {
  run_crash_rejoin_smoke("cr", /*crash_index=*/2);  // the tail
}

TEST(TcpClusterTest, RaftFollowerCrashRejoinLinearizableOverTcp) {
  run_crash_rejoin_smoke("raft", /*crash_index=*/1);  // a follower
}

TEST(TcpClusterTest, BasicOpsUnsecuredUnbatched) {
  TcpClusterOptions options;
  options.protocol = "cr";
  options.secured = false;
  options.batch = BatchConfig{};  // off
  TcpCluster cluster(options);
  KvClient& client = cluster.add_client(2100);

  for (int i = 0; i < 10; ++i) {
    const ClientReply put = cluster.put(client, "key" + std::to_string(i),
                                        "value" + std::to_string(i));
    EXPECT_TRUE(put.ok);
  }
  for (int i = 0; i < 10; ++i) {
    const ClientReply get = cluster.get(client, "key" + std::to_string(i));
    ASSERT_TRUE(get.ok);
    EXPECT_TRUE(get.found);
    EXPECT_EQ(to_string(as_view(get.value)), "value" + std::to_string(i));
  }
}

// Two clients co-hosted on ONE client transport: the replicas see them both
// arrive over a single connection per transport pair, so reply routing must
// be learned from EVERY frame, not just a connection's first (regression:
// the second client's replies were unroutable and every op timed out).
TEST(TcpClusterTest, TwoCoHostedClientsBothComplete) {
  TcpClusterOptions options;
  options.protocol = "cr";
  options.secured = true;
  TcpCluster cluster(options);
  KvClient& first = cluster.add_client(2300);
  KvClient& second = cluster.add_client(2301);

  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(
        cluster.put(first, "a" + std::to_string(i), "from-first").ok);
    EXPECT_TRUE(
        cluster.put(second, "b" + std::to_string(i), "from-second").ok);
  }
  const ClientReply a = cluster.get(second, "a0");
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(to_string(as_view(a.value)), "from-first");
  const ClientReply b = cluster.get(first, "b0");
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(to_string(as_view(b.value)), "from-second");
}

// The whole secured + batched stack over multi-shard transports: every
// replica and the client transport run 2 event-loop shards, the two
// clients land on DIFFERENT client shards (round-robin homing), and a
// crash + rejoin exercises the per-client channel resets on each client's
// own home loop. transport_shards=1 covers the legacy path everywhere
// else; this is the sharded deployment's end-to-end smoke.
TEST(TcpClusterTest, ShardedTransportsConvergeAndRejoin) {
  TcpClusterOptions options;
  options.protocol = "cr";
  options.secured = true;
  options.batch = small_batches();
  options.transport_shards = 2;
  options.heartbeat_period = 20 * sim::kMillisecond;
  options.suspect_timeout = 100 * sim::kMillisecond;
  TcpCluster cluster(options);
  KvClient& first = cluster.add_client(2400);
  KvClient& second = cluster.add_client(2401);

  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        cluster.put(first, "a" + std::to_string(i), "va" + std::to_string(i))
            .ok);
    EXPECT_TRUE(
        cluster.put(second, "b" + std::to_string(i), "vb" + std::to_string(i))
            .ok);
  }

  cluster.crash(1);
  EXPECT_TRUE(cluster.put(first, "during", "crash").ok);
  ASSERT_TRUE(cluster.rejoin(1, cluster.membership()[0]).is_ok());

  for (int i = 0; i < 10; ++i) {
    const ClientReply a = cluster.get(second, "a" + std::to_string(i));
    ASSERT_TRUE(a.ok);
    EXPECT_EQ(to_string(as_view(a.value)), "va" + std::to_string(i));
    const ClientReply b = cluster.get(first, "b" + std::to_string(i));
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(to_string(as_view(b.value)), "vb" + std::to_string(i));
  }
  EXPECT_TRUE(cluster.get(second, "during").ok);
}

TEST(TcpClusterTest, ConfidentialityModeRoundTrips) {
  TcpClusterOptions options;
  options.protocol = "craq";
  options.secured = true;
  options.confidentiality = true;
  options.batch = small_batches();
  TcpCluster cluster(options);
  KvClient& client = cluster.add_client(2200);

  const ClientReply put = cluster.put(client, "secret", "ciphertext value");
  EXPECT_TRUE(put.ok);
  const ClientReply get = cluster.get(client, "secret");
  ASSERT_TRUE(get.ok);
  EXPECT_EQ(to_string(as_view(get.value)), "ciphertext value");
}

// Fatal error classification in the synchronous helpers: a crashed CLIENT
// enclave makes shield() fail locally — no re-route or retransmit can fix
// that, so retry_op must return kAuthFailed immediately instead of burning
// its whole attempt/backoff budget.
TEST(TcpClusterTest, CrashedClientEnclaveFailsFatallyWithoutRetries) {
  TcpClusterOptions options;
  options.protocol = "cr";
  options.secured = true;
  TcpCluster cluster(options);
  KvClient& client = cluster.add_client(2500);
  ASSERT_TRUE(cluster.put(client, "pre", "works").ok);

  cluster.client_transport().run_sync(
      [&] { cluster.client_enclave(0).crash(); });

  const auto started = std::chrono::steady_clock::now();
  const ClientReply reply = cluster.put(client, "post", "cannot shield");
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, ErrorCode::kAuthFailed);
  // Fatal short-circuit: well under even ONE request_timeout (500ms), let
  // alone the re-route loop's full backoff schedule.
  EXPECT_LT(elapsed, std::chrono::milliseconds(400));
}

// A replica that is crashed FOREVER must produce a bounded, classified
// failure: the op exhausts its (timeout-growing) retransmits and re-routes
// and comes back kTimeout in roughly the budgeted time — not hang, not spin.
TEST(TcpClusterTest, PermanentlyCrashedClusterFailsBounded) {
  TcpClusterOptions options;
  options.protocol = "cr";
  options.secured = true;
  options.request_timeout = 100 * sim::kMillisecond;
  options.max_retries = 2;
  options.op_retry.max_attempts = 2;
  options.op_retry.base_backoff = 10 * sim::kMillisecond;
  options.op_retry.max_backoff = 50 * sim::kMillisecond;
  TcpCluster cluster(options);
  KvClient& client = cluster.add_client(2600);
  ASSERT_TRUE(cluster.put(client, "pre", "works").ok);

  for (std::size_t i = 0; i < cluster.size(); ++i) cluster.crash(i);

  const auto started = std::chrono::steady_clock::now();
  const ClientReply reply = cluster.put(client, "dead", "never lands");
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, ErrorCode::kTimeout);
  // Budget: 2 re-routes x (2 retransmits x ~100-200ms growing timeouts +
  // backoffs) plus coordinator re-resolution — generously under 5s.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

// Sealed WAL on real files: a clean shutdown followed by rejoin() takes the
// cheap-restart path — no re-provisioning, no peer channel resets, no state
// stream — and every committed entry survives on disk. No failure detector
// (heartbeat_period = 0): the peers never even notice the absence, exactly
// the planned-maintenance restart the WAL is for.
TEST(TcpClusterTest, FileBackedWarmRestartOverTcp) {
  TcpClusterOptions options;
  options.protocol = "cr";
  options.secured = true;
  options.batch = small_batches();
  options.durable_wal = true;
  options.wal_dir = "wal_dumps/warm_tcp";
  std::filesystem::remove_all(options.wal_dir);  // hermetic across runs
  TcpCluster cluster(options);
  KvClient& client = cluster.add_client(2800);

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.put(client, "key" + std::to_string(i),
                            "v" + std::to_string(i))
                    .ok);
  }
  ASSERT_TRUE(cluster.shutdown_clean(2).is_ok());  // the CR tail

  bool warm = false;
  const Status rejoined = cluster.rejoin(2, cluster.membership()[1],
                                         30 * sim::kSecond, &warm);
  ASSERT_TRUE(rejoined.is_ok()) << rejoined.message();
  EXPECT_TRUE(warm) << "clean shutdown + intact WAL must warm-restart";

  bool active = false;
  std::size_t restored = 0;
  cluster.run_on(2, [&] {
    active = cluster.node(2).active();
    restored = cluster.node(2).kv().size();
  });
  EXPECT_TRUE(active);
  EXPECT_GE(restored, 12u);

  // The revived tail serves fresh traffic without any channel resets: its
  // restored send counters were fast-forwarded past the persisted stride.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.put(client, "post" + std::to_string(i), "pv").ok);
  }
  const ClientReply get = cluster.get(client, "key0");
  ASSERT_TRUE(get.ok && get.found);
  EXPECT_EQ(to_string(as_view(get.value)), "v0");
}

// Crash (no clean marker): the same file-backed node must refuse the warm
// path and take the full shadow rejoin.
TEST(TcpClusterTest, FileBackedCrashStillTakesColdRejoin) {
  TcpClusterOptions options;
  options.protocol = "cr";
  options.secured = true;
  options.batch = small_batches();
  options.heartbeat_period = 20 * sim::kMillisecond;
  options.suspect_timeout = 100 * sim::kMillisecond;
  options.durable_wal = true;
  options.wal_dir = "wal_dumps/cold_tcp";
  std::filesystem::remove_all(options.wal_dir);
  TcpCluster cluster(options);
  KvClient& client = cluster.add_client(2850);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.put(client, "key" + std::to_string(i), "v").ok);
  }
  cluster.crash(2);
  int succeeded = 0;
  for (int i = 0; i < 10; ++i) {
    if (cluster.put(client, "post" + std::to_string(i), "v").ok) ++succeeded;
  }
  EXPECT_GT(succeeded, 0);

  bool warm = true;
  const Status rejoined = cluster.rejoin(2, cluster.membership()[1],
                                         30 * sim::kSecond, &warm);
  ASSERT_TRUE(rejoined.is_ok()) << rejoined.message();
  EXPECT_FALSE(warm) << "a crash leaves no marker: cold rejoin required";
}

// Regression (TSan/ASan): abandoning a rejoin mid-flight (max_wait far below
// the catch-up time) and immediately destroying the cluster must not let any
// node-capturing callback — the promotion poll, or a late catch-up
// completion re-arming it — fire into freed memory.
TEST(TcpClusterTest, TeardownDuringAbandonedRejoinIsSafe) {
  TcpClusterOptions options;
  options.protocol = "raft";
  options.secured = true;
  options.batch = small_batches();
  options.heartbeat_period = 20 * sim::kMillisecond;
  options.suspect_timeout = 100 * sim::kMillisecond;
  TcpCluster cluster(options);
  KvClient& client = cluster.add_client(2900);

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.put(client, "k" + std::to_string(i), "v").ok);
  }
  cluster.crash(1);  // a follower
  for (int i = 0; i < 6; ++i) {
    cluster.put(client, "post" + std::to_string(i), "v");  // best effort
  }

  const Status rejoined = cluster.rejoin(1, cluster.membership()[0],
                                         /*max_wait=*/2 * sim::kMillisecond);
  EXPECT_FALSE(rejoined.is_ok());
  // Scope exit tears the whole cluster down RIGHT NOW: any timer the
  // abandoned rejoin left armed would fire into destroyed nodes.
}

}  // namespace
}  // namespace recipe::cluster
