// Stream framing tests: the length-prefixed frame codec that carries packets
// over TCP (net/frame.h). The decoder faces raw, attacker-reachable stream
// bytes, so the suite leans on adversarial segmentation: split reads,
// coalesced reads, truncation, oversized-length poisoning and randomized
// fuzz against a reference encode.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster_harness.h"
#include "common/endian.h"
#include "common/rng.h"
#include "net/frame.h"
#include "net/transport.h"

namespace recipe::net {
namespace {

Packet make_packet(std::uint64_t src, std::uint64_t dst, std::uint32_t type,
                   Bytes payload) {
  Packet p;
  p.src = NodeId{src};
  p.dst = NodeId{dst};
  p.type = type;
  p.payload = std::move(payload);
  return p;
}

void expect_equal(const Packet& got, const Packet& want) {
  EXPECT_EQ(got.src, want.src);
  EXPECT_EQ(got.dst, want.dst);
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.payload, want.payload);
}

TEST(FrameTest, RoundTripSingleFrame) {
  const Packet p = make_packet(7, 9, 0xE59C0001, to_bytes("hello wire"));
  const Bytes wire = encode_frame(p);
  EXPECT_EQ(wire.size(), kFrameHeaderSize + p.payload.size());

  FrameDecoder decoder;
  EXPECT_TRUE(decoder.feed(as_view(wire)));
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  expect_equal(*out, p);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  const Packet p = make_packet(1, 2, 3, Bytes{});
  FrameDecoder decoder;
  decoder.feed(as_view(encode_frame(p)));
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  expect_equal(*out, p);
}

// The sim cost model and the real wire must agree on per-packet bytes: this
// is the contract behind Packet::wire_size() (the old hard-coded "+ 64"
// header guess is gone).
TEST(FrameTest, WireSizeMatchesEncodedFrame) {
  for (const std::size_t n : {0u, 1u, 63u, 64u, 1500u, 65536u}) {
    const Packet p = make_packet(1, 2, 3, Bytes(n, 0xAB));
    EXPECT_EQ(p.wire_size(), encode_frame(p).size());
  }
}

// Split reads: the frame arrives one byte at a time; the packet must appear
// exactly when the last byte lands, never earlier.
TEST(FrameTest, ByteAtATimeDelivery) {
  const Packet p = make_packet(11, 22, 0x33, to_bytes("split-read payload"));
  const Bytes wire = encode_frame(p);

  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(BytesView(&wire[i], 1));
    EXPECT_FALSE(decoder.next().has_value()) << "early frame at byte " << i;
  }
  decoder.feed(BytesView(&wire[wire.size() - 1], 1));
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  expect_equal(*out, p);
}

// Coalesced reads: many frames in one feed() — all must come out, in order.
TEST(FrameTest, CoalescedFramesDecodeInOrder) {
  Bytes stream;
  std::vector<Packet> sent;
  for (int i = 0; i < 17; ++i) {
    Packet p = make_packet(100 + i, 200, 0x40 + i,
                           to_bytes(std::string(i * 7, 'a' + (i % 26))));
    append_frame(stream, p);
    sent.push_back(std::move(p));
  }

  FrameDecoder decoder;
  decoder.feed(as_view(stream));
  for (const Packet& want : sent) {
    auto got = decoder.next();
    ASSERT_TRUE(got.has_value());
    expect_equal(*got, want);
  }
  EXPECT_FALSE(decoder.next().has_value());
}

// Truncation: a stream that ends mid-frame yields nothing and stays healthy
// (a later reconnect starts a new decoder; this one just never completes).
TEST(FrameTest, TruncatedFrameYieldsNothing) {
  const Packet p = make_packet(1, 2, 3, Bytes(256, 0x5A));
  const Bytes wire = encode_frame(p);
  for (const std::size_t cut :
       {std::size_t{1}, std::size_t{3}, kFrameHeaderSize - 1, kFrameHeaderSize,
        kFrameHeaderSize + 1, wire.size() - 1}) {
    FrameDecoder decoder;
    decoder.feed(BytesView(wire.data(), cut));
    EXPECT_FALSE(decoder.next().has_value()) << "cut at " << cut;
    EXPECT_FALSE(decoder.corrupted());
  }
}

// An oversized length prefix poisons the stream permanently: there is no
// resynchronization inside a byte stream, so the decoder must refuse
// everything from then on (the transport tears the connection down).
TEST(FrameTest, OversizedLengthPoisonsTheStream) {
  FrameDecoder decoder(/*max_payload=*/1024);

  Bytes evil(kFrameHeaderSize, 0);
  store_le32(evil.data(), 1025);  // one past the bound
  decoder.feed(as_view(evil));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupted());

  // A perfectly valid frame after the poison must NOT come out.
  const Packet p = make_packet(1, 2, 3, to_bytes("late"));
  EXPECT_FALSE(decoder.feed(as_view(encode_frame(p))));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupted());
}

TEST(FrameTest, MaxPayloadBoundaryIsAccepted) {
  FrameDecoder decoder(/*max_payload=*/1024);
  const Packet p = make_packet(4, 5, 6, Bytes(1024, 0x11));
  decoder.feed(as_view(encode_frame(p)));
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload.size(), 1024u);
  EXPECT_FALSE(decoder.corrupted());
}

// Randomized segmentation fuzz: a long stream of random frames chopped into
// random fragments must reproduce the exact packet sequence, regardless of
// how the "kernel" segmented it. Replay with RECIPE_TEST_SEED.
TEST(FrameTest, RandomSegmentationFuzz) {
  const std::uint64_t seed = testing::resolved_seed(0xF4A3);
  SCOPED_TRACE(testing::seed_trace_message(seed));
  Rng rng(seed);

  for (int round = 0; round < 20; ++round) {
    Bytes stream;
    std::vector<Packet> sent;
    const std::size_t frames = 1 + rng.below(40);
    for (std::size_t i = 0; i < frames; ++i) {
      Bytes payload(rng.below(700), 0);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
      Packet p = make_packet(rng.next(), rng.next(),
                             static_cast<std::uint32_t>(rng.below(1u << 31)),
                             std::move(payload));
      append_frame(stream, p);
      sent.push_back(std::move(p));
    }

    FrameDecoder decoder;
    std::vector<Packet> received;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.below(97), stream.size() - offset);
      decoder.feed(BytesView(stream.data() + offset, chunk));
      offset += chunk;
      while (auto p = decoder.next()) received.push_back(std::move(*p));
    }

    ASSERT_EQ(received.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      expect_equal(received[i], sent[i]);
    }
    EXPECT_EQ(decoder.buffered(), 0u);
    EXPECT_FALSE(decoder.corrupted());
  }
}

// Garbage header fuzz: random bytes either decode into SOME frame sequence
// or poison the stream — but never crash, and never emit a frame longer
// than the bound.
TEST(FrameTest, GarbageStreamNeverOverallocates) {
  const std::uint64_t seed = testing::resolved_seed(0xBADF00D);
  SCOPED_TRACE(testing::seed_trace_message(seed));
  Rng rng(seed);

  for (int round = 0; round < 50; ++round) {
    FrameDecoder decoder(/*max_payload=*/4096);
    Bytes garbage(rng.below(2000), 0);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.below(256));
    decoder.feed(as_view(garbage));
    while (auto p = decoder.next()) {
      EXPECT_LE(p->payload.size(), 4096u);
    }
  }
}

}  // namespace
}  // namespace recipe::net
