// Deterministic random bit generator (HMAC-style, simplified HMAC_DRBG).
//
// Enclaves use a Drbg seeded from their (simulated) hardware entropy to
// generate nonces and key material. Deterministic per seed so simulations
// reproduce.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "crypto/hmac.h"

namespace recipe::crypto {

class Drbg {
 public:
  explicit Drbg(BytesView seed) {
    const Bytes salt = to_bytes("recipe-drbg-v1");
    key_ = hkdf_sha256(seed, as_view(salt), BytesView{}, kSymmetricKeySize);
    hmac_ = Hmac(as_view(key_));  // key schedule runs once, not per block
  }

  // Returns `n` pseudo-random bytes.
  Bytes generate(std::size_t n) {
    Bytes out;
    out.reserve(n);
    while (out.size() < n) {
      advance_counter();
      const Mac block = hmac_.mac(as_view(counter_bytes_));
      const std::size_t take = std::min<std::size_t>(block.size(),
                                                     n - out.size());
      out.insert(out.end(), block.begin(),
                 block.begin() + static_cast<std::ptrdiff_t>(take));
    }
    return out;
  }

  std::uint64_t generate_u64() {
    const Bytes b = generate(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)])
           << (8 * i);
    }
    return v;
  }

  SymmetricKey generate_key() {
    return SymmetricKey{generate(kSymmetricKeySize)};
  }

 private:
  void advance_counter() {
    ++counter_;
    counter_bytes_.resize(8);
    for (int i = 0; i < 8; ++i) {
      counter_bytes_[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(counter_ >> (8 * i));
    }
  }

  Bytes key_;
  Hmac hmac_;
  std::uint64_t counter_{0};
  Bytes counter_bytes_;
};

}  // namespace recipe::crypto
