// Secrets bundle provisioned to an attested enclave by the CAS.
//
// Contains everything a fresh replica needs to participate: its assigned
// node id, the cluster membership, per-channel MAC keys (one per peer,
// including client principals) and the cluster value-encryption key for
// confidentiality mode. The bundle is encrypted + MACed under the DH shared
// key so only the attested enclave can open it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"
#include "crypto/hmac.h"
#include "tee/enclave.h"

namespace recipe::attest {

// Canonical secret name for the MAC key of the channel between principals
// `a` and `b` (direction-independent).
std::string channel_secret_name(NodeId a, NodeId b);

// Name of the cluster-wide value-encryption key (confidentiality mode).
inline const char* kValueKeyName = "cluster/value-key";
// Name under which full members store the cluster root key, from which any
// pairwise channel key can be derived inside the enclave.
inline const char* kClusterRootName = "cluster/root";

struct SecretsBundle {
  NodeId assigned_id{};
  std::vector<NodeId> membership;          // replica ids
  std::vector<std::pair<NodeId, crypto::SymmetricKey>> channel_keys;
  crypto::SymmetricKey value_key;          // empty when confidentiality off
  bool confidentiality{false};
  // Full members (replicas) receive the cluster root; clients do not.
  crypto::SymmetricKey root_key;           // empty for non-members

  Bytes serialize() const;
  static Result<SecretsBundle> parse(BytesView data);
};

// Encrypts + MACs a bundle under `key`. Output layout: [nonce-ctr u64]
// [ciphertext bytes][mac 32B].
Bytes seal_bundle(const SecretsBundle& bundle, const crypto::SymmetricKey& key,
                  std::uint64_t nonce_counter);

// "Enclave code": decrypts, verifies and installs the bundle into `enclave`.
// Installs each channel key and the value key as named secrets, and returns
// the non-secret part (assigned id + membership) for the host runtime.
struct ProvisionInfo {
  NodeId assigned_id{};
  std::vector<NodeId> membership;
  bool confidentiality{false};
};
Result<ProvisionInfo> open_and_install_bundle(tee::Enclave& enclave,
                                              std::uint64_t challenger_dh_pub,
                                              BytesView sealed,
                                              BytesView context);

}  // namespace recipe::attest
