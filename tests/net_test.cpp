// Unit tests for the simulated network: delivery, latency model, crash,
// partitions, faults, and the Dolev-Yao adversary hook.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"

namespace recipe::net {
namespace {

struct Harness {
  sim::Simulator simulator;
  SimNetwork network{simulator, Rng(1)};

  std::vector<Packet> received_a;
  std::vector<Packet> received_b;

  Harness() {
    network.attach(NodeId{1}, NetStackParams::direct_io_native(),
                   [this](Packet&& p) { received_a.push_back(std::move(p)); });
    network.attach(NodeId{2}, NetStackParams::direct_io_native(),
                   [this](Packet&& p) { received_b.push_back(std::move(p)); });
  }

  void send(NodeId src, NodeId dst, std::string_view body) {
    network.send(Packet{src, dst, 7, to_bytes(body)});
  }
};

TEST(SimNetwork, DeliversPointToPoint) {
  Harness h;
  h.send(NodeId{1}, NodeId{2}, "hello");
  h.simulator.run_all();
  ASSERT_EQ(h.received_b.size(), 1u);
  EXPECT_EQ(to_string(as_view(h.received_b[0].payload)), "hello");
  EXPECT_EQ(h.received_b[0].src, NodeId{1});
  EXPECT_TRUE(h.received_a.empty());
}

TEST(SimNetwork, DeliveryTakesSimulatedTime) {
  Harness h;
  h.send(NodeId{1}, NodeId{2}, "x");
  EXPECT_TRUE(h.received_b.empty());  // not synchronous
  h.simulator.run_all();
  EXPECT_EQ(h.received_b.size(), 1u);
  EXPECT_GT(h.simulator.now(), 0u);
}

TEST(SimNetwork, KernelStackSlowerThanDirectIo) {
  sim::Simulator simulator;
  SimNetwork net(simulator, Rng(1));
  sim::Time direct_arrival = 0, kernel_arrival = 0;
  net.attach(NodeId{1}, NetStackParams::direct_io_native(), [](Packet&&) {});
  net.attach(NodeId{2}, NetStackParams::direct_io_native(),
             [&](Packet&&) { direct_arrival = simulator.now(); });
  net.send(Packet{NodeId{1}, NodeId{2}, 0, Bytes(1024)});
  simulator.run_all();

  sim::Simulator simulator2;
  SimNetwork net2(simulator2, Rng(1));
  net2.attach(NodeId{1}, NetStackParams::kernel_native(), [](Packet&&) {});
  net2.attach(NodeId{2}, NetStackParams::kernel_native(),
              [&](Packet&&) { kernel_arrival = simulator2.now(); });
  net2.send(Packet{NodeId{1}, NodeId{2}, 0, Bytes(1024)});
  simulator2.run_all();

  EXPECT_GT(kernel_arrival, direct_arrival);
}

TEST(SimNetwork, TeeStacksSlowerThanNative) {
  for (auto [native, tee] :
       {std::pair{NetStackParams::kernel_native(),
                  NetStackParams::kernel_tee()},
        std::pair{NetStackParams::direct_io_native(),
                  NetStackParams::direct_io_tee()}}) {
    EXPECT_GT(tee.send_cpu(1024), native.send_cpu(1024));
    EXPECT_GT(tee.recv_cpu(1024), native.recv_cpu(1024));
  }
}

TEST(SimNetwork, SenderCpuSerializesDepartures) {
  // Two packets from the same node must depart back-to-back, not in parallel.
  sim::Simulator simulator;
  SimNetwork net(simulator, Rng(1));
  std::vector<sim::Time> arrivals;
  net.attach(NodeId{1}, NetStackParams::direct_io_native(), [](Packet&&) {});
  net.attach(NodeId{2}, NetStackParams::direct_io_native(),
             [&](Packet&&) { arrivals.push_back(simulator.now()); });
  net.send(Packet{NodeId{1}, NodeId{2}, 0, Bytes(64)});
  net.send(Packet{NodeId{1}, NodeId{2}, 0, Bytes(64)});
  simulator.run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[1], arrivals[0]);
}

TEST(SimNetwork, CrashedNodeReceivesNothing) {
  Harness h;
  h.network.crash(NodeId{2});
  h.send(NodeId{1}, NodeId{2}, "x");
  h.simulator.run_all();
  EXPECT_TRUE(h.received_b.empty());
  EXPECT_EQ(h.network.packets_dropped(), 1u);

  h.network.recover(NodeId{2});
  h.send(NodeId{1}, NodeId{2}, "y");
  h.simulator.run_all();
  EXPECT_EQ(h.received_b.size(), 1u);
}

TEST(SimNetwork, CrashDropsInFlightFramesAcrossRecovery) {
  // A packet already in flight towards a node that crashes BEFORE delivery
  // must die with the machine: its NIC/kernel buffers are gone. Without
  // this, a crash+recover inside the propagation window hands a restarted
  // node pre-crash frames that its fresh replay window would wrongly
  // accept.
  Harness h;
  h.send(NodeId{1}, NodeId{2}, "pre-crash");
  // Crash and recover while the packet is still on the wire (delivery takes
  // a propagation delay; nothing has run yet).
  h.network.crash(NodeId{2});
  h.network.recover(NodeId{2});
  h.simulator.run_all();
  EXPECT_TRUE(h.received_b.empty()) << "pre-crash frame survived the reboot";
  EXPECT_EQ(h.network.packets_dropped(), 1u);

  // Frames sent after the recovery flow normally.
  h.send(NodeId{1}, NodeId{2}, "post-recover");
  h.simulator.run_all();
  ASSERT_EQ(h.received_b.size(), 1u);
  EXPECT_EQ(to_string(as_view(h.received_b[0].payload)), "post-recover");

  // A second incarnation bumps the epoch again: frames from the first
  // recovered epoch do not leak into the next one either.
  h.send(NodeId{1}, NodeId{2}, "stale");
  h.network.crash(NodeId{2});
  h.network.recover(NodeId{2});
  h.simulator.run_all();
  EXPECT_EQ(h.received_b.size(), 1u);
}

TEST(SimNetwork, CrashedSenderSendsNothing) {
  Harness h;
  h.network.crash(NodeId{1});
  h.send(NodeId{1}, NodeId{2}, "x");
  h.simulator.run_all();
  EXPECT_TRUE(h.received_b.empty());
}

TEST(SimNetwork, PartitionBlocksBothDirections) {
  Harness h;
  h.network.partition(NodeId{1}, NodeId{2}, true);
  h.send(NodeId{1}, NodeId{2}, "x");
  h.send(NodeId{2}, NodeId{1}, "y");
  h.simulator.run_all();
  EXPECT_TRUE(h.received_a.empty());
  EXPECT_TRUE(h.received_b.empty());

  h.network.partition(NodeId{1}, NodeId{2}, false);
  h.send(NodeId{1}, NodeId{2}, "z");
  h.simulator.run_all();
  EXPECT_EQ(h.received_b.size(), 1u);
}

TEST(SimNetwork, PartitionKeysDoNotCollideForWideNodeIds) {
  // Regression: the partition key used to pack both 64-bit ids into one
  // 64-bit word as (lo << 32) | (hi & 0xFFFFFFFF), so partition(1, 2^32+5)
  // also severed the unrelated pair (1, 5) — and any id >= 2^32 aliased.
  constexpr std::uint64_t kHigh = (1ULL << 32) + 5;
  sim::Simulator simulator;
  SimNetwork net(simulator, Rng(1));
  int low_received = 0, high_received = 0;
  net.attach(NodeId{1}, NetStackParams::direct_io_native(), [](Packet&&) {});
  net.attach(NodeId{5}, NetStackParams::direct_io_native(),
             [&](Packet&&) { ++low_received; });
  net.attach(NodeId{kHigh}, NetStackParams::direct_io_native(),
             [&](Packet&&) { ++high_received; });

  net.partition(NodeId{1}, NodeId{kHigh}, true);
  net.send(Packet{NodeId{1}, NodeId{5}, 7, to_bytes("ok")});
  net.send(Packet{NodeId{1}, NodeId{kHigh}, 7, to_bytes("blocked")});
  simulator.run_all();
  EXPECT_EQ(low_received,
            1) << "partition of (1, 2^32+5) must not block (1, 5)";
  EXPECT_EQ(high_received, 0);

  net.partition(NodeId{1}, NodeId{kHigh}, false);
  net.send(Packet{NodeId{1}, NodeId{kHigh}, 7, to_bytes("now ok")});
  simulator.run_all();
  EXPECT_EQ(high_received, 1);
}

TEST(SimNetwork, PreGstDropsHappenPostGstBounded) {
  sim::Simulator simulator;
  SimNetwork net(simulator, Rng(3));
  int delivered = 0;
  net.attach(NodeId{1}, NetStackParams::direct_io_native(), [](Packet&&) {});
  net.attach(NodeId{2}, NetStackParams::direct_io_native(),
             [&](Packet&&) { ++delivered; });

  NetworkFaults faults;
  faults.drop_rate = 1.0;  // drop everything before GST
  faults.gst = 1 * sim::kMillisecond;
  net.set_faults(faults);

  for (int i = 0; i < 10; ++i) net.send(Packet{NodeId{1}, NodeId{2}, 0,
                                               Bytes(8)});
  simulator.run_all();
  EXPECT_EQ(delivered, 0);

  simulator.run_until(2 * sim::kMillisecond);
  for (int i = 0; i < 10; ++i) net.send(Packet{NodeId{1}, NodeId{2}, 0,
                                               Bytes(8)});
  simulator.run_all();
  EXPECT_EQ(delivered, 10);  // reliable after GST
}

TEST(SimNetwork, DuplicationPreGst) {
  sim::Simulator simulator;
  SimNetwork net(simulator, Rng(3));
  int delivered = 0;
  net.attach(NodeId{1}, NetStackParams::direct_io_native(), [](Packet&&) {});
  net.attach(NodeId{2}, NetStackParams::direct_io_native(),
             [&](Packet&&) { ++delivered; });
  NetworkFaults faults;
  faults.duplicate_rate = 1.0;
  faults.gst = sim::kSecond;
  net.set_faults(faults);
  net.send(Packet{NodeId{1}, NodeId{2}, 0, Bytes(8)});
  simulator.run_all();
  EXPECT_EQ(delivered, 2);
}

TEST(SimNetwork, AdversaryCanDrop) {
  Harness h;
  h.network.set_adversary([](const Packet&) {
    AdversaryAction a;
    a.kind = AdversaryAction::Kind::kDrop;
    return a;
  });
  h.send(NodeId{1}, NodeId{2}, "x");
  h.simulator.run_all();
  EXPECT_TRUE(h.received_b.empty());
}

TEST(SimNetwork, AdversaryCanTamper) {
  Harness h;
  h.network.set_adversary([](const Packet& p) {
    AdversaryAction a;
    if (to_string(as_view(p.payload)) == "transfer $10") {
      a.kind = AdversaryAction::Kind::kTamper;
      a.payload = to_bytes("transfer $9999");
    }
    return a;
  });
  h.send(NodeId{1}, NodeId{2}, "transfer $10");
  h.simulator.run_all();
  ASSERT_EQ(h.received_b.size(), 1u);
  EXPECT_EQ(to_string(as_view(h.received_b[0].payload)), "transfer $9999");
}

TEST(SimNetwork, AdversaryCanReplayAndInject) {
  Harness h;
  h.network.set_adversary([](const Packet& p) {
    AdversaryAction a;
    a.injected.push_back(p);  // replay a copy
    return a;
  });
  h.send(NodeId{1}, NodeId{2}, "x");
  h.simulator.run_all();
  EXPECT_EQ(h.received_b.size(), 2u);  // original + replay
}

TEST(SimNetwork, StatsCount) {
  Harness h;
  h.send(NodeId{1}, NodeId{2}, "x");
  h.send(NodeId{1}, NodeId{2}, "y");
  h.simulator.run_all();
  EXPECT_EQ(h.network.packets_sent(), 2u);
  EXPECT_EQ(h.network.packets_delivered(), 2u);
  EXPECT_GT(h.network.bytes_sent(), 0u);
}

TEST(SimNetwork, UnknownDestinationDropped) {
  Harness h;
  h.send(NodeId{1}, NodeId{99}, "x");
  h.simulator.run_all();
  EXPECT_EQ(h.network.packets_dropped(), 1u);
}

TEST(NodeCpu, ReserveSerializes) {
  NodeCpu cpu;
  EXPECT_EQ(cpu.reserve(100, 50), 150u);
  EXPECT_EQ(cpu.reserve(100, 50), 200u);  // queued behind the first
  EXPECT_EQ(cpu.reserve(500, 50), 550u);  // idle gap
}

}  // namespace
}  // namespace recipe::net
