#include "recipe/security.h"

#include "crypto/chacha20.h"
#include "crypto/hmac.h"

namespace recipe {

// --- NullSecurity ------------------------------------------------------------

Result<Bytes> NullSecurity::shield(NodeId peer, ViewId view, BytesView payload) {
  ShieldedMessage msg;
  msg.header.view = view;
  msg.header.cq = directed_channel(self_, peer);
  msg.header.cnt = 0;
  msg.header.sender = self_;
  msg.header.receiver = peer;
  msg.payload.assign(payload.begin(), payload.end());
  return msg.serialize();
}

Result<VerifiedEnvelope> NullSecurity::verify(NodeId claimed_sender,
                                              BytesView wire,
                                              std::optional<ViewId> require_view) {
  auto msg = ShieldedMessage::parse(wire);
  if (!msg) return msg.status();
  if (require_view && msg.value().header.view != *require_view) {
    return Status::error(ErrorCode::kWrongView, "view mismatch");
  }
  VerifiedEnvelope env;
  env.sender = claimed_sender;  // trusted blindly: this is the CFT baseline
  env.view = msg.value().header.view;
  env.cnt = msg.value().header.cnt;
  env.payload = std::move(msg.value().payload);
  return env;
}

// --- RecipeSecurity ------------------------------------------------------------

RecipeSecurity::RecipeSecurity(tee::Enclave& enclave, NodeId self,
                               const tee::TeeCostModel* cost_model,
                               net::NodeCpu* cpu, RecipeSecurityConfig config)
    : enclave_(enclave),
      self_(self),
      cost_model_(cost_model),
      cpu_(cpu),
      config_(std::move(config)) {}

Result<Bytes> RecipeSecurity::shield(NodeId peer, ViewId view, BytesView payload) {
  const ChannelId cq = directed_channel(self_, peer);

  // Trusted counter increment happens INSIDE the enclave: a crashed enclave
  // cannot shield, and counters never repeat (non-equivocation).
  auto cnt = enclave_.increment_counter(cq);
  if (!cnt) return cnt.status();
  auto key = channel_key(peer);
  if (!key) return key.status();

  ShieldedMessage msg;
  msg.header.view = view;
  msg.header.cq = cq;
  msg.header.cnt = cnt.value();
  msg.header.sender = self_;
  msg.header.receiver = peer;
  msg.payload.assign(payload.begin(), payload.end());

  if (config_.confidentiality) {
    msg.header.flags |= ShieldedHeader::kFlagEncrypted;
    const auto nonce = crypto::make_nonce(
        static_cast<std::uint32_t>(cq.value), cnt.value());
    crypto::chacha20_xor(key.value().view(), nonce, 0, msg.payload);
    if (cost_model_ != nullptr) charge(cost_model_->encrypt(msg.payload.size()));
  }

  const crypto::Mac mac =
      crypto::hmac_sha256(key.value().view(), as_view(msg.authenticated_data()));
  msg.mac.assign(mac.begin(), mac.end());

  if (cost_model_ != nullptr) {
    charge(cost_model_->exitless_call() + cost_model_->mac(msg.payload.size()) +
           cost_model_->enclave_copy(msg.payload.size(), working_set()));
  }
  return msg.serialize();
}

Result<VerifiedEnvelope> RecipeSecurity::verify(
    NodeId claimed_sender, BytesView wire, std::optional<ViewId> require_view) {
  auto parsed = ShieldedMessage::parse(wire);
  if (!parsed) {
    ++rejected_auth_;
    return parsed.status();
  }
  ShieldedMessage msg = std::move(parsed).take();

  // The header's sender/receiver are authenticated by the MAC; the network's
  // claimed source is advisory only. A mismatch is an impersonation attempt.
  if (msg.header.receiver != self_ || msg.header.sender != claimed_sender) {
    ++rejected_auth_;
    return Status::error(ErrorCode::kAuthFailed, "sender/receiver mismatch");
  }
  if (msg.header.cq != directed_channel(msg.header.sender, self_)) {
    ++rejected_auth_;
    return Status::error(ErrorCode::kAuthFailed, "channel id mismatch");
  }

  auto key = channel_key(msg.header.sender);
  if (!key) {
    ++rejected_auth_;
    return Status::error(ErrorCode::kNotAttested, "no channel key for sender");
  }

  if (cost_model_ != nullptr) {
    charge(cost_model_->exitless_call() + cost_model_->mac(msg.payload.size()) +
           cost_model_->enclave_copy(msg.payload.size(), working_set()));
  }

  const Bytes ad = msg.authenticated_data();
  if (!crypto::hmac_verify(key.value().view(), as_view(ad), as_view(msg.mac))) {
    ++rejected_auth_;
    return Status::error(ErrorCode::kAuthFailed, "MAC verification failed");
  }

  if (require_view && msg.header.view != *require_view) {
    ++rejected_view_;
    return Status::error(ErrorCode::kWrongView, "view mismatch");
  }

  if (msg.header.encrypted()) {
    const auto nonce = crypto::make_nonce(
        static_cast<std::uint32_t>(msg.header.cq.value), msg.header.cnt);
    crypto::chacha20_xor(key.value().view(), nonce, 0, msg.payload);
    if (cost_model_ != nullptr) charge(cost_model_->encrypt(msg.payload.size()));
  }

  VerifiedEnvelope env;
  env.sender = msg.header.sender;
  env.view = msg.header.view;
  env.cnt = msg.header.cnt;
  env.payload = std::move(msg.payload);

  ChannelState& ch = channels_[msg.header.cq];
  const Counter cnt = msg.header.cnt;

  if (config_.order == OrderPolicy::kStrict) {
    // Algorithm 1: cnt <= rcnt -> replay; cnt == rcnt+1 -> accept;
    // cnt > rcnt+1 -> buffer as future.
    if (cnt <= ch.rcnt) {
      ++rejected_replay_;
      return Status::error(ErrorCode::kReplay, "stale counter");
    }
    if (cnt == ch.rcnt + 1) {
      ch.rcnt = cnt;
      // Promote any directly-following buffered futures.
      auto it = ch.future.begin();
      while (it != ch.future.end() && it->first == ch.rcnt + 1) {
        ch.rcnt = it->first;
        ready_.push_back(std::move(it->second));
        it = ch.future.erase(it);
      }
      return env;
    }
    if (ch.future.size() >= config_.max_future_buffer) {
      return Status::error(ErrorCode::kOutOfOrder, "future buffer full");
    }
    ++buffered_future_;
    ch.future.emplace(cnt, std::move(env));
    return Status::error(ErrorCode::kOutOfOrder, "future message buffered");
  }

  // Window mode: every counter accepted at most once; too-old rejected.
  if (cnt + config_.replay_window <= ch.max_seen) {
    ++rejected_replay_;
    return Status::error(ErrorCode::kReplay, "counter below replay window");
  }
  if (ch.seen.contains(cnt)) {
    ++rejected_replay_;
    return Status::error(ErrorCode::kReplay, "duplicate counter");
  }
  ch.seen.emplace(cnt, true);
  if (cnt > ch.max_seen) ch.max_seen = cnt;
  // Garbage-collect entries that fell out of the window.
  while (!ch.seen.empty() &&
         ch.seen.begin()->first + config_.replay_window <= ch.max_seen) {
    ch.seen.erase(ch.seen.begin());
  }
  return env;
}

std::vector<VerifiedEnvelope> RecipeSecurity::drain_ready() {
  return std::exchange(ready_, {});
}

void RecipeSecurity::reset_peer(NodeId peer) {
  channels_.erase(directed_channel(peer, self_));
}

}  // namespace recipe
