#include "recipe/client.h"

#include <cassert>

namespace recipe {

KvClient::KvClient(sim::Simulator& simulator, net::SimNetwork& network,
                   ClientOptions options)
    : simulator_(simulator),
      options_(std::move(options)),
      rpc_(simulator, network, NodeId{options_.id.value}, options_.stack) {
  if (options_.secured) {
    assert(options_.enclave != nullptr && "secured client requires an enclave");
    RecipeSecurityConfig config;
    config.confidentiality = options_.confidentiality;
    security_ = std::make_unique<RecipeSecurity>(
        *options_.enclave, node_id(), /*cost_model=*/nullptr, /*cpu=*/nullptr,
        config);
  } else {
    security_ = std::make_unique<NullSecurity>(node_id());
  }
}

void KvClient::put(NodeId coordinator, std::string key, Bytes value,
                   ReplyCallback done) {
  ClientRequest request;
  request.client = options_.id;
  request.rid = RequestId{next_rid_++};
  request.op = OpType::kPut;
  request.key = std::move(key);
  request.value = std::move(value);
  ++issued_;
  issue(coordinator, std::move(request), std::move(done), 0);
}

void KvClient::get(NodeId coordinator, std::string key, ReplyCallback done) {
  ClientRequest request;
  request.client = options_.id;
  request.rid = RequestId{next_rid_++};
  request.op = OpType::kGet;
  request.key = std::move(key);
  ++issued_;
  issue(coordinator, std::move(request), std::move(done), 0);
}

void KvClient::issue(NodeId coordinator, ClientRequest request,
                     ReplyCallback done, int attempt) {
  auto wire = security_->shield(coordinator, ViewId{0},
                                as_view(request.serialize()));
  if (!wire) {
    ++failed_;
    if (done) done(ClientReply{});
    return;
  }

  const sim::Time started = simulator_.now();
  rpc_.send(
      coordinator, msg::kClientRequest, std::move(wire).take(),
      [this, started, done](NodeId src, Bytes response) {
        auto env = security_->verify(src, as_view(response));
        if (!env) return;  // forged reply: ignore (timeout will retry)
        auto reply = ClientReply::parse(as_view(env.value().payload));
        if (!reply) return;
        latency_us_.record((simulator_.now() - started) / sim::kMicrosecond);
        if (reply.value().ok) {
          ++completed_;
        } else {
          ++failed_;
        }
        if (done) done(reply.value());
      },
      options_.request_timeout,
      [this, coordinator, request, done, attempt]() mutable {
        if (attempt + 1 >= options_.max_retries) {
          ++failed_;
          if (done) done(ClientReply{});
          return;
        }
        // Retransmit with the SAME request id: the coordinator's client
        // table deduplicates and may answer from cache.
        issue(coordinator, std::move(request), std::move(done), attempt + 1);
      });
}

}  // namespace recipe
