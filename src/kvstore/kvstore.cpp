#include "kvstore/kvstore.h"

#include <array>
#include <cassert>

namespace recipe::kv {

namespace {
// Enclave-resident cost per entry: digest + timestamp + version + pointer +
// skiplist forward pointers (amortized).
constexpr std::uint64_t kMetadataBytes = 32 + 16 + 8 + 8 + 24;
}  // namespace

struct KvStore::Node {
  std::string key;
  crypto::Sha256Digest digest{};  // over (key || plaintext value || ts)
  Timestamp ts{};
  std::uint64_t version{0};
  HostPtr value_ptr{};
  std::uint32_t value_size{0};
  std::array<Node*, kMaxLevel> next{};

  Node(std::string k, int) : key(std::move(k)) { next.fill(nullptr); }
};

KvStore::KvStore(KvConfig config)
    : config_(std::move(config)),
      rng_(config_.skiplist_seed),
      head_(new Node("", kMaxLevel)) {}

KvStore::~KvStore() {
  Node* node = head_;
  while (node != nullptr) {
    Node* next = node->next[0];
    delete node;
    node = next;
  }
}

int KvStore::random_level() {
  int level = 1;
  while (level < kMaxLevel && rng_.chance(0.25)) ++level;
  return level;
}

KvStore::Node* KvStore::find(std::string_view key) const {
  const Node* node = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (node->next[static_cast<std::size_t>(i)] != nullptr &&
           node->next[static_cast<std::size_t>(i)]->key < key) {
      node = node->next[static_cast<std::size_t>(i)];
    }
  }
  Node* candidate = node->next[0];
  if (candidate != nullptr && candidate->key == key) return candidate;
  return nullptr;
}

namespace {
crypto::Sha256Digest entry_digest(std::string_view key, BytesView value,
                                  Timestamp ts) {
  crypto::Sha256 h;
  h.update(as_view(key));
  h.update(value);
  std::uint8_t ts_bytes[16];
  for (int i = 0; i < 8; ++i) {
    ts_bytes[i] = static_cast<std::uint8_t>(ts.counter >> (8 * i));
    ts_bytes[8 + i] = static_cast<std::uint8_t>(ts.node >> (8 * i));
  }
  h.update(BytesView(ts_bytes, 16));
  return h.finalize();
}
}  // namespace

Bytes KvStore::seal(BytesView plaintext, std::uint64_t version) const {
  Bytes data(plaintext.begin(), plaintext.end());
  if (confidential()) {
    const auto nonce = crypto::make_nonce(0x4B56u /*"KV"*/, version);
    crypto::chacha20_xor(config_.value_encryption_key.view(), nonce, 0, data);
  }
  return data;
}

Bytes KvStore::unseal(BytesView ciphertext, std::uint64_t version) const {
  return seal(ciphertext, version);  // XOR stream cipher is its own inverse
}

bool KvStore::write(std::string_view key, BytesView value, Timestamp ts) {
  // Locate predecessors at every level.
  std::array<Node*, kMaxLevel> update;
  Node* node = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (node->next[static_cast<std::size_t>(i)] != nullptr &&
           node->next[static_cast<std::size_t>(i)]->key < key) {
      node = node->next[static_cast<std::size_t>(i)];
    }
    update[static_cast<std::size_t>(i)] = node;
  }
  Node* existing = node->next[0];

  if (existing != nullptr && existing->key == key) {
    // Per-key freshness: reject stale timestamped writes (ABD last-writer-
    // wins). Untimestamped writes (ts == {}) always apply.
    if (!ts.is_zero() && ts < existing->ts) return false;
    const std::uint64_t version = next_version_++;
    existing->digest = entry_digest(key, value, ts);
    existing->ts = ts;
    existing->version = version;
    existing->value_size = static_cast<std::uint32_t>(value.size());
    const Status st = arena_.replace(existing->value_ptr, seal(value, version));
    assert(st.is_ok());
    (void)st;
    return true;
  }

  const int new_level = random_level();
  if (new_level > level_) {
    for (int i = level_; i < new_level; ++i) {
      update[static_cast<std::size_t>(i)] = head_;
    }
    level_ = new_level;
  }

  const std::uint64_t version = next_version_++;
  Node* created = new Node(std::string(key), new_level);
  created->digest = entry_digest(key, value, ts);
  created->ts = ts;
  created->version = version;
  created->value_size = static_cast<std::uint32_t>(value.size());
  created->value_ptr = arena_.store(seal(value, version));

  for (int i = 0; i < new_level; ++i) {
    created->next[static_cast<std::size_t>(i)] =
        update[static_cast<std::size_t>(i)]->next[static_cast<std::size_t>(i)];
    update[static_cast<std::size_t>(i)]->next[static_cast<std::size_t>(i)] =
        created;
  }
  ++size_;
  enclave_bytes_ += key.size() + kMetadataBytes;
  return true;
}

Result<VersionedValue> KvStore::get(std::string_view key) const {
  const Node* node = find(key);
  if (node == nullptr) {
    return Status::error(ErrorCode::kNotFound, std::string(key));
  }
  auto sealed = arena_.load(node->value_ptr);
  if (!sealed) {
    return Status::error(ErrorCode::kIntegrityViolation,
                         "host freed value under enclave pointer");
  }
  Bytes plaintext = unseal(as_view(sealed.value()), node->version);
  const auto digest = entry_digest(key, as_view(plaintext), node->ts);
  if (!crypto::constant_time_equal(BytesView(digest.data(), digest.size()),
                                   BytesView(node->digest.data(),
                                             node->digest.size()))) {
    return Status::error(ErrorCode::kIntegrityViolation,
                         "host value does not match enclave digest");
  }
  return VersionedValue{std::move(plaintext), node->ts, node->version};
}

std::optional<Timestamp> KvStore::timestamp(std::string_view key) const {
  const Node* node = find(key);
  if (node == nullptr) return std::nullopt;
  return node->ts;
}

std::optional<HostPtr> KvStore::host_ptr(std::string_view key) const {
  const Node* node = find(key);
  if (node == nullptr) return std::nullopt;
  return node->value_ptr;
}

bool KvStore::contains(std::string_view key) const {
  return find(key) != nullptr;
}

bool KvStore::erase(std::string_view key) {
  std::array<Node*, kMaxLevel> update;
  Node* node = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (node->next[static_cast<std::size_t>(i)] != nullptr &&
           node->next[static_cast<std::size_t>(i)]->key < key) {
      node = node->next[static_cast<std::size_t>(i)];
    }
    update[static_cast<std::size_t>(i)] = node;
  }
  Node* target = node->next[0];
  if (target == nullptr || target->key != key) return false;

  for (int i = 0; i < level_; ++i) {
    if (update[static_cast<std::size_t>(i)]
            ->next[static_cast<std::size_t>(i)] == target) {
      update[static_cast<std::size_t>(i)]->next[static_cast<std::size_t>(i)] =
          target->next[static_cast<std::size_t>(i)];
    }
  }
  arena_.free(target->value_ptr);
  enclave_bytes_ -= target->key.size() + kMetadataBytes;
  --size_;
  delete target;
  while (level_ > 1 &&
         head_->next[static_cast<std::size_t>(level_ - 1)] == nullptr) {
    --level_;
  }
  return true;
}

void KvStore::clear() {
  Node* node = head_->next[0];
  while (node != nullptr) {
    Node* next = node->next[0];
    arena_.free(node->value_ptr);
    delete node;
    node = next;
  }
  head_->next.fill(nullptr);
  level_ = 1;
  size_ = 0;
  enclave_bytes_ = 0;
}

void KvStore::scan(
    const std::function<bool(std::string_view, const Timestamp&)>& fn) const {
  for (const Node* node = head_->next[0]; node != nullptr;
       node = node->next[0]) {
    if (!fn(node->key, node->ts)) return;
  }
}

void KvStore::scan_from(
    std::string_view cursor,
    const std::function<bool(std::string_view, const Timestamp&)>& fn) const {
  // Descend to the last node with key <= cursor, then walk level 0 from its
  // successor (strictly-after semantics resume a chunked scan exactly).
  const Node* node = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (node->next[static_cast<std::size_t>(i)] != nullptr &&
           node->next[static_cast<std::size_t>(i)]->key <= cursor) {
      node = node->next[static_cast<std::size_t>(i)];
    }
  }
  for (node = node->next[0]; node != nullptr; node = node->next[0]) {
    if (!fn(node->key, node->ts)) return;
  }
}

}  // namespace recipe::kv
