#include "cluster/tcp_cluster.h"

#include <cassert>
#include <chrono>
#include <future>
#include <thread>

#include "cluster/registry.h"
#include "obs/flight_recorder.h"
#include "recipe/recovery.h"

namespace recipe::cluster {

namespace {
constexpr const char* kLoopback = "127.0.0.1";

std::chrono::nanoseconds chrono_ns(sim::Time t) {
  return std::chrono::nanoseconds(t);
}
}  // namespace

TcpCluster::TcpCluster(TcpClusterOptions options)
    : options_(std::move(options)) {
  const auto* factory = ProtocolRegistry::instance().find(options_.protocol);
  assert(factory != nullptr && "unknown protocol");

  for (std::size_t i = 0; i < options_.replicas; ++i) {
    membership_.push_back(NodeId{options_.first_id + i});
  }

  // Registries first: every component below registers series into them (or
  // gets no-op handles from a disabled registry when options_.metrics is
  // off), so they must outlive everything else.
  for (std::size_t i = 0; i < options_.replicas; ++i) {
    metrics_.push_back(
        std::make_unique<obs::MetricsRegistry>(options_.metrics));
  }
  client_metrics_ = std::make_unique<obs::MetricsRegistry>(options_.metrics);

  // One transport (shard set + listeners) per replica, plus the client's.
  // Each replica endpoint is pinned to shard 0 of its own transport — its
  // protocol code stays on one loop; extra shards carry accepted client
  // connections (SO_REUSEPORT) and the socket work for them.
  transport::ShardedTcpTransportOptions transport_options;
  transport_options.shards = options_.transport_shards;
  transport_options.transport = options_.transport;
  std::vector<std::uint16_t> ports(options_.replicas, 0);
  for (std::size_t i = 0; i < options_.replicas; ++i) {
    transport_options.transport.metrics = metrics_[i].get();
    transports_.push_back(
        std::make_unique<transport::ShardedTcpTransport>(transport_options));
    const Status pinned = transports_.back()->pin_home(membership_[i], 0);
    assert(pinned.is_ok());
    (void)pinned;
    const std::uint16_t want =
        options_.base_port == 0
            ? 0
            : static_cast<std::uint16_t>(options_.base_port + i);
    auto port = transports_.back()->listen(membership_[i], want);
    assert(port.is_ok() && "listen failed");
    ports[i] = port.value();
  }
  transport_options.transport.metrics = client_metrics_.get();
  client_transport_ =
      std::make_unique<transport::ShardedTcpTransport>(transport_options);
  for (std::size_t i = 0; i < options_.replicas; ++i) {
    for (std::size_t j = 0; j < options_.replicas; ++j) {
      if (i == j) continue;
      const Status routed =
          transports_[i]->add_route(membership_[j], kLoopback, ports[j]);
      assert(routed.is_ok());
      (void)routed;
    }
    const Status routed =
        client_transport_->add_route(membership_[i], kLoopback, ports[i]);
    assert(routed.is_ok());
    (void)routed;
  }

  // Chaos: wrap every transport before any node or client attaches, so the
  // whole lifetime of the group runs through the injectors. Each wrapper
  // gets a distinct seed offset (independent fault streams per loop) and a
  // reset hook that RSTs its own transport's links to the chosen victim.
  if (options_.chaos) {
    chaos_.resize(options_.replicas);
    for (std::size_t i = 0; i < options_.replicas; ++i) {
      transport::ChaosOptions chaos_options = options_.chaos_options;
      chaos_options.seed += i;
      chaos_options.metrics = metrics_[i].get();
      if (!chaos_options.reset_hook) {
        chaos_options.reset_hook = [t = transports_[i].get()](NodeId peer) {
          t->reset_peer_connections(peer);
        };
      }
      chaos_[i] = std::make_unique<transport::ChaosTransport>(
          *transports_[i], std::move(chaos_options));
    }
    transport::ChaosOptions chaos_options = options_.chaos_options;
    chaos_options.seed += options_.replicas;
    chaos_options.metrics = client_metrics_.get();
    if (!chaos_options.reset_hook) {
      chaos_options.reset_hook = [t = client_transport_.get()](NodeId peer) {
        t->reset_peer_connections(peer);
      };
    }
    client_chaos_ = std::make_unique<transport::ChaosTransport>(
        *client_transport_, std::move(chaos_options));
  }

  // Build and start every replica ON ITS OWN LOOP THREAD so its endpoint
  // state is loop-affine from the first instruction (packets can arrive the
  // moment the rpc object attaches).
  for (std::size_t i = 0; i < options_.replicas; ++i) {
    platforms_.push_back(std::make_unique<tee::TeePlatform>(1));
    enclaves_.push_back(nullptr);
    nodes_.push_back(nullptr);
    if (options_.durable_wal && options_.secured) {
      // One directory per replica, keyed by the (unique per instance)
      // listen port so concurrent clusters in one process never share logs.
      wal_storage_.push_back(std::make_unique<kv::FileWalStorage>(
          options_.wal_dir + "/p" + std::to_string(ports[i])));
    } else {
      wal_storage_.push_back(nullptr);
    }
    transports_[i]->run_sync([this, i, factory] {
      auto enclave = std::make_unique<tee::Enclave>(
          *platforms_[i], "recipe-replica", membership_[i].value);
      if (options_.secured) {
        auto ok = enclave->install_secret(attest::kClusterRootName,
                                          options_.root);
        assert(ok.is_ok());
        if (options_.confidentiality) {
          ok = enclave->install_secret(attest::kValueKeyName,
                                       options_.value_key);
          assert(ok.is_ok());
        }
      }

      ReplicaOptions replica_options;
      replica_options.self = membership_[i];
      replica_options.membership = membership_;
      replica_options.secured = options_.secured;
      replica_options.confidentiality = options_.confidentiality;
      replica_options.enclave = enclave.get();
      replica_options.heartbeat_period = options_.heartbeat_period;
      replica_options.suspect_timeout = options_.suspect_timeout;
      replica_options.phi_threshold = options_.phi_threshold;
      replica_options.batch = options_.batch;
      if (options_.confidentiality) {
        replica_options.kv_config.value_encryption_key = options_.value_key;
      }
      if (wal_storage_[i] != nullptr) {
        replica_options.wal_storage = wal_storage_[i].get();
        replica_options.wal = options_.wal;
      }
      replica_options.metrics = metrics_[i].get();

      enclaves_[i] = std::move(enclave);
      nodes_[i] = (*factory)(transports_[i]->clock(), node_transport(i),
                             std::move(replica_options));
      nodes_[i]->start();
    });
  }

  // Admin endpoints last: they scrape the registries from their own serve
  // threads, so everything they read must already be registered.
  if (options_.admin_port >= 0) {
    for (std::size_t i = 0; i < options_.replicas; ++i) {
      obs::AdminServer::Options admin_options;
      admin_options.port =
          options_.admin_port == 0 ? 0 : options_.admin_port +
                                             static_cast<int>(i);
      admin_options.metrics = metrics_[i].get();
      admin_options.recorder = &obs::FlightRecorder::global();
      admin_options.name =
          "replica-" + std::to_string(membership_[i].value);
      admin_.push_back(std::make_unique<obs::AdminServer>(admin_options));
    }
  }
}

net::Transport& TcpCluster::node_transport(std::size_t i) {
  if (i < chaos_.size() && chaos_[i]) return *chaos_[i];
  return *transports_[i];
}

net::Transport& TcpCluster::client_net() {
  if (client_chaos_) return *client_chaos_;
  return *client_transport_;
}

TcpCluster::~TcpCluster() {
  // Each client dies on its own home loop (clients may be homed on
  // different shards of the client transport).
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    client_home(c).run_sync([this, c] {
      clients_[c].reset();
      client_enclaves_[c].reset();
    });
  }
  clients_.clear();
  client_enclaves_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    transports_[i]->run_sync([this, i] {
      nodes_[i].reset();
      enclaves_[i].reset();
    });
  }
  // Transports (and their loop threads) die with the vector.
}

KvClient& TcpCluster::add_client(std::uint64_t client_id) {
  KvClient* out = nullptr;
  // Round-robin homing across the client transport's shards: the client is
  // CONSTRUCTED on its home loop (its timers live on that shard's clock),
  // and every later touch marshals through client_home().
  const std::size_t home =
      clients_.size() % client_transport_->shard_count();
  const Status pinned = client_transport_->pin_home(NodeId{client_id}, home);
  assert(pinned.is_ok());
  (void)pinned;
  client_homes_.push_back(home);
  client_transport_->shard(home).run_sync([this, client_id, home, &out] {
    auto enclave = std::make_unique<tee::Enclave>(client_platform_,
                                                  "recipe-client", client_id);
    if (options_.secured) {
      auto ok = enclave->install_secret(attest::kClusterRootName,
                                        options_.root);
      assert(ok.is_ok());
      if (options_.confidentiality) {
        ok = enclave->install_secret(attest::kValueKeyName,
                                     options_.value_key);
        assert(ok.is_ok());
      }
    }
    ClientOptions client_options;
    client_options.id = ClientId{client_id};
    client_options.secured = options_.secured;
    client_options.confidentiality = options_.confidentiality;
    client_options.enclave = enclave.get();
    client_options.request_timeout = options_.request_timeout;
    client_options.max_retries = options_.max_retries;
    client_options.retry = options_.client_retry;
    client_options.metrics = client_metrics_.get();
    client_enclaves_.push_back(std::move(enclave));
    clients_.push_back(std::make_unique<KvClient>(
        client_transport_->shard(home).clock(), client_net(),
        client_options));
    out = clients_.back().get();
  });
  return *out;
}

transport::TcpTransport& TcpCluster::home_loop(const KvClient& client) {
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    if (clients_[c].get() == &client) return client_home(c);
  }
  return client_transport_->shard(0);
}

NodeId TcpCluster::write_coordinator() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    bool ok = false;
    transports_[i]->run_sync([this, i, &ok] {
      ok = nodes_[i] && nodes_[i]->active() && nodes_[i]->coordinates_writes();
    });
    if (ok) return membership_[i];
  }
  return membership_.front();
}

NodeId TcpCluster::read_replica() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    bool ok = false;
    transports_[i]->run_sync([this, i, &ok] {
      ok = nodes_[i] && nodes_[i]->active() && nodes_[i]->coordinates_reads();
    });
    if (ok) return membership_[i];
  }
  return membership_.front();
}

ClientReply TcpCluster::put(KvClient& client, const std::string& key,
                            const std::string& value) {
  return retry_op(client, /*is_put=*/true, key, value);
}

ClientReply TcpCluster::get(KvClient& client, const std::string& key) {
  return retry_op(client, /*is_put=*/false, key, std::string{});
}

ClientReply TcpCluster::retry_op(KvClient& client, bool is_put,
                                 const std::string& key,
                                 const std::string& value) {
  // Re-resolve the target and retry across transient windows (an election
  // in progress, a not-yet-suspected dead chain node): the client already
  // retransmits within one attempt; this loop re-routes. A fatal reply
  // classification — crashed local enclave, integrity violation — returns
  // immediately: no re-route can fix those, and burning the backoff budget
  // on them just hides the real error.
  const rpc::RetryPolicy& policy = options_.op_retry;
  const auto op_started = std::chrono::steady_clock::now();
  ClientReply reply;
  sim::Time backoff = 0;
  for (int attempt = 0;; ++attempt) {
    const NodeId target = is_put ? write_coordinator() : read_replica();
    auto promise = std::make_shared<std::promise<ClientReply>>();
    auto future = promise->get_future();
    home_loop(client).run_sync([&] {
      auto completion = [promise](const ClientReply& r) {
        promise->set_value(r);
      };
      if (is_put) {
        client.put(target, key, to_bytes(value), std::move(completion));
      } else {
        client.get(target, key, std::move(completion));
      }
    });
    const auto bound =
        chrono_ns(options_.request_timeout) * (options_.max_retries + 1) +
        std::chrono::seconds(2);
    if (future.wait_for(bound) != std::future_status::ready) {
      // Lost completion (a bug, not load): label it so callers don't see a
      // default reply whose error claims kOk.
      reply = ClientReply{};
      reply.error = ErrorCode::kTimeout;
      return reply;
    }
    reply = future.get();
    if (reply.ok || rpc::RetryPolicy::fatal(reply.error)) return reply;
    if (attempt + 1 >= policy.max_attempts) return reply;
    backoff = policy.next_backoff(backoff, op_rng_);
    if (policy.deadline > 0 &&
        (std::chrono::steady_clock::now() - op_started) + chrono_ns(backoff) >
            chrono_ns(policy.deadline)) {
      return reply;
    }
    std::this_thread::sleep_for(chrono_ns(backoff));
  }
}

void TcpCluster::crash(std::size_t i) {
  transports_[i]->run_sync([this, i] {
    if (nodes_[i]->running()) nodes_[i]->stop();
  });
}

Status TcpCluster::rejoin(std::size_t i, NodeId donor, sim::Time max_wait,
                          bool* warm_out) {
  ReplicaNode& node = *nodes_[i];
  if (warm_out != nullptr) *warm_out = false;
  bool running = false;
  transports_[i]->run_sync([&] { running = node.running(); });
  if (running) {
    return Status::error(ErrorCode::kAlreadyExists, "replica is running");
  }

  // 1. Machine reboot: fresh enclave (same identity), empty host process.
  //    Cheap-restart fast path first (durable_wal + clean shutdown): the
  //    node restores secrets/counters from the sealed marker and replays
  //    its own log — no re-provisioning, no peer channel resets, no stream.
  bool warm = false;
  transports_[i]->run_sync([&] {
    enclaves_[i]->restart();
    node.wipe_state();
    if (node.has_wal()) {
      if (node.warm_restart().is_ok()) {
        warm = true;
      } else {
        node.wipe_state();  // partial replay must not leak into the cold path
      }
    }
  });
  if (warm) {
    if (warm_out != nullptr) *warm_out = true;
    return Status::ok();
  }

  //    Cold path: pre-attested re-provisioning — the cluster stands in for
  //    the CAS.
  Status provision = Status::ok();
  transports_[i]->run_sync([&] {
    if (options_.secured) {
      provision = enclaves_[i]->install_secret(attest::kClusterRootName,
                                               options_.root);
      if (provision.is_ok() && options_.confidentiality) {
        provision = enclaves_[i]->install_secret(attest::kValueKeyName,
                                                 options_.value_key);
      }
    }
  });
  if (!provision.is_ok()) return provision;

  // 2. The fast-path analog of the CAS fresh-node notice: every live peer
  //    AND every client resets the rejoiner's channel state BEFORE its
  //    restarted counters can reach them.
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    if (j == i) continue;
    transports_[j]->run_sync([this, j, &node] {
      if (nodes_[j]->running()) nodes_[j]->security().reset_peer(node.self());
    });
  }
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    client_home(c).run_sync([this, c, &node] {
      clients_[c]->security().reset_peer(node.self());
    });
  }

  // 3-6. Shadow join, chunked catch-up from the donor over TCP, promotion —
  //      all driven on the node's own loop thread.
  auto verdict = std::make_shared<std::promise<Status>>();
  auto future = verdict->get_future();
  // The promotion poll's callbacks capture `node` by reference. The handle
  // makes every armed timer cancellable, so a caller that gives up on the
  // rejoin (max_wait) can guarantee nothing fires into a node it is about
  // to destroy. `abandoned` (loop-thread confined) closes the other half of
  // that race: cancelling the handle alone would not stop a still-queued
  // catch-up completion from arming a FRESH timer through it afterwards.
  auto poll = std::make_shared<sim::TimerHandle>();
  auto abandoned = std::make_shared<bool>(false);
  transports_[i]->run_sync([this, i, donor, &node, verdict, poll, abandoned] {
    node.start_as_shadow();
    node.catch_up_from(
        donor, [this, i, &node, verdict, poll,
                abandoned](Result<std::size_t> streamed) {
          if (*abandoned) return;  // caller timed out: node may be dying
          if (!streamed) {
            verdict->set_value(streamed.status());
            return;
          }
          const RejoinOptions defaults;
          await_promotion(transports_[i]->clock(), node, defaults.promote_poll,
                          defaults.max_promote_polls,
                          [verdict](bool promoted) {
                            verdict->set_value(
                                promoted ? Status::ok()
                                         : Status::error(
                                               ErrorCode::kTimeout,
                                               "replica stuck in shadow"));
                          },
                          poll);
        });
  });
  if (future.wait_for(chrono_ns(max_wait)) != std::future_status::ready) {
    // Disarm on the loop thread (TimerHandle isn't thread-safe against the
    // queue) BEFORE handing control back: the caller may destroy the node.
    transports_[i]->run_sync([poll, abandoned] {
      *abandoned = true;
      poll->cancel();
    });
    return Status::error(ErrorCode::kTimeout, "rejoin did not complete");
  }
  return future.get();
}

Status TcpCluster::shutdown_clean(std::size_t i) {
  Status out = Status::ok();
  transports_[i]->run_sync([this, i, &out] {
    if (!nodes_[i]->running()) {
      out = Status::error(ErrorCode::kUnavailable, "replica not running");
      return;
    }
    out = nodes_[i]->shutdown_clean();
  });
  return out;
}

std::uint64_t TcpCluster::committed_ops() {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    transports_[i]->run_sync([this, i, &total] {
      total += nodes_[i]->committed_ops();
    });
  }
  return total;
}

double drive_closed_loop_puts(transport::TcpTransport& client_transport,
                              KvClient& client, NodeId target,
                              std::size_t total, std::size_t pipeline,
                              const Bytes& value, std::size_t key_space) {
  if (total == 0) return 0.0;
  if (pipeline == 0) pipeline = 1;
  if (key_space == 0) key_space = 1;

  auto done = std::make_shared<std::promise<void>>();
  auto issued = std::make_shared<std::size_t>(0);
  auto completed = std::make_shared<std::size_t>(0);
  // Self-referential closure: each completion issues the next op, all on
  // the client's loop thread. Explicitly broken after the run — the
  // shared_ptr self-capture would otherwise leak it.
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&client, target, issued, completed, total, done, issue, &value,
            key_space] {
    if (*issued >= total) return;
    const std::size_t n = (*issued)++;
    client.put(target, "key" + std::to_string(n % key_space), value,
               [completed, total, done, issue](const ClientReply&) {
                 if (++*completed == total) {
                   done->set_value();
                 } else {
                   (*issue)();
                 }
               });
  };

  const auto started = std::chrono::steady_clock::now();
  client_transport.run_sync([&] {
    for (std::size_t i = 0; i < pipeline; ++i) (*issue)();
  });
  // Bounded wait: one silently lost completion must fail the run (negative
  // return), not hang the caller — and with it a gating CI bench job.
  const auto bound = std::chrono::seconds(60) +
                     std::chrono::milliseconds(5) * static_cast<long>(total);
  const bool finished =
      done->get_future().wait_for(bound) == std::future_status::ready;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  client_transport.run_sync([&] { *issue = nullptr; });
  return finished ? secs : -1.0;
}

}  // namespace recipe::cluster
