#!/usr/bin/env python3
"""Admin-endpoint smoke: a live 3-replica real_cluster must serve Prometheus
metrics and a flight-recorder trace over its admin ports, and the series
must move when traffic flows.

Usage:
  ci/admin_smoke.py path/to/real_cluster [artifact_dir]

What it proves (the PR's introspection acceptance criteria):
  * every replica's /healthz answers while the data plane is up;
  * /metrics parses as Prometheus text exposition and carries at least
    REQUIRED_SERIES distinct series spanning transport, security, batcher,
    WAL, retry/rpc and protocol;
  * a client burst between two scrapes moves the key counters
    (committed ops on the coordinator, packets on every replica) and no
    counter ever goes backwards;
  * /trace returns well-formed flight-recorder JSON with events from the
    burst.

The scraped text and trace dumps are written to `artifact_dir` (default
admin_smoke_artifacts/) so a CI failure leaves the evidence behind.
"""

import json
import os
import re
import subprocess
import sys
import time
import urllib.request

HOST = "127.0.0.1"
# Fixed loopback ports: data plane 74x1..3, admin plane 94x1..3. Chosen away
# from the ephemeral range CI machines hand out; the replicas fail loudly on
# a collision and the job just reruns.
DATA_PORTS = [7431, 7432, 7433]
ADMIN_PORTS = [9431, 9432, 9433]
REQUIRED_SERIES = 30
CLIENT_OPS = 800

# One representative series per subsystem the registry must span.
REQUIRED_NAMES = [
    "recipe_transport_packets_sent_total",   # transport
    "recipe_transport_bytes_sent_total",     # transport
    "recipe_security_rejected_auth_total",   # security
    "recipe_batch_messages_total",           # batcher
    "recipe_wal_group_commits_total",        # WAL
    "recipe_rpc_requests_total",             # rpc/retry plumbing
    "recipe_node_committed_ops_total",       # protocol
    "recipe_node_apply_us_count",            # histogram exposition
]

# Counters that must be monotone across scrapes and move under load.
MONOTONE = [
    "recipe_transport_packets_sent_total",
    "recipe_transport_bytes_sent_total",
    "recipe_node_committed_ops_total",
]


def fetch(port, path, timeout=5):
    url = f"http://{HOST}:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8", errors="replace")


def wait_healthy(port, deadline):
    while time.time() < deadline:
        try:
            if "ok" in fetch(port, "/healthz", timeout=2):
                return True
        except OSError:
            time.sleep(0.2)
    return False


def parse_series(text):
    """Prometheus text -> {series_key: float} for every sample line."""
    out = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = re.match(r"^(\S+)\s+(-?[0-9.eE+]+)$", line)
        if m is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        out[m.group(1)] = float(m.group(2))
    return out


def series_value(series, name):
    """Sum of every labelset of `name` (shard/quantile labels collapse)."""
    total, found = 0.0, False
    for key, value in series.items():
        if key == name or key.startswith(name + "{"):
            total, found = total + value, True
    return total if found else None


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    binary = sys.argv[1]
    artifact_dir = sys.argv[2] if len(sys.argv) > 2 else "admin_smoke_artifacts"
    os.makedirs(artifact_dir, exist_ok=True)

    members = ",".join(
        f"{i + 1}@{HOST}:{DATA_PORTS[i]}" for i in range(3))
    replicas = []
    ok = True
    try:
        for i in range(3):
            log = open(os.path.join(artifact_dir, f"replica{i + 1}.log"), "w")
            replicas.append((subprocess.Popen(
                [binary, "--id", str(i + 1), "--replicas", members,
                 "--admin-port", str(ADMIN_PORTS[i])],
                stdout=log, stderr=subprocess.STDOUT), log))

        deadline = time.time() + 30
        for port in ADMIN_PORTS:
            if not wait_healthy(port, deadline):
                print(f"FAIL  admin port {port} never became healthy")
                return 1
        print("ok    all 3 admin endpoints healthy")

        before = [parse_series(fetch(p, "/metrics")) for p in ADMIN_PORTS]

        burst = subprocess.run(
            [binary, "--client", "--replicas", members,
             "--ops", str(CLIENT_OPS), "--pipeline", "16"],
            capture_output=True, text=True, timeout=120)
        sys.stdout.write(burst.stdout)
        if burst.returncode != 0:
            print(f"FAIL  client burst exited {burst.returncode}:\n"
                  f"{burst.stderr}")
            return 1

        after = []
        for i, port in enumerate(ADMIN_PORTS):
            text = fetch(port, "/metrics")
            with open(os.path.join(artifact_dir,
                                   f"metrics_replica{i + 1}.prom"), "w") as f:
                f.write(text)
            after.append(parse_series(text))

        for i, series in enumerate(after):
            n = len(series)
            verdict = "ok  " if n >= REQUIRED_SERIES else "FAIL"
            ok &= n >= REQUIRED_SERIES
            print(f"{verdict}  replica {i + 1}: {n} distinct series "
                  f"(need >= {REQUIRED_SERIES})")
            for name in REQUIRED_NAMES:
                if series_value(series, name) is None:
                    print(f"FAIL  replica {i + 1}: missing series {name}")
                    ok = False

        # Monotonicity + movement: counters only climb, and the burst must
        # have moved packets everywhere and commits on the coordinator.
        for i in range(3):
            for name in MONOTONE:
                b = series_value(before[i], name) or 0.0
                a = series_value(after[i], name) or 0.0
                if a < b:
                    print(f"FAIL  replica {i + 1}: {name} went backwards "
                          f"({b} -> {a})")
                    ok = False
            moved = (series_value(after[i],
                                  "recipe_transport_packets_sent_total") or 0)
            if moved <= 0:
                print(f"FAIL  replica {i + 1}: no packets sent under load")
                ok = False
        committed = max(
            series_value(s, "recipe_node_committed_ops_total") or 0
            for s in after)
        if committed < CLIENT_OPS:
            print(f"FAIL  committed ops {committed} < burst size {CLIENT_OPS}")
            ok = False
        else:
            print(f"ok    coordinator committed {committed:.0f} ops, "
                  f"counters monotone")

        trace = fetch(ADMIN_PORTS[0], "/trace")
        with open(os.path.join(artifact_dir, "trace_replica1.json"), "w") as f:
            f.write(trace)
        events = json.loads(trace).get("events", [])
        if not events:
            print("FAIL  /trace returned no flight-recorder events")
            ok = False
        else:
            kinds = sorted({e.get("kind") for e in events})
            print(f"ok    /trace: {len(events)} events, kinds={kinds}")
    finally:
        for proc, log in replicas:
            proc.terminate()
        for proc, log in replicas:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
            log.close()

    print("admin smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
