#include "protocols/craq/craq.h"

namespace recipe::protocols {

CraqNode::CraqNode(sim::Clock& clock, net::Transport& network,
                   ReplicaOptions options)
    : ReplicaNode(clock, network, std::move(options)) {
  on(craq_msg::kUpdate, [this](VerifiedEnvelope& env, rpc::RequestContext&) {
    Reader r(as_view(env.payload));
    auto seq = r.u64();
    auto op = r.bytes();
    if (!seq || !op) return;
    if (is_shadow()) {
      // Teed live traffic: apply (marks DIRTY), no chain role, no forward.
      apply_update(*seq, as_view(*op));
      return;
    }
    if (*seq <= applied_seq_) {
      forward_or_commit(*seq, *op);  // repair duplicate: keep propagating
      return;
    }
    out_of_order_.emplace(*seq, std::move(*op));
    apply_in_order();
  });

  on(craq_msg::kClean, [this](VerifiedEnvelope& env, rpc::RequestContext&) {
    Reader r(as_view(env.payload));
    auto seq = r.u64();
    auto key = r.str();
    if (!seq || !key) return;
    mark_clean(*seq, *key);
  });

  on(craq_msg::kTailRead, [this](VerifiedEnvelope& env,
                                 rpc::RequestContext& ctx) {
    if (is_shadow()) return;  // incomplete state: never serve committed reads
    Reader r(as_view(env.payload));
    auto key = r.str();
    if (!key) return;
    Writer resp;
    auto value = kv_get(*key);
    resp.boolean(value.is_ok());
    resp.bytes(value.is_ok() ? as_view(value.value().value) : BytesView{});
    respond(ctx, env.sender, as_view(resp.buffer()));
  });
}

std::vector<NodeId> CraqNode::chain() const {
  std::vector<NodeId> out;
  for (NodeId n : membership()) {
    if (dead_.contains(n)) continue;
    if (shadow_peers().contains(n)) continue;  // shadows hold no position
    if (n == self() && is_shadow()) continue;
    out.push_back(n);
  }
  return out;
}

std::optional<NodeId> CraqNode::successor() const {
  const auto c = chain();
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (c[i] == self()) return c[i + 1];
  }
  return std::nullopt;
}

std::optional<NodeId> CraqNode::predecessor() const {
  const auto c = chain();
  for (std::size_t i = 1; i < c.size(); ++i) {
    if (c[i] == self()) return c[i - 1];
  }
  return std::nullopt;
}

void CraqNode::submit(const ClientRequest& request, ReplyFn reply) {
  if (request.op == OpType::kGet) {
    serve_read(request.key, std::move(reply));
    return;
  }
  if (!is_head()) {
    ClientReply r;
    r.ok = false;
    reply(r);
    return;
  }
  next_seq_ = std::max(next_seq_, applied_seq_) + 1;
  const std::uint64_t seq = next_seq_;
  const Bytes op = request.serialize();
  pending_replies_[seq] = std::move(reply);
  unacked_[seq] = op;
  apply_update(seq, as_view(op));
  applied_seq_ = seq;
  forward_or_commit(seq, op);
  tee_update_to_shadows(seq, op);
}

void CraqNode::tee_update_to_shadows(std::uint64_t seq, const Bytes& op) {
  for (NodeId peer : shadow_peers()) {
    Writer w;
    w.u64(seq);
    w.bytes(as_view(op));
    send_to(peer, craq_msg::kUpdate, as_view(w.buffer()));
  }
}

void CraqNode::tee_clean_to_shadows(std::uint64_t seq, const std::string& key) {
  for (NodeId peer : shadow_peers()) {
    Writer w;
    w.u64(seq);
    w.str(key);
    send_to(peer, craq_msg::kClean, as_view(w.buffer()));
  }
}

void CraqNode::serve_read(const std::string& key, ReplyFn reply) {
  if (!dirty_keys_.contains(key) || is_tail()) {
    // Clean (or we ARE the committed source): serve locally.
    ++local_reads_;
    auto value = kv_get(key);
    ClientReply r;
    r.ok = true;
    r.found = value.is_ok();
    if (value.is_ok()) r.value = std::move(value.value().value);
    reply(r);
    return;
  }
  // Dirty: apportion the query to the tail for the committed version.
  ++apportioned_reads_;
  Writer w;
  w.str(key);
  auto shared_reply = std::make_shared<ReplyFn>(std::move(reply));
  send_to(chain().back(), craq_msg::kTailRead, as_view(w.buffer()),
          [shared_reply](VerifiedEnvelope& env) {
            Reader r(as_view(env.payload));
            auto found = r.boolean();
            auto value = r.bytes();
            if (!found || !value) return;
            ClientReply reply;
            reply.ok = true;
            reply.found = *found;
            reply.value = std::move(*value);
            (*shared_reply)(reply);
          },
          sim::kSecond, [shared_reply] {
            ClientReply reply;
            reply.ok = false;
            (*shared_reply)(reply);
          });
}

void CraqNode::apply_update(std::uint64_t seq, BytesView op) {
  auto request = ClientRequest::parse(op);
  if (!request || request.value().op != OpType::kPut) return;
  // Sequence timestamp: chain order is the version order, so recovery
  // streams and teed updates merge last-writer-wins.
  kv_write(request.value().key, as_view(request.value().value),
           kv::Timestamp{seq, 0});
  // Newest version is dirty until the tail commit travels back up.
  dirty_keys_[request.value().key] = seq;
}

void CraqNode::apply_in_order() {
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && it->first == applied_seq_ + 1) {
    apply_update(it->first, as_view(it->second));
    applied_seq_ = it->first;
    forward_or_commit(it->first, it->second);
    it = out_of_order_.erase(it);
  }
}

void CraqNode::forward_or_commit(std::uint64_t seq, const Bytes& op) {
  const auto next = successor();
  if (next) {
    Writer w;
    w.u64(seq);
    w.bytes(as_view(op));
    send_to(*next, craq_msg::kUpdate, as_view(w.buffer()));
    return;
  }
  // Tail: the write is committed. Clean it here and propagate the commit
  // back up the chain (and to any shadow, whose dirty marks mirror ours).
  auto request = ClientRequest::parse(as_view(op));
  const std::string key = request ? request.value().key : "";
  mark_clean(seq, key);
  tee_clean_to_shadows(seq, key);
}

void CraqNode::mark_clean(std::uint64_t seq, const std::string& key) {
  const auto it = dirty_keys_.find(key);
  if (it != dirty_keys_.end() && it->second <= seq) dirty_keys_.erase(it);

  // Head completes the client write when the commit wave reaches it.
  if (is_head()) {
    unacked_.erase(seq);
    const auto pending = pending_replies_.find(seq);
    if (pending != pending_replies_.end()) {
      ClientReply reply;
      reply.ok = true;
      pending->second(reply);
      pending_replies_.erase(pending);
    }
    return;
  }
  // Propagate the clean notification up the chain.
  const auto prev = predecessor();
  if (!prev) return;
  Writer w;
  w.u64(seq);
  w.str(key);
  send_to(*prev, craq_msg::kClean, as_view(w.buffer()));
}

void CraqNode::on_suspected(NodeId peer) {
  dead_.insert(peer);
  if (is_head()) {
    for (const auto& [seq, op] : unacked_) forward_or_commit(seq, op);
  }
}

void CraqNode::on_peer_promoted(NodeId peer) {
  dead_.erase(peer);
  // Re-drive in-flight writes through the restored chain (idempotent).
  if (is_head()) {
    for (const auto& [seq, op] : unacked_) forward_or_commit(seq, op);
  }
}

void CraqNode::on_promoted() {
  applied_seq_ = std::max(applied_seq_, synced_max_counter());
  next_seq_ = std::max(next_seq_, applied_seq_);
  out_of_order_.clear();
  // Leftover dirty marks (commit notice lost while shadow) are SAFE: reads
  // of those keys apportion to the tail until a later write cleans them.
}

}  // namespace recipe::protocols
