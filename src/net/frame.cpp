#include "net/frame.h"

#include <cstring>

#include "common/endian.h"
#include "net/transport.h"

namespace recipe::net {

void append_frame(Bytes& out, const Packet& packet) {
  const std::size_t payload_size = packet.payload_size();
  const std::size_t base = out.size();
  out.resize(base + kFrameHeaderSize + payload_size);
  std::uint8_t* p = out.data() + base;
  store_le32(p, static_cast<std::uint32_t>(payload_size));
  store_le32(p + 4, packet.type);
  store_le64(p + 8, packet.src.value);
  store_le64(p + 16, packet.dst.value);
  std::uint8_t* at = p + kFrameHeaderSize;
  if (!packet.payload.empty()) {
    std::memcpy(at, packet.payload.data(), packet.payload.size());
    at += packet.payload.size();
  }
  // Scatter packets: the length prefix covers the concatenation, so the
  // receiver cannot tell a gathered frame from a contiguous one.
  for (const Bytes& seg : packet.segments) {
    if (seg.empty()) continue;
    std::memcpy(at, seg.data(), seg.size());
    at += seg.size();
  }
}

Bytes encode_frame(const Packet& packet) {
  Bytes out;
  out.reserve(kFrameHeaderSize + packet.payload_size());
  append_frame(out, packet);
  return out;
}

bool FrameDecoder::feed(BytesView data) {
  if (corrupted_) return false;
  // Compact lazily: only when the dead prefix dominates the buffer, so
  // steady-state streaming memmoves rarely instead of per frame.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  append(buffer_, data);
  return true;
}

std::optional<Packet> FrameDecoder::next() {
  if (corrupted_) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* p = buffer_.data() + consumed_;
  const std::uint32_t len = load_le32(p);
  if (len > max_payload_) {
    // A hostile or corrupted length prefix: there is no way to find the next
    // frame boundary in a byte stream, so the whole connection is poisoned.
    corrupted_ = true;
    buffer_.clear();
    consumed_ = 0;
    return std::nullopt;
  }
  if (available < kFrameHeaderSize + len) return std::nullopt;

  Packet packet;
  packet.type = load_le32(p + 4);
  packet.src = NodeId{load_le64(p + 8)};
  packet.dst = NodeId{load_le64(p + 16)};
  packet.payload.assign(p + kFrameHeaderSize, p + kFrameHeaderSize + len);
  consumed_ += kFrameHeaderSize + len;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return packet;
}

}  // namespace recipe::net
