// Chain Replication (van Renesse & Schneider) — leader-based, per-key
// ordering, linearizable (paper §B.2 category C).
//
// Nodes form a chain in membership order. Writes enter at the HEAD, which
// assigns a sequence number, applies locally and forwards down the chain;
// each node applies in sequence order and forwards; the TAIL applies and
// acknowledges straight back to the head, which replies to the client.
// Because a write is acknowledged only after reaching every node, the tail
// has seen every committed write — so linearizable reads are served LOCALLY
// at the tail (the paper's explanation for R-CR's read-heavy wins).
//
// Chain repair: when the failure detector suspects a node it is dropped from
// the chain; the head re-propagates all unacknowledged updates through the
// new chain. Nodes deduplicate by sequence number, so re-propagation is
// idempotent.
#pragma once

#include <map>
#include <set>

#include "recipe/node_base.h"

namespace recipe::protocols {

namespace cr_msg {
constexpr rpc::RequestType kUpdate = 0xC201;  // [seq, op] down the chain
constexpr rpc::RequestType kAck = 0xC202;     // [seq] tail -> head
}  // namespace cr_msg

class ChainNode final : public ReplicaNode {
 public:
  ChainNode(sim::Simulator& simulator, net::SimNetwork& network,
            ReplicaOptions options);

  // Coordinates PUTs when head, GETs when tail.
  bool is_coordinator() const override { return is_head() || is_tail(); }
  bool coordinates_writes() const override { return is_head(); }
  bool coordinates_reads() const override { return is_tail(); }
  bool serves_local_reads() const override { return is_tail(); }
  void submit(const ClientRequest& request, ReplyFn reply) override;

  bool is_head() const { return chain().front() == self(); }
  bool is_tail() const { return chain().back() == self(); }
  NodeId head() const { return chain().front(); }
  NodeId tail() const { return chain().back(); }

  // The live chain in membership order.
  std::vector<NodeId> chain() const;

 protected:
  void on_suspected(NodeId peer) override;

 private:
  std::optional<NodeId> successor() const;
  void apply_in_order();
  void apply_update(std::uint64_t seq, BytesView op);
  void forward_or_ack(std::uint64_t seq, const Bytes& op);
  void repropagate_unacked();

  std::set<NodeId> dead_;
  std::uint64_t next_seq_{0};     // head: last assigned sequence number
  std::uint64_t applied_seq_{0};  // this node: last applied sequence number
  std::map<std::uint64_t, Bytes> out_of_order_;       // buffered future updates
  std::map<std::uint64_t, Bytes> unacked_;            // head: for repair
  std::map<std::uint64_t, ReplyFn> pending_replies_;  // head: seq -> client
};

}  // namespace recipe::protocols
