// Byzantine-behaviour tests: a Dolev-Yao network adversary and a corrupting
// host attack the cluster. R- (Recipe) protocols must preserve safety;
// the same attacks demonstrably corrupt the NATIVE CFT runs — the paper's
// core motivation (§1, §4.1).
#include <gtest/gtest.h>

#include "cluster_harness.h"
#include "protocols/abd/abd.h"
#include "protocols/cr/cr.h"
#include "protocols/raft/raft.h"
#include "recipe/message.h"

namespace recipe::protocols {
namespace {

using testing::Cluster;

// RPC wire framing helpers (the adversary sits below the RPC layer):
// [kind u8][request type u32][rpc id u64][payload bytes].
struct RpcFrame {
  std::uint8_t kind;
  std::uint32_t type;
  std::uint64_t rpc_id;
  Bytes payload;
};

std::optional<RpcFrame> unwrap_rpc(BytesView wire) {
  Reader r(wire);
  auto kind = r.u8();
  auto type = r.u32();
  auto rpc_id = r.u64();
  auto payload = r.bytes();
  if (!kind || !type || !rpc_id || !payload) return std::nullopt;
  return RpcFrame{*kind, *type, *rpc_id, std::move(*payload)};
}

Bytes wrap_rpc(const RpcFrame& frame) {
  Writer w;
  w.u8(frame.kind);
  w.u32(frame.type);
  w.u64(frame.rpc_id);
  w.bytes(as_view(frame.payload));
  return std::move(w).take();
}

// --- Network tampering
// ----------------------------------------------------------

TEST(Byzantine, TamperedReplicationTrafficDroppedUnderRecipe) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();

  // The adversary flips a byte in every inter-replica packet payload.
  std::uint64_t tampered = 0;
  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value <= 3 && p.dst.value <= 3 && !p.payload.empty()) {
      action.kind = net::AdversaryAction::Kind::kTamper;
      action.payload = p.payload;
      action.payload[action.payload.size() / 2] ^= 0x40;
      ++tampered;
    }
    return action;
  });

  // With every replica->replica packet corrupted, writes cannot gather a
  // remote quorum -> the system must refuse (timeout), never accept bad data.
  bool completed_ok = false;
  client.put(NodeId{1}, "k", to_bytes("v"),
             [&](const ClientReply& r) { completed_ok = r.ok; });
  cluster.run_for(5 * sim::kSecond);
  EXPECT_GT(tampered, 0u);
  EXPECT_FALSE(completed_ok);

  // No replica ever stored a corrupted value.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto v = cluster.node(i).kv().get("k");
    if (v.is_ok()) {
      EXPECT_EQ(to_string(as_view(v.value().value)), "v");
    }
  }
}

TEST(Byzantine, SelectiveTamperingToleratedByQuorum) {
  // Adversary corrupts only traffic towards replica 3: the quorum {1,2}
  // still commits, replica 3 rejects everything corrupted.
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();

  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.dst == NodeId{3} && p.src.value <= 3 && !p.payload.empty()) {
      action.kind = net::AdversaryAction::Kind::kTamper;
      action.payload = p.payload;
      action.payload[0] ^= 0xFF;
    }
    return action;
  });

  EXPECT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{2}, "k").value)), "v");
  EXPECT_FALSE(cluster.node(2).kv().contains("k"));  // everything to 3 was junk
}

TEST(Byzantine, NativeCftAcceptsTamperedTraffic) {
  // The same attack against the NATIVE protocol succeeds: followers accept
  // and store attacker-chosen bytes. This is the vulnerability Recipe fixes.
  Cluster<AbdNode>::Config config;
  config.secured = false;
  Cluster<AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();

  const Bytes evil = to_bytes("EVIL");
  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    // Replace the value inside replica->replica PUT payloads; with framing-
    // only security the receiver cannot tell.
    if (p.src.value > 3 || p.dst.value > 3) return action;
    auto frame = unwrap_rpc(as_view(p.payload));
    if (!frame || frame->type != abd_msg::kPut) return action;
    auto msg = ShieldedMessage::parse(as_view(frame->payload));
    if (!msg.is_ok()) return action;
    Reader r(as_view(msg.value().payload));
    auto key = r.str();
    auto value = r.bytes();
    if (!key || !value || *key != "k" || value->empty()) return action;
    Writer w;
    w.str(*key);
    w.bytes(as_view(evil));
    auto tail = r.raw(r.remaining());
    w.raw(as_view(*tail));
    msg.value().payload = std::move(w).take();
    frame->payload = msg.value().serialize();
    action.kind = net::AdversaryAction::Kind::kReplace;
    action.payload = wrap_rpc(*frame);
    return action;
  });

  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "honest").ok);
  // At least one follower stored the attacker's value.
  bool corrupted = false;
  for (std::size_t i = 1; i < cluster.size(); ++i) {
    auto v = cluster.node(i).kv().get("k");
    if (v.is_ok() && v.value().value == evil) corrupted = true;
  }
  EXPECT_TRUE(corrupted) << "native CFT should be corruptible (sanity check "
                            "that the attack itself works)";
}

// --- Replay
// ----------------------------------------------------------------------

TEST(Byzantine, ReplayedPacketsRejectedUnderRecipe) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();

  // Replay every replica-to-replica packet once.
  cluster.network().set_adversary([](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value <= 3 && p.dst.value <= 3) action.injected.push_back(p);
    return action;
  });

  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v1").ok);
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v2").ok);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{2}, "k").value)),
            "v2");

  // The replicas observed and rejected replays.
  std::uint64_t replays = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& sec = dynamic_cast<RecipeSecurity&>(cluster.node(i).security());
    replays += sec.rejected_replay();
  }
  EXPECT_GT(replays, 0u);
}

TEST(Byzantine, ReplayedClientRequestExecutesExactlyOnce) {
  Cluster<RaftNode> cluster;
  RaftOptions raft;
  raft.initial_leader = NodeId{1};
  cluster.build(raft);
  auto& client = cluster.add_client();

  // Replay every client->replica packet 3 times.
  cluster.network().set_adversary([](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value >= 2000 && p.dst.value <= 3) {
      for (int i = 0; i < 3; ++i) action.injected.push_back(p);
    }
    return action;
  });

  ASSERT_TRUE(cluster.put(client, NodeId{1}, "counter", "1").ok);
  cluster.run_for(sim::kSecond);
  // Exactly one commit despite 4 deliveries of the same request.
  EXPECT_EQ(cluster.node(0).committed_ops(), 1u);
}

// --- Forgery / impersonation
// --------------------------------------------------------

TEST(Byzantine, ForgedLeaderMessagesIgnored) {
  // The adversary injects fabricated "AppendEntries" packets claiming to be
  // from the leader. Without channel keys the MAC cannot be produced.
  Cluster<RaftNode> cluster;
  RaftOptions raft;
  raft.initial_leader = NodeId{1};
  cluster.build(raft);
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "good").ok);

  ShieldedMessage forged;
  forged.header.view = ViewId{1};
  forged.header.cq = directed_channel(NodeId{1}, NodeId{2});
  forged.header.cnt = 999;
  forged.header.sender = NodeId{1};
  forged.header.receiver = NodeId{2};
  forged.payload = to_bytes("malicious append");
  forged.mac = Bytes(32, 0xAB);

  // Wrap it like an RPC request of the Raft append type and inject.
  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value >= 2000) {  // piggyback on client traffic for timing
      net::Packet evil;
      evil.src = NodeId{1};
      evil.dst = NodeId{2};
      evil.type = p.type;
      evil.payload = wrap_rpc(RpcFrame{/*kind=request*/ 1, raft_msg::kAppend,
                                       424242, forged.serialize()});
      action.injected.push_back(std::move(evil));
    }
    return action;
  });

  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k2", "alsogood").ok);
  cluster.run_for(sim::kSecond);
  auto& follower_security =
      dynamic_cast<RecipeSecurity&>(cluster.node(1).security());
  EXPECT_GT(follower_security.rejected_auth(), 0u);
  // Replicated state is unaffected.
  EXPECT_EQ(to_string(as_view(cluster.node(1).kv().get("k").value().value)),
            "good");
}

TEST(Byzantine, ClientImpersonationRejected) {
  // A malicious client (with its own valid keys) cannot speak for another
  // client id: the channel binds the sender identity.
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& mallory = cluster.add_client(2001);

  // Mallory crafts a request claiming client id 2002.
  ClientRequest forged;
  forged.client = ClientId{2002};
  forged.rid = RequestId{1};
  forged.op = OpType::kPut;
  forged.key = "victim-key";
  forged.value = to_bytes("ownage");

  // Encode through Mallory's own channel (the only keys she has).
  bool replied = false;
  mallory.put(NodeId{1}, "my-key", to_bytes("fine"),
              [&](const ClientReply&) { replied = true; });
  cluster.run_for(sim::kSecond);
  ASSERT_TRUE(replied);

  // Direct injection: shield with Mallory's key but lie in the payload.
  auto& sec = cluster.node(0).security();
  (void)sec;
  tee::Enclave mallory_enclave(cluster.platform(), "recipe-client", 555);
  ASSERT_TRUE(mallory_enclave
                  .install_secret(attest::kClusterRootName, cluster.root())
                  .is_ok());
  RecipeSecurity mallory_sec(mallory_enclave, NodeId{2001}, nullptr, nullptr,
                             {});
  auto wire = mallory_sec.shield(NodeId{1}, ViewId{0},
                                 as_view(forged.serialize()));
  ASSERT_TRUE(wire.is_ok());

  rpc::RpcObject injector(cluster.sim(), cluster.network(), NodeId{2001},
                          net::NetStackParams::direct_io_native());
  injector.send(NodeId{1}, msg::kClientRequest, wire.value());
  cluster.run_for(sim::kSecond);

  EXPECT_FALSE(cluster.node(0).kv().contains("victim-key"));
}

// --- Batched frames under attack
// -------------------------------------------------
//
// Batching coalesces N sub-messages under ONE MAC and ONE replay-window
// slot; the adversary attacks exactly that aggregation: replaying whole
// batches, splitting them, splicing sub-messages between captured frames,
// and reordering them in flight. Everything must be rejected (or tolerated)
// end-to-end through SimNetwork.

Cluster<ChainNode>::Config batched_chain_config() {
  Cluster<ChainNode>::Config config;
  config.batch.enabled = true;
  config.batch.max_count = 8;
  config.batch.max_delay = 5 * sim::kMicrosecond;
  return config;
}

// Drives `n` pipelined puts through the chain head and returns how many
// committed.
int pipelined_puts(Cluster<ChainNode>& cluster, KvClient& client, int n) {
  int completed = 0;
  for (int i = 0; i < n; ++i) {
    client.put(NodeId{1}, "k" + std::to_string(i),
               to_bytes("v" + std::to_string(i)),
               [&](const ClientReply& r) { completed += r.ok ? 1 : 0; });
  }
  cluster.run_for(5 * sim::kSecond);
  return completed;
}

void expect_chain_intact(Cluster<ChainNode>& cluster, int n) {
  for (std::size_t node = 0; node < cluster.size(); ++node) {
    for (int i = 0; i < n; ++i) {
      auto v = cluster.node(node).kv().get("k" + std::to_string(i));
      ASSERT_TRUE(v.is_ok()) << "node " << node << " key " << i;
      EXPECT_EQ(to_string(as_view(v.value().value)), "v" + std::to_string(i));
    }
  }
}

TEST(Byzantine, ReplayedBatchFramesBurnOneReplaySlot) {
  Cluster<ChainNode> cluster(batched_chain_config());
  cluster.build();
  auto& client = cluster.add_client();

  // Replay every replica->replica packet (including whole batch frames).
  std::uint64_t replayed = 0;
  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value <= 3 && p.dst.value <= 3) {
      action.injected.push_back(p);
      ++replayed;
    }
    return action;
  });

  const int n = 16;
  EXPECT_EQ(pipelined_puts(cluster, client, n), n);
  expect_chain_intact(cluster, n);

  // Each replayed batch was rejected by its single replay-window slot, and
  // nothing was applied twice (exactly-once at the head).
  std::uint64_t replays_rejected = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& sec = dynamic_cast<RecipeSecurity&>(cluster.node(i).security());
    replays_rejected += sec.rejected_replay();
  }
  EXPECT_GT(replayed, 0u);
  EXPECT_GT(replays_rejected, 0u);
  EXPECT_EQ(cluster.node(0).committed_ops(), static_cast<std::uint64_t>(n));
}

TEST(Byzantine, SplitAndSplicedBatchesRejectedEndToEnd) {
  Cluster<ChainNode> cluster(batched_chain_config());
  cluster.build();
  auto& client = cluster.add_client();

  // For every replica->replica batch frame the adversary injects two
  // forgeries alongside the genuine packet:
  //  * a SPLIT: the frame's header+MAC wrapped around a truncated body;
  //  * a SPLICE: the current header+MAC around the PREVIOUS frame's body.
  std::uint64_t forged = 0;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Bytes> last_seen;
  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value > 3 || p.dst.value > 3) return action;
    auto frame = unwrap_rpc(as_view(p.payload));
    if (!frame || frame->type != msg::kBatch) return action;
    auto view = ShieldedView::parse(as_view(frame->payload));
    if (!view.is_ok() || !view.value().header.is_batch()) return action;

    auto forge = [&](BytesView body) {
      Bytes wire = encode_shielded_frame(view.value().header, body,
                                         crypto::kMacSize);
      std::copy(view.value().mac.begin(), view.value().mac.end(),
                wire.end() - static_cast<std::ptrdiff_t>(crypto::kMacSize));
      net::Packet evil;
      evil.src = p.src;
      evil.dst = p.dst;
      evil.type = p.type;
      evil.payload = wrap_rpc(RpcFrame{frame->kind, frame->type,
                                       frame->rpc_id + 777777, wire});
      action.injected.push_back(std::move(evil));
      ++forged;
    };

    const BytesView body = view.value().payload;
    if (body.size() > kBatchCountSize) {
      forge(body.subspan(0, body.size() / 2));  // split
    }
    const auto key = std::make_pair(p.src.value, p.dst.value);
    const auto prev = last_seen.find(key);
    if (prev != last_seen.end()) {
      forge(as_view(prev->second));  // cross-splice with the previous frame
    }
    last_seen[key] = Bytes(body.begin(), body.end());
    return action;
  });

  const int n = 16;
  EXPECT_EQ(pipelined_puts(cluster, client, n), n);
  expect_chain_intact(cluster, n);

  std::uint64_t auth_rejected = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& sec = dynamic_cast<RecipeSecurity&>(cluster.node(i).security());
    auth_rejected += sec.rejected_auth();
  }
  EXPECT_GT(forged, 0u);
  // Every forgery altered MAC-covered bytes, so every one was rejected.
  EXPECT_EQ(auth_rejected, forged);
  EXPECT_EQ(cluster.node(0).committed_ops(), static_cast<std::uint64_t>(n));
}

TEST(Byzantine, ReorderedBatchFramesToleratedByWindowPolicy) {
  Cluster<ChainNode> cluster(batched_chain_config());
  cluster.build();
  auto& client = cluster.add_client();

  // Transpose adjacent batch frames per link: hold one frame back, then on
  // the next same-link packet drop both in-flight copies and re-inject them
  // in SWAPPED order (injections are scheduled in vector order, ahead of the
  // packet that triggered them). Capped per link so a held frame can never
  // be stranded at the end of the run.
  std::map<std::pair<std::uint64_t, std::uint64_t>, net::Packet> held;
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> swaps;
  std::uint64_t reordered = 0;
  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value > 3 || p.dst.value > 3) return action;
    const auto key = std::make_pair(p.src.value, p.dst.value);
    const auto it = held.find(key);
    if (it != held.end()) {
      action.kind = net::AdversaryAction::Kind::kDrop;
      action.injected.push_back(p);                      // the newer frame...
      action.injected.push_back(std::move(it->second));  // ...then the older
      held.erase(it);
      ++reordered;
      return action;
    }
    auto frame = unwrap_rpc(as_view(p.payload));
    if (!frame || frame->type != msg::kBatch) return action;
    if (swaps[key]++ >= 3) return action;
    held.emplace(key, p);
    action.kind = net::AdversaryAction::Kind::kDrop;  // hold it back
    return action;
  });

  const int n = 16;
  EXPECT_EQ(pipelined_puts(cluster, client, n), n);
  EXPECT_GT(reordered, 0u);
  expect_chain_intact(cluster, n);

  // Window-mode replay filtering accepts reordered-but-fresh counters: no
  // spurious replay rejections.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& sec = dynamic_cast<RecipeSecurity&>(cluster.node(i).security());
    EXPECT_EQ(sec.rejected_replay(), 0u) << "node " << i;
  }
}

TEST(Byzantine, TamperedBatchNeverPartiallyDelivered) {
  // Flip one bit inside the FIRST sub-message region of every batch frame:
  // if rejection were per-sub-message, later intact sub-messages could still
  // land. The single batch MAC must reject the WHOLE frame.
  Cluster<ChainNode> cluster(batched_chain_config());
  cluster.build();
  auto& client = cluster.add_client();

  std::uint64_t tampered = 0;
  cluster.network().set_adversary([&](const net::Packet& p) {
    net::AdversaryAction action;
    if (p.src.value > 3 || p.dst.value > 3) return action;
    auto frame = unwrap_rpc(as_view(p.payload));
    if (!frame || frame->type != msg::kBatch) return action;
    action.kind = net::AdversaryAction::Kind::kTamper;
    action.payload = p.payload;
    // Flip a bit just past the batch count field (inside sub-message 0).
    const std::size_t at =
        p.payload.size() - frame->payload.size() + kShieldedPayloadOffset +
        kBatchCountSize + 2;
    action.payload[at] ^= 0x20;
    ++tampered;
    return action;
  });

  // With EVERY inter-replica batch corrupted the chain cannot replicate:
  // no put may complete, and no replica may hold any partial value.
  const int completed = pipelined_puts(cluster, client, 6);
  EXPECT_GT(tampered, 0u);
  EXPECT_EQ(completed, 0);
  for (std::size_t node = 1; node < cluster.size(); ++node) {
    for (int i = 0; i < 6; ++i) {
      EXPECT_FALSE(cluster.node(node).kv().contains("k" + std::to_string(i)))
          << "partial delivery on node " << node;
    }
  }
}

// --- Byzantine host memory
// ------------------------------------------------------------

TEST(Byzantine, HostMemoryCorruptionDetectedOnLocalRead) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);

  // The Byzantine host of replica 1 scribbles over the stored value.
  auto ptr = cluster.node(0).kv().host_ptr("k");
  ASSERT_TRUE(ptr.has_value());
  ASSERT_TRUE(cluster.node(0).kv().host_arena().corrupt(*ptr).is_ok());

  // Replica 1 detects the violation; the read via another coordinator that
  // consults the quorum still returns the correct value.
  EXPECT_EQ(cluster.node(0).kv().get("k").code(),
            ErrorCode::kIntegrityViolation);
  auto get = cluster.get(client, NodeId{2}, "k");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(to_string(as_view(get.value)), "v");
}

// --- Crash-only TEEs
// -----------------------------------------------------------------

TEST(Byzantine, CrashedEnclaveCannotEquivocateOrSend) {
  Cluster<AbdNode> cluster;
  cluster.build();
  cluster.enclave(0).crash();
  // The node's host may still be up, but nothing shieldable leaves it: a
  // put coordinated elsewhere succeeds with the remaining majority.
  auto& client = cluster.add_client();
  EXPECT_TRUE(cluster.put(client, NodeId{2}, "k", "v").ok);
  EXPECT_FALSE(cluster.node(0).kv().contains("k"));
}

}  // namespace
}  // namespace recipe::protocols
