// §B.3 "Recipe vs Damysus": throughput of Damysus for payload sizes
// {0, 64, 256}B against the four Recipe protocols at 256B. Paper: Damysus
// reaches 320/230/152 kOp/s; Recipe (256B) outperforms it by 1.1x-2.8x vs
// Damysus@0B and 2.3x-5.9x vs Damysus@256B.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace recipe::bench;

  std::printf("Damysus comparison (90%% reads)\n");

  double damysus256 = 0, damysus0 = 0;
  for (std::size_t size : {std::size_t{1}, std::size_t{64}, std::size_t{256}}) {
    ExperimentParams params;
    params.value_size = size;
    params.read_fraction = 0.9;
    const double ops = run_damysus(params).ops_per_sec;
    if (size == 1) damysus0 = ops;
    if (size == 256) damysus256 = ops;
    std::printf("  Damysus %4zuB payload: %10.0f ops/s\n", size == 1 ? 0 : size,
                ops);
  }

  ExperimentParams params;
  params.value_size = 256;
  params.read_fraction = 0.9;
  struct Sys {
    const char* name;
    double ops;
  };
  const std::vector<Sys> recipes = {
      {"R-Raft", run_raft(params).ops_per_sec},
      {"R-CR", run_cr(params).ops_per_sec},
      {"R-AllConcur", run_allconcur(params).ops_per_sec},
      {"R-ABD", run_abd(params).ops_per_sec},
  };

  std::printf("\n%-14s %12s %18s %18s\n", "system", "ops/s", "vs Damysus@0B",
              "vs Damysus@256B");
  for (const Sys& sys : recipes) {
    std::printf("%-14s %12.0f %17.1fx %17.1fx\n", sys.name, sys.ops,
                sys.ops / damysus0, sys.ops / damysus256);
  }
  std::printf("(paper: 1.1x-2.8x vs 0B, 2.3x-5.9x vs 256B)\n");
  return 0;
}
