// Table 4: end-to-end attestation latency — Recipe's in-datacenter CAS vs
// the vendor attestation service (IAS). Paper: CAS 0.169s vs IAS 2.913s,
// ~18.2x. The distinguishing variables are the WAN round trips and the
// vendor-side verification latency.
#include <cstdio>

#include "attest/cas.h"
#include "net/network.h"
#include "rpc/rpc.h"
#include "sim/simulator.h"
#include "tee/enclave.h"

int main() {
  using namespace recipe;

  sim::Simulator simulator;
  net::SimNetwork network(simulator, Rng(5));
  tee::TeePlatform platform(1);

  const auto measurement = crypto::Sha256::hash(as_view("recipe-replica"));
  attest::ClusterPlan plan;
  plan.replicas = {NodeId{1}, NodeId{2}, NodeId{3}};

  // Recipe CAS: attested service in the same datacenter.
  attest::AuthorityParams cas_params;
  cas_params.service_time = 150 * sim::kMillisecond;
  attest::AttestationAuthority cas(simulator, network, NodeId{1000},
                                   net::NetStackParams::direct_io_native(),
                                   cas_params);
  cas.register_platform(platform);
  cas.upload_plan(plan, measurement);

  // IAS: vendor service across the WAN with EPID verification latency.
  attest::AuthorityParams ias_params;
  ias_params.service_time = 2800 * sim::kMillisecond;
  net::NetStackParams wan = net::NetStackParams::kernel_native();
  wan.propagation_delay = 45 * sim::kMillisecond;
  attest::AttestationAuthority ias(simulator, network, NodeId{1002}, wan,
                                   ias_params);
  ias.register_platform(platform);
  ias.upload_plan(plan, measurement);

  double cas_mean = 0, ias_mean = 0;
  const int kRuns = 10;
  for (int run = 0; run < kRuns; ++run) {
    tee::Enclave e1(platform, "recipe-replica",
                    100 + static_cast<std::uint64_t>(run));
    rpc::RpcObject r1(simulator, network, NodeId{1},
                      net::NetStackParams::direct_io_native());
    attest::AttestationClient c1(r1, e1, nullptr);
    tee::Enclave e2(platform, "recipe-replica",
                    200 + static_cast<std::uint64_t>(run));
    rpc::RpcObject r2(simulator, network, NodeId{2},
                      net::NetStackParams::kernel_native());
    attest::AttestationClient c2(r2, e2, nullptr);

    cas.attest_and_provision(NodeId{1}, NodeId{1}, true,
                             [&](Status s, sim::Time t) {
                               if (s.is_ok()) {
                                 cas_mean += static_cast<double>(t);
                               }
                             });
    simulator.run_all();
    ias.attest_and_provision(NodeId{2}, NodeId{2}, true,
                             [&](Status s, sim::Time t) {
                               if (s.is_ok()) {
                                 ias_mean += static_cast<double>(t);
                               }
                             });
    simulator.run_all();
  }
  cas_mean /= kRuns * static_cast<double>(sim::kSecond);
  ias_mean /= kRuns * static_cast<double>(sim::kSecond);

  std::printf("Table 4: attestation latency (mean over %d runs)\n", kRuns);
  std::printf("  %-12s %8.3f s   (paper: 0.169 s)\n", "Recipe CAS", cas_mean);
  std::printf("  %-12s %8.3f s   (paper: 2.913 s)\n", "IAS", ias_mean);
  std::printf("  %-12s %7.1fx   (paper: 18.2x)\n", "Speedup",
              ias_mean / cas_mean);
  return 0;
}
