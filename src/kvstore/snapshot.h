// Sealed, versioned KV snapshots (paper §3.7 durability / crash recovery).
//
// A snapshot is the full (key, value, timestamp) state of a KvStore sealed
// for UNTRUSTED storage: the entry stream is ChaCha20-encrypted under the
// enclave SEALING key (nonce bound to the snapshot version) and the whole
// blob — a cleartext manifest {magic, version, entry count} plus the
// ciphertext — is HMAC'd under the same key. Only a re-launched instance of
// the same measured binary can open it.
//
// Rollback protection: the version is reserved from the platform's hardware
// monotonic counter (tee::Enclave::advance_snapshot_version). unseal only
// accepts a blob whose version EQUALS the counter's current value, so a host
// that re-feeds an older (validly sealed) snapshot is detected — the caller
// sees ErrorCode::kRollback and pins a stat.
//
// This layer is tee-agnostic on purpose: it takes the sealing key and the
// expected version as parameters so kvstore/ keeps no dependency on tee/.
// ReplicaNode::seal_snapshot()/restore_snapshot() bind the two together.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/hmac.h"
#include "kvstore/kvstore.h"

namespace recipe::kv {

// Cleartext snapshot manifest (covered by the blob MAC).
struct SnapshotManifest {
  std::uint64_t version{0};
  std::uint32_t entries{0};
};

// Reads a sealed blob's manifest WITHOUT authenticating it (the MAC check
// happens in unseal_snapshot). For logging/tests only — never trust it.
Result<SnapshotManifest> peek_snapshot_manifest(BytesView sealed);

// Serializes + seals the full store under `sealing_key` as snapshot
// `version`. The caller must have reserved `version` from the hardware
// rollback counter (Enclave::advance_snapshot_version) BEFORE sealing.
Bytes seal_snapshot(const KvStore& kv, const crypto::SymmetricKey& sealing_key,
                    std::uint64_t version);

struct SnapshotRestore {
  std::size_t installed{0};  // entries that moved local state forward
  std::uint64_t version{0};
};

// Verifies, decrypts and installs a sealed snapshot into `kv`.
//  * kAuthFailed      — truncated blob or MAC mismatch (tampering);
//  * kRollback        — version != `expected_version` (the current hardware
//                       counter): an old snapshot was re-fed;
//  * entries merge last-writer-wins by timestamp, so restoring over a
//    non-empty store never moves a key backwards.
Result<SnapshotRestore> unseal_snapshot(BytesView sealed,
                                        const crypto::SymmetricKey& sealing_key,
                                        std::uint64_t expected_version,
                                        KvStore& kv);

}  // namespace recipe::kv
