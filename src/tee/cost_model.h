// TEE cost model: converts enclave activity into simulated time.
//
// SUBSTITUTION (DESIGN.md §2): stands in for real SGX latencies. The model
// charges three effects the paper's evaluation hinges on:
//   1. enclave transitions (ecall/ocall) — expensive; SCONE's exitless calls
//      reduce but do not eliminate them;
//   2. crypto work per byte (MAC/hash/encrypt) inside the enclave;
//   3. EPC paging pressure — once the enclave working set exceeds the EPC,
//      accesses pay an encrypted-paging penalty. This drives the Fig. 3
//      value-size cliff and the Fig. 6a batching overheads.
// Defaults are calibrated to i9-9900K-era SGXv1 measurements from the
// literature (SCONE, ShieldStore, Treaty).
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/simulator.h"

namespace recipe::tee {

struct TeeCostParams {
  // One synchronous enclave transition (world switch).
  sim::Time transition_cost = 8 * sim::kMicrosecond;
  // Exitless (SCONE-style asynchronous) call overhead.
  sim::Time exitless_call_cost = 600 * sim::kNanosecond;

  // Crypto inside the enclave (per operation base + per byte).
  sim::Time mac_base = 250 * sim::kNanosecond;
  double mac_per_byte_ns = 0.45;
  sim::Time hash_base = 200 * sim::kNanosecond;
  double hash_per_byte_ns = 0.40;
  // Encryption adds an extra enclave-boundary copy and cache pollution on
  // top of the cipher itself (paper: confidentiality costs ~2x end to end).
  sim::Time encrypt_base = 800 * sim::kNanosecond;
  double encrypt_per_byte_ns = 2.0;

  // Memory: regular enclave access vs EPC-paging penalty.
  double enclave_copy_per_byte_ns = 0.12;
  std::uint64_t epc_size_bytes = 94ULL << 20;  // usable EPC on SGXv1
  sim::Time epc_page_fault_cost = 12 * sim::kMicrosecond;
  std::uint64_t page_size = 4096;

  // Scaling knob: 1.0 = hardware mode; 0.0 = simulation mode (paper's
  // "Scone sim" runs show ~native throughput when EPC is unlimited).
  double tee_tax = 1.0;
};

class TeeCostModel {
 public:
  TeeCostModel() = default;
  explicit TeeCostModel(TeeCostParams params) : p_(params) {}

  const TeeCostParams& params() const { return p_; }

  sim::Time transition() const { return scaled(p_.transition_cost); }
  sim::Time exitless_call() const { return scaled(p_.exitless_call_cost); }

  sim::Time mac(std::uint64_t bytes) const {
    return scaled(p_.mac_base +
                  ns(p_.mac_per_byte_ns * static_cast<double>(bytes)));
  }
  sim::Time hash(std::uint64_t bytes) const {
    return scaled(p_.hash_base +
                  ns(p_.hash_per_byte_ns * static_cast<double>(bytes)));
  }
  sim::Time encrypt(std::uint64_t bytes) const {
    return scaled(p_.encrypt_base +
                  ns(p_.encrypt_per_byte_ns * static_cast<double>(bytes)));
  }

  // Copying `bytes` through enclave memory while the enclave's resident
  // working set is `working_set_bytes`: beyond the EPC, a fraction of the
  // touched pages fault and pay the encrypted-paging cost.
  sim::Time enclave_copy(std::uint64_t bytes,
                         std::uint64_t working_set_bytes) const {
    sim::Time cost =
        ns(p_.enclave_copy_per_byte_ns * static_cast<double>(bytes));
    if (working_set_bytes > p_.epc_size_bytes && working_set_bytes > 0) {
      const double miss_ratio =
          static_cast<double>(working_set_bytes - p_.epc_size_bytes) /
          static_cast<double>(working_set_bytes);
      const double pages_touched =
          static_cast<double>(bytes) / static_cast<double>(p_.page_size) + 1.0;
      cost += ns(miss_ratio * pages_touched *
                 static_cast<double>(p_.epc_page_fault_cost));
    }
    return scaled(cost);
  }

 private:
  static sim::Time ns(double v) {
    return static_cast<sim::Time>(std::max(0.0, v));
  }
  sim::Time scaled(sim::Time t) const {
    return static_cast<sim::Time>(static_cast<double>(t) * p_.tee_tax);
  }

  TeeCostParams p_{};
};

}  // namespace recipe::tee
