// Figure 4: throughput of the four Recipe protocols vs PBFT (BFT-smart)
// across read/write ratios {50, 75, 90, 95, 99}% reads, 256B values, and the
// speedup table (left side of the figure).
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace recipe::bench;

  const std::vector<double> read_fractions = {0.50, 0.75, 0.90, 0.95, 0.99};

  std::printf(
      "Figure 4: throughput (Ops/s) and speedup vs PBFT, 256B values\n");
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "R%", "PBFT", "R-Raft", "R-CR",
              "R-AllConcur", "R-ABD");

  struct Row {
    double r;
    double pbft, raft, cr, allconcur, abd;
  };
  std::vector<Row> rows;

  for (double r : read_fractions) {
    ExperimentParams params;
    params.read_fraction = r;
    params.value_size = 256;
    Row row{};
    row.r = r;
    row.pbft = run_pbft(params).ops_per_sec;
    row.raft = run_raft(params).ops_per_sec;
    row.cr = run_cr(params).ops_per_sec;
    row.allconcur = run_allconcur(params).ops_per_sec;
    row.abd = run_abd(params).ops_per_sec;
    rows.push_back(row);
    std::printf("%-8.0f %12.0f %12.0f %12.0f %12.0f %12.0f\n", r * 100,
                row.pbft, row.raft, row.cr, row.allconcur, row.abd);
  }

  std::printf("\nSpeedup vs PBFT (paper reports 5.3x - 24x):\n");
  std::printf("%-8s %10s %10s %12s %10s\n", "R%", "R-ABD", "R-CR", "R-Raft",
              "R-AllConcur");
  for (const Row& row : rows) {
    std::printf("%-8.0f %9.1fx %9.1fx %11.1fx %9.1fx\n", row.r * 100,
                row.abd / row.pbft, row.cr / row.pbft, row.raft / row.pbft,
                row.allconcur / row.pbft);
  }
  return 0;
}
