#include "recipe/security.h"

#include "crypto/chacha20.h"
#include "crypto/hmac.h"

namespace recipe {

// --- NullSecurity ------------------------------------------------------------

Result<Bytes> NullSecurity::shield_frame(NodeId peer, ViewId view,
                                         BytesView payload,
                                         std::uint8_t flags) {
  ShieldedHeader header;
  header.view = view;
  header.cq = directed_channel(self_, peer);
  header.cnt = 0;
  header.sender = self_;
  header.receiver = peer;
  header.flags = flags;
  return encode_shielded_frame(header, payload, 0);
}

Result<Bytes> NullSecurity::shield(NodeId peer, ViewId view,
                                   BytesView payload) {
  return shield_frame(peer, view, payload, 0);
}

Result<Bytes> NullSecurity::shield_batch(NodeId peer, ViewId view,
                                         BytesView body) {
  return shield_frame(peer, view, body, ShieldedHeader::kFlagBatch);
}

Result<VerifiedEnvelope> NullSecurity::verify(
    NodeId claimed_sender, BytesView wire,
    std::optional<ViewId> require_view) {
  auto msg = ShieldedView::parse(wire);
  if (!msg) return msg.status();
  if (require_view && msg.value().header.view != *require_view) {
    return Status::error(ErrorCode::kWrongView, "view mismatch");
  }
  VerifiedEnvelope env;
  env.sender = claimed_sender;  // trusted blindly: this is the CFT baseline
  env.view = msg.value().header.view;
  env.cnt = msg.value().header.cnt;
  env.batch = msg.value().header.is_batch();
  env.payload.assign(msg.value().payload.begin(), msg.value().payload.end());
  return env;
}

// --- RecipeSecurity
// ------------------------------------------------------------

RecipeSecurity::RecipeSecurity(tee::Enclave& enclave, NodeId self,
                               const tee::TeeCostModel* cost_model,
                               net::NodeCpu* cpu, RecipeSecurityConfig config)
    : enclave_(enclave),
      self_(self),
      cost_model_(cost_model),
      cpu_(cpu),
      config_(std::move(config)) {}

RecipeSecurity::ChannelCrypto* RecipeSecurity::cached_channel_crypto(
    NodeId peer) {
  // A crashed enclave must refuse service even when a derived context is
  // cached: the keys notionally live inside the enclave (crash() does not
  // advance keyset_epoch — only restart()/re-provisioning do).
  if (enclave_.crashed()) return nullptr;
  const auto it = crypto_cache_.find(peer);
  if (it == crypto_cache_.end()) return nullptr;
  if (it->second.epoch != enclave_.keyset_epoch()) {
    crypto_cache_.erase(it);
    return nullptr;
  }
  return &it->second;
}

Result<RecipeSecurity::ChannelCrypto> RecipeSecurity::derive_channel_crypto(
    NodeId peer) {
  auto key = attest::enclave_channel_key(enclave_, self_, peer);
  if (!key) return key.status();
  ChannelCrypto cc;
  cc.key = std::move(key).take();
  cc.hmac = crypto::Hmac(cc.key.view());
  cc.epoch = enclave_.keyset_epoch();
  return cc;
}

Result<Bytes> RecipeSecurity::shield(NodeId peer, ViewId view,
                                     BytesView payload) {
  return shield_frame(peer, view, payload, 0);
}

Result<Bytes> RecipeSecurity::shield_batch(NodeId peer, ViewId view,
                                           BytesView body) {
  // The batch body is opaque here: one counter increment, one in-place
  // encryption pass and one MAC protect all of its sub-messages.
  return shield_frame(peer, view, body, ShieldedHeader::kFlagBatch);
}

Result<Bytes> RecipeSecurity::shield_frame(NodeId peer, ViewId view,
                                           BytesView payload,
                                           std::uint8_t extra_flags) {
  const ChannelId cq = directed_channel(self_, peer);

  // Trusted counter increment happens INSIDE the enclave: a crashed enclave
  // cannot shield, and counters never repeat (non-equivocation).
  auto cnt = enclave_.increment_counter(cq);
  if (!cnt) return cnt.status();
  // Shield targets are protocol members (not attacker-chosen), so caching
  // before use is safe here, unlike in verify().
  const ChannelCrypto* cc = cached_channel_crypto(peer);
  if (cc == nullptr) {
    auto derived = derive_channel_crypto(peer);
    if (!derived) return derived.status();
    cc = &(crypto_cache_[peer] = std::move(derived).take());
  }

  if (config_.confidentiality &&
      cnt.value() >= crypto::kChannelNonceMessageLimit) {
    // The 96-bit nonce binds (cq, cnt mod 2^32): past this bound the stream
    // would reuse a nonce under the same key. Refuse — continuing requires a
    // fresh channel key, i.e. re-attestation.
    return Status::error(ErrorCode::kInternal,
                         "channel nonce space exhausted; re-key required");
  }

  ShieldedHeader header;
  header.view = view;
  header.cq = cq;
  header.cnt = cnt.value();
  header.sender = self_;
  header.receiver = peer;
  header.flags = extra_flags;
  if (config_.confidentiality) header.flags |= ShieldedHeader::kFlagEncrypted;

  // Single-buffer fast path: the payload is copied exactly once (into the
  // wire buffer), encrypted in place, and MACed as the buffer prefix.
  Bytes wire = encode_shielded_frame(header, payload, crypto::kMacSize);

  if (config_.confidentiality) {
    const auto nonce = crypto::make_channel_nonce(cq.value, cnt.value());
    crypto::chacha20_xor(cc->key.view(), nonce, 0,
                         wire.data() + kShieldedPayloadOffset, payload.size());
    if (cost_model_ != nullptr) charge(cost_model_->encrypt(payload.size()));
  }

  write_frame_mac(wire, cc->hmac);

  if (cost_model_ != nullptr) {
    charge(cost_model_->exitless_call() + cost_model_->mac(payload.size()) +
           cost_model_->enclave_copy(payload.size(), working_set()));
  }
  return wire;
}

Result<VerifiedEnvelope> RecipeSecurity::verify(
    NodeId claimed_sender, BytesView wire, std::optional<ViewId> require_view) {
  auto parsed = ShieldedView::parse(wire);
  if (!parsed) {
    ++rejected_auth_;
    return parsed.status();
  }
  const ShieldedView& msg = parsed.value();

  // The header's sender/receiver are authenticated by the MAC; the network's
  // claimed source is advisory only. A mismatch is an impersonation attempt.
  if (msg.header.receiver != self_ || msg.header.sender != claimed_sender) {
    ++rejected_auth_;
    return Status::error(ErrorCode::kAuthFailed, "sender/receiver mismatch");
  }
  if (msg.header.cq != directed_channel(msg.header.sender, self_)) {
    ++rejected_auth_;
    return Status::error(ErrorCode::kAuthFailed, "channel id mismatch");
  }

  // Everything up to here is attacker-controlled, so the crypto context for
  // an unknown sender id is derived into a LOCAL and only committed to the
  // cache after the MAC verifies — otherwise forged frames with millions of
  // distinct sender ids would grow the cache without bound.
  const ChannelCrypto* cc = cached_channel_crypto(msg.header.sender);
  std::optional<ChannelCrypto> fresh;
  if (cc == nullptr) {
    auto derived = derive_channel_crypto(msg.header.sender);
    if (!derived) {
      ++rejected_auth_;
      return Status::error(ErrorCode::kNotAttested,
                           "no channel key for sender");
    }
    fresh = std::move(derived).take();
    cc = &*fresh;
  }

  if (cost_model_ != nullptr) {
    charge(cost_model_->exitless_call() + cost_model_->mac(msg.payload.size()) +
           cost_model_->enclave_copy(msg.payload.size(), working_set()));
  }

  // MAC over the borrowed wire prefix: no staging copy.
  {
    crypto::Sha256 inner = cc->hmac.begin();
    inner.update(msg.authenticated);
    const crypto::Mac expected = cc->hmac.finish(inner);
    if (!crypto::constant_time_equal(
            BytesView(expected.data(), expected.size()), msg.mac)) {
      ++rejected_auth_;
      return Status::error(ErrorCode::kAuthFailed, "MAC verification failed");
    }
  }
  // The sender proved key possession: NOW the context may be cached.
  if (fresh) {
    cc = &(crypto_cache_[msg.header.sender] = std::move(*fresh));
  }

  if (require_view && msg.header.view != *require_view) {
    ++rejected_view_;
    return Status::error(ErrorCode::kWrongView, "view mismatch");
  }

  VerifiedEnvelope env;
  env.sender = msg.header.sender;
  env.view = msg.header.view;
  env.cnt = msg.header.cnt;
  env.batch = msg.header.is_batch();
  // The single payload copy out of the wire buffer; decryption then runs
  // in place on the copy we keep.
  env.payload.assign(msg.payload.begin(), msg.payload.end());

  if (msg.header.encrypted()) {
    const auto nonce =
        crypto::make_channel_nonce(msg.header.cq.value, msg.header.cnt);
    crypto::chacha20_xor(cc->key.view(), nonce, 0, env.payload.data(),
                         env.payload.size());
    if (cost_model_ != nullptr) {
      charge(cost_model_->encrypt(env.payload.size()));
    }
  }

  ChannelState& ch = channels_[msg.header.cq];
  const Counter cnt = msg.header.cnt;

  if (config_.order == OrderPolicy::kStrict) {
    // Algorithm 1: cnt <= rcnt -> replay; cnt == rcnt+1 -> accept;
    // cnt > rcnt+1 -> buffer as future.
    if (cnt <= ch.rcnt) {
      ++rejected_replay_;
      return Status::error(ErrorCode::kReplay, "stale counter");
    }
    if (cnt == ch.rcnt + 1) {
      ch.rcnt = cnt;
      // Promote any directly-following buffered futures.
      auto it = ch.future.begin();
      while (it != ch.future.end() && it->first == ch.rcnt + 1) {
        ch.rcnt = it->first;
        ready_.push_back(std::move(it->second));
        it = ch.future.erase(it);
      }
      return env;
    }
    if (ch.future.size() >= config_.max_future_buffer) {
      ++rejected_overflow_;
      return Status::error(ErrorCode::kOutOfOrder, "future buffer full");
    }
    ++buffered_future_;
    ch.future.emplace(cnt, std::move(env));
    return Status::error(ErrorCode::kOutOfOrder, "future message buffered");
  }

  // Window mode: every counter accepted at most once; too-old rejected.
  if (!ch.window) ch.window.emplace(config_.replay_window);
  switch (ch.window->check_and_set(cnt)) {
    case ReplayWindow::Verdict::kStale:
      ++rejected_replay_;
      return Status::error(ErrorCode::kReplay, "counter below replay window");
    case ReplayWindow::Verdict::kDuplicate:
      ++rejected_replay_;
      return Status::error(ErrorCode::kReplay, "duplicate counter");
    case ReplayWindow::Verdict::kAccept:
      break;
  }
  return env;
}

std::vector<VerifiedEnvelope> RecipeSecurity::drain_ready() {
  return std::exchange(ready_, {});
}

void RecipeSecurity::reset_all() {
  channels_.clear();
  crypto_cache_.clear();
  ready_.clear();
}

void RecipeSecurity::reset_peer(NodeId peer) {
  channels_.erase(directed_channel(peer, self_));
  // Drop the cached crypto context too: the peer re-attested, so its channel
  // key must be re-derived from whatever the enclave now holds.
  crypto_cache_.erase(peer);
}

}  // namespace recipe
