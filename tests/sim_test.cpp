// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace recipe::sim {
namespace {

TEST(Simulator, TimeStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Simulator, SameTimeEventsAreFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(5, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  int fired = 0;
  s.schedule(10, [&] {
    EXPECT_EQ(s.now(), 10u);
    s.schedule(5, [&] {
      EXPECT_EQ(s.now(), 15u);
      ++fired;
    });
  });
  s.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule(10, [&] { ++fired; });
  s.schedule(100, [&] { ++fired; });
  const std::size_t executed = s.run_until(50);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 50u);  // clock advances to the deadline
  s.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForIsRelative) {
  Simulator s;
  s.schedule(10, [] {});
  s.run_all();
  EXPECT_EQ(s.now(), 10u);
  int fired = 0;
  s.schedule(10, [&] { ++fired; });
  s.run_for(5);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.now(), 15u);
  s.run_for(5);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelledTimerDoesNotFire) {
  Simulator s;
  int fired = 0;
  TimerHandle h = s.schedule(10, [&] { ++fired; });
  h.cancel();
  s.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator s;
  int fired = 0;
  TimerHandle h = s.schedule(10, [&] { ++fired; });
  s.run_all();
  h.cancel();  // must not crash
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelOneOfMany) {
  Simulator s;
  std::vector<int> order;
  s.schedule(10, [&] { order.push_back(1); });
  TimerHandle h = s.schedule(20, [&] { order.push_back(2); });
  s.schedule(30, [&] { order.push_back(3); });
  h.cancel();
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator s;
  int fired = 0;
  s.schedule(10, [&] { ++fired; });
  s.schedule(20, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, PeriodicSelfRescheduling) {
  Simulator s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) s.schedule(100, tick);
  };
  s.schedule(100, tick);
  s.run_all();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(s.now(), 500u);
}

TEST(Simulator, TimeUnitsCompose) {
  EXPECT_EQ(kMicrosecond, 1000u);
  EXPECT_EQ(kMillisecond, 1000u * 1000u);
  EXPECT_EQ(kSecond, 1000u * 1000u * 1000u);
}

}  // namespace
}  // namespace recipe::sim
