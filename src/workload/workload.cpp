#include "workload/workload.h"

#include <cstdio>

namespace recipe::workload {

std::string key_name(std::uint64_t item) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%08llu",
                static_cast<unsigned long long>(item));
  return buf;
}

Bytes make_value(std::size_t size, std::uint64_t salt) {
  Bytes value(size);
  std::uint64_t state = salt ^ 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < size; ++i) {
    value[i] = static_cast<std::uint8_t>(splitmix64(state));
  }
  return value;
}

ClosedLoopDriver::ClosedLoopDriver(std::vector<KvClient*> clients,
                                   WorkloadConfig config, Router router)
    : clients_(std::move(clients)),
      config_(config),
      router_(std::move(router)),
      zipf_(config.num_keys, config.zipf_theta),
      rng_(config.seed) {}

void ClosedLoopDriver::start() {
  running_ = true;
  for (std::size_t i = 0; i < clients_.size(); ++i) pump(i);
}

void ClosedLoopDriver::pump(std::size_t client_index) {
  if (!running_) return;
  KvClient& client = *clients_[client_index];
  const std::uint64_t op = op_index_++;
  const std::string key = key_name(zipf_.next(rng_));
  const bool is_read = rng_.chance(config_.read_fraction);
  auto next = [this, client_index](const ClientReply&) { pump(client_index); };

  if (is_read) {
    client.get(router_(OpType::kGet, op), key, std::move(next));
  } else {
    client.put(router_(OpType::kPut, op), key,
               make_value(config_.value_size, op), std::move(next));
  }
}

void ClosedLoopDriver::reset_stats() {
  for (KvClient* client : clients_) client->reset_stats();
}

std::uint64_t ClosedLoopDriver::completed() const {
  std::uint64_t total = 0;
  for (const KvClient* client : clients_) total += client->completed();
  return total;
}

std::uint64_t ClosedLoopDriver::failed() const {
  std::uint64_t total = 0;
  for (const KvClient* client : clients_) total += client->failed();
  return total;
}

Histogram ClosedLoopDriver::merged_latency_us() const {
  Histogram merged;
  for (const KvClient* client : clients_) merged.merge(client->latency_us());
  return merged;
}

}  // namespace recipe::workload
