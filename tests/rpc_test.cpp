// Unit tests for the eRPC-style RPC layer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/network.h"
#include "rpc/rpc.h"
#include "sim/simulator.h"

namespace recipe::rpc {
namespace {

constexpr RequestType kEcho = 1;
constexpr RequestType kUpper = 2;

struct Harness {
  sim::Simulator simulator;
  net::SimNetwork network{simulator, Rng(1)};
  RpcObject a{simulator, network, NodeId{1},
              net::NetStackParams::direct_io_native()};
  RpcObject b{simulator, network, NodeId{2},
              net::NetStackParams::direct_io_native()};

  Harness() {
    b.register_handler(kEcho, [](RequestContext& ctx) {
      ctx.respond(std::move(ctx.payload));
    });
    b.register_handler(kUpper, [](RequestContext& ctx) {
      std::string s = to_string(as_view(ctx.payload));
      for (char& c : s) c = static_cast<char>(std::toupper(c));
      ctx.respond(to_bytes(s));
    });
  }
};

TEST(Rpc, RequestResponseRoundTrip) {
  Harness h;
  std::string got;
  h.a.send(NodeId{2}, kEcho, to_bytes("ping"),
           [&](NodeId src, Bytes payload) {
             EXPECT_EQ(src, NodeId{2});
             got = to_string(as_view(payload));
           });
  h.simulator.run_all();
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(h.a.requests_sent(), 1u);
  EXPECT_EQ(h.a.responses_received(), 1u);
}

TEST(Rpc, HandlerDispatchByType) {
  Harness h;
  std::string got;
  h.a.send(NodeId{2}, kUpper, to_bytes("abc"),
           [&](NodeId, Bytes payload) { got = to_string(as_view(payload)); });
  h.simulator.run_all();
  EXPECT_EQ(got, "ABC");
}

TEST(Rpc, UnknownTypeSilentlyDropped) {
  Harness h;
  bool responded = false;
  h.a.send(NodeId{2}, 999, to_bytes("x"),
           [&](NodeId, Bytes) { responded = true; });
  h.simulator.run_all();
  EXPECT_FALSE(responded);
}

TEST(Rpc, FireAndForgetWorks) {
  Harness h;
  int received = 0;
  h.b.register_handler(3, [&](RequestContext&) { ++received; });
  for (int i = 0; i < 100; ++i) h.a.send(NodeId{2}, 3, to_bytes("x"));
  h.simulator.run_all();
  EXPECT_EQ(received, 100);  // no credit exhaustion for untracked sends
}

TEST(Rpc, TimeoutFiresWhenPeerCrashed) {
  Harness h;
  h.network.crash(NodeId{2});
  bool timed_out = false;
  bool responded = false;
  h.a.send(
      NodeId{2}, kEcho, to_bytes("ping"),
      [&](NodeId, Bytes) { responded = true; }, 10 * sim::kMillisecond,
      [&] { timed_out = true; });
  h.simulator.run_all();
  EXPECT_TRUE(timed_out);
  EXPECT_FALSE(responded);
  EXPECT_EQ(h.a.timeouts_fired(), 1u);
}

TEST(Rpc, ResponseCancelsTimeout) {
  Harness h;
  bool timed_out = false;
  std::string got;
  h.a.send(
      NodeId{2}, kEcho, to_bytes("ping"),
      [&](NodeId, Bytes p) { got = to_string(as_view(p)); },
      sim::kSecond, [&] { timed_out = true; });
  h.simulator.run_all();
  EXPECT_EQ(got, "ping");
  EXPECT_FALSE(timed_out);
}

TEST(Rpc, LateResponseAfterTimeoutDropped) {
  // Make the peer respond after the timeout by delaying via a slow handler
  // chain: crash then recover after the timeout, and ensure no crash occurs
  // when no pending entry exists.
  Harness h;
  int events = 0;
  h.a.send(
      NodeId{2}, kEcho, to_bytes("ping"), [&](NodeId, Bytes) { ++events; },
      1 * sim::kNanosecond,  // times out before any delivery is possible
      [&] { ++events; });
  h.simulator.run_all();
  EXPECT_EQ(events, 1);  // only the timeout fired; late response ignored
}

TEST(Rpc, CreditWindowQueuesExcessRequests) {
  sim::Simulator simulator;
  net::SimNetwork network{simulator, Rng(1)};
  RpcConfig config;
  config.session_credits = 2;
  RpcObject a{simulator, network, NodeId{1},
              net::NetStackParams::direct_io_native(), config};
  RpcObject b{simulator, network, NodeId{2},
              net::NetStackParams::direct_io_native()};
  b.register_handler(kEcho,
                     [](RequestContext& ctx) {
                       ctx.respond(std::move(ctx.payload));
                     });
  int responses = 0;
  for (int i = 0; i < 10; ++i) {
    a.send(NodeId{2}, kEcho, to_bytes("x"), [&](NodeId,
                                                Bytes) { ++responses; });
  }
  simulator.run_all();
  // All ten eventually complete; credits recycle as responses arrive.
  EXPECT_EQ(responses, 10);
}

TEST(Rpc, ConcurrentRequestsCorrelateCorrectly) {
  Harness h;
  std::vector<std::string> got(3);
  h.a.send(NodeId{2}, kEcho, to_bytes("one"),
           [&](NodeId, Bytes p) { got[0] = to_string(as_view(p)); });
  h.a.send(NodeId{2}, kUpper, to_bytes("two"),
           [&](NodeId, Bytes p) { got[1] = to_string(as_view(p)); });
  h.a.send(NodeId{2}, kEcho, to_bytes("three"),
           [&](NodeId, Bytes p) { got[2] = to_string(as_view(p)); });
  h.simulator.run_all();
  EXPECT_EQ(got[0], "one");
  EXPECT_EQ(got[1], "TWO");
  EXPECT_EQ(got[2], "three");
}

TEST(Rpc, MalformedPacketIgnored) {
  Harness h;
  // Inject garbage directly at the network layer.
  h.network.send(net::Packet{NodeId{1}, NodeId{2}, 0xE59C0001,
                             to_bytes("junk")});
  h.simulator.run_all();  // must not crash
  SUCCEED();
}

TEST(Rpc, BidirectionalTraffic) {
  Harness h;
  h.a.register_handler(kEcho,
                       [](RequestContext& ctx) {
                         ctx.respond(std::move(ctx.payload));
                       });
  std::string got_a, got_b;
  h.a.send(NodeId{2}, kEcho, to_bytes("from-a"),
           [&](NodeId, Bytes p) { got_a = to_string(as_view(p)); });
  h.b.send(NodeId{1}, kEcho, to_bytes("from-b"),
           [&](NodeId, Bytes p) { got_b = to_string(as_view(p)); });
  h.simulator.run_all();
  EXPECT_EQ(got_a, "from-a");
  EXPECT_EQ(got_b, "from-b");
}

TEST(Rpc, ShutdownDetachesFromNetwork) {
  Harness h;
  h.b.shutdown();
  bool timed_out = false;
  h.a.send(
      NodeId{2}, kEcho, to_bytes("x"), [](NodeId, Bytes) {},
      10 * sim::kMillisecond, [&] { timed_out = true; });
  h.simulator.run_all();
  EXPECT_TRUE(timed_out);
}

}  // namespace
}  // namespace recipe::rpc
