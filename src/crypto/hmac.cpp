#include "crypto/hmac.h"

#include <array>
#include <cstring>

namespace recipe::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;
}  // namespace

Hmac::Hmac(BytesView key) {
  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Sha256Digest kd = Sha256::hash(key);
    std::memcpy(key_block.data(), kd.data(), kd.size());
  } else if (!key.empty()) {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> pad;
  for (std::size_t i = 0; i < kBlockSize; ++i) pad[i] = key_block[i] ^ 0x36;
  inner_mid_.update(BytesView(pad.data(), pad.size()));
  for (std::size_t i = 0; i < kBlockSize; ++i) pad[i] = key_block[i] ^ 0x5c;
  outer_mid_.update(BytesView(pad.data(), pad.size()));
}

Mac Hmac::finish(Sha256& inner) const {
  const Sha256Digest inner_digest = inner.finalize();
  Sha256 outer = outer_mid_;
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}

Mac Hmac::mac(BytesView message) const {
  Sha256 inner = begin();
  inner.update(message);
  return finish(inner);
}

Mac Hmac::mac2(BytesView part1, BytesView part2) const {
  Sha256 inner = begin();
  inner.update(part1);
  inner.update(part2);
  return finish(inner);
}

bool Hmac::verify(BytesView message, BytesView expected_mac) const {
  const Mac m = mac(message);
  return constant_time_equal(BytesView(m.data(), m.size()), expected_mac);
}

Mac hmac_sha256(BytesView key, BytesView message) {
  return Hmac(key).mac(message);
}

Mac hmac_sha256_2(BytesView key, BytesView part1, BytesView part2) {
  return Hmac(key).mac2(part1, part2);
}

bool hmac_verify(BytesView key, BytesView message, BytesView expected_mac) {
  return Hmac(key).verify(message, expected_mac);
}

Bytes hkdf_sha256(BytesView input_key_material, BytesView salt, BytesView info,
                  std::size_t output_length) {
  // Extract.
  const Mac prk = Hmac(salt).mac(input_key_material);

  // Expand: one PRK key schedule shared by every T(i) block.
  const Hmac prk_hmac(BytesView(prk.data(), prk.size()));
  Bytes okm;
  okm.reserve(output_length);
  Mac t{};  // T(i-1)
  bool have_t = false;
  std::uint8_t counter = 1;
  while (okm.size() < output_length) {
    Sha256 inner = prk_hmac.begin();
    if (have_t) inner.update(BytesView(t.data(), t.size()));
    inner.update(info);
    inner.update(BytesView(&counter, 1));
    ++counter;
    t = prk_hmac.finish(inner);
    have_t = true;
    const std::size_t take = std::min(t.size(), output_length - okm.size());
    okm.insert(okm.end(), t.begin(),
               t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

}  // namespace recipe::crypto
