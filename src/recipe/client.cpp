#include "recipe/client.h"

#include <cassert>

namespace recipe {

KvClient::KvClient(sim::Simulator& simulator, net::SimNetwork& network,
                   ClientOptions options)
    : simulator_(simulator),
      options_(std::move(options)),
      rpc_(simulator, network, NodeId{options_.id.value}, options_.stack) {
  if (options_.secured) {
    assert(options_.enclave != nullptr && "secured client requires an enclave");
    RecipeSecurityConfig config;
    config.confidentiality = options_.confidentiality;
    security_ = std::make_unique<RecipeSecurity>(
        *options_.enclave, node_id(), /*cost_model=*/nullptr, /*cpu=*/nullptr,
        config);
  } else {
    security_ = std::make_unique<NullSecurity>(node_id());
  }

  // Replicas may coalesce replies to this client into batch frames: one
  // verify covers all of them, then each sub-response completes its rpc.
  rpc_.register_handler(msg::kBatch, [this](rpc::RequestContext& ctx) {
    auto env = security_->verify(ctx.src, as_view(ctx.payload));
    if (!env || !env.value().batch) return;
    auto view = BatchView::parse(as_view(env.value().payload));
    if (!view) return;
    for (const BatchItem& item : view.value()) {
      if (item.kind != BatchItem::kKindResponse) continue;  // clients serve nothing
      if (!rpc_.settle(item.rpc_id)) continue;  // timed out / already done
      VerifiedEnvelope sub;
      sub.sender = env.value().sender;
      sub.view = env.value().view;
      sub.cnt = env.value().cnt;
      sub.payload.assign(item.payload.begin(), item.payload.end());
      complete(item.rpc_id, sub);
    }
  });
}

void KvClient::complete(std::uint64_t rpc_id, VerifiedEnvelope& env) {
  const auto it = pending_replies_.find(rpc_id);
  if (it == pending_replies_.end()) return;
  auto handler = std::move(it->second);
  pending_replies_.erase(it);
  handler(env);
}

void KvClient::put(NodeId coordinator, std::string key, Bytes value,
                   ReplyCallback done) {
  ClientRequest request;
  request.client = options_.id;
  request.rid = RequestId{next_rid_++};
  request.op = OpType::kPut;
  request.key = std::move(key);
  request.value = std::move(value);
  ++issued_;
  issue(coordinator, std::move(request), std::move(done), 0);
}

void KvClient::get(NodeId coordinator, std::string key, ReplyCallback done) {
  ClientRequest request;
  request.client = options_.id;
  request.rid = RequestId{next_rid_++};
  request.op = OpType::kGet;
  request.key = std::move(key);
  ++issued_;
  issue(coordinator, std::move(request), std::move(done), 0);
}

void KvClient::issue(NodeId coordinator, ClientRequest request,
                     ReplyCallback done, int attempt) {
  auto wire = security_->shield(coordinator, ViewId{0},
                                as_view(request.serialize()));
  if (!wire) {
    ++failed_;
    if (done) done(ClientReply{});
    return;
  }

  const sim::Time started = simulator_.now();
  const std::uint64_t rpc_id = rpc_.allocate_rpc_id();
  pending_replies_[rpc_id] = [this, started, done](VerifiedEnvelope& env) {
    auto reply = ClientReply::parse(as_view(env.payload));
    if (!reply) return;
    latency_us_.record((simulator_.now() - started) / sim::kMicrosecond);
    if (reply.value().ok) {
      ++completed_;
    } else {
      ++failed_;
    }
    if (done) done(reply.value());
  };
  rpc_.send(
      coordinator, msg::kClientRequest, std::move(wire).take(),
      [this, rpc_id](NodeId src, Bytes response) {
        // The rpc is finished either way: detach the reply handler first so
        // no rejection path below can strand it in pending_replies_.
        const auto it = pending_replies_.find(rpc_id);
        if (it == pending_replies_.end()) return;
        auto handler = std::move(it->second);
        pending_replies_.erase(it);
        auto env = security_->verify(src, as_view(response));
        if (!env) return;  // forged reply: ignore
        if (env.value().batch) return;  // batch frames only enter via kBatch
        handler(env.value());
      },
      options_.request_timeout,
      [this, rpc_id, coordinator, request, done, attempt]() mutable {
        pending_replies_.erase(rpc_id);
        if (attempt + 1 >= options_.max_retries) {
          ++failed_;
          if (done) done(ClientReply{});
          return;
        }
        // Retransmit with the SAME request id: the coordinator's client
        // table deduplicates and may answer from cache.
        issue(coordinator, std::move(request), std::move(done), attempt + 1);
      },
      rpc_id);
}

}  // namespace recipe
