// Transport: the byte-moving seam between the replication stack and the
// machinery that actually delivers packets.
//
// The whole recipe stack (shield/verify, batching, RPC credits,
// recovery/rejoin) talks to this interface only, so the SAME protocol code
// runs over any substrate:
//   * net::SimNetwork                  — the deterministic discrete-event
//     network (delay/fault/adversary model, Fig. 6b cost accounting);
//   * transport::TcpTransport          — real epoll-driven TCP sockets, one
//     event-loop thread per transport, length-prefixed frames on the stream
//     (net/frame.h);
//   * transport::ShardedTcpTransport   — N TcpTransport event-loop shards
//     composed into one multi-core transport (SO_REUSEPORT accept spreading,
//     lock-free cross-shard handoff).
// Endpoint callbacks (packet delivery and Clock timers) are serialized PER
// ENDPOINT: single-threaded under the Simulator, loop-thread-affine under
// TcpTransport, home-shard-affine under ShardedTcpTransport — protocol code
// never needs its own locks. See ARCHITECTURE.md for the threading rules.
//
// Interface contract (what every implementation promises):
//  * Thread safety — attach/detach/attached/send/crash/recover/stats are
//    callable from any thread. Delivery handlers and timers for one endpoint
//    never run concurrently with each other.
//  * Ownership — the transport owns nothing of the caller's: handlers are
//    copied in at attach() and dropped at detach(); packets are moved in at
//    send() and never referenced after it returns.
//  * Error semantics — send() cannot fail. Every undeliverable packet (no
//    route, refused/reset connection, crashed endpoint, overload shed,
//    oversized frame) is a silent drop counted in packets_dropped();
//    recovery is the caller's retry/timeout machinery. The ONLY erroring
//    operations are the wiring calls that bind real resources (listen,
//    add_route on the TCP side), and those return Status/Result.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "net/frame.h"
#include "sim/clock.h"

namespace recipe::net {

// A network packet. `type` is an application-level message tag; `payload`
// is opaque serialized bytes (possibly shielded).
//
// Scatter form: `segments` (usually empty) carries additional payload
// pieces that follow `payload` on the wire. The logical payload is the
// concatenation payload || segments[0] || segments[1] || ... — transports
// that can gather-write (TcpTransport via sendmsg) ship the pieces without
// copying them together; anything else calls flatten() first. Framing,
// cost accounting and receivers only ever see the concatenated bytes.
// Drop precedence when an egress queue crosses its high watermark: higher
// values are shed first. Protocol-critical traffic (requests, acks,
// heartbeats) stays kNormal; client retransmits of an op the peer may
// already hold are kRetransmit; purely advisory traffic (RTT pacing
// probes) is kOptional. SimNetwork ignores priority — shedding is a
// real-socket overload behaviour, and the sim stays deterministic.
enum class PacketPriority : std::uint8_t {
  kNormal = 0,
  kRetransmit = 1,
  kOptional = 2,
};

struct Packet {
  NodeId src;
  NodeId dst;
  std::uint32_t type{0};
  Bytes payload;
  std::vector<Bytes> segments{};
  PacketPriority priority{PacketPriority::kNormal};

  // Total logical payload bytes across payload + segments.
  std::size_t payload_size() const {
    std::size_t total = payload.size();
    for (const Bytes& seg : segments) total += seg.size();
    return total;
  }

  // Collapses segments into `payload` (for substrates without gather I/O).
  void flatten() {
    if (segments.empty()) return;
    payload.reserve(payload_size());
    for (Bytes& seg : segments) append(payload, as_view(seg));
    segments.clear();
  }

  // Bytes this packet occupies on the wire: payload plus the per-packet
  // frame header — the REAL header net/frame.h puts on a TCP stream, shared
  // with the sim cost model so both substrates charge identical sizes.
  std::size_t wire_size() const { return payload_size() + kFrameHeaderSize; }
};

// Per-endpoint network stack cost model (simulation only; TcpTransport pays
// real syscall costs instead and ignores it).
struct NetStackParams {
  sim::Time send_cpu_base = 0;
  double send_cpu_per_byte_ns = 0.0;
  sim::Time recv_cpu_base = 0;
  double recv_cpu_per_byte_ns = 0.0;
  sim::Time propagation_delay = 5 * sim::kMicrosecond;  // one-way, same rack
  double bandwidth_gbps = 40.0;

  // Event-loop shards a real transport should run (ShardedTcpTransport).
  // 0 = auto: one shard per available core (hardware_concurrency), capped at
  // kMaxTransportShards. Ignored by SimNetwork (the sim is single-threaded
  // by construction) and by a standalone single-loop TcpTransport.
  unsigned transport_shards = 0;

  sim::Time send_cpu(std::size_t bytes) const;
  sim::Time recv_cpu(std::size_t bytes) const;
  sim::Time wire_time(std::size_t bytes) const;

  // Profiles used across the evaluation (Fig. 6b).
  static NetStackParams kernel_native();
  static NetStackParams kernel_tee();
  static NetStackParams direct_io_native();
  static NetStackParams direct_io_tee();
};

// Shard-count ceiling: beyond this, more epoll loops per transport just adds
// wakeup traffic and idle threads (and each shard pins an eventfd + epoll fd
// from the budget EMFILE shedding protects).
inline constexpr unsigned kMaxTransportShards = 16;

// Resolves a requested shard count against `params` and the machine:
// explicit request wins, then params.transport_shards, then one per
// available core; the result is clamped to [1, kMaxTransportShards].
unsigned resolve_transport_shards(unsigned requested,
                                  const NetStackParams& params);

// Tracks a node's CPU so message processing serializes and throughput
// saturates realistically. `cores` models a multi-core server as a fluid
// processor: with k cores, aggregate service capacity is k times one core
// (an M/D/k approximation good enough for saturation benchmarks).
// TcpTransport endpoints carry one too (protocol code charges modelled costs
// unconditionally) but nothing reads it back there — and under the staged
// egress pipeline charge() may run on ANY caller thread (shielding happens
// before post()), so the accumulator is atomic. reserve()/sync_to() remain
// read-modify-write sequences: they are simulator-side APIs, called only
// from the single-threaded event loop.
class NodeCpu {
 public:
  NodeCpu() = default;
  // Copies transfer the accumulator value (endpoint setup/teardown paths;
  // never concurrent with hot-path charge()).
  NodeCpu(const NodeCpu& other)
      : free_at_(other.free_at()), cores_(other.cores_) {}
  NodeCpu& operator=(const NodeCpu& other) {
    free_at_.store(other.free_at(), std::memory_order_relaxed);
    cores_ = other.cores_;
    return *this;
  }

  // Reserves `duration` of CPU work starting no earlier than `ready`;
  // returns the completion time. Simulator thread only.
  sim::Time reserve(sim::Time ready, sim::Time duration) {
    const sim::Time start =
        std::max(ready, free_at_.load(std::memory_order_relaxed));
    const sim::Time done = start + scaled(duration);
    free_at_.store(done, std::memory_order_relaxed);
    return done;
  }

  // Charges `duration` of work immediately (from inside a running handler,
  // or — under TcpTransport — from a caller thread shielding a batch).
  void charge(sim::Time duration) {
    free_at_.fetch_add(scaled(duration), std::memory_order_relaxed);
  }

  sim::Time free_at() const {
    return free_at_.load(std::memory_order_relaxed);
  }
  // Simulator thread only.
  void sync_to(sim::Time t) {
    free_at_.store(std::max(free_at_.load(std::memory_order_relaxed), t),
                   std::memory_order_relaxed);
  }

  void set_cores(unsigned cores) { cores_ = cores == 0 ? 1 : cores; }
  unsigned cores() const { return cores_; }

 private:
  sim::Time scaled(sim::Time duration) const { return duration / cores_; }

  std::atomic<sim::Time> free_at_{0};
  unsigned cores_{1};
};

class Transport {
 public:
  using DeliveryHandler = std::function<void(Packet&&)>;

  virtual ~Transport() = default;

  // The time source endpoints of this transport must schedule against: the
  // Simulator for SimNetwork, the loop-thread TimerQueue for TcpTransport.
  virtual sim::Clock& clock() = 0;

  // Registers a node endpoint with its stack model and receive handler.
  virtual void attach(NodeId id, NetStackParams stack,
                      DeliveryHandler handler) = 0;
  virtual void detach(NodeId id) = 0;
  virtual bool attached(NodeId id) const = 0;

  // Sends a packet from a local endpoint (packet.src must be attached).
  // Unreachable destinations are dropped, never an error: the stack treats
  // every loss identically (timeouts + retries). Implementations that do
  // not understand `packet.segments` must flatten() before use.
  virtual void send(Packet packet) = 0;

  // Sends a scatter packet (payload + segments). Transports with real
  // gather I/O (TcpTransport: sendmsg/writev) override this to ship the
  // segments without coalescing them; the default collapses to send().
  virtual void send_gather(Packet packet) {
    packet.flatten();
    send(std::move(packet));
  }

  // The endpoint's modelled CPU (simulation cost accounting; a plain
  // accumulator under TcpTransport).
  virtual NodeCpu& cpu(NodeId id) = 0;

  // Backpressure probe: true when this transport's egress toward `dst` is
  // above its high watermark and new low-value traffic would be shed.
  // Callers (RPC admission, clients) use it to fail fast with kOverloaded
  // instead of queueing into a congested link. Default: never overloaded
  // (SimNetwork has infinite queues by design).
  virtual bool overloaded(NodeId /*dst*/) const { return false; }

  // Crash a node: all traffic to/from it disappears until recover(). Under
  // SimNetwork this also invalidates in-flight frames; under TcpTransport it
  // closes the endpoint's connections and listener (a machine failure empties
  // its NIC/kernel buffers either way).
  virtual void crash(NodeId id) = 0;
  virtual void recover(NodeId id) = 0;
  virtual bool is_crashed(NodeId id) const = 0;

  // --- Statistics ----------------------------------------------------------
  virtual std::uint64_t packets_sent() const = 0;
  virtual std::uint64_t packets_delivered() const = 0;
  virtual std::uint64_t packets_dropped() const = 0;
  virtual std::uint64_t bytes_sent() const = 0;
};

}  // namespace recipe::net
