// Wire-format pinning for the shielded-message fast path.
//
// The single-buffer encoder (encode_shielded_frame + write_frame_mac) must
// emit byte-identical frames to the historical Writer-based
// ShieldedMessage::serialize() pipeline. Three layers of proof:
//  1. golden vectors: hex frames captured from the PRE-refactor
//     RecipeSecurity::shield() / NullSecurity::shield() / serialize()
//     binaries, asserted against the live implementations;
//  2. a randomized differential test pitting encode_shielded_frame against
//     a reference reimplementation of the old serialize() (including frames
//     with the encrypted flag and arbitrary "ciphertext" payloads);
//  3. ShieldedView::parse vs ShieldedMessage::parse equivalence, including
//     rejection of truncated/trailing-garbage frames.
#include <gtest/gtest.h>

#include <random>

#include "attest/bundle.h"
#include "common/serde.h"
#include "recipe/security.h"
#include "tee/platform.h"

namespace recipe {
namespace {

// --- 1. golden vectors captured from the pre-refactor implementation --------

// Fixture state identical to the capture program: cluster root = 32 x 0x77,
// sender NodeId{1}, receiver NodeId{2}.
struct GoldenFixture : public ::testing::Test {
  tee::TeePlatform platform{1};
  tee::Enclave enclave_a{platform, "code", 1};
  crypto::SymmetricKey root{Bytes(32, 0x77)};

  void SetUp() override {
    ASSERT_TRUE(enclave_a.install_secret(attest::kClusterRootName,
                                         root).is_ok());
  }
};

TEST_F(GoldenFixture, RecipeShieldMatchesPreRefactorFrame) {
  RecipeSecurity a(enclave_a, NodeId{1}, nullptr, nullptr, {});
  auto w1 = a.shield(NodeId{2}, ViewId{7}, as_view("hello golden vector"));
  ASSERT_TRUE(w1.is_ok());
  EXPECT_EQ(to_hex(as_view(w1.value())),
            "0700000000000000020010000000000001000000000000000100000000000000"
            "0200000000000000001300000068656c6c6f20676f6c64656e20766563746f72"
            "20000000d013ee424bfd4bc97429feca1e06f26abd340b2e0dcdc17075053a60"
            "2c5f094d");
  // Second message on the channel (cnt=2), empty payload.
  auto w2 = a.shield(NodeId{2}, ViewId{7}, BytesView{});
  ASSERT_TRUE(w2.is_ok());
  EXPECT_EQ(to_hex(as_view(w2.value())),
            "0700000000000000020010000000000002000000000000000100000000000000"
            "0200000000000000000000000020000000"
            "4b93a3c44a67470dac309890e43c492ba40415abc0d5ff3804ee643392d5c0f8");
}

TEST(WireGolden, NullShieldMatchesPreRefactorFrame) {
  NullSecurity n(NodeId{1});
  auto w = n.shield(NodeId{2}, ViewId{0}, as_view("null frame"));
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(to_hex(as_view(w.value())),
            "0000000000000000020010000000000000000000000000000100000000000000"
            "0200000000000000000a0000006e756c6c206672616d6500000000");
}

TEST(WireGolden, EncryptedFlagFramingMatchesPreRefactorSerialize) {
  // Fixed pseudo-ciphertext payload: pins the frame layout (including the
  // encrypted flag and large 64-bit ids) independent of any nonce scheme.
  ShieldedMessage m;
  m.header.view = ViewId{3};
  m.header.cq = ChannelId{0xDEADBEEFCAFEF00Dull};
  m.header.cnt = 42;
  m.header.sender = NodeId{0x123456789ABCDEFull};
  m.header.receiver = NodeId{0xFEDCBA987654321ull};
  m.header.flags = ShieldedHeader::kFlagEncrypted;
  for (int i = 0; i < 13; ++i) {
    m.payload.push_back(static_cast<std::uint8_t>(i * 17));
  }
  m.mac = Bytes(32, 0x5C);

  const char* expected_frame =
      "03000000000000000df0fecaefbeadde2a00000000000000efcdab8967452301"
      "21436587a9cbed0f010d00000000112233445566778899aabbcc200000005c5c"
      "5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c5c";
  EXPECT_EQ(to_hex(as_view(m.serialize())), expected_frame);

  // The single-buffer encoder emits the same bytes.
  Bytes fast = encode_shielded_frame(m.header, as_view(m.payload),
                                     m.mac.size());
  std::copy(m.mac.begin(), m.mac.end(), fast.end() - 32);
  EXPECT_EQ(to_hex(as_view(fast)), expected_frame);

  // And its MAC coverage prefix equals the old authenticated_data() bytes.
  EXPECT_EQ(to_hex(as_view(m.authenticated_data())),
            "03000000000000000df0fecaefbeadde2a00000000000000efcdab8967452301"
            "21436587a9cbed0f010d00000000112233445566778899aabbcc");
  auto view = ShieldedView::parse(as_view(fast));
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(to_hex(view.value().authenticated),
            to_hex(as_view(m.authenticated_data())));
}

// --- 2. randomized differential vs a reference of the old encoder -----------

Bytes reference_serialize(const ShieldedHeader& h, BytesView payload,
                          BytesView mac) {
  // Verbatim logic of the pre-refactor ShieldedMessage::serialize().
  Writer w(payload.size() + mac.size() + 56);
  w.id(h.view);
  w.id(h.cq);
  w.u64(h.cnt);
  w.id(h.sender);
  w.id(h.receiver);
  w.u8(h.flags);
  w.bytes(payload);
  w.bytes(mac);
  return std::move(w).take();
}

TEST(WireGolden, RandomizedEncoderEquivalence) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int iter = 0; iter < 500; ++iter) {
    ShieldedHeader h;
    h.view = ViewId{rng()};
    h.cq = ChannelId{rng()};
    h.cnt = rng();
    h.sender = NodeId{rng()};
    h.receiver = NodeId{rng()};
    h.flags = static_cast<std::uint8_t>(rng() & 0x01);  // incl. encrypted
    Bytes payload(rng() % 300);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    const std::size_t mac_size = (iter % 2 == 0) ? crypto::kMacSize : 0;
    Bytes mac(mac_size);
    for (auto& b : mac) b = static_cast<std::uint8_t>(rng());

    Bytes fast = encode_shielded_frame(h, as_view(payload), mac_size);
    std::copy(mac.begin(), mac.end(),
              fast.end() - static_cast<std::ptrdiff_t>(mac_size));
    EXPECT_EQ(fast, reference_serialize(h, as_view(payload), as_view(mac)));

    // 3. Both parsers agree on the frame.
    auto owned = ShieldedMessage::parse(as_view(fast));
    auto view = ShieldedView::parse(as_view(fast));
    ASSERT_TRUE(owned.is_ok());
    ASSERT_TRUE(view.is_ok());
    EXPECT_EQ(view.value().header.cq, owned.value().header.cq);
    EXPECT_EQ(view.value().header.cnt, owned.value().header.cnt);
    EXPECT_EQ(view.value().header.flags, owned.value().header.flags);
    EXPECT_EQ(Bytes(view.value().payload.begin(), view.value().payload.end()),
              owned.value().payload);
    EXPECT_EQ(Bytes(view.value().mac.begin(), view.value().mac.end()),
              owned.value().mac);
  }
}

TEST(WireGolden, ViewParserRejectsWhatOwnedParserRejects) {
  ShieldedMessage msg;
  msg.payload = to_bytes("x");
  msg.mac = Bytes(32, 0xAA);
  const Bytes wire = msg.serialize();

  // Truncations at every boundary.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const BytesView prefix(wire.data(), cut);
    EXPECT_FALSE(ShieldedView::parse(prefix).is_ok()) << "cut=" << cut;
    EXPECT_FALSE(ShieldedMessage::parse(prefix).is_ok()) << "cut=" << cut;
  }
  // Trailing garbage.
  Bytes extended = wire;
  extended.push_back(0x00);
  EXPECT_FALSE(ShieldedView::parse(as_view(extended)).is_ok());
  EXPECT_FALSE(ShieldedMessage::parse(as_view(extended)).is_ok());
  // Intact frame parses.
  EXPECT_TRUE(ShieldedView::parse(as_view(wire)).is_ok());
}

// --- shield/verify round trips stay compatible across codec paths ----------

TEST_F(GoldenFixture, OwnedParserStillVerifiableAgainstFastShield) {
  // A frame produced by the fast encoder re-serialized through the owning
  // ShieldedMessage round-trips to identical bytes (proxy for any tooling
  // that captures, parses and re-emits traffic).
  RecipeSecurity a(enclave_a, NodeId{1}, nullptr, nullptr, {});
  auto wire = a.shield(NodeId{2}, ViewId{1}, as_view("reserialize me"));
  ASSERT_TRUE(wire.is_ok());
  auto owned = ShieldedMessage::parse(as_view(wire.value()));
  ASSERT_TRUE(owned.is_ok());
  EXPECT_EQ(owned.value().serialize(), wire.value());
}

}  // namespace
}  // namespace recipe
