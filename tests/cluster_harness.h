// Shared test harness: builds an n-replica cluster of any protocol node type
// plus attested clients, with secrets pre-provisioned (the CAS flow itself is
// covered by attest_test and the integration test).
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "attest/bundle.h"
#include "attest/cas.h"
#include "net/network.h"
#include "obs/flight_recorder.h"
#include "recipe/client.h"
#include "recipe/node_base.h"
#include "recipe/recovery.h"
#include "sim/simulator.h"
#include "tee/enclave.h"
#include "tee/platform.h"

namespace recipe::testing {

// Seed resolution for randomized tests: RECIPE_TEST_SEED (any base strtoull
// accepts) overrides the test's own seed, so a failing fuzz/sweep run can be
// replayed exactly. The resolved seed is printed with every failure via the
// ScopedTrace the Cluster installs (standalone tests should SCOPED_TRACE it
// themselves).
inline std::uint64_t resolved_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("RECIPE_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') return v;
  }
  return fallback;
}

inline std::string seed_trace_message(std::uint64_t seed) {
  return "randomized run: replay with RECIPE_TEST_SEED=" + std::to_string(seed);
}

// Scope guard for randomized/chaos tests: when the enclosing test has a
// gtest failure at scope exit, dumps the global flight recorder to
// flight_recorder_<TestSuite>.<TestName>.json in the working directory and
// prints the path right next to the RECIPE_TEST_SEED replay stamp, so the
// per-op trace rides along with the seed in CI failure artifacts.
class FlightRecorderDumpOnFailure {
 public:
  FlightRecorderDumpOnFailure() = default;
  FlightRecorderDumpOnFailure(const FlightRecorderDumpOnFailure&) = delete;
  FlightRecorderDumpOnFailure& operator=(const FlightRecorderDumpOnFailure&) =
      delete;
  ~FlightRecorderDumpOnFailure() {
    if (!::testing::Test::HasFailure()) return;
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = "unknown";
    if (info != nullptr) {
      name = std::string(info->test_suite_name()) + "." + info->name();
    }
    const std::string path = "flight_recorder_" + name + ".json";
    if (obs::FlightRecorder::global().dump_json_to(path)) {
      std::fprintf(stderr, "flight recorder dumped to %s\n", path.c_str());
    }
  }
};

template <typename Node>
class Cluster {
 public:
  struct Config {
    std::size_t num_replicas = 3;
    bool secured = true;
    bool confidentiality = false;
    sim::Time heartbeat_period = 0;  // 0: no failure detector traffic
    // Phi-accrual suspicion layer over the lease floor (0 = lease-only).
    double phi_threshold = 0.0;
    std::uint64_t seed = 1;
    BatchConfig batch{};  // forwarded to every replica
    // Stand up a real CAS (AttestationAuthority) on the network at
    // ReplicaOptions::cas_id; replicas are then provisioned with ITS cluster
    // root, so the full §3.7 re-attestation path (rejoin()) works.
    bool with_cas = false;
    // Sealed group-commit WAL (secured mode): every replica gets its own
    // in-memory WalStorage owned by the harness (deterministic sim, no
    // files), enabling shutdown_clean()/warm-restart paths in rejoin().
    bool durable_wal = false;
    kv::WalOptions wal{};
  };

  explicit Cluster(Config config = {})
      : config_(with_resolved_seed(config)),
        network_(simulator_, Rng(network_seed(config_.seed))) {
    for (std::size_t i = 0; i < config_.num_replicas; ++i) {
      membership_.push_back(NodeId{i + 1});
    }
    if (config_.with_cas) {
      attest::AuthorityParams params;
      params.service_time = sim::kMillisecond;  // in-DC CAS, test-sized
      cas_ = std::make_unique<attest::AttestationAuthority>(
          simulator_, network_, NodeId{1000},
          net::NetStackParams::direct_io_native(), params);
      cas_->register_platform(platform_);
      root_ = cas_->cluster_root();
      attest::ClusterPlan plan;
      plan.replicas = membership_;
      cas_->upload_plan(plan, crypto::Sha256::hash(as_view("recipe-replica")));
    }
  }

  // Builds node `i` (id i+1) with extra protocol options forwarded.
  template <typename... Extra>
  Node& add_node(std::size_t i, Extra&&... extra) {
    auto enclave = std::make_unique<tee::Enclave>(
        platform_, "recipe-replica", membership_[i].value);
    if (config_.secured) provision(*enclave);

    ReplicaOptions options;
    options.self = membership_[i];
    options.membership = membership_;
    options.secured = config_.secured;
    options.confidentiality = config_.confidentiality;
    options.enclave = enclave.get();
    options.heartbeat_period = config_.heartbeat_period;
    options.phi_threshold = config_.phi_threshold;
    options.stack = config_.secured ? net::NetStackParams::direct_io_tee()
                                    : net::NetStackParams::direct_io_native();
    options.batch = config_.batch;
    if (config_.confidentiality) {
      options.kv_config.value_encryption_key = value_key_;
    }
    if (config_.durable_wal && config_.secured) {
      while (wal_storage_.size() <= i) {
        wal_storage_.push_back(std::make_unique<kv::MemWalStorage>());
      }
      options.wal_storage = wal_storage_[i].get();
      options.wal = config_.wal;
    }

    enclaves_.push_back(std::move(enclave));
    nodes_.push_back(std::make_unique<Node>(simulator_, network_,
                                            std::move(options),
                                            std::forward<Extra>(extra)...));
    return *nodes_.back();
  }

  template <typename... Extra>
  void build(Extra&&... extra) {
    for (std::size_t i = 0; i < config_.num_replicas; ++i) {
      add_node(i, std::forward<Extra>(extra)...);
    }
    for (auto& node : nodes_) node->start();
  }

  KvClient& add_client(std::uint64_t client_id = 2000) {
    auto enclave = std::make_unique<tee::Enclave>(platform_, "recipe-client",
                                                  client_id);
    if (config_.secured) provision(*enclave);
    // Pre-provisioned clients still need the fresh-node notices.
    if (cas_) cas_->register_principal(NodeId{client_id});
    ClientOptions options;
    options.id = ClientId{client_id};
    options.secured = config_.secured;
    options.confidentiality = config_.confidentiality;
    options.enclave = enclave.get();
    client_enclaves_.push_back(std::move(enclave));
    clients_.push_back(
        std::make_unique<KvClient>(simulator_, network_, options));
    return *clients_.back();
  }

  // Crash replica i: machine-level failure (network + enclave).
  void crash(std::size_t i) { nodes_[i]->stop(); }

  // Orderly shutdown of replica i (durable_wal): flushes the group-commit
  // tail and seals the clean marker, so the next rejoin() is warm.
  Status shutdown_clean(std::size_t i) { return nodes_[i]->shutdown_clean(); }

  // Replica i's WAL storage (durable_wal only; null otherwise). Tests reach
  // in to tamper with segments/blobs for corruption/torn-write scenarios.
  kv::MemWalStorage* wal_storage(std::size_t i) {
    return i < wal_storage_.size() ? wal_storage_[i].get() : nullptr;
  }

  attest::AttestationAuthority& cas() { return *cas_; }

  // Full §3.7 rejoin of crashed replica i, synchronously driven: restart
  // the enclave, re-attest via the CAS, (optionally) restore a sealed
  // snapshot, shadow-join, stream state from `donor`, promote. Requires
  // Config::with_cas. Returns the driver's report or the first error.
  Result<RejoinReport> rejoin(std::size_t i, NodeId donor,
                              RejoinOptions options = {},
                              sim::Time max_wait = 30 * sim::kSecond) {
    if (!cas_) {
      return Status::error(ErrorCode::kInternal,
                           "Cluster::rejoin requires Config::with_cas");
    }
    options.donor = donor;
    drivers_.push_back(std::make_unique<RejoinDriver>(
        simulator_, *nodes_[i], *enclaves_[i], *cas_));
    // Shared, not stack-captured: the driver outlives this frame, and a
    // rejoin completing after the deadline would otherwise write through a
    // dangling reference on a later simulator step.
    auto result =
        std::make_shared<std::optional<Result<RejoinReport>>>(std::nullopt);
    drivers_.back()->rejoin(std::move(options),
                            [result](Result<RejoinReport> r) {
                              *result = std::move(r);
                            });
    const sim::Time deadline = simulator_.now() + max_wait;
    while (!*result && simulator_.now() < deadline && !simulator_.idle()) {
      simulator_.step();
    }
    if (!*result) {
      return Status::error(ErrorCode::kTimeout, "rejoin did not complete");
    }
    return std::move(**result);
  }

  Node& node(std::size_t i) { return *nodes_[i]; }
  std::size_t size() const { return nodes_.size(); }
  sim::Simulator& sim() { return simulator_; }
  net::SimNetwork& network() { return network_; }
  const std::vector<NodeId>& membership() const { return membership_; }
  tee::Enclave& enclave(std::size_t i) { return *enclaves_[i]; }
  const crypto::SymmetricKey& root() const { return root_; }
  tee::TeePlatform& platform() { return platform_; }

  void run_for(sim::Time duration) { simulator_.run_for(duration); }

  // Convenience synchronous-ish client ops: issue, then run the simulation
  // until the callback fired (or the deadline passed). Returns the reply.
  ClientReply put(KvClient& client, NodeId coordinator, const std::string& key,
                  const std::string& value) {
    ClientReply out;
    bool done = false;
    client.put(coordinator, key, to_bytes(value), [&](const ClientReply& r) {
      out = r;
      done = true;
    });
    run_until_done(done);
    return out;
  }

  ClientReply get(KvClient& client, NodeId coordinator,
                  const std::string& key) {
    ClientReply out;
    bool done = false;
    client.get(coordinator, key, [&](const ClientReply& r) {
      out = r;
      done = true;
    });
    run_until_done(done);
    return out;
  }

  void run_until_done(bool& flag, sim::Time max_wait = 10 * sim::kSecond) {
    const sim::Time deadline = simulator_.now() + max_wait;
    while (!flag && simulator_.now() < deadline && !simulator_.idle()) {
      simulator_.step();
    }
  }

 private:
  void provision(tee::Enclave& enclave) {
    ASSERT_TRUE_OR_ABORT(
        enclave.install_secret(attest::kClusterRootName, root_).is_ok());
    if (config_.confidentiality) {
      ASSERT_TRUE_OR_ABORT(
          enclave.install_secret(attest::kValueKeyName, value_key_).is_ok());
    }
  }
  static void ASSERT_TRUE_OR_ABORT(bool ok) {
    if (!ok) std::abort();
  }
  static Config with_resolved_seed(Config config) {
    config.seed = resolved_seed(config.seed);
    return config;
  }
  // The default seed maps to the historical network stream (Rng(99)) so
  // long-pinned deterministic tests keep their exact schedules.
  static std::uint64_t network_seed(std::uint64_t seed) {
    return seed == 1 ? 99 : seed;
  }

  Config config_;
  sim::Simulator simulator_;
  net::SimNetwork network_;
  // Appends the replay seed to every gtest failure within this cluster's
  // lifetime.
  ::testing::ScopedTrace seed_trace_{__FILE__, __LINE__,
                                     seed_trace_message(config_.seed)};
  tee::TeePlatform platform_{1};
  crypto::SymmetricKey root_{Bytes(32, 0x77)};
  crypto::SymmetricKey value_key_{Bytes(32, 0x44)};
  std::vector<NodeId> membership_;
  std::unique_ptr<attest::AttestationAuthority> cas_;
  std::vector<std::unique_ptr<tee::Enclave>> enclaves_;
  // Declared before nodes_ (destroyed after): a node's Wal references its
  // storage. Survives crash()/rejoin() cycles like a real disk would.
  std::vector<std::unique_ptr<kv::MemWalStorage>> wal_storage_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<RejoinDriver>> drivers_;
  std::vector<std::unique_ptr<tee::Enclave>> client_enclaves_;
  std::vector<std::unique_ptr<KvClient>> clients_;
};

}  // namespace recipe::testing
