// Quickstart: transform a CFT protocol (Raft) for Byzantine settings with
// Recipe and run a 3-replica cluster — the minimal end-to-end example.
//
// What this shows (paper Listing 1): the protocol implementation is
// UNCHANGED between native and Recipe mode; the transformation is the
// security policy the node is constructed with. Build & run:
// cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "attest/bundle.h"
#include "protocols/raft/raft.h"
#include "recipe/client.h"

using namespace recipe;

int main() {
  // --- Deployment substrate: simulator, network, TEE platform. ------------
  sim::Simulator simulator;
  net::SimNetwork network(simulator, Rng(42));
  tee::TeePlatform platform(/*platform_seed=*/1);

  // Secrets normally flow through the CAS attestation protocol (see
  // examples in tests/integration_test.cpp); here we pre-provision the
  // cluster root directly to keep the quickstart short.
  const crypto::SymmetricKey cluster_root{Bytes(32, 0x77)};
  const std::vector<NodeId> membership = {NodeId{1}, NodeId{2}, NodeId{3}};

  // --- Replicas: Raft, shielded by Recipe (secured = true). ---------------
  std::vector<std::unique_ptr<tee::Enclave>> enclaves;
  std::vector<std::unique_ptr<protocols::RaftNode>> replicas;
  protocols::RaftOptions raft;
  raft.initial_leader = NodeId{1};

  for (NodeId id : membership) {
    auto enclave =
        std::make_unique<tee::Enclave>(platform, "recipe-replica", id.value);
    (void)enclave->install_secret(attest::kClusterRootName, cluster_root);

    ReplicaOptions options;
    options.self = id;
    options.membership = membership;
    options.secured = true;          // <- the whole transformation
    options.enclave = enclave.get();
    options.stack = net::NetStackParams::direct_io_tee();

    replicas.push_back(std::make_unique<protocols::RaftNode>(
        simulator, network, std::move(options), raft));
    enclaves.push_back(std::move(enclave));
  }
  for (auto& replica : replicas) replica->start();

  // --- An attested client. --------------------------------------------------
  tee::Enclave client_enclave(platform, "recipe-client", 2000);
  (void)client_enclave.install_secret(attest::kClusterRootName, cluster_root);
  ClientOptions client_options;
  client_options.id = ClientId{2000};
  client_options.secured = true;
  client_options.enclave = &client_enclave;
  KvClient client(simulator, network, client_options);

  // --- PUT then GET through the R-Raft leader. -----------------------------
  client.put(NodeId{1}, "greeting", to_bytes("hello, byzantine world"),
             [&](const ClientReply& reply) {
               std::printf("PUT committed: %s\n", reply.ok ? "yes" : "no");
               client.get(NodeId{1}, "greeting", [](const ClientReply& get) {
                 std::printf("GET -> \"%s\"\n",
                             to_string(as_view(get.value)).c_str());
               });
             });
  simulator.run_for(2 * sim::kSecond);

  // Every replica holds the committed value, integrity-protected.
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    auto value = replicas[i]->kv().get("greeting");
    std::printf("replica %zu: %s\n", i + 1,
                value.is_ok() ? to_string(as_view(value.value().value)).c_str()
                              : value.status().to_string().c_str());
  }
  return 0;
}
