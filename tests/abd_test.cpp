// Protocol tests for (R-)ABD: quorum reads/writes, per-key linearizability,
// concurrent writers, crash tolerance, and native-vs-Recipe parity.
#include <gtest/gtest.h>

#include "cluster_harness.h"
#include "protocols/abd/abd.h"

namespace recipe::protocols {
namespace {

using testing::Cluster;

TEST(Abd, PutGetRoundTrip) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  auto put = cluster.put(client, NodeId{1}, "k", "v");
  EXPECT_TRUE(put.ok);
  auto get = cluster.get(client, NodeId{1}, "k");
  EXPECT_TRUE(get.ok);
  EXPECT_TRUE(get.found);
  EXPECT_EQ(to_string(as_view(get.value)), "v");
}

TEST(Abd, MissingKeyNotFound) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  auto get = cluster.get(client, NodeId{2}, "missing");
  EXPECT_TRUE(get.ok);
  EXPECT_FALSE(get.found);
}

TEST(Abd, ReadFromDifferentCoordinatorSeesWrite) {
  // Linearizability across coordinators: write via node 1, read via node 3.
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v1").ok);
  auto get = cluster.get(client, NodeId{3}, "k");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(to_string(as_view(get.value)), "v1");
}

TEST(Abd, SuccessiveWritesMonotone) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  for (int i = 1; i <= 10; ++i) {
    // Rotate coordinators: multi-writer.
    const NodeId coord{static_cast<std::uint64_t>(i % 3) + 1};
    ASSERT_TRUE(cluster.put(client, coord, "k", "v" + std::to_string(i)).ok);
    auto get = cluster.get(client, NodeId{(i % 3) ? 1u : 2u}, "k");
    EXPECT_EQ(to_string(as_view(get.value)), "v" + std::to_string(i));
  }
}

TEST(Abd, TimestampsOrderConcurrentWriters) {
  // Two clients write the same key via different coordinators concurrently;
  // afterwards every replica converges to a single winner.
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& c1 = cluster.add_client(2001);
  auto& c2 = cluster.add_client(2002);

  int done = 0;
  c1.put(NodeId{1}, "k", to_bytes("from-c1"),
         [&](const ClientReply&) { ++done; });
  c2.put(NodeId{2}, "k", to_bytes("from-c2"),
         [&](const ClientReply&) { ++done; });
  cluster.run_for(5 * sim::kSecond);
  ASSERT_EQ(done, 2);

  // All replicas agree on (value, ts) after quiescence.
  auto ts0 = cluster.node(0).kv().timestamp("k");
  auto v0 = cluster.node(0).kv().get("k");
  ASSERT_TRUE(ts0.has_value());
  ASSERT_TRUE(v0.is_ok());
  for (std::size_t i = 1; i < cluster.size(); ++i) {
    auto tsi = cluster.node(i).kv().timestamp("k");
    auto vi = cluster.node(i).kv().get("k");
    ASSERT_TRUE(tsi.has_value());
    EXPECT_EQ(*tsi, *ts0);
    EXPECT_EQ(vi.value().value, v0.value().value);
  }
  // And a subsequent read returns the winner.
  auto get = cluster.get(c1, NodeId{3}, "k");
  EXPECT_EQ(get.value, v0.value().value);
}

TEST(Abd, ToleratesOneCrashOutOfThree) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "before").ok);

  cluster.crash(2);  // node 3 down; majority {1,2} remains

  EXPECT_TRUE(cluster.put(client, NodeId{1}, "k", "after").ok);
  auto get = cluster.get(client, NodeId{2}, "k");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(to_string(as_view(get.value)), "after");
}

TEST(Abd, ReadRepairPropagatesNewestValue) {
  // Write with node 3 crashed, recover network-wise is not modeled here;
  // instead: write to majority {1,2}, then a read coordinated by node 2
  // must return the newest value even though node 3 never saw it.
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  cluster.crash(2);
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v9").ok);
  auto get = cluster.get(client, NodeId{2}, "k");
  EXPECT_EQ(to_string(as_view(get.value)), "v9");
}

TEST(Abd, FiveReplicasToleratesTwoCrashes) {
  Cluster<AbdNode>::Config config;
  config.num_replicas = 5;
  Cluster<AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
  cluster.crash(3);
  cluster.crash(4);
  EXPECT_TRUE(cluster.put(client, NodeId{2}, "k", "v2").ok);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{3}, "k").value)),
            "v2");
}

TEST(Abd, NativeModeSameSemantics) {
  // The identical protocol code runs with NullSecurity (native CFT).
  Cluster<AbdNode>::Config config;
  config.secured = false;
  Cluster<AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{2}, "k").value)), "v");
}

TEST(Abd, ConfidentialModeRoundTrip) {
  Cluster<AbdNode>::Config config;
  config.confidentiality = true;
  Cluster<AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "secret").ok);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{2}, "k").value)),
            "secret");
  // Host memory of every replica holds ciphertext only.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto ptr = cluster.node(i).kv().host_ptr("k");
    if (!ptr) continue;
    const Bytes raw = cluster.node(i).kv().host_arena().load(*ptr).value();
    EXPECT_NE(raw, to_bytes("secret"));
  }
}

TEST(Abd, ManyKeysManyClients) {
  Cluster<AbdNode> cluster;
  cluster.build();
  auto& c1 = cluster.add_client(2001);
  auto& c2 = cluster.add_client(2002);
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string key = "key" + std::to_string(i % 7);
    auto& client = (i % 2) ? c1 : c2;
    const NodeId coord{static_cast<std::uint64_t>(i % 3) + 1};
    client.put(coord, key, to_bytes("v" + std::to_string(i)),
               [&](const ClientReply& r) {
                 if (r.ok) ++completed;
               });
  }
  cluster.run_for(10 * sim::kSecond);
  EXPECT_EQ(completed, 20);
}

}  // namespace
}  // namespace recipe::protocols
