// Shared experiment runner for the paper-figure benchmarks.
//
// One function per evaluated system, each returning closed-loop throughput
// under a YCSB-style workload. Deployment parameters mirror the paper's
// testbed (§B.2): 3x 8-core SGX servers on 40GbE for Recipe/native runs;
// BFT-smart (PBFT) runs native over kernel sockets with 3f+1=4 replicas;
// Damysus runs on 2f+1=3 TEEs (SGX *simulation* mode in the paper, so no
// EPC-pressure charges) over kernel sockets.
#pragma once

#include <cstdio>
#include <string>

#include "bft/damysus/damysus.h"
#include "bft/pbft/pbft.h"
#include "protocols/abd/abd.h"
#include "protocols/allconcur/allconcur.h"
#include "protocols/cr/cr.h"
#include "protocols/raft/raft.h"
#include "workload/testbed.h"

namespace recipe::bench {

using workload::RunResult;
using workload::Testbed;
using workload::TestbedConfig;
using workload::WorkloadConfig;

struct ExperimentParams {
  std::size_t value_size = 256;
  double read_fraction = 0.9;
  bool confidentiality = false;
  // false = native CFT mode (no TEE, no shielding): the Fig. 6a baselines.
  bool secured = true;
  std::size_t num_clients = 32;
  sim::Time window = 120 * sim::kMillisecond;
};

inline WorkloadConfig make_workload(const ExperimentParams& p) {
  WorkloadConfig w;
  w.num_keys = 10000;
  w.zipf_theta = 0.99;
  w.read_fraction = p.read_fraction;
  w.value_size = p.value_size;
  return w;
}

inline TestbedConfig recipe_testbed(const ExperimentParams& p) {
  TestbedConfig config;
  config.num_replicas = 3;
  config.num_clients = p.num_clients;
  config.workload = make_workload(p);
  config.secured = p.secured;
  config.confidentiality = p.confidentiality;
  config.window = p.window;
  config.warmup = 40 * sim::kMillisecond;
  if (p.secured) {
    config.replica_stack = net::NetStackParams::direct_io_tee();
    config.use_cost_model = true;
    config.replica_cores = 8;
  } else {
    config.replica_stack = net::NetStackParams::direct_io_native();
    config.use_cost_model = false;
    config.enclave_runtime_bytes = 0;
    config.replica_cores = 8;
  }
  return config;
}

inline RunResult run_raft(const ExperimentParams& p) {
  TestbedConfig config = recipe_testbed(p);
  config.buffer_amplifier = 4;  // batching keeps several wire batches resident
  Testbed<protocols::RaftNode> testbed(config);
  protocols::RaftOptions raft;
  raft.initial_leader = NodeId{1};
  testbed.build(raft);
  testbed.preload();
  return testbed.run(Testbed<protocols::RaftNode>::route_all_to(NodeId{1}));
}

inline RunResult run_cr(const ExperimentParams& p) {
  TestbedConfig config = recipe_testbed(p);
  Testbed<protocols::ChainNode> testbed(config);
  testbed.build();
  testbed.preload();
  return testbed.run(testbed.route_head_tail());
}

inline RunResult run_abd(const ExperimentParams& p) {
  TestbedConfig config = recipe_testbed(p);
  Testbed<protocols::AbdNode> testbed(config);
  testbed.build();
  testbed.preload();
  return testbed.run(testbed.route_round_robin());
}

inline RunResult run_allconcur(const ExperimentParams& p) {
  TestbedConfig config = recipe_testbed(p);
  config.buffer_amplifier = 4;  // round batches from all nodes held in-enclave
  Testbed<protocols::AllConcurNode> testbed(config);
  // The evaluated R-AllConcur orders reads through the rounds (the paper
  // reports per-round message collection as its bottleneck even at 99%R,
  // which rules out free local reads; see EXPERIMENTS.md).
  protocols::AllConcurOptions options;
  options.linearizable_reads = true;
  testbed.build(options);
  testbed.preload();
  return testbed.run(testbed.route_round_robin());
}

// PBFT (BFT-smart configuration): 3f+1 = 4 replicas, native execution over
// kernel sockets, MAC-vector authenticators charged via the cost model,
// single ordering pipeline (2 effective cores, as in the Java codebase).
inline RunResult run_pbft(const ExperimentParams& p) {
  TestbedConfig config;
  config.num_replicas = 4;
  config.num_clients = p.num_clients;
  config.workload = make_workload(p);
  config.secured = false;
  config.confidentiality = false;
  config.replica_stack = net::NetStackParams::kernel_native();
  config.replica_cores = 2;
  config.use_cost_model = true;  // MAC authenticators only
  config.enclave_runtime_bytes = 0;
  config.window = p.window;
  config.warmup = 40 * sim::kMillisecond;
  Testbed<bft::PbftNode> testbed(config);
  testbed.build();
  testbed.preload();
  return testbed.run(Testbed<bft::PbftNode>::route_all_to(NodeId{1}));
}

// Damysus: 2f+1 = 3 replicas in TEEs (simulation mode: no EPC pressure),
// kernel sockets, synchronous trusted-component calls per message.
inline RunResult run_damysus(const ExperimentParams& p) {
  TestbedConfig config;
  config.num_replicas = 3;
  config.num_clients = p.num_clients;
  config.workload = make_workload(p);
  config.secured = true;
  config.confidentiality = false;
  config.replica_stack = net::NetStackParams::kernel_tee();
  config.replica_cores = 3;
  config.use_cost_model = true;
  config.enclave_runtime_bytes = 0;  // SGX simulation mode
  config.window = p.window;
  config.warmup = 40 * sim::kMillisecond;
  Testbed<bft::DamysusNode> testbed(config);
  testbed.build();
  testbed.preload();
  return testbed.run(Testbed<bft::DamysusNode>::route_all_to(NodeId{1}));
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void print_row(const std::string& name, double ops,
                      const char* extra = "") {
  std::printf("%-22s %12.0f ops/s  %s\n", name.c_str(), ops, extra);
}

}  // namespace recipe::bench
