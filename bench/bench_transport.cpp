// bench_transport: loopback TCP throughput and latency for the REAL
// transport — the staged egress pipeline's measurement harness.
//
// A 3-replica CR group runs over transport::TcpTransport (one epoll loop
// thread per replica + one for the client, real sockets, real time) and a
// closed-loop pipelined client measures msgs/sec and p50/p99 op latency
// across {shielded, null-security} x {unbatched, batched}, with the batched
// shielded point additionally swept across the two pacing modes:
//   * fixed — the legacy occupancy-adaptive flush delay;
//   * rtt   — flush delay re-paced to a fraction of the measured per-peer
//             RTT (BatchConfig::rtt_fraction).
// For every batched config the run also records each replica's converged
// per-peer RTT EWMA and autotuned flush delay (the `links` arrays) so the
// pacing loop's behavior is inspectable from the committed artifact.
//
// The run also sweeps the SHARDED transport: a raw shielded-echo workload
// (no replication protocol, so the transport and crypto are the only
// bottleneck) across shard counts x {shielded, null} x {batched,
// unbatched}, measuring how aggregate throughput grows as
// transport::ShardedTcpTransport spreads the same sessions over more
// event-loop shards. The headline `acceptance_shard_scaling_ok` gates the
// 8-shard/1-shard shielded speedup against a MACHINE-RELATIVE floor (a
// 2-core CI box cannot 3x; a 16-core box must not claim success at 1.1x),
// with the core count recorded in the artifact.
//
// Usage: bench_transport [out.json] [ops-per-config] [trials]
//
// Loopback throughput on a shared CI box is noisy, so every config runs
// `trials` times on a FRESH cluster and the best trial is reported: the
// committed baseline gates a hard floor on batched_over_unbatched_shielded
// (ci/check_bench_trajectory.py), and best-of-N is the standard way to
// measure capability rather than scheduler luck.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attest/bundle.h"
#include "cluster/tcp_cluster.h"
#include "obs/flight_recorder.h"
#include "recipe/message.h"
#include "recipe/security.h"
#include "tee/platform.h"
#include "transport/sharded_tcp_transport.h"

using namespace recipe;

namespace {

enum class Pacing { kNone, kFixed, kRtt };

const char* pacing_name(Pacing pacing) {
  switch (pacing) {
    case Pacing::kNone:
      return "none";
    case Pacing::kFixed:
      return "fixed";
    case Pacing::kRtt:
      return "rtt";
  }
  return "?";
}

struct LinkStats {
  std::uint64_t from{0};
  std::uint64_t to{0};
  double rtt_us{0};
  double flush_delay_us{0};
};

struct ConfigResult {
  std::string security;
  std::string batching;
  Pacing pacing{Pacing::kNone};
  std::size_t ops{0};
  double ops_per_sec{0};
  std::uint64_t p50_us{0};
  std::uint64_t p99_us{0};
  std::uint64_t failed{0};
  std::uint64_t packets_sent{0};
  std::vector<LinkStats> links;
};

ConfigResult run_trial(bool secured, Pacing pacing, std::size_t total_ops,
                       bool metrics = true) {
  cluster::TcpClusterOptions options;
  options.protocol = "cr";
  options.replicas = 3;
  options.secured = secured;
  options.metrics = metrics;
  // The metrics-off trial also silences the flight recorder: together they
  // reproduce the pre-observability cost profile (every handle a
  // branch-on-null no-op, every span a single relaxed load).
  obs::FlightRecorder::global().set_enabled(metrics);
  options.batch.enabled = pacing != Pacing::kNone;
  options.batch.max_count = 16;
  options.batch.max_delay = 50 * sim::kMicrosecond;  // real microseconds
  if (pacing == Pacing::kRtt) {
    // Budget the flush wait at half the measured round trip: a delay of
    // RTT/2 always stays hidden inside the round trip ahead of it, and the
    // occupancy walk adapts underneath that ceiling.
    options.batch.rtt_fraction = 0.5;
  }
  cluster::TcpCluster cluster(options);
  KvClient& client = cluster.add_client(4000);
  const NodeId coordinator = cluster.write_coordinator();

  constexpr std::size_t kPipeline = 64;
  const Bytes value(64, 0x5A);
  const double secs = cluster::drive_closed_loop_puts(
      cluster.client_home(0), client, coordinator, total_ops, kPipeline,
      value);

  ConfigResult result;
  result.security = secured ? "shielded" : "null";
  result.batching = pacing == Pacing::kNone ? "off" : "on";
  result.pacing = pacing;
  // A negative elapsed time means the run never completed (lost op): report
  // zero ops so the acceptance check fails instead of the job hanging.
  result.ops = secs < 0 ? 0 : total_ops;
  result.ops_per_sec =
      secs > 0 ? static_cast<double>(total_ops) / secs : 0.0;
  cluster.client_home(0).run_sync([&] {
    result.p50_us = client.latency_us().percentile(0.50);
    result.p99_us = client.latency_us().percentile(0.99);
    result.failed = client.failed();
  });
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    result.packets_sent += cluster.transport(i).packets_sent();
  }
  if (pacing != Pacing::kNone) {
    // Converged pacing state, queried on each replica's own loop thread.
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      cluster.run_on(i, [&] {
        MessageBatcher& batcher = cluster.node(i).batcher();
        for (NodeId peer : cluster.membership()) {
          if (peer == cluster.node(i).self()) continue;
          const sim::Time rtt = batcher.rtt_ewma(peer);
          if (rtt == 0) continue;  // never batched toward this peer
          LinkStats link;
          link.from = cluster.node(i).self().value;
          link.to = peer.value;
          link.rtt_us = static_cast<double>(rtt) / sim::kMicrosecond;
          link.flush_delay_us =
              static_cast<double>(batcher.current_delay(peer)) /
              sim::kMicrosecond;
          result.links.push_back(link);
        }
      });
    }
  }
  obs::FlightRecorder::global().set_enabled(true);
  return result;
}

// Chaos telemetry: the same shielded+paced stack with every link wrapped in
// a seed-replayable ChaosTransport. Reported for trend-watching only —
// NEVER part of acceptance_all_configs_ok and never gated by the CI
// trajectory check: fault injection makes throughput a weather report, not
// a capability claim. Replay a run with RECIPE_TEST_SEED=<seed>.
struct ChaosResult {
  std::uint64_t seed{0};
  std::size_t ops{0};
  double ops_per_sec{0};
  std::uint64_t failed{0};
  std::uint64_t dropped{0};
  std::uint64_t duplicated{0};
  std::uint64_t reordered{0};
  std::uint64_t delayed{0};
};

ChaosResult run_chaos_config(std::size_t total_ops) {
  cluster::TcpClusterOptions options;
  options.protocol = "cr";
  options.replicas = 3;
  options.secured = true;
  options.batch.enabled = true;
  options.batch.max_count = 16;
  options.batch.max_delay = 50 * sim::kMicrosecond;
  options.batch.rtt_fraction = 0.5;
  options.chaos = true;

  ChaosResult r;
  const char* env = std::getenv("RECIPE_TEST_SEED");
  r.seed = env != nullptr ? std::strtoull(env, nullptr, 10) : 0xC4A05;
  options.chaos_options.seed = r.seed;
  options.chaos_options.faults.latency = 100 * sim::kMicrosecond;
  options.chaos_options.faults.jitter = 300 * sim::kMicrosecond;
  options.chaos_options.faults.drop_rate = 0.01;
  options.chaos_options.faults.duplicate_rate = 0.01;
  options.chaos_options.faults.reorder_rate = 0.02;
  options.chaos_options.faults.reorder_window = sim::kMillisecond;

  cluster::TcpCluster cluster(options);
  KvClient& client = cluster.add_client(4100);
  const NodeId coordinator = cluster.write_coordinator();
  const Bytes value(64, 0x5A);
  const double secs = cluster::drive_closed_loop_puts(
      cluster.client_home(0), client, coordinator, total_ops,
      /*pipeline=*/64, value);
  r.ops = secs < 0 ? 0 : total_ops;
  r.ops_per_sec = secs > 0 ? static_cast<double>(total_ops) / secs : 0.0;
  cluster.client_home(0).run_sync([&] { r.failed = client.failed(); });
  for (std::size_t i = 0; i <= cluster.size(); ++i) {
    const transport::ChaosTransport* chaos =
        i < cluster.size() ? cluster.chaos(i) : cluster.client_chaos();
    if (chaos == nullptr) continue;
    r.dropped += chaos->chaos_dropped();
    r.duplicated += chaos->chaos_duplicated();
    r.reordered += chaos->chaos_reordered();
    r.delayed += chaos->chaos_delayed();
  }
  return r;
}

ConfigResult run_config(bool secured, Pacing pacing, std::size_t total_ops,
                        std::size_t trials, bool metrics = true) {
  ConfigResult best;
  for (std::size_t t = 0; t < trials; ++t) {
    ConfigResult r = run_trial(secured, pacing, total_ops, metrics);
    // A failed trial never wins; among clean trials the fastest does.
    const bool r_ok = r.failed == 0 && r.ops > 0;
    const bool best_ok = best.failed == 0 && best.ops > 0;
    if (t == 0 || (r_ok && !best_ok) ||
        (r_ok == best_ok && r.ops_per_sec > best.ops_per_sec)) {
      best = std::move(r);
    }
  }
  return best;
}

double ratio(double num, double den) { return den > 0 ? num / den : 0.0; }

// --- shard scaling sweep -----------------------------------------------------
//
// Raw request/reply echo over two ShardedTcpTransports (client side and
// server side), with REAL per-message crypto on both ends: the client
// shields every request, the server verifies and re-shields the echo, the
// client verifies the reply. No replication protocol, no KV store — the
// event loops and the crypto are the whole workload, so the shard count is
// the only variable the sweep moves.
//
// kScalingSessions independent client->server endpoint pairs are homed
// round-robin across the shards (sessions, not shards, are the unit of
// parallelism: at 1 shard all eight share one loop; at 8 shards they get a
// loop each). SO_REUSEPORT spreads the accepted connections across the
// server shards by 4-tuple hash, so the cross-shard delivery/egress hops
// are exercised whenever the kernel's pick disagrees with the home.

constexpr std::size_t kScalingSessions = 8;
constexpr std::size_t kScalingPipeline = 8;   // outstanding trips per session
constexpr std::size_t kScalingBatch = 16;     // sub-messages per batched trip

struct ScalingResult {
  unsigned shards{1};
  std::string security;
  std::string batching;
  std::size_t ops{0};  // completed sub-messages; 0 = trial failed/stalled
  double ops_per_sec{0};
  std::uint64_t failed{0};
};

ScalingResult run_scaling_trial(unsigned shards, bool secured, bool batched,
                                std::size_t total_ops) {
  const std::size_t per_trip = batched ? kScalingBatch : 1;
  const std::size_t trips_per_session =
      std::max<std::size_t>(1, total_ops / (kScalingSessions * per_trip));
  const std::uint64_t expected =
      trips_per_session * per_trip * kScalingSessions;

  struct Session {
    NodeId client{0};
    NodeId server{0};
    std::unique_ptr<tee::Enclave> client_enclave;
    std::unique_ptr<tee::Enclave> server_enclave;
    std::unique_ptr<SecurityPolicy> client_sec;
    std::unique_ptr<SecurityPolicy> server_sec;
    // Touched only on the session's home loops (issue/verify callbacks).
    std::size_t to_issue{0};
    std::uint64_t rpc_seq{0};
  };

  tee::TeePlatform platform{9};
  const crypto::SymmetricKey root{Bytes(32, 0x77)};
  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(kScalingSessions);
  for (std::size_t i = 0; i < kScalingSessions; ++i) {
    auto s = std::make_unique<Session>();
    s->client = NodeId{600 + i};
    s->server = NodeId{500 + i};
    s->to_issue = trips_per_session;
    if (secured) {
      s->client_enclave =
          std::make_unique<tee::Enclave>(platform, "code", 600 + i);
      s->server_enclave =
          std::make_unique<tee::Enclave>(platform, "code", 500 + i);
      if (!s->client_enclave->install_secret(attest::kClusterRootName, root)
               .is_ok() ||
          !s->server_enclave->install_secret(attest::kClusterRootName, root)
               .is_ok()) {
        std::abort();
      }
      s->client_sec = std::make_unique<RecipeSecurity>(
          *s->client_enclave, s->client, nullptr, nullptr);
      s->server_sec = std::make_unique<RecipeSecurity>(
          *s->server_enclave, s->server, nullptr, nullptr);
    } else {
      s->client_sec = std::make_unique<NullSecurity>(s->client);
      s->server_sec = std::make_unique<NullSecurity>(s->server);
    }
    sessions.push_back(std::move(s));
  }

  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  const Bytes value(64, 0x5A);

  transport::ShardedTcpTransportOptions transport_options;
  transport_options.shards = shards;
  transport::ShardedTcpTransport server_tp(transport_options);
  transport::ShardedTcpTransport client_tp(transport_options);

  // Issues one request trip for `s`; runs on the session's client home loop
  // (initial kickoff marshals there, afterwards it is the reply callback).
  std::function<void(Session&)> issue = [&](Session& s) {
    if (s.to_issue == 0) return;
    --s.to_issue;
    Result<Bytes> wire = [&]() -> Result<Bytes> {
      if (!batched) {
        return s.client_sec->shield(s.server, ViewId{1}, as_view(value));
      }
      BatchFrame frame;
      for (std::size_t k = 0; k < kScalingBatch; ++k) {
        frame.add(0, 0, ++s.rpc_seq, as_view(value));
      }
      const Bytes body = frame.take_body();
      return s.client_sec->shield_batch(s.server, ViewId{1}, as_view(body));
    }();
    if (!wire) {
      failed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    net::Packet packet;
    packet.src = s.client;
    packet.dst = s.server;
    packet.payload = std::move(wire).take();
    client_tp.send(std::move(packet));
  };

  for (std::size_t i = 0; i < kScalingSessions; ++i) {
    Session* s = sessions[i].get();
    // Echo endpoint: verify, re-shield the same payload (the batch body
    // round-trips as a batch), reply toward the authenticated sender.
    server_tp.attach(s->server, {}, [&, s](net::Packet&& p) {
      auto env = s->server_sec->verify(p.src, as_view(p.payload));
      if (!env) {
        failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      VerifiedEnvelope e = std::move(env).take();
      Result<Bytes> reply =
          e.batch ? s->server_sec->shield_batch(e.sender, ViewId{1},
                                                as_view(e.payload))
                  : s->server_sec->shield(e.sender, ViewId{1},
                                          as_view(e.payload));
      if (!reply) {
        failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      net::Packet out;
      out.src = s->server;
      out.dst = e.sender;
      out.payload = std::move(reply).take();
      server_tp.send(std::move(out));
    });
    auto port = server_tp.listen(s->server, 0);
    if (!port) std::abort();
    client_tp.attach(s->client, {}, [&, s](net::Packet&& p) {
      auto env = s->client_sec->verify(p.src, as_view(p.payload));
      if (!env || env.value().batch != batched) {
        failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      completed.fetch_add(per_trip, std::memory_order_relaxed);
      issue(*s);
    });
    if (!client_tp.add_route(s->server, "127.0.0.1", port.value()).is_ok()) {
      std::abort();
    }
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  for (auto& s : sessions) {
    client_tp.home(s->client).run_sync([&] {
      for (std::size_t k = 0; k < kScalingPipeline && s->to_issue > 0; ++k) {
        issue(*s);
      }
    });
  }

  // Bounded wait: a lost completion or a verify failure must fail the trial
  // loudly (ops = 0 -> acceptance false), never hang the job.
  const auto deadline = start + std::chrono::seconds(60);
  while (completed.load(std::memory_order_relaxed) < expected &&
         failed.load(std::memory_order_relaxed) == 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  // Join every loop before the sessions (captured by the handlers above) go
  // out of scope.
  client_tp.stop();
  server_tp.stop();

  ScalingResult result;
  result.shards = shards;
  result.security = secured ? "shielded" : "null";
  result.batching = batched ? "on" : "off";
  result.failed = failed.load(std::memory_order_relaxed);
  const bool done =
      completed.load(std::memory_order_relaxed) >= expected &&
      result.failed == 0;
  result.ops = done ? static_cast<std::size_t>(expected) : 0;
  result.ops_per_sec =
      done && elapsed.count() > 0
          ? static_cast<double>(expected) / elapsed.count()
          : 0.0;
  return result;
}

ScalingResult run_scaling_config(unsigned shards, bool secured, bool batched,
                                 std::size_t total_ops, std::size_t trials) {
  ScalingResult best;
  for (std::size_t t = 0; t < trials; ++t) {
    ScalingResult r = run_scaling_trial(shards, secured, batched, total_ops);
    const bool r_ok = r.failed == 0 && r.ops > 0;
    const bool best_ok = best.failed == 0 && best.ops > 0;
    if (t == 0 || (r_ok && !best_ok) ||
        (r_ok == best_ok && r.ops_per_sec > best.ops_per_sec)) {
      best = std::move(r);
    }
  }
  return best;
}

// The speedup floor an 8-shard run must clear over 1 shard, derived from
// the cores actually available: the claim is "shards use the machine", and
// the machine is part of the measurement.
double scaling_floor(unsigned cores) {
  if (cores >= 8) return 3.0;
  if (cores >= 4) return 1.8;
  if (cores >= 2) return 1.25;
  // Single core: the scaling claim is untestable — 8 event loops timeslice
  // one CPU, so the 8-shard config legitimately runs at roughly half the
  // 1-shard throughput and the exact ratio is scheduler weather. The floor
  // only catches pathological collapse (cross-shard livelock, unbounded
  // queueing), not the expected contention cost.
  return 0.35;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_transport.json";
  const std::size_t ops =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10))
               : 4000;
  const std::size_t trials =
      argc > 3 ? static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10))
               : 3;

  struct ConfigSpec {
    bool secured;
    Pacing pacing;
  };
  // The four {security} x {batching} corners plus the pacing sweep point:
  // batched configs use RTT pacing (the pipeline default the headline ratio
  // gates); the extra shielded/fixed run isolates what RTT pacing buys over
  // the occupancy walk on the same machine.
  const ConfigSpec specs[] = {
      {true, Pacing::kNone},  {true, Pacing::kFixed}, {true, Pacing::kRtt},
      {false, Pacing::kNone}, {false, Pacing::kRtt},
  };

  std::vector<ConfigResult> results;
  for (const ConfigSpec& spec : specs) {
    ConfigResult r = run_config(spec.secured, spec.pacing, ops, trials);
    std::printf(
        "security=%-8s batching=%-3s pacing=%-5s  %8.0f ops/s  p50=%4lluus "
        "p99=%4lluus  failed=%llu  replica-packets=%llu\n",
        r.security.c_str(), r.batching.c_str(), pacing_name(r.pacing),
        r.ops_per_sec, static_cast<unsigned long long>(r.p50_us),
        static_cast<unsigned long long>(r.p99_us),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.packets_sent));
    for (const LinkStats& link : r.links) {
      std::printf("    link %llu->%llu  rtt=%.1fus  flush_delay=%.1fus\n",
                  static_cast<unsigned long long>(link.from),
                  static_cast<unsigned long long>(link.to), link.rtt_us,
                  link.flush_delay_us);
    }
    results.push_back(std::move(r));
  }

  bool all_ok = true;
  for (const ConfigResult& r : results) {
    if (r.failed != 0 || r.ops == 0) all_ok = false;
  }

  // Shard scaling sweep: {1,2,4,8} shards x {shielded,null} x {batched,
  // unbatched}, best-of-2 (the matrix is 16 configs; two trials keep the
  // job bounded while still shedding one scheduler hiccup per config).
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<ScalingResult> scaling;
  for (unsigned shards : {1u, 2u, 4u, 8u}) {
    for (bool secured : {true, false}) {
      for (bool batched : {false, true}) {
        ScalingResult r =
            run_scaling_config(shards, secured, batched, ops, /*trials=*/2);
        std::printf(
            "scaling shards=%u security=%-8s batching=%-3s  %8.0f ops/s  "
            "failed=%llu\n",
            r.shards, r.security.c_str(), r.batching.c_str(), r.ops_per_sec,
            static_cast<unsigned long long>(r.failed));
        scaling.push_back(std::move(r));
      }
    }
  }
  auto scaling_find = [&](unsigned shards, const char* sec,
                          const char* batching) -> const ScalingResult& {
    for (const ScalingResult& r : scaling) {
      if (r.shards == shards && r.security == sec && r.batching == batching) {
        return r;
      }
    }
    return scaling.front();
  };
  bool scaling_all_ok = true;
  for (const ScalingResult& r : scaling) {
    if (r.failed != 0 || r.ops == 0) scaling_all_ok = false;
  }
  const double speedup_unbatched =
      ratio(scaling_find(8, "shielded", "off").ops_per_sec,
            scaling_find(1, "shielded", "off").ops_per_sec);
  const double speedup_batched =
      ratio(scaling_find(8, "shielded", "on").ops_per_sec,
            scaling_find(1, "shielded", "on").ops_per_sec);
  const double floor = scaling_floor(cores);
  const bool scaling_ok = scaling_all_ok && speedup_unbatched >= floor;
  std::printf(
      "scaling cores=%u  8/1 shielded speedup: unbatched=%.2fx "
      "batched=%.2fx  floor=%.2f  -> %s\n",
      cores, speedup_unbatched, speedup_batched, floor,
      scaling_ok ? "ok" : "FAIL");

  // Observability overhead guard: the headline shielded+RTT-paced config
  // re-run with the metrics registries AND the flight recorder disabled
  // (TcpClusterOptions::metrics=false constructs disabled registries, so
  // every handle no-ops). The gate: instrumentation may cost at most 3%
  // (on/off >= 0.97), best-of-trials on both sides to shed scheduler noise.
  constexpr double kObsOverheadFloor = 0.97;
  const ConfigResult obs_off =
      run_config(true, Pacing::kRtt, ops, trials, /*metrics=*/false);
  double obs_on_ops = 0.0;
  for (const ConfigResult& r : results) {
    if (r.security == "shielded" && r.pacing == Pacing::kRtt) {
      obs_on_ops = r.ops_per_sec;
    }
  }
  const double obs_ratio = ratio(obs_on_ops, obs_off.ops_per_sec);
  const bool obs_ok = obs_off.failed == 0 && obs_off.ops > 0 &&
                      obs_on_ops > 0 && obs_ratio >= kObsOverheadFloor;
  std::printf(
      "obs-overhead  on=%8.0f ops/s  off=%8.0f ops/s  ratio=%.3f  "
      "floor=%.2f  -> %s\n",
      obs_on_ops, obs_off.ops_per_sec, obs_ratio, kObsOverheadFloor,
      obs_ok ? "ok" : "FAIL");

  // Informational only — excluded from all_ok by design (see ChaosResult).
  const ChaosResult chaos = run_chaos_config(ops / 4);
  std::printf(
      "chaos    seed=%llu  %8.0f ops/s  failed=%llu  dropped=%llu "
      "duplicated=%llu reordered=%llu delayed=%llu\n",
      static_cast<unsigned long long>(chaos.seed), chaos.ops_per_sec,
      static_cast<unsigned long long>(chaos.failed),
      static_cast<unsigned long long>(chaos.dropped),
      static_cast<unsigned long long>(chaos.duplicated),
      static_cast<unsigned long long>(chaos.reordered),
      static_cast<unsigned long long>(chaos.delayed));

  auto find = [&](const char* sec, Pacing pacing) -> const ConfigResult& {
    for (const ConfigResult& r : results) {
      if (r.security == sec && r.pacing == pacing) return r;
    }
    return results.front();
  };
  const double shielded_cost =
      ratio(find("null", Pacing::kNone).ops_per_sec,
            find("shielded", Pacing::kNone).ops_per_sec);
  // The headline the CI trajectory gate enforces a hard floor on: the full
  // pipeline (caller-thread shielding + gathered writev + RTT pacing)
  // against the same shielded stack unbatched.
  const double batch_speedup =
      ratio(find("shielded", Pacing::kRtt).ops_per_sec,
            find("shielded", Pacing::kNone).ops_per_sec);
  const double rtt_over_fixed =
      ratio(find("shielded", Pacing::kRtt).ops_per_sec,
            find("shielded", Pacing::kFixed).ops_per_sec);

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"transport\",\n");
  std::fprintf(out, "  \"transport\": \"tcp-loopback\",\n");
  std::fprintf(out, "  \"protocol\": \"cr\",\n");
  std::fprintf(out, "  \"replicas\": 3,\n");
  std::fprintf(out, "  \"pipeline\": 16,\n");
  std::fprintf(out, "  \"value_bytes\": 64,\n");
  std::fprintf(out, "  \"trials_per_config\": %zu,\n", trials);
  std::fprintf(out, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(out,
                 "    {\"security\": \"%s\", \"batching\": \"%s\", "
                 "\"pacing\": \"%s\", "
                 "\"ops\": %zu, \"ops_per_sec\": %.0f, \"p50_us\": %llu, "
                 "\"p99_us\": %llu, \"failed\": %llu, "
                 "\"replica_packets\": %llu, \"links\": [",
                 r.security.c_str(), r.batching.c_str(),
                 pacing_name(r.pacing), r.ops, r.ops_per_sec,
                 static_cast<unsigned long long>(r.p50_us),
                 static_cast<unsigned long long>(r.p99_us),
                 static_cast<unsigned long long>(r.failed),
                 static_cast<unsigned long long>(r.packets_sent));
    for (std::size_t l = 0; l < r.links.size(); ++l) {
      const LinkStats& link = r.links[l];
      std::fprintf(out,
                   "%s{\"from\": %llu, \"to\": %llu, \"rtt_us\": %.1f, "
                   "\"flush_delay_us\": %.1f}",
                   l > 0 ? ", " : "",
                   static_cast<unsigned long long>(link.from),
                   static_cast<unsigned long long>(link.to), link.rtt_us,
                   link.flush_delay_us);
    }
    std::fprintf(out, "]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"null_over_shielded_unbatched\": %.3f,\n",
               shielded_cost);
  std::fprintf(out, "  \"batched_over_unbatched_shielded\": %.3f,\n",
               batch_speedup);
  std::fprintf(out, "  \"rtt_paced_over_fixed_shielded\": %.3f,\n",
               rtt_over_fixed);
  std::fprintf(out,
               "  \"chaos\": {\"seed\": %llu, \"ops\": %zu, "
               "\"ops_per_sec\": %.0f, \"failed\": %llu, \"dropped\": %llu, "
               "\"duplicated\": %llu, \"reordered\": %llu, "
               "\"delayed\": %llu},\n",
               static_cast<unsigned long long>(chaos.seed), chaos.ops,
               chaos.ops_per_sec,
               static_cast<unsigned long long>(chaos.failed),
               static_cast<unsigned long long>(chaos.dropped),
               static_cast<unsigned long long>(chaos.duplicated),
               static_cast<unsigned long long>(chaos.reordered),
               static_cast<unsigned long long>(chaos.delayed));
  std::fprintf(out,
               "  \"obs_overhead\": {\"on_ops_per_sec\": %.0f, "
               "\"off_ops_per_sec\": %.0f, \"ratio\": %.3f, "
               "\"required_floor\": %.2f, "
               "\"acceptance_obs_overhead_ok\": %s},\n",
               obs_on_ops, obs_off.ops_per_sec, obs_ratio, kObsOverheadFloor,
               obs_ok ? "true" : "false");
  std::fprintf(out, "  \"scaling\": {\n");
  std::fprintf(out, "    \"hardware_cores\": %u,\n", cores);
  std::fprintf(out, "    \"sessions\": %zu,\n", kScalingSessions);
  std::fprintf(out, "    \"pipeline\": %zu,\n", kScalingPipeline);
  std::fprintf(out, "    \"batch_count\": %zu,\n", kScalingBatch);
  std::fprintf(out, "    \"configs\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalingResult& r = scaling[i];
    std::fprintf(out,
                 "      {\"shards\": %u, \"security\": \"%s\", "
                 "\"batching\": \"%s\", \"ops\": %zu, "
                 "\"ops_per_sec\": %.0f, \"failed\": %llu}%s\n",
                 r.shards, r.security.c_str(), r.batching.c_str(), r.ops,
                 r.ops_per_sec, static_cast<unsigned long long>(r.failed),
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"speedup_8_over_1_shielded_unbatched\": %.3f,\n",
               speedup_unbatched);
  std::fprintf(out, "    \"speedup_8_over_1_shielded_batched\": %.3f,\n",
               speedup_batched);
  std::fprintf(out, "    \"required_floor\": %.2f,\n", floor);
  std::fprintf(out, "    \"acceptance_shard_scaling_ok\": %s\n",
               scaling_ok ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"acceptance_all_configs_ok\": %s\n",
               all_ok ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf(
      "wrote %s (acceptance_all_configs_ok=%s, "
      "batched_over_unbatched_shielded=%.3f, "
      "acceptance_shard_scaling_ok=%s, acceptance_obs_overhead_ok=%s)\n",
      out_path, all_ok ? "true" : "false", batch_speedup,
      scaling_ok ? "true" : "false", obs_ok ? "true" : "false");
  return all_ok && scaling_ok && obs_ok ? 0 : 1;
}
