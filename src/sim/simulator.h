// Discrete-event simulator: the clock and scheduler underneath every Recipe
// experiment.
//
// All components (network, TEE cost model, protocol timers, clients) schedule
// callbacks on a single Simulator. Execution is single-threaded and
// deterministic: events at equal timestamps fire in scheduling order. Time is
// simulated nanoseconds; nothing ever reads the wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace recipe::sim {

// Simulated time in nanoseconds since simulation start.
using Time = std::uint64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

// Handle to a scheduled event; allows cancellation (e.g., resetting an
// election timeout). Cheap to copy; cancellation after firing is a no-op.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel() {
    if (auto p = cancelled_.lock()) *p = true;
  }
  bool valid() const { return !cancelled_.expired(); }

 private:
  friend class Simulator;
  explicit TimerHandle(std::weak_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}
  std::weak_ptr<bool> cancelled_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Time now() const { return now_; }

  // Schedules `fn` to run at now() + delay. Returns a cancellable handle.
  TimerHandle schedule(Time delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  TimerHandle schedule_at(Time when, Callback fn);

  // Runs events until the queue drains or the time limit is passed.
  // Returns the number of events executed.
  std::size_t run_until(Time deadline);
  std::size_t run_for(Time duration) { return run_until(now_ + duration); }

  // Runs every pending event (use only when the event set is finite).
  std::size_t run_all();

  // Executes the single next event, if any. Returns false when idle.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_{0};
  std::uint64_t next_seq_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace recipe::sim
