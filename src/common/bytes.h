// Byte-buffer aliases and small helpers shared across all Recipe modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace recipe {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

// Builds a Bytes buffer from a string literal / string_view payload.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline BytesView as_view(const Bytes& b) { return BytesView(b.data(),
                                                            b.size()); }

inline BytesView as_view(std::string_view s) {
  return BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

// Lowercase hex encoding, for digests and debugging output.
std::string to_hex(BytesView data);

// Parses lowercase/uppercase hex; returns empty on malformed input of odd
// length or non-hex characters.
Bytes from_hex(std::string_view hex);

// Appends `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace recipe
