// Randomized failure-injection sweeps: crash schedules, network faults
// (pre-GST loss/duplication/jitter) and combined chaos, asserting the two
// invariants that must never break while failures stay within the fault
// budget:
//   durability — every acknowledged write remains readable;
//   convergence — replica state machines agree after quiescence.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster_harness.h"
#include "protocols/abd/abd.h"
#include "protocols/cr/cr.h"
#include "protocols/craq/craq.h"
#include "protocols/hermes/hermes.h"
#include "protocols/raft/raft.h"
#include "cluster/hash_ring.h"

namespace recipe {
namespace {

using testing::Cluster;

class FaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSweep, AbdDurabilityUnderLossyNetwork) {
  Cluster<protocols::AbdNode> cluster;
  cluster.build();
  net::NetworkFaults faults;
  faults.drop_rate = 0.05;
  faults.duplicate_rate = 0.05;
  faults.jitter_max = 50 * sim::kMicrosecond;
  faults.gst = 30 * sim::kSecond;  // faulty for the whole test
  cluster.network().set_faults(faults);

  auto& client = cluster.add_client();
  Rng rng(GetParam());
  std::map<std::string, std::string> acked;
  std::map<std::string, std::set<std::string>> unacked;

  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(rng.below(8));
    const std::string value = "v" + std::to_string(i);
    const NodeId coord{rng.below(3) + 1};
    const ClientReply reply = cluster.put(client, coord, key, value);
    if (reply.ok) {
      acked[key] = value;
      // A newly acked write supersedes... nothing we can prune: an earlier
      // UNACKED write may carry a higher timestamp (tie broken by node id)
      // and legally linearize after this one. Keep the set.
    } else {
      unacked[key].insert(value);
    }
  }

  // Durability: a quorum read returns the latest acked value, or the value
  // of an incomplete write (which linearizability allows to take effect) —
  // never anything else, and never "missing".
  for (const auto& [key, value] : acked) {
    const ClientReply get = cluster.get(client, NodeId{rng.below(3) + 1}, key);
    ASSERT_TRUE(get.ok);
    EXPECT_TRUE(get.found) << key;
    const std::string observed = to_string(as_view(get.value));
    const bool valid = observed == value || unacked[key].contains(observed);
    EXPECT_TRUE(valid) << key << " -> " << observed << " (acked: " << value
                       << ")";
  }
}

TEST_P(FaultSweep, RaftChaosWithCrashAndRecovery) {
  Cluster<protocols::RaftNode> cluster;
  protocols::RaftOptions raft;
  raft.initial_leader = NodeId{1};
  cluster.build(raft);
  auto& client = cluster.add_client();
  Rng rng(GetParam() ^ 0xFEED);

  std::map<std::string, std::string> acked;
  std::size_t crashed_follower = 1 + rng.below(2);  // node 2 or 3
  bool crashed = false;

  for (int i = 0; i < 30; ++i) {
    if (i == 10) {
      cluster.crash(crashed_follower);  // one follower dies mid-run
      crashed = true;
    }
    // Find the current leader (might change under chaos).
    NodeId leader = kNoNode;
    for (std::size_t n = 0; n < cluster.size(); ++n) {
      if (cluster.node(n).running() &&
          cluster.node(n).role() == protocols::RaftNode::Role::kLeader) {
        leader = cluster.node(n).self();
      }
    }
    if (leader == kNoNode) {
      cluster.run_for(sim::kSecond);
      continue;
    }
    const std::string key = "k" + std::to_string(rng.below(6));
    const std::string value = "v" + std::to_string(i);
    const ClientReply reply = cluster.put(client, leader, key, value);
    if (reply.ok) acked[key] = value;
  }
  ASSERT_TRUE(crashed);
  ASSERT_GT(acked.size(), 0u);
  cluster.run_for(2 * sim::kSecond);

  // Durability at the leader.
  NodeId leader = kNoNode;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    if (cluster.node(n).running() &&
        cluster.node(n).role() == protocols::RaftNode::Role::kLeader) {
      leader = cluster.node(n).self();
    }
  }
  ASSERT_NE(leader, kNoNode);
  for (const auto& [key, value] : acked) {
    const ClientReply get = cluster.get(client, leader, key);
    EXPECT_TRUE(get.found) << key;
    EXPECT_EQ(to_string(as_view(get.value)), value) << key;
  }

  // Convergence of the two survivors.
  std::vector<protocols::RaftNode*> survivors;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    if (cluster.node(n).running()) survivors.push_back(&cluster.node(n));
  }
  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_EQ(survivors[0]->commit_index(), survivors[1]->commit_index());
  for (const auto& [key, value] : acked) {
    auto v0 = survivors[0]->kv().get(key);
    auto v1 = survivors[1]->kv().get(key);
    ASSERT_TRUE(v0.is_ok() && v1.is_ok()) << key;
    EXPECT_EQ(v0.value().value, v1.value().value) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

// --- Randomized kill / restart / rejoin sweep (paper §3.7) ------------------
//
// For every protocol, batching on and off: write through the live cluster,
// kill a random eligible replica mid-workload, keep writing while the
// protocol repairs around the hole, run the FULL attested rejoin (enclave
// restart -> CAS re-attestation -> shadow join -> chunked catch-up ->
// promotion) with writes racing the catch-up stream, keep writing, and then
// assert durability: every acknowledged write is still readable through the
// protocol with an acceptable value (the acked one, or a concurrent
// maybe-applied one). Seeds honor RECIPE_TEST_SEED for replay.

template <typename Node, typename... Extra>
void run_kill_restart_rejoin(std::uint64_t base_seed, bool batching,
                             std::function<std::size_t(Rng&)> pick_victim,
                             Extra&&... extra) {
  const std::uint64_t seed = testing::resolved_seed(base_seed);
  SCOPED_TRACE(testing::seed_trace_message(seed));
  Rng rng(seed);

  typename testing::Cluster<Node>::Config config;
  config.seed = seed;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  if (batching) {
    config.batch.enabled = true;
    config.batch.max_count = std::size_t{1} << rng.range(1, 4);  // 2..16
    config.batch.max_delay = rng.below(21) * sim::kMicrosecond;
    config.batch.adaptive = rng.chance(0.5);
  }
  testing::Cluster<Node> cluster(config);
  cluster.build(std::forward<Extra>(extra)...);
  auto& client = cluster.add_client();

  std::map<std::string, std::string> acked;
  std::map<std::string, std::set<std::string>> maybe;
  int counter = 0;

  const auto write_coordinator = [&]() -> NodeId {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.node(i).active() && cluster.node(i).coordinates_writes()) {
        return cluster.node(i).self();
      }
    }
    return NodeId{1};
  };
  const auto read_coordinator = [&]() -> NodeId {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.node(i).active() && cluster.node(i).coordinates_reads()) {
        return cluster.node(i).self();
      }
    }
    return NodeId{1};
  };
  const auto do_writes = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const std::string key = "k" + std::to_string(rng.below(12));
      const std::string value = "v" + std::to_string(counter++);
      const ClientReply reply =
          cluster.put(client, write_coordinator(), key, value);
      if (reply.ok) {
        acked[key] = value;
      } else {
        maybe[key].insert(value);  // timed out: may still apply later
      }
    }
  };

  do_writes(8);
  const std::size_t victim = pick_victim(rng);
  cluster.crash(victim);
  cluster.run_for(400 * sim::kMillisecond);  // suspicion + repair
  do_writes(8);

  // Writes racing the rejoin: launched un-driven, they execute while the
  // driver streams state (their callbacks record the outcome).
  for (int i = 0; i < 4; ++i) {
    const std::string key = "k" + std::to_string(rng.below(12));
    const std::string value = "v" + std::to_string(counter++);
    client.put(write_coordinator(), key, to_bytes(value),
               [&acked, &maybe, key, value](const ClientReply& r) {
                 if (r.ok) {
                   acked[key] = value;
                 } else {
                   maybe[key].insert(value);
                 }
               });
  }

  // Donor: the last active non-victim in membership order (for the chain
  // protocols this is the tail, whose state is committed by construction).
  NodeId donor = NodeId{1};
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (i != victim && cluster.node(i).active()) {
      donor = cluster.node(i).self();
    }
  }
  auto report = cluster.rejoin(victim, donor);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  ASSERT_TRUE(report.value().promoted);
  cluster.run_for(sim::kSecond);
  ASSERT_TRUE(cluster.node(victim).active());

  do_writes(8);
  cluster.run_for(2 * sim::kSecond);

  // Durability through the protocol: every acked key readable with an
  // acceptable value.
  for (const auto& [key, value] : acked) {
    const ClientReply get = cluster.get(client, read_coordinator(), key);
    ASSERT_TRUE(get.ok) << key;
    ASSERT_TRUE(get.found) << key;
    const std::string observed = to_string(as_view(get.value));
    const bool valid = observed == value || maybe[key].contains(observed);
    EXPECT_TRUE(valid) << key << " -> " << observed << " (acked: " << value
                       << ")";
  }
}

class RejoinSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(RejoinSweep, ChainReplication) {
  const auto [seed, batching] = GetParam();
  run_kill_restart_rejoin<protocols::ChainNode>(
      seed * 2654435761u + 11, batching, [](Rng& r) { return r.below(3); });
}

TEST_P(RejoinSweep, Craq) {
  const auto [seed, batching] = GetParam();
  run_kill_restart_rejoin<protocols::CraqNode>(
      seed * 2654435761u + 13, batching, [](Rng& r) { return r.below(3); });
}

TEST_P(RejoinSweep, Raft) {
  const auto [seed, batching] = GetParam();
  protocols::RaftOptions raft;
  raft.initial_leader = NodeId{1};
  // Followers only: killing the fixed leader is covered by the view-change
  // tests; here the subject is the rejoin machinery.
  run_kill_restart_rejoin<protocols::RaftNode>(
      seed * 2654435761u + 17, batching,
      [](Rng& r) { return std::size_t{1} + r.below(2); }, raft);
}

TEST_P(RejoinSweep, Abd) {
  const auto [seed, batching] = GetParam();
  run_kill_restart_rejoin<protocols::AbdNode>(
      seed * 2654435761u + 19, batching, [](Rng& r) { return r.below(3); });
}

TEST_P(RejoinSweep, Hermes) {
  const auto [seed, batching] = GetParam();
  run_kill_restart_rejoin<protocols::HermesNode>(
      seed * 2654435761u + 23, batching, [](Rng& r) { return r.below(3); });
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RejoinSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, bool>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_batched" : "_unbatched");
    });

// --- Crash mid-WAL-write (torn tail) -----------------------------------------

// The host tears the last WAL write (power cut mid group-commit / Byzantine
// truncation): the clean marker is present but the log's tail record MAC no
// longer verifies. The warm path must REFUSE the log and the rejoin must
// degrade to the full attested sequence — durability then comes from the
// live cluster, not the damaged log.
TEST(FailureInjection, TornWalTailDegradesToColdRejoin) {
  typename Cluster<protocols::AbdNode>::Config config;
  config.with_cas = true;
  config.durable_wal = true;
  config.wal.segment_bytes = 512;  // rotate often: several sealed segments
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();

  std::map<std::string, std::string> acked;
  for (int i = 0; i < 12; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster.put(client, NodeId{1}, key, value).ok) << key;
    acked[key] = value;
  }
  ASSERT_TRUE(cluster.shutdown_clean(1).is_ok());
  cluster.run_for(100 * sim::kMillisecond);

  // Tear the newest segment mid-record, exactly like a crash between the
  // host's partial flush and the fsync.
  auto* storage = cluster.wal_storage(1);
  ASSERT_NE(storage, nullptr);
  const auto segments = storage->list_segments();
  ASSERT_FALSE(segments.empty());
  Bytes* tail = storage->mutable_segment(segments.back());
  ASSERT_NE(tail, nullptr);
  ASSERT_GT(tail->size(), 8u);
  tail->resize(tail->size() - 5);

  const std::uint64_t attestations = cluster.cas().attestations_served();
  auto report = cluster.rejoin(1, NodeId{1});
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_FALSE(report.value().warm_restart)
      << "a torn log must never warm-restart";
  EXPECT_TRUE(report.value().promoted);
  EXPECT_GT(report.value().streamed_entries, 0u);
  EXPECT_EQ(cluster.cas().attestations_served(), attestations + 1);

  cluster.run_for(sim::kSecond);
  for (const auto& [key, value] : acked) {
    auto got = cluster.node(1).kv().get(key);
    ASSERT_TRUE(got.is_ok()) << key;
    EXPECT_EQ(to_string(as_view(got.value().value)), value) << key;
  }
}

// The subtler rollback: the host deletes the NEWEST segment outright (or,
// equivalently, truncates at an exact record boundary). Every surviving
// record MAC verifies and per-segment indices stay contiguous, so only the
// clean marker's authenticated segment manifest can refuse the log. The
// rejoin must degrade to the full attested sequence and recover the rolled-
// back writes from the live cluster.
TEST(FailureInjection, DeletedWalSegmentDegradesToColdRejoin) {
  typename Cluster<protocols::AbdNode>::Config config;
  config.with_cas = true;
  config.durable_wal = true;
  config.wal.segment_bytes = 512;  // rotate often: several sealed segments
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();

  std::map<std::string, std::string> acked;
  for (int i = 0; i < 12; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster.put(client, NodeId{1}, key, value).ok) << key;
    acked[key] = value;
  }
  ASSERT_TRUE(cluster.shutdown_clean(1).is_ok());
  cluster.run_for(100 * sim::kMillisecond);

  auto* storage = cluster.wal_storage(1);
  ASSERT_NE(storage, nullptr);
  const auto segments = storage->list_segments();
  ASSERT_GT(segments.size(), 1u) << "need a trailing segment to roll back";
  ASSERT_TRUE(storage->remove_segment(segments.back()).is_ok());

  const std::uint64_t attestations = cluster.cas().attestations_served();
  auto report = cluster.rejoin(1, NodeId{1});
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_FALSE(report.value().warm_restart)
      << "a boundary-rolled-back log must never warm-restart";
  EXPECT_TRUE(report.value().promoted);
  EXPECT_GT(report.value().streamed_entries, 0u);
  EXPECT_EQ(cluster.cas().attestations_served(), attestations + 1);

  cluster.run_for(sim::kSecond);
  for (const auto& [key, value] : acked) {
    auto got = cluster.node(1).kv().get(key);
    ASSERT_TRUE(got.is_ok()) << key;
    EXPECT_EQ(to_string(as_view(got.value().value)), value) << key;
  }
}

// --- Consistent-hash routing (Fig. 2 distributed data-store layer)
// ---------------

TEST(ConsistentHashRing, DistributesKeys) {
  cluster::ConsistentHashRing ring;
  for (cluster::ShardId s = 0; s < 4; ++s) ring.add_shard(s);
  EXPECT_EQ(ring.shard_count(), 4u);

  std::map<cluster::ShardId, int> counts;
  for (int i = 0; i < 4000; ++i) {
    counts[ring.lookup("user" + std::to_string(i))]++;
  }
  // Every shard owns a reasonable fraction (no starvation).
  for (cluster::ShardId s = 0; s < 4; ++s) {
    EXPECT_GT(counts[s], 400) << "shard " << s;
  }
}

TEST(ConsistentHashRing, LookupIsStable) {
  cluster::ConsistentHashRing ring;
  for (cluster::ShardId s = 0; s < 3; ++s) ring.add_shard(s);
  const auto owner = ring.lookup("some-key");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ring.lookup("some-key"), owner);
}

TEST(ConsistentHashRing, RemovalMovesOnlyAffectedKeys) {
  cluster::ConsistentHashRing ring;
  for (cluster::ShardId s = 0; s < 4; ++s) ring.add_shard(s);
  std::map<std::string, cluster::ShardId> before;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "user" + std::to_string(i);
    before[key] = ring.lookup(key);
  }
  ring.remove_shard(2);
  int moved = 0;
  for (const auto& [key, shard] : before) {
    const auto now = ring.lookup(key);
    if (shard != 2) {
      EXPECT_EQ(now, shard) << "key not owned by the removed shard moved";
    } else {
      EXPECT_NE(now, 2u);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(ConsistentHashRing, AddingShardMovesBoundedFraction) {
  // Adding one shard to an N-shard ring must move only ~1/(N+1) of the
  // keyspace — and every moved key must move TO the new shard (consistent
  // hashing never shuffles keys between existing shards).
  constexpr int kShards = 5;
  constexpr int kKeys = 10000;
  cluster::ConsistentHashRing ring;
  for (cluster::ShardId s = 0; s < kShards; ++s) ring.add_shard(s);

  std::map<std::string, cluster::ShardId> before;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "user" + std::to_string(i);
    before[key] = ring.lookup(key);
  }

  ring.add_shard(kShards);
  int moved = 0;
  for (const auto& [key, owner] : before) {
    const auto now = ring.lookup(key);
    if (now != owner) {
      EXPECT_EQ(now, static_cast<cluster::ShardId>(kShards))
          << "key moved between pre-existing shards";
      ++moved;
    }
  }
  const double fraction = static_cast<double>(moved) / kKeys;
  const double expected = 1.0 / (kShards + 1);
  EXPECT_GT(fraction, expected / 3) << "new shard starved";
  EXPECT_LT(fraction, expected * 2.5) << "far more than its share moved";
}

TEST(ConsistentHashRing, RemovingShardMovesBoundedFraction) {
  constexpr int kShards = 5;
  constexpr int kKeys = 10000;
  cluster::ConsistentHashRing ring;
  for (cluster::ShardId s = 0; s < kShards; ++s) ring.add_shard(s);

  int owned = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (ring.lookup("user" + std::to_string(i)) == 0) ++owned;
  }
  // RemovalMovesOnlyAffectedKeys covers WHICH keys move; this bounds HOW MANY.
  const double fraction = static_cast<double>(owned) / kKeys;
  EXPECT_GT(fraction, 1.0 / kShards / 3);
  EXPECT_LT(fraction, 2.5 / kShards);
}

TEST(ConsistentHashRing, RemoveDownToEmptyRing) {
  cluster::ConsistentHashRing ring;
  for (cluster::ShardId s = 0; s < 3; ++s) ring.add_shard(s);
  EXPECT_FALSE(ring.empty());

  ring.remove_shard(0);
  ring.remove_shard(2);
  EXPECT_EQ(ring.shard_count(), 1u);
  // All keys land on the sole survivor.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.lookup("user" + std::to_string(i)), 1u);
  }

  ring.remove_shard(1);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.shard_count(), 0u);
  // Lookup on an empty ring is well-defined (no owner), not UB.
  EXPECT_EQ(ring.lookup("user1"), cluster::ConsistentHashRing::kNoShard);
  // Removing from an empty ring is a no-op.
  ring.remove_shard(1);
  EXPECT_TRUE(ring.empty());
}

TEST(ConsistentHashRing, ShardedAbdDeployment) {
  // Two independent ABD replication groups; the routing layer steers each
  // key to its owning shard (Fig. 2 end-to-end).
  cluster::ConsistentHashRing ring;
  ring.add_shard(0);
  ring.add_shard(1);

  Cluster<protocols::AbdNode> shard0;
  shard0.build();
  Cluster<protocols::AbdNode> shard1;
  shard1.build();
  auto& client0 = shard0.add_client(2001);
  auto& client1 = shard1.add_client(2002);

  for (int i = 0; i < 20; ++i) {
    const std::string key = "user" + std::to_string(i);
    const std::string value = "v" + std::to_string(i);
    if (ring.lookup(key) == 0) {
      ASSERT_TRUE(shard0.put(client0, NodeId{1}, key, value).ok);
    } else {
      ASSERT_TRUE(shard1.put(client1, NodeId{1}, key, value).ok);
    }
  }
  // Reads route identically and find every key.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "user" + std::to_string(i);
    const ClientReply get = ring.lookup(key) == 0
                                ? shard0.get(client0, NodeId{2}, key)
                                : shard1.get(client1, NodeId{2}, key);
    EXPECT_TRUE(get.found) << key;
  }
}

}  // namespace
}  // namespace recipe
