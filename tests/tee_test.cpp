// Unit tests for the TEE substrate: enclave identity, quotes, counters,
// crash semantics, trusted leases, and the TEE cost model.
#include <gtest/gtest.h>

#include "tee/cost_model.h"
#include "tee/enclave.h"
#include "tee/lease.h"
#include "tee/platform.h"

namespace recipe::tee {
namespace {

TEST(Platform, DistinctSeedsDistinctKeys) {
  TeePlatform p1(1), p2(2);
  EXPECT_NE(p1.hardware_root_key().material, p2.hardware_root_key().material);
  EXPECT_NE(p1.enclave_seed(0), p2.enclave_seed(0));
  EXPECT_NE(p1.enclave_seed(0), p1.enclave_seed(1));
}

TEST(Enclave, MeasurementIsCodeIdentity) {
  TeePlatform platform(1);
  Enclave a(platform, "recipe-replica-v1", 1);
  Enclave b(platform, "recipe-replica-v1", 2);
  Enclave evil(platform, "malware-v1", 3);
  EXPECT_EQ(a.measurement(), b.measurement());
  EXPECT_NE(a.measurement(), evil.measurement());
}

TEST(Enclave, QuoteVerifiesOnRegisteredPlatform) {
  TeePlatform platform(1);
  Enclave enclave(platform, "code", 1);
  QuoteVerifier verifier;
  verifier.register_platform(platform);

  const Bytes nonce = to_bytes("nonce");
  auto report = enclave.attest(as_view(nonce));
  ASSERT_TRUE(report.is_ok());
  auto quote = enclave.generate_quote(report.value());
  ASSERT_TRUE(quote.is_ok());

  const Bytes quoted = quote.value().report.serialize();
  EXPECT_TRUE(verifier.verify(platform.platform_id(), as_view(quoted),
                              BytesView(quote.value().mac.data(),
                                        quote.value().mac.size())));
}

TEST(Enclave, ForgedQuoteRejected) {
  TeePlatform platform(1);
  TeePlatform rogue(666);
  Enclave enclave(rogue, "code", 1);  // rogue platform not registered
  QuoteVerifier verifier;
  verifier.register_platform(platform);

  auto report = enclave.attest(as_view(to_bytes("n")));
  auto quote = enclave.generate_quote(report.value());
  const Bytes quoted = quote.value().report.serialize();
  EXPECT_FALSE(verifier.verify(rogue.platform_id(), as_view(quoted),
                               BytesView(quote.value().mac.data(),
                                         quote.value().mac.size())));
}

TEST(Enclave, TamperedReportFailsVerification) {
  TeePlatform platform(1);
  Enclave enclave(platform, "code", 1);
  QuoteVerifier verifier;
  verifier.register_platform(platform);

  auto report = enclave.attest(as_view(to_bytes("n")));
  auto quote = enclave.generate_quote(report.value());
  // Host tampers with the measurement after quoting.
  quote.value().report.measurement[0] ^= 0xFF;
  const Bytes quoted = quote.value().report.serialize();
  EXPECT_FALSE(verifier.verify(platform.platform_id(), as_view(quoted),
                               BytesView(quote.value().mac.data(),
                                         quote.value().mac.size())));
}

TEST(Enclave, CountersAreMonotonicPerChannel) {
  TeePlatform platform(1);
  Enclave enclave(platform, "code", 1);
  const ChannelId a{1}, b{2};
  EXPECT_EQ(enclave.increment_counter(a).value(), 1u);
  EXPECT_EQ(enclave.increment_counter(a).value(), 2u);
  EXPECT_EQ(enclave.increment_counter(b).value(), 1u);
  EXPECT_EQ(enclave.increment_counter(a).value(), 3u);
  EXPECT_EQ(enclave.peek_counter(a), 3u);
  EXPECT_EQ(enclave.peek_counter(ChannelId{99}), 0u);
}

TEST(Enclave, SecretsGatedAndNamed) {
  TeePlatform platform(1);
  Enclave enclave(platform, "code", 1);
  EXPECT_FALSE(enclave.has_secret("k"));
  EXPECT_EQ(enclave.secret("k").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(enclave
                  .install_secret("k",
                                  crypto::SymmetricKey{to_bytes(
                                      "0123456789abcdef0123456789abcdef")})
                  .is_ok());
  EXPECT_TRUE(enclave.has_secret("k"));
  EXPECT_TRUE(enclave.secret("k").is_ok());
}

TEST(Enclave, CrashMakesEverythingFail) {
  TeePlatform platform(1);
  Enclave enclave(platform, "code", 1);
  (void)enclave.increment_counter(ChannelId{1});
  enclave.crash();
  EXPECT_TRUE(enclave.crashed());
  EXPECT_EQ(enclave.attest(as_view(to_bytes("n"))).code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(enclave.increment_counter(ChannelId{1}).code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(enclave.secret("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(enclave.random_bytes(8).code(), ErrorCode::kUnavailable);
}

TEST(Enclave, RestartWipesVolatileState) {
  TeePlatform platform(1);
  Enclave enclave(platform, "code", 1);
  ASSERT_TRUE(
      enclave.install_secret("k", crypto::SymmetricKey{to_bytes("x")})
          .is_ok());
  (void)enclave.increment_counter(ChannelId{1});
  enclave.crash();
  enclave.restart();
  EXPECT_FALSE(enclave.crashed());
  EXPECT_FALSE(enclave.has_secret("k"));          // must re-attest
  EXPECT_EQ(enclave.peek_counter(ChannelId{1}), 0u);  // fresh replica
  EXPECT_EQ(enclave.measurement(),
            crypto::Sha256::hash(as_view("code")));  // identity preserved
}

TEST(Enclave, DhKeypairStableUntilRestart) {
  TeePlatform platform(1);
  Enclave enclave(platform, "code", 1);
  const auto pub1 = enclave.dh_public();
  const auto pub2 = enclave.dh_public();
  ASSERT_TRUE(pub1.is_ok());
  EXPECT_EQ(pub1.value(), pub2.value());
  enclave.crash();
  enclave.restart();
  // New ephemeral keypair after restart (old provisioning unusable).
  EXPECT_NE(enclave.dh_public().value(), pub1.value());
}

// --- Trusted lease
// ------------------------------------------------------------

TEST(TrustedLease, HeldUntilExpiry) {
  sim::Simulator s;
  TrustedClock clock(s);
  TrustedLease lease(clock, 100 * sim::kMillisecond);
  EXPECT_FALSE(lease.held());
  lease.acquire();
  EXPECT_TRUE(lease.held());
  s.run_until(99 * sim::kMillisecond);
  EXPECT_TRUE(lease.held());
  s.run_until(101 * sim::kMillisecond);
  EXPECT_FALSE(lease.held());
}

TEST(TrustedLease, RenewalExtends) {
  sim::Simulator s;
  TrustedClock clock(s);
  TrustedLease lease(clock, 100 * sim::kMillisecond);
  lease.acquire();
  s.run_until(80 * sim::kMillisecond);
  lease.acquire();  // renew
  s.run_until(150 * sim::kMillisecond);
  EXPECT_TRUE(lease.held());
}

TEST(TrustedLease, FastHolderClockIsConservative) {
  sim::Simulator s;
  TrustedClock holder_clock(s, +50000);   // holder runs 5% fast
  TrustedClock grantor_clock(s, 0);
  TrustedLease holder(holder_clock, 100 * sim::kMillisecond);
  TrustedLease grantor(grantor_clock, 100 * sim::kMillisecond);
  holder.acquire();
  grantor.acquire();
  // At true t=96ms the fast holder already believes its lease expired...
  s.run_until(96 * sim::kMillisecond);
  EXPECT_FALSE(holder.held());
  // ...while the grantor still considers it outstanding: no overlap window.
  EXPECT_FALSE(grantor.surely_expired(10 * sim::kMillisecond));
}

TEST(TrustedLease, SurelyExpiredRespectsMargin) {
  sim::Simulator s;
  TrustedClock clock(s);
  TrustedLease lease(clock, 100 * sim::kMillisecond);
  lease.acquire();
  s.run_until(105 * sim::kMillisecond);
  EXPECT_FALSE(lease.surely_expired(10 * sim::kMillisecond));
  s.run_until(111 * sim::kMillisecond);
  EXPECT_TRUE(lease.surely_expired(10 * sim::kMillisecond));
}

TEST(LeaseFailureDetector, SuspectsSilentPeers) {
  sim::Simulator s;
  TrustedClock clock(s);
  LeaseFailureDetector fd(clock, 50 * sim::kMillisecond,
                          10 * sim::kMillisecond);
  const NodeId peer{2};
  EXPECT_TRUE(fd.suspected(peer));  // never heard from
  fd.heartbeat(peer);
  EXPECT_FALSE(fd.suspected(peer));
  s.run_until(40 * sim::kMillisecond);
  fd.heartbeat(peer);  // keep-alive
  s.run_until(80 * sim::kMillisecond);
  EXPECT_FALSE(fd.suspected(peer));
  s.run_until(200 * sim::kMillisecond);
  EXPECT_TRUE(fd.suspected(peer));
}

// --- Cost model
// ------------------------------------------------------------------

TEST(CostModel, CryptoScalesWithBytes) {
  TeeCostModel model;
  EXPECT_GT(model.mac(4096), model.mac(64));
  EXPECT_GT(model.hash(4096), model.hash(64));
  EXPECT_GT(model.encrypt(4096), model.encrypt(64));
  EXPECT_GT(model.mac(0), 0u);  // base cost
}

TEST(CostModel, EpcPressureKicksInPastEpc) {
  TeeCostModel model;
  const auto& p = model.params();
  const sim::Time fits = model.enclave_copy(4096, p.epc_size_bytes / 2);
  const sim::Time thrashes = model.enclave_copy(4096, p.epc_size_bytes * 4);
  EXPECT_GT(thrashes, fits * 10);
}

TEST(CostModel, TeeTaxZeroDisablesCosts) {
  TeeCostParams params;
  params.tee_tax = 0.0;
  TeeCostModel model(params);
  EXPECT_EQ(model.mac(4096), 0u);
  EXPECT_EQ(model.transition(), 0u);
  EXPECT_EQ(model.enclave_copy(1 << 20, 1ULL << 40), 0u);
}

TEST(CostModel, TransitionDwarfsExitlessCall) {
  TeeCostModel model;
  EXPECT_GT(model.transition(), model.exitless_call() * 5);
}

}  // namespace
}  // namespace recipe::tee
