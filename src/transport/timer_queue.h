// TimerQueue: the real-time sim::Clock implementation behind TcpTransport.
//
// Same contract as the Simulator's scheduler — nanosecond Time, cancellable
// TimerHandles, FIFO among equal deadlines — but `now()` reads the OS
// steady clock and callbacks fire on the owning transport's event-loop
// thread, never concurrently. That keeps the stack's timer discipline
// identical under both substrates: protocol code schedules against
// sim::Clock and cannot tell which one it got.
//
// Threading: schedule_at() may be called from any thread (the loop is woken
// through `wakeup` when the new deadline becomes the earliest); run_due()
// and TimerHandle::cancel() must stay on the loop thread — cancellation
// flags are plain bools shared with the Simulator's handles.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "sim/clock.h"

namespace recipe::transport {

class TimerQueue final : public sim::Clock {
 public:
  TimerQueue() : epoch_(std::chrono::steady_clock::now()) {}

  // Nanoseconds since this queue's construction.
  sim::Time now() const override {
    return static_cast<sim::Time>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  sim::TimerHandle schedule_at(sim::Time when, Callback fn) override;

  // Invoked (from the scheduling thread, outside the lock) whenever a newly
  // scheduled timer became the earliest deadline — the event loop uses it to
  // interrupt its poll and recompute the timeout.
  void set_wakeup(Callback wakeup) { wakeup_ = std::move(wakeup); }

  // Earliest pending deadline, or nullopt when no timers are armed.
  std::optional<sim::Time> next_deadline() const;

  // Runs every callback due at now(). Loop thread only; callbacks may
  // re-enter schedule_at()/cancel(). Returns the number fired.
  std::size_t run_due();

  std::size_t pending() const;

 private:
  struct Entry {
    sim::Time when;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::chrono::steady_clock::time_point epoch_;
  Callback wakeup_;
  mutable std::mutex mu_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::uint64_t next_seq_{0};
};

}  // namespace recipe::transport
