#include "crypto/hmac.h"

#include <array>
#include <cstring>

namespace recipe::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;

struct HmacState {
  Sha256 inner;
  std::array<std::uint8_t, kBlockSize> opad{};
};

HmacState hmac_begin(BytesView key) {
  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Sha256Digest kd = Sha256::hash(key);
    std::memcpy(key_block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  HmacState st;
  std::array<std::uint8_t, kBlockSize> ipad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    st.opad[i] = key_block[i] ^ 0x5c;
  }
  st.inner.update(BytesView(ipad.data(), ipad.size()));
  return st;
}

Mac hmac_end(HmacState& st) {
  const Sha256Digest inner_digest = st.inner.finalize();
  Sha256 outer;
  outer.update(BytesView(st.opad.data(), st.opad.size()));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}
}  // namespace

Mac hmac_sha256(BytesView key, BytesView message) {
  HmacState st = hmac_begin(key);
  st.inner.update(message);
  return hmac_end(st);
}

Mac hmac_sha256_2(BytesView key, BytesView part1, BytesView part2) {
  HmacState st = hmac_begin(key);
  st.inner.update(part1);
  st.inner.update(part2);
  return hmac_end(st);
}

bool hmac_verify(BytesView key, BytesView message, BytesView expected_mac) {
  const Mac mac = hmac_sha256(key, message);
  return constant_time_equal(BytesView(mac.data(), mac.size()), expected_mac);
}

Bytes hkdf_sha256(BytesView input_key_material, BytesView salt, BytesView info,
                  std::size_t output_length) {
  // Extract.
  const Mac prk = hmac_sha256(salt, input_key_material);

  // Expand.
  Bytes okm;
  okm.reserve(output_length);
  Bytes t;  // T(i-1)
  std::uint8_t counter = 1;
  while (okm.size() < output_length) {
    Bytes block = t;
    append(block, info);
    block.push_back(counter++);
    const Mac ti =
        hmac_sha256(BytesView(prk.data(), prk.size()), as_view(block));
    t.assign(ti.begin(), ti.end());
    const std::size_t take = std::min(t.size(), output_length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

}  // namespace recipe::crypto
