// Protocol tests for (R-)Raft: log replication, commit rule, leader leases,
// elections (including after leader crash), log consistency invariants,
// and batching.
#include <gtest/gtest.h>

#include "cluster_harness.h"
#include "protocols/raft/raft.h"

namespace recipe::protocols {
namespace {

using testing::Cluster;

RaftOptions fixed_leader() {
  RaftOptions o;
  o.initial_leader = NodeId{1};
  return o;
}

TEST(Raft, PutGetAtLeader) {
  Cluster<RaftNode> cluster;
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  EXPECT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
  auto get = cluster.get(client, NodeId{1}, "k");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(to_string(as_view(get.value)), "v");
  EXPECT_EQ(cluster.node(0).role(), RaftNode::Role::kLeader);
}

TEST(Raft, FollowerRejectsClientRequests) {
  Cluster<RaftNode> cluster;
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  auto reply = cluster.put(client, NodeId{2}, "k", "v");
  EXPECT_FALSE(reply.ok);  // routed wrong: follower refuses
}

TEST(Raft, CommittedEntriesReachFollowers) {
  Cluster<RaftNode> cluster;
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        cluster.put(client, NodeId{1}, "k" + std::to_string(i), "v").ok);
  }
  cluster.run_for(sim::kSecond);  // heartbeats propagate the commit index
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(cluster.node(n).kv().contains("k" + std::to_string(i)))
          << "node " << n << " key " << i;
    }
  }
}

TEST(Raft, LogMatchingInvariant) {
  Cluster<RaftNode> cluster;
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.put(client, NodeId{1}, "k" + std::to_string(i % 5),
                            "v" + std::to_string(i))
                    .ok);
  }
  cluster.run_for(sim::kSecond);
  // All nodes agree on log size and commit index after quiescence.
  const auto size0 = cluster.node(0).log_size();
  const auto commit0 = cluster.node(0).commit_index();
  for (std::size_t n = 1; n < cluster.size(); ++n) {
    EXPECT_EQ(cluster.node(n).log_size(), size0);
    EXPECT_EQ(cluster.node(n).commit_index(), commit0);
  }
}

TEST(Raft, ElectionWithoutInitialLeader) {
  Cluster<RaftNode> cluster;
  cluster.build();  // all boot as followers, real election
  cluster.run_for(2 * sim::kSecond);
  int leaders = 0;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    if (cluster.node(n).role() == RaftNode::Role::kLeader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(Raft, LeaderCrashTriggersReelectionAndPreservesCommits) {
  Cluster<RaftNode> cluster;
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.put(client, NodeId{1}, "k" + std::to_string(i),
                            "v").ok);
  }
  cluster.run_for(sim::kSecond);

  cluster.crash(0);  // leader down
  cluster.run_for(3 * sim::kSecond);

  // A new leader emerged among the survivors.
  RaftNode* new_leader = nullptr;
  for (std::size_t n = 1; n < cluster.size(); ++n) {
    if (cluster.node(n).role() == RaftNode::Role::kLeader) {
      new_leader = &cluster.node(n);
    }
  }
  ASSERT_NE(new_leader, nullptr);
  EXPECT_GT(new_leader->term(), 1u);

  // Every committed write survived the view change (paper §3.5 correctness).
  auto& c2 = cluster.add_client(2002);
  for (int i = 0; i < 5; ++i) {
    auto get = cluster.get(c2, new_leader->self(), "k" + std::to_string(i));
    EXPECT_TRUE(get.found) << "lost committed key k" << i;
  }
  // And the new leader accepts writes.
  EXPECT_TRUE(cluster.put(c2, new_leader->self(), "post-failover", "v").ok);
}

TEST(Raft, OldLeaderStepsDownOnHigherTerm) {
  Cluster<RaftNode> cluster;
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);

  // Partition the leader away; others elect a new leader.
  cluster.network().partition(NodeId{1}, NodeId{2}, true);
  cluster.network().partition(NodeId{1}, NodeId{3}, true);
  cluster.run_for(3 * sim::kSecond);

  // Heal the partition: old leader must step down upon seeing a higher term.
  cluster.network().partition(NodeId{1}, NodeId{2}, false);
  cluster.network().partition(NodeId{1}, NodeId{3}, false);
  cluster.run_for(2 * sim::kSecond);

  int leaders = 0;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    if (cluster.node(n).role() == RaftNode::Role::kLeader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_NE(cluster.node(0).role(), RaftNode::Role::kLeader);
}

TEST(Raft, ReadsLinearizableAfterFailover) {
  Cluster<RaftNode> cluster;
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "x", "1").ok);
  cluster.crash(0);
  cluster.run_for(3 * sim::kSecond);
  RaftNode* leader = nullptr;
  for (std::size_t n = 1; n < cluster.size(); ++n) {
    if (cluster.node(n).role() == RaftNode::Role::kLeader) {
      leader = &cluster.node(n);
    }
  }
  ASSERT_NE(leader, nullptr);
  auto& c2 = cluster.add_client(2002);
  auto get = cluster.get(c2, leader->self(), "x");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(to_string(as_view(get.value)), "1");
}

TEST(Raft, ManyWritesBatchAndCommit) {
  Cluster<RaftNode> cluster;
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  int committed = 0;
  for (int i = 0; i < 200; ++i) {
    client.put(NodeId{1}, "k" + std::to_string(i % 11), to_bytes("v"),
               [&](const ClientReply& r) {
                 if (r.ok) ++committed;
               });
  }
  cluster.run_for(10 * sim::kSecond);
  EXPECT_EQ(committed, 200);
  EXPECT_EQ(cluster.node(0).committed_ops(), 200u);
}

TEST(Raft, FiveNodeClusterSurvivesTwoFollowerCrashes) {
  Cluster<RaftNode>::Config config;
  config.num_replicas = 5;
  Cluster<RaftNode> cluster(config);
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "a", "1").ok);
  cluster.crash(3);
  cluster.crash(4);
  EXPECT_TRUE(cluster.put(client, NodeId{1}, "b", "2").ok);
  EXPECT_TRUE(cluster.get(client, NodeId{1}, "a").found);
}

TEST(Raft, NativeModeWorksIdentically) {
  Cluster<RaftNode>::Config config;
  config.secured = false;
  Cluster<RaftNode> cluster(config);
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{1}, "k").value)), "v");
}

TEST(Raft, ConfidentialMode) {
  Cluster<RaftNode>::Config config;
  config.confidentiality = true;
  Cluster<RaftNode> cluster(config);
  cluster.build(fixed_leader());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "classified").ok);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{1}, "k").value)),
            "classified");
}

}  // namespace
}  // namespace recipe::protocols
