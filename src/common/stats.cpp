#include "common/stats.h"

#include <bit>
#include <cstdio>

namespace recipe {

namespace {
constexpr std::size_t kSubBuckets = 16;
constexpr std::size_t kSubBits = 4;  // log2(kSubBuckets)
constexpr std::size_t kNumBuckets = Histogram::kNumBuckets;
static_assert(kNumBuckets == 64 * kSubBuckets);
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::size_t Histogram::bucket_for(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const std::size_t group = static_cast<std::size_t>(msb) - kSubBits + 1;
  const std::size_t sub =
      static_cast<std::size_t>(value >> (msb - static_cast<int>(kSubBits))) &
      (kSubBuckets - 1);
  const std::size_t idx = group * kSubBuckets + sub;
  return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

std::uint64_t Histogram::bucket_midpoint(std::size_t bucket) {
  if (bucket < kSubBuckets) return bucket;
  const std::size_t group = bucket / kSubBuckets;
  const std::size_t sub = bucket % kSubBuckets;
  const int shift = static_cast<int>(group) - 1;
  const std::uint64_t base = (kSubBuckets + sub) << shift;
  const std::uint64_t width = 1ULL << shift;
  return base + width / 2;
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_for(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  merge_raw(other.buckets_.data(), other.count_, other.sum_, other.min_,
            other.max_);
}

void Histogram::merge_raw(const std::uint64_t* buckets, std::uint64_t count,
                          std::uint64_t sum, std::uint64_t min,
                          std::uint64_t max) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += buckets[i];
  }
  count_ += count;
  sum_ += sum;
  if (count > 0) min_ = std::min(min_, min);
  max_ = std::max(max_, max);
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

double Histogram::mean() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
}

std::uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  // The bucket walk approximates interior quantiles via midpoints; the
  // extremes are tracked exactly, so answer them exactly.
  if (q <= 0) return min();
  if (q >= 1) return max_;
  const std::uint64_t target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      const std::uint64_t mid = bucket_midpoint(i);
      return std::min(std::max(mid, min_), max_);
    }
  }
  return max_;
}

std::string Histogram::summary(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f%s p50=%llu%s p99=%llu%s max=%llu%s",
                static_cast<unsigned long long>(count_), mean(), unit.c_str(),
                static_cast<unsigned long long>(percentile(0.5)), unit.c_str(),
                static_cast<unsigned long long>(percentile(0.99)), unit.c_str(),
                static_cast<unsigned long long>(max()), unit.c_str());
  return buf;
}

}  // namespace recipe
