// Crypto validation: NIST/RFC test vectors for SHA-256, HMAC-SHA-256, HKDF
// and ChaCha20, plus DH agreement and DRBG determinism, the streaming Hmac
// midstate cache, the SHA-NI/scalar differential, and the channel-nonce
// truncation regression.
#include <gtest/gtest.h>

#include <random>

#include "common/bytes.h"
#include "crypto/chacha20.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace recipe::crypto {
namespace {

std::string hex_of(const Sha256Digest& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

// --- SHA-256 (FIPS 180-4 / NIST CAVP vectors) ------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(Sha256::hash(BytesView{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(Sha256::hash(as_view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      hex_of(Sha256::hash(as_view(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_view(chunk));
  EXPECT_EQ(hex_of(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("The quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::size_t i = 0; i < data.size(); ++i) {
    h.update(BytesView(&data[i], 1));
  }
  EXPECT_EQ(h.finalize(), Sha256::hash(as_view(data)));
}

TEST(Sha256, Hash2EqualsConcatenation) {
  const Bytes a = to_bytes("hello ");
  const Bytes b = to_bytes("world");
  Bytes ab = a;
  append(ab, as_view(b));
  EXPECT_EQ(Sha256::hash2(as_view(a), as_view(b)), Sha256::hash(as_view(ab)));
}

TEST(Sha256, ReusableAfterFinalize) {
  Sha256 h;
  h.update(as_view("abc"));
  (void)h.finalize();
  h.update(as_view("abc"));
  EXPECT_EQ(hex_of(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// --- HMAC-SHA-256 (RFC 4231 vectors) ---------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Mac mac = hmac_sha256(as_view(key), as_view("Hi There"));
  EXPECT_EQ(to_hex(BytesView(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Mac mac = hmac_sha256(as_view("Jefe"),
                              as_view("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(BytesView(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const Mac mac = hmac_sha256(as_view(key), as_view(data));
  EXPECT_EQ(to_hex(BytesView(mac.data(), mac.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const Mac mac = hmac_sha256(
      as_view(key),
      as_view("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(BytesView(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, TwoPartEqualsConcatenated) {
  const Bytes key = to_bytes("key");
  const Mac a = hmac_sha256_2(as_view(key), as_view("foo"), as_view("bar"));
  const Mac b = hmac_sha256(as_view(key), as_view("foobar"));
  EXPECT_EQ(a, b);
}

TEST(Hmac, VerifyAcceptsAndRejects) {
  const Bytes key = to_bytes("secret");
  const Mac mac = hmac_sha256(as_view(key), as_view("message"));
  EXPECT_TRUE(hmac_verify(as_view(key), as_view("message"),
                          BytesView(mac.data(), mac.size())));
  EXPECT_FALSE(hmac_verify(as_view(key), as_view("Message"),
                           BytesView(mac.data(), mac.size())));
  const Bytes wrong_key = to_bytes("Secret");
  EXPECT_FALSE(hmac_verify(as_view(wrong_key), as_view("message"),
                           BytesView(mac.data(), mac.size())));
}

TEST(Sha256, HardwareAndScalarCoresAgree) {
  // Differential test: whatever core the dispatch picked must match the
  // portable scalar reference on random lengths spanning block boundaries.
  if (!Sha256::hardware_accelerated()) {
    GTEST_SKIP() << "no hardware SHA on this host; scalar-only";
  }
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes data(rng() % 1000);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const Sha256Digest hw = Sha256::hash(as_view(data));
    Sha256::set_hardware_acceleration(false);
    const Sha256Digest scalar = Sha256::hash(as_view(data));
    Sha256::set_hardware_acceleration(true);
    ASSERT_EQ(hw, scalar) << "len=" << data.size();
  }
}

TEST(Hmac, StreamingMidstatesMatchOneShot) {
  const Bytes key = to_bytes("channel-key-material");
  const Hmac hmac(as_view(key));
  // Many messages through ONE cached key schedule.
  for (const char* m : {"", "a", "hello", "a much longer message spanning "
                        "more than one sixty-four byte SHA-256 block bound"}) {
    Sha256 inner = hmac.begin();
    inner.update(as_view(m));
    EXPECT_EQ(hmac.finish(inner), hmac_sha256(as_view(key), as_view(m)));
    EXPECT_EQ(hmac.mac(as_view(m)), hmac_sha256(as_view(key), as_view(m)));
  }
  EXPECT_EQ(hmac.mac2(as_view("foo"), as_view("bar")),
            hmac_sha256(as_view(key), as_view("foobar")));
  EXPECT_TRUE(hmac.verify(as_view("msg"),
                          [&] {
                            const Mac m = hmac.mac(as_view("msg"));
                            return Bytes(m.begin(), m.end());
                          }()));
}

TEST(Hmac, MidstateForkIsIndependent) {
  // Two streams off the same Hmac must not interfere.
  const Hmac hmac(as_view("key"));
  Sha256 s1 = hmac.begin();
  Sha256 s2 = hmac.begin();
  s1.update(as_view("one"));
  s2.update(as_view("two"));
  EXPECT_EQ(hmac.finish(s1), hmac_sha256(as_view("key"), as_view("one")));
  EXPECT_EQ(hmac.finish(s2), hmac_sha256(as_view("key"), as_view("two")));
}

TEST(Hmac, LongKeyMatchesRfcThroughClass) {
  const Bytes key(131, 0xaa);
  const Hmac hmac(as_view(key));
  const Mac mac = hmac.mac(
      as_view("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(BytesView(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(ConstantTimeEqual, Basics) {
  const Bytes a = to_bytes("aaaa");
  const Bytes b = to_bytes("aaab");
  EXPECT_TRUE(constant_time_equal(as_view(a), as_view(a)));
  EXPECT_FALSE(constant_time_equal(as_view(a), as_view(b)));
  EXPECT_FALSE(constant_time_equal(as_view(a), as_view(to_bytes("aaa"))));
}

// --- HKDF (RFC 5869 test vectors) ------------------------------------------

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf_sha256(as_view(ikm), as_view(salt), as_view(info), 42);
  EXPECT_EQ(to_hex(as_view(okm)),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf_sha256(as_view(ikm), BytesView{}, BytesView{}, 42);
  EXPECT_EQ(to_hex(as_view(okm)),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, OutputLengthRespected) {
  for (std::size_t n : {1u, 16u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(hkdf_sha256(as_view("ikm"), BytesView{}, BytesView{}, n).size(),
              n);
  }
}

// --- ChaCha20 (RFC 8439 §2.4.2 vector) --------------------------------------

TEST(ChaCha20, Rfc8439Vector) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  ChaChaNonce nonce{};
  const Bytes nonce_bytes = from_hex("000000000000004a00000000");
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
  const char* plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes out = chacha20(as_view(key), nonce, 1, as_view(plaintext));
  EXPECT_EQ(to_hex(as_view(out)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, RoundTrip) {
  const Bytes key(32, 0x42);
  const auto nonce = make_nonce(7, 99);
  const Bytes plaintext = to_bytes("attack at dawn");
  Bytes data = plaintext;
  chacha20_xor(as_view(key), nonce, 0, data);
  EXPECT_NE(data, plaintext);
  chacha20_xor(as_view(key), nonce, 0, data);
  EXPECT_EQ(data, plaintext);
}

TEST(ChaCha20, DistinctNoncesDistinctStreams) {
  const Bytes key(32, 0x42);
  const Bytes zeros(64, 0);
  const Bytes s1 = chacha20(as_view(key), make_nonce(1, 1), 0, as_view(zeros));
  const Bytes s2 = chacha20(as_view(key), make_nonce(1, 2), 0, as_view(zeros));
  EXPECT_NE(s1, s2);
}

TEST(ChaCha20, RawPointerRegionMatchesBytesOverload) {
  const Bytes key(32, 0x13);
  const auto nonce = make_nonce(5, 6);
  Bytes whole = to_bytes("prefix|payload-region|suffix");
  Bytes region = to_bytes("payload-region");
  // Transform a region inside a larger buffer in place.
  chacha20_xor(as_view(key), nonce, 0, whole.data() + 7, region.size());
  chacha20_xor(as_view(key), nonce, 0, region);
  EXPECT_EQ(
      Bytes(whole.begin() + 7,
            whole.begin() + 7 + static_cast<std::ptrdiff_t>(region.size())),
      region);
  EXPECT_EQ(to_string(BytesView(whole.data(), 7)), "prefix|");
}

// --- Channel nonces ----------------------------------------------------------

TEST(ChannelNonce, RegressionLargeNodeIdsNoLongerCollide) {
  // ChannelId packs sender<<20|receiver. For nodes a and b with a ≡ b
  // (mod 2^20) — e.g. 5 and 5+2^20 — the two DIRECTIONS of the pairwise key
  // agree in the low 32 bits of cq, so the old make_nonce(uint32(cq), cnt)
  // produced the SAME nonce for both directions at equal counters: keystream
  // reuse under one key. The full-64-bit make_channel_nonce must not.
  const std::uint64_t a = 5;
  const std::uint64_t b = 5 + (1ull << 20);
  const std::uint64_t cq_ab = (a << 20) | (b & 0xFFFFF);
  const std::uint64_t cq_ba = (b << 20) | (a & 0xFFFFF);
  ASSERT_NE(cq_ab, cq_ba);
  // The truncation that made the old scheme unsafe:
  ASSERT_EQ(static_cast<std::uint32_t>(cq_ab),
            static_cast<std::uint32_t>(cq_ba));
  EXPECT_EQ(make_nonce(static_cast<std::uint32_t>(cq_ab), 1),
            make_nonce(static_cast<std::uint32_t>(cq_ba), 1));  // the old bug
  EXPECT_NE(make_channel_nonce(cq_ab, 1), make_channel_nonce(cq_ba, 1));

  // Same class of collision for sender ids equal in the low 12 bits.
  const std::uint64_t c = 7;
  const std::uint64_t d = 7 + (1ull << 12);
  const std::uint64_t cq1 = (c << 20) | 3;
  const std::uint64_t cq2 = (d << 20) | 3;
  ASSERT_EQ(static_cast<std::uint32_t>(cq1), static_cast<std::uint32_t>(cq2));
  EXPECT_NE(make_channel_nonce(cq1, 9), make_channel_nonce(cq2, 9));
}

TEST(ChannelNonce, InjectiveUpToMessageLimit) {
  const std::uint64_t cq = 0xDEADBEEFCAFEF00Dull;
  // Distinct counters below kChannelNonceMessageLimit map to distinct
  // nonces; distinct channels never collide regardless of counters.
  const std::uint64_t counters[] = {0, 1, 2, 0xFFFFu, 0x12345678u,
                                    kChannelNonceMessageLimit - 1};
  for (std::size_t i = 0; i < std::size(counters); ++i) {
    for (std::size_t j = i + 1; j < std::size(counters); ++j) {
      EXPECT_NE(make_channel_nonce(cq, counters[i]),
                make_channel_nonce(cq, counters[j]))
          << counters[i] << " vs " << counters[j];
    }
    EXPECT_NE(make_channel_nonce(cq, counters[i]),
              make_channel_nonce(cq ^ 1, counters[i]));
  }
  // AT the limit the low 32 bits wrap — which is exactly why
  // RecipeSecurity::shield refuses to encrypt once a channel's counter
  // reaches kChannelNonceMessageLimit (re-key via re-attestation instead).
  EXPECT_EQ(make_channel_nonce(cq, 0),
            make_channel_nonce(cq, kChannelNonceMessageLimit));
}

// --- Diffie-Hellman
// -----------------------------------------------------------

TEST(DiffieHellman, AgreementMatches) {
  Rng rng(11);
  const DhKeyPair alice = DiffieHellman::generate(rng);
  const DhKeyPair bob = DiffieHellman::generate(rng);
  const auto ka = DiffieHellman::shared_key(alice.private_exponent,
                                            bob.public_value, as_view("ctx"));
  const auto kb = DiffieHellman::shared_key(bob.private_exponent,
                                            alice.public_value, as_view("ctx"));
  EXPECT_EQ(ka.material, kb.material);
  EXPECT_EQ(ka.material.size(), kSymmetricKeySize);
}

TEST(DiffieHellman, ContextSeparatesKeys) {
  Rng rng(11);
  const DhKeyPair alice = DiffieHellman::generate(rng);
  const DhKeyPair bob = DiffieHellman::generate(rng);
  const auto k1 = DiffieHellman::shared_key(alice.private_exponent,
                                            bob.public_value, as_view("ctx1"));
  const auto k2 = DiffieHellman::shared_key(alice.private_exponent,
                                            bob.public_value, as_view("ctx2"));
  EXPECT_NE(k1.material, k2.material);
}

TEST(DiffieHellman, EavesdropperKeyDiffers) {
  Rng rng(11);
  const DhKeyPair alice = DiffieHellman::generate(rng);
  const DhKeyPair bob = DiffieHellman::generate(rng);
  const DhKeyPair eve = DiffieHellman::generate(rng);
  const auto kab = DiffieHellman::shared_key(alice.private_exponent,
                                             bob.public_value, as_view("ctx"));
  const auto keb = DiffieHellman::shared_key(eve.private_exponent,
                                             bob.public_value, as_view("ctx"));
  EXPECT_NE(kab.material, keb.material);
}

TEST(DiffieHellman, ModexpKnownValues) {
  EXPECT_EQ(DiffieHellman::modexp(2, 10, 1000000007ULL), 1024u);
  EXPECT_EQ(DiffieHellman::modexp(3, 0, 97), 1u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  EXPECT_EQ(DiffieHellman::modexp(12345, DiffieHellman::kPrime - 1,
                                  DiffieHellman::kPrime),
            1u);
}

// --- DRBG
// ---------------------------------------------------------------------

TEST(Drbg, DeterministicPerSeed) {
  Drbg a(as_view("seed-1"));
  Drbg b(as_view("seed-1"));
  Drbg c(as_view("seed-2"));
  EXPECT_EQ(a.generate(64), b.generate(64));
  EXPECT_NE(Drbg(as_view("seed-1")).generate(64), c.generate(64));
}

TEST(Drbg, SuccessiveOutputsDiffer) {
  Drbg d(as_view("seed"));
  EXPECT_NE(d.generate(32), d.generate(32));
  EXPECT_NE(d.generate_u64(), d.generate_u64());
}

TEST(Drbg, GenerateKeyHasCorrectSize) {
  Drbg d(as_view("seed"));
  EXPECT_EQ(d.generate_key().material.size(), kSymmetricKeySize);
}

}  // namespace
}  // namespace recipe::crypto
