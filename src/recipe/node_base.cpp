#include "recipe/node_base.h"

#include <algorithm>
#include <cassert>

#include "kvstore/snapshot.h"
#include "obs/flight_recorder.h"

namespace recipe {

ReplicaNode::ReplicaNode(sim::Clock& clock, net::Transport& network,
                         ReplicaOptions options)
    : clock_(clock),
      network_(network),
      options_(std::move(options)),
      rpc_(clock, network, options_.self, options_.stack,
           options_.rpc_config),
      batcher_(clock, options_.batch,
               [this](NodeId peer, Bytes body, std::size_t /*count*/) {
                 send_batch(peer, std::move(body));
               }),
      kv_(options_.kv_config),
      trusted_clock_(clock),
      failure_detector_(trusted_clock_, options_.suspect_timeout,
                        options_.suspect_timeout / 4),
      phi_detector_(options_.phi) {
  // Durability seam first: the security policy captures the vault pointer,
  // so the vault (whose horizons are monotone across every restart) must
  // outlive and precede it.
  if (options_.wal_storage != nullptr && options_.secured &&
      options_.enclave != nullptr) {
    if (auto key = options_.enclave->sealing_key()) {
      counter_vault_ = std::make_unique<kv::CounterVault>(
          *options_.wal_storage, key.value(), options_.counter_stride);
    }
    reopen_wal();
  }
  RecipeSecurity* recipe_security = nullptr;
  if (options_.secured) {
    assert(options_.enclave != nullptr && "secured mode requires an enclave");
    RecipeSecurityConfig config;
    config.confidentiality = options_.confidentiality;
    config.working_set = [this] { return enclave_working_set(); };
    config.counter_vault = counter_vault_.get();
    auto security = std::make_unique<RecipeSecurity>(
        *options_.enclave, options_.self, options_.cost_model,
        &network_.cpu(options_.self), config);
    recipe_security = security.get();
    security_ = std::move(security);
  } else {
    security_ = std::make_unique<NullSecurity>(options_.self);
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    // Cell-backed handles for the hot sites instrumented in this file.
    rpc_requests_ = m.counter("recipe_rpc_requests_total");
    rpc_timeouts_ = m.counter("recipe_rpc_timeouts_total");
    wal_entries_ = m.counter("recipe_wal_entries_total");
    wal_group_commits_ = m.counter("recipe_wal_group_commits_total");
    wal_commit_failures_ = m.counter("recipe_wal_commit_failures_total");
    wal_compactions_ = m.counter("recipe_wal_compactions_total");
    wal_commit_us_ = m.histogram("recipe_wal_commit_us");
    apply_us_ = m.histogram("recipe_node_apply_us");
    // Read-callbacks over state the node already counts.
    auto counter = [&](const char* name, auto read) {
      metric_handles_.push_back(m.on_counter(name, {}, std::move(read)));
    };
    counter("recipe_node_committed_ops_total",
            [this] { return committed_ops(); });
    counter("recipe_node_snapshot_rollback_rejected_total",
            [this] { return snapshot_rollback_rejected(); });
    counter("recipe_node_snapshot_corrupt_total",
            [this] { return snapshot_corrupt(); });
    counter("recipe_node_fd_suspicions_total", [this] {
      return fd_suspicions_.load(std::memory_order_relaxed);
    });
    counter("recipe_batch_messages_total",
            [this] { return batcher_.messages_batched(); });
    counter("recipe_batch_flushes_total",
            [this] { return batcher_.batches_flushed(); });
    counter("recipe_batch_flushes_by_size_total",
            [this] { return batcher_.flushes_by_size(); });
    counter("recipe_batch_flushes_by_timer_total",
            [this] { return batcher_.flushes_by_timer(); });
    metric_handles_.push_back(
        m.on_gauge("recipe_batch_buffered_bytes", {}, [this] {
          return static_cast<std::int64_t>(batcher_.buffered_bytes());
        }));
    if (recipe_security != nullptr) {
      // The callbacks capture the raw RecipeSecurity (stats accessors are
      // not on the SecurityPolicy seam); handles unregister before
      // security_ is destroyed (declaration order).
      auto* sec = recipe_security;
      counter("recipe_security_rejected_auth_total",
              [sec] { return sec->rejected_auth(); });
      counter("recipe_security_rejected_replay_total",
              [sec] { return sec->rejected_replay(); });
      counter("recipe_security_rejected_view_total",
              [sec] { return sec->rejected_view(); });
      counter("recipe_security_rejected_overflow_total",
              [sec] { return sec->rejected_overflow(); });
      counter("recipe_security_buffered_future_total",
              [sec] { return sec->buffered_future(); });
    }
  }

  // Batch carrier: ONE verify (MAC + replay slot) covers every sub-message.
  // Registered directly with the rpc layer (not via on()) so a batch frame
  // can never be dispatched as a protocol payload or vice versa.
  rpc_.register_handler(msg::kBatch, [this](rpc::RequestContext& ctx) {
    if (!running_) return;
    auto env = [&] {
      obs::Span span(obs::SpanKind::kVerify, ctx.rpc_id, options_.self.value);
      span.set_detail(ctx.payload.size());
      return security_->verify(ctx.src, as_view(ctx.payload));
    }();
    if (!env) return;  // drop: unauthenticated / replayed / malformed
    if (!env.value().batch) return;  // single frame re-typed as a batch
    dispatch_batch(env.value(), ctx);
    // Strict-order mode: futures promoted by this batch. Batch futures are
    // dispatchable; a promoted SINGLE frame's rpc type is unrecoverable here
    // (it lives outside the shielded frame) so it must be dropped, exactly
    // as the pre-batching code lost it to the wrong type's handler.
    for (VerifiedEnvelope& ready : security_->drain_ready()) {
      if (ready.batch) dispatch_batch(ready, ctx);
    }
    // Group commit aligned to the batch-flush boundary: ONE WAL commit
    // record covers every entry this batch applied.
    wal_group_commit();
  });

  on(msg::kClientRequest, [this](VerifiedEnvelope& env,
                                 rpc::RequestContext& ctx) {
    handle_client_request(env, ctx);
  });
  on(msg::kHeartbeat, [this](VerifiedEnvelope& env, rpc::RequestContext&) {
    note_alive(env.sender);
    // A normal heartbeat from a peer we still hold as shadow is an implicit
    // promotion: shadows heartbeat with kShadowJoin instead, so this frame
    // (authenticated) proves the peer is active — it self-heals a lost
    // kPromote notice.
    if (shadow_peers_.erase(env.sender) > 0) on_peer_promoted(env.sender);
  });

  // Pacing probe: answer with an empty UNBATCHED response. The probe
  // measures the intrinsic round trip (network + verify + queueing) that
  // the flush delay is supposed to hide inside; letting it ride the batched
  // path would fold both ends' flush delays into the sample and the pacing
  // loop would chase its own tail up to the ceiling.
  on(msg::kPacingProbe, [this](VerifiedEnvelope& env,
                               rpc::RequestContext& ctx) {
    auto wire = security_->shield(env.sender, current_view(), BytesView{});
    if (wire) ctx.respond(std::move(wire).take());
  });

  // CAS notice: a node re-attested and rejoins as a FRESH replica — restart
  // its channel counters (paper §3.7 step 3). Authenticated like any peer
  // message: only the CAS (which holds the cluster root) can produce it.
  on(attest::msg::kFreshNode,
     [this](VerifiedEnvelope& env, rpc::RequestContext&) {
       if (env.sender != options_.cas_id) return;
       Reader r(as_view(env.payload));
       const auto fresh = r.id<NodeId>();
       if (!fresh || *fresh == options_.self) return;
       security_->reset_peer(*fresh);
       // Fresh grace period; the rejoiner's heartbeat cadence restarts, so
       // its accrued interval history restarts with it.
       phi_detector_.forget(*fresh);
       note_alive(*fresh);
       std::erase(suspected_already_, *fresh);
     });

  // Chunked state transfer to a recovering shadow replica (or a shard-group
  // joiner): serialize up to `max_entries` of (key, value, timestamp)
  // strictly after `cursor`, plus a done flag and the resume cursor. Values
  // are re-read through the integrity-checking path so a corrupted host can
  // never poison a joiner. A shadow never donates — its state is incomplete.
  on(msg::kStateFetch, [this](VerifiedEnvelope& env, rpc::RequestContext& ctx) {
    if (shadow_) return;
    Reader req(as_view(env.payload));
    auto has_cursor = req.boolean();
    auto cursor = req.str();
    auto max_entries = req.u32();
    if (!has_cursor || !cursor || !max_entries) return;  // malformed: drop
    const std::size_t limit =
        *max_entries > 0 ? *max_entries : options_.state_chunk_entries;
    Writer entries;
    std::uint32_t count = 0;
    std::string last_key;
    bool more = false;
    const auto emit = [&](std::string_view key, const kv::Timestamp&) {
      if (count == limit) {
        more = true;
        return false;
      }
      auto value = kv_.get(key);
      if (value.is_ok()) {
        entries.str(key);
        entries.bytes(as_view(value.value().value));
        entries.u64(value.value().timestamp.counter);
        entries.u64(value.value().timestamp.node);
        ++count;
      }
      last_key.assign(key);
      return true;
    };
    // An explicit has_cursor flag disambiguates "from the very first key"
    // from "strictly after the empty-string key" — without it an entry
    // stored under "" could never be streamed.
    if (*has_cursor) {
      kv_.scan_from(*cursor, emit);
    } else {
      kv_.scan(emit);
    }
    Writer w;
    w.u32(count);
    w.raw(as_view(entries.buffer()));
    w.boolean(!more);
    w.str(last_key);
    respond(ctx, env.sender, as_view(w.buffer()));
  });

  // Recovery notices (paper §3.7): authenticated like any peer message.
  on(msg::kShadowJoin, [this](VerifiedEnvelope& env, rpc::RequestContext&) {
    if (env.sender == options_.self) return;
    note_alive(env.sender);  // it is demonstrably alive
    std::erase(suspected_already_, env.sender);
    if (shadow_peers_.insert(env.sender).second) on_peer_shadow(env.sender);
  });
  on(msg::kPromote, [this](VerifiedEnvelope& env, rpc::RequestContext&) {
    note_alive(env.sender);
    std::erase(suspected_already_, env.sender);
    if (shadow_peers_.erase(env.sender) > 0) on_peer_promoted(env.sender);
  });
}

ReplicaNode::~ReplicaNode() {
  heartbeat_timer_.cancel();
  notice_timer_.cancel();
}

void ReplicaNode::note_alive(NodeId peer) {
  failure_detector_.heartbeat(peer);
  phi_detector_.heartbeat(peer, trusted_clock_.now());
}

void ReplicaNode::start() {
  running_ = true;
  // Grace period for every peer.
  for (NodeId peer : peers()) note_alive(peer);
  if (options_.heartbeat_period > 0) heartbeat_tick();
}

void ReplicaNode::stop() {
  running_ = false;
  heartbeat_timer_.cancel();
  notice_timer_.cancel();
  // Machine failure: buffered batches die with the node, nothing is flushed.
  batcher_.cancel_all();
  // Probes in flight died with the process; a rejoin starts unlatched.
  probe_inflight_.clear();
  probe_last_.clear();
  network_.crash(options_.self);
  if (options_.enclave != nullptr) options_.enclave->crash();
}

void ReplicaNode::wipe_state() {
  kv_.clear();
  client_table_.clear();
}

void ReplicaNode::start_as_shadow() {
  shadow_ = true;
  // Cold rejoin with a WAL: reopen under a fresh boot epoch. The hardware
  // counter advance BURNS any stale clean marker (a marker from an older
  // incarnation must never validate against a node that crashed since), and
  // new segment ids stay strictly above every id any incarnation used.
  reopen_wal();
  network_.recover(options_.self);
  // The restarted enclave lost every channel: replay windows, strict-order
  // state, cached contexts. Receive-side state must start fresh with it.
  security_->reset_all();
  start();
  broadcast_notice(msg::kShadowJoin, 3);
}

void ReplicaNode::promote() {
  if (!shadow_) return;
  notice_timer_.cancel();  // a straggler kShadowJoin must not outlive this
  shadow_ = false;
  // Resume sequence-style bookkeeping from everything installed (streamed
  // chunks, restored snapshot, teed live writes): the max seq-timestamp in
  // the store is by construction the newest write this replica holds.
  synced_max_counter_ = 0;
  kv_.scan([this](std::string_view, const kv::Timestamp& ts) {
    if (ts.node == 0 && ts.counter > synced_max_counter_) {
      synced_max_counter_ = ts.counter;
    }
    return true;
  });
  broadcast_notice(msg::kPromote, 2);
  on_promoted();
}

void ReplicaNode::broadcast_notice(rpc::RequestType type, int attempts) {
  if (!running_) return;
  // A pending retry may fire after the state flipped: joins only while
  // shadow, promotes only while active.
  if (type == msg::kShadowJoin && !shadow_) return;
  if (type == msg::kPromote && shadow_) return;
  for (NodeId peer : peers()) {
    auto wire = security_->shield(peer, current_view(), BytesView{});
    if (wire) rpc_.send(peer, type, std::move(wire).take());
  }
  if (attempts > 1) {
    notice_timer_ = clock_.schedule(sim::kMillisecond, [this, type,
                                                        attempts] {
      broadcast_notice(type, attempts - 1);
    });
  }
}

std::vector<NodeId> ReplicaNode::peers() const {
  std::vector<NodeId> out;
  out.reserve(options_.membership.size());
  for (NodeId n : options_.membership) {
    if (n != options_.self) out.push_back(n);
  }
  return out;
}

std::uint64_t ReplicaNode::enclave_working_set() const {
  // Batches accumulate inside the enclave before their flush: they are part
  // of the modelled in-enclave message-buffer footprint (EPC pressure).
  return options_.enclave_runtime_bytes + options_.msg_buffer_bytes +
         batcher_.buffered_bytes() + kv_.enclave_bytes();
}

void ReplicaNode::on(rpc::RequestType type, EnvelopeHandler handler) {
  handlers_[type] = std::move(handler);
  rpc_.register_handler(type, [this, type](rpc::RequestContext& ctx) {
    if (!running_) return;  // a stopped node processes nothing
    auto env = [&] {
      obs::Span span(obs::SpanKind::kVerify, ctx.rpc_id, options_.self.value);
      span.set_detail(ctx.payload.size());
      return security_->verify(ctx.src, as_view(ctx.payload));
    }();
    if (!env) return;  // drop: unauthenticated / replayed / malformed
    if (env.value().batch) return;  // batch frames only enter via msg::kBatch
    dispatch_request(type, env.value(), ctx);
    // Unbatched frames form their own (singleton) commit group.
    wal_group_commit();
  });
}

void ReplicaNode::dispatch_request(rpc::RequestType type, VerifiedEnvelope& env,
                                   rpc::RequestContext& ctx) {
  const auto it = handlers_.find(type);
  if (it == handlers_.end()) return;  // unknown (or nested-batch) type: drop
  const std::uint64_t prev_op = current_op_rpc_id_;
  current_op_rpc_id_ = ctx.rpc_id;
  it->second(env, ctx);
  current_op_rpc_id_ = prev_op;
  // Strict-order mode may have unblocked buffered futures. A promoted future
  // can itself be a batch frame — route it through the batch dispatcher, not
  // the triggering type's handler.
  for (VerifiedEnvelope& ready : security_->drain_ready()) {
    if (ready.batch) {
      dispatch_batch(ready, ctx);
    } else {
      it->second(ready, ctx);
    }
  }
}

void ReplicaNode::dispatch_batch(VerifiedEnvelope& env,
                                 rpc::RequestContext& ctx) {
  auto view = BatchView::parse(as_view(env.payload));
  if (!view) return;  // malformed body despite a valid MAC (Null mode only)
  for (const BatchItem& item : view.value()) {
    if (item.kind == BatchItem::kKindRequest) {
      VerifiedEnvelope sub = sub_envelope(env, item.payload);
      // The synthesized context lets handlers respond exactly as if the
      // sub-message had arrived as its own packet.
      rpc::RequestContext sub_ctx{ctx.rpc, ctx.src, item.type, item.rpc_id,
                                  Bytes{}};
      dispatch_request(item.type, sub, sub_ctx);
    } else if (item.kind == BatchItem::kKindResponse) {
      // settle() refuses rpcs that already timed out or completed, so a
      // straggler batch cannot double-complete a request.
      if (!rpc_.settle(item.rpc_id)) continue;
      const auto it = response_handlers_.find(item.rpc_id);
      if (it == response_handlers_.end()) continue;
      PendingResponse pending = std::move(it->second);
      response_handlers_.erase(it);
      feed_rtt(pending);
      VerifiedEnvelope sub = sub_envelope(env, item.payload);
      if (pending.handler) pending.handler(sub);
    }
    // Unknown kinds are skipped: forward compatibility inside a valid MAC.
  }
}

VerifiedEnvelope ReplicaNode::sub_envelope(const VerifiedEnvelope& batch_env,
                                           BytesView payload) const {
  VerifiedEnvelope sub;
  sub.sender = batch_env.sender;
  sub.view = batch_env.view;
  sub.cnt = batch_env.cnt;
  sub.payload.assign(payload.begin(), payload.end());
  return sub;
}

void ReplicaNode::feed_rtt(const PendingResponse& pending) {
  if (!batcher_.enabled() || pending.sent_at == 0) return;
  const sim::Time now = clock_.now();
  if (now > pending.sent_at) {
    batcher_.record_rtt(pending.peer, now - pending.sent_at);
  }
}

void ReplicaNode::maybe_probe_rtt(NodeId peer) {
  if (options_.batch.rtt_fraction <= 0.0) return;
  if (probe_inflight_.contains(peer)) return;
  const sim::Time now = clock_.now();
  const auto it = probe_last_.find(peer);
  if (it != probe_last_.end() &&
      now - it->second < options_.batch.rtt_probe_period) {
    return;
  }
  probe_last_[peer] = now;
  probe_inflight_.insert(peer);
  // The probe bypasses the batcher in BOTH directions (plain shielded frame
  // out, unbatched response back): the sample must be the round trip the
  // flush delay hides inside, not one inflated by the very delays it tunes.
  // It still shares the socket with batched traffic, so real congestion and
  // egress queueing show up in the signal. The timeout bounds the in-flight
  // latch when the peer is down.
  auto wire = security_->shield(peer, current_view(), BytesView{});
  if (!wire) {
    probe_inflight_.erase(peer);
    return;
  }
  rpc_.send(peer, msg::kPacingProbe, std::move(wire).take(),
            [this, peer, now](NodeId src, Bytes response) {
              probe_inflight_.erase(peer);
              if (!running_) return;
              auto env = security_->verify(src, as_view(response));
              if (!env || env.value().batch) return;  // forged/replayed: drop
              const sim::Time done = clock_.now();
              if (done > now) batcher_.record_rtt(peer, done - now);
            },
            10 * options_.batch.rtt_probe_period,
            [this, peer] { probe_inflight_.erase(peer); },
            // Advisory traffic: under egress overload the probe is the
            // FIRST thing shed (a stale RTT sample beats displacing
            // protocol progress), and the in-flight latch times out.
            /*rpc_id=*/std::nullopt, net::PacketPriority::kOptional);
}

void ReplicaNode::send_batch(NodeId peer, Bytes body) {
  // Each flush re-arms the link's RTT measurement first: the probe lands in
  // the batch AFTER this one (this body is already finalized).
  maybe_probe_rtt(peer);
  // Scatter shield: the batch body is encrypted/MACed where it already
  // lives and travels as head || body || tail through gather I/O — the
  // flushed frame is never re-copied into a contiguous buffer. Shipped
  // bytes are identical to shield_batch().
  obs::Span shield_span(obs::SpanKind::kShield, /*rpc_id=*/0, options_.self.value);
  shield_span.set_detail(body.size());
  auto parts = security_->shield_batch_parts(peer, current_view(), body);
  shield_span.finish();
  if (!parts) return;  // crashed enclave: the batch dies like any send
  std::vector<Bytes> segments;
  segments.reserve(3);
  segments.push_back(std::move(parts.value().head));
  segments.push_back(std::move(body));
  segments.push_back(std::move(parts.value().tail));
  // Fire-and-forget at the transport level; tracked sub-requests were
  // registered via expect_response() and time out individually.
  rpc_.send_gather(peer, msg::kBatch, std::move(segments));
}

void ReplicaNode::send_to(NodeId peer, rpc::RequestType type, BytesView payload,
                          ResponseHandler continuation,
                          std::optional<sim::Time> timeout,
                          rpc::TimeoutHandler on_timeout) {
  const bool tracked = continuation != nullptr || on_timeout != nullptr;
  const std::uint64_t rpc_id = rpc_.allocate_rpc_id();
  rpc_requests_.inc();

  rpc::Continuation wrapped;
  rpc::TimeoutHandler timeout_wrapped;
  if (tracked) {
    response_handlers_[rpc_id] =
        PendingResponse{std::move(continuation), peer, clock_.now()};
    // Unbatched wire path. (When the peer answers from inside a batch the
    // batch dispatcher completes the rpc instead and this never runs.)
    wrapped = [this, rpc_id](NodeId src, Bytes response) {
      const auto it = response_handlers_.find(rpc_id);
      if (it == response_handlers_.end()) return;
      PendingResponse pending = std::move(it->second);
      response_handlers_.erase(it);
      feed_rtt(pending);
      if (!running_) return;
      auto env = security_->verify(src, as_view(response));
      if (!env) return;  // forged/replayed response: drop
      // A batch frame is never a direct response.
      if (env.value().batch) return;
      if (pending.handler) pending.handler(env.value());
      // Response continuations apply writes too (quorum phase-2, state
      // chunks): the delivery is its own commit group.
      wal_group_commit();
    };
    timeout_wrapped = [this, rpc_id, cb = std::move(on_timeout)] {
      response_handlers_.erase(rpc_id);
      rpc_timeouts_.inc();
      if (cb) cb();
    };
  }

  if (batcher_.enabled()) {
    if (tracked) {
      rpc_.expect_response(peer, rpc_id, std::move(wrapped), timeout,
                           std::move(timeout_wrapped));
    }
    batcher_.enqueue(peer, BatchItem::kKindRequest, type, rpc_id, payload);
    return;
  }

  auto wire = security_->shield(peer, current_view(), payload);
  if (!wire) {  // crashed enclave: cannot send (and nothing was registered)
    response_handlers_.erase(rpc_id);
    return;
  }
  rpc_.send(peer, type, std::move(wire).take(), std::move(wrapped), timeout,
            std::move(timeout_wrapped), rpc_id);
}

void ReplicaNode::broadcast(rpc::RequestType type, BytesView payload,
                            ResponseHandler continuation,
                            std::optional<sim::Time> timeout,
                            rpc::TimeoutHandler on_timeout) {
  for (NodeId peer : peers()) {
    send_to(peer, type, payload, continuation, timeout, on_timeout);
  }
}

void ReplicaNode::respond(rpc::RequestContext& ctx, NodeId peer,
                          BytesView payload) {
  if (batcher_.enabled()) {
    batcher_.enqueue(peer, BatchItem::kKindResponse, ctx.type, ctx.rpc_id,
                     payload);
    return;
  }
  auto wire = security_->shield(peer, current_view(), payload);
  if (!wire) return;
  ctx.respond(std::move(wire).take());
}

std::function<void(Bytes)> ReplicaNode::deferred_responder(
    const rpc::RequestContext& ctx) {
  const NodeId dst = ctx.src;
  const rpc::RequestType type = ctx.type;
  const std::uint64_t rpc_id = ctx.rpc_id;
  return [this, dst, type, rpc_id](Bytes payload) {
    if (batcher_.enabled()) {
      batcher_.enqueue(dst, BatchItem::kKindResponse, type, rpc_id,
                       as_view(payload));
      return;
    }
    auto wire = security_->shield(dst, current_view(), as_view(payload));
    if (!wire) return;
    rpc_.respond_to(dst, type, rpc_id, std::move(wire).take());
  };
}

bool ReplicaNode::kv_write(std::string_view key, BytesView value,
                           kv::Timestamp ts) {
  if (options_.cost_model != nullptr) {
    sim::Time cost = options_.cost_model->hash(value.size()) +
                     options_.cost_model->enclave_copy(value.size(),
                                                       enclave_working_set());
    if (kv_.confidential()) cost += options_.cost_model->encrypt(value.size());
    cpu().charge(cost);
  }
  // One timestamp pair feeds both the apply histogram and the flight
  // recorder; neither costs a clock read when observability is off.
  const bool timed = bool(apply_us_) || obs::FlightRecorder::global().enabled();
  const std::uint64_t t0 = timed ? obs::FlightRecorder::now_ns() : 0;
  const bool applied = kv_.write(key, value, ts);
  // Every APPLIED write is logged; the group boundary (one commit record per
  // dispatched message/batch) is drawn by wal_group_commit().
  if (applied && wal_ != nullptr) {
    wal_->append(key, value, ts);
    wal_entries_.inc();
  }
  if (timed) {
    const std::uint64_t t1 = obs::FlightRecorder::now_ns();
    apply_us_.record((t1 - t0) / 1000);
    obs::FlightRecorder::global().record(obs::SpanKind::kApply,
                                         current_op_rpc_id_,
                                         options_.self.value, t0, t1,
                                         /*detail=*/applied ? 1 : 0);
  }
  return applied;
}

Result<kv::VersionedValue> ReplicaNode::kv_get(std::string_view key) {
  if (options_.cost_model != nullptr) {
    sim::Time cost = options_.cost_model->hash(256) +
                     options_.cost_model->enclave_copy(256,
                                                       enclave_working_set());
    if (kv_.confidential()) cost += options_.cost_model->encrypt(256);
    cpu().charge(cost);
  }
  return kv_.get(key);
}

void ReplicaNode::handle_client_request(VerifiedEnvelope& env,
                                        rpc::RequestContext& ctx) {
  auto parsed = ClientRequest::parse(as_view(env.payload));
  if (!parsed) return;
  const ClientRequest& request = parsed.value();

  // The authenticated channel binds the sender: a Byzantine client cannot
  // impersonate another client id when security is on.
  if (security_->secured() && request.client.value != env.sender.value) return;

  switch (client_table_.admit(request.client, request.rid)) {
    case ClientTable::Decision::kStale:
    case ClientTable::Decision::kInFlight:
      return;  // drop replays/duplicates
    case ClientTable::Decision::kCached: {
      const Bytes* cached =
          client_table_.cached_reply(request.client, request.rid);
      if (cached != nullptr) respond(ctx, env.sender, as_view(*cached));
      return;
    }
    case ClientTable::Decision::kExecute:
      break;
  }

  if (shadow_ || !is_coordinator()) {
    // Shadow replicas serve no clients until promoted; otherwise not the
    // coordinator for this protocol: refuse (the data-store routing layer
    // retries against the right node).
    ClientReply reply;
    reply.ok = false;
    respond(ctx, env.sender, as_view(reply.serialize()));
    return;
  }

  client_table_.begin(request.client, request.rid);
  auto responder = deferred_responder(ctx);
  const ClientId client = request.client;
  const RequestId rid = request.rid;
  submit(request, [this, responder = std::move(responder), client,
                   rid](const ClientReply& reply) {
    Bytes encoded = reply.serialize();
    client_table_.complete(client, rid, encoded);
    if (reply.ok) record_commit();
    responder(std::move(encoded));
  });
}

void ReplicaNode::sync_state_from(
    NodeId peer, std::function<void(Result<std::size_t>)> done) {
  request_state_chunk(peer, std::nullopt, std::make_shared<std::size_t>(0),
                      std::move(done));
}

void ReplicaNode::request_state_chunk(
    NodeId peer, const std::optional<std::string>& cursor,
    std::shared_ptr<std::size_t> installed,
    std::function<void(Result<std::size_t>)> done) {
  Writer req;
  req.boolean(cursor.has_value());
  req.str(cursor.value_or(std::string{}));
  req.u32(static_cast<std::uint32_t>(options_.state_chunk_entries));
  send_to(peer, msg::kStateFetch, as_view(req.buffer()),
          [this, peer, installed, done](VerifiedEnvelope& env) {
            Reader r(as_view(env.payload));
            auto count = r.u32();
            if (!count) {
              done(Status::error(ErrorCode::kInvalidArgument,
                                 "malformed state chunk"));
              return;
            }
            for (std::uint32_t i = 0; i < *count; ++i) {
              auto key = r.str();
              auto value = r.bytes();
              auto ts_counter = r.u64();
              auto ts_node = r.u64();
              if (!key || !value || !ts_counter || !ts_node) {
                done(Status::error(ErrorCode::kInvalidArgument,
                                   "truncated state chunk"));
                return;
              }
              // Last-writer-wins merge; only entries that advance local
              // state count, so a repeated pass over unchanged state
              // installs ZERO — the fixpoint condition catch_up_from()
              // converges on.
              const kv::Timestamp ts{*ts_counter, *ts_node};
              if (!kv_.would_advance(*key, ts)) continue;
              if (kv_write(*key, as_view(*value), ts)) ++*installed;
            }
            auto finished = r.boolean();
            auto next_cursor = r.str();
            if (!finished || !next_cursor) {
              done(Status::error(ErrorCode::kInvalidArgument,
                                 "malformed state chunk trailer"));
              return;
            }
            if (*finished) {
              done(*installed);
              return;
            }
            request_state_chunk(peer, *next_cursor, installed, done);
          },
          5 * sim::kSecond,
          [done] { done(Status::error(ErrorCode::kTimeout, "state chunk")); });
}

void ReplicaNode::catch_up_from(NodeId peer,
                                std::function<void(Result<std::size_t>)> done,
                                std::size_t max_passes) {
  run_catch_up_pass(peer, max_passes, 0, std::move(done));
}

void ReplicaNode::run_catch_up_pass(
    NodeId peer, std::size_t passes_left, std::size_t total,
    std::function<void(Result<std::size_t>)> done) {
  if (passes_left == 0) {
    // Cap hit under a constant write load: the teed live traffic covers
    // everything committed since the shadow join, so promoting is safe.
    done(total);
    return;
  }
  sync_state_from(peer, [this, peer, passes_left, total,
                         done](Result<std::size_t> pass) {
    if (!pass) {
      done(pass.status());
      return;
    }
    if (pass.value() == 0) {
      done(total);  // fixpoint: the stream has nothing newer than we hold
      return;
    }
    run_catch_up_pass(peer, passes_left - 1, total + pass.value(), done);
  });
}

Result<Bytes> ReplicaNode::seal_snapshot() {
  if (options_.enclave == nullptr) {
    return Status::error(ErrorCode::kInternal, "sealing requires an enclave");
  }
  auto key = options_.enclave->sealing_key();
  if (!key) return key.status();
  auto version = options_.enclave->advance_snapshot_version();
  if (!version) return version.status();
  return kv::seal_snapshot(kv_, key.value(), version.value());
}

Result<std::size_t> ReplicaNode::restore_snapshot(BytesView sealed) {
  if (options_.enclave == nullptr) {
    return Status::error(ErrorCode::kInternal, "sealing requires an enclave");
  }
  auto key = options_.enclave->sealing_key();
  if (!key) return key.status();
  auto version = options_.enclave->snapshot_version();
  if (!version) return version.status();
  auto restored =
      kv::unseal_snapshot(sealed, key.value(), version.value(), kv_);
  if (!restored) {
    if (restored.status().code() == ErrorCode::kRollback) {
      ++snapshot_rollback_rejected_;
    } else {
      // Tampered/truncated blob: noticed, pinned, and (in the rejoin
      // driver) degraded to a cold rejoin rather than treated as fatal.
      ++snapshot_corrupt_;
    }
    return restored.status();
  }
  // Snapshot entries entered the store OUTSIDE the logged apply path: a
  // clean shutdown must compact before its marker covers this baseline.
  if (wal_ != nullptr && restored.value().installed > 0) {
    wal_baseline_dirty_ = true;
  }
  return restored.value().installed;
}

void ReplicaNode::reopen_wal() {
  wal_.reset();
  // Mirror the constructor's gate: an unsecured node must never grow a WAL
  // on a restart path (warm restart is meaningless without the shielded
  // channel machinery, and has_wal() feeds the rejoin driver's decision).
  if (options_.wal_storage == nullptr || !options_.secured ||
      options_.enclave == nullptr) {
    return;
  }
  auto key = options_.enclave->sealing_key();
  auto epoch = options_.enclave->advance_snapshot_version();
  if (!key || !epoch) return;  // crashed enclave: no WAL this incarnation
  wal_ = std::make_unique<kv::Wal>(*options_.wal_storage, key.value(),
                                   epoch.value(), options_.wal);
}

void ReplicaNode::wal_group_commit() {
  if (wal_ == nullptr || wal_->pending_entries() == 0) return;
  const std::size_t pending = wal_->pending_entries();
  const std::uint64_t rotated_before = wal_->segments_rotated();
  const bool timed =
      bool(wal_commit_us_) || obs::FlightRecorder::global().enabled();
  const std::uint64_t t0 = timed ? obs::FlightRecorder::now_ns() : 0;
  const bool committed = bool(wal_->commit());
  if (timed) {
    const std::uint64_t t1 = obs::FlightRecorder::now_ns();
    wal_commit_us_.record((t1 - t0) / 1000);
    obs::FlightRecorder::global().record(obs::SpanKind::kWalGroupCommit,
                                         /*rpc_id=*/0, options_.self.value, t0, t1,
                                         /*detail=*/pending);
  }
  // Commit failure only costs warm-restart eligibility (the entries are
  // already applied and replicated); the node keeps serving. But the store
  // now holds state the log missed, so the baseline is dirty until a
  // compaction reseals the full store — otherwise a later clean marker
  // would vouch for a log with a silent hole in it.
  if (!committed) {
    wal_commit_failures_.inc();
    wal_baseline_dirty_ = true;
    if (wal_->seq_exhausted()) {
      // Per-epoch segment sequence space ran out: reopen under a freshly
      // reserved boot epoch rather than ever wrapping into nonce reuse.
      reopen_wal();
    }
    return;
  }
  wal_group_commits_.inc();
  // Compaction piggybacks on rotation: only a commit that sealed a segment
  // can push the sealed-segment count past the threshold, so the (storage
  // enumerating) should_compact() check is skipped on the common path.
  if (wal_->segments_rotated() == rotated_before || !wal_->should_compact()) {
    return;
  }
  if (auto version = options_.enclave->advance_snapshot_version()) {
    if (wal_->compact(kv_, version.value()).is_ok()) {
      wal_compactions_.inc();
      wal_baseline_dirty_ = false;  // the compacted snapshot covers the store
    }
  }
}

Status ReplicaNode::shutdown_clean() {
  if (wal_ == nullptr || options_.enclave == nullptr) {
    stop();
    return Status::error(ErrorCode::kUnavailable,
                         "no WAL: clean shutdown is a plain stop");
  }
  // Flush the group-commit tail so the log covers every applied write.
  if (auto committed = wal_->commit(); !committed) {
    stop();
    return committed.status();
  }
  // State that bypassed the log (a sealed-snapshot restore during a cold
  // rejoin) is only covered once compacted into the WAL's own snapshot.
  if (wal_baseline_dirty_) {
    if (auto version = options_.enclave->advance_snapshot_version()) {
      if (wal_->compact(kv_, version.value()).is_ok()) {
        wal_baseline_dirty_ = false;
      }
    }
  }
  if (wal_baseline_dirty_) {
    stop();
    return Status::error(ErrorCode::kInternal,
                         "unlogged baseline could not be compacted");
  }
  // The marker version IS the hardware rollback counter after this advance:
  // the next incarnation accepts the marker only while the counter still
  // holds this exact value, so a re-presented older marker can never pass.
  auto version = options_.enclave->advance_snapshot_version();
  if (!version) {
    stop();
    return version.status();
  }
  auto state = options_.enclave->seal_state(version.value());
  if (!state) {
    stop();
    return state.status();
  }
  const Status wrote =
      wal_->write_clean_marker(version.value(), std::move(state).take());
  stop();
  return wrote;
}

Result<ReplicaNode::WarmRestart> ReplicaNode::warm_restart() {
  if (wal_ == nullptr || options_.enclave == nullptr ||
      security_ == nullptr || !security_->secured()) {
    return Status::error(ErrorCode::kUnavailable, "no WAL configured");
  }
  tee::Enclave& enclave = *options_.enclave;
  auto version = enclave.snapshot_version();
  if (!version) return version.status();
  // 1. The clean-shutdown marker must pin to the CURRENT hardware counter —
  //    a crash (no marker) or a replayed older marker fails here and the
  //    caller falls back to the full attested §3.7 rejoin.
  auto marker = wal_->read_clean_marker(version.value());
  if (!marker) return marker.status();
  // 2. Sealed enclave state: channel secrets + EXACT send counters. After
  //    this the enclave is provisioned without any CAS round trip.
  if (Status restored = enclave.restore_state(
          as_view(marker.value().enclave_state), marker.value().marker_version);
      !restored.is_ok()) {
    return restored;
  }
  // 3. B.1 vault horizons on top (floors): every counter lands at or past
  //    its persisted stride, so no nonce from the previous life can repeat
  //    even for allocations the (group-committed) marker missed.
  WarmRestart out;
  if (counter_vault_ != nullptr) {
    for (const auto& [cq, horizon] : counter_vault_->load()) {
      (void)enclave.restore_counter_floor(cq, horizon);
      ++out.counters_restored;
    }
  }
  // 4. Local replay: compacted snapshot baseline + committed segments. The
  //    marker's authenticated manifest pins the exact segment set and record
  //    counts, so a log truncated at a record boundary (every surviving MAC
  //    intact) or stripped of trailing segments fails here and the caller
  //    runs the cold attested rejoin instead of resuming rolled-back state.
  auto replayed =
      wal_->replay(kv_, marker.value().snapshot_version,
                   &marker.value().segments);
  if (!replayed) return replayed.status();
  out.snapshot_entries = replayed.value().snapshot_entries;
  out.log_entries = replayed.value().log_entries;
  wal_baseline_dirty_ = false;  // the log covers everything just installed
  // 5. Burn the marker: the reopen advances the hardware counter, so this
  //    marker can never validate a SECOND restart (whose sealed counters
  //    would be stale), then drop the blob outright.
  reopen_wal();
  if (wal_ == nullptr) {
    return Status::error(ErrorCode::kInternal, "WAL reopen failed");
  }
  wal_->clear_clean_marker();
  // 6. Resume ACTIVE. Peers never saw this node die: its send counters
  //    continued past their strides (forward jumps ≤ K land inside every
  //    replay window) and its receive windows are rebuilt empty, so no
  //    fresh-node notice, peer reset, or shadow phase is needed.
  network_.recover(options_.self);
  security_->reset_all();
  shadow_ = false;
  start();
  return out;
}

bool ReplicaNode::suspected(NodeId peer) const {
  // The trusted lease is the safety floor: before it surely expired the
  // peer may still legitimately act on its lease, so it is never suspected
  // early no matter what phi says.
  if (!failure_detector_.suspected(peer)) return false;
  // Adaptive layer: under chaotic links a fixed timeout fires on ordinary
  // jitter; require the silence to also be anomalous against the peer's own
  // observed heartbeat history before surfacing suspicion.
  if (options_.phi_threshold > 0.0 &&
      !phi_detector_.suspected(peer, trusted_clock_.now(),
                               options_.phi_threshold)) {
    return false;
  }
  return true;
}

void ReplicaNode::heartbeat_tick() {
  if (!running_) return;
  // Heartbeats are shielded fire-and-forget messages. A shadow heartbeats
  // with kShadowJoin instead: the join/promote notices are fire-and-forget,
  // so the periodic re-assertion of the CURRENT state makes a lost notice
  // heal at the next tick (a peer that missed the join keeps learning it;
  // one that missed the promote learns it from the first plain heartbeat).
  const rpc::RequestType beat = shadow_ ? msg::kShadowJoin : msg::kHeartbeat;
  for (NodeId peer : peers()) {
    auto wire = security_->shield(peer, current_view(), BytesView{});
    if (wire) rpc_.send(peer, beat, std::move(wire).take());
  }
  // Surface newly suspected peers to the protocol.
  for (NodeId peer : peers()) {
    if (failure_detector_.suspected(peer) &&
        std::find(suspected_already_.begin(), suspected_already_.end(), peer) ==
            suspected_already_.end()) {
      suspected_already_.push_back(peer);
      fd_suspicions_.fetch_add(1, std::memory_order_relaxed);
      on_suspected(peer);
    }
  }
  heartbeat_timer_ = clock_.schedule(options_.heartbeat_period,
                                     [this] { heartbeat_tick(); });
}

}  // namespace recipe
