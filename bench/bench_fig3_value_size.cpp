// Figure 3: throughput for value sizes {256, 1024, 4096}B under a 90%-read
// workload, for PBFT and the four Recipe protocols. The paper's signature
// effect: performance drops with value size because larger network buffers
// and batches exhaust the EPC (worst for the batching protocols R-Raft and
// R-AllConcur, 2x-7x at 4096B, which run with little or no batching there).
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace recipe::bench;

  const std::vector<std::size_t> value_sizes = {256, 1024, 4096};

  std::printf("Figure 3: throughput (Ops/s) by value size, 90%% reads\n");
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "bytes", "PBFT", "R-Raft",
              "R-CR", "R-AllConcur", "R-ABD");

  double raft_small = 0, raft_large = 0;
  for (std::size_t size : value_sizes) {
    ExperimentParams params;
    params.read_fraction = 0.9;
    params.value_size = size;
    const double pbft = run_pbft(params).ops_per_sec;
    const double raft = run_raft(params).ops_per_sec;
    const double cr = run_cr(params).ops_per_sec;
    const double allconcur = run_allconcur(params).ops_per_sec;
    const double abd = run_abd(params).ops_per_sec;
    if (size == 256) raft_small = raft;
    if (size == 4096) raft_large = raft;
    std::printf("%-8zu %12.0f %12.0f %12.0f %12.0f %12.0f\n", size, pbft, raft,
                cr, allconcur, abd);
  }
  std::printf("\nR-Raft slowdown 256B -> 4096B: %.1fx (paper: 2x-7x for the "
              "batching protocols)\n",
              raft_small / raft_large);
  return 0;
}
