// Clock: the time-and-timers seam between the protocol stack and its
// execution substrate.
//
// Every component that used to reach for the discrete-event Simulator
// directly (RPC timeouts, batch flush delays, heartbeats, lease expiry,
// recovery polls) schedules against this interface instead. Two
// implementations exist:
//   * sim::Simulator       — deterministic simulated time (tests, figures);
//   * transport::TimerQueue — real steady-clock time, driven by a
//     TcpTransport's epoll loop (the real-socket deployments).
// Time stays in nanoseconds in both, so cost models, timeouts and batching
// knobs mean the same thing under either clock source.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace recipe::sim {

// Time in nanoseconds since the clock's epoch (simulation start, or the
// real-time clock's construction).
using Time = std::uint64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

// Handle to a scheduled event; allows cancellation (e.g., resetting an
// election timeout). Cheap to copy; cancellation after firing is a no-op.
// The shared flag is written under the owning clock's scheduling discipline:
// single-threaded for the Simulator, mutex-protected for TimerQueue.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel() {
    if (auto p = cancelled_.lock()) *p = true;
  }
  bool valid() const { return !cancelled_.expired(); }

 private:
  friend class Simulator;
  friend TimerHandle make_timer_handle(std::weak_ptr<bool>);
  explicit TimerHandle(std::weak_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}
  std::weak_ptr<bool> cancelled_;
};

// Other Clock implementations mint handles through this instead of being
// enumerated as friends.
inline TimerHandle make_timer_handle(std::weak_ptr<bool> flag) {
  return TimerHandle{std::move(flag)};
}

// Contract (both implementations):
//  * Thread safety — now()/schedule_at()/schedule() are callable from any
//    thread. Callbacks always FIRE on the clock's driving thread (the
//    simulator's event loop, or the owning transport shard's epoll loop),
//    never on the scheduling thread, and never concurrently with each
//    other on the same clock. Under a sharded transport, schedule against
//    the endpoint's home-shard clock (ShardedTcpTransport::clock_for) so
//    the callback lands on the loop that owns the endpoint's state.
//  * Ownership — the clock owns the callback until it fires or the clock
//    is destroyed; cancel() only marks the shared flag, it does not free
//    the callback early. Captured state must outlive the clock or be
//    cancelled first: destroying a node with armed timers and letting them
//    fire is the classic use-after-free (node destructors cancel).
//  * Errors — scheduling never fails. A `when` in the past is clamped to
//    "immediately" by real clocks; the Simulator asserts, because a past
//    event under deterministic time is always a caller bug.
class Clock {
 public:
  using Callback = std::function<void()>;

  virtual ~Clock() = default;

  virtual Time now() const = 0;

  // Schedules `fn` to run at `when` (clamped to now for past times by real
  // clocks; the Simulator asserts instead). Returns a cancellable handle.
  virtual TimerHandle schedule_at(Time when, Callback fn) = 0;

  // Schedules `fn` to run at now() + delay.
  TimerHandle schedule(Time delay, Callback fn) {
    return schedule_at(now() + delay, std::move(fn));
  }
};

}  // namespace recipe::sim
