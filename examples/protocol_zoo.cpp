// protocol_zoo: all four Recipe-transformed CFT protocols (Table 1: one per
// taxonomy quadrant) running the same YCSB-style workload side by side.
//
//                     leader-based          leaderless
//   total order       R-Raft                R-AllConcur
//   per-key order     R-CR                  R-ABD
#include <cstdio>

#include "bft/pbft/pbft.h"
#include "protocols/abd/abd.h"
#include "protocols/allconcur/allconcur.h"
#include "protocols/cr/cr.h"
#include "protocols/raft/raft.h"
#include "workload/testbed.h"

using namespace recipe;
using workload::Testbed;
using workload::TestbedConfig;

namespace {

TestbedConfig base_config() {
  TestbedConfig config;
  config.num_replicas = 3;
  config.num_clients = 8;
  config.workload.num_keys = 1000;
  config.workload.read_fraction = 0.9;
  config.workload.value_size = 256;
  config.secured = true;
  config.window = 100 * sim::kMillisecond;
  config.warmup = 30 * sim::kMillisecond;
  return config;
}

void row(const char* name, const char* ordering, const char* coordination,
         const char* reads, const workload::RunResult& result) {
  std::printf("%-13s %-10s %-13s %-22s %10.0f %10llu\n", name, ordering,
              coordination, reads, result.ops_per_sec,
              static_cast<unsigned long long>(
                  result.latency_us.percentile(0.5)));
}

}  // namespace

int main() {
  std::printf(
      "Recipe protocol zoo — 3 replicas, 8 clients, 90%% reads, 256B\n\n");
  std::printf("%-13s %-10s %-13s %-22s %10s %10s\n", "protocol", "ordering",
              "coordination", "reads", "ops/s", "p50(us)");

  {
    Testbed<protocols::RaftNode> testbed(base_config());
    protocols::RaftOptions raft;
    raft.initial_leader = NodeId{1};
    testbed.build(raft);
    testbed.preload();
    row("R-Raft", "total", "leader", "local @ leader (lease)",
        testbed.run(Testbed<protocols::RaftNode>::route_all_to(NodeId{1})));
  }
  {
    Testbed<protocols::ChainNode> testbed(base_config());
    testbed.build();
    testbed.preload();
    row("R-CR", "per-key", "leader(head)", "local @ tail",
        testbed.run(testbed.route_head_tail()));
  }
  {
    Testbed<protocols::AbdNode> testbed(base_config());
    testbed.build();
    testbed.preload();
    row("R-ABD", "per-key", "leaderless", "quorum (1 round)",
        testbed.run(testbed.route_round_robin()));
  }
  {
    Testbed<protocols::AllConcurNode> testbed(base_config());
    testbed.build();
    testbed.preload();
    row("R-AllConcur", "total", "leaderless", "local (seq. consistency)",
        testbed.run(testbed.route_round_robin()));
  }

  std::printf(
      "\nFor comparison, the classical BFT baseline needs 3f+1 nodes:\n");
  {
    TestbedConfig config = base_config();
    config.num_replicas = 4;
    config.secured = false;
    config.replica_stack = net::NetStackParams::kernel_native();
    config.replica_cores = 2;
    Testbed<bft::PbftNode> testbed(config);
    testbed.build();
    testbed.preload();
    row("PBFT", "total", "primary", "via 3-phase commit",
        testbed.run(Testbed<bft::PbftNode>::route_all_to(NodeId{1})));
  }
  return 0;
}
