// The security seam between native CFT protocols and their R- transforms.
//
// SecurityPolicy provides the paper's shield_msg()/verify_msg() API
// (Table 3, Algorithm 1). Protocol implementations call shield() before every
// send and verify() on every reception — and NOTHING else changes between
// modes:
//
//  * NullSecurity — the native CFT baseline: framing only, no MAC, no
//    counters, zero cost. Used for the paper's "native" runs (Fig. 6a).
//  * RecipeSecurity — the full transformation: enclave-held channel keys
//    (transferable authentication), trusted monotonic counters with a replay
//    filter (non-equivocation), optional payload encryption
//    (confidentiality), and TEE cost accounting.
//
// Hot-path design (every protocol message crosses this seam, so its cost is
// the system's throughput ceiling):
//  * per-peer ChannelCrypto cache — the HKDF key derivation and the HMAC
//    ipad/opad key schedule run once per channel lifetime, not per message;
//    the cache keys on Enclave::keyset_epoch() so a crash/re-attestation
//    invalidates it, and reset_peer() drops it explicitly;
//  * single-buffer encoding — the frame is laid out once, encrypted in
//    place, and MACed as a buffer prefix (no authenticated_data() copy);
//  * ring-bitmap replay window (ReplayWindow) instead of a std::map.
//
// Threading (staged egress pipeline + sharded transport): shield()/
// shield_batch{,_parts}() and verify() are callable from ANY thread. Cached
// crypto contexts are IMMUTABLE snapshots handed out as
// shared_ptr<const ChannelCrypto> (crypto::Hmac only copies midstates from a
// const context, so concurrent MACs never share mutable state), and the
// cache itself is RCU-style: readers load an immutable map snapshot with one
// atomic acquire — NO lock is shared across event-loop shards on the
// steady-state path — while writers (first derivation per channel, epoch
// bumps, resets) copy-on-write under a writer mutex. Counter allocation is
// atomic inside the enclave; the only lock left on a steady-state send is
// the enclave's counter mutex. Receive-side replay/ordering bookkeeping
// serializes behind its own mutex — nonce/replay state is the ONLY part of
// a channel that two threads must agree on.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "attest/cas.h"
#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"
#include "net/network.h"
#include "recipe/message.h"
#include "recipe/replay_window.h"
#include "tee/cost_model.h"
#include "tee/enclave.h"

namespace recipe {

namespace kv {
class CounterVault;
}  // namespace kv

// A verified message handed to the protocol: sender identity and metadata
// are authenticated (in Recipe mode) before the protocol sees them.
struct VerifiedEnvelope {
  NodeId sender{};
  ViewId view{};
  Counter cnt{0};
  // The frame carried kFlagBatch: `payload` is a BatchFrame body, not a
  // single protocol payload. Receivers must dispatch the two shapes through
  // different paths (the flag is MAC-covered, so it cannot be forged).
  bool batch{false};
  Bytes payload;
};

// How the receiver treats counter gaps (Algorithm 1 semantics).
enum class OrderPolicy {
  // Accept only cnt == rcnt+1; buffer "future" messages for drain(); reject
  // the past. Exact Algorithm 1; requires FIFO-ish channels.
  kStrict,
  // Sliding-window replay filter: every counter value accepted at most once,
  // values older than the window rejected. Non-equivocation for replay
  // purposes without blocking on reordered packets (default for protocols).
  kWindow,
};

class SecurityPolicy {
 public:
  virtual ~SecurityPolicy() = default;

  // Wraps `payload` for the channel self -> peer (paper: shield_msg).
  virtual Result<Bytes> shield(NodeId peer, ViewId view, BytesView payload) = 0;

  // Wraps a pre-encoded BatchFrame body as ONE shielded frame: one header,
  // one trusted counter (= one replay-window slot on the receiver), one
  // nonce and one MAC cover every sub-message in the batch.
  virtual Result<Bytes> shield_batch(NodeId peer, ViewId view,
                                     BytesView body) = 0;

  // Scatter form of shield_batch(): the flushed batch body stays where it
  // is (encrypted in place under confidentiality) and only the frame head
  // and MAC tail are produced, so the transport can gather-write
  // head || body || tail without re-copying the body into one contiguous
  // frame. The byte stream is identical to shield_batch()'s.
  virtual Result<ShieldedFrameParts> shield_batch_parts(NodeId peer,
                                                        ViewId view,
                                                        Bytes& body) = 0;

  // Verifies a received wire message (paper: verify_msg). `claimed_sender`
  // is what the untrusted network says; Recipe mode authenticates it.
  // `require_view`: when set, messages from other views are rejected.
  virtual Result<VerifiedEnvelope> verify(
      NodeId claimed_sender, BytesView wire,
      std::optional<ViewId> require_view = std::nullopt) = 0;

  // Messages buffered as "future" that became eligible after the last
  // accept (strict mode only; empty in window mode).
  virtual std::vector<VerifiedEnvelope> drain_ready() { return {}; }

  // Forgets all receive-side channel state for `peer` (paper §3.7: a
  // recovered node rejoins as a FRESH replica — after the CAS announces its
  // successful re-attestation, peers restart its counters from zero).
  virtual void reset_peer(NodeId /*peer*/) {}

  // Forgets EVERY channel: replay windows, strict-order state, buffered
  // futures, cached crypto contexts. Called when this node's OWN enclave is
  // re-launched — the windows notionally live inside the enclave, so a
  // restart wipes them along with the counters (the rejoining side of the
  // §3.7 counter-reset rule).
  virtual void reset_all() {}

  // True when this policy provides the Byzantine-hardening guarantees.
  virtual bool secured() const = 0;
};

// ---------------------------------------------------------------------------

// Native CFT mode: framing only. Anything the network delivers is accepted.
// Routes through the same single-buffer encoder as RecipeSecurity so the
// CFT baseline (Fig. 6a) differs only by the crypto, not the codec.
class NullSecurity final : public SecurityPolicy {
 public:
  explicit NullSecurity(NodeId self) : self_(self) {}

  Result<Bytes> shield(NodeId peer, ViewId view, BytesView payload) override;
  Result<Bytes> shield_batch(NodeId peer, ViewId view, BytesView body) override;
  Result<ShieldedFrameParts> shield_batch_parts(NodeId peer, ViewId view,
                                                Bytes& body) override;
  Result<VerifiedEnvelope> verify(
      NodeId claimed_sender, BytesView wire,
      std::optional<ViewId> require_view = std::nullopt) override;
  bool secured() const override { return false; }

 private:
  Result<Bytes> shield_frame(NodeId peer, ViewId view, BytesView payload,
                             std::uint8_t flags);
  ShieldedHeader make_header(NodeId peer, ViewId view, std::uint8_t flags)
      const;

  NodeId self_;
};

// ---------------------------------------------------------------------------

struct RecipeSecurityConfig {
  OrderPolicy order = OrderPolicy::kWindow;
  std::size_t replay_window = 4096;
  std::size_t max_future_buffer = 1024;  // strict-mode queue bound
  bool confidentiality = false;
  // Estimator for the enclave-resident working set (bytes), used by the TEE
  // cost model for EPC pressure. Null = only message-local cost.
  std::function<std::uint64_t()> working_set;
  // liboscore B.1 counter persistence (WAL durability): every allocated send
  // counter is observed by the vault, which rewrites its sealed horizon blob
  // once per stride (K allocations), making a warm restart nonce-safe
  // without peer channel resets. Null = no persistence (default).
  kv::CounterVault* counter_vault = nullptr;
};

class RecipeSecurity final : public SecurityPolicy {
 public:
  // `cpu` may be null (no cost accounting, e.g. unit tests).
  RecipeSecurity(tee::Enclave& enclave, NodeId self,
                 const tee::TeeCostModel* cost_model, net::NodeCpu* cpu,
                 RecipeSecurityConfig config = {});

  Result<Bytes> shield(NodeId peer, ViewId view, BytesView payload) override;
  Result<Bytes> shield_batch(NodeId peer, ViewId view, BytesView body) override;
  Result<ShieldedFrameParts> shield_batch_parts(NodeId peer, ViewId view,
                                                Bytes& body) override;
  Result<VerifiedEnvelope> verify(
      NodeId claimed_sender, BytesView wire,
      std::optional<ViewId> require_view = std::nullopt) override;
  std::vector<VerifiedEnvelope> drain_ready() override;
  void reset_peer(NodeId peer) override;
  void reset_all() override;
  bool secured() const override { return true; }

  // Statistics for the evaluation and Byzantine tests.
  std::uint64_t rejected_auth() const { return rejected_auth_.load(); }
  std::uint64_t rejected_replay() const { return rejected_replay_.load(); }
  std::uint64_t buffered_future() const { return buffered_future_.load(); }
  std::uint64_t rejected_view() const { return rejected_view_.load(); }
  // Strict mode: messages dropped because the future buffer was full.
  std::uint64_t rejected_overflow() const { return rejected_overflow_.load(); }

 private:
  // Per-peer cached crypto context: the derived pairwise key and the HMAC
  // key schedule, computed once per channel lifetime. IMMUTABLE once cached
  // (handed out as shared_ptr<const> so any thread can MAC against it while
  // reset_peer()/epoch changes swap the cache slot underneath). `epoch`
  // snapshots Enclave::keyset_epoch() so re-provisioning invalidates stale
  // entries.
  struct ChannelCrypto {
    crypto::SymmetricKey key;
    crypto::Hmac hmac;
    std::uint64_t epoch{0};
  };
  using CryptoSnapshot = std::shared_ptr<const ChannelCrypto>;

  struct ChannelState {
    Counter rcnt{0};  // strict: last in-order accepted
    std::optional<ReplayWindow> window;          // window mode replay filter
    std::map<Counter, VerifiedEnvelope> future;  // strict: buffered futures
  };

  void charge(sim::Time cost) {
    if (cpu_ != nullptr) cpu_->charge(cost);
  }
  std::uint64_t working_set() const {
    return config_.working_set ? config_.working_set() : 0;
  }
  // Returns the cached snapshot for `peer`, or null when absent, stale
  // (keyset epoch moved — the entry is dropped) or the enclave is crashed.
  CryptoSnapshot cached_channel_crypto(NodeId peer);
  // Derives a context WITHOUT touching the cache. verify() only commits a
  // freshly derived context after the MAC proves the sender holds the key,
  // so forged sender ids cannot grow the cache.
  Result<ChannelCrypto> derive_channel_crypto(NodeId peer);
  // Cache-or-derive for SHIELD targets (protocol members, not
  // attacker-chosen: caching before use is safe here, unlike in verify()).
  Result<CryptoSnapshot> shield_channel_crypto(NodeId peer);
  // Counter allocation + header construction shared by the contiguous and
  // scatter shield paths; fails when the enclave is crashed or the
  // confidentiality nonce space is exhausted.
  Result<ShieldedHeader> begin_shield(NodeId peer, ViewId view,
                                      std::uint8_t extra_flags);
  // Shared single-buffer encoder behind shield()/shield_batch():
  // `extra_flags` is ORed into the header (kFlagBatch for batches).
  Result<Bytes> shield_frame(NodeId peer, ViewId view, BytesView payload,
                             std::uint8_t extra_flags);

  tee::Enclave& enclave_;
  NodeId self_;
  const tee::TeeCostModel* cost_model_;
  net::NodeCpu* cpu_;
  RecipeSecurityConfig config_;
  // Send/verify crypto snapshots, RCU-style. Readers — every shield/verify
  // on every shard loop — load the current immutable map snapshot with one
  // atomic acquire and never take a lock; cache_mu_ serializes WRITERS only
  // (copy the map, mutate the copy, publish with a release store). Neither
  // side ever holds a lock across key derivation or MAC computation.
  using CryptoCache = std::unordered_map<NodeId, CryptoSnapshot>;
  void cache_insert(NodeId peer, CryptoSnapshot cc);
  mutable std::mutex cache_mu_;
  std::atomic<std::shared_ptr<const CryptoCache>> crypto_cache_{
      std::make_shared<const CryptoCache>()};
  // Receive-side replay/ordering state (the per-channel bookkeeping the
  // class comment's threading rules serialize).
  mutable std::mutex recv_mu_;
  std::unordered_map<ChannelId, ChannelState> channels_;
  std::vector<VerifiedEnvelope> ready_;

  std::atomic<std::uint64_t> rejected_auth_{0};
  std::atomic<std::uint64_t> rejected_replay_{0};
  std::atomic<std::uint64_t> buffered_future_{0};
  std::atomic<std::uint64_t> rejected_view_{0};
  std::atomic<std::uint64_t> rejected_overflow_{0};
};

}  // namespace recipe
