// ChaosTransport over the deterministic SimNetwork: same seed -> bit-exact
// same fault schedule, fault knobs actually bite (drops, duplicates,
// delays, reordering), and partitions are directed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster_harness.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "transport/chaos.h"

namespace recipe::transport {
namespace {

struct SimWorld {
  explicit SimWorld(ChaosOptions options)
      : network(simulator, Rng(99)), chaos(network, std::move(options)) {
    chaos.attach(NodeId{1}, net::NetStackParams::direct_io_native(),
                 [this](net::Packet&& p) { log.push_back(describe(p)); });
    chaos.attach(NodeId{2}, net::NetStackParams::direct_io_native(),
                 [this](net::Packet&& p) { log.push_back(describe(p)); });
  }

  std::string describe(const net::Packet& p) {
    return std::to_string(simulator.now()) + ":" +
           std::to_string(p.src.value) + ">" + std::to_string(p.dst.value) +
           ":" + to_string(as_view(p.payload));
  }

  void send(std::uint64_t src, std::uint64_t dst, const std::string& body) {
    net::Packet packet;
    packet.src = NodeId{src};
    packet.dst = NodeId{dst};
    packet.payload = to_bytes(body);
    chaos.send(std::move(packet));
  }

  sim::Simulator simulator;
  net::SimNetwork network;
  ChaosTransport chaos;
  std::vector<std::string> log;
};

ChaosOptions lossy(std::uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  options.faults.latency = 100 * sim::kMicrosecond;
  options.faults.jitter = 400 * sim::kMicrosecond;
  options.faults.drop_rate = 0.2;
  options.faults.duplicate_rate = 0.15;
  options.faults.reorder_rate = 0.2;
  return options;
}

TEST(ChaosTransportTest, SameSeedSameSchedule) {
  const std::uint64_t seed = recipe::testing::resolved_seed(0xC4A05);
  SCOPED_TRACE(recipe::testing::seed_trace_message(seed));
  std::vector<std::string> runs[2];
  for (int run = 0; run < 2; ++run) {
    SimWorld world(lossy(seed));
    for (int i = 0; i < 200; ++i) {
      world.send(1, 2, "m" + std::to_string(i));
      world.simulator.run_for(50 * sim::kMicrosecond);
    }
    world.simulator.run_for(100 * sim::kMillisecond);
    runs[run] = world.log;
    EXPECT_GT(world.chaos.chaos_dropped(), 0u);
    EXPECT_GT(world.chaos.chaos_duplicated(), 0u);
  }
  // Bit-exact replay: identical delivery order, timestamps and payloads.
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(ChaosTransportTest, DifferentSeedDifferentSchedule) {
  std::vector<std::string> logs[2];
  const std::uint64_t seeds[2] = {1, 2};
  for (int run = 0; run < 2; ++run) {
    SimWorld world(lossy(seeds[run]));
    for (int i = 0; i < 200; ++i) {
      world.send(1, 2, "m" + std::to_string(i));
      world.simulator.run_for(50 * sim::kMicrosecond);
    }
    world.simulator.run_for(100 * sim::kMillisecond);
    logs[run] = world.log;
  }
  EXPECT_NE(logs[0], logs[1]);
}

TEST(ChaosTransportTest, CleanLinkDeliversEverythingInOrder) {
  ChaosOptions options;  // all fault knobs zero
  SimWorld world(options);
  for (int i = 0; i < 50; ++i) world.send(1, 2, "m" + std::to_string(i));
  world.simulator.run_for(10 * sim::kMillisecond);
  ASSERT_EQ(world.log.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(world.log[i].find(":m" + std::to_string(i)), std::string::npos);
  }
  EXPECT_EQ(world.chaos.chaos_dropped(), 0u);
  EXPECT_EQ(world.chaos.chaos_duplicated(), 0u);
}

TEST(ChaosTransportTest, DropRateOneDeliversNothing) {
  ChaosOptions options;
  options.faults.drop_rate = 1.0;
  SimWorld world(options);
  for (int i = 0; i < 20; ++i) world.send(1, 2, "gone");
  world.simulator.run_for(10 * sim::kMillisecond);
  EXPECT_TRUE(world.log.empty());
  EXPECT_EQ(world.chaos.chaos_dropped(), 20u);
}

TEST(ChaosTransportTest, AsymmetricPartitionBlocksOneDirectionOnly) {
  ChaosOptions options;
  SimWorld world(options);
  // Block 1 -> 2 only: requests die, replies flow.
  world.chaos.partition(NodeId{1}, NodeId{2}, /*blocked=*/true,
                        /*bidirectional=*/false);
  world.send(1, 2, "request");
  world.send(2, 1, "reply");
  world.simulator.run_for(10 * sim::kMillisecond);
  ASSERT_EQ(world.log.size(), 1u);
  EXPECT_NE(world.log[0].find("2>1:reply"), std::string::npos);

  // Heal; both directions flow again.
  world.chaos.partition(NodeId{1}, NodeId{2}, /*blocked=*/false,
                        /*bidirectional=*/false);
  world.send(1, 2, "request2");
  world.simulator.run_for(10 * sim::kMillisecond);
  EXPECT_EQ(world.log.size(), 2u);
}

TEST(ChaosTransportTest, BandwidthCapSerializesBurst) {
  ChaosOptions options;
  // ~1 KB payloads over a 0.008 Gbps link: ~1ms of wire time per packet.
  options.faults.bandwidth_gbps = 0.008;
  SimWorld world(options);
  for (int i = 0; i < 5; ++i) {
    world.send(1, 2, std::string(1000, 'x') + std::to_string(i));
  }
  // After 2.5ms only ~2-3 packets can have cleared the serialized link.
  world.simulator.run_for(2500 * sim::kMicrosecond);
  EXPECT_LT(world.log.size(), 4u);
  EXPECT_GT(world.log.size(), 0u);
  world.simulator.run_for(20 * sim::kMillisecond);
  EXPECT_EQ(world.log.size(), 5u);  // everything lands eventually
}

TEST(ChaosTransportTest, PartitionStormInjectsAndHeals) {
  ChaosOptions options;
  options.seed = 7;
  options.partition_period = 5 * sim::kMillisecond;
  options.partition_chance = 1.0;
  options.partition_duration = 2 * sim::kMillisecond;
  SimWorld world(options);
  // Seed the peer set so the storm has links to pick from.
  world.send(1, 2, "hello");
  world.send(2, 1, "hi");
  world.simulator.run_for(100 * sim::kMillisecond);
  EXPECT_GT(world.chaos.partitions_injected(), 0u);
  // Every storm partition heals (duration < period): the link is open more
  // often than not, so a paced stream of fresh sends keeps getting through.
  const std::size_t before = world.log.size();
  for (int i = 0; i < 50; ++i) {
    world.send(1, 2, "after-the-storm");
    world.send(2, 1, "after-the-storm");
    world.simulator.run_for(sim::kMillisecond);
  }
  EXPECT_GT(world.log.size(), before);
}

}  // namespace
}  // namespace recipe::transport
