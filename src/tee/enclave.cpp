#include "tee/enclave.h"

#include <algorithm>

#include "common/serde.h"
#include "common/rng.h"
#include "crypto/chacha20.h"

namespace recipe::tee {

namespace {
// Sealed-volatile-state framing (seal_state/restore_state). The nonce tag
// keeps the state stream disjoint from snapshot.cpp's "SNAP" domain under
// the shared sealing key; the version makes each sealed state unique.
constexpr std::uint32_t kStateMagic = 0x52455354;     // "REST"
constexpr std::uint32_t kStateNonceTag = 0x454E4353;  // "ENCS"
}  // namespace

Bytes AttestationReport::serialize() const {
  Writer w;
  w.raw(BytesView(measurement.data(), measurement.size()));
  w.u64(platform_id);
  w.u64(enclave_id);
  w.bytes(as_view(report_data));
  return std::move(w).take();
}

Enclave::Enclave(const TeePlatform& platform, std::string code_identity,
                 std::uint64_t enclave_id)
    : platform_(platform),
      code_identity_(std::move(code_identity)),
      enclave_id_(enclave_id),
      measurement_(crypto::Sha256::hash(as_view(code_identity_))),
      drbg_(as_view(platform.enclave_seed(enclave_id))) {}

Result<AttestationReport> Enclave::attest(BytesView nonce) {
  if (auto s = check_alive(); !s.is_ok()) return s;
  AttestationReport report;
  report.measurement = measurement_;
  report.platform_id = platform_.platform_id();
  report.enclave_id = enclave_id_;

  // Bind the challenger nonce and our DH public value into the report so the
  // quote proves freshness and authenticates the key exchange.
  auto pub = dh_public();
  if (!pub) return pub.status();
  Writer w;
  w.bytes(nonce);
  w.u64(pub.value());
  report.report_data = std::move(w).take();
  return report;
}

Result<Quote> Enclave::generate_quote(const AttestationReport& report) {
  if (auto s = check_alive(); !s.is_ok()) return s;
  // EGETKEY: the hardware root key is reachable only from inside the enclave.
  Quote quote;
  quote.report = report;
  quote.mac = crypto::hmac_sha256(platform_.hardware_root_key().view(),
                                  as_view(report.serialize()));
  return quote;
}

Result<std::uint64_t> Enclave::dh_public() {
  if (auto s = check_alive(); !s.is_ok()) return s;
  if (!dh_keypair_) {
    Rng rng(drbg_.generate_u64());
    dh_keypair_ = crypto::DiffieHellman::generate(rng);
  }
  return dh_keypair_->public_value;
}

Result<crypto::SymmetricKey> Enclave::dh_shared_key(
    std::uint64_t challenger_public, BytesView context) {
  if (auto s = check_alive(); !s.is_ok()) return s;
  if (!dh_keypair_) {
    return Status::error(ErrorCode::kInternal, "DH keypair not generated");
  }
  return crypto::DiffieHellman::shared_key(dh_keypair_->private_exponent,
                                           challenger_public, context);
}

Status Enclave::install_secret(const std::string& name,
                               crypto::SymmetricKey key) {
  if (auto s = check_alive(); !s.is_ok()) return s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    secrets_[name] = std::move(key);
  }
  keyset_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::ok();
}

Result<crypto::SymmetricKey> Enclave::secret(const std::string& name) const {
  if (auto s = check_alive(); !s.is_ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = secrets_.find(name);
  if (it == secrets_.end()) {
    return Status::error(ErrorCode::kNotFound,
                         "secret not provisioned: " + name);
  }
  return it->second;
}

bool Enclave::has_secret(const std::string& name) const {
  if (crashed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return secrets_.contains(name);
}

Result<Counter> Enclave::increment_counter(ChannelId cq) {
  if (auto s = check_alive(); !s.is_ok()) return s;
  // Atomic allocation: two concurrent shields on one channel always receive
  // DISTINCT values (the non-equivocation root must never hand out a nonce
  // twice, no matter which thread asks).
  std::lock_guard<std::mutex> lock(mu_);
  return ++counters_[cq];
}

Counter Enclave::peek_counter(ChannelId cq) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(cq);
  return it == counters_.end() ? 0 : it->second;
}

Status Enclave::restore_counter_floor(ChannelId cq, Counter floor) {
  if (auto s = check_alive(); !s.is_ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  auto& cnt = counters_[cq];
  cnt = std::max(cnt, floor);
  return Status::ok();
}

Result<crypto::SymmetricKey> Enclave::sealing_key() const {
  if (auto s = check_alive(); !s.is_ok()) return s;
  // EGETKEY(SEAL, MRENCLAVE): bound to the hardware root, the measured code
  // identity AND this enclave's identity — independent of any volatile
  // state. The enclave id stands in for the per-machine CPU fuses (the sim
  // shares one TeePlatform across the cluster); without it every replica
  // would share one sealing key, letting a host substitute replica A's
  // snapshot into replica B and reusing the version-bound ChaCha20 nonce
  // across sealers.
  Writer info;
  info.str("recipe-sealing-key");
  info.u64(enclave_id_);
  info.raw(BytesView(measurement_.data(), measurement_.size()));
  const Bytes salt = to_bytes("recipe-seal-v1");
  return crypto::SymmetricKey{
      crypto::hkdf_sha256(platform_.hardware_root_key().view(), as_view(salt),
                          as_view(info.buffer()), crypto::kSymmetricKeySize)};
}

Result<std::uint64_t> Enclave::advance_snapshot_version() {
  if (auto s = check_alive(); !s.is_ok()) return s;
  return platform_.advance_rollback_counter(enclave_id_);
}

Result<std::uint64_t> Enclave::snapshot_version() const {
  if (auto s = check_alive(); !s.is_ok()) return s;
  return platform_.rollback_counter(enclave_id_);
}

Result<Bytes> Enclave::seal_state(std::uint64_t version) const {
  if (auto s = check_alive(); !s.is_ok()) return s;
  auto key = sealing_key();
  if (!key) return key.status();

  Writer body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body.u32(static_cast<std::uint32_t>(secrets_.size()));
    for (const auto& [name, secret] : secrets_) {
      body.str(name);
      body.bytes(secret.view());
    }
    body.u32(static_cast<std::uint32_t>(counters_.size()));
    for (const auto& [cq, cnt] : counters_) {
      body.id(cq);
      body.u64(cnt);
    }
  }

  // Secrets ARE confidential (unlike the counters riding along), so the
  // whole body is encrypted, not just MAC'd. The version-bound nonce never
  // repeats: versions come from the monotonic hardware counter.
  Bytes ciphertext = std::move(body).take();
  const auto nonce = crypto::make_nonce(kStateNonceTag, version);
  crypto::chacha20_xor(key.value().view(), nonce, 0, ciphertext);

  Writer blob(ciphertext.size() + 64);
  blob.u32(kStateMagic);
  blob.u64(version);
  blob.bytes(as_view(ciphertext));
  const crypto::Mac mac =
      crypto::hmac_sha256(key.value().view(), as_view(blob.buffer()));
  blob.raw(BytesView(mac.data(), mac.size()));
  return std::move(blob).take();
}

Status Enclave::restore_state(BytesView sealed,
                              std::uint64_t expected_version) {
  if (auto s = check_alive(); !s.is_ok()) return s;
  auto key = sealing_key();
  if (!key) return key.status();

  Reader r(sealed);
  const auto magic = r.u32();
  const auto version = r.u64();
  auto body = r.bytes();
  const auto mac = r.raw(crypto::kMacSize);
  if (!magic || *magic != kStateMagic || !version || !body || !mac ||
      r.remaining() != 0) {
    return Status::error(ErrorCode::kAuthFailed, "malformed sealed state");
  }
  const BytesView macd(sealed.data(), sealed.size() - crypto::kMacSize);
  if (!crypto::hmac_verify(key.value().view(), macd, as_view(*mac))) {
    return Status::error(ErrorCode::kAuthFailed, "sealed state MAC mismatch");
  }
  if (*version != expected_version) {
    return Status::error(ErrorCode::kRollback,
                         "sealed state version " + std::to_string(*version) +
                             " != expected " +
                             std::to_string(expected_version));
  }

  const auto nonce = crypto::make_nonce(kStateNonceTag, *version);
  crypto::chacha20_xor(key.value().view(), nonce, 0, *body);

  Reader br(as_view(*body));
  const auto nsecrets = br.u32();
  if (!nsecrets) {
    return Status::error(ErrorCode::kAuthFailed, "truncated sealed state");
  }
  std::unordered_map<std::string, crypto::SymmetricKey> secrets;
  for (std::uint32_t i = 0; i < *nsecrets; ++i) {
    auto name = br.str();
    auto material = br.bytes();
    if (!name || !material) {
      return Status::error(ErrorCode::kAuthFailed, "truncated sealed state");
    }
    secrets[*name] = crypto::SymmetricKey{std::move(*material)};
  }
  const auto ncounters = br.u32();
  if (!ncounters) {
    return Status::error(ErrorCode::kAuthFailed, "truncated sealed state");
  }
  std::unordered_map<ChannelId, Counter> counters;
  for (std::uint32_t i = 0; i < *ncounters; ++i) {
    auto cq = br.id<ChannelId>();
    auto cnt = br.u64();
    if (!cq || !cnt) {
      return Status::error(ErrorCode::kAuthFailed, "truncated sealed state");
    }
    counters[*cq] = *cnt;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, secret] : secrets) {
      secrets_[name] = std::move(secret);
    }
    // Floors, never assignments: the live counter wins if it is already
    // ahead (e.g. a B.1 vault horizon was applied first).
    for (const auto& [cq, cnt] : counters) {
      auto& live = counters_[cq];
      live = std::max(live, cnt);
    }
  }
  keyset_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::ok();
}

Result<Bytes> Enclave::random_bytes(std::size_t n) {
  if (auto s = check_alive(); !s.is_ok()) return s;
  return drbg_.generate(n);
}

void Enclave::restart() {
  // A re-launched enclave keeps its identity (same binary, same platform)
  // but loses all volatile state: it must be re-attested and re-provisioned,
  // and it joins as a FRESH replica so stale counters can never be reused.
  crashed_.store(false, std::memory_order_release);
  dh_keypair_.reset();
  {
    std::lock_guard<std::mutex> lock(mu_);
    secrets_.clear();
    counters_.clear();
  }
  keyset_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace recipe::tee
