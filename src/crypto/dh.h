// Finite-field Diffie-Hellman key agreement for the attestation handshake.
//
// The paper's attestation protocol performs a DHKE between the challenger and
// the enclave so that provisioned secrets are confidential against the
// Dolev-Yao network. We implement textbook DH over the Mersenne prime
// 2^61 - 1. SUBSTITUTION NOTE (DESIGN.md §2): the group modulus is 61 bits —
// a simulation parameter, not a protocol change; swapping in a 2048-bit MODP
// group would only change the arithmetic width. The derived shared secret is
// always expanded through HKDF-SHA256 before use.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/hmac.h"

namespace recipe::crypto {

struct DhKeyPair {
  std::uint64_t private_exponent{0};
  std::uint64_t public_value{0};
};

class DiffieHellman {
 public:
  // Mersenne prime 2^61 - 1; g = 3.
  static constexpr std::uint64_t kPrime = 2305843009213693951ULL;
  static constexpr std::uint64_t kGenerator = 3;

  static DhKeyPair generate(Rng& rng);

  // g^exponent mod p
  static std::uint64_t public_from_private(std::uint64_t private_exponent);

  // peer_public^private mod p, expanded through HKDF into a symmetric key.
  static SymmetricKey shared_key(std::uint64_t private_exponent,
                                 std::uint64_t peer_public,
                                 BytesView context_info);

  static std::uint64_t modexp(std::uint64_t base, std::uint64_t exp,
                              std::uint64_t mod);
};

}  // namespace recipe::crypto
