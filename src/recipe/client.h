// Recipe KV client (paper §3.3): issues attested PUT/GET requests to a
// protocol coordinator and verifies the shielded replies.
//
// In secured mode the client holds channel keys provisioned by the CAS
// (clients attest like replicas but are not full members), so a replica can
// authenticate which client sent a request and the client can authenticate
// the reply — clients trust individual attested replicas instead of
// collecting f+1 matching replies as in classical BFT.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "recipe/node_base.h"
#include "recipe/security.h"
#include "recipe/types.h"
#include "rpc/retry.h"
#include "rpc/rpc.h"
#include "sim/clock.h"
#include "tee/enclave.h"

namespace recipe {

struct ClientOptions {
  ClientId id{};
  net::NetStackParams stack = net::NetStackParams::direct_io_native();
  bool secured = true;
  bool confidentiality = false;
  tee::Enclave* enclave = nullptr;  // required when secured
  // Long-standing basic knobs: request_timeout is the FIRST attempt's
  // response timeout, max_retries the total attempt budget. They override
  // retry.initial_timeout / retry.max_attempts.
  sim::Time request_timeout = 500 * sim::kMillisecond;
  int max_retries = 3;
  // The rest of the retransmit policy: per-attempt timeout growth, backoff
  // jitter between retransmits, whole-op deadline. Defaults keep backoff
  // tiny so existing timing-sensitive deployments see retransmits at
  // essentially the historical cadence (plus jitter that de-synchronizes
  // retry storms).
  rpc::RetryPolicy retry{
      .initial_timeout = 500 * sim::kMillisecond,
      .timeout_growth = 1.0,
      .max_timeout = 2 * sim::kSecond,
      .max_attempts = 3,
      .base_backoff = 2 * sim::kMillisecond,
      .max_backoff = 50 * sim::kMillisecond,
      .deadline = 0,
  };
  // Identity of the CAS, whose fresh-node notices reset channel state.
  NodeId cas_id{1000};
  // Observability: when set, the client's op counters and latency histogram
  // register as recipe_client_* series in this registry (which must outlive
  // the client). When null the client keeps private detached handles — the
  // accessors below still work, nothing is scraped.
  obs::MetricsRegistry* metrics = nullptr;
};

class KvClient {
 public:
  using ReplyCallback = std::function<void(const ClientReply&)>;

  KvClient(sim::Clock& clock, net::Transport& network,
           ClientOptions options);
  // Cancels any backoff timers still pending (must run wherever the clock's
  // timer discipline expects — the loop thread under TcpTransport, exactly
  // where this object is destroyed anyway).
  ~KvClient();

  NodeId node_id() const { return NodeId{options_.id.value}; }
  ClientId id() const { return options_.id; }
  // Exposed for fresh-node notifications outside the CAS path (the cluster
  // layer's pre-attested replica replacement resets channels directly).
  SecurityPolicy& security() { return *security_; }

  void put(NodeId coordinator, std::string key, Bytes value,
           ReplyCallback done);
  void get(NodeId coordinator, std::string key, ReplyCallback done);

  std::uint64_t issued() const { return ops_issued_.value(); }
  std::uint64_t completed() const { return ops_completed_.value(); }
  std::uint64_t failed() const { return ops_failed_.value(); }
  std::uint64_t retries() const { return retries_.value(); }
  // Snapshot of the op latency distribution (microseconds). By value: the
  // backing cells live in the metrics registry and keep counting.
  Histogram latency_us() const { return op_latency_us_.value(); }
  void reset_stats() {
    ops_issued_.reset();
    ops_completed_.reset();
    ops_failed_.reset();
    retries_.reset();
    op_latency_us_.reset();
  }

 private:
  // Per-op retry state, allocated once and shared by the reply handler, the
  // response continuation, and the timeout closure.
  struct RetryState {
    ClientRequest request;
    ReplyCallback done;
    sim::Time started{0};       // first attempt's clock, for the deadline
    sim::Time prev_backoff{0};  // decorrelated-jitter chain input
    // Flight-recorder bookkeeping: wall-clock of the FIRST attempt and the
    // most recent attempt's rpc id, so the whole-op kClientOp span can be
    // emitted from whichever closure finishes the op.
    std::uint64_t started_ns{0};
    std::uint64_t last_rpc_id{0};
  };

  void issue(NodeId coordinator, ClientRequest request, ReplyCallback done,
             int attempt);
  void issue(NodeId coordinator, std::shared_ptr<RetryState> state,
             int attempt);
  // Backoff-then-reissue for attempt `attempt`; fails the op with `why`
  // when the attempt budget or the deadline is exhausted.
  void schedule_retry(NodeId coordinator, std::shared_ptr<RetryState> state,
                      int attempt, ErrorCode why);
  void fail(const std::shared_ptr<RetryState>& state, ErrorCode why);
  void complete(std::uint64_t rpc_id, VerifiedEnvelope& env);

  sim::Clock& clock_;
  ClientOptions options_;
  rpc::RetryPolicy policy_;  // options_.retry with the legacy knobs folded in
  rpc::RpcObject rpc_;
  std::unique_ptr<SecurityPolicy> security_;
  // Deterministic per-client stream for backoff jitter (sim runs replay).
  Rng backoff_rng_;
  // Outstanding backoff timers by token, cancelled on destruction so a
  // pending reissue can never touch a dead client.
  std::unordered_map<std::uint64_t, sim::TimerHandle> backoff_timers_;
  std::uint64_t next_backoff_token_{1};
  std::uint64_t next_rid_{1};
  // Post-verification reply logic by rpc id: replies complete from either
  // the unbatched wire path or a replica-batched kBatch sub-message.
  std::unordered_map<std::uint64_t, std::function<void(VerifiedEnvelope&)>>
      pending_replies_;

  // Registry-backed when options_.metrics is set, private detached cells
  // otherwise — either way the accessors above read live values.
  obs::Counter ops_issued_;
  obs::Counter ops_completed_;
  obs::Counter ops_failed_;
  obs::Counter retries_;
  obs::Histogram op_latency_us_;
};

}  // namespace recipe
