// Phi-accrual failure detector (Hayashibara et al., SRDS'04).
//
// Instead of the lease detector's binary alive/suspect verdict at a fixed
// timeout, phi-accrual outputs a CONTINUOUS suspicion level: phi(peer) =
// -log10(P[a heartbeat later than the current silence, given the observed
// inter-arrival history]). A peer whose heartbeats jitter widely needs a
// long silence before phi rises; a metronomic peer is suspected quickly.
// phi = 1 means roughly a 10% chance the peer is still alive, phi = 3
// roughly 0.1%.
//
// ReplicaNode runs this ALONGSIDE the T-Lease detector when
// ReplicaOptions::phi_threshold > 0: the trusted lease remains the safety
// floor (a peer is never suspected before its lease surely expired — that
// bound is what makes leader leases sound), while phi suppresses the false
// suspicions a fixed timeout produces under chaotic links. A peer is
// suspected only when BOTH agree.
//
// The inter-arrival distribution is a sliding window of the last `window`
// intervals, summarized by mean and standard deviation; the tail
// probability uses the standard logistic approximation of the normal CDF.
// A variance floor (`min_stddev`) keeps the estimate sane over loopback,
// where heartbeats arrive with near-zero jitter and a microsecond of
// scheduling noise would otherwise read as a multi-sigma event.
//
// Deterministic and allocation-light: per-peer state is a fixed ring of
// intervals plus running sums. All methods take `now` explicitly so the
// detector works under any clock discipline (simulated or trusted).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "sim/clock.h"

namespace recipe {

struct PhiDetectorOptions {
  // Sliding window of inter-arrival intervals per peer.
  std::size_t window = 64;
  // Standard-deviation floor for the tail estimate.
  sim::Time min_stddev = 10 * sim::kMillisecond;
  // Prior mean interval, used until two real samples exist (a freshly
  // registered peer starts with a plausible cadence instead of zero).
  sim::Time initial_interval = 100 * sim::kMillisecond;
};

class PhiAccrualDetector {
 public:
  explicit PhiAccrualDetector(PhiDetectorOptions options = {})
      : options_(options) {
    if (options_.window == 0) options_.window = 1;
  }

  // Records a heartbeat (or any authenticated sign of life) from `peer`.
  void heartbeat(NodeId peer, sim::Time now) {
    PeerStats& st = peers_[peer];
    if (st.seen && now > st.last_arrival) {
      push_interval(st, static_cast<double>(now - st.last_arrival));
    }
    st.seen = true;
    st.last_arrival = now;
  }

  // Current suspicion level. A peer never heard from yields +infinity:
  // this detector has no evidence it exists, so the caller's other
  // detector (the lease floor) alone decides.
  double phi(NodeId peer, sim::Time now) const {
    const auto it = peers_.find(peer);
    if (it == peers_.end() || !it->second.seen) {
      return std::numeric_limits<double>::infinity();
    }
    const PeerStats& st = it->second;
    if (now <= st.last_arrival) return 0.0;
    const double elapsed = static_cast<double>(now - st.last_arrival);

    double mean = static_cast<double>(options_.initial_interval);
    double stddev = static_cast<double>(options_.min_stddev);
    if (st.count >= 2) {
      mean = st.sum / static_cast<double>(st.count);
      const double var =
          st.sum_sq / static_cast<double>(st.count) - mean * mean;
      stddev = std::sqrt(var > 0.0 ? var : 0.0);
    }
    const double floor = static_cast<double>(options_.min_stddev);
    if (stddev < floor) stddev = floor;

    // Logistic approximation of the normal tail: P[X > elapsed] for
    // X ~ N(mean, stddev^2).
    const double y = (elapsed - mean) / stddev;
    const double e = std::exp(-y * (1.5976 + 0.070566 * y * y));
    double p_later = elapsed > mean ? e / (1.0 + e) : 1.0 - 1.0 / (1.0 + e);
    constexpr double kMinP = 1e-30;  // bounds phi at 30, avoids -log10(0)
    if (p_later < kMinP) p_later = kMinP;
    return -std::log10(p_later);
  }

  bool suspected(NodeId peer, sim::Time now, double threshold) const {
    return phi(peer, now) >= threshold;
  }

  // Drops all history for `peer` (it rejoined with a fresh cadence).
  void forget(NodeId peer) { peers_.erase(peer); }

 private:
  struct PeerStats {
    std::vector<double> ring;
    std::size_t next = 0;
    std::size_t count = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    sim::Time last_arrival = 0;
    bool seen = false;
  };

  void push_interval(PeerStats& st, double interval) {
    if (st.ring.size() < options_.window) {
      st.ring.push_back(interval);
    } else {
      const double old = st.ring[st.next];
      st.sum -= old;
      st.sum_sq -= old * old;
      --st.count;
      st.ring[st.next] = interval;
      st.next = (st.next + 1) % st.ring.size();
    }
    st.sum += interval;
    st.sum_sq += interval * interval;
    ++st.count;
  }

  PhiDetectorOptions options_;
  std::unordered_map<NodeId, PeerStats> peers_;
};

}  // namespace recipe
