// TcpTransport tests: real loopback sockets under the Transport interface —
// echo RPC across two event loops, stream reassembly of large frames,
// backpressure, multi-endpoint local delivery, and crash/recover semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>

#include "rpc/rpc.h"
#include "transport/tcp_transport.h"

namespace recipe::transport {
namespace {

constexpr rpc::RequestType kEcho = 1;
constexpr rpc::RequestType kSum = 2;

struct Peer {
  explicit Peer(NodeId id) : id(id) {
    auto port = transport.listen(id, 0);
    EXPECT_TRUE(port.is_ok());
    listen_port = port.value();
  }
  ~Peer() {
    transport.run_sync([this] { rpc.reset(); });
  }

  void start() {
    transport.run_sync([this] {
      rpc = std::make_unique<rpc::RpcObject>(
          transport.clock(), transport, id,
          net::NetStackParams::direct_io_native());
      rpc->register_handler(kEcho, [](rpc::RequestContext& ctx) {
        ctx.respond(ctx.payload);
      });
    });
  }

  NodeId id;
  TcpTransport transport;
  std::uint16_t listen_port{0};
  std::unique_ptr<rpc::RpcObject> rpc;
};

TEST(TcpTransportTest, EchoAcrossTwoEventLoops) {
  Peer a{NodeId{1}};
  Peer b{NodeId{2}};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  auto done = std::make_shared<std::promise<Bytes>>();
  auto future = done->get_future();
  a.transport.run_sync([&] {
    a.rpc->send(b.id, kEcho, to_bytes("over real sockets"),
                [done](NodeId src, Bytes payload) {
                  EXPECT_EQ(src, NodeId{2});
                  done->set_value(std::move(payload));
                });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(to_string(as_view(future.get())), "over real sockets");
  EXPECT_GT(a.transport.packets_sent(), 0u);
  EXPECT_GT(b.transport.packets_delivered(), 0u);
}

// A payload far larger than one read()/write() chunk must reassemble across
// many partial reads (and exercise the backpressure path on the writer).
TEST(TcpTransportTest, LargePayloadReassembles) {
  Peer a{NodeId{1}};
  Peer b{NodeId{2}};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  Bytes big(3 * 1024 * 1024, 0);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }

  auto done = std::make_shared<std::promise<Bytes>>();
  auto future = done->get_future();
  a.transport.run_sync([&] {
    a.rpc->send(b.id, kEcho, big, [done](NodeId, Bytes payload) {
      done->set_value(std::move(payload));
    });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(future.get(), big);
}

TEST(TcpTransportTest, ManyRequestsAllComplete) {
  constexpr int kCount = 500;
  Peer a{NodeId{1}};
  Peer b{NodeId{2}};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  auto remaining = std::make_shared<int>(kCount);
  a.transport.run_sync([&] {
    for (int i = 0; i < kCount; ++i) {
      a.rpc->send(b.id, kEcho, to_bytes("r" + std::to_string(i)),
                  [done, remaining](NodeId, Bytes) {
                    if (--*remaining == 0) done->set_value();
                  });
    }
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);

  std::uint64_t responses = 0;
  a.transport.run_sync([&] { responses = a.rpc->responses_received(); });
  EXPECT_EQ(responses, static_cast<std::uint64_t>(kCount));
}

// Two endpoints sharing one transport reach each other without sockets, but
// with the same asynchronous delivery discipline.
TEST(TcpTransportTest, CoHostedEndpointsLoopBack) {
  TcpTransport shared;
  std::unique_ptr<rpc::RpcObject> one;
  std::unique_ptr<rpc::RpcObject> two;
  shared.run_sync([&] {
    one = std::make_unique<rpc::RpcObject>(
        shared.clock(), shared, NodeId{10},
        net::NetStackParams::direct_io_native());
    two = std::make_unique<rpc::RpcObject>(
        shared.clock(), shared, NodeId{20},
        net::NetStackParams::direct_io_native());
    two->register_handler(kSum, [](rpc::RequestContext& ctx) {
      ctx.respond(to_bytes("from co-hosted peer"));
    });
  });

  auto done = std::make_shared<std::promise<Bytes>>();
  auto future = done->get_future();
  shared.run_sync([&] {
    one->send(NodeId{20}, kSum, to_bytes("hi"),
              [done](NodeId, Bytes payload) {
                done->set_value(std::move(payload));
              });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(to_string(as_view(future.get())), "from co-hosted peer");

  shared.run_sync([&] {
    one.reset();
    two.reset();
  });
}

TEST(TcpTransportTest, SendWithoutRouteDropsSilently) {
  Peer a{NodeId{1}};
  a.start();

  bool timed_out = false;
  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  a.transport.run_sync([&] {
    a.rpc->send(NodeId{99}, kEcho, to_bytes("into the void"),
                [](NodeId, Bytes) { FAIL() << "no peer exists"; },
                /*timeout=*/30 * sim::kMillisecond,
                [&timed_out, done] {
                  timed_out = true;
                  done->set_value();
                });
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_TRUE(timed_out);
  EXPECT_GT(a.transport.packets_dropped(), 0u);
}

// crash() must kill the listener and every established connection; traffic
// resumes after recover() re-binds the same port.
TEST(TcpTransportTest, CrashDropsTrafficRecoverRestoresIt) {
  Peer a{NodeId{1}};
  Peer b{NodeId{2}};
  ASSERT_TRUE(a.transport.add_route(b.id, "127.0.0.1", b.listen_port)
                  .is_ok());
  a.start();
  b.start();

  // Warm the connection.
  {
    auto done = std::make_shared<std::promise<void>>();
    auto future = done->get_future();
    a.transport.run_sync([&] {
      a.rpc->send(b.id, kEcho, to_bytes("warm"),
                  [done](NodeId, Bytes) { done->set_value(); });
    });
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
  }

  b.transport.crash(b.id);
  EXPECT_TRUE(b.transport.is_crashed(b.id));
  {
    auto done = std::make_shared<std::promise<bool>>();
    auto future = done->get_future();
    a.transport.run_sync([&] {
      a.rpc->send(b.id, kEcho, to_bytes("while down"),
                  [done](NodeId, Bytes) { done->set_value(false); },
                  /*timeout=*/100 * sim::kMillisecond,
                  [done] { done->set_value(true); });
    });
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_TRUE(future.get()) << "a crashed endpoint must not answer";
  }

  b.transport.recover(b.id);
  EXPECT_FALSE(b.transport.is_crashed(b.id));
  {
    auto done = std::make_shared<std::promise<Bytes>>();
    auto future = done->get_future();
    a.transport.run_sync([&] {
      a.rpc->send(b.id, kEcho, to_bytes("back again"),
                  [done](NodeId, Bytes payload) {
                    done->set_value(std::move(payload));
                  },
                  /*timeout=*/2 * sim::kSecond,
                  [done] { done->set_value({}); });
    });
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_EQ(to_string(as_view(future.get())), "back again");
  }
}

}  // namespace
}  // namespace recipe::transport
