// Randomized batch-frame tests: round-trip through BatchFrame/BatchView and
// the shield_batch()/verify() seam, then attack the bytes — truncation, bit
// flips, length-field corruption, splicing, replay. Every corruption must be
// rejected CLEANLY: no crash, no partial delivery, the rejection counted in
// the security stats, and the channel still usable afterwards.
//
// All randomness honors RECIPE_TEST_SEED (see cluster_harness.h) and failing
// runs print the seed to replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "attest/bundle.h"
#include "cluster_harness.h"
#include "common/endian.h"
#include "common/rng.h"
#include "recipe/message.h"
#include "recipe/security.h"
#include "tee/platform.h"

namespace recipe {
namespace {

using testing::resolved_seed;
using testing::seed_trace_message;

struct Item {
  std::uint8_t kind;
  std::uint32_t type;
  std::uint64_t rpc_id;
  Bytes payload;
};

std::vector<Item> random_items(Rng& rng, std::size_t max_count = 24,
                               std::size_t max_payload = 300) {
  std::vector<Item> items(1 + rng.below(max_count));
  for (auto& item : items) {
    item.kind = rng.chance(0.5) ? BatchItem::kKindRequest
                                : BatchItem::kKindResponse;
    item.type = static_cast<std::uint32_t>(rng.next());
    item.rpc_id = rng.next();
    item.payload.resize(rng.below(max_payload + 1));
    for (auto& b : item.payload) b = static_cast<std::uint8_t>(rng.next());
  }
  return items;
}

Bytes encode(const std::vector<Item>& items) {
  BatchFrame frame;
  for (const Item& item : items) {
    frame.add(item.kind, item.type, item.rpc_id, as_view(item.payload));
  }
  return frame.take_body();
}

// --- BatchFrame / BatchView round trip ---------------------------------------

TEST(BatchFrame, RandomizedRoundTrip) {
  const std::uint64_t seed = resolved_seed(0xBA7C4F);
  SCOPED_TRACE(seed_trace_message(seed));
  Rng rng(seed);

  BatchFrame frame;
  for (int iter = 0; iter < 200; ++iter) {
    const auto items = random_items(rng);
    for (const Item& item : items) {
      frame.add(item.kind, item.type, item.rpc_id, as_view(item.payload));
    }
    EXPECT_EQ(frame.count(), items.size());
    const Bytes body = frame.take_body();
    // take_body() resets the builder for reuse.
    EXPECT_TRUE(frame.empty());
    EXPECT_EQ(frame.body_bytes(), kBatchCountSize);

    auto view = BatchView::parse(as_view(body));
    ASSERT_TRUE(view.is_ok());
    ASSERT_EQ(view.value().size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      const BatchItem& got = view.value()[i];
      EXPECT_EQ(got.kind, items[i].kind);
      EXPECT_EQ(got.type, items[i].type);
      EXPECT_EQ(got.rpc_id, items[i].rpc_id);
      EXPECT_EQ(Bytes(got.payload.begin(), got.payload.end()),
                items[i].payload);
    }
  }
}

TEST(BatchFrame, ParserRejectsTruncation) {
  const std::uint64_t seed = resolved_seed(0x7A11);
  SCOPED_TRACE(seed_trace_message(seed));
  Rng rng(seed);
  const Bytes body = encode(random_items(rng, 8, 40));

  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    const auto r = BatchView::parse(BytesView(body.data(), cut));
    EXPECT_FALSE(r.is_ok()) << "cut=" << cut;
  }
  Bytes extended = body;
  extended.push_back(0x00);
  EXPECT_FALSE(BatchView::parse(as_view(extended)).is_ok());
  EXPECT_TRUE(BatchView::parse(as_view(body)).is_ok());
}

TEST(BatchFrame, ParserRejectsLengthCorruption) {
  const std::uint64_t seed = resolved_seed(0x1E57);
  SCOPED_TRACE(seed_trace_message(seed));
  Rng rng(seed);

  for (int iter = 0; iter < 100; ++iter) {
    const auto items = random_items(rng, 6, 60);
    const Bytes body = encode(items);

    // Count field corruption: one item more, one fewer, absurdly many.
    for (std::uint64_t delta : {std::uint64_t{1}, ~std::uint64_t{0},
                                std::uint64_t{0x7FFFFFFF}}) {
      Bytes bad = body;
      store_le32(bad.data(),
                 static_cast<std::uint32_t>(items.size() + delta));
      EXPECT_FALSE(BatchView::parse(as_view(bad)).is_ok());
    }

    // First item's inner length field grown/shrunk: either the item overruns
    // the body or trailing bytes remain — both must be rejected.
    if (!items[0].payload.empty()) {
      Bytes longer = body;
      store_le32(longer.data() + kBatchCountSize + 13,
                 static_cast<std::uint32_t>(items[0].payload.size() + 1));
      EXPECT_FALSE(BatchView::parse(as_view(longer)).is_ok());
      Bytes shorter = body;
      store_le32(shorter.data() + kBatchCountSize + 13,
                 static_cast<std::uint32_t>(items[0].payload.size() - 1));
      // A shrunk length either desynchronizes parsing (failure) or — if the
      // freed bytes happen to parse as further framing — still may not
      // resynchronize to exact coverage with the same count.
      const auto r = BatchView::parse(as_view(shorter));
      if (r.is_ok()) {
        // Extremely unlikely resynchronization: at minimum the first payload
        // must differ from the original.
        ASSERT_GE(r.value().size(), 1u);
        EXPECT_NE(Bytes(r.value()[0].payload.begin(),
                        r.value()[0].payload.end()),
                  items[0].payload);
      }
    }
  }
}

TEST(BatchFrame, RandomBitFlipsNeverCrashParser) {
  const std::uint64_t seed = resolved_seed(0xF1195);
  SCOPED_TRACE(seed_trace_message(seed));
  Rng rng(seed);

  for (int iter = 0; iter < 300; ++iter) {
    const auto items = random_items(rng, 6, 80);
    Bytes body = encode(items);
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      body[rng.below(body.size())] ^= static_cast<std::uint8_t>(
          1u << rng.below(8));
    }
    // Must never crash or read out of bounds; when a parse succeeds, every
    // payload view must lie inside the body.
    auto r = BatchView::parse(as_view(body));
    if (r.is_ok()) {
      for (const BatchItem& item : r.value()) {
        if (item.payload.empty()) continue;
        EXPECT_GE(item.payload.data(), body.data());
        EXPECT_LE(item.payload.data() + item.payload.size(),
                  body.data() + body.size());
      }
    }
  }
}

// --- shield_batch / verify ---------------------------------------------------

struct SecurityPair {
  tee::TeePlatform platform{1};
  tee::Enclave enclave_a{platform, "code", 1};
  tee::Enclave enclave_b{platform, "code", 2};
  crypto::SymmetricKey root{Bytes(32, 0x77)};
  RecipeSecurity a;
  RecipeSecurity b;

  explicit SecurityPair(bool confidential = false)
      : a(enclave_a, NodeId{1}, nullptr, nullptr, cfg(confidential)),
        b(enclave_b, NodeId{2}, nullptr, nullptr, cfg(confidential)) {
    EXPECT_TRUE(enclave_a.install_secret(attest::kClusterRootName,
                                         root).is_ok());
    EXPECT_TRUE(enclave_b.install_secret(attest::kClusterRootName,
                                         root).is_ok());
  }
  static RecipeSecurityConfig cfg(bool confidential) {
    RecipeSecurityConfig c;
    c.confidentiality = confidential;
    return c;
  }
};

TEST(BatchShield, RoundTripBothModes) {
  const std::uint64_t seed = resolved_seed(0x5EC5);
  SCOPED_TRACE(seed_trace_message(seed));
  Rng rng(seed);

  for (bool confidential : {false, true}) {
    SecurityPair pair(confidential);
    for (int iter = 0; iter < 50; ++iter) {
      const auto items = random_items(rng, 10, 120);
      const Bytes body = encode(items);
      auto wire = pair.a.shield_batch(NodeId{2}, ViewId{3}, as_view(body));
      ASSERT_TRUE(wire.is_ok());
      if (confidential) {
        // The body must not appear in clear on the wire.
        EXPECT_EQ(std::search(wire.value().begin(), wire.value().end(),
                              body.begin(), body.end()),
                  wire.value().end());
      }
      auto env = pair.b.verify(NodeId{1}, as_view(wire.value()));
      ASSERT_TRUE(env.is_ok());
      EXPECT_TRUE(env.value().batch);
      EXPECT_EQ(env.value().payload, body);
      auto view = BatchView::parse(as_view(env.value().payload));
      ASSERT_TRUE(view.is_ok());
      EXPECT_EQ(view.value().size(), items.size());
    }
    // Unbatched frames do not carry the batch flag.
    auto single = pair.a.shield(NodeId{2}, ViewId{3}, as_view(to_bytes("x")));
    ASSERT_TRUE(single.is_ok());
    auto env = pair.b.verify(NodeId{1}, as_view(single.value()));
    ASSERT_TRUE(env.is_ok());
    EXPECT_FALSE(env.value().batch);
  }
}

TEST(BatchShield, OneReplaySlotPerBatch) {
  SecurityPair pair;
  BatchFrame frame;
  for (int i = 0; i < 10; ++i) {
    frame.add(BatchItem::kKindRequest, 7, 100 + i, as_view(to_bytes("op")));
  }
  auto wire = pair.a.shield_batch(NodeId{2}, ViewId{0},
                                  as_view(frame.take_body()));
  ASSERT_TRUE(wire.is_ok());
  ASSERT_TRUE(pair.b.verify(NodeId{1}, as_view(wire.value())).is_ok());
  // Replaying the whole batch burns on its SINGLE replay-window slot.
  auto replay = pair.b.verify(NodeId{1}, as_view(wire.value()));
  EXPECT_FALSE(replay.is_ok());
  EXPECT_EQ(replay.code(), ErrorCode::kReplay);
  EXPECT_EQ(pair.b.rejected_replay(), 1u);
}

TEST(BatchShield, CorruptedWireRejectedCleanlyAndChannelSurvives) {
  const std::uint64_t seed = resolved_seed(0xC0881);
  SCOPED_TRACE(seed_trace_message(seed));
  Rng rng(seed);

  for (bool confidential : {false, true}) {
    SecurityPair pair(confidential);
    std::uint64_t expect_auth_rejects = 0;
    for (int iter = 0; iter < 120; ++iter) {
      const auto items = random_items(rng, 8, 100);
      const Bytes body = encode(items);
      auto wire = pair.a.shield_batch(NodeId{2}, ViewId{0}, as_view(body));
      ASSERT_TRUE(wire.is_ok());
      Bytes attacked = wire.value();

      const int attack = static_cast<int>(rng.below(3));
      if (attack == 0) {
        attacked.resize(rng.below(attacked.size()));  // truncate
      } else if (attack == 1) {
        attacked[rng.below(attacked.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));  // bit flip
      } else {
        // Length-corrupt the frame's payload-length field.
        store_le32(attacked.data() + kShieldedHeaderSize,
                   static_cast<std::uint32_t>(rng.next()));
      }
      if (attacked == wire.value()) continue;  // degenerate corruption

      auto env = pair.b.verify(NodeId{1}, as_view(attacked));
      EXPECT_FALSE(env.is_ok()) << "attack=" << attack;
      ++expect_auth_rejects;
      EXPECT_EQ(pair.b.rejected_auth(), expect_auth_rejects);

      // No partial delivery AND no channel poisoning: the genuine frame
      // still verifies afterwards, with every sub-message intact.
      auto good = pair.b.verify(NodeId{1}, as_view(wire.value()));
      ASSERT_TRUE(good.is_ok());
      auto view = BatchView::parse(as_view(good.value().payload));
      ASSERT_TRUE(view.is_ok());
      EXPECT_EQ(view.value().size(), items.size());
    }
    EXPECT_GT(expect_auth_rejects, 0u);
  }
}

TEST(BatchShield, SplicedBatchBodiesRejected) {
  const std::uint64_t seed = resolved_seed(0x5911CE);
  SCOPED_TRACE(seed_trace_message(seed));
  Rng rng(seed);
  SecurityPair pair;

  for (int iter = 0; iter < 60; ++iter) {
    const Bytes body1 = encode(random_items(rng, 6, 60));
    const Bytes body2 = encode(random_items(rng, 6, 60));
    auto w1 = pair.a.shield_batch(NodeId{2}, ViewId{0}, as_view(body1));
    auto w2 = pair.a.shield_batch(NodeId{2}, ViewId{0}, as_view(body2));
    ASSERT_TRUE(w1.is_ok());
    ASSERT_TRUE(w2.is_ok());

    // Cross-splice: frame 1's header+MAC around frame 2's sub-messages.
    auto v1 = ShieldedView::parse(as_view(w1.value()));
    auto v2 = ShieldedView::parse(as_view(w2.value()));
    ASSERT_TRUE(v1.is_ok());
    ASSERT_TRUE(v2.is_ok());
    Bytes spliced =
        encode_shielded_frame(v1.value().header, v2.value().payload,
                              crypto::kMacSize);
    std::copy(v1.value().mac.begin(), v1.value().mac.end(),
              spliced.end() - static_cast<std::ptrdiff_t>(crypto::kMacSize));

    const std::uint64_t before = pair.b.rejected_auth();
    EXPECT_FALSE(pair.b.verify(NodeId{1}, as_view(spliced)).is_ok());
    EXPECT_EQ(pair.b.rejected_auth(), before + 1);

    // The untampered frames still verify (fresh counters).
    EXPECT_TRUE(pair.b.verify(NodeId{1}, as_view(w1.value())).is_ok());
    EXPECT_TRUE(pair.b.verify(NodeId{1}, as_view(w2.value())).is_ok());
  }
}

}  // namespace
}  // namespace recipe
