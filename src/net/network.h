// Simulated message-passing network.
//
// SUBSTITUTION (DESIGN.md §2): stands in for the paper's 40GbE testbed with
// DPDK/RDMA (direct I/O) or kernel sockets. The network is:
//   * point-to-point, fully connected, bidirectional;
//   * unreliable: messages can be delayed, reordered, duplicated or dropped
//     (partial synchrony: after GST every message arrives within delta);
//   * Byzantine: an adversary interceptor may observe, tamper with, replay,
//     inject or drop any packet (Dolev-Yao).
//
// Per-endpoint NetStackParams charge send/receive CPU and wire time, which
// is how kernel-net vs direct-I/O and native vs TEE stacks are modelled
// (Fig. 6b).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace recipe::net {

// A network packet. `type` is an application-level message tag; `payload`
// is opaque serialized bytes (possibly shielded).
struct Packet {
  NodeId src;
  NodeId dst;
  std::uint32_t type{0};
  Bytes payload;

  std::size_t wire_size() const { return payload.size() + 64; }  // headers
};

// Per-endpoint network stack cost model.
struct NetStackParams {
  sim::Time send_cpu_base = 0;
  double send_cpu_per_byte_ns = 0.0;
  sim::Time recv_cpu_base = 0;
  double recv_cpu_per_byte_ns = 0.0;
  sim::Time propagation_delay = 5 * sim::kMicrosecond;  // one-way, same rack
  double bandwidth_gbps = 40.0;

  sim::Time send_cpu(std::size_t bytes) const;
  sim::Time recv_cpu(std::size_t bytes) const;
  sim::Time wire_time(std::size_t bytes) const;

  // Profiles used across the evaluation (Fig. 6b).
  static NetStackParams kernel_native();
  static NetStackParams kernel_tee();
  static NetStackParams direct_io_native();
  static NetStackParams direct_io_tee();
};

// Tracks a node's CPU so message processing serializes and throughput
// saturates realistically. `cores` models a multi-core server as a fluid
// processor: with k cores, aggregate service capacity is k times one core
// (an M/D/k approximation good enough for saturation benchmarks).
class NodeCpu {
 public:
  // Reserves `duration` of CPU work starting no earlier than `ready`;
  // returns the completion time.
  sim::Time reserve(sim::Time ready, sim::Time duration) {
    const sim::Time start = std::max(ready, free_at_);
    free_at_ = start + scaled(duration);
    return free_at_;
  }

  // Charges `duration` of work immediately (from inside a running handler).
  void charge(sim::Time duration) { free_at_ += scaled(duration); }

  sim::Time free_at() const { return free_at_; }
  void sync_to(sim::Time t) { free_at_ = std::max(free_at_, t); }

  void set_cores(unsigned cores) { cores_ = cores == 0 ? 1 : cores; }
  unsigned cores() const { return cores_; }

 private:
  sim::Time scaled(sim::Time duration) const { return duration / cores_; }

  sim::Time free_at_{0};
  unsigned cores_{1};
};

// What the Dolev-Yao adversary decided to do with a packet in flight.
struct AdversaryAction {
  enum class Kind { kPass, kDrop, kTamper, kReplace };
  Kind kind = Kind::kPass;
  // For kTamper/kReplace: the payload to deliver instead.
  Bytes payload;
  // Extra packets the adversary injects (replays, forgeries, redirects).
  std::vector<Packet> injected;
};

// Interceptor signature: inspect the packet, return the action.
using Adversary = std::function<AdversaryAction(const Packet&)>;

struct NetworkFaults {
  double drop_rate = 0.0;         // pre-GST random loss
  double duplicate_rate = 0.0;    // pre-GST duplication
  sim::Time jitter_max = 0;       // extra uniform random delay
  sim::Time gst = 0;              // Global Stabilization Time
  sim::Time delta = 200 * sim::kMicrosecond;  // post-GST delivery bound
};

class SimNetwork {
 public:
  using DeliveryHandler = std::function<void(Packet&&)>;

  SimNetwork(sim::Simulator& simulator, Rng rng)
      : simulator_(simulator), rng_(rng) {}

  // Registers a node endpoint with its stack model and receive handler.
  void attach(NodeId id, NetStackParams stack, DeliveryHandler handler);
  void detach(NodeId id);
  bool attached(NodeId id) const { return endpoints_.contains(id); }

  // Sends a packet; all delay/fault/adversary processing is applied here.
  void send(Packet packet);

  NodeCpu& cpu(NodeId id);
  const NetStackParams& stack(NodeId id) const;

  // --- Fault injection -----------------------------------------------------
  void set_faults(NetworkFaults faults) { faults_ = faults; }
  const NetworkFaults& faults() const { return faults_; }

  // Crash a node: all traffic to/from it disappears (fail-stop at the
  // network level; the enclave object is crashed separately). Crashing also
  // invalidates every packet already in flight TOWARDS the node: a machine
  // failure empties its NIC/kernel buffers, so a later recover() must never
  // deliver pre-crash frames — a restarted node's fresh replay window would
  // wrongly accept them.
  void crash(NodeId id) {
    crashed_.insert(id);
    ++crash_epochs_[id];
  }
  void recover(NodeId id) { crashed_.erase(id); }
  bool is_crashed(NodeId id) const { return crashed_.contains(id); }
  std::uint64_t crash_epoch(NodeId id) const {
    const auto it = crash_epochs_.find(id);
    return it == crash_epochs_.end() ? 0 : it->second;
  }

  // Bidirectional partition between two nodes.
  void partition(NodeId a, NodeId b, bool blocked);

  // Installs the Dolev-Yao adversary. Replaces any previous one.
  void set_adversary(Adversary adversary) { adversary_ = std::move(adversary); }

  // --- Statistics ------------------------------------------------------
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_delivered() const { return packets_delivered_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Endpoint {
    NetStackParams stack;
    DeliveryHandler handler;
    NodeCpu cpu;
    // NIC egress: packets serialize onto the wire at line rate.
    sim::Time egress_free_at{0};
  };

  void deliver_with_faults(Packet&& packet, bool adversary_copy);
  void schedule_delivery(Packet&& packet, sim::Time departure);

  sim::Simulator& simulator_;
  Rng rng_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  std::unordered_set<NodeId> crashed_;
  // Bumped on every crash; in-flight deliveries captured the epoch at send
  // time and are dropped when it moved (pre-crash frames die with the node).
  std::unordered_map<NodeId, std::uint64_t> crash_epochs_;
  // Unordered node pair; full 64-bit ids (a packed 64-bit key would collide
  // for ids >= 2^32).
  std::set<std::pair<std::uint64_t, std::uint64_t>> partitions_;
  NetworkFaults faults_{};
  Adversary adversary_;

  std::uint64_t packets_sent_{0};
  std::uint64_t packets_delivered_{0};
  std::uint64_t packets_dropped_{0};
  std::uint64_t bytes_sent_{0};

  static std::pair<std::uint64_t, std::uint64_t> partition_key(NodeId a,
                                                               NodeId b) {
    return {std::min(a.value, b.value), std::max(a.value, b.value)};
  }
};

}  // namespace recipe::net
