// TcpCluster: a replication group deployed over REAL sockets, in process.
//
// The multi-threaded sibling of the simulator-driven harnesses: every
// replica gets its own transport::ShardedTcpTransport — its own event-loop
// shard set (1 shard = exactly the classic single-loop TcpTransport),
// real-time TimerQueues and loopback TCP listeners — and the group is wired
// up via the ProtocolRegistry exactly like a ShardGroup, so any registered
// protocol (cr/craq/raft/abd/hermes) runs unmodified with shielding and
// batching on. A separate client transport hosts KvClients; with
// transport_shards > 1 clients are homed round-robin across its shards.
//
// Replica enclaves are provisioned over the pre-attested fast path (the
// cluster holds the cluster root, standing in for the CAS exactly like
// ShardGroup does at bootstrap), and crash/rejoin reuses the §3.7 shadow
// machinery end-to-end: rejoin() restarts the enclave, resets every peer's
// and client's channel state for the fresh node, shadow-joins, streams
// state from a live donor over TCP and promotes when the protocol agrees.
//
// Threading rules: each node's callbacks run only on its own loop thread.
// Public methods here marshal through TcpTransport::run_sync, so callers
// (tests, benches, main()) use the cluster from ONE external thread at a
// time; the synchronous put()/get() helpers block that thread on real-time
// completion instead of stepping a simulator.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attest/bundle.h"
#include "common/result.h"
#include "common/rng.h"
#include "obs/admin.h"
#include "obs/metrics.h"
#include "recipe/client.h"
#include "recipe/node_base.h"
#include "rpc/retry.h"
#include "tee/platform.h"
#include "transport/chaos.h"
#include "transport/sharded_tcp_transport.h"
#include "transport/tcp_transport.h"

namespace recipe::cluster {

struct TcpClusterOptions {
  std::string protocol = "cr";
  std::size_t replicas = 3;
  bool secured = true;
  bool confidentiality = false;
  BatchConfig batch{};
  // Real-time failure detection; 0 disables heartbeats (no suspicion, no
  // chain repair — fine for fixed-membership runs).
  sim::Time heartbeat_period = 0;
  sim::Time suspect_timeout = 150 * sim::kMillisecond;
  // First replica id; replica i gets kFirstId + i.
  std::uint64_t first_id = 1;
  // 0: every listener picks an ephemeral loopback port (tests/benches can
  // never collide); nonzero: replica i listens on base_port + i.
  std::uint16_t base_port = 0;
  crypto::SymmetricKey root{Bytes(32, 0x77)};
  crypto::SymmetricKey value_key{Bytes(32, 0x44)};
  // Client request knobs (real-time).
  sim::Time request_timeout = 500 * sim::kMillisecond;
  int max_retries = 6;
  // Retransmit policy detail forwarded to every KvClient (timeout growth,
  // backoff jitter, deadline); the two knobs above still pin the first
  // attempt's timeout and the attempt budget.
  rpc::RetryPolicy client_retry = ClientOptions{}.retry;
  // Re-route policy for the synchronous put()/get() helpers: how many times
  // retry_op re-resolves the coordinator, with decorrelated-jitter sleeps
  // between attempts. Fatal reply classifications stop the loop early.
  rpc::RetryPolicy op_retry{
      .initial_timeout = 0,  // unused: per-attempt waits come from the client
      .timeout_growth = 1.0,
      .max_timeout = 0,
      .max_attempts = 3,
      .base_backoff = 20 * sim::kMillisecond,
      .max_backoff = 500 * sim::kMillisecond,
      .deadline = 0,
  };
  // Phi-accrual failure detection (recipe/failure_detector.h) on top of the
  // lease detector; 0 keeps lease-only suspicion.
  double phi_threshold = 0.0;
  // Socket/egress knobs applied to every transport in the cluster (replicas
  // and the client transport): NODELAY, SO_SNDBUF, frame bound. bind_host
  // stays loopback for in-process clusters.
  transport::TcpTransportOptions transport{};
  // Event-loop shards per transport. 1 (the default) is exactly the classic
  // single-loop deployment; 0 resolves to one shard per available core
  // (capped at net::kMaxTransportShards); N pins N. Replicas home on shard
  // 0 of their own transport; clients are homed round-robin across the
  // client transport's shards.
  unsigned transport_shards = 1;
  // Chaos: when true every replica transport AND the client transport is
  // wrapped in a transport::ChaosTransport carrying `chaos_options` (seed
  // is offset per transport so each loop gets an independent stream; the
  // reset hook defaults to RST-killing the victim link's connections).
  bool chaos = false;
  transport::ChaosOptions chaos_options{};
  // Sealed group-commit WAL on real files (secured mode only): every
  // replica logs applied writes under its sealing key and rejoin() takes
  // the cheap-restart fast path after a clean shutdown. Segments land under
  // `wal_dir`/p<listen_port> (one directory per replica; the default parent
  // is uploaded by CI as a failure artifact on recovery jobs).
  bool durable_wal = false;
  std::string wal_dir = "wal_dumps";
  kv::WalOptions wal{};
  // Observability. `metrics` (default on) gives every replica its own
  // MetricsRegistry (transport/node/WAL/batcher/chaos series) plus one for
  // the client transport's KvClients; false constructs DISABLED registries —
  // every handle is a branch-on-null no-op, the bench's "metrics off" mode.
  bool metrics = true;
  // Admin introspection endpoint (loopback HTTP: /metrics Prometheus text,
  // /trace flight-recorder JSON, /healthz). -1 (default) disables; 0 binds
  // an ephemeral port per replica (query with admin_port(i)); >0 binds
  // admin_port + i for replica i.
  int admin_port = -1;
};

class TcpCluster {
 public:
  // Stands up and starts the whole group; aborts on an unknown protocol
  // (programming error, like ShardedCluster's shard() contract).
  explicit TcpCluster(TcpClusterOptions options = {});
  ~TcpCluster();

  TcpCluster(const TcpCluster&) = delete;
  TcpCluster& operator=(const TcpCluster&) = delete;

  std::size_t size() const { return nodes_.size(); }
  const std::vector<NodeId>& membership() const { return membership_; }
  ReplicaNode& node(std::size_t i) { return *nodes_[i]; }
  // Replica i's transport (aggregate stats, chaos resets, wiring). Replica
  // endpoints live on its shard 0; run_on() marshals there.
  transport::ShardedTcpTransport& transport(std::size_t i) {
    return *transports_[i];
  }
  transport::ShardedTcpTransport& client_transport() {
    return *client_transport_;
  }
  // The event loop client idx's callbacks run on (its home shard): the
  // transport to run_sync against when touching that client's state, and
  // the one drive_closed_loop_puts() needs. In add_client order.
  transport::TcpTransport& client_home(std::size_t idx) {
    return client_transport_->shard(client_homes_[idx]);
  }
  // Chaos wrappers (null unless options.chaos): replica i's and the client
  // transport's fault injectors, for manual partitions and counters.
  transport::ChaosTransport* chaos(std::size_t i) {
    return i < chaos_.size() ? chaos_[i].get() : nullptr;
  }
  transport::ChaosTransport* client_chaos() { return client_chaos_.get(); }
  // Client idx's enclave, in add_client order (tests crash it to exercise
  // the fatal, non-retryable shield-failure path).
  tee::Enclave& client_enclave(std::size_t idx) {
    return *client_enclaves_[idx];
  }
  // Replica i's metrics registry (scraped by its admin endpoint; disabled —
  // but never null — when options.metrics is false).
  obs::MetricsRegistry& metrics(std::size_t i) { return *metrics_[i]; }
  // The registry shared by every KvClient added via add_client().
  obs::MetricsRegistry& client_metrics() { return *client_metrics_; }
  // The loopback port replica i's admin endpoint listens on; -1 when the
  // endpoint is disabled or failed to bind.
  int admin_port(std::size_t i) const {
    return i < admin_.size() && admin_[i] ? admin_[i]->port() : -1;
  }

  // Runs `fn` on replica i's loop thread (its home shard) and waits (the
  // only safe way to touch node state from outside).
  void run_on(std::size_t i, const std::function<void()>& fn) {
    transports_[i]->run_sync(fn);
  }

  KvClient& add_client(std::uint64_t client_id = 2000);

  // --- synchronous client ops (block the calling thread, real time) --------
  ClientReply put(KvClient& client, const std::string& key,
                  const std::string& value);
  ClientReply get(KvClient& client, const std::string& key);

  // Current write/read coordinator as the routing layer would pick it
  // (queried live across the loop threads).
  NodeId write_coordinator();
  NodeId read_replica();

  // --- failure injection / recovery (§3.7 over TCP) ------------------------
  void crash(std::size_t i);

  // Rejoin of crashed/stopped replica i. With durable_wal and a clean
  // shutdown behind it the node warm-restarts locally (no re-provisioning,
  // no peer resets, no state stream); otherwise the full pre-attested
  // shadow rejoin streams from `donor`. Returns once the node is active
  // (or the first error / `max_wait` — a timeout cancels the promotion
  // poll so its node-capturing callbacks cannot outlive the caller).
  // `warm_out` (optional) reports which path ran.
  Status rejoin(std::size_t i, NodeId donor,
                sim::Time max_wait = 30 * sim::kSecond,
                bool* warm_out = nullptr);

  // Orderly shutdown of replica i (durable_wal): group-commit tail flushed,
  // clean marker sealed, THEN stopped — the next rejoin() is warm.
  Status shutdown_clean(std::size_t i);

  std::uint64_t committed_ops();

 private:
  struct Replica;

  // Shared body of put()/get(): resolve the target, issue on the client's
  // home loop, wait with a real-time bound, re-route-and-retry on failure.
  ClientReply retry_op(KvClient& client, bool is_put, const std::string& key,
                       const std::string& value);
  // The home-shard loop of `client` (shard 0 for unknown pointers).
  transport::TcpTransport& home_loop(const KvClient& client);

  // The transport each replica's node and each client actually talks
  // through: the chaos wrapper when enabled, the raw TcpTransport otherwise.
  net::Transport& node_transport(std::size_t i);
  net::Transport& client_net();

  TcpClusterOptions options_;
  std::vector<NodeId> membership_;
  // Declared before every component that registers series or holds handles
  // (transports, nodes, clients): registries must be destroyed LAST.
  std::vector<std::unique_ptr<obs::MetricsRegistry>> metrics_;
  std::unique_ptr<obs::MetricsRegistry> client_metrics_;
  std::vector<std::unique_ptr<transport::ShardedTcpTransport>> transports_;
  // Declared after transports_ (destroyed first): a chaos wrapper's pending
  // delay timers park on the inner transport's TimerQueue, so the inner
  // loop must outlive the wrapper's stop flag.
  std::vector<std::unique_ptr<transport::ChaosTransport>> chaos_;
  std::vector<std::unique_ptr<tee::TeePlatform>> platforms_;
  std::vector<std::unique_ptr<tee::Enclave>> enclaves_;
  // Declared before nodes_: a node's Wal holds a reference into its storage.
  std::vector<std::unique_ptr<kv::FileWalStorage>> wal_storage_;
  std::vector<std::unique_ptr<ReplicaNode>> nodes_;

  std::unique_ptr<transport::ShardedTcpTransport> client_transport_;
  std::unique_ptr<transport::ChaosTransport> client_chaos_;
  tee::TeePlatform client_platform_{2};
  std::vector<std::unique_ptr<tee::Enclave>> client_enclaves_;
  std::vector<std::unique_ptr<KvClient>> clients_;
  // Client idx's home shard on the client transport, in add_client order
  // (client idx's state may only be touched from that shard's loop).
  std::vector<std::size_t> client_homes_;
  // Jitter stream for retry_op's between-attempt sleeps (single external
  // caller thread by class contract, so no lock).
  Rng op_rng_{0xB7E151628AED2A6AULL};
  // Admin endpoints scrape the registries from their own serve threads;
  // declared LAST so they stop before anything they read is destroyed.
  std::vector<std::unique_ptr<obs::AdminServer>> admin_;
};

// Closed-loop pipelined PUT load: keeps `pipeline` ops outstanding on the
// client's loop thread (each completion issues the next) until `total`
// completed, cycling keys over `key_space`. Returns elapsed wall-clock
// seconds, or a NEGATIVE value when the run did not complete within a
// generous bound (a lost completion must fail loudly, not hang a CI job).
// Shared by bench_transport and examples/real_cluster — the
// self-referential issue closure is subtle enough to exist exactly once.
double drive_closed_loop_puts(transport::TcpTransport& client_transport,
                              KvClient& client, NodeId target,
                              std::size_t total, std::size_t pipeline,
                              const Bytes& value,
                              std::size_t key_space = 128);

}  // namespace recipe::cluster
