// Ablation studies for the design choices DESIGN.md calls out:
//   A. Raft batching factor vs throughput and vs EPC pressure at large
//      values (explains the paper's Fig. 3 observation that batching with
//      4096B values hurts and had to be disabled).
//   B. Replica-count scaling (2f+1 = 3, 5, 7) for a leaderless (R-ABD) and
//      a leader-based (R-Raft) protocol.
//   C. Replay-window size in the non-equivocation layer (window vs strict).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace recipe::bench;

  // --- A: batching sweep ---------------------------------------------------
  std::printf("Ablation A: R-Raft batch size, 50%% reads\n");
  std::printf("%-8s %14s %14s\n", "batch", "256B ops/s", "4096B ops/s");
  for (std::size_t batch : {1u, 4u, 16u, 64u}) {
    double ops[2];
    int i = 0;
    for (std::size_t value_size : {256u, 4096u}) {
      ExperimentParams params;
      params.read_fraction = 0.5;
      params.value_size = value_size;
      TestbedConfig config = recipe_testbed(params);
      // Larger batches keep more wire-batch bytes resident in the enclave.
      config.buffer_amplifier = std::max<std::size_t>(1, batch / 8);
      Testbed<recipe::protocols::RaftNode> testbed(config);
      recipe::protocols::RaftOptions raft;
      raft.initial_leader = recipe::NodeId{1};
      raft.max_batch_entries = batch;
      testbed.build(raft);
      testbed.preload();
      ops[i++] = testbed
                     .run(Testbed<recipe::protocols::RaftNode>::route_all_to(
                         recipe::NodeId{1}))
                     .ops_per_sec;
    }
    std::printf("%-8zu %14.0f %14.0f\n", batch, ops[0], ops[1]);
  }
  std::printf("(expected: batching helps at 256B; at 4096B big batches blow "
              "the EPC and help less or hurt)\n\n");

  // --- B: replica-count scaling ----------------------------------------------
  std::printf("Ablation B: replica count (f failures tolerated with 2f+1)\n");
  std::printf("%-10s %14s %14s\n", "replicas", "R-ABD ops/s", "R-Raft ops/s");
  for (std::size_t n : {3u, 5u, 7u}) {
    ExperimentParams params;
    params.read_fraction = 0.9;
    TestbedConfig abd_config = recipe_testbed(params);
    abd_config.num_replicas = n;
    Testbed<recipe::protocols::AbdNode> abd(abd_config);
    abd.build();
    abd.preload();
    const double abd_ops = abd.run(abd.route_round_robin()).ops_per_sec;

    TestbedConfig raft_config = recipe_testbed(params);
    raft_config.num_replicas = n;
    raft_config.buffer_amplifier = 4;
    Testbed<recipe::protocols::RaftNode> raft_testbed(raft_config);
    recipe::protocols::RaftOptions raft;
    raft.initial_leader = recipe::NodeId{1};
    raft_testbed.build(raft);
    raft_testbed.preload();
    const double raft_ops =
        raft_testbed
            .run(Testbed<recipe::protocols::RaftNode>::route_all_to(
                recipe::NodeId{1}))
            .ops_per_sec;
    std::printf("%-10zu %14.0f %14.0f\n", n, abd_ops, raft_ops);
  }
  std::printf("(expected: leaderless degrades gently — broadcasts widen; "
              "leader-based degrades at the leader)\n");
  return 0;
}
