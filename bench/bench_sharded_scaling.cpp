// Sharded scaling: closed-loop throughput of the cluster layer as the shard
// count grows (1 -> 8 R-CR shards, 3 replicas each). Each shard is an
// independent replication group, so aggregate throughput should scale close
// to linearly until the client pool saturates — the reason the paper's
// Fig. 2 architecture fronts the replication groups with a routing table
// instead of growing one group.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/routed_client.h"
#include "workload/workload.h"

using namespace recipe;

namespace {

struct RunResult {
  double ops_per_sec{0};
  std::uint64_t completed{0};
  Histogram latency_us;
};

// Closed loop: each client keeps one op outstanding over a Zipfian keyspace.
RunResult run_sharded(std::size_t num_shards, const char* protocol,
                      std::size_t num_clients, sim::Time window) {
  sim::Simulator simulator;
  net::SimNetwork network(simulator, Rng(7));
  tee::TeePlatform platform(1);
  cluster::ShardedCluster store(simulator, network, platform);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto added = store.add_shard(protocol);
    if (!added) {
      std::printf("failed to deploy shard %zu\n", s);
      std::exit(1);
    }
  }

  workload::WorkloadConfig workload_config;
  workload_config.num_keys = 10000;
  ZipfianGenerator zipf(workload_config.num_keys, workload_config.zipf_theta);
  Rng rng(workload_config.seed);

  std::vector<std::unique_ptr<cluster::RoutedClient>> clients;
  for (std::size_t c = 0; c < num_clients; ++c) {
    cluster::RoutedClientOptions options;
    options.id = 5000 + c;
    clients.push_back(
        std::make_unique<cluster::RoutedClient>(store, options));
  }

  // Self-pumping loops: every completion issues the next op.
  std::function<void(std::size_t)> pump = [&](std::size_t c) {
    const std::string key = workload::key_name(zipf.next(rng));
    auto next = [&pump, c](const ClientReply&) { pump(c); };
    if (rng.uniform() < workload_config.read_fraction) {
      clients[c]->get(key, next);
    } else {
      clients[c]->put(key, workload::make_value(workload_config.value_size,
                                                zipf.item_count()),
                      next);
    }
  };
  for (std::size_t c = 0; c < num_clients; ++c) pump(c);

  const sim::Time warmup = 50 * sim::kMillisecond;
  simulator.run_for(warmup);
  std::uint64_t completed_before = 0;
  for (auto& client : clients) completed_before += client->completed();
  simulator.run_for(window);

  RunResult result;
  for (auto& client : clients) {
    result.completed += client->completed();
    result.latency_us.merge(client->latency_us());
  }
  result.completed -= completed_before;
  result.ops_per_sec = static_cast<double>(result.completed) /
                       (static_cast<double>(window) / sim::kSecond);
  return result;
}

}  // namespace

int main() {
  constexpr std::size_t kClients = 64;
  const sim::Time window = 200 * sim::kMillisecond;

  std::printf("Sharded scaling: R-CR shards x3 replicas, %zu closed-loop "
              "clients, 90%% reads, 256B values\n",
              kClients);
  std::printf("%-8s %14s %10s %10s %10s\n", "shards", "ops/s", "p50us",
              "p99us", "scale");

  double base = 0;
  for (std::size_t shards : {1, 2, 4, 8}) {
    const RunResult r = run_sharded(shards, "cr", kClients, window);
    if (base == 0) base = r.ops_per_sec;
    std::printf("%-8zu %14.0f %10llu %10llu %9.2fx\n", shards, r.ops_per_sec,
                static_cast<unsigned long long>(r.latency_us.percentile(0.5)),
                static_cast<unsigned long long>(r.latency_us.percentile(0.99)),
                r.ops_per_sec / base);
  }
  return 0;
}
