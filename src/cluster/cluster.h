// ShardedCluster: the distributed data-store layer of paper Fig. 2 as a
// first-class subsystem — a consistent-hash ring over N independent
// replication groups (ShardGroups), each running any registered protocol.
//
// Beyond static deployment it supports ONLINE topology changes: adding a
// shard stands up a freshly attested group, migrates its key range in via
// the recovery path (ReplicaNode::sync_state_from) and only then flips the
// ring; removing a shard drains its keys to the survivors first. An
// incomplete handoff aborts the topology change, and a non-owner copy is
// only pruned once the owner demonstrably holds the key — acknowledged
// writes are never destroyed by a rebalance (a write racing the state
// snapshot stays on the donor until the next handoff). Stats aggregate
// across shards (Histogram::merge on the routed clients' per-shard
// latencies).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/shard_group.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "tee/platform.h"

namespace recipe::cluster {

struct ClusterOptions {
  std::string default_protocol = "cr";
  std::size_t replicas_per_shard = 3;
  bool secured = true;
  bool confidentiality = false;
  sim::Time heartbeat_period = 0;
  const tee::TeeCostModel* cost_model = nullptr;
  std::size_t virtual_nodes = 64;
  // NodeId space: shard k's replicas live at first_base_id + k * id_stride.
  std::uint64_t first_base_id = 1;
  std::uint64_t id_stride = 100;
  crypto::SymmetricKey root{Bytes(32, 0x77)};
  crypto::SymmetricKey value_key{Bytes(32, 0x44)};
  // Bound on driving the simulator to quiesce a key handoff.
  sim::Time handoff_timeout = 10 * sim::kSecond;
};

struct ShardStats {
  ShardId id{};
  std::string protocol;
  std::size_t keys{};
  std::uint64_t committed_ops{};
};

struct ClusterStats {
  std::size_t shards{};
  std::size_t total_keys{};
  std::uint64_t committed_ops{};
  std::vector<ShardStats> per_shard;
};

class ShardedCluster {
 public:
  ShardedCluster(sim::Simulator& simulator, net::SimNetwork& network,
                 tee::TeePlatform& platform, ClusterOptions options = {});

  // Stands up a new shard running `protocol` (empty: the default protocol),
  // pulls the current keyspace in from the existing shards, then joins the
  // ring and prunes every shard down to its owned range. Synchronous: the
  // handoff drives the simulator until it completes.
  Result<ShardId> add_shard(const std::string& protocol = {});

  // Drains the shard's keys to the remaining shards, removes it from the
  // ring and crash-stops its replicas. Fails for the last shard.
  Status remove_shard(ShardId id);

  // Replica replacement: crash-recover replica `index` of `shard` through
  // the shared §3.7 shadow machinery (ShardGroup::recover_replica) and
  // drive the simulator until it promoted (or the handoff timeout passed).
  // Fresh-node listeners fire first, so client-side channel state resets
  // before the recovered replica's restarted counters reach them.
  Status recover_replica(ShardId shard, std::size_t index);

  // The pre-attested fast path's analog of the CAS fresh-node notice
  // audience: clients register to learn when a replica rejoins with fresh
  // counters (RoutedClient resets its replay windows through this).
  // Returns a token for remove_fresh_node_listener (listeners must
  // deregister before they are destroyed).
  using FreshNodeListener = std::function<void(NodeId fresh)>;
  std::uint64_t add_fresh_node_listener(FreshNodeListener listener);
  void remove_fresh_node_listener(std::uint64_t token);

  bool has_shard(ShardId id) const;
  // Aborts on an unknown id; pair with has_shard()/owner_of() first.
  ShardGroup& shard(ShardId id);
  std::vector<ShardId> shard_ids() const;
  std::size_t shard_count() const { return ring_.shard_count(); }

  // Routing: the shard owning `key` (kNoShard on an empty cluster). The
  // concrete replica for an op comes from the owning ShardGroup
  // (write_coordinator / read_replica), as RoutedClient does.
  ShardId owner_of(std::string_view key) const { return ring_.lookup(key); }

  const ConsistentHashRing& ring() const { return ring_; }
  const ClusterOptions& options() const { return options_; }
  sim::Simulator& sim() { return simulator_; }
  net::SimNetwork& network() { return network_; }
  tee::TeePlatform& platform() { return platform_; }

  ClusterStats stats();

  // Runs the simulator until `flag` flips, `max_wait` elapses, or the
  // simulation idles — the one quiesce loop shared by handoffs and the
  // synchronous client helpers.
  void drive(bool& flag, sim::Time max_wait);

 private:
  struct Entry {
    ShardId id;
    std::unique_ptr<ShardGroup> group;
  };

  Entry* find(ShardId id);
  // Drops keys a shard no longer owns (post-rebalance).
  void prune_to_ownership();

  sim::Simulator& simulator_;
  net::SimNetwork& network_;
  tee::TeePlatform& platform_;
  ClusterOptions options_;
  ConsistentHashRing ring_;
  std::vector<Entry> shards_;
  ShardId next_shard_id_{0};
  std::vector<std::pair<std::uint64_t, FreshNodeListener>> fresh_listeners_;
  std::uint64_t next_listener_token_{1};
};

}  // namespace recipe::cluster
