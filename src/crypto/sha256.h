// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for: message digests in shielded messages, enclave measurements,
// KV-store value integrity metadata, and as the compression core of
// HMAC/HKDF. Validated against NIST test vectors in tests/crypto_test.cpp.
//
// The compression loop dispatches at runtime to the x86 SHA-NI extensions
// when the CPU has them (one-time CPUID probe); the portable scalar code is
// the fallback and the reference for the instruction-set path.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace recipe::crypto {

constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

// A Sha256 object is a copyable midstate: cloning one after absorbing a
// prefix (e.g. the HMAC ipad block) forks the computation, which is what
// lets Hmac amortize its key schedule across messages.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  Sha256Digest finalize();

  // One-shot convenience.
  static Sha256Digest hash(BytesView data);
  static Sha256Digest hash2(BytesView a, BytesView b);

  // True when the runtime dispatch selected a hardware compression core.
  static bool hardware_accelerated();

  // Test/bench hook: swap between the hardware core (when available) and
  // the portable scalar core, e.g. for differential testing of the SHA-NI
  // path or for measuring pre-acceleration baselines. Process-wide.
  static void set_hardware_acceleration(bool enabled);

 private:
  void process_blocks(const std::uint8_t* data, std::size_t blocks);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t bit_count_{0};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_{0};
};

inline Bytes digest_to_bytes(const Sha256Digest& d) {
  return Bytes(d.begin(), d.end());
}

// Constant-time equality for digests and MACs: comparison time must not leak
// the position of the first mismatching byte.
bool constant_time_equal(BytesView a, BytesView b);

}  // namespace recipe::crypto
