// HMAC-SHA-256 (RFC 2104) and HKDF (RFC 5869).
//
// HMAC is the authentication primitive behind Recipe's shielded messages:
// after remote attestation, every pair of TEEs shares per-channel MAC keys
// known only inside the enclaves, so a valid MAC is transferable proof that
// an attested TEE produced the message.
//
// The Hmac class precomputes the ipad/opad SHA-256 midstates once per key;
// each message then clones the inner midstate instead of re-running the key
// schedule, which is what makes cached per-channel crypto contexts cheap.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace recipe::crypto {

using Mac = Sha256Digest;
constexpr std::size_t kMacSize = kSha256DigestSize;

// A keyed HMAC-SHA256 context with precomputed ipad/opad midstates. Safe to
// reuse across messages; copyable.
class Hmac {
 public:
  Hmac() = default;
  explicit Hmac(BytesView key);

  // Streaming interface: begin() clones the inner midstate; feed message
  // bytes with Sha256::update(); finish() folds the inner digest through the
  // outer midstate. One Hmac can have many streams in flight.
  Sha256 begin() const { return inner_mid_; }
  Mac finish(Sha256& inner) const;

  // One-shot conveniences over the cached midstates.
  Mac mac(BytesView message) const;
  Mac mac2(BytesView part1, BytesView part2) const;
  bool verify(BytesView message, BytesView expected_mac) const;

 private:
  Sha256 inner_mid_;  // state after absorbing key ^ ipad
  Sha256 outer_mid_;  // state after absorbing key ^ opad
};

// Computes HMAC-SHA256(key, message).
Mac hmac_sha256(BytesView key, BytesView message);

// Computes HMAC over two concatenated segments without copying.
Mac hmac_sha256_2(BytesView key, BytesView part1, BytesView part2);

// Verifies in constant time.
bool hmac_verify(BytesView key, BytesView message, BytesView expected_mac);

// HKDF-Extract + HKDF-Expand (RFC 5869), used to derive channel keys from a
// DH shared secret and to derive per-purpose keys from enclave root secrets.
Bytes hkdf_sha256(BytesView input_key_material, BytesView salt, BytesView info,
                  std::size_t output_length);

// A 256-bit symmetric key.
struct SymmetricKey {
  Bytes material;  // 32 bytes

  static SymmetricKey from(BytesView v) {
    return SymmetricKey{Bytes(v.begin(), v.end())};
  }
  bool empty() const { return material.empty(); }
  BytesView view() const { return as_view(material); }
};

constexpr std::size_t kSymmetricKeySize = 32;

}  // namespace recipe::crypto
