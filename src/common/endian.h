// Little-endian load/store helpers: the single definition of the wire byte
// order used by serde, the shielded-message codec and the ciphers.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace recipe {

inline void store_le32(std::uint8_t* out, std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, &v, 4);
  } else {
    for (int i = 0; i < 4; ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
}

inline void store_le64(std::uint8_t* out, std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, &v, 8);
  } else {
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, p, 4);
  } else {
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    }
  }
  return v;
}

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, p, 8);
  } else {
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
  }
  return v;
}

}  // namespace recipe
