// Figure 6b: network goodput (Gbps) vs payload size for five stacks:
//   kernel-net, direct I/O, kernel-net (TEEs), direct I/O (TEEs), and
//   Recipe-lib(net) (= direct I/O in TEEs + the shielding layer).
// Paper: TEEs degrade both stacks 4x-8x; Recipe-lib(net) is up to ~1.66x
// faster than kernel-net(TEEs); direct I/O native approaches line rate.
#include <cstdio>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "tee/cost_model.h"

namespace {

using namespace recipe;

// Streams `count` packets of `payload` bytes from node 1 to node 2 and
// returns the achieved goodput in Gbps. `extra_cpu_per_msg` models
// additional per-message work on each side (Recipe's shield/verify).
double stream_goodput_gbps(net::NetStackParams stack, std::size_t payload,
                           sim::Time extra_send_cpu, sim::Time extra_recv_cpu) {
  sim::Simulator simulator;
  net::SimNetwork network(simulator, Rng(1));

  const std::size_t count = 2000;
  std::size_t received = 0;
  sim::Time last_arrival = 0;

  network.attach(NodeId{1}, stack, [](net::Packet&&) {});
  network.attach(NodeId{2}, stack, [&](net::Packet&&) {
    ++received;
    last_arrival = simulator.now();
  });

  for (std::size_t i = 0; i < count; ++i) {
    if (extra_send_cpu > 0) network.cpu(NodeId{1}).charge(extra_send_cpu);
    network.send(net::Packet{NodeId{1}, NodeId{2}, 0, Bytes(payload)});
    if (extra_recv_cpu > 0) network.cpu(NodeId{2}).charge(extra_recv_cpu);
  }
  simulator.run_all();

  const double bits = static_cast<double>(received) *
                      static_cast<double>(payload) * 8.0;
  const double seconds =
      static_cast<double>(last_arrival) / static_cast<double>(sim::kSecond);
  return bits / seconds / 1e9;
}

}  // namespace

int main() {
  const std::vector<std::size_t> payloads = {64, 256, 1024, 1460, 2048, 4096};
  tee::TeeCostModel cost;

  std::printf("Figure 6b: network goodput (Gbps) vs payload size\n");
  std::printf("%-8s %12s %12s %14s %14s %16s\n", "bytes", "kernel-net",
              "direct I/O", "kernel (TEE)", "direct (TEE)", "Recipe-lib(net)");

  for (std::size_t p : payloads) {
    const double kernel =
        stream_goodput_gbps(net::NetStackParams::kernel_native(), p, 0, 0);
    const double direct =
        stream_goodput_gbps(net::NetStackParams::direct_io_native(), p, 0, 0);
    const double kernel_tee =
        stream_goodput_gbps(net::NetStackParams::kernel_tee(), p, 0, 0);
    const double direct_tee =
        stream_goodput_gbps(net::NetStackParams::direct_io_tee(), p, 0, 0);
    // Recipe-lib(net): direct I/O in TEEs plus shield/verify per message.
    const sim::Time shield = cost.exitless_call() + cost.mac(p);
    const double recipe_lib = stream_goodput_gbps(
        net::NetStackParams::direct_io_tee(), p, shield, shield);
    std::printf("%-8zu %12.2f %12.2f %14.2f %14.2f %16.2f\n", p, kernel,
                direct, kernel_tee, direct_tee, recipe_lib);
  }

  std::printf("\nShape checks (paper):\n");
  std::printf("  - TEEs degrade kernel-net and direct I/O by 4x-8x\n");
  std::printf("  - Recipe-lib(net) up to ~1.66x faster than kernel-net(TEE)\n");
  std::printf("  - direct I/O (native) approaches 40GbE line rate at 4KB\n");
  return 0;
}
