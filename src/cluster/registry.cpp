#include "cluster/registry.h"

#include <utility>

#include "protocols/abd/abd.h"
#include "protocols/cr/cr.h"
#include "protocols/craq/craq.h"
#include "protocols/hermes/hermes.h"
#include "protocols/raft/raft.h"

namespace recipe::cluster {

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry registry;
  return registry;
}

void ProtocolRegistry::register_protocol(std::string name,
                                         ProtocolFactory factory) {
  factories_[std::move(name)] = std::move(factory);
}

const ProtocolFactory* ProtocolRegistry::find(std::string_view name) const {
  auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : &it->second;
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    (void)factory;
    out.push_back(name);
  }
  return out;
}

ProtocolRegistry::ProtocolRegistry() {
  register_protocol("cr", [](sim::Clock& s, net::Transport& n,
                             ReplicaOptions o) -> std::unique_ptr<ReplicaNode> {
    return std::make_unique<protocols::ChainNode>(s, n, std::move(o));
  });
  register_protocol("craq",
                    [](sim::Clock& s, net::Transport& n,
                       ReplicaOptions o) -> std::unique_ptr<ReplicaNode> {
                      return std::make_unique<protocols::CraqNode>(
                          s, n, std::move(o));
                    });
  register_protocol("abd",
                    [](sim::Clock& s, net::Transport& n,
                       ReplicaOptions o) -> std::unique_ptr<ReplicaNode> {
    return std::make_unique<protocols::AbdNode>(s, n, std::move(o));
  });
  register_protocol("hermes",
                    [](sim::Clock& s, net::Transport& n,
                       ReplicaOptions o) -> std::unique_ptr<ReplicaNode> {
                      return std::make_unique<protocols::HermesNode>(
                          s, n, std::move(o));
                    });
  // Raft boots with the first member as the term-1 leader so a fresh shard
  // can serve requests without waiting out an election.
  register_protocol("raft",
                    [](sim::Clock& s, net::Transport& n,
                       ReplicaOptions o) -> std::unique_ptr<ReplicaNode> {
                      protocols::RaftOptions raft;
                      raft.initial_leader = o.membership.front();
                      return std::make_unique<protocols::RaftNode>(
                          s, n, std::move(o), raft);
                    });
}

}  // namespace recipe::cluster
