// End-to-end crash recovery and attested rejoin (paper §3.7).
//
// Covers the whole subsystem: sealed/versioned snapshots with rollback
// protection (hardware-counter pinned), the RejoinDriver sequence (enclave
// restart -> CAS re-attestation -> shadow join -> chunked catch-up ->
// promotion) for every protocol, shadow-replica semantics (no chain
// position, no quorum weight, no client service), and the cluster layer's
// shard-replica replacement built on the same machinery.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cluster_harness.h"
#include "cluster/cluster.h"
#include "cluster/registry.h"
#include "cluster/routed_client.h"
#include "kvstore/snapshot.h"
#include "protocols/abd/abd.h"
#include "protocols/cr/cr.h"
#include "protocols/craq/craq.h"
#include "protocols/hermes/hermes.h"
#include "protocols/raft/raft.h"
#include "recipe/recovery.h"

namespace recipe {
namespace {

using testing::Cluster;

// --- Sealed snapshot codec ---------------------------------------------------

class SealedSnapshot : public ::testing::Test {
 protected:
  tee::TeePlatform platform_{7};
  tee::Enclave enclave_{platform_, "recipe-replica", 42};
};

TEST_F(SealedSnapshot, RoundTripRestoresEveryEntry) {
  kv::KvStore store;
  store.write("a", as_view("va"), kv::Timestamp{1, 0});
  store.write("b", as_view("vb"), kv::Timestamp{2, 5});
  store.write("c", as_view("vc"), kv::Timestamp{});

  const auto key = enclave_.sealing_key();
  ASSERT_TRUE(key.is_ok());
  const auto version = enclave_.advance_snapshot_version();
  ASSERT_TRUE(version.is_ok());
  const Bytes blob = kv::seal_snapshot(store, key.value(), version.value());

  // The manifest is readable (for logging), the body is not plaintext.
  const auto manifest = kv::peek_snapshot_manifest(as_view(blob));
  ASSERT_TRUE(manifest.is_ok());
  EXPECT_EQ(manifest.value().version, version.value());
  EXPECT_EQ(manifest.value().entries, 3u);
  const std::string raw(blob.begin(), blob.end());
  EXPECT_EQ(raw.find("va"), std::string::npos) << "value leaked in cleartext";

  kv::KvStore restored;
  auto r = kv::unseal_snapshot(as_view(blob), key.value(), version.value(),
                               restored);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().installed, 3u);
  EXPECT_EQ(to_string(as_view(restored.get("a").value().value)), "va");
  EXPECT_EQ(to_string(as_view(restored.get("b").value().value)), "vb");
  EXPECT_EQ(restored.get("b").value().timestamp, (kv::Timestamp{2, 5}));
  EXPECT_EQ(to_string(as_view(restored.get("c").value().value)), "vc");
}

TEST_F(SealedSnapshot, OtherEnclaveCannotUnseal) {
  // The sealing key binds the enclave identity (per-machine fuses): another
  // replica of the SAME binary must not open this node's snapshot — the
  // host could otherwise substitute replica A's state into replica B (and
  // two sealers at the same version would reuse the ChaCha20 nonce).
  kv::KvStore store;
  store.write("k", as_view("v"), kv::Timestamp{1, 0});
  const auto key_a = enclave_.sealing_key().value();
  const auto version = enclave_.advance_snapshot_version().value();
  const Bytes blob = kv::seal_snapshot(store, key_a, version);

  tee::Enclave other(platform_, "recipe-replica", 43);  // same measurement
  const auto key_b = other.sealing_key().value();
  EXPECT_NE(key_a.material, key_b.material);
  kv::KvStore target;
  auto r = kv::unseal_snapshot(as_view(blob), key_b, version, target);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kAuthFailed);
}

TEST_F(SealedSnapshot, TamperedBlobIsRejected) {
  kv::KvStore store;
  store.write("a", as_view("va"), kv::Timestamp{1, 0});
  const auto key = enclave_.sealing_key().value();
  const auto version = enclave_.advance_snapshot_version().value();
  Bytes blob = kv::seal_snapshot(store, key, version);

  for (const std::size_t offset :
       {std::size_t{0}, blob.size() / 2, blob.size() - 1}) {
    Bytes corrupt = blob;
    corrupt[offset] ^= 0x01;
    kv::KvStore target;
    auto r = kv::unseal_snapshot(as_view(corrupt), key, version, target);
    ASSERT_FALSE(r.is_ok()) << "offset " << offset;
    EXPECT_EQ(r.status().code(), ErrorCode::kAuthFailed) << "offset " << offset;
    EXPECT_EQ(target.size(), 0u);
  }
  // Truncation too.
  Bytes truncated(blob.begin(), blob.end() - 1);
  kv::KvStore target;
  auto r = kv::unseal_snapshot(as_view(truncated), key, version, target);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kAuthFailed);
}

TEST_F(SealedSnapshot, RollbackToOlderVersionIsRejected) {
  kv::KvStore store;
  store.write("k", as_view("old"), kv::Timestamp{1, 0});
  const auto key = enclave_.sealing_key().value();
  const auto v1 = enclave_.advance_snapshot_version().value();
  const Bytes blob_v1 = kv::seal_snapshot(store, key, v1);

  store.write("k", as_view("new"), kv::Timestamp{2, 0});
  const auto v2 = enclave_.advance_snapshot_version().value();
  const Bytes blob_v2 = kv::seal_snapshot(store, key, v2);
  ASSERT_GT(v2, v1);

  // The hardware counter is at v2: the old (validly sealed!) blob must be
  // refused — this is the rollback attack.
  kv::KvStore target;
  auto rollback = kv::unseal_snapshot(as_view(blob_v1), key,
                                      enclave_.snapshot_version().value(),
                                      target);
  ASSERT_FALSE(rollback.is_ok());
  EXPECT_EQ(rollback.status().code(), ErrorCode::kRollback);
  EXPECT_EQ(target.size(), 0u);

  // The current blob restores fine.
  auto ok = kv::unseal_snapshot(as_view(blob_v2), key,
                                enclave_.snapshot_version().value(), target);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(to_string(as_view(target.get("k").value().value)), "new");
}

TEST_F(SealedSnapshot, SealingKeySurvivesEnclaveRestart) {
  kv::KvStore store;
  store.write("k", as_view("v"), kv::Timestamp{1, 0});
  const auto key_before = enclave_.sealing_key().value();
  const auto version = enclave_.advance_snapshot_version().value();
  const Bytes blob = kv::seal_snapshot(store, key_before, version);

  enclave_.crash();
  EXPECT_FALSE(enclave_.sealing_key().is_ok()) << "crashed enclave must refuse";
  enclave_.restart();

  // Same binary, same platform: the restarted enclave derives the SAME
  // sealing key (it has no other way to recover its snapshot) and the
  // hardware counter still pins the version.
  const auto key_after = enclave_.sealing_key().value();
  EXPECT_EQ(key_before.material, key_after.material);
  kv::KvStore restored;
  auto r = kv::unseal_snapshot(as_view(blob), key_after,
                               enclave_.snapshot_version().value(), restored);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().installed, 1u);
}

// --- Node-level snapshot API (pinned rollback stat) --------------------------

TEST(NodeSnapshot, RollbackAttemptPinsStat) {
  Cluster<protocols::AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v1").ok);

  auto& node = cluster.node(0);
  auto old_blob = node.seal_snapshot();
  ASSERT_TRUE(old_blob.is_ok());
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v2").ok);
  auto new_blob = node.seal_snapshot();
  ASSERT_TRUE(new_blob.is_ok());

  // Re-feeding the older sealed snapshot is rejected and counted.
  auto rollback = node.restore_snapshot(as_view(old_blob.value()));
  ASSERT_FALSE(rollback.is_ok());
  EXPECT_EQ(rollback.status().code(), ErrorCode::kRollback);
  EXPECT_EQ(node.snapshot_rollback_rejected(), 1u);

  // The current snapshot restores (0 strictly-newer entries: state matches).
  auto current = node.restore_snapshot(as_view(new_blob.value()));
  ASSERT_TRUE(current.is_ok());
  EXPECT_EQ(node.snapshot_rollback_rejected(), 1u);
}

// --- Full rejoin per protocol ------------------------------------------------

// Shared scenario: writes -> crash -> writes (chain/quorum repairs) ->
// rejoin (with writes racing the catch-up stream) -> writes -> verify the
// rejoined replica holds EVERY acked value and serves where its protocol
// allows.
template <typename Node>
struct RejoinScenario {
  Cluster<Node>& cluster;
  KvClient& client;
  std::function<NodeId()> write_coordinator;
  std::map<std::string, std::string> acked{};
  int counter = 0;

  void write_n(int n) {
    for (int i = 0; i < n; ++i) {
      const std::string key = "key" + std::to_string(counter);
      const std::string value = "v" + std::to_string(counter);
      ++counter;
      const ClientReply reply =
          cluster.put(client, write_coordinator(), key, value);
      ASSERT_TRUE(reply.ok) << key;
      acked[key] = value;
    }
  }

  // Launches n writes WITHOUT driving the simulator: they execute while the
  // next synchronous phase (the rejoin) runs, racing the catch-up stream.
  void write_n_async(int n) {
    for (int i = 0; i < n; ++i) {
      const std::string key = "key" + std::to_string(counter);
      const std::string value = "v" + std::to_string(counter);
      ++counter;
      acked[key] = value;  // verified below; chain/Raft writes are reliable
      client.put(write_coordinator(), key, to_bytes(value),
                 [](const ClientReply&) {});
    }
  }

  void verify_on(ReplicaNode& node) {
    for (const auto& [key, value] : acked) {
      auto got = node.kv().get(key);
      ASSERT_TRUE(got.is_ok()) << key << " missing on node "
                               << node.self().value;
      EXPECT_EQ(to_string(as_view(got.value().value)), value) << key;
    }
  }
};

TEST(Rejoin, ChainReplicationTailRejoinsAndServesReads) {
  typename Cluster<protocols::ChainNode>::Config config;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::ChainNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  RejoinScenario<protocols::ChainNode> s{cluster, client,
                                         [] { return NodeId{1}; }};

  s.write_n(8);
  cluster.crash(2);  // the tail dies
  cluster.run_for(400 * sim::kMillisecond);  // suspicion; chain repairs to [1,2]
  s.write_n(8);

  s.write_n_async(4);  // these race the catch-up stream
  auto report = cluster.rejoin(2, NodeId{2});  // donor: the acting tail
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_TRUE(report.value().promoted);
  EXPECT_GT(report.value().streamed_entries, 0u);

  cluster.run_for(sim::kSecond);
  EXPECT_TRUE(cluster.node(2).active());
  EXPECT_TRUE(cluster.node(2).is_tail()) << "promoted tail resumes its position";
  s.write_n(4);
  cluster.run_for(sim::kSecond);

  s.verify_on(cluster.node(2));
  // Linearizable local reads at the restored tail.
  for (const auto& [key, value] : s.acked) {
    const ClientReply get = cluster.get(client, NodeId{3}, key);
    ASSERT_TRUE(get.ok && get.found) << key;
    EXPECT_EQ(to_string(as_view(get.value)), value) << key;
  }
}

TEST(Rejoin, CraqMiddleNodeRejoins) {
  typename Cluster<protocols::CraqNode>::Config config;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::CraqNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  RejoinScenario<protocols::CraqNode> s{cluster, client,
                                        [] { return NodeId{1}; }};

  s.write_n(8);
  cluster.crash(1);  // middle of the chain
  cluster.run_for(400 * sim::kMillisecond);
  s.write_n(8);

  s.write_n_async(4);
  // Donor: the tail — its state is committed by construction.
  auto report = cluster.rejoin(1, NodeId{3});
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_TRUE(report.value().promoted);

  cluster.run_for(sim::kSecond);
  s.write_n(4);
  cluster.run_for(sim::kSecond);
  s.verify_on(cluster.node(1));

  // CRAQ serves reads anywhere, including at the rejoined node.
  for (const auto& [key, value] : s.acked) {
    const ClientReply get = cluster.get(client, NodeId{2}, key);
    ASSERT_TRUE(get.ok && get.found) << key;
    EXPECT_EQ(to_string(as_view(get.value)), value) << key;
  }
}

TEST(Rejoin, RaftFollowerRejoinsViaLogBackfill) {
  typename Cluster<protocols::RaftNode>::Config config;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::RaftNode> cluster(config);
  protocols::RaftOptions raft;
  raft.initial_leader = NodeId{1};
  cluster.build(raft);
  auto& client = cluster.add_client();
  RejoinScenario<protocols::RaftNode> s{cluster, client,
                                        [] { return NodeId{1}; }};

  s.write_n(8);
  cluster.crash(2);  // a follower dies
  cluster.run_for(200 * sim::kMillisecond);
  s.write_n(8);

  s.write_n_async(4);
  auto report = cluster.rejoin(2, NodeId{1});
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_TRUE(report.value().promoted);

  cluster.run_for(sim::kSecond);
  s.write_n(4);
  cluster.run_for(sim::kSecond);

  EXPECT_EQ(cluster.node(2).role(), protocols::RaftNode::Role::kFollower);
  EXPECT_EQ(cluster.node(2).commit_index(), cluster.node(0).commit_index());
  s.verify_on(cluster.node(2));
}

TEST(Rejoin, AbdReplicaRejoins) {
  typename Cluster<protocols::AbdNode>::Config config;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  RejoinScenario<protocols::AbdNode> s{cluster, client,
                                       [] { return NodeId{1}; }};

  s.write_n(8);
  cluster.crash(1);
  cluster.run_for(200 * sim::kMillisecond);
  s.write_n(8);  // quorum {1,3} keeps the register available

  auto report = cluster.rejoin(1, NodeId{1});
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_TRUE(report.value().promoted);
  cluster.run_for(sim::kSecond);

  s.write_n(4);
  s.verify_on(cluster.node(1));
  // The rejoined node coordinates quorum reads again.
  for (const auto& [key, value] : s.acked) {
    const ClientReply get = cluster.get(client, NodeId{2}, key);
    ASSERT_TRUE(get.ok && get.found) << key;
    EXPECT_EQ(to_string(as_view(get.value)), value) << key;
  }
}

TEST(Rejoin, HermesReplicaRejoinsAndServesLocalReads) {
  typename Cluster<protocols::HermesNode>::Config config;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::HermesNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  RejoinScenario<protocols::HermesNode> s{cluster, client,
                                          [] { return NodeId{1}; }};

  s.write_n(8);
  cluster.crash(2);
  cluster.run_for(400 * sim::kMillisecond);  // writes need the live set settled
  s.write_n(8);

  auto report = cluster.rejoin(2, NodeId{1});
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_TRUE(report.value().promoted);
  cluster.run_for(sim::kSecond);

  s.write_n(4);
  cluster.run_for(sim::kSecond);
  s.verify_on(cluster.node(2));
  // Local linearizable reads at the rejoined replica.
  for (const auto& [key, value] : s.acked) {
    const ClientReply get = cluster.get(client, NodeId{3}, key);
    ASSERT_TRUE(get.ok && get.found) << key;
    EXPECT_EQ(to_string(as_view(get.value)), value) << key;
  }
}

// --- Shadow semantics --------------------------------------------------------

TEST(Rejoin, ShadowHoldsNoChainPositionAndServesNoClients) {
  typename Cluster<protocols::ChainNode>::Config config;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::ChainNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);

  cluster.crash(2);
  cluster.run_for(400 * sim::kMillisecond);

  RejoinOptions options;
  options.auto_promote = false;  // stop after catch-up, stay shadow
  auto report = cluster.rejoin(2, NodeId{2}, options);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_FALSE(report.value().promoted);
  cluster.run_for(100 * sim::kMillisecond);

  // The shadow holds the data but no position, weight, or client service.
  EXPECT_TRUE(cluster.node(2).is_shadow());
  EXPECT_FALSE(cluster.node(2).active());
  EXPECT_TRUE(cluster.node(2).kv().contains("k"));
  EXPECT_EQ(cluster.node(0).chain(), (std::vector<NodeId>{NodeId{1}, NodeId{2}}))
      << "peers must exclude the shadow from the chain";
  EXPECT_FALSE(cluster.node(2).is_tail());
  const ClientReply refused = cluster.get(client, NodeId{3}, "k");
  EXPECT_FALSE(refused.ok) << "a shadow must refuse client reads";

  // Manual promotion flips everything atomically.
  cluster.node(2).promote();
  cluster.run_for(100 * sim::kMillisecond);
  EXPECT_TRUE(cluster.node(2).active());
  EXPECT_EQ(cluster.node(0).chain(),
            (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{3}}));
  const ClientReply served = cluster.get(client, NodeId{3}, "k");
  EXPECT_TRUE(served.ok && served.found);
}

// Rejoin with a STALE sealed snapshot: the rollback is detected and pinned,
// and the recovery falls back to the live stream — acked data survives.
TEST(Rejoin, StaleSnapshotIsRejectedButRejoinCompletes) {
  typename Cluster<protocols::AbdNode>::Config config;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v1").ok);

  // Seal v1, then seal a newer version (advancing the hardware counter):
  // the adversary keeps the OLD blob to feed the restarted node.
  auto stale = cluster.node(1).seal_snapshot();
  ASSERT_TRUE(stale.is_ok());
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v2").ok);
  ASSERT_TRUE(cluster.node(1).seal_snapshot().is_ok());

  cluster.crash(1);
  cluster.run_for(200 * sim::kMillisecond);
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v3").ok);

  RejoinOptions options;
  options.sealed_snapshot = std::move(stale).take();
  auto report = cluster.rejoin(1, NodeId{1}, options);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_TRUE(report.value().snapshot_rolled_back);
  EXPECT_EQ(report.value().snapshot_entries, 0u);
  EXPECT_EQ(cluster.node(1).snapshot_rollback_rejected(), 1u);
  EXPECT_TRUE(report.value().promoted);

  auto got = cluster.node(1).kv().get("k");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(as_view(got.value().value)), "v3")
      << "live stream must win over any snapshot path";
}

// Warm start: a CURRENT sealed snapshot restores and the stream only tops
// up the delta written after the crash.
TEST(Rejoin, CurrentSnapshotWarmStart) {
  typename Cluster<protocols::AbdNode>::Config config;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.put(client, NodeId{1}, "key" + std::to_string(i),
                            "v" + std::to_string(i))
                    .ok);
  }
  auto blob = cluster.node(1).seal_snapshot();
  ASSERT_TRUE(blob.is_ok());

  cluster.crash(1);
  cluster.run_for(200 * sim::kMillisecond);
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "post-crash", "pv").ok);

  RejoinOptions options;
  options.sealed_snapshot = std::move(blob).take();
  auto report = cluster.rejoin(1, NodeId{1}, options);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_FALSE(report.value().snapshot_rolled_back);
  EXPECT_EQ(report.value().snapshot_entries, 10u);
  EXPECT_TRUE(cluster.node(1).kv().contains("post-crash"));
}

// Corrupt sealed snapshot (bad MAC): NOT fatal. The restore failure pins the
// snapshot_corrupt stat and the rejoin degrades to a cold catch-up — a host
// that damages the blob costs bandwidth, never availability.
TEST(Rejoin, CorruptSnapshotDegradesToColdRejoin) {
  typename Cluster<protocols::AbdNode>::Config config;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v1").ok);

  auto blob = cluster.node(1).seal_snapshot();
  ASSERT_TRUE(blob.is_ok());
  Bytes corrupt = std::move(blob).take();
  corrupt[corrupt.size() / 2] ^= 0x01;  // host bit-rot in the sealed body

  cluster.crash(1);
  cluster.run_for(200 * sim::kMillisecond);
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v3").ok);

  RejoinOptions options;
  options.sealed_snapshot = std::move(corrupt);
  auto report = cluster.rejoin(1, NodeId{1}, options);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_TRUE(report.value().snapshot_corrupt);
  EXPECT_FALSE(report.value().snapshot_rolled_back);
  EXPECT_EQ(report.value().snapshot_entries, 0u);
  EXPECT_TRUE(report.value().promoted);
  EXPECT_EQ(cluster.node(1).snapshot_corrupt(), 1u);

  auto got = cluster.node(1).kv().get("k");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(as_view(got.value().value)), "v3")
      << "the live stream must rebuild past the damaged snapshot";
}

// --- Sealed group-commit WAL: cheap restart ----------------------------------

// The acceptance bar for the cheap-restart path: a CLEAN shutdown followed by
// a warm restart replays the sealed WAL locally and resumes ACTIVE with ZERO
// CAS round trips and ZERO peer state-stream entries.
TEST(Rejoin, CleanShutdownWarmRestartSkipsCasAndPeerStream) {
  typename Cluster<protocols::AbdNode>::Config config;
  config.with_cas = true;
  config.durable_wal = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.put(client, NodeId{1}, "key" + std::to_string(i),
                            "v" + std::to_string(i))
                    .ok);
  }

  ASSERT_TRUE(cluster.shutdown_clean(1).is_ok());
  cluster.run_for(100 * sim::kMillisecond);

  const std::uint64_t attestations = cluster.cas().attestations_served();
  auto report = cluster.rejoin(1, NodeId{1});
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_TRUE(report.value().warm_restart);
  EXPECT_TRUE(report.value().promoted);
  EXPECT_EQ(report.value().streamed_entries, 0u)
      << "a warm restart must not stream from peers";
  EXPECT_GE(report.value().wal_entries, 10u);
  EXPECT_EQ(cluster.cas().attestations_served(), attestations)
      << "a warm restart must not take a CAS round trip";

  cluster.run_for(100 * sim::kMillisecond);
  EXPECT_TRUE(cluster.node(1).active());
  for (int i = 0; i < 10; ++i) {
    auto got = cluster.node(1).kv().get("key" + std::to_string(i));
    ASSERT_TRUE(got.is_ok()) << "key" << i;
    EXPECT_EQ(to_string(as_view(got.value().value)), "v" + std::to_string(i));
  }
  // The revived replica participates in fresh traffic without any peer
  // channel reset: its restored send counters were fast-forwarded past the
  // persisted stride (B.1), so every peer's replay window accepts them.
  ASSERT_TRUE(cluster.put(client, NodeId{2}, "post-restart", "pv").ok);
  cluster.run_for(sim::kSecond);
  EXPECT_TRUE(cluster.node(1).kv().contains("post-restart"));
}

// An UNSECURED node handed WAL storage must never grow a WAL on any restart
// path: the warm path is a secured-mode feature (sealed markers, channel
// counters), and has_wal() feeds the rejoin driver's fast-path decision.
// start_as_shadow() used to reopen the WAL without checking the mode.
TEST(Rejoin, UnsecuredNodeWithWalStorageNeverWarmRestarts) {
  sim::Simulator simulator;
  net::SimNetwork network(simulator, Rng(7));
  tee::TeePlatform platform(1);
  tee::Enclave enclave(platform, "recipe-replica", 1);
  kv::MemWalStorage wal_storage;

  ReplicaOptions options;
  options.self = NodeId{1};
  options.membership = {NodeId{1}, NodeId{2}, NodeId{3}};
  options.secured = false;
  options.enclave = &enclave;
  options.wal_storage = &wal_storage;
  options.stack = net::NetStackParams::direct_io_native();
  protocols::AbdNode node(simulator, network, std::move(options));
  EXPECT_FALSE(node.has_wal());

  node.start();
  node.stop();
  node.start_as_shadow();
  EXPECT_FALSE(node.has_wal());
  auto warm = node.warm_restart();
  ASSERT_FALSE(warm.is_ok());
  EXPECT_EQ(warm.status().code(), ErrorCode::kUnavailable);
}

// A hard crash leaves no clean marker: the SAME node with the SAME WAL must
// take the full attested rejoin (CAS round trip + peer stream).
TEST(Rejoin, CrashWithWalStillTakesFullAttestedRejoin) {
  typename Cluster<protocols::AbdNode>::Config config;
  config.with_cas = true;
  config.durable_wal = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  Cluster<protocols::AbdNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.put(client, NodeId{1}, "key" + std::to_string(i),
                            "v" + std::to_string(i))
                    .ok);
  }

  cluster.crash(1);  // machine failure: no marker sealed
  cluster.run_for(200 * sim::kMillisecond);
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "post-crash", "pv").ok);

  const std::uint64_t attestations = cluster.cas().attestations_served();
  auto report = cluster.rejoin(1, NodeId{1});
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_FALSE(report.value().warm_restart);
  EXPECT_TRUE(report.value().promoted);
  EXPECT_GT(report.value().streamed_entries, 0u);
  EXPECT_EQ(cluster.cas().attestations_served(), attestations + 1)
      << "a crash must re-attest";
  EXPECT_TRUE(cluster.node(1).kv().contains("post-crash"));
}

// --- Cluster layer: shard-replica replacement --------------------------------

TEST(ClusterRecovery, ShardReplicaReplacement) {
  sim::Simulator simulator;
  net::SimNetwork network(simulator, Rng(4242));
  tee::TeePlatform platform(1);
  cluster::ClusterOptions options;
  options.default_protocol = "cr";
  cluster::ShardedCluster sharded(simulator, network, platform, options);
  ASSERT_TRUE(sharded.add_shard().is_ok());
  ASSERT_TRUE(sharded.add_shard("abd").is_ok());

  auto& group = sharded.shard(0);
  for (int i = 0; i < 12; ++i) {
    const std::string key = "k" + std::to_string(i);
    for (std::size_t r = 0; r < group.size(); ++r) {
      group.replica(r).kv().write(key, as_view("v" + std::to_string(i)),
                                  kv::Timestamp{std::uint64_t(i + 1), 0});
    }
  }
  // The empty-string key must stream too (the chunk cursor cannot alias it).
  for (std::size_t r = 0; r < group.size(); ++r) {
    group.replica(r).kv().write("", as_view("empty-key"),
                                kv::Timestamp{13, 0});
  }

  // Kill replica 1 of shard 0, then replace it via the shared machinery.
  group.stop_replica(1);
  simulator.run_for(100 * sim::kMillisecond);
  EXPECT_FALSE(group.replica(1).running());

  ASSERT_TRUE(sharded.recover_replica(0, 1).is_ok());
  EXPECT_TRUE(group.replica(1).active());
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(group.replica(1).kv().contains("k" + std::to_string(i)))
        << "k" << i;
  }
  EXPECT_TRUE(group.replica(1).kv().contains(""))
      << "the empty-string key must survive chunked streaming";
  EXPECT_TRUE(group.holds_key("k0"));

  // Recovering a running replica is refused; bad indices too.
  EXPECT_FALSE(sharded.recover_replica(0, 1).is_ok());
  EXPECT_FALSE(sharded.recover_replica(0, 99).is_ok());
  EXPECT_FALSE(sharded.recover_replica(77, 0).is_ok());
}

TEST(ClusterRecovery, RoutedClientSurvivesReplicaReplacement) {
  // A client that exchanged traffic with a replica BEFORE its replacement
  // holds a populated replay window for it; the fresh-node listener must
  // reset that window or every post-recovery reply (restarted counters)
  // would be rejected as a duplicate.
  sim::Simulator simulator;
  net::SimNetwork network(simulator, Rng(77));
  tee::TeePlatform platform(1);
  cluster::ClusterOptions options;
  options.default_protocol = "cr";
  cluster::ShardedCluster sharded(simulator, network, platform, options);
  ASSERT_TRUE(sharded.add_shard().is_ok());
  cluster::RoutedClient client(sharded);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.put_sync("key" + std::to_string(i),
                                "v" + std::to_string(i)));
  }
  // Reads at the CR tail populate the client's window for that replica.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(client.get_sync("key" + std::to_string(i)),
              "v" + std::to_string(i));
  }

  auto& group = sharded.shard(0);
  group.stop_replica(2);  // the tail — the sole CR read server
  simulator.run_for(100 * sim::kMillisecond);
  ASSERT_TRUE(sharded.recover_replica(0, 2).is_ok());
  ASSERT_TRUE(group.replica(2).active());

  // Replies now come from the recovered tail with counters from 1.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(client.get_sync("key" + std::to_string(i)),
              "v" + std::to_string(i))
        << "key" << i;
  }
}

}  // namespace
}  // namespace recipe
