// Zipfian key-popularity sampler, as used by YCSB.
//
// Implements the Gray et al. rejection-inversion-free method used by YCSB's
// ZipfianGenerator: O(1) sampling after O(n) precomputation of zeta(n, theta).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.h"

namespace recipe {

class ZipfianGenerator {
 public:
  // Items are in [0, n). theta in (0, 1); YCSB default is 0.99.
  // n == 0 is clamped to 1 (an empty item set cannot be sampled); for
  // n == 1 every draw is item 0 — both would otherwise divide by zero in
  // the eta_ precomputation (zeta(2)/zeta(1) > 1 makes the denominator
  // vanish or go negative).
  explicit ZipfianGenerator(std::uint64_t n, double theta = 0.99)
      : n_(n == 0 ? 1 : n), theta_(theta), zetan_(zeta(n_, theta)) {
    alpha_ = 1.0 / (1.0 - theta_);
    if (n_ > 1) {
      const double zeta2 = zeta(2, theta_);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
             (1.0 - zeta2 / zetan_);
    }
  }

  std::uint64_t next(Rng& rng) const {
    if (n_ == 1) return 0;
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const double v =
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t item = static_cast<std::uint64_t>(v);
    if (item >= n_) item = n_ - 1;
    return item;
  }

  std::uint64_t item_count() const { return n_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_{};
  double eta_{};
};

}  // namespace recipe
