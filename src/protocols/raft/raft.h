// Raft (Ongaro & Ousterhout) — leader-based, total ordering, linearizable
// (paper §B.2 category B).
//
// The leader serializes all writes into a replicated log; followers append
// and acknowledge; the leader commits an entry once a majority has stored it
// and applies it to the KV store. Reads are forwarded to the leader, which
// serves them locally while it holds a majority-confirmed leader lease
// (trusted-lease mechanism, §3.5) and pushes them through the log otherwise.
// Elections follow Raft: randomized timeouts, term-scoped votes, and the
// up-to-date log restriction.
//
// Omitted relative to full Raft (documented simplifications): persistence to
// stable storage (replicas are memory-resident like the paper's testbed) and
// log compaction / snapshot transfer (recovering nodes fetch full state via
// the Recipe recovery path instead).
//
// Recovery (§3.7): a re-attested node rejoins as a SHADOW follower. The
// leader's AppendEntries backfill IS its live catch-up (next_index walks
// back to 1 and re-ships the log), but while shadow the node grants no
// votes, never runs elections, and the leader excludes it from commit and
// lease quorums — so an empty log can neither elect a stale leader nor
// count towards commitment. It promotes once its applied state covers
// everything the leader reported committed.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "recipe/node_base.h"

namespace recipe::protocols {

namespace raft_msg {
constexpr rpc::RequestType kAppend = 0x5A01;
constexpr rpc::RequestType kVote = 0x5A02;
}  // namespace raft_msg

struct RaftOptions {
  sim::Time election_timeout_min = 150 * sim::kMillisecond;
  sim::Time election_timeout_max = 300 * sim::kMillisecond;
  sim::Time heartbeat_period = 30 * sim::kMillisecond;
  std::size_t max_batch_entries = 64;
  // Node that boots as leader of term 1 (kNoNode: all boot as followers and
  // run a real election).
  NodeId initial_leader = kNoNode;
  std::uint64_t seed = 0x4AF7;
};

class RaftNode final : public ReplicaNode {
 public:
  RaftNode(sim::Clock& clock, net::Transport& network,
           ReplicaOptions options, RaftOptions raft_options = {});

  ~RaftNode() override;

  void start() override;
  void stop() override;

  bool is_coordinator() const override { return role_ == Role::kLeader; }
  bool serves_local_reads() const override { return is_coordinator(); }
  void submit(const ClientRequest& request, ReplyFn reply) override;

  // Introspection for tests and the view-change evaluation.
  enum class Role { kFollower, kCandidate, kLeader };
  Role role() const { return role_; }
  std::uint64_t term() const { return current_term_; }
  NodeId leader_hint() const { return leader_id_; }
  std::uint64_t log_size() const { return log_.size(); }
  std::uint64_t commit_index() const { return commit_index_; }

  // Shadow catch-up signal: we hold and applied everything the leader had
  // committed as of its last append to us.
  bool shadow_caught_up() const override;

 protected:
  ViewId current_view() const override { return ViewId{current_term_}; }
  void on_promoted() override;

 private:
  struct LogEntry {
    std::uint64_t term{0};
    Bytes op;  // serialized ClientRequest
  };

  // --- Roles & elections ---
  void become_follower(std::uint64_t term);
  void become_candidate();
  void become_leader();
  void reset_election_timer();
  sim::Time random_election_timeout();

  // --- Replication ---
  void replicate_to(NodeId peer);
  void leader_tick();
  void advance_commit();
  void apply_committed();
  Bytes encode_append(NodeId peer) const;

  void handle_append(VerifiedEnvelope& env, rpc::RequestContext& ctx);
  void handle_vote(VerifiedEnvelope& env, rpc::RequestContext& ctx);

  // Leader lease: renewed when a majority acknowledged within the window.
  void renew_lease_on_majority();

  RaftOptions raft_;
  Rng rng_;
  Role role_{Role::kFollower};
  std::uint64_t current_term_{0};
  std::optional<NodeId> voted_for_;
  NodeId leader_id_{kNoNode};

  std::vector<LogEntry> log_;  // log_[0] is a sentinel; indices are 1-based
  std::uint64_t term_start_index_{0};  // index of this leader's no-op entry
  std::uint64_t commit_index_{0};
  std::uint64_t last_applied_{0};
  std::map<std::uint64_t, ReplyFn> pending_replies_;  // log index -> reply

  std::unordered_map<NodeId, std::uint64_t> next_index_;
  std::unordered_map<NodeId, std::uint64_t> match_index_;
  std::unordered_map<NodeId, bool> append_in_flight_;
  std::unordered_map<NodeId, sim::Time> last_peer_ack_;
  // Highest leader commit index observed in an AppendEntries while shadow.
  std::uint64_t leader_commit_seen_{0};

  sim::TimerHandle election_timer_;
  sim::TimerHandle leader_timer_;
  tee::TrustedClock lease_clock_;
  tee::TrustedLease leader_lease_;
};

}  // namespace recipe::protocols
