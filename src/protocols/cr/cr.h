// Chain Replication (van Renesse & Schneider) — leader-based, per-key
// ordering, linearizable (paper §B.2 category C).
//
// Nodes form a chain in membership order. Writes enter at the HEAD, which
// assigns a sequence number, applies locally and forwards down the chain;
// each node applies in sequence order and forwards; the TAIL applies and
// acknowledges straight back to the head, which replies to the client.
// Because a write is acknowledged only after reaching every node, the tail
// has seen every committed write — so linearizable reads are served LOCALLY
// at the tail (the paper's explanation for R-CR's read-heavy wins).
//
// Chain repair: when the failure detector suspects a node it is dropped from
// the chain; the head re-propagates all unacknowledged updates through the
// new chain. Nodes deduplicate by sequence number, so re-propagation is
// idempotent. The head additionally runs a REPAIR TIMER while any update is
// unacknowledged: on a lossy link a dropped chain hop would otherwise wedge
// every later write behind the sequence hole forever (downstream nodes
// buffer out-of-order updates until the gap fills, and nothing else ever
// refills it).
//
// Recovery (§3.7): a re-attested node rejoins as a SHADOW — it stays out of
// the chain (no forwarding, no acks, no reads) while the head TEES every new
// update at it and the recovery driver streams the tail's committed state.
// Writes apply last-writer-wins by sequence timestamp (ts = {seq, 0}), so
// the stream and the tee interleave safely in any order. On promotion the
// node re-enters its membership position; the head re-propagates unacked
// updates through the restored chain, exactly like post-suspicion repair.
#pragma once

#include <map>
#include <set>

#include "recipe/node_base.h"

namespace recipe::protocols {

namespace cr_msg {
constexpr rpc::RequestType kUpdate = 0xC201;  // [seq, op] down the chain
constexpr rpc::RequestType kAck = 0xC202;     // [seq] tail -> head
}  // namespace cr_msg

class ChainNode final : public ReplicaNode {
 public:
  ChainNode(sim::Clock& clock, net::Transport& network,
            ReplicaOptions options);
  ~ChainNode() override;

  void stop() override;

  // Coordinates PUTs when head, GETs when tail.
  bool is_coordinator() const override { return is_head() || is_tail(); }
  bool coordinates_writes() const override { return is_head(); }
  bool coordinates_reads() const override { return is_tail(); }
  bool serves_local_reads() const override { return is_tail(); }
  void submit(const ClientRequest& request, ReplyFn reply) override;

  // A shadow (excluded from its own chain view) is neither head nor tail.
  bool is_head() const {
    const auto c = chain();
    return !c.empty() && c.front() == self();
  }
  bool is_tail() const {
    const auto c = chain();
    return !c.empty() && c.back() == self();
  }
  NodeId head() const { return chain().front(); }
  NodeId tail() const { return chain().back(); }

  // The live chain in membership order.
  std::vector<NodeId> chain() const;

 protected:
  void on_suspected(NodeId peer) override;
  void on_peer_promoted(NodeId peer) override;
  void on_promoted() override;

 private:
  std::optional<NodeId> successor() const;
  void apply_in_order();
  void apply_update(std::uint64_t seq, BytesView op);
  void forward_or_ack(std::uint64_t seq, const Bytes& op);
  void repropagate_unacked();
  // Head-side: fire-and-forget copy of a new update to every shadow peer.
  void tee_to_shadows(std::uint64_t seq, const Bytes& op);
  // Head-side retransmission of unacked updates on a lossy link. `schedule`
  // arms the timer if idle; the tick re-propagates and re-arms while
  // anything remains unacked.
  void schedule_repair();
  void arm_repair();
  void repair_tick();

  // Slow relative to chain latency (sub-ms in-sim, low-ms on loopback), so
  // on a clean link the timer fires once, finds nothing unacked and goes
  // quiet; under loss it bounds how long a sequence hole can stall writes.
  static constexpr sim::Time kRepairPeriod = 100 * sim::kMillisecond;

  std::set<NodeId> dead_;
  std::uint64_t next_seq_{0};     // head: last assigned sequence number
  std::uint64_t applied_seq_{0};  // this node: last applied sequence number
  std::map<std::uint64_t, Bytes> out_of_order_;       // buffered future updates
  std::map<std::uint64_t, Bytes> unacked_;            // head: for repair
  std::map<std::uint64_t, ReplyFn> pending_replies_;  // head: seq -> client
  sim::TimerHandle repair_timer_;
};

}  // namespace recipe::protocols
