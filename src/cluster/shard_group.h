// ShardGroup: one attested N-replica replication group — a single "shard"
// of the distributed data store (paper Fig. 2).
//
// The group is protocol-agnostic: the node type is resolved through the
// ProtocolRegistry, so the same factory stands up an R-CR chain, a CRAQ
// chain, a Raft group, an ABD register or a Hermes group. It owns the
// replicas' enclaves (provisioned with the cluster root secret, the
// pre-attested fast path also used by the test harness) and exposes the
// routing facts the cluster layer needs: which replica currently accepts
// writes, which replicas can serve reads, and per-group stats.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attest/bundle.h"
#include "common/result.h"
#include "recipe/node_base.h"
#include "tee/enclave.h"
#include "tee/platform.h"

namespace recipe::cluster {

struct ShardGroupOptions {
  std::string protocol = "cr";
  std::size_t num_replicas = 3;
  // Replica NodeIds are base_id .. base_id + num_replicas - 1; the cluster
  // layer carves the id space so groups never collide.
  std::uint64_t base_id = 1;
  bool secured = true;
  bool confidentiality = false;
  sim::Time heartbeat_period = 0;
  const tee::TeeCostModel* cost_model = nullptr;
  // Cluster root secret installed into every replica enclave; channel keys
  // derive from it pairwise, so replicas of DIFFERENT groups (and clients)
  // can authenticate each other — what makes cross-shard state handoff and
  // a single routed client possible.
  crypto::SymmetricKey root{};
  crypto::SymmetricKey value_key{};  // used when confidentiality
};

class ShardGroup {
 public:
  // Builds and starts the group; fails when `protocol` is not registered.
  static Result<std::unique_ptr<ShardGroup>> create(sim::Simulator& simulator,
                                                    net::SimNetwork& network,
                                                    tee::TeePlatform& platform,
                                                    ShardGroupOptions options);

  // Crash-stops every replica (used on shard removal).
  void stop();

  // Crash-stops one replica (targeted failure injection).
  void stop_replica(std::size_t i);

  // Recovers replica `i` through the SAME shadow machinery the protocols
  // use for §3.7 rejoin: restart the enclave, re-provision it over the
  // pre-attested fast path (the group owns the cluster root, standing in
  // for the CAS like the harness does at bootstrap), reset the peers'
  // channel state for it, rejoin as a shadow, stream state from an active
  // peer to fixpoint, and promote once the protocol reports caught-up.
  // `done` receives the number of state entries installed.
  void recover_replica(std::size_t i,
                       std::function<void(Result<std::size_t>)> done);

  const std::string& protocol() const { return options_.protocol; }
  const std::vector<NodeId>& membership() const { return membership_; }
  std::size_t size() const { return replicas_.size(); }
  ReplicaNode& replica(std::size_t i) { return *replicas_[i]; }
  const ReplicaNode& replica(std::size_t i) const { return *replicas_[i]; }

  // The replica currently accepting client PUTs (CR/CRAQ: the head; Raft:
  // the leader; leaderless protocols: any running node). Falls back to the
  // first member while no replica claims the role (e.g. mid-election).
  NodeId write_coordinator() const;

  // A replica able to serve GETs; `hint` round-robins across the eligible
  // set (CRAQ/Hermes: every node) to spread read load.
  NodeId read_replica(std::uint64_t hint = 0) const;

  // --- key handoff ---------------------------------------------------------
  // Pulls the donor group's full KV state into every replica of THIS group
  // via the recovery path (ReplicaNode::sync_state_from). Each replica
  // syncs from every donor replica: timestamped writes merge last-writer-
  // wins, so the union covers protocols whose writes only reach a majority
  // (ABD). Crashed replicas on either side are skipped. `done` receives
  // the total entries installed and the number of fetches that errored —
  // callers must treat errors > 0 as an incomplete handoff.
  void pull_state_from(ShardGroup& donor,
                       std::function<void(std::size_t installed,
                                          std::size_t errors)> done);

  // Erases every key matching `pred` from every replica (after a ring
  // rebalance moved its ownership elsewhere). Returns keys erased on the
  // first replica (the per-replica counts match once the group quiesced).
  std::size_t prune_keys(
      const std::function<bool(std::string_view)>& pred);

  // True when every running replica stores `key` — the cluster layer's
  // prune invariant: a donor copy may only be erased once the new owner
  // demonstrably holds the key.
  bool holds_key(std::string_view key);

  // --- stats ---------------------------------------------------------------
  std::size_t keys();                   // on the read-serving replica
  std::uint64_t committed_ops() const;  // summed over replicas

 private:
  ShardGroup(sim::Simulator& simulator, net::SimNetwork& network,
             ShardGroupOptions options)
      : simulator_(simulator),
        network_(network),
        options_(std::move(options)) {}

  sim::Simulator& simulator_;
  net::SimNetwork& network_;
  ShardGroupOptions options_;
  std::vector<NodeId> membership_;
  std::vector<std::unique_ptr<tee::Enclave>> enclaves_;
  std::vector<std::unique_ptr<ReplicaNode>> replicas_;
};

}  // namespace recipe::cluster
