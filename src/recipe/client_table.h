// Client table: exactly-once semantics for client requests (paper §3.4 #3.1).
//
// The coordinator records a sliding WINDOW of recent request ids per client,
// each with its cached reply once execution finishes. Retransmissions of any
// request still in the window are answered from the cache (or dropped while
// the original executes); ids that have slid out of the window are rejected
// as replays.
//
// A window — rather than the classic single "latest id" slot — matters for
// pipelined clients: with N requests outstanding, reordered delivery (chaos
// jitter, retransmits racing fresh requests) makes an older id arrive after
// a newer one began. A latest-only table misclassifies every such id as a
// replay and drops it silently, so the op can never complete on any retry.
// The window keeps the replay guarantee (an id is executed at most once and
// below-window ids stay rejected) with memory bounded by kDefaultWindow
// entries per client.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>

#include "common/bytes.h"
#include "common/ids.h"

namespace recipe {

class ClientTable {
 public:
  enum class Decision {
    kExecute,   // new request: run the protocol
    kCached,    // duplicate of a windowed request: reply from cache
    kStale,     // below the window: drop (replay)
    kInFlight,  // same request already executing: drop duplicate
  };

  // Must exceed the deepest client pipeline plus retransmit slack; beyond
  // that it is only a memory bound (entries are one reply each).
  static constexpr std::size_t kDefaultWindow = 512;

  explicit ClientTable(std::size_t window = kDefaultWindow)
      : window_(window) {}

  Decision admit(ClientId client, RequestId rid) const {
    const auto it = entries_.find(client);
    if (it == entries_.end()) return Decision::kExecute;
    const Entry& e = it->second;
    if (rid.value < e.floor) return Decision::kStale;
    const auto rit = e.recent.find(rid.value);
    if (rit == e.recent.end()) return Decision::kExecute;
    return rit->second.has_value() ? Decision::kCached : Decision::kInFlight;
  }

  // Marks a request as executing (no cached reply yet); the oldest window
  // entries are evicted to keep per-client memory bounded.
  void begin(ClientId client, RequestId rid) {
    Entry& e = entries_[client];
    if (rid.value < e.floor) return;  // raced below the window edge
    e.recent.emplace(rid.value, std::nullopt);
    while (e.recent.size() > window_) {
      const auto oldest = e.recent.begin();
      e.floor = oldest->first + 1;
      e.recent.erase(oldest);
    }
  }

  // Records the reply for a windowed request (evicted ids are ignored).
  void complete(ClientId client, RequestId rid, Bytes reply) {
    const auto it = entries_.find(client);
    if (it == entries_.end()) return;
    const auto rit = it->second.recent.find(rid.value);
    if (rit != it->second.recent.end()) rit->second = std::move(reply);
  }

  const Bytes* cached_reply(ClientId client, RequestId rid) const {
    const auto it = entries_.find(client);
    if (it == entries_.end()) return nullptr;
    const auto rit = it->second.recent.find(rid.value);
    if (rit == it->second.recent.end() || !rit->second) return nullptr;
    return &*rit->second;
  }

  std::size_t size() const { return entries_.size(); }

  // Machine reboot: the dedup table was enclave/host memory and is gone.
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    // rid -> reply (nullopt while executing), ordered so eviction walks the
    // oldest ids first.
    std::map<std::uint64_t, std::optional<Bytes>> recent;
    std::uint64_t floor{0};  // ids below this slid out of the window
  };
  std::size_t window_;
  std::unordered_map<ClientId, Entry> entries_;
};

}  // namespace recipe
