// Tests for the workload layer: YCSB-style generation, closed-loop driving,
// and the calibrated testbed.
#include <gtest/gtest.h>

#include "protocols/abd/abd.h"
#include "protocols/cr/cr.h"
#include "workload/testbed.h"
#include "workload/workload.h"

namespace recipe::workload {
namespace {

TEST(Workload, KeyNamesAreStableAndDistinct) {
  EXPECT_EQ(key_name(0), "user00000000");
  EXPECT_EQ(key_name(42), "user00000042");
  EXPECT_EQ(key_name(9999), "user00009999");
  EXPECT_NE(key_name(1), key_name(2));
}

TEST(Workload, ValuesHaveRequestedSizeAndVaryBySalt) {
  EXPECT_EQ(make_value(256, 1).size(), 256u);
  EXPECT_EQ(make_value(4096, 1).size(), 4096u);
  EXPECT_NE(make_value(64, 1), make_value(64, 2));
  EXPECT_EQ(make_value(64, 7), make_value(64, 7));  // deterministic
}

TEST(Testbed, ClosedLoopDriverSaturatesAndMeasures) {
  TestbedConfig config;
  config.num_replicas = 3;
  config.num_clients = 4;
  config.workload.num_keys = 100;
  config.workload.read_fraction = 0.5;
  config.workload.value_size = 64;
  config.window = 50 * sim::kMillisecond;
  config.warmup = 10 * sim::kMillisecond;
  config.use_cost_model = false;

  Testbed<protocols::AbdNode> testbed(config);
  testbed.build();
  testbed.preload();
  const RunResult result = testbed.run(testbed.route_round_robin());

  EXPECT_GT(result.completed, 100u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.ops_per_sec, 1000.0);
  EXPECT_GT(result.latency_us.count(), 0u);
}

TEST(Testbed, PreloadPopulatesEveryReplica) {
  TestbedConfig config;
  config.workload.num_keys = 50;
  Testbed<protocols::AbdNode> testbed(config);
  testbed.build();
  testbed.preload();
  for (std::size_t n = 0; n < testbed.size(); ++n) {
    EXPECT_EQ(testbed.node(n).kv().size(), 50u);
    EXPECT_TRUE(testbed.node(n).kv().contains(key_name(0)));
    EXPECT_TRUE(testbed.node(n).kv().contains(key_name(49)));
  }
}

TEST(Testbed, HeadTailRouterSplitsByOpType) {
  TestbedConfig config;
  Testbed<protocols::ChainNode> testbed(config);
  testbed.build();
  auto router = testbed.route_head_tail();
  EXPECT_EQ(router(OpType::kPut, 0), NodeId{1});
  EXPECT_EQ(router(OpType::kGet, 0), NodeId{3});
}

TEST(Testbed, RoundRobinRouterCyclesMembers) {
  TestbedConfig config;
  Testbed<protocols::AbdNode> testbed(config);
  testbed.build();
  auto router = testbed.route_round_robin();
  EXPECT_EQ(router(OpType::kGet, 0), NodeId{1});
  EXPECT_EQ(router(OpType::kGet, 1), NodeId{2});
  EXPECT_EQ(router(OpType::kGet, 2), NodeId{3});
  EXPECT_EQ(router(OpType::kGet, 3), NodeId{1});
}

TEST(Testbed, SecuredModeIsSlowerThanNative) {
  // Smoke test of the Fig. 6a premise inside the unit suite.
  auto run_mode = [](bool secured) {
    TestbedConfig config;
    config.num_clients = 8;
    config.workload.num_keys = 200;
    config.workload.read_fraction = 0.9;
    config.window = 40 * sim::kMillisecond;
    config.warmup = 10 * sim::kMillisecond;
    config.secured = secured;
    config.use_cost_model = secured;
    config.replica_stack = secured ? net::NetStackParams::direct_io_tee()
                                   : net::NetStackParams::direct_io_native();
    Testbed<protocols::ChainNode> testbed(config);
    testbed.build();
    testbed.preload();
    return testbed.run(testbed.route_head_tail()).ops_per_sec;
  };
  // With only 8 closed-loop clients the run is latency-limited, so the gap
  // is smaller than the saturated Fig. 6a numbers — but it must exist.
  const double native = run_mode(false);
  const double secured = run_mode(true);
  EXPECT_GT(native, secured * 1.1) << "TEE tax missing";
  EXPECT_GT(secured, 0.0);
}

TEST(Testbed, ConfidentialityCostsThroughput) {
  auto run_mode = [](bool confidential) {
    TestbedConfig config;
    config.num_clients = 8;
    config.workload.num_keys = 200;
    config.workload.read_fraction = 0.5;
    config.window = 40 * sim::kMillisecond;
    config.warmup = 10 * sim::kMillisecond;
    config.confidentiality = confidential;
    Testbed<protocols::ChainNode> testbed(config);
    testbed.build();
    testbed.preload();
    return testbed.run(testbed.route_head_tail()).ops_per_sec;
  };
  const double plain = run_mode(false);
  const double confidential = run_mode(true);
  EXPECT_GT(plain, confidential);
}

}  // namespace
}  // namespace recipe::workload
