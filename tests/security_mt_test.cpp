// Staged-egress threading contract: shield()/shield_batch_parts()/verify()
// are callable from ANY thread (caller-thread crypto — the whole point of
// moving shielding off the transport loop). These tests hammer one channel
// from many threads and assert the invariants the wire depends on: every
// concurrently shielded frame gets a UNIQUE trusted counter (= unique nonce
// under confidentiality), every frame authenticates, and the receive-side
// replay bookkeeping accepts each exactly once. Built into the TSan CI job,
// where a data race in the snapshot cache, the enclave counter path or the
// recv-side mutex fails the run outright.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "attest/cas.h"
#include "recipe/security.h"
#include "tee/platform.h"

namespace recipe {
namespace {

struct MtSecurityFixture : public ::testing::Test {
  tee::TeePlatform platform{1};
  tee::Enclave enclave_a{platform, "code", 1};
  tee::Enclave enclave_b{platform, "code", 2};
  crypto::SymmetricKey root{Bytes(32, 0x77)};

  void SetUp() override {
    ASSERT_TRUE(
        enclave_a.install_secret(attest::kClusterRootName, root).is_ok());
    ASSERT_TRUE(
        enclave_b.install_secret(attest::kClusterRootName, root).is_ok());
  }

  RecipeSecurity make(tee::Enclave& e, NodeId self,
                      RecipeSecurityConfig config = {}) {
    return RecipeSecurity(e, self, nullptr, nullptr, config);
  }
};

constexpr std::size_t kThreads = 8;
constexpr std::size_t kPerThread = 400;

TEST_F(MtSecurityFixture, ConcurrentShieldsOnOneChannelNeverReuseACounter) {
  auto a = make(enclave_a, NodeId{1});

  std::vector<std::vector<Bytes>> wires(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      wires[t].reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        auto wire = a.shield(NodeId{2}, ViewId{1}, as_view("payload"));
        ASSERT_TRUE(wire.is_ok());
        wires[t].push_back(std::move(wire).take());
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every frame carries a distinct trusted counter: under confidentiality
  // the nonce is bound to (cq, cnt), so counter uniqueness IS nonce
  // uniqueness — reuse would be key-stream reuse.
  std::set<Counter> counters;
  for (const auto& per_thread : wires) {
    for (const Bytes& wire : per_thread) {
      auto msg = ShieldedMessage::parse(as_view(wire));
      ASSERT_TRUE(msg.is_ok());
      EXPECT_TRUE(counters.insert(msg.value().header.cnt).second)
          << "counter reused across threads";
    }
  }
  EXPECT_EQ(counters.size(), kThreads * kPerThread);

  // Verified in counter order (the replay window is narrower than the run):
  // each frame authenticates and is accepted exactly once.
  auto b = make(enclave_b, NodeId{2});
  std::vector<Bytes> all;
  for (auto& per_thread : wires) {
    for (Bytes& wire : per_thread) all.push_back(std::move(wire));
  }
  std::sort(all.begin(), all.end(), [](const Bytes& x, const Bytes& y) {
    return ShieldedMessage::parse(as_view(x)).value().header.cnt <
           ShieldedMessage::parse(as_view(y)).value().header.cnt;
  });
  for (const Bytes& wire : all) {
    ASSERT_TRUE(b.verify(NodeId{1}, as_view(wire)).is_ok());
  }
  EXPECT_EQ(b.rejected_auth(), 0u);
  EXPECT_EQ(b.rejected_replay(), 0u);
}

TEST_F(MtSecurityFixture, ConcurrentShieldVerifyAndBatchPartsAreRaceFree) {
  // Confidentiality ON: the in-place encrypt paths (contiguous and scatter)
  // run concurrently against the shared channel snapshot.
  RecipeSecurityConfig conf;
  conf.confidentiality = true;
  auto a = make(enclave_a, NodeId{1}, conf);
  auto b = make(enclave_b, NodeId{2}, conf);

  std::atomic<std::uint64_t> verified{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        if ((t + i) % 2 == 0) {
          // Contiguous single frame.
          auto wire = a.shield(NodeId{2}, ViewId{1}, as_view("secret"));
          ASSERT_TRUE(wire.is_ok());
          auto env = b.verify(NodeId{1}, as_view(wire.value()));
          ASSERT_TRUE(env.is_ok()) << env.status().to_string();
          EXPECT_EQ(to_string(as_view(env.value().payload)), "secret");
          ++verified;
        } else {
          // Scatter batch: shield where the body lives, reassemble as the
          // transport's gather write would, verify as one frame.
          BatchFrame frame;
          frame.add(BatchItem::kKindRequest, 7, t * kPerThread + i,
                    as_view("sub-message"));
          Bytes body = frame.take_body();
          auto parts = a.shield_batch_parts(NodeId{2}, ViewId{1}, body);
          ASSERT_TRUE(parts.is_ok());
          Bytes wire = std::move(parts.value().head);
          append(wire, as_view(body));
          append(wire, as_view(parts.value().tail));
          auto env = b.verify(NodeId{1}, as_view(wire));
          ASSERT_TRUE(env.is_ok()) << env.status().to_string();
          EXPECT_TRUE(env.value().batch);
          ++verified;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(verified.load(), kThreads * kPerThread);
  EXPECT_EQ(b.rejected_auth(), 0u);
}

}  // namespace
}  // namespace recipe
