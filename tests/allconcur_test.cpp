// Protocol tests for (R-)AllConcur: round-based atomic broadcast, identical
// total order across nodes, multi-coordinator writes, crash handling.
#include <gtest/gtest.h>

#include "cluster_harness.h"
#include "protocols/allconcur/allconcur.h"

namespace recipe::protocols {
namespace {

using testing::Cluster;

TEST(AllConcur, PutGetRoundTrip) {
  Cluster<AllConcurNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  EXPECT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
  auto get = cluster.get(client, NodeId{1}, "k");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(to_string(as_view(get.value)), "v");
}

TEST(AllConcur, WriteVisibleAtAllNodesAfterRound) {
  Cluster<AllConcurNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{2}, "k", "v").ok);
  cluster.run_for(sim::kSecond);
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    EXPECT_TRUE(cluster.node(n).kv().contains("k")) << "node " << n;
  }
}

TEST(AllConcur, ConcurrentWritersConvergeIdentically) {
  // Two coordinators submit conflicting writes in the same round; the
  // deterministic node-id order must produce the SAME winner everywhere.
  Cluster<AllConcurNode> cluster;
  cluster.build();
  auto& c1 = cluster.add_client(2001);
  auto& c2 = cluster.add_client(2002);

  int done = 0;
  c1.put(NodeId{1}, "k", to_bytes("via-node1"),
         [&](const ClientReply&) { ++done; });
  c2.put(NodeId{3}, "k", to_bytes("via-node3"),
         [&](const ClientReply&) { ++done; });
  cluster.run_for(5 * sim::kSecond);
  ASSERT_EQ(done, 2);

  const Bytes v0 = cluster.node(0).kv().get("k").value().value;
  for (std::size_t n = 1; n < cluster.size(); ++n) {
    EXPECT_EQ(cluster.node(n).kv().get("k").value().value, v0) << "node " << n;
  }
}

TEST(AllConcur, TotalOrderAcrossManyRounds) {
  Cluster<AllConcurNode> cluster;
  cluster.build();
  auto& c1 = cluster.add_client(2001);
  auto& c2 = cluster.add_client(2002);
  auto& c3 = cluster.add_client(2003);

  int done = 0;
  for (int i = 0; i < 30; ++i) {
    KvClient& client = (i % 3 == 0) ? c1 : (i % 3 == 1) ? c2 : c3;
    const NodeId coord{static_cast<std::uint64_t>(i % 3) + 1};
    client.put(coord, "k" + std::to_string(i % 5),
               to_bytes("v" + std::to_string(i)),
               [&](const ClientReply&) { ++done; });
  }
  cluster.run_for(10 * sim::kSecond);
  ASSERT_EQ(done, 30);

  // Replica state machines converged byte-for-byte on all keys.
  for (int k = 0; k < 5; ++k) {
    const std::string key = "k" + std::to_string(k);
    const Bytes v0 = cluster.node(0).kv().get(key).value().value;
    for (std::size_t n = 1; n < cluster.size(); ++n) {
      EXPECT_EQ(cluster.node(n).kv().get(key).value().value, v0)
          << "key " << key << " node " << n;
    }
  }
}

TEST(AllConcur, LocalReadsAreSequentiallyConsistent) {
  Cluster<AllConcurNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
  cluster.run_for(sim::kSecond);
  // Any node serves the read locally.
  for (std::uint64_t n = 1; n <= 3; ++n) {
    auto get = cluster.get(client, NodeId{n}, "k");
    EXPECT_TRUE(get.found);
    EXPECT_EQ(to_string(as_view(get.value)), "v");
  }
}

TEST(AllConcur, LinearizableReadModeGoesThroughRounds) {
  AllConcurOptions options;
  options.linearizable_reads = true;
  Cluster<AllConcurNode> cluster;
  cluster.build(options);
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
  auto get = cluster.get(client, NodeId{2}, "k");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(to_string(as_view(get.value)), "v");
  // Reads advanced the round counter (they are ordered like writes).
  EXPECT_GT(cluster.node(1).round(), 2u);
}

TEST(AllConcur, CrashExcludedAfterSuspicion) {
  Cluster<AllConcurNode>::Config config;
  config.heartbeat_period = 20 * sim::kMillisecond;
  Cluster<AllConcurNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "a", "1").ok);

  cluster.crash(2);
  cluster.run_for(2 * sim::kSecond);  // failure detection

  // Rounds proceed without the dead node.
  EXPECT_TRUE(cluster.put(client, NodeId{1}, "b", "2").ok);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{2}, "b").value)), "2");
}

TEST(AllConcur, WriteDuringCrashEventuallyCompletes) {
  Cluster<AllConcurNode>::Config config;
  config.heartbeat_period = 20 * sim::kMillisecond;
  Cluster<AllConcurNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();

  cluster.crash(2);  // crash BEFORE the write; detection is pending
  bool done = false;
  client.put(NodeId{1}, "k", to_bytes("v"),
             [&](const ClientReply& r) { done = r.ok; });
  cluster.run_for(5 * sim::kSecond);
  EXPECT_TRUE(done);  // completes once the failure detector excludes node 3
}

TEST(AllConcur, BatchingManySubmissionsPerRound) {
  Cluster<AllConcurNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    client.put(NodeId{1}, "k" + std::to_string(i), to_bytes("v"),
               [&](const ClientReply& r) {
                 if (r.ok) ++completed;
               });
  }
  cluster.run_for(10 * sim::kSecond);
  EXPECT_EQ(completed, 100);
  // Batching: far fewer rounds than operations.
  EXPECT_LT(cluster.node(0).round(), 60u);
}

TEST(AllConcur, NativeMode) {
  Cluster<AllConcurNode>::Config config;
  config.secured = false;
  Cluster<AllConcurNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
  cluster.run_for(sim::kSecond);
  EXPECT_EQ(to_string(as_view(cluster.get(client, NodeId{2}, "k").value)), "v");
}

TEST(AllConcur, FiveNodeCluster) {
  Cluster<AllConcurNode>::Config config;
  config.num_replicas = 5;
  Cluster<AllConcurNode> cluster(config);
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{4}, "k", "v").ok);
  cluster.run_for(sim::kSecond);
  for (std::size_t n = 0; n < 5; ++n) {
    EXPECT_TRUE(cluster.node(n).kv().contains("k"));
  }
}

}  // namespace
}  // namespace recipe::protocols
