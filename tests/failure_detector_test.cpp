// Phi-accrual failure detector tests: suspicion accrues with silence, scales
// with observed jitter, and layers onto the trusted-lease floor inside
// ReplicaNode (hybrid suspicion with phi_threshold > 0).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cluster_harness.h"
#include "protocols/cr/cr.h"
#include "recipe/failure_detector.h"

namespace recipe {
namespace {

TEST(PhiAccrualDetectorTest, PhiRisesMonotonicallyWithSilence) {
  PhiAccrualDetector detector;
  const NodeId peer{7};
  sim::Time now = 0;
  // A steady 10ms cadence.
  for (int i = 0; i < 32; ++i) {
    detector.heartbeat(peer, now);
    now += 10 * sim::kMillisecond;
  }
  const double at_cadence = detector.phi(peer, now);
  const double at_5x = detector.phi(peer, now + 50 * sim::kMillisecond);
  const double at_20x = detector.phi(peer, now + 200 * sim::kMillisecond);
  EXPECT_LT(at_cadence, 1.0);  // an on-schedule arrival is unsuspicious
  EXPECT_LT(at_cadence, at_5x);
  EXPECT_LT(at_5x, at_20x);
  EXPECT_GT(at_20x, 3.0);  // 200ms of silence on a 10ms cadence: near-dead
}

TEST(PhiAccrualDetectorTest, JitteryPeerNeedsLongerSilence) {
  PhiAccrualDetector detector;
  const NodeId steady{1};
  const NodeId jittery{2};
  sim::Time now_s = 0;
  sim::Time now_j = 0;
  Rng rng(recipe::testing::resolved_seed(7));
  SCOPED_TRACE(recipe::testing::seed_trace_message(
      recipe::testing::resolved_seed(7)));
  for (int i = 0; i < 64; ++i) {
    detector.heartbeat(steady, now_s);
    now_s += 20 * sim::kMillisecond;
    detector.heartbeat(jittery, now_j);
    // Same mean (20ms) but wild spread: 1..39ms.
    now_j += rng.range(1 * sim::kMillisecond, 39 * sim::kMillisecond);
  }
  // After the same absolute silence, the steady peer accrues far more
  // suspicion than the jittery one.
  const sim::Time silence = 80 * sim::kMillisecond;
  EXPECT_GT(detector.phi(steady, now_s + silence),
            detector.phi(jittery, now_j + silence));
}

TEST(PhiAccrualDetectorTest, UnknownPeerIsInfinitelySuspicious) {
  PhiAccrualDetector detector;
  EXPECT_TRUE(std::isinf(detector.phi(NodeId{42}, 1000)));
  // forget() returns a known peer to the unknown state.
  detector.heartbeat(NodeId{42}, 0);
  EXPECT_FALSE(std::isinf(detector.phi(NodeId{42}, sim::kMillisecond)));
  detector.forget(NodeId{42});
  EXPECT_TRUE(std::isinf(detector.phi(NodeId{42}, sim::kMillisecond)));
}

TEST(PhiAccrualDetectorTest, VarianceFloorTamesMetronomicCadence) {
  // Perfectly regular heartbeats: without the stddev floor, +1ms of silence
  // would be an infinite-sigma event and phi would explode instantly.
  PhiDetectorOptions options;
  options.min_stddev = 10 * sim::kMillisecond;
  PhiAccrualDetector detector(options);
  const NodeId peer{3};
  sim::Time now = 0;
  for (int i = 0; i < 64; ++i) {
    detector.heartbeat(peer, now);
    now += 10 * sim::kMillisecond;
  }
  EXPECT_LT(detector.phi(peer, now + 11 * sim::kMillisecond), 1.0);
}

TEST(PhiAccrualDetectorTest, WindowForgetsAncientHistory) {
  PhiDetectorOptions options;
  options.window = 8;
  PhiAccrualDetector detector(options);
  const NodeId peer{4};
  sim::Time now = 0;
  // Old regime: slow 100ms cadence.
  for (int i = 0; i < 32; ++i) {
    detector.heartbeat(peer, now);
    now += 100 * sim::kMillisecond;
  }
  // New regime: fast 5ms cadence for more than a full window.
  for (int i = 0; i < 16; ++i) {
    detector.heartbeat(peer, now);
    now += 5 * sim::kMillisecond;
  }
  // The window holds only fast intervals now; 100ms of silence (20x the
  // current cadence) must read as highly suspicious even though it was
  // normal under the old regime.
  EXPECT_GT(detector.phi(peer, now + 100 * sim::kMillisecond), 2.0);
}

// Hybrid suspicion inside ReplicaNode: with a reachable phi threshold a
// crashed peer is still detected (the adaptive layer does not mask real
// failures); with an unreachably high threshold the lease may expire but
// the node keeps trusting the peer — phi gates the verdict.
TEST(PhiAccrualDetectorTest, HybridSuspicionDetectsRealCrash) {
  using recipe::testing::Cluster;
  Cluster<protocols::ChainNode>::Config config;
  config.heartbeat_period = 20 * sim::kMillisecond;
  config.phi_threshold = 8.0;
  Cluster<protocols::ChainNode> cluster(config);
  cluster.build();
  cluster.run_for(1 * sim::kSecond);  // accumulate heartbeat history

  const NodeId victim = cluster.membership()[2];
  EXPECT_FALSE(cluster.node(0).suspected(victim));
  cluster.crash(2);
  cluster.run_for(2 * sim::kSecond);
  EXPECT_TRUE(cluster.node(0).suspected(victim));
  EXPECT_GE(cluster.node(0).suspicion_phi(victim), 8.0);
}

TEST(PhiAccrualDetectorTest, UnreachablePhiThresholdGatesLeaseSuspicion) {
  using recipe::testing::Cluster;
  Cluster<protocols::ChainNode>::Config config;
  config.heartbeat_period = 20 * sim::kMillisecond;
  config.phi_threshold = 1e9;  // phi is capped at 30: can never trip
  Cluster<protocols::ChainNode> cluster(config);
  cluster.build();
  cluster.run_for(1 * sim::kSecond);

  const NodeId victim = cluster.membership()[2];
  cluster.crash(2);
  cluster.run_for(2 * sim::kSecond);
  // The lease surely expired long ago, but the phi gate holds the verdict.
  EXPECT_FALSE(cluster.node(0).suspected(victim));
}

}  // namespace
}  // namespace recipe
