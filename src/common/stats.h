// Latency histogram and throughput accounting for benchmarks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace recipe {

// Log-bucketed latency histogram (nanosecond resolution, ~2% bucket error).
class Histogram {
 public:
  // 64 exponent groups x 16 linear sub-buckets. Public so lock-free shadow
  // copies (obs::MetricsRegistry's per-thread cells) can mirror the layout.
  static constexpr std::size_t kNumBuckets = 64 * 16;

  Histogram();

  void record(std::uint64_t value);
  void merge(const Histogram& other);
  // Folds in a raw bucket snapshot (same kNumBuckets layout) plus its
  // count/sum/min/max tallies; `min` is ignored when `count` is zero.
  void merge_raw(const std::uint64_t* buckets, std::uint64_t count,
                 std::uint64_t sum, std::uint64_t min, std::uint64_t max);
  void reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  std::uint64_t sum() const { return sum_; }
  double mean() const;
  // q in [0, 1]; e.g. 0.5 for the median, 0.99 for p99. q <= 0 returns the
  // exact minimum, q >= 1 the exact maximum, and an empty histogram 0.
  std::uint64_t percentile(double q) const;

  std::string summary(const std::string& unit = "us") const;

  static std::size_t bucket_for(std::uint64_t value);

 private:
  static std::uint64_t bucket_midpoint(std::size_t bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t min_{~0ULL};
  std::uint64_t max_{0};
};

// Windowed operations/second accounting.
struct ThroughputMeter {
  std::uint64_t ops = 0;

  void add(std::uint64_t n = 1) { ops += n; }
  double ops_per_sec(double elapsed_seconds) const {
    return elapsed_seconds > 0 ? static_cast<double>(ops) / elapsed_seconds : 0;
  }
};

}  // namespace recipe
