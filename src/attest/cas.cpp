#include "attest/cas.h"

#include <memory>

#include "common/serde.h"
#include "recipe/message.h"

namespace recipe::attest {

Bytes encode_quote(const tee::Quote& quote) {
  Writer w;
  w.raw(BytesView(quote.report.measurement.data(),
                  quote.report.measurement.size()));
  w.u64(quote.report.platform_id);
  w.u64(quote.report.enclave_id);
  w.bytes(as_view(quote.report.report_data));
  w.raw(BytesView(quote.mac.data(), quote.mac.size()));
  return std::move(w).take();
}

Result<tee::Quote> decode_quote(BytesView data) {
  Reader r(data);
  tee::Quote quote;
  auto measurement = r.raw(quote.report.measurement.size());
  auto platform = r.u64();
  auto enclave = r.u64();
  auto report_data = r.bytes();
  auto mac = r.raw(quote.mac.size());
  if (!measurement || !platform || !enclave || !report_data || !mac) {
    return Status::error(ErrorCode::kInvalidArgument, "truncated quote");
  }
  std::copy(measurement->begin(), measurement->end(),
            quote.report.measurement.begin());
  quote.report.platform_id = *platform;
  quote.report.enclave_id = *enclave;
  quote.report.report_data = std::move(*report_data);
  std::copy(mac->begin(), mac->end(), quote.mac.begin());
  return quote;
}

crypto::SymmetricKey derive_channel_key_from_root(
    const crypto::SymmetricKey& root, NodeId a, NodeId b) {
  const std::uint64_t lo = std::min(a.value, b.value);
  const std::uint64_t hi = std::max(a.value, b.value);
  Writer info;
  info.str("recipe-channel-key");
  info.u64(lo);
  info.u64(hi);
  return crypto::SymmetricKey{crypto::hkdf_sha256(
      root.view(), BytesView{}, as_view(info.buffer()),
      crypto::kSymmetricKeySize)};
}

Result<crypto::SymmetricKey> enclave_channel_key(const tee::Enclave& enclave,
                                                 NodeId self, NodeId peer) {
  if (enclave.has_secret(kClusterRootName)) {
    auto root = enclave.secret(kClusterRootName);
    if (!root) return root.status();
    return derive_channel_key_from_root(root.value(), self, peer);
  }
  return enclave.secret(channel_secret_name(self, peer));
}

AttestationAuthority::AttestationAuthority(sim::Clock& clock,
                                           net::Transport& network,
                                           NodeId self,
                                           net::NetStackParams stack,
                                           AuthorityParams params)
    : clock_(clock),
      rpc_(clock, network, self, stack),
      params_(params),
      rng_(params.key_seed) {
  // Root-of-trust key material for this deployment.
  Writer seed;
  seed.u64(params.key_seed);
  seed.str("authority-root");
  const Bytes salt = to_bytes("recipe-cas-v1");
  cluster_root_ = crypto::SymmetricKey{crypto::hkdf_sha256(
      as_view(seed.buffer()), as_view(salt), BytesView{},
      crypto::kSymmetricKeySize)};
  Writer vseed;
  vseed.u64(params.key_seed);
  vseed.str("value-key");
  value_key_ = crypto::SymmetricKey{crypto::hkdf_sha256(
      as_view(vseed.buffer()), as_view(salt), BytesView{},
      crypto::kSymmetricKeySize)};
}

void AttestationAuthority::upload_plan(ClusterPlan plan,
                                       const tee::Measurement& measurement) {
  plan_ = std::move(plan);
  allow_measurement(measurement);
}

void AttestationAuthority::allow_measurement(
    const tee::Measurement& measurement) {
  allowed_measurements_.insert(
      to_hex(BytesView(measurement.data(), measurement.size())));
}

crypto::SymmetricKey AttestationAuthority::derive_channel_key(NodeId a,
                                                              NodeId b) const {
  return derive_channel_key_from_root(cluster_root_, a, b);
}

void AttestationAuthority::attest_and_provision(NodeId target,
                                                NodeId as_principal,
                                                bool full_member, Done done) {
  if (!plan_) {
    done(Status::error(ErrorCode::kInternal, "no cluster plan uploaded"),
         0);
    return;
  }
  const sim::Time started = clock_.now();
  ++attestations_served_;

  // Fresh nonce + ephemeral DH keypair per attestation session.
  const std::uint64_t nonce_value = rng_.next();
  const crypto::DhKeyPair dh = crypto::DiffieHellman::generate(rng_);

  Writer challenge;
  challenge.u64(nonce_value);
  challenge.u64(dh.public_value);

  auto shared = std::make_shared<Done>(std::move(done));
  rpc_.send(
      target, msg::kAttestChallenge, std::move(challenge).take(),
      [this, target, as_principal, full_member, started, nonce_value, dh,
       shared](NodeId /*src*/, Bytes quote_bytes) {
        auto quote = decode_quote(as_view(quote_bytes));
        if (!quote) {
          (*shared)(quote.status(), clock_.now() - started);
          return;
        }

        // 1. Hardware authenticity: quote MAC under the platform root key.
        const Bytes quoted = quote.value().report.serialize();
        if (!verifier_.verify(quote.value().report.platform_id, as_view(quoted),
                              BytesView(quote.value().mac.data(),
                                        quote.value().mac.size()))) {
          (*shared)(Status::error(ErrorCode::kAuthFailed, "bad quote MAC"),
                    clock_.now() - started);
          return;
        }
        // 2. Code identity: measurement allowlist.
        const auto& m = quote.value().report.measurement;
        if (!allowed_measurements_.contains(to_hex(BytesView(m.data(),
                                                             m.size())))) {
          (*shared)(Status::error(ErrorCode::kAuthFailed,
                                  "measurement not in allowlist"),
                    clock_.now() - started);
          return;
        }
        // 3. Freshness + DH binding: report_data = [nonce, enclave_dh_pub].
        Reader rd(as_view(quote.value().report.report_data));
        auto nonce_echo = rd.bytes();
        auto enclave_pub = rd.u64();
        if (!nonce_echo || !enclave_pub) {
          (*shared)(Status::error(ErrorCode::kInvalidArgument,
                                  "malformed report_data"),
                    clock_.now() - started);
          return;
        }
        Writer expected_nonce;
        expected_nonce.u64(nonce_value);
        if (as_view(*nonce_echo).size() != expected_nonce.buffer().size() ||
            !std::equal(nonce_echo->begin(), nonce_echo->end(),
                        expected_nonce.buffer().begin())) {
          (*shared)(Status::error(ErrorCode::kAuthFailed, "stale nonce"),
                    clock_.now() - started);
          return;
        }

        // Build the secrets bundle for this principal.
        SecretsBundle bundle;
        bundle.assigned_id = as_principal;
        bundle.membership = plan_->replicas;
        bundle.confidentiality = plan_->confidentiality;
        if (plan_->confidentiality) bundle.value_key = value_key_;
        if (full_member) {
          bundle.root_key = cluster_root_;
        } else {
          for (NodeId peer : plan_->replicas) {
            bundle.channel_keys.emplace_back(
                peer, derive_channel_key(as_principal, peer));
          }
          // The CAS<->client channel key, so the client can authenticate
          // fresh-node notices. Attested clients join the notice audience.
          bundle.channel_keys.emplace_back(
              rpc_.self(), derive_channel_key(as_principal, rpc_.self()));
          principals_.insert(as_principal);
        }

        const crypto::SymmetricKey session_key =
            crypto::DiffieHellman::shared_key(dh.private_exponent, *enclave_pub,
                                              as_view("recipe-provision"));
        const Bytes sealed = seal_bundle(bundle, session_key, nonce_counter_++);

        Writer grant;
        grant.u64(dh.public_value);
        grant.bytes(as_view(sealed));

        // Charge the authority's service time (quote verification, TLS,
        // report processing) before the grant leaves.
        clock_.schedule(
            params_.service_time,
            [this, target, full_member, started, shared,
             payload = std::move(grant).take()]() mutable {
              rpc_.send(target, msg::kSecretsGrant, std::move(payload),
                        [this, target, full_member, started, shared](
                            NodeId, Bytes ack) {
                          Reader r(as_view(ack));
                          const auto ok = r.boolean();
                          const sim::Time elapsed = clock_.now() - started;
                          if (ok && *ok) {
                            // Tell the cluster this principal (re)joined as
                            // a fresh replica (paper §3.7 step 3).
                            if (full_member) announce_fresh_node(target);
                            (*shared)(Status::ok(), elapsed);
                          } else {
                            (*shared)(Status::error(ErrorCode::kAuthFailed,
                                                    "provisioning rejected"),
                                      elapsed);
                          }
                        });
            });
      });
}

void AttestationAuthority::announce_fresh_node(NodeId fresh) {
  if (!plan_) return;
  std::vector<NodeId> audience(plan_->replicas);
  audience.insert(audience.end(), principals_.begin(), principals_.end());
  for (NodeId target : audience) {
    if (target == fresh) continue;
    // Shield the notice on the CAS<->target channel: the CAS holds the
    // cluster root, so replicas (and provisioned clients) verify it like
    // any peer message.
    ShieldedHeader header;
    header.view = ViewId{0};
    header.cq = directed_channel(rpc_.self(), target);
    header.cnt = ++announce_counters_[header.cq];
    header.sender = rpc_.self();
    header.receiver = target;
    Writer payload;
    payload.id(fresh);

    auto hmac_it = announce_hmacs_.find(target);
    if (hmac_it == announce_hmacs_.end()) {
      hmac_it = announce_hmacs_
                    .emplace(target, crypto::Hmac(derive_channel_key(
                                         rpc_.self(), target).view()))
                    .first;
    }
    Bytes wire = encode_shielded_frame(header, as_view(payload.buffer()),
                                       crypto::kMacSize);
    write_frame_mac(wire, hmac_it->second);
    rpc_.send(target, msg::kFreshNode, std::move(wire));
  }
}

AttestationClient::AttestationClient(rpc::RpcObject& rpc, tee::Enclave& enclave,
                                     Provisioned on_provisioned)
    : rpc_(rpc), enclave_(enclave), on_provisioned_(std::move(on_provisioned)) {
  rpc_.register_handler(msg::kAttestChallenge,
                        [this](rpc::RequestContext& ctx) {
    Reader r(as_view(ctx.payload));
    const auto nonce_value = r.u64();
    const auto authority_pub = r.u64();
    if (!nonce_value || !authority_pub) return;  // malformed: drop
    Writer nonce;
    nonce.u64(*nonce_value);
    auto report = enclave_.attest(as_view(nonce.buffer()));
    if (!report) return;  // crashed enclave: no answer
    auto quote = enclave_.generate_quote(report.value());
    if (!quote) return;
    ctx.respond(encode_quote(quote.value()));
  });

  rpc_.register_handler(msg::kSecretsGrant, [this](rpc::RequestContext& ctx) {
    Reader r(as_view(ctx.payload));
    const auto authority_pub = r.u64();
    auto sealed = r.bytes();
    Writer ack;
    if (!authority_pub || !sealed) {
      ack.boolean(false);
      ctx.respond(std::move(ack).take());
      return;
    }
    auto info = open_and_install_bundle(enclave_, *authority_pub,
                                        as_view(*sealed),
                                        as_view("recipe-provision"));
    if (!info) {
      ack.boolean(false);
      ctx.respond(std::move(ack).take());
      return;
    }
    provisioned_ = true;
    info_ = info.value();
    ack.boolean(true);
    ctx.respond(std::move(ack).take());
    if (on_provisioned_) on_provisioned_(info_);
  });
}

}  // namespace recipe::attest
