// Robustness / hostile-input tests: every parser in the system is fed
// garbage and truncations (a Byzantine network can deliver arbitrary bytes);
// nothing may crash, over-read, or accept malformed input. Plus boundary
// cases for the stores and protocols (empty values, large keys, etc.).
#include <gtest/gtest.h>

#include "attest/bundle.h"
#include "attest/cas.h"
#include "cluster_harness.h"
#include "protocols/abd/abd.h"
#include "recipe/message.h"
#include "recipe/types.h"

namespace recipe {
namespace {

using testing::Cluster;

// --- Parser fuzzing
// -------------------------------------------------------------

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashParsers) {
  Rng rng(GetParam());
  for (int round = 0; round < 2000; ++round) {
    Bytes junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    // All Result-returning parsers must fail gracefully or produce a value,
    // never crash / UB (ASAN-clean under fuzz input).
    (void)ShieldedMessage::parse(as_view(junk));
    (void)ClientRequest::parse(as_view(junk));
    (void)ClientReply::parse(as_view(junk));
    (void)attest::SecretsBundle::parse(as_view(junk));
    (void)attest::decode_quote(as_view(junk));
  }
}

TEST_P(ParserFuzz, TruncationsOfValidMessagesAllRejected) {
  Rng rng(GetParam());
  ShieldedMessage msg;
  msg.header.view = ViewId{3};
  msg.header.cq = ChannelId{9};
  msg.header.cnt = 77;
  msg.header.sender = NodeId{1};
  msg.header.receiver = NodeId{2};
  msg.payload = to_bytes("some payload bytes");
  msg.mac = Bytes(32, 0x5A);
  const Bytes wire = msg.serialize();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(ShieldedMessage::parse(BytesView(wire.data(), cut)).is_ok())
        << "cut=" << cut;
  }

  ClientRequest request;
  request.client = ClientId{1};
  request.rid = RequestId{2};
  request.op = OpType::kPut;
  request.key = "key";
  request.value = to_bytes("value");
  const Bytes req_wire = request.serialize();
  for (std::size_t cut = 0; cut < req_wire.size(); ++cut) {
    EXPECT_FALSE(ClientRequest::parse(BytesView(req_wire.data(), cut)).is_ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 7, 99));

TEST(ParserFuzz, GarbageToEveryRpcHandlerIsHarmless) {
  // Spray random bytes at every registered handler type of a live replica.
  Cluster<protocols::AbdNode> cluster;
  cluster.build();
  Rng rng(5);
  const rpc::RequestType types[] = {
      msg::kClientRequest,        msg::kHeartbeat,
      msg::kStateFetch,           attest::msg::kFreshNode,
      protocols::abd_msg::kGetTs, protocols::abd_msg::kPut,
      protocols::abd_msg::kGet,
  };
  rpc::RpcObject attacker(cluster.sim(), cluster.network(), NodeId{666},
                          net::NetStackParams::direct_io_native());
  for (int i = 0; i < 300; ++i) {
    Bytes junk(rng.below(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    attacker.send(NodeId{1 + rng.below(3)},
                  types[rng.below(std::size(types))], std::move(junk));
  }
  cluster.run_for(sim::kSecond);
  // The cluster still works.
  auto& client = cluster.add_client();
  EXPECT_TRUE(cluster.put(client, NodeId{1}, "k", "v").ok);
}

// --- Boundary cases
// ------------------------------------------------------------

TEST(Boundaries, EmptyValueRoundTrips) {
  Cluster<protocols::AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "empty", "").ok);
  const auto get = cluster.get(client, NodeId{2}, "empty");
  EXPECT_TRUE(get.found);
  EXPECT_TRUE(get.value.empty());
}

TEST(Boundaries, LargeValueRoundTrips) {
  Cluster<protocols::AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  const std::string big(64 * 1024, 'x');
  ASSERT_TRUE(cluster.put(client, NodeId{1}, "big", big).ok);
  const auto get = cluster.get(client, NodeId{2}, "big");
  EXPECT_EQ(to_string(as_view(get.value)), big);
}

TEST(Boundaries, LongKeysAndBinaryKeysWork) {
  kv::KvStore store;
  const std::string long_key(1024, 'k');
  EXPECT_TRUE(store.write(long_key, as_view("v")));
  EXPECT_TRUE(store.get(long_key).is_ok());
  const std::string binary_key("\x00\x01\xff\x7f", 4);
  EXPECT_TRUE(store.write(binary_key, as_view("b")));
  EXPECT_EQ(to_string(as_view(store.get(binary_key).value().value)), "b");
}

TEST(Boundaries, EmptyPayloadShieldVerify) {
  tee::TeePlatform platform(1);
  tee::Enclave a(platform, "code", 1), b(platform, "code", 2);
  const crypto::SymmetricKey root{Bytes(32, 0x12)};
  ASSERT_TRUE(a.install_secret(attest::kClusterRootName, root).is_ok());
  ASSERT_TRUE(b.install_secret(attest::kClusterRootName, root).is_ok());
  RecipeSecurity sa(a, NodeId{1}, nullptr, nullptr, {});
  RecipeSecurity sb(b, NodeId{2}, nullptr, nullptr, {});
  auto wire = sa.shield(NodeId{2}, ViewId{0}, BytesView{});
  ASSERT_TRUE(wire.is_ok());
  auto env = sb.verify(NodeId{1}, as_view(wire.value()));
  ASSERT_TRUE(env.is_ok());
  EXPECT_TRUE(env.value().payload.empty());
}

TEST(Boundaries, CounterWindowSurvivesBurstOfTraffic) {
  tee::TeePlatform platform(1);
  tee::Enclave a(platform, "code", 1), b(platform, "code", 2);
  const crypto::SymmetricKey root{Bytes(32, 0x12)};
  ASSERT_TRUE(a.install_secret(attest::kClusterRootName, root).is_ok());
  ASSERT_TRUE(b.install_secret(attest::kClusterRootName, root).is_ok());
  RecipeSecurity sa(a, NodeId{1}, nullptr, nullptr, {});
  RecipeSecurityConfig config;
  config.replay_window = 64;
  RecipeSecurity sb(b, NodeId{2}, nullptr, nullptr, config);
  // 10k messages through a 64-wide window: all accepted in order, no leaks.
  for (int i = 0; i < 10000; ++i) {
    auto wire = sa.shield(NodeId{2}, ViewId{0}, as_view("m"));
    ASSERT_TRUE(sb.verify(NodeId{1}, as_view(wire.value())).is_ok()) << i;
  }
  // A message far below the window is rejected even if never seen.
  auto old = sa.shield(NodeId{2}, ViewId{0}, as_view("m"));
  for (int i = 0; i < 200; ++i) {
    (void)sb.verify(NodeId{1},
                    as_view(sa.shield(NodeId{2}, ViewId{0},
                                      as_view("m")).value()));
  }
  EXPECT_EQ(sb.verify(NodeId{1}, as_view(old.value())).code(),
            ErrorCode::kReplay);
}

TEST(Boundaries, StrictFutureBufferIsBounded) {
  tee::TeePlatform platform(1);
  tee::Enclave a(platform, "code", 1), b(platform, "code", 2);
  const crypto::SymmetricKey root{Bytes(32, 0x12)};
  ASSERT_TRUE(a.install_secret(attest::kClusterRootName, root).is_ok());
  ASSERT_TRUE(b.install_secret(attest::kClusterRootName, root).is_ok());
  RecipeSecurity sa(a, NodeId{1}, nullptr, nullptr, {});
  RecipeSecurityConfig config;
  config.order = OrderPolicy::kStrict;
  config.max_future_buffer = 8;
  RecipeSecurity sb(b, NodeId{2}, nullptr, nullptr, config);

  // Generate 20 messages; withhold #1 so all others are futures.
  std::vector<Bytes> wires;
  for (int i = 0; i < 20; ++i) {
    wires.push_back(sa.shield(NodeId{2}, ViewId{0}, as_view("m")).value());
  }
  for (int i = 1; i < 20; ++i) {
    (void)sb.verify(NodeId{1}, as_view(wires[static_cast<std::size_t>(i)]));
  }
  // A Byzantine flood cannot exhaust memory: at most 8 futures buffered.
  EXPECT_LE(sb.buffered_future(), 8u);
}

TEST(Boundaries, ClientRetryAfterCoordinatorCrashFails) {
  Cluster<protocols::AbdNode> cluster;
  cluster.build();
  auto& client = cluster.add_client();
  cluster.crash(0);
  const auto reply = cluster.put(client, NodeId{1}, "k", "v");
  EXPECT_FALSE(reply.ok);  // retries exhausted, clean failure
}

}  // namespace
}  // namespace recipe
