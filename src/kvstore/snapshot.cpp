#include "kvstore/snapshot.h"

#include "common/serde.h"
#include "crypto/chacha20.h"

namespace recipe::kv {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x52534E50;  // "RSNP"
constexpr std::uint32_t kSnapshotNonceTag = 0x534E4150;  // "SNAP"

}  // namespace

Result<SnapshotManifest> peek_snapshot_manifest(BytesView sealed) {
  Reader r(sealed);
  const auto magic = r.u32();
  const auto version = r.u64();
  const auto entries = r.u32();
  if (!magic || *magic != kSnapshotMagic || !version || !entries) {
    return Status::error(ErrorCode::kInvalidArgument, "not a sealed snapshot");
  }
  SnapshotManifest m;
  m.version = *version;
  m.entries = *entries;
  return m;
}

Bytes seal_snapshot(const KvStore& kv, const crypto::SymmetricKey& sealing_key,
                    std::uint64_t version) {
  // Entry stream: [key str][value bytes][ts.counter u64][ts.node u64]*.
  // Values are re-read through the integrity-checking path, so a host that
  // corrupted the arena can never launder bad bytes into a sealed snapshot.
  Writer entries;
  std::uint32_t count = 0;
  kv.scan([&](std::string_view key, const Timestamp&) {
    auto value = kv.get(key);
    if (value.is_ok()) {
      entries.str(key);
      entries.bytes(as_view(value.value().value));
      entries.u64(value.value().timestamp.counter);
      entries.u64(value.value().timestamp.node);
      ++count;
    }
    return true;
  });

  Bytes body = std::move(entries).take();
  // Nonce bound to the snapshot version: each sealed version uses a distinct
  // stream under the long-lived sealing key.
  const auto nonce = crypto::make_nonce(kSnapshotNonceTag, version);
  crypto::chacha20_xor(sealing_key.view(), nonce, 0, body);

  Writer blob(body.size() + 64);
  blob.u32(kSnapshotMagic);
  blob.u64(version);
  blob.u32(count);
  blob.bytes(as_view(body));
  const crypto::Mac mac =
      crypto::hmac_sha256(sealing_key.view(), as_view(blob.buffer()));
  blob.raw(BytesView(mac.data(), mac.size()));
  return std::move(blob).take();
}

Result<SnapshotRestore> unseal_snapshot(BytesView sealed,
                                        const crypto::SymmetricKey& sealing_key,
                                        std::uint64_t expected_version,
                                        KvStore& kv) {
  Reader r(sealed);
  const auto magic = r.u32();
  const auto version = r.u64();
  const auto count = r.u32();
  auto body = r.bytes();
  const auto mac = r.raw(crypto::kMacSize);
  if (!magic || *magic != kSnapshotMagic || !version || !count || !body ||
      !mac || r.remaining() != 0) {
    return Status::error(ErrorCode::kAuthFailed, "malformed sealed snapshot");
  }

  // Authenticate BEFORE acting on anything, version included: a forged
  // version must not even produce a distinguishable rollback error.
  const BytesView macd(sealed.data(), sealed.size() - crypto::kMacSize);
  if (!crypto::hmac_verify(sealing_key.view(), macd, as_view(*mac))) {
    return Status::error(ErrorCode::kAuthFailed, "snapshot MAC mismatch");
  }

  // Rollback check: only the version matching the hardware counter is live.
  if (*version != expected_version) {
    return Status::error(ErrorCode::kRollback,
                         "sealed snapshot version " + std::to_string(*version) +
                             " != hardware counter " +
                             std::to_string(expected_version));
  }

  const auto nonce = crypto::make_nonce(kSnapshotNonceTag, *version);
  crypto::chacha20_xor(sealing_key.view(), nonce, 0, *body);

  Reader er(as_view(*body));
  SnapshotRestore out;
  out.version = *version;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto key = er.str();
    auto value = er.bytes();
    auto ts_counter = er.u64();
    auto ts_node = er.u64();
    if (!key || !value || !ts_counter || !ts_node) {
      return Status::error(ErrorCode::kAuthFailed, "truncated snapshot body");
    }
    const Timestamp ts{*ts_counter, *ts_node};
    if (!kv.would_advance(*key, ts)) continue;
    if (kv.write(*key, as_view(*value), ts)) ++out.installed;
  }
  return out;
}

}  // namespace recipe::kv
