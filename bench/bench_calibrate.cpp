// Calibration helper: one run per system at the reference point
// (256B values, 90% reads) with wall-clock timing. Not a paper figure; used
// to sanity-check absolute throughput magnitudes and simulator speed.
#include <chrono>
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace recipe::bench;
  using Clock = std::chrono::steady_clock;

  ExperimentParams params;
  params.value_size = 256;
  params.read_fraction = 0.9;

  struct Entry {
    const char* name;
    RunResult (*fn)(const ExperimentParams&);
  };
  const Entry systems[] = {
      {"R-CR", run_cr},       {"R-ABD", run_abd},
      {"R-Raft", run_raft},   {"R-AllConcur", run_allconcur},
      {"PBFT", run_pbft},     {"Damysus", run_damysus},
  };

  std::printf("Calibration @256B, 90%%R (paper targets: PBFT ~55k, Damysus "
              "~152k, R-ABD ~0.7M, R-AllConcur ~0.5M, R-Raft ~0.9M, R-CR "
              "~1.3M)\n");
  for (const Entry& entry : systems) {
    const auto t0 = Clock::now();
    const RunResult result = entry.fn(params);
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    std::printf("%-14s %12.0f ops/s   p50=%5llu us  completed=%8llu  "
                "failed=%llu  [wall %.1fs]\n",
                entry.name, result.ops_per_sec,
                static_cast<unsigned long long>(
                    result.latency_us.percentile(0.5)),
                static_cast<unsigned long long>(result.completed),
                static_cast<unsigned long long>(result.failed), wall);
    std::fflush(stdout);
  }
  return 0;
}
