#include "tee/platform.h"

#include <unordered_map>

#include "common/serde.h"

namespace recipe::tee {

TeePlatform::TeePlatform(std::uint64_t platform_seed)
    : platform_id_(platform_seed) {
  Writer w;
  w.u64(platform_seed);
  w.str("recipe-platform-root-key");
  const Bytes salt = to_bytes("recipe-tee-platform-v1");
  root_key_ = crypto::SymmetricKey{crypto::hkdf_sha256(
      as_view(w.buffer()), as_view(salt), BytesView{},
      crypto::kSymmetricKeySize)};
}

std::uint64_t TeePlatform::rollback_counter(std::uint64_t enclave_id) const {
  const auto it = rollback_counters_.find(enclave_id);
  return it == rollback_counters_.end() ? 0 : it->second;
}

std::uint64_t TeePlatform::advance_rollback_counter(
    std::uint64_t enclave_id) const {
  return ++rollback_counters_[enclave_id];
}

Bytes TeePlatform::enclave_seed(std::uint64_t enclave_id) const {
  Writer w;
  w.u64(platform_id_);
  w.u64(enclave_id);
  w.str("enclave-seed");
  return crypto::hkdf_sha256(root_key_.view(), BytesView{}, as_view(w.buffer()),
                             crypto::kSymmetricKeySize);
}

void QuoteVerifier::register_platform(const TeePlatform& platform) {
  keys_.emplace(platform.platform_id(), platform.hardware_root_key());
}

bool QuoteVerifier::verify(std::uint64_t platform_id, BytesView quoted_data,
                           BytesView quote_mac) const {
  const auto it = keys_.find(platform_id);
  if (it == keys_.end()) return false;
  return crypto::hmac_verify(it->second.view(), quoted_data, quote_mac);
}

}  // namespace recipe::tee
