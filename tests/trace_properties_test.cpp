// Machine-checked analogues of the paper's Tamarin lemmas (§4.3).
//
// The paper verifies three temporal properties of an abstract Recipe setup
// under a Dolev-Yao attacker with perfect cryptography:
//   (1) safety/integrity: every message ACCEPTED by a trusted process was
//       previously SENT by a trusted process;
//   (2) order: messages are accepted in the order they were sent (per
//       channel; exact Algorithm-1 / strict mode);
//   (3) freshness: no message is ever accepted twice.
//
// SUBSTITUTION (DESIGN.md §2): we cannot ship Tamarin runs, so the same
// properties are checked here on randomized execution traces: honest
// enclaves shield messages, a Dolev-Yao adversary delivers / reorders /
// duplicates / tampers / splices / forges, and every accept is validated
// against the send log. Each seed is an independent randomized exploration.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "attest/bundle.h"
#include "crypto/sha256.h"
#include "recipe/message.h"
#include "recipe/security.h"
#include "tee/enclave.h"
#include "tee/platform.h"

namespace recipe {
namespace {

struct SendEvent {
  NodeId sender;
  NodeId receiver;
  Counter cnt;
  crypto::Sha256Digest payload_digest;
  std::uint64_t time;  // logical step
};

struct AcceptEvent {
  NodeId acceptor;
  NodeId claimed_sender;
  Counter cnt;
  crypto::Sha256Digest payload_digest;
  std::uint64_t time;
};

class DolevYaoHarness {
 public:
  DolevYaoHarness(std::uint64_t seed, OrderPolicy order, std::size_t n_nodes)
      : rng_(seed) {
    for (std::size_t i = 0; i < n_nodes; ++i) {
      const NodeId id{i + 1};
      nodes_.push_back(id);
      enclaves_.push_back(
          std::make_unique<tee::Enclave>(platform_, "code", id.value));
      EXPECT_TRUE(
          enclaves_.back()->install_secret(attest::kClusterRootName,
                                           root_).is_ok());
      RecipeSecurityConfig config;
      config.order = order;
      policies_.push_back(std::make_unique<RecipeSecurity>(
          *enclaves_.back(), id, nullptr, nullptr, config));
    }
  }

  void run(std::size_t steps) {
    for (std::size_t step = 0; step < steps; ++step) {
      const int action = static_cast<int>(rng_.below(100));
      if (action < 45 || wire_.empty()) {
        honest_send();
      } else if (action < 70) {
        deliver(rng_.below(wire_.size()));
      } else if (action < 78) {  // duplicate delivery (replay)
        const std::size_t i = rng_.below(wire_.size());
        deliver(i);
        deliver_copy(i);
      } else if (action < 86) {  // tamper: flip a byte somewhere
        Captured msg = wire_[rng_.below(wire_.size())];
        if (!msg.wire.empty()) {
          msg.wire[rng_.below(msg.wire.size())] ^=
              1 + static_cast<std::uint8_t>(rng_.below(255));
          inject(msg);
        }
      } else if (action < 93) {  // splice: old payload, bumped counter
        Captured msg = wire_[rng_.below(wire_.size())];
        auto parsed = ShieldedMessage::parse(as_view(msg.wire));
        if (parsed.is_ok()) {
          parsed.value().header.cnt += 1 + rng_.below(5);
          msg.wire = parsed.value().serialize();
          inject(msg);
        }
      } else {  // forge from whole cloth
        ShieldedMessage forged;
        const NodeId src = nodes_[rng_.below(nodes_.size())];
        const NodeId dst = nodes_[rng_.below(nodes_.size())];
        forged.header.sender = src;
        forged.header.receiver = dst;
        forged.header.cq = directed_channel(src, dst);
        forged.header.cnt = rng_.below(50);
        forged.payload = to_bytes("attacker-payload");
        forged.mac = Bytes(32, static_cast<std::uint8_t>(rng_.next()));
        inject(Captured{src, dst, forged.serialize(), {}});
      }
    }
    // Drain the wire so every sent message gets a delivery attempt.
    while (!wire_.empty()) deliver(0);
  }

  // --- Property checks -----------------------------------------------------

  // (1) Every accept corresponds to an earlier send by a trusted process
  //     with identical (sender, receiver->acceptor, cnt, payload).
  void check_accepts_have_sends() const {
    for (const AcceptEvent& acc : accepts_) {
      bool matched = false;
      for (const SendEvent& snd : sends_) {
        if (snd.sender == acc.claimed_sender && snd.receiver == acc.acceptor &&
            snd.cnt == acc.cnt && snd.payload_digest == acc.payload_digest &&
            snd.time < acc.time) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << "accepted message with no matching trusted send"
                           << " (cnt=" << acc.cnt << ")";
    }
  }

  // (2) Strict mode: per channel, accepted counters form a strictly
  //     increasing sequence in acceptance order == send order.
  void check_order() const {
    std::map<std::pair<std::uint64_t, std::uint64_t>, Counter> last;
    for (const AcceptEvent& acc : accepts_) {
      const auto channel =
          std::make_pair(acc.claimed_sender.value, acc.acceptor.value);
      const auto it = last.find(channel);
      if (it != last.end()) {
        EXPECT_GT(acc.cnt, it->second)
            << "out-of-order acceptance on a strict channel";
      }
      last[channel] = acc.cnt;
    }
  }

  // (3) Freshness: no (channel, cnt) accepted twice.
  void check_no_double_accept() const {
    std::set<std::tuple<std::uint64_t, std::uint64_t, Counter>> seen;
    for (const AcceptEvent& acc : accepts_) {
      const auto key = std::make_tuple(acc.claimed_sender.value,
                                       acc.acceptor.value, acc.cnt);
      EXPECT_TRUE(seen.insert(key).second)
          << "message accepted twice (cnt=" << acc.cnt << ")";
    }
  }

  std::size_t accept_count() const { return accepts_.size(); }
  std::size_t send_count() const { return sends_.size(); }
  std::uint64_t rejected() const {
    std::uint64_t total = 0;
    for (const auto& policy : policies_) {
      total += policy->rejected_auth() + policy->rejected_replay();
    }
    return total;
  }

 private:
  struct Captured {
    NodeId src;
    NodeId dst;
    Bytes wire;
    crypto::Sha256Digest payload_digest;
  };

  void honest_send() {
    const std::size_t s = rng_.below(nodes_.size());
    std::size_t d = rng_.below(nodes_.size());
    if (d == s) d = (d + 1) % nodes_.size();
    const Bytes payload = to_bytes("m" + std::to_string(rng_.below(1000)));
    auto wire = policies_[s]->shield(nodes_[d], ViewId{0}, as_view(payload));
    ASSERT_TRUE(wire.is_ok());
    auto parsed = ShieldedMessage::parse(as_view(wire.value()));
    ASSERT_TRUE(parsed.is_ok());
    const auto digest = crypto::Sha256::hash(as_view(payload));
    sends_.push_back(SendEvent{nodes_[s], nodes_[d],
                               parsed.value().header.cnt, digest, clock_++});
    wire_.push_back(Captured{nodes_[s], nodes_[d], wire.value(), digest});
  }

  void inject(Captured msg) { wire_.push_back(std::move(msg)); }

  void deliver(std::size_t index) {
    Captured msg = wire_[index];
    wire_.erase(wire_.begin() + static_cast<std::ptrdiff_t>(index));
    attempt(msg);
  }

  void deliver_copy(std::size_t index_hint) {
    if (wire_.empty()) return;
    attempt(wire_[index_hint % wire_.size()]);
  }

  void attempt(const Captured& msg) {
    const std::size_t d = static_cast<std::size_t>(msg.dst.value - 1);
    auto env = policies_[d]->verify(msg.src, as_view(msg.wire));
    if (env.is_ok()) {
      record_accept(msg.dst, env.value());
    }
    for (VerifiedEnvelope& ready : policies_[d]->drain_ready()) {
      record_accept(msg.dst, ready);
    }
  }

  void record_accept(NodeId acceptor, const VerifiedEnvelope& env) {
    accepts_.push_back(AcceptEvent{
        acceptor, env.sender, env.cnt,
        crypto::Sha256::hash(as_view(env.payload)), clock_++});
  }

  Rng rng_;
  tee::TeePlatform platform_{1};
  crypto::SymmetricKey root_{Bytes(32, 0x66)};
  std::vector<NodeId> nodes_;
  std::vector<std::unique_ptr<tee::Enclave>> enclaves_;
  std::vector<std::unique_ptr<RecipeSecurity>> policies_;
  std::vector<Captured> wire_;
  std::vector<SendEvent> sends_;
  std::vector<AcceptEvent> accepts_;
  std::uint64_t clock_{0};
};

class TraceProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceProperties, SafetyIntegrityUnderDolevYaoWindowMode) {
  DolevYaoHarness harness(GetParam(), OrderPolicy::kWindow, 3);
  harness.run(3000);
  // The run must be meaningful: honest traffic got through AND attacks were
  // actually attempted and rejected.
  EXPECT_GT(harness.accept_count(), 100u);
  EXPECT_GT(harness.rejected(), 10u);
  harness.check_accepts_have_sends();   // Tamarin property (1)
  harness.check_no_double_accept();     // Tamarin property (3)
}

TEST_P(TraceProperties, OrderUnderDolevYaoStrictMode) {
  DolevYaoHarness harness(GetParam(), OrderPolicy::kStrict, 3);
  harness.run(3000);
  EXPECT_GT(harness.accept_count(), 50u);
  harness.check_accepts_have_sends();   // (1)
  harness.check_order();                // (2): exact Algorithm-1 semantics
  harness.check_no_double_accept();     // (3)
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace recipe
