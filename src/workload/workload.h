// YCSB-style workload generation and closed-loop load driving (paper §B.2:
// ~10K distinct keys, Zipfian distribution, various R/W ratios and value
// sizes).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "recipe/client.h"
#include "recipe/types.h"

namespace recipe::workload {

struct WorkloadConfig {
  std::uint64_t num_keys = 10000;
  double zipf_theta = 0.99;
  double read_fraction = 0.9;   // e.g. 0.9 = "90% R" in the figures
  std::size_t value_size = 256;
  std::uint64_t seed = 42;
};

// Key name for item i ("userNNNNNNNN", YCSB style).
std::string key_name(std::uint64_t item);

// Deterministic value payload of the configured size.
Bytes make_value(std::size_t size, std::uint64_t salt);

// Picks the coordinator node for an operation (protocol-aware routing: the
// distributed data-store layer of Fig. 2).
using Router = std::function<NodeId(OpType, std::uint64_t op_index)>;

// Closed-loop driver: each client keeps exactly one request outstanding;
// completion immediately issues the next. Throughput is measured from the
// clients' completed-op counters over a simulated window.
class ClosedLoopDriver {
 public:
  ClosedLoopDriver(std::vector<KvClient*> clients, WorkloadConfig config,
                   Router router);

  // Starts all client loops (runs until stop()).
  void start();
  void stop() { running_ = false; }

  void reset_stats();
  std::uint64_t completed() const;
  std::uint64_t failed() const;
  Histogram merged_latency_us() const;

 private:
  void pump(std::size_t client_index);

  std::vector<KvClient*> clients_;
  WorkloadConfig config_;
  Router router_;
  ZipfianGenerator zipf_;
  Rng rng_;
  std::uint64_t op_index_{0};
  bool running_{false};
};

}  // namespace recipe::workload
