// T-Lease: trusted lease primitive (Trach et al., SoCC'20) on top of the
// enclave's monotonic notion of time.
//
// SGX has no trusted wall clock; T-Lease only needs a clock with bounded
// unidirectional drift. In simulation the trusted clock is the simulator
// clock scaled by a configurable drift factor — the holder's clock may run
// FAST (conservative) but never slow, so a holder always believes its lease
// expired no later than the grantor does. Leases underpin leader leases,
// failure detectors, and election timeouts in Recipe (§3.5).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/ids.h"
#include "sim/clock.h"

namespace recipe::tee {

// A clock the enclave trusts. `now()` must be monotone.
class TrustedClock {
 public:
  // drift_ppm: parts-per-million by which this clock runs fast relative to
  // true simulated time (holders use a positive drift to be conservative).
  TrustedClock(const sim::Clock& clock, std::int64_t drift_ppm = 0)
      : clock_(clock), drift_ppm_(drift_ppm) {}

  sim::Time now() const {
    const sim::Time t = clock_.now();
    return t + static_cast<sim::Time>(
                   (static_cast<__int128>(t) * drift_ppm_) / 1'000'000);
  }

 private:
  const sim::Clock& clock_;
  std::int64_t drift_ppm_;
};

// One lease on a named resource (e.g., "leader@view=7").
class TrustedLease {
 public:
  TrustedLease(const TrustedClock& clock, sim::Time duration)
      : clock_(clock), duration_(duration) {}

  // Acquire or renew. Renewal extends from now, not from the old expiry.
  void acquire() { expiry_ = clock_.now() + duration_; }

  void release() { expiry_ = 0; }

  // Holder-side check: may I still act on this lease?
  bool held() const { return clock_.now() < expiry_; }

  // Grantor-side check with safety margin: has the holder surely lost it?
  // `margin` covers clock drift between grantor and holder.
  bool surely_expired(sim::Time margin) const {
    return clock_.now() >= expiry_ + margin;
  }

  sim::Time expiry() const { return expiry_; }
  sim::Time duration() const { return duration_; }

 private:
  const TrustedClock& clock_;
  sim::Time duration_;
  sim::Time expiry_{0};
};

// Failure detector built on leases: a peer is suspected when its lease
// (renewed by heartbeats) surely expired.
class LeaseFailureDetector {
 public:
  LeaseFailureDetector(const TrustedClock& clock, sim::Time lease_duration,
                       sim::Time margin)
      : clock_(clock), lease_duration_(lease_duration), margin_(margin) {}

  void heartbeat(NodeId peer) {
    leases_.try_emplace(peer, TrustedLease{clock_, lease_duration_})
        .first->second.acquire();
  }

  bool suspected(NodeId peer) const {
    const auto it = leases_.find(peer);
    if (it == leases_.end()) return true;  // never heard from
    return it->second.surely_expired(margin_);
  }

  void forget(NodeId peer) { leases_.erase(peer); }

 private:
  const TrustedClock& clock_;
  sim::Time lease_duration_;
  sim::Time margin_;
  std::unordered_map<NodeId, TrustedLease> leases_;
};

}  // namespace recipe::tee
