// Lightweight Status / Result<T> error-handling vocabulary.
//
// Recipe modules avoid exceptions on hot paths (message verification failures
// are expected events under a Byzantine adversary, not exceptional ones) and
// return Status / Result<T> instead.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace recipe {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kAuthFailed,        // MAC/signature verification failure
  kReplay,            // stale counter: replayed or duplicated message
  kOutOfOrder,        // "future" counter; message must be queued
  kIntegrityViolation,// host-memory value does not match enclave digest
  kNotAttested,       // peer has not completed remote attestation
  kWrongView,         // message from a stale/unknown view or term
  kRollback,          // sealed snapshot older than the hardware counter
  kUnavailable,       // not enough live replicas / no quorum
  kTimeout,
  kInternal,
  kOverloaded,        // egress/admission backpressure: shed, retry later
};

// Human-readable name for an ErrorCode, for logs and test output.
const char* error_code_name(ErrorCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status error(ErrorCode code, std::string message = {}) {
    return Status(code, std::move(message));
  }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Result<T>: either a value or a Status describing the failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).is_ok() && "Result from OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(data_);
  }
  T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }
  ErrorCode code() const { return status().code(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace recipe
