// Per-op flight recorder: a fixed-size lock-free per-thread ring of trace
// events keyed by rpc_id, dumpable as JSON on demand (admin endpoint) or
// automatically on test failure next to the RECIPE_TEST_SEED stamp.
//
// Threading rule
//   - Each writing thread gets its own ring (registered lazily under a
//     mutex, cached in a thread_local); writers touch ONLY their ring, with
//     relaxed atomic stores — no CAS, no fences, no shared cache lines.
//   - Readers walk every ring best-effort: a slot being overwritten mid-read
//     can yield a torn event (fields from two different events). That is
//     acceptable by design — the recorder is a diagnostic, not a ledger —
//     and because every field is an atomic, TSan stays clean.
//   - Rings are never freed while the recorder lives; a thread exiting
//     leaves its ring (and its last events) behind for the next dump.
//
// Cost rule: when disabled, starting a span is one relaxed load and no
// clock reads; instrumentation sites may therefore be unconditional.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace obs {

enum class SpanKind : std::uint64_t {
  kNone = 0,
  kClientOp = 1,        // issue -> reply/failure (detail: 0 ok, else error)
  kShield = 2,          // shield_batch_parts / per-message shield
  kBatchQueueWait = 3,  // first enqueue -> batch flush
  kSocketWrite = 4,     // flush_conn writev (detail: bytes written)
  kVerify = 5,          // security verify on ingress
  kApply = 6,           // state-machine apply (kv write)
  kWalGroupCommit = 7,  // WAL group commit (detail: entries committed)
  kRetryBackoff = 8,    // backoff sleep before a retry (detail: attempt)
};

const char* span_kind_name(SpanKind kind);

class FlightRecorder {
 public:
  struct Event {
    SpanKind kind = SpanKind::kNone;
    std::uint64_t rpc_id = 0;
    std::uint64_t actor = 0;  // emitting node/client/shard id
    std::uint64_t t0_ns = 0;
    std::uint64_t t1_ns = 0;
    std::uint64_t detail = 0;  // kind-specific (bytes, error code, attempt)
  };

  static constexpr std::size_t kRingSlots = 4096;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Process-wide recorder. Per-thread ring caching makes one global
  // instance the cheap configuration; tests toggle it via set_enabled().
  static FlightRecorder& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Monotonic timestamp for span endpoints.
  static std::uint64_t now_ns();

  void record(SpanKind kind, std::uint64_t rpc_id, std::uint64_t actor,
              std::uint64_t t0_ns, std::uint64_t t1_ns, std::uint64_t detail);

  // Best-effort copy of every ring, sorted by t0_ns (see threading rule).
  std::vector<Event> snapshot() const;
  std::string dump_json() const;
  bool dump_json_to(const std::string& path) const;
  // Zeroes all rings. Call only when writers are quiescent.
  void clear();

 private:
  struct Slot {
    std::atomic<std::uint64_t> kind{0};
    std::atomic<std::uint64_t> rpc_id{0};
    std::atomic<std::uint64_t> actor{0};
    std::atomic<std::uint64_t> t0_ns{0};
    std::atomic<std::uint64_t> t1_ns{0};
    std::atomic<std::uint64_t> detail{0};
  };

  struct Ring {
    Slot slots[kRingSlots];
    // Only the owning thread advances head; atomic so readers can see it.
    std::atomic<std::uint64_t> head{0};
  };

  static std::uint64_t next_instance_id();
  Ring* ring_for_this_thread();

  // Never-reused id keying the per-thread ring cache to THIS recorder, so a
  // thread that wrote through a destroyed recorder re-registers instead of
  // dangling into freed rings.
  const std::uint64_t id_ = next_instance_id();
  std::atomic<bool> enabled_{true};
  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

// RAII span against the global recorder: captures t0 at construction (only
// when the recorder is enabled), records on finish()/destruction.
class Span {
 public:
  Span(SpanKind kind, std::uint64_t rpc_id, std::uint64_t actor = 0)
      : kind_(kind), rpc_id_(rpc_id), actor_(actor) {
    if (FlightRecorder::global().enabled()) {
      t0_ns_ = FlightRecorder::now_ns();
      active_ = true;
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  bool active() const { return active_; }
  void set_detail(std::uint64_t detail) { detail_ = detail; }
  void set_rpc_id(std::uint64_t rpc_id) { rpc_id_ = rpc_id; }

  void finish() {
    if (!active_) return;
    active_ = false;
    FlightRecorder::global().record(kind_, rpc_id_, actor_, t0_ns_,
                                    FlightRecorder::now_ns(), detail_);
  }

 private:
  SpanKind kind_;
  std::uint64_t rpc_id_;
  std::uint64_t actor_;
  std::uint64_t detail_ = 0;
  std::uint64_t t0_ns_ = 0;
  bool active_ = false;
};

}  // namespace obs
