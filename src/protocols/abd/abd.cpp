#include "protocols/abd/abd.h"

namespace recipe::protocols {

namespace {

Bytes encode_ts(kv::Timestamp ts) {
  Writer w;
  w.u64(ts.counter);
  w.u64(ts.node);
  return std::move(w).take();
}

std::optional<kv::Timestamp> decode_ts(Reader& r) {
  auto counter = r.u64();
  auto node = r.u64();
  if (!counter || !node) return std::nullopt;
  return kv::Timestamp{*counter, *node};
}

}  // namespace

AbdNode::AbdNode(sim::Clock& clock, net::Transport& network,
                 ReplicaOptions options)
    : ReplicaNode(clock, network, std::move(options)) {
  // --- Replica-side handlers (native ABD logic; verification/shielding is
  // supplied by the ReplicaNode runtime, Listing-1 style). ---

  // Shadow semantics (§3.7): a rejoining replica still APPLIES broadcast
  // writes (they reach every member, so this is its live-traffic tee) but
  // never acknowledges or answers quorum reads — an incomplete store must
  // not count towards any quorum until promotion.

  on(abd_msg::kGetTs, [this](VerifiedEnvelope& env, rpc::RequestContext& ctx) {
    if (is_shadow()) return;
    Reader r(as_view(env.payload));
    auto key = r.str();
    if (!key) return;
    const kv::Timestamp ts = kv().timestamp(*key).value_or(kv::Timestamp{});
    respond(ctx, env.sender, as_view(encode_ts(ts)));
  });

  on(abd_msg::kPut, [this](VerifiedEnvelope& env, rpc::RequestContext& ctx) {
    Reader r(as_view(env.payload));
    auto key = r.str();
    auto value = r.bytes();
    auto ts = decode_ts(r);
    if (!key || !value || !ts) return;
    kv_write(*key, as_view(*value), *ts);  // stale ts rejected internally
    if (is_shadow()) return;  // applied, but a shadow's ack counts nowhere
    Writer ack;
    ack.boolean(true);
    respond(ctx, env.sender, as_view(ack.buffer()));
  });

  on(abd_msg::kGet, [this](VerifiedEnvelope& env, rpc::RequestContext& ctx) {
    if (is_shadow()) return;
    Reader r(as_view(env.payload));
    auto key = r.str();
    if (!key) return;
    Writer resp;
    auto value = kv_get(*key);
    if (value.is_ok()) {
      resp.boolean(true);
      resp.bytes(as_view(value.value().value));
      resp.raw(as_view(encode_ts(value.value().timestamp)));
    } else {
      resp.boolean(false);
      resp.bytes(BytesView{});
      resp.raw(as_view(encode_ts(kv::Timestamp{})));
    }
    respond(ctx, env.sender, as_view(resp.buffer()));
  });
}

void AbdNode::start() { ReplicaNode::start(); }

void AbdNode::submit(const ClientRequest& request, ReplyFn reply) {
  if (request.op == OpType::kPut) {
    submit_put(request, std::move(reply));
  } else {
    submit_get(request, std::move(reply));
  }
}

void AbdNode::submit_put(const ClientRequest& request, ReplyFn reply) {
  // Round 1: query timestamps from a majority (self counts).
  struct QueryState {
    kv::Timestamp max_ts;
    std::shared_ptr<QuorumTracker> quorum;
  };
  auto state = std::make_shared<QueryState>();
  state->max_ts = kv().timestamp(request.key).value_or(kv::Timestamp{});

  // Weak capture: state owns the tracker which owns this closure, so a
  // strong `state` here would be a retain cycle (leak when the quorum never
  // fires). At fire time ack() runs inside a continuation that holds state.
  auto on_quorum = [this, weak_state = std::weak_ptr<QueryState>(state),
                    key = request.key, value = request.value,
                    reply = std::move(reply)]() mutable {
    auto state = weak_state.lock();
    if (!state) return;
    // Round 2: write with a strictly higher timestamp, self coordinates.
    const kv::Timestamp ts{state->max_ts.counter + 1, self().value};
    broadcast_put(key, value, ts, [reply = std::move(reply)](bool ok) {
      ClientReply r;
      r.ok = ok;
      reply(r);
    });
  };
  state->quorum = std::make_shared<QuorumTracker>(quorum(),
                                                  std::move(on_quorum));
  state->quorum->ack(self());

  Writer query;
  query.str(request.key);
  broadcast(abd_msg::kGetTs, as_view(query.buffer()),
            [state](VerifiedEnvelope& env) {
              Reader r(as_view(env.payload));
              auto ts = decode_ts(r);
              if (!ts) return;
              if (*ts > state->max_ts) state->max_ts = *ts;
              state->quorum->ack(env.sender);
            });
}

void AbdNode::broadcast_put(const std::string& key, const Bytes& value,
                            kv::Timestamp ts, std::function<void(bool)> done) {
  auto quorum_tracker = std::make_shared<QuorumTracker>(
      quorum(), [done = std::move(done)] { done(true); });
  kv_write(key, as_view(value), ts);
  quorum_tracker->ack(self());

  Writer update;
  update.str(key);
  update.bytes(as_view(value));
  update.raw(as_view(encode_ts(ts)));
  broadcast(abd_msg::kPut, as_view(update.buffer()),
            [quorum_tracker](VerifiedEnvelope& env) {
              quorum_tracker->ack(env.sender);
            });
}

void AbdNode::submit_get(const ClientRequest& request, ReplyFn reply) {
  struct ReadState {
    kv::Timestamp max_ts;
    Bytes max_value;
    bool max_found = false;
    std::size_t agree_on_max = 0;  // responders whose ts equals max_ts
    std::shared_ptr<QuorumTracker> quorum;
  };
  auto state = std::make_shared<ReadState>();

  auto local = kv_get(request.key);
  if (local.is_ok()) {
    state->max_ts = local.value().timestamp;
    state->max_value = std::move(local.value().value);
    state->max_found = true;
    state->agree_on_max = 1;
  } else {
    state->agree_on_max = 1;  // agrees on "missing" (zero ts)
  }

  // Weak capture for the same cycle reason as in submit_put().
  auto on_quorum = [this, weak_state = std::weak_ptr<ReadState>(state),
                    key = request.key, reply = std::move(reply)]() mutable {
    auto state = weak_state.lock();
    if (!state) return;
    ClientReply r;
    r.ok = true;
    r.found = state->max_found;
    r.value = state->max_value;
    if (state->agree_on_max >= quorum() || !state->max_found) {
      // Fast path: majority already agrees on the latest timestamp.
      reply(r);
      return;
    }
    // Slow path: write back the max (value, ts) to a majority first.
    broadcast_put(key, state->max_value, state->max_ts,
                  [r, reply = std::move(reply)](bool) { reply(r); });
  };
  state->quorum = std::make_shared<QuorumTracker>(quorum(),
                                                  std::move(on_quorum));
  state->quorum->ack(self());

  Writer query;
  query.str(request.key);
  broadcast(abd_msg::kGet, as_view(query.buffer()),
            [state](VerifiedEnvelope& env) {
              Reader r(as_view(env.payload));
              auto found = r.boolean();
              auto value = r.bytes();
              auto ts = decode_ts(r);
              if (!found || !value || !ts) return;
              if (*ts > state->max_ts) {
                state->max_ts = *ts;
                state->max_value = std::move(*value);
                state->max_found = *found;
                state->agree_on_max = 1;
              } else if (*ts == state->max_ts) {
                ++state->agree_on_max;
              }
              state->quorum->ack(env.sender);
            });
}

}  // namespace recipe::protocols
