// Fixed-size sliding replay filter over per-channel message counters.
//
// Semantically identical to the previous std::map<Counter, bool> window
// (every counter accepted at most once; counters that fell out of the
// window rejected as stale) but O(1) per message with zero allocations: a
// ring bitmap of `window` bits indexed by cnt % window, valid for counters
// in (max_seen - window, max_seen]. The randomized equivalence test in
// tests/replay_window_test.cpp pins the two implementations to each other.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace recipe {

class ReplayWindow {
 public:
  enum class Verdict {
    kAccept,     // first sighting, now marked
    kStale,      // below the window: max_seen - cnt >= window
    kDuplicate,  // already accepted
  };

  explicit ReplayWindow(std::size_t window)
      : window_(std::max<std::size_t>(window, 1)),
        bits_((window_ + 63) / 64, 0) {}

  Verdict check_and_set(Counter cnt) {
    // Subtraction form: `cnt + window_ <= max_seen_` wraps for counters near
    // UINT64_MAX and misclassifies a far-forward jump as stale.
    if (cnt <= max_seen_ && max_seen_ - cnt >= window_) return Verdict::kStale;
    if (cnt > max_seen_) {
      // Advance the window: counters in (max_seen, cnt) have never been
      // seen, so their ring slots (stale leftovers) must be cleared.
      const Counter advance = cnt - max_seen_;
      if (advance >= window_) {
        std::fill(bits_.begin(), bits_.end(), 0);
      } else {
        for (Counter c = max_seen_ + 1; c < cnt; ++c) clear_bit(c % window_);
        clear_bit(cnt % window_);
      }
      max_seen_ = cnt;
      set_bit(cnt % window_);
      return Verdict::kAccept;
    }
    if (test_bit(cnt % window_)) return Verdict::kDuplicate;
    set_bit(cnt % window_);
    return Verdict::kAccept;
  }

  Counter max_seen() const { return max_seen_; }
  std::size_t window() const { return window_; }

 private:
  void set_bit(Counter i) { bits_[i >> 6] |= 1ULL << (i & 63); }
  void clear_bit(Counter i) { bits_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool test_bit(Counter i) const {
    return (bits_[i >> 6] & (1ULL << (i & 63))) != 0;
  }

  std::size_t window_;
  std::vector<std::uint64_t> bits_;
  Counter max_seen_{0};
};

}  // namespace recipe
