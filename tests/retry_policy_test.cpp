// RetryPolicy unit tests: per-attempt timeout growth, decorrelated-jitter
// backoff bounds, retryable-vs-fatal classification, and the deadline/
// attempt budget as KvClient consumes it end-to-end in simulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster_harness.h"
#include "common/rng.h"
#include "protocols/cr/cr.h"
#include "rpc/retry.h"

namespace recipe::rpc {
namespace {

TEST(RetryPolicyTest, AttemptTimeoutGrowsGeometricallyToCap) {
  RetryPolicy policy;
  policy.initial_timeout = 100 * sim::kMillisecond;
  policy.timeout_growth = 2.0;
  policy.max_timeout = 350 * sim::kMillisecond;

  EXPECT_EQ(policy.attempt_timeout(0), 100 * sim::kMillisecond);
  EXPECT_EQ(policy.attempt_timeout(1), 200 * sim::kMillisecond);
  EXPECT_EQ(policy.attempt_timeout(2), 350 * sim::kMillisecond);  // capped
  EXPECT_EQ(policy.attempt_timeout(10), 350 * sim::kMillisecond);
}

TEST(RetryPolicyTest, FlatGrowthKeepsHistoricalCadence) {
  RetryPolicy policy;
  policy.initial_timeout = 500 * sim::kMillisecond;
  policy.timeout_growth = 1.0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(policy.attempt_timeout(attempt), 500 * sim::kMillisecond);
  }
}

TEST(RetryPolicyTest, BackoffStaysWithinDecorrelatedJitterBounds) {
  RetryPolicy policy;
  policy.base_backoff = 10 * sim::kMillisecond;
  policy.max_backoff = 200 * sim::kMillisecond;
  Rng rng(recipe::testing::resolved_seed(42));
  SCOPED_TRACE(recipe::testing::seed_trace_message(
      recipe::testing::resolved_seed(42)));

  sim::Time prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const sim::Time hi = std::max<sim::Time>(
        policy.base_backoff, 3 * std::max(prev, policy.base_backoff));
    const sim::Time next = policy.next_backoff(prev, rng);
    EXPECT_GE(next, policy.base_backoff);
    EXPECT_LE(next, std::min(hi, policy.max_backoff));
    prev = next;
  }
}

TEST(RetryPolicyTest, BackoffSpreadsAcrossClients) {
  // The whole point of jitter: two clients with identical histories must
  // not sleep in lockstep.
  RetryPolicy policy;
  Rng a(1);
  Rng b(2);
  int distinct = 0;
  sim::Time prev_a = 0;
  sim::Time prev_b = 0;
  for (int i = 0; i < 32; ++i) {
    prev_a = policy.next_backoff(prev_a, a);
    prev_b = policy.next_backoff(prev_b, b);
    if (prev_a != prev_b) ++distinct;
  }
  EXPECT_GT(distinct, 16);
}

TEST(RetryPolicyTest, FatalClassification) {
  // Fatal: resending identical bytes can never fix these.
  for (const ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kAuthFailed, ErrorCode::kReplay,
        ErrorCode::kIntegrityViolation, ErrorCode::kNotAttested,
        ErrorCode::kRollback, ErrorCode::kInternal}) {
    EXPECT_TRUE(RetryPolicy::fatal(code)) << error_code_name(code);
  }
  // Retryable: transient network / availability / ordering conditions.
  for (const ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kNotFound, ErrorCode::kAlreadyExists,
        ErrorCode::kOutOfOrder, ErrorCode::kWrongView, ErrorCode::kUnavailable,
        ErrorCode::kTimeout, ErrorCode::kOverloaded}) {
    EXPECT_FALSE(RetryPolicy::fatal(code)) << error_code_name(code);
  }
}

// End-to-end budget semantics in simulation: a client pointed at a replica
// that never answers burns exactly max_attempts attempts, spaced by its
// backoff, then fails with kTimeout.
TEST(RetryPolicyTest, ClientExhaustsAttemptBudgetAgainstSilentPeer) {
  recipe::testing::Cluster<protocols::ChainNode> cluster;
  cluster.build();
  KvClient& client = cluster.add_client(2000);

  // No such replica: every attempt times out.
  const NodeId void_peer{999};
  ClientReply reply;
  bool done = false;
  client.put(void_peer, "k", to_bytes("v"), [&](const ClientReply& r) {
    reply = r;
    done = true;
  });
  cluster.run_until_done(done, 30 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, ErrorCode::kTimeout);
  EXPECT_EQ(client.failed(), 1u);
}

// A whole-op deadline shorter than the retransmit schedule cuts the op off
// early: the client gives up before exhausting max_attempts.
TEST(RetryPolicyTest, DeadlineCutsRetransmitScheduleShort) {
  recipe::testing::Cluster<protocols::ChainNode> cluster;
  cluster.build();

  auto enclave = std::make_unique<tee::Enclave>(cluster.platform(),
                                                "recipe-client", 2400);
  ASSERT_TRUE(enclave
                  ->install_secret(attest::kClusterRootName, cluster.root())
                  .is_ok());
  ClientOptions options;
  options.id = ClientId{2400};
  options.enclave = enclave.get();
  options.request_timeout = 200 * sim::kMillisecond;
  options.max_retries = 10;
  options.retry.deadline = 500 * sim::kMillisecond;
  KvClient client(cluster.sim(), cluster.network(), options);

  const sim::Time started = cluster.sim().now();
  ClientReply reply;
  bool done = false;
  client.put(NodeId{999}, "k", to_bytes("v"), [&](const ClientReply& r) {
    reply = r;
    done = true;
  });
  cluster.run_until_done(done, 30 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(reply.ok);
  // 10 attempts at 200ms each would take ~2s; the deadline ends the op
  // within ~one attempt + backoff of the 500ms budget.
  EXPECT_LT(cluster.sim().now() - started, 1200 * sim::kMillisecond);
}

}  // namespace
}  // namespace recipe::rpc
