// kv_cluster: a replicated key-value store under client load, surviving a
// leader failure — the paper's "distributed data store" scenario (Fig. 2).
//
// Runs R-Raft with three replicas and four closed-loop clients, kills the
// leader mid-run, and shows the view change + continued operation.
#include <cstdio>
#include <memory>
#include <vector>

#include "attest/bundle.h"
#include "protocols/raft/raft.h"
#include "recipe/client.h"
#include "workload/workload.h"

using namespace recipe;

namespace {

const char* role_name(protocols::RaftNode::Role role) {
  switch (role) {
    case protocols::RaftNode::Role::kLeader: return "leader";
    case protocols::RaftNode::Role::kCandidate: return "candidate";
    case protocols::RaftNode::Role::kFollower: return "follower";
  }
  return "?";
}

}  // namespace

int main() {
  sim::Simulator simulator;
  net::SimNetwork network(simulator, Rng(7));
  tee::TeePlatform platform(1);
  const crypto::SymmetricKey root{Bytes(32, 0x77)};
  const std::vector<NodeId> membership = {NodeId{1}, NodeId{2}, NodeId{3}};

  std::vector<std::unique_ptr<tee::Enclave>> enclaves;
  std::vector<std::unique_ptr<protocols::RaftNode>> replicas;
  protocols::RaftOptions raft;
  raft.initial_leader = NodeId{1};
  for (NodeId id : membership) {
    auto enclave =
        std::make_unique<tee::Enclave>(platform, "recipe-replica", id.value);
    (void)enclave->install_secret(attest::kClusterRootName, root);
    ReplicaOptions options;
    options.self = id;
    options.membership = membership;
    options.secured = true;
    options.enclave = enclave.get();
    replicas.push_back(std::make_unique<protocols::RaftNode>(
        simulator, network, std::move(options), raft));
    enclaves.push_back(std::move(enclave));
  }
  for (auto& replica : replicas) replica->start();

  // Four clients hammer the cluster with a 50/50 YCSB-style mix.
  std::vector<std::unique_ptr<tee::Enclave>> client_enclaves;
  std::vector<std::unique_ptr<KvClient>> clients;
  for (std::uint64_t c = 0; c < 4; ++c) {
    auto enclave =
        std::make_unique<tee::Enclave>(platform, "recipe-client", 2000 + c);
    (void)enclave->install_secret(attest::kClusterRootName, root);
    ClientOptions options;
    options.id = ClientId{2000 + c};
    options.secured = true;
    options.enclave = enclave.get();
    clients.push_back(std::make_unique<KvClient>(simulator, network, options));
    client_enclaves.push_back(std::move(enclave));
  }

  // Route every op to whichever node currently claims leadership.
  auto current_leader = [&]() -> NodeId {
    for (auto& replica : replicas) {
      if (replica->running() &&
          replica->role() == protocols::RaftNode::Role::kLeader) {
        return replica->self();
      }
    }
    return NodeId{2};  // best guess during the election gap
  };

  workload::WorkloadConfig wconfig;
  wconfig.num_keys = 100;
  wconfig.read_fraction = 0.5;
  wconfig.value_size = 64;
  std::vector<KvClient*> client_ptrs;
  for (auto& client : clients) client_ptrs.push_back(client.get());
  workload::ClosedLoopDriver driver(
      client_ptrs, wconfig,
      [&](OpType, std::uint64_t) { return current_leader(); });
  driver.start();

  auto print_status = [&](const char* moment) {
    std::printf("\n[%s] t=%.0fms\n", moment,
                static_cast<double>(simulator.now()) / sim::kMillisecond);
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      auto& replica = replicas[i];
      std::printf("  node %zu: %-9s term=%llu log=%llu committed_ops=%llu%s\n",
                  i + 1,
                  replica->running() ? role_name(replica->role()) : "CRASHED",
                  static_cast<unsigned long long>(replica->term()),
                  static_cast<unsigned long long>(replica->log_size()),
                  static_cast<unsigned long long>(replica->committed_ops()),
                  replica->running() ? "" : "  (machine down)");
    }
    std::printf("  clients: %llu ops completed\n",
                static_cast<unsigned long long>(driver.completed()));
  };

  simulator.run_for(500 * sim::kMillisecond);
  print_status("steady state");

  std::printf("\n>>> killing the leader (node 1) <<<\n");
  replicas[0]->stop();
  simulator.run_for(sim::kSecond);
  print_status("after view change");

  simulator.run_for(sim::kSecond);
  print_status("new steady state");
  driver.stop();

  std::printf("\nLatency: %s\n", driver.merged_latency_us().summary().c_str());
  return 0;
}
