#include "obs/metrics.h"

#include <cstdio>

namespace obs {

namespace detail {

void HistogramCell::record(std::uint64_t value) {
  const std::size_t idx = recipe::Histogram::bucket_for(value);
  buckets[idx].fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min.load(std::memory_order_relaxed);
  while (value < seen &&
         !min.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max.load(std::memory_order_relaxed);
  while (value > seen &&
         !max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void HistogramCell::merge_into(recipe::Histogram& out) const {
  std::uint64_t snapshot[recipe::Histogram::kNumBuckets];
  for (std::size_t i = 0; i < recipe::Histogram::kNumBuckets; ++i) {
    snapshot[i] = buckets[i].load(std::memory_order_relaxed);
  }
  out.merge_raw(snapshot, count.load(std::memory_order_relaxed),
                sum.load(std::memory_order_relaxed),
                min.load(std::memory_order_relaxed),
                max.load(std::memory_order_relaxed));
}

void HistogramCell::reset() {
  for (std::size_t i = 0; i < recipe::Histogram::kNumBuckets; ++i) {
    buckets[i].store(0, std::memory_order_relaxed);
  }
  count.store(0, std::memory_order_relaxed);
  sum.store(0, std::memory_order_relaxed);
  min.store(~0ULL, std::memory_order_relaxed);
  max.store(0, std::memory_order_relaxed);
}

}  // namespace detail

Counter Counter::detached() {
  Counter c;
  c.owned_ = std::make_shared<detail::CounterCell>();
  c.cell_ = c.owned_.get();
  return c;
}

Gauge Gauge::detached() {
  Gauge g;
  g.owned_ = std::make_shared<detail::GaugeCell>();
  g.cell_ = g.owned_.get();
  return g;
}

Histogram Histogram::detached() {
  Histogram h;
  h.owned_ = std::make_shared<detail::HistogramCell>();
  h.cell_ = h.owned_.get();
  return h;
}

recipe::Histogram Histogram::value() const {
  recipe::Histogram out;
  if (cell_) cell_->merge_into(out);
  return out;
}

CallbackHandle::CallbackHandle(CallbackHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

CallbackHandle& CallbackHandle::operator=(CallbackHandle&& other) noexcept {
  if (this != &other) {
    release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

CallbackHandle::~CallbackHandle() { release(); }

void CallbackHandle::release() {
  if (registry_ != nullptr) {
    registry_->remove_callback(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

MetricsRegistry::MetricsRegistry(bool enabled) : enabled_(enabled) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Series& MetricsRegistry::series_slot(const std::string& name,
                                                      const std::string& labels,
                                                      Kind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) it->second.kind = kind;
  // Mixed kinds on one name are a wiring bug; first registration wins and
  // later cells of the wrong kind are still stored (they render under the
  // first kind's rules, surfacing the clash instead of crashing).
  return it->second.series[labels];
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const std::string& labels) {
  if (!enabled_) return Counter{};
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_slot(name, labels, Kind::kCounter);
  s.counter_cells.push_back(std::make_unique<detail::CounterCell>());
  return Counter{s.counter_cells.back().get()};
}

Gauge MetricsRegistry::gauge(const std::string& name,
                             const std::string& labels) {
  if (!enabled_) return Gauge{};
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_slot(name, labels, Kind::kGauge);
  s.gauge_cells.push_back(std::make_unique<detail::GaugeCell>());
  return Gauge{s.gauge_cells.back().get()};
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     const std::string& labels) {
  if (!enabled_) return Histogram{};
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_slot(name, labels, Kind::kHistogram);
  s.histogram_cells.push_back(std::make_unique<detail::HistogramCell>());
  return Histogram{s.histogram_cells.back().get()};
}

CallbackHandle MetricsRegistry::on_counter(const std::string& name,
                                           const std::string& labels,
                                           std::function<std::uint64_t()> read) {
  if (!enabled_) return CallbackHandle{};
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_slot(name, labels, Kind::kCounter);
  const std::uint64_t id = next_callback_id_++;
  s.callbacks.push_back(Callback{id, std::move(read), nullptr});
  return CallbackHandle{this, id};
}

CallbackHandle MetricsRegistry::on_gauge(const std::string& name,
                                         const std::string& labels,
                                         std::function<std::int64_t()> read) {
  if (!enabled_) return CallbackHandle{};
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_slot(name, labels, Kind::kGauge);
  const std::uint64_t id = next_callback_id_++;
  s.callbacks.push_back(Callback{id, nullptr, std::move(read)});
  return CallbackHandle{this, id};
}

void MetricsRegistry::remove_callback(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [labels, series] : family.series) {
      for (auto it = series.callbacks.begin(); it != series.callbacks.end();
           ++it) {
        if (it->id == id) {
          series.callbacks.erase(it);
          return;
        }
      }
    }
  }
}

std::uint64_t MetricsRegistry::counter_sum_locked(const Series& s) const {
  std::uint64_t total = 0;
  for (const auto& cell : s.counter_cells) {
    total += cell->value.load(std::memory_order_relaxed);
  }
  for (const auto& cb : s.callbacks) {
    if (cb.read_counter) total += cb.read_counter();
  }
  return total;
}

std::int64_t MetricsRegistry::gauge_sum_locked(const Series& s) const {
  std::int64_t total = 0;
  for (const auto& cell : s.gauge_cells) {
    total += cell->value.load(std::memory_order_relaxed);
  }
  for (const auto& cb : s.callbacks) {
    if (cb.read_gauge) total += cb.read_gauge();
  }
  return total;
}

namespace {

std::string with_labels(const std::string& name, const std::string& labels,
                        const char* extra = nullptr) {
  std::string out = name;
  if (!labels.empty() || extra != nullptr) {
    out += '{';
    out += labels;
    if (extra != nullptr) {
      if (!labels.empty()) out += ',';
      out += extra;
    }
    out += '}';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, family] : families_) {
    const char* type = family.kind == Kind::kCounter   ? "counter"
                       : family.kind == Kind::kGauge   ? "gauge"
                                                       : "summary";
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          std::snprintf(line, sizeof(line), " %llu\n",
                        static_cast<unsigned long long>(
                            counter_sum_locked(series)));
          out += with_labels(name, labels) + line;
          break;
        case Kind::kGauge:
          std::snprintf(line, sizeof(line), " %lld\n",
                        static_cast<long long>(gauge_sum_locked(series)));
          out += with_labels(name, labels) + line;
          break;
        case Kind::kHistogram: {
          recipe::Histogram merged;
          for (const auto& cell : series.histogram_cells) {
            cell->merge_into(merged);
          }
          static constexpr struct {
            const char* label;
            double q;
          } kQuantiles[] = {{"quantile=\"0.5\"", 0.5},
                            {"quantile=\"0.99\"", 0.99},
                            {"quantile=\"0.999\"", 0.999}};
          for (const auto& quant : kQuantiles) {
            std::snprintf(
                line, sizeof(line), " %llu\n",
                static_cast<unsigned long long>(merged.percentile(quant.q)));
            out += with_labels(name, labels, quant.label) + line;
          }
          std::snprintf(line, sizeof(line), " %llu\n",
                        static_cast<unsigned long long>(merged.sum()));
          out += with_labels(name + "_sum", labels) + line;
          std::snprintf(line, sizeof(line), " %llu\n",
                        static_cast<unsigned long long>(merged.count()));
          out += with_labels(name + "_count", labels) + line;
          break;
        }
      }
    }
  }
  return out;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, family] : families_) {
    const std::size_t per_labelset =
        family.kind == Kind::kHistogram ? 5 : 1;  // 3 quantiles + sum + count
    n += family.series.size() * per_labelset;
  }
  return n;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const std::string& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = families_.find(name);
  if (fit == families_.end()) return 0;
  auto sit = fit->second.series.find(labels);
  if (sit == fit->second.series.end()) return 0;
  return counter_sum_locked(sit->second);
}

std::int64_t MetricsRegistry::gauge_value(const std::string& name,
                                          const std::string& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = families_.find(name);
  if (fit == families_.end()) return 0;
  auto sit = fit->second.series.find(labels);
  if (sit == fit->second.series.end()) return 0;
  return gauge_sum_locked(sit->second);
}

recipe::Histogram MetricsRegistry::histogram_value(
    const std::string& name, const std::string& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  recipe::Histogram merged;
  auto fit = families_.find(name);
  if (fit == families_.end()) return merged;
  auto sit = fit->second.series.find(labels);
  if (sit == fit->second.series.end()) return merged;
  for (const auto& cell : sit->second.histogram_cells) {
    cell->merge_into(merged);
  }
  return merged;
}

}  // namespace obs
