// Linearizability checking of real client histories (Wing & Gong style).
//
// Clients record invocation/response times (simulated clock) for every
// operation; per key, a DFS with memoization searches for a legal
// linearization of the concurrent history. Applied to the protocols that
// claim linearizability: R-ABD (quorum reads) and R-Hermes (local reads
// with invalidation stalls).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster_harness.h"
#include "protocols/abd/abd.h"
#include "protocols/cr/cr.h"
#include "protocols/craq/craq.h"
#include "protocols/hermes/hermes.h"
#include "protocols/raft/raft.h"
#include "recipe/batcher.h"

namespace recipe {
namespace {

using testing::Cluster;

struct HistoryOp {
  sim::Time invoked;
  sim::Time returned;
  bool is_write;
  std::string value;  // written value, or observed value for reads
  // false: the operation never returned to the client (timeout under drops).
  // An incomplete WRITE may have taken effect at any point after `invoked`,
  // or never — the checker may place it anywhere after invocation or leave
  // it out entirely (Knossos-style "info" op). Incomplete reads carry no
  // constraint and should simply be omitted from the history.
  bool complete = true;
};

// Returns true iff `ops` (a single-register history) has a legal
// linearization starting from `initial`.
bool linearizable(const std::vector<HistoryOp>& ops,
                  const std::string& initial) {
  const std::size_t n = ops.size();
  if (n > 24) ADD_FAILURE() << "history too large for the checker";
  std::uint32_t complete_mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].complete) complete_mask |= 1u << i;
  }
  std::set<std::pair<std::uint32_t, std::string>> visited;

  // DFS over sets of already-linearized ops (bitmask) + current state.
  std::function<bool(std::uint32_t, const std::string&)> dfs =
      [&](std::uint32_t done, const std::string& state) -> bool {
    // Success once every COMPLETE op is placed; leftover incomplete ops are
    // the ones that "never happened".
    if ((done & complete_mask) == complete_mask) return true;
    if (!visited.insert({done, state}).second) return false;

    // An op can be linearized next only if no other remaining op RETURNED
    // before it was invoked (real-time order must be respected). Incomplete
    // ops never returned, so they constrain nobody.
    sim::Time min_return = ~sim::Time{0};
    for (std::size_t i = 0; i < n; ++i) {
      if (!(done & (1u << i)) && ops[i].complete) {
        min_return = std::min(min_return, ops[i].returned);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (done & (1u << i)) continue;
      if (ops[i].invoked > min_return) continue;  // someone must go first
      if (ops[i].is_write) {
        if (dfs(done | (1u << i), ops[i].value)) return true;
      } else {
        if (ops[i].value == state && dfs(done | (1u << i), state)) return true;
      }
    }
    return false;
  };
  return dfs(0, initial);
}

// --- Checker self-tests
// -------------------------------------------------------

TEST(LinearizabilityChecker, AcceptsSequentialHistory) {
  std::vector<HistoryOp> ops = {
      {0, 10, true, "a"},
      {20, 30, false, "a"},
      {40, 50, true, "b"},
      {60, 70, false, "b"},
  };
  EXPECT_TRUE(linearizable(ops, ""));
}

TEST(LinearizabilityChecker, RejectsStaleRead) {
  std::vector<HistoryOp> ops = {
      {0, 10, true, "a"},
      {20, 30, true, "b"},
      {40, 50, false, "a"},  // reads "a" strictly after write "b" returned
  };
  EXPECT_FALSE(linearizable(ops, ""));
}

TEST(LinearizabilityChecker, AcceptsConcurrentEitherOrder) {
  std::vector<HistoryOp> ops = {
      {0, 100, true, "a"},   // concurrent writes
      {0, 100, true, "b"},
      {150, 160, false, "a"},
      {170, 180, false, "a"},  // consistent afterwards
  };
  EXPECT_TRUE(linearizable(ops, ""));
}

TEST(LinearizabilityChecker, RejectsFlipFlopAfterQuiescence) {
  std::vector<HistoryOp> ops = {
      {0, 100, true, "a"},
      {0, 100, true, "b"},
      {150, 160, false, "a"},
      {170, 180, false, "b"},
      {190, 200, false, "a"},  // a -> b -> a without intervening writes
  };
  EXPECT_FALSE(linearizable(ops, ""));
}

TEST(LinearizabilityChecker, ReadConcurrentWithWriteMaySeeEither) {
  std::vector<HistoryOp> ops = {
      {0, 10, true, "a"},
      {20, 100, true, "b"},
      {30, 40, false, "a"},  // concurrent with the write of b
      {50, 60, false, "b"},  // also concurrent; b then observed
  };
  EXPECT_TRUE(linearizable(ops, ""));
  std::vector<HistoryOp> bad = {
      {0, 10, true, "a"},
      {20, 100, true, "b"},
      {30, 40, false, "b"},
      {50, 60, false, "a"},  // b observed, then a again: illegal
  };
  EXPECT_FALSE(linearizable(bad, ""));
}

TEST(LinearizabilityChecker, IncompleteWriteMayBeAppliedOrNot) {
  const sim::Time never = ~sim::Time{0};
  // A timed-out write that DID take effect: later reads observe it.
  std::vector<HistoryOp> applied = {
      {0, 10, true, "a"},
      {20, never, true, "b", false},  // incomplete
      {40, 50, false, "b"},
  };
  EXPECT_TRUE(linearizable(applied, ""));
  // The same write treated as never-applied: reads keep observing "a".
  std::vector<HistoryOp> skipped = {
      {0, 10, true, "a"},
      {20, never, true, "b", false},
      {40, 50, false, "a"},
      {60, 70, false, "a"},
  };
  EXPECT_TRUE(linearizable(skipped, ""));
  // But it cannot flip-flop: observed, then gone again.
  std::vector<HistoryOp> flipflop = {
      {0, 10, true, "a"},
      {20, never, true, "b", false},
      {40, 50, false, "b"},
      {60, 70, false, "a"},
  };
  EXPECT_FALSE(linearizable(flipflop, ""));
}

TEST(LinearizabilityChecker, IncompleteWriteCannotApplyBeforeInvocation) {
  const sim::Time never = ~sim::Time{0};
  std::vector<HistoryOp> ops = {
      {0, 10, true, "a"},
      {20, 30, false, "b"},           // observes "b" BEFORE the write begins
      {40, never, true, "b", false},
  };
  EXPECT_FALSE(linearizable(ops, ""));
}

// --- Protocol histories
// ------------------------------------------------------------

// Drives concurrent clients against one key and collects the history.
template <typename Node>
std::vector<HistoryOp> record_history(Cluster<Node>& cluster, int n_writes,
                                      int n_reads, std::uint64_t seed) {
  auto& w1 = cluster.add_client(2001);
  auto& w2 = cluster.add_client(2002);
  auto& r1 = cluster.add_client(2003);
  auto& r2 = cluster.add_client(2004);

  auto history = std::make_shared<std::vector<HistoryOp>>();
  Rng rng(seed);
  int remaining_writes = n_writes;
  int remaining_reads = n_reads;
  int value_counter = 0;

  std::function<void(KvClient&, bool)> launch = [&, history](KvClient& client,
                                                             bool is_write) {
    const sim::Time invoked = cluster.sim().now();
    if (is_write) {
      const std::string value = "v" + std::to_string(++value_counter);
      client.put(
          cluster.membership()[rng.below(cluster.membership().size())]
                      .value == 0
              ? NodeId{1}
              : cluster.membership()[rng.below(cluster.membership().size())],
          "x", to_bytes(value), [&, history, invoked,
                                 value](const ClientReply& r) {
            if (r.ok) {
              history->push_back(
                  HistoryOp{invoked, cluster.sim().now(), true, value});
            }
          });
    } else {
      client.get(cluster.membership()[rng.below(cluster.membership().size())],
                 "x", [&, history, invoked](const ClientReply& r) {
                   if (r.ok) {
                     history->push_back(HistoryOp{
                         invoked, cluster.sim().now(), false,
                         r.found ? to_string(as_view(r.value)) : ""});
                   }
                 });
    }
  };

  // Interleave launches over simulated time so ops genuinely overlap.
  while (remaining_writes > 0 || remaining_reads > 0) {
    if (remaining_writes > 0) {
      launch(rng.chance(0.5) ? w1 : w2, true);
      --remaining_writes;
    }
    if (remaining_reads > 0) {
      launch(rng.chance(0.5) ? r1 : r2, false);
      --remaining_reads;
    }
    cluster.run_for(rng.below(40) * sim::kMicrosecond);
  }
  cluster.run_for(5 * sim::kSecond);
  return *history;
}

class ProtocolLinearizability
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolLinearizability, AbdHistoriesAreLinearizable) {
  Cluster<protocols::AbdNode> cluster;
  cluster.build();
  const auto history = record_history(cluster, 8, 10, GetParam());
  ASSERT_EQ(history.size(), 18u) << "all operations must complete";
  EXPECT_TRUE(linearizable(history, "")) << "seed " << GetParam();
}

TEST_P(ProtocolLinearizability, HermesHistoriesAreLinearizable) {
  Cluster<protocols::HermesNode> cluster;
  cluster.build();
  const auto history = record_history(cluster, 8, 10, GetParam());
  ASSERT_EQ(history.size(), 18u);
  EXPECT_TRUE(linearizable(history, "")) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolLinearizability,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --- Batched randomized sweep
// -----------------------------------------------------
//
// CR / CRAQ / Raft histories with the batching subsystem ENABLED under a
// RANDOM flush policy (max-count / max-bytes / max-delay / adaptive drawn per
// seed) plus random message-delay schedules on every link and drop schedules
// on the client links (client retries make drops recoverable there without
// relying on protocol-level retransmission). Client ops that never complete
// are recorded as incomplete maybe-applied writes for the checker.
//
// Seeds honor RECIPE_TEST_SEED (cluster_harness.h) for replay.

struct SweepRouting {
  std::function<NodeId(Rng&)> write_to;
  std::function<NodeId(Rng&)> read_to;
};

template <typename Node, typename... Extra>
void run_batched_sweep(std::uint64_t base_seed, const SweepRouting& route,
                       double replica_drop_rate, Extra&&... extra) {
  const std::uint64_t seed = testing::resolved_seed(base_seed);
  SCOPED_TRACE(testing::seed_trace_message(seed));
  Rng rng(seed);

  typename Cluster<Node>::Config config;
  config.seed = seed;
  config.batch.enabled = true;
  config.batch.max_count = std::size_t{1} << rng.range(1, 5);  // 2..32
  config.batch.max_bytes = std::size_t{512} << rng.below(5);   // 512B..8KiB
  config.batch.max_delay = rng.below(41) * sim::kMicrosecond;  // 0..40us
  config.batch.adaptive = rng.chance(0.5);
  Cluster<Node> cluster(config);
  cluster.build(std::forward<Extra>(extra)...);

  // Random delay/duplication schedule on every link; random drops before GST
  // (replica links only where the protocol retransmits, i.e. Raft).
  net::NetworkFaults faults;
  faults.jitter_max = rng.below(31) * sim::kMicrosecond;
  faults.duplicate_rate = rng.uniform() * 0.15;
  faults.drop_rate = replica_drop_rate * rng.uniform();
  faults.gst = 2 * sim::kSecond;
  cluster.network().set_faults(faults);

  // Client-link drop schedule via the adversary (applies pre-GST only, so
  // three retries always suffice eventually).
  const double client_drop = rng.uniform() * 0.15;
  Rng drop_rng = rng.fork();
  auto& simulator = cluster.sim();
  cluster.network().set_adversary(
      [&simulator, drop_rng, client_drop](const net::Packet& p) mutable {
        net::AdversaryAction action;
        const bool client_link = p.src.value >= 2000 || p.dst.value >= 2000;
        if (client_link && simulator.now() < 2 * sim::kSecond &&
            drop_rng.chance(client_drop)) {
          action.kind = net::AdversaryAction::Kind::kDrop;
        }
        return action;
      });

  auto& w1 = cluster.add_client(2001);
  auto& w2 = cluster.add_client(2002);
  auto& r1 = cluster.add_client(2003);
  auto& r2 = cluster.add_client(2004);

  auto history = std::make_shared<std::vector<HistoryOp>>();
  const sim::Time never = ~sim::Time{0};
  int value_counter = 0;
  int outstanding = 0;

  auto launch_write = [&](KvClient& client) {
    const sim::Time invoked = cluster.sim().now();
    const std::string value = "v" + std::to_string(++value_counter);
    ++outstanding;
    client.put(route.write_to(rng), "x", to_bytes(value),
               [&outstanding, history, invoked, value, never,
                &cluster](const ClientReply& r) {
                 --outstanding;
                 if (r.ok) {
                   history->push_back(
                       HistoryOp{invoked, cluster.sim().now(), true, value});
                 } else {
                   // Timed out / refused: MAY still have been applied.
                   history->push_back(
                       HistoryOp{invoked, never, true, value, false});
                 }
               });
  };
  auto launch_read = [&](KvClient& client) {
    const sim::Time invoked = cluster.sim().now();
    ++outstanding;
    client.get(route.read_to(rng), "x",
               [&outstanding, history, invoked,
                &cluster](const ClientReply& r) {
                 --outstanding;
                 if (!r.ok) return;  // incomplete read: no constraint
                 history->push_back(HistoryOp{
                     invoked, cluster.sim().now(), false,
                     r.found ? to_string(as_view(r.value)) : ""});
               });
  };

  int writes = 6;
  int reads = 8;
  while (writes > 0 || reads > 0) {
    if (writes > 0) {
      launch_write(rng.chance(0.5) ? w1 : w2);
      --writes;
    }
    if (reads > 0) {
      launch_read(rng.chance(0.5) ? r1 : r2);
      --reads;
    }
    cluster.run_for(rng.below(60) * sim::kMicrosecond);
  }
  // Drain: client timeouts are 500ms x 3 retries, GST at 2s.
  cluster.run_for(10 * sim::kSecond);

  EXPECT_EQ(outstanding, 0) << "every client op must resolve";
  int complete_ops = 0;
  for (const HistoryOp& op : *history) complete_ops += op.complete ? 1 : 0;
  EXPECT_GE(complete_ops, 7) << "sweep too lossy to be meaningful";
  EXPECT_TRUE(linearizable(*history, "")) << "seed " << seed;
}

class BatchedLinearizability
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchedLinearizability, ChainReplicationUnderRandomBatching) {
  // CR: writes at the head, linearizable local reads at the tail. No drops
  // on replica links (chain updates are not retransmitted unless a node is
  // suspected).
  SweepRouting route{[](Rng&) { return NodeId{1}; },
                     [](Rng&) { return NodeId{3}; }};
  run_batched_sweep<protocols::ChainNode>(GetParam() * 7919 + 1, route, 0.0);
}

TEST_P(BatchedLinearizability, CraqUnderRandomBatching) {
  // CRAQ: writes at the head, apportioned reads anywhere.
  SweepRouting route{[](Rng&) { return NodeId{1}; },
                     [](Rng& r) { return NodeId{1 + r.below(3)}; }};
  run_batched_sweep<protocols::CraqNode>(GetParam() * 104729 + 3, route, 0.0);
}

TEST_P(BatchedLinearizability, RaftUnderRandomBatching) {
  // Raft: everything at the leader; AppendEntries retries tolerate drops on
  // the replica links too.
  protocols::RaftOptions raft;
  raft.initial_leader = NodeId{1};
  SweepRouting route{[](Rng&) { return NodeId{1}; },
                     [](Rng&) { return NodeId{1}; }};
  run_batched_sweep<protocols::RaftNode>(GetParam() * 15485863 + 5, route, 0.1,
                                         raft);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedLinearizability,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- Histories spanning a crash + attested rejoin ----------------------------
//
// The strongest recovery check available: ops run before, DURING, and after
// a full kill -> re-attest -> shadow catch-up -> promote cycle (with random
// batching), and the complete history — including incomplete maybe-applied
// writes from the outage window — must stay linearizable. Routing adapts to
// the live membership (e.g. CR reads go to whatever node is currently the
// tail), so ops also land on the rejoined node after promotion.

template <typename Node>
struct RecoveryRouting {
  // Picks coordinators given the live cluster (evaluated per op).
  std::function<NodeId(Cluster<Node>&, Rng&)> write_to;
  std::function<NodeId(Cluster<Node>&, Rng&)> read_to;
  std::size_t victim;  // replica index killed mid-history
};

template <typename Node, typename... Extra>
void run_recovery_sweep(std::uint64_t base_seed,
                        const RecoveryRouting<Node>& route, Extra&&... extra) {
  const std::uint64_t seed = testing::resolved_seed(base_seed);
  SCOPED_TRACE(testing::seed_trace_message(seed));
  Rng rng(seed);

  typename Cluster<Node>::Config config;
  config.seed = seed;
  config.with_cas = true;
  config.heartbeat_period = 10 * sim::kMillisecond;
  config.batch.enabled = rng.chance(0.5);
  config.batch.max_count = std::size_t{1} << rng.range(1, 4);
  config.batch.max_delay = rng.below(21) * sim::kMicrosecond;
  config.batch.adaptive = rng.chance(0.5);
  Cluster<Node> cluster(config);
  cluster.build(std::forward<Extra>(extra)...);

  auto& w1 = cluster.add_client(2001);
  auto& w2 = cluster.add_client(2002);
  auto& r1 = cluster.add_client(2003);
  auto& r2 = cluster.add_client(2004);

  auto history = std::make_shared<std::vector<HistoryOp>>();
  const sim::Time never = ~sim::Time{0};
  int value_counter = 0;
  int outstanding = 0;

  auto launch_write = [&](KvClient& client) {
    const sim::Time invoked = cluster.sim().now();
    const std::string value = "v" + std::to_string(++value_counter);
    ++outstanding;
    client.put(route.write_to(cluster, rng), "x", to_bytes(value),
               [&outstanding, history, invoked, value, never,
                &cluster](const ClientReply& r) {
                 --outstanding;
                 if (r.ok) {
                   history->push_back(
                       HistoryOp{invoked, cluster.sim().now(), true, value});
                 } else {
                   // Failed/timed out during the outage: MAY have applied.
                   history->push_back(
                       HistoryOp{invoked, never, true, value, false});
                 }
               });
  };
  auto launch_read = [&](KvClient& client) {
    const sim::Time invoked = cluster.sim().now();
    ++outstanding;
    client.get(route.read_to(cluster, rng), "x",
               [&outstanding, history, invoked,
                &cluster](const ClientReply& r) {
                 --outstanding;
                 if (!r.ok) return;  // incomplete read: no constraint
                 history->push_back(HistoryOp{
                     invoked, cluster.sim().now(), false,
                     r.found ? to_string(as_view(r.value)) : ""});
               });
  };
  auto burst = [&](int writes, int reads) {
    while (writes > 0 || reads > 0) {
      if (writes > 0) {
        launch_write(rng.chance(0.5) ? w1 : w2);
        --writes;
      }
      if (reads > 0) {
        launch_read(rng.chance(0.5) ? r1 : r2);
        --reads;
      }
      cluster.run_for(rng.below(60) * sim::kMicrosecond);
    }
  };

  burst(2, 3);
  cluster.run_for(50 * sim::kMillisecond);

  cluster.crash(route.victim);
  cluster.run_for(300 * sim::kMillisecond);  // suspicion + repair
  burst(2, 2);  // ops against the degraded cluster

  // Ops launched here run WHILE the rejoin drives the simulator: the
  // history genuinely spans the recovery.
  burst(2, 2);
  NodeId donor = NodeId{1};
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (i != route.victim && cluster.node(i).active()) {
      donor = cluster.node(i).self();
    }
  }
  auto report = cluster.rejoin(route.victim, donor);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  ASSERT_TRUE(report.value().promoted);
  cluster.run_for(100 * sim::kMillisecond);

  burst(2, 3);  // post-recovery ops reach the rejoined node too
  cluster.run_for(10 * sim::kSecond);  // drain client retries

  EXPECT_EQ(outstanding, 0) << "every client op must resolve";
  int complete_ops = 0;
  for (const HistoryOp& op : *history) complete_ops += op.complete ? 1 : 0;
  EXPECT_GE(complete_ops, 8) << "history too lossy to be meaningful";
  EXPECT_TRUE(linearizable(*history, "")) << "seed " << seed;
}

class RecoveryLinearizability : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RecoveryLinearizability, ChainReplicationAcrossTailRejoin) {
  RecoveryRouting<protocols::ChainNode> route;
  route.victim = 2;  // the tail (and sole read server) dies and rejoins
  route.write_to = [](Cluster<protocols::ChainNode>& c, Rng&) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (c.node(i).active() && c.node(i).coordinates_writes()) {
        return c.node(i).self();
      }
    }
    return NodeId{1};
  };
  route.read_to = [](Cluster<protocols::ChainNode>& c, Rng&) {
    for (std::size_t i = c.size(); i > 0; --i) {
      if (c.node(i - 1).active() && c.node(i - 1).coordinates_reads()) {
        return c.node(i - 1).self();
      }
    }
    return NodeId{3};
  };
  run_recovery_sweep<protocols::ChainNode>(GetParam() * 7919 + 101, route);
}

TEST_P(RecoveryLinearizability, AbdAcrossReplicaRejoin) {
  RecoveryRouting<protocols::AbdNode> route;
  route.victim = 1;
  auto any_active = [](Cluster<protocols::AbdNode>& c, Rng& r) {
    for (int tries = 0; tries < 8; ++tries) {
      const std::size_t i = r.below(c.size());
      if (c.node(i).active()) return c.node(i).self();
    }
    return NodeId{1};
  };
  route.write_to = any_active;
  route.read_to = any_active;
  run_recovery_sweep<protocols::AbdNode>(GetParam() * 104729 + 103, route);
}

TEST_P(RecoveryLinearizability, RaftAcrossFollowerRejoin) {
  protocols::RaftOptions raft;
  raft.initial_leader = NodeId{1};
  RecoveryRouting<protocols::RaftNode> route;
  route.victim = 2;  // a follower; the leader keeps serving
  route.write_to = [](Cluster<protocols::RaftNode>&,
                      Rng&) { return NodeId{1}; };
  route.read_to = [](Cluster<protocols::RaftNode>&, Rng&) { return NodeId{1}; };
  run_recovery_sweep<protocols::RaftNode>(GetParam() * 15485863 + 107, route,
                                          raft);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryLinearizability,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace recipe
