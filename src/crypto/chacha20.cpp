#include "crypto/chacha20.h"

#include <bit>
#include <cassert>
#include <cstring>

#include "common/endian.h"

namespace recipe::crypto {

namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

void chacha20_block(const std::uint32_t state[16], std::uint8_t out[64]) {
  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) store_le32(out + 4 * i, x[i] + state[i]);
}

}  // namespace

void chacha20_xor(BytesView key, const ChaChaNonce& nonce,
                  std::uint32_t counter,
                  std::uint8_t* data, std::size_t len) {
  assert(key.size() == kChaChaKeySize);

  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::uint8_t keystream[64];
  std::size_t offset = 0;
  while (offset < len) {
    chacha20_block(state, keystream);
    state[12]++;
    const std::size_t n = std::min<std::size_t>(64, len - offset);
    for (std::size_t i = 0; i < n; ++i) data[offset + i] ^= keystream[i];
    offset += n;
  }
}

void chacha20_xor(BytesView key, const ChaChaNonce& nonce,
                  std::uint32_t counter,
                  Bytes& data) {
  chacha20_xor(key, nonce, counter, data.data(), data.size());
}

Bytes chacha20(BytesView key, const ChaChaNonce& nonce, std::uint32_t counter,
               BytesView data) {
  Bytes out(data.begin(), data.end());
  chacha20_xor(key, nonce, counter, out);
  return out;
}

ChaChaNonce make_nonce(std::uint32_t prefix, std::uint64_t counter) {
  ChaChaNonce nonce{};
  store_le32(nonce.data(), prefix);
  for (int i = 0; i < 8; ++i) {
    nonce[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(counter >> (8 * i));
  }
  return nonce;
}

ChaChaNonce make_channel_nonce(std::uint64_t cq, std::uint64_t counter) {
  // [0..7]: the FULL channel id; [8..11]: low counter bits. Injective over
  // (cq, counter mod 2^32), so distinct channels of a pairwise key can never
  // collide and counters are unique up to kChannelNonceMessageLimit —
  // callers (RecipeSecurity::shield) refuse to encrypt past that bound
  // rather than silently reuse a nonce.
  ChaChaNonce nonce{};
  store_le64(nonce.data(), cq);
  store_le32(nonce.data() + 8, static_cast<std::uint32_t>(counter));
  return nonce;
}

}  // namespace recipe::crypto
