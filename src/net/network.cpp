#include "net/network.h"

#include <cassert>
#include <thread>

namespace recipe::net {

namespace {
sim::Time ns(double v) { return static_cast<sim::Time>(std::max(0.0, v)); }
}  // namespace

unsigned resolve_transport_shards(unsigned requested,
                                  const NetStackParams& params) {
  unsigned n = requested != 0 ? requested : params.transport_shards;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;  // hardware_concurrency() may be unable to tell
  return std::min(n, kMaxTransportShards);
}

sim::Time NetStackParams::send_cpu(std::size_t bytes) const {
  return send_cpu_base + ns(send_cpu_per_byte_ns * static_cast<double>(bytes));
}

sim::Time NetStackParams::recv_cpu(std::size_t bytes) const {
  return recv_cpu_base + ns(recv_cpu_per_byte_ns * static_cast<double>(bytes));
}

sim::Time NetStackParams::wire_time(std::size_t bytes) const {
  // bits / (Gbit/s) = ns.
  return ns(static_cast<double>(bytes) * 8.0 / bandwidth_gbps);
}

// Profiles. Calibrated so Fig. 6b reproduces: direct I/O dominates; kernel
// sockets pay syscalls + copies; TEEs multiply the CPU side 4-8x (enclave
// transitions per syscall for kernel-net; shielded-memory copies for both).
NetStackParams NetStackParams::kernel_native() {
  NetStackParams p;
  p.send_cpu_base = 1500 * sim::kNanosecond;   // syscall + skb handling
  p.send_cpu_per_byte_ns = 0.034;              // copy + checksum
  p.recv_cpu_base = 1500 * sim::kNanosecond;
  p.recv_cpu_per_byte_ns = 0.034;
  p.propagation_delay = 12 * sim::kMicrosecond;
  return p;
}

NetStackParams NetStackParams::kernel_tee() {
  NetStackParams p = kernel_native();
  // Every syscall crosses the enclave boundary (even with asynchronous
  // syscall threads) and every buffer is copied in/out of the enclave.
  p.send_cpu_base = 3200 * sim::kNanosecond;
  p.send_cpu_per_byte_ns = 1.55;
  p.recv_cpu_base = 3200 * sim::kNanosecond;
  p.recv_cpu_per_byte_ns = 1.55;
  return p;
}

NetStackParams NetStackParams::direct_io_native() {
  NetStackParams p;
  p.send_cpu_base = 220 * sim::kNanosecond;    // doorbell + descriptor
  p.send_cpu_per_byte_ns = 0.012;              // zero-copy DMA
  p.recv_cpu_base = 260 * sim::kNanosecond;
  p.recv_cpu_per_byte_ns = 0.012;
  p.propagation_delay = 2 * sim::kMicrosecond;
  return p;
}

NetStackParams NetStackParams::direct_io_tee() {
  NetStackParams p = direct_io_native();
  // No syscalls (DMA-ed userspace rings mapped into the enclave) but ring
  // management runs shielded and payloads cross the enclave boundary.
  p.send_cpu_base = 1800 * sim::kNanosecond;
  p.send_cpu_per_byte_ns = 0.78;
  p.recv_cpu_base = 1800 * sim::kNanosecond;
  p.recv_cpu_per_byte_ns = 0.78;
  return p;
}

void SimNetwork::attach(NodeId id, NetStackParams stack,
                        DeliveryHandler handler) {
  endpoints_[id] = Endpoint{stack, std::move(handler), NodeCpu{}};
}

void SimNetwork::detach(NodeId id) { endpoints_.erase(id); }

NodeCpu& SimNetwork::cpu(NodeId id) {
  const auto it = endpoints_.find(id);
  assert(it != endpoints_.end());
  return it->second.cpu;
}

const NetStackParams& SimNetwork::stack(NodeId id) const {
  const auto it = endpoints_.find(id);
  assert(it != endpoints_.end());
  return it->second.stack;
}

void SimNetwork::partition(NodeId a, NodeId b, bool blocked) {
  if (blocked) {
    partitions_.insert(partition_key(a, b));
  } else {
    partitions_.erase(partition_key(a, b));
  }
}

void SimNetwork::send(Packet packet) {
  // The sim has no gather I/O and the adversary hook may replace the
  // payload wholesale: collapse scatter packets up front.
  packet.flatten();
  ++packets_sent_;
  bytes_sent_ += packet.wire_size();

  const auto src_it = endpoints_.find(packet.src);
  if (src_it == endpoints_.end() || crashed_.contains(packet.src)) {
    ++packets_dropped_;
    return;
  }

  // Sender pays CPU for the send path; the packet departs when the sender's
  // CPU has pushed it to the NIC.
  Endpoint& src_ep = src_it->second;
  const sim::Time cpu_cost = src_ep.stack.send_cpu(packet.wire_size());
  const sim::Time departure = src_ep.cpu.reserve(simulator_.now(), cpu_cost);

  // The Dolev-Yao adversary sits on the wire.
  if (adversary_) {
    AdversaryAction action = adversary_(packet);
    for (Packet& extra : action.injected) {
      schedule_delivery(std::move(extra), departure);
    }
    switch (action.kind) {
      case AdversaryAction::Kind::kDrop:
        ++packets_dropped_;
        return;
      case AdversaryAction::Kind::kTamper:
      case AdversaryAction::Kind::kReplace:
        packet.payload = std::move(action.payload);
        break;
      case AdversaryAction::Kind::kPass:
        break;
    }
  }

  schedule_delivery(std::move(packet), departure);
}

void SimNetwork::schedule_delivery(Packet&& packet, sim::Time departure) {
  // Random loss / duplication only before GST (partial synchrony).
  const bool pre_gst = simulator_.now() < faults_.gst;
  if (pre_gst && faults_.drop_rate > 0 && rng_.chance(faults_.drop_rate)) {
    ++packets_dropped_;
    return;
  }

  const auto dst_it = endpoints_.find(packet.dst);
  if (dst_it == endpoints_.end()) {
    ++packets_dropped_;
    return;
  }
  if (partitions_.contains(partition_key(packet.src, packet.dst))) {
    ++packets_dropped_;
    return;
  }

  const NetStackParams& stack = dst_it->second.stack;

  // Serialize onto the sender's NIC at line rate (caps goodput at the link
  // bandwidth regardless of CPU speed).
  const auto src_it = endpoints_.find(packet.src);
  if (src_it != endpoints_.end()) {
    Endpoint& src_ep = src_it->second;
    const sim::Time tx_start = std::max(departure, src_ep.egress_free_at);
    src_ep.egress_free_at =
        tx_start + src_ep.stack.wire_time(packet.wire_size());
    departure = src_ep.egress_free_at;
  }

  sim::Time delay = stack.propagation_delay;
  if (faults_.jitter_max > 0) delay += rng_.below(faults_.jitter_max);
  if (!pre_gst) delay = std::min(delay, faults_.delta);

  const bool duplicate =
      pre_gst && faults_.duplicate_rate > 0 &&
      rng_.chance(faults_.duplicate_rate);

  const sim::Time arrival = departure + delay;
  // A crash between now and delivery invalidates the packet: it was sitting
  // in the dead machine's NIC/kernel buffers. The epoch captured here pins
  // the destination's incarnation; recover() does not resurrect old frames.
  const std::uint64_t dst_epoch = crash_epoch(packet.dst);
  auto deliver = [this, packet, dst_epoch](sim::Time when) {
    Packet copy = packet;
    simulator_.schedule_at(when, [this, dst_epoch,
                                  p = std::move(copy)]() mutable {
      auto it = endpoints_.find(p.dst);
      if (it == endpoints_.end() || crashed_.contains(p.dst) ||
          crash_epoch(p.dst) != dst_epoch) {
        ++packets_dropped_;
        return;
      }
      Endpoint& ep = it->second;
      // Receiver pays CPU before the handler runs.
      const sim::Time done =
          ep.cpu.reserve(simulator_.now(), ep.stack.recv_cpu(p.wire_size()));
      simulator_.schedule_at(done, [this, dst_epoch,
                                    p = std::move(p)]() mutable {
        auto it2 = endpoints_.find(p.dst);
        if (it2 == endpoints_.end() || crashed_.contains(p.dst) ||
            crash_epoch(p.dst) != dst_epoch) {
          ++packets_dropped_;
          return;
        }
        ++packets_delivered_;
        it2->second.handler(std::move(p));
      });
    });
  };

  deliver(arrival);
  if (duplicate) deliver(arrival + stack.propagation_delay);
}

}  // namespace recipe::net
