#include "transport/sharded_tcp_transport.h"

#include <bit>
#include <cassert>

namespace recipe::transport {

ShardedTcpTransport::ShardedTcpTransport(ShardedTcpTransportOptions options)
    : options_(std::move(options)) {
  const unsigned n = net::resolve_transport_shards(options_.shards,
                                                   options_.net);
  shards_.reserve(n);
  for (unsigned s = 0; s < n; ++s) {
    TcpTransportOptions shard_options = options_.transport;
    shard_options.reuseport = n > 1;
    if (shard_options.metrics != nullptr) {
      // Each shard loop scrapes as its own labelset, so the per-loop cells
      // never share a series (or a cache line) with a sibling.
      shard_options.metrics_labels = "shard=\"" + std::to_string(s) + "\"";
    }
    if (n > 1) {
      // Hooks run on shard s's loop thread, always after this constructor
      // returns (they fire only once listeners/connections exist).
      shard_options.shard_hooks.deliver_elsewhere =
          [this, s](net::Packet&& p) {
            return forward_delivery(s, std::move(p));
          };
      shard_options.shard_hooks.egress_elsewhere = [this, s](net::Packet&& p) {
        return forward_egress(s, std::move(p));
      };
      shard_options.shard_hooks.peer_route = [this, s](std::uint64_t peer,
                                                       bool up) {
        peer_route(s, peer, up);
      };
    }
    shards_.push_back(std::make_unique<TcpTransport>(std::move(shard_options)));
  }
}

ShardedTcpTransport::~ShardedTcpTransport() { stop(); }

void ShardedTcpTransport::stop() {
  // Stop in order: a still-live shard pushing to an already-stopped sibling
  // just parks packets in its MPSC queue (freed, uncounted, at destruction)
  // — the same silent-drop semantics any teardown race has.
  for (auto& shard : shards_) shard->stop();
}

// --- homes -------------------------------------------------------------------

Status ShardedTcpTransport::pin_home(NodeId id, std::size_t shard) {
  if (shard >= shards_.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "pin_home: shard out of range");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  home_[id.value] = shard;
  return Status::ok();
}

std::size_t ShardedTcpTransport::home_shard(NodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = home_.find(id.value);
  return it == home_.end() ? 0 : it->second;
}

std::size_t ShardedTcpTransport::assign_home(NodeId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto [it, inserted] = home_.try_emplace(id.value, next_home_);
  if (inserted) next_home_ = (next_home_ + 1) % shards_.size();
  return it->second;
}

// --- wiring ------------------------------------------------------------------

Result<std::uint16_t> ShardedTcpTransport::listen(NodeId id,
                                                  std::uint16_t port) {
  assign_home(id);
  // Shard 0 resolves an ephemeral port; the siblings join it (SO_REUSEPORT
  // makes the shared bind legal). A partial bind is reported as failure —
  // callers treat it like any listen error and the bound shards' listeners
  // are closed again on detach/destruction.
  auto first = shards_[0]->listen(id, port);
  if (!first) return first;
  const std::uint16_t actual = first.value();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    auto joined = shards_[s]->listen(id, actual);
    if (!joined) return joined.status();
  }
  return actual;
}

std::uint16_t ShardedTcpTransport::listen_port(NodeId id) const {
  return shards_[0]->listen_port(id);
}

Status ShardedTcpTransport::add_route(NodeId id, const std::string& host,
                                      std::uint16_t port) {
  for (auto& shard : shards_) {
    Status st = shard->add_route(id, host, port);
    if (!st.is_ok()) return st;
  }
  return Status::ok();
}

// --- Transport ---------------------------------------------------------------

void ShardedTcpTransport::attach(NodeId id, net::NetStackParams stack,
                                 DeliveryHandler handler) {
  shards_[assign_home(id)]->attach(id, stack, std::move(handler));
}

void ShardedTcpTransport::detach(NodeId id) {
  // Every shard may hold state for `id` (the home shard its handler, the
  // others listener-only entries); the home mapping itself stays — homes are
  // sticky so a detach/attach cycle (node restart in place) keeps its loop.
  for (auto& shard : shards_) shard->detach(id);
}

bool ShardedTcpTransport::attached(NodeId id) const {
  std::size_t h;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = home_.find(id.value);
    if (it == home_.end()) return false;
    h = it->second;
  }
  return shards_[h]->attached(id);
}

net::NodeCpu& ShardedTcpTransport::cpu(NodeId id) { return home(id).cpu(id); }

void ShardedTcpTransport::send(net::Packet packet) {
  TcpTransport& h = home(packet.src);
  if (shards_.size() == 1 || h.on_loop_thread()) {
    // On the home loop (the common case: protocol code sending from its own
    // callbacks) the send runs inline, exactly like the single-loop
    // transport.
    h.send(std::move(packet));
    return;
  }
  // Foreign thread or sibling loop: lock-free handoff to the home loop.
  h.post_send(std::move(packet));
}

void ShardedTcpTransport::crash(NodeId id) {
  // Fan out: every shard marks the endpoint crashed (so frames arriving on
  // ITS connections drop locally) and the shard-level liveness rule decides
  // whether that shard's connections die with it (tcp_transport.cpp).
  for (auto& shard : shards_) shard->crash(id);
}

void ShardedTcpTransport::recover(NodeId id) {
  for (auto& shard : shards_) shard->recover(id);
}

bool ShardedTcpTransport::is_crashed(NodeId id) const {
  return shards_[home_shard(id)]->is_crashed(id);
}

bool ShardedTcpTransport::overloaded(NodeId dst) const {
  for (const auto& shard : shards_) {
    if (shard->overloaded(dst)) return true;
  }
  return false;
}

void ShardedTcpTransport::reset_peer_connections(NodeId peer) {
  for (auto& shard : shards_) shard->reset_peer_connections(peer);
}

void ShardedTcpTransport::reset_all_connections() {
  for (auto& shard : shards_) shard->reset_all_connections();
}

// --- statistics --------------------------------------------------------------

std::uint64_t ShardedTcpTransport::packets_sent() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->packets_sent();
  return total;
}

std::uint64_t ShardedTcpTransport::packets_delivered() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->packets_delivered();
  return total;
}

std::uint64_t ShardedTcpTransport::packets_dropped() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->packets_dropped();
  return total;
}

std::uint64_t ShardedTcpTransport::bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->bytes_sent();
  return total;
}

std::uint64_t ShardedTcpTransport::packets_shed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->packets_shed();
  return total;
}

std::uint64_t ShardedTcpTransport::dials_attempted() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->dials_attempted();
  return total;
}

std::uint64_t ShardedTcpTransport::dials_failed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->dials_failed();
  return total;
}

std::uint64_t ShardedTcpTransport::accepts_shed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->accepts_shed();
  return total;
}

std::uint64_t ShardedTcpTransport::resets_injected() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->resets_injected();
  return total;
}

std::size_t ShardedTcpTransport::egress_backlog() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->egress_backlog();
  return total;
}

// --- cross-shard hooks (on shard `from`'s loop thread) -----------------------

bool ShardedTcpTransport::forward_delivery(std::size_t from,
                                           net::Packet&& packet) {
  std::size_t target;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = home_.find(packet.dst.value);
    // Unknown endpoint, or homed right here (detached/never attached): the
    // drop belongs to the shard that owns the miss.
    if (it == home_.end() || it->second == from) return false;
    target = it->second;
  }
  shards_[target]->post_delivery(std::move(packet));
  return true;
}

bool ShardedTcpTransport::forward_egress(std::size_t from,
                                         net::Packet&& packet) {
  enum class Hop { kNone, kDeliver, kForward };
  Hop hop = Hop::kNone;
  std::size_t target = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto hit = home_.find(packet.dst.value);
    if (hit != home_.end()) {
      // Destination co-hosted on this transport, homed on a sibling shard:
      // skip the wire entirely (the sharded analog of the single-loop
      // local-destination loopback).
      if (hit->second == from) return false;
      hop = Hop::kDeliver;
      target = hit->second;
    } else {
      const auto cit = conn_shards_.find(packet.dst.value);
      if (cit != conn_shards_.end()) {
        // Mask out the asking shard: if it owned a live connection it would
        // not be here.
        const std::uint32_t mask =
            cit->second & ~(std::uint32_t{1} << from);
        if (mask != 0) {
          hop = Hop::kForward;
          target = static_cast<std::size_t>(std::countr_zero(mask));
        }
      }
    }
  }
  switch (hop) {
    case Hop::kNone:
      return false;
    case Hop::kDeliver:
      packet.flatten();  // receivers only ever see contiguous payloads
      shards_[target]->post_delivery(std::move(packet));
      return true;
    case Hop::kForward:
      shards_[target]->post_forwarded_send(std::move(packet));
      return true;
  }
  return false;
}

void ShardedTcpTransport::peer_route(std::size_t from, std::uint64_t peer,
                                     bool up) {
  const std::uint32_t bit = std::uint32_t{1} << from;
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (up) {
    conn_shards_[peer] |= bit;
    return;
  }
  const auto it = conn_shards_.find(peer);
  if (it == conn_shards_.end()) return;
  it->second &= ~bit;
  if (it->second == 0) conn_shards_.erase(it);
}

}  // namespace recipe::transport
