// RetryPolicy: the one retry/backoff vocabulary for every caller-side
// resend loop in the stack.
//
// Before this existed each layer improvised: KvClient retransmitted with a
// fixed per-attempt timeout and zero spacing, TcpCluster::retry_op slept a
// flat 50 ms between re-routed attempts, and nothing distinguished "the
// network ate it, try again" from "this request can never succeed". The
// policy pins down all three dimensions:
//
//   * per-attempt response timeout — grows geometrically (timeout_growth)
//     from initial_timeout up to max_timeout, so a congested link gets
//     progressively more slack instead of a retransmit storm;
//   * backoff between attempts — decorrelated jitter (Brooker/AWS style):
//     sleep = min(max_backoff, uniform(base_backoff, prev * 3)). Retries
//     from many clients de-synchronize instead of stampeding the same
//     coordinator on the same schedule;
//   * budget — max_attempts and an optional wall-clock deadline for the
//     whole operation. Whichever trips first ends the op.
//
// Classification is static: fatal(code) says whether a reply's error can
// EVER be fixed by resending the same bytes. Timeouts, quorum loss,
// overload and stale-view redirects are retryable; authentication,
// integrity, rollback and malformed-argument failures are not — retrying a
// MAC rejection just feeds the adversary the same ciphertext again.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "sim/clock.h"

namespace recipe::rpc {

struct RetryPolicy {
  // Response timeout for attempt 0; grows by timeout_growth per attempt,
  // clamped to max_timeout.
  sim::Time initial_timeout = 500 * sim::kMillisecond;
  double timeout_growth = 1.5;
  sim::Time max_timeout = 2 * sim::kSecond;

  // Total attempts (first try included). The op fails after the last one.
  int max_attempts = 3;

  // Decorrelated-jitter backoff bounds between attempts.
  sim::Time base_backoff = 10 * sim::kMillisecond;
  sim::Time max_backoff = 1 * sim::kSecond;

  // Whole-op budget measured from the first attempt; 0 = no deadline. An
  // attempt (or backoff sleep) that would start past the deadline is not
  // taken — the op fails with whatever error the last attempt produced.
  sim::Time deadline = 0;

  sim::Time attempt_timeout(int attempt) const {
    double t = static_cast<double>(initial_timeout);
    for (int i = 0; i < attempt; ++i) t *= timeout_growth;
    const double cap = static_cast<double>(max_timeout);
    return static_cast<sim::Time>(std::min(t, cap));
  }

  // Decorrelated jitter: each sleep is drawn uniformly from
  // [base_backoff, prev * 3], clamped to max_backoff. Pass the previous
  // return value back in (0 for the first backoff).
  sim::Time next_backoff(sim::Time prev, Rng& rng) const {
    const sim::Time lo = std::max<sim::Time>(base_backoff, 1);
    const sim::Time hi = std::max<sim::Time>(lo, 3 * std::max(prev, lo));
    const sim::Time drawn = rng.range(lo, hi);
    return std::min(drawn, std::max(max_backoff, lo));
  }

  // True when resending the same request cannot help: the failure is a
  // property of the request or the security state, not of the network.
  static bool fatal(ErrorCode code) {
    switch (code) {
      case ErrorCode::kInvalidArgument:
      case ErrorCode::kAuthFailed:
      case ErrorCode::kReplay:
      case ErrorCode::kIntegrityViolation:
      case ErrorCode::kNotAttested:
      case ErrorCode::kRollback:
      case ErrorCode::kInternal:
        return true;
      case ErrorCode::kOk:
      case ErrorCode::kNotFound:
      case ErrorCode::kAlreadyExists:
      case ErrorCode::kOutOfOrder:
      case ErrorCode::kWrongView:
      case ErrorCode::kUnavailable:
      case ErrorCode::kTimeout:
      case ErrorCode::kOverloaded:
        return false;
    }
    return false;
  }
};

}  // namespace recipe::rpc
