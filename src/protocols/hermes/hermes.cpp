#include "protocols/hermes/hermes.h"

#include "recipe/quorum.h"

namespace recipe::protocols {

namespace {
Bytes encode_ts(kv::Timestamp ts) {
  Writer w;
  w.u64(ts.counter);
  w.u64(ts.node);
  return std::move(w).take();
}

std::optional<kv::Timestamp> decode_ts(Reader& r) {
  auto counter = r.u64();
  auto node = r.u64();
  if (!counter || !node) return std::nullopt;
  return kv::Timestamp{*counter, *node};
}
}  // namespace

HermesNode::HermesNode(sim::Clock& clock, net::Transport& network,
                       ReplicaOptions options)
    : ReplicaNode(clock, network, std::move(options)) {
  on(hermes_msg::kInv, [this](VerifiedEnvelope& env, rpc::RequestContext& ctx) {
    Reader r(as_view(env.payload));
    auto key = r.str();
    auto value = r.bytes();
    auto ts = decode_ts(r);
    if (!key || !value || !ts) return;
    lamport_ = std::max(lamport_, ts->counter);

    // Accept the newer version, mark INVALID until validated.
    if (kv_write(*key, as_view(*value), *ts)) {
      const auto it = invalid_.find(*key);
      if (it == invalid_.end() || it->second < *ts) invalid_[*key] = *ts;
    }
    // A shadow applies the teed write but must not ack: a write only
    // commits once ALL counted replicas hold it, and we are not counted.
    if (is_shadow()) return;
    Writer ack;
    ack.raw(as_view(encode_ts(*ts)));
    respond(ctx, env.sender, as_view(ack.buffer()));
  });

  on(hermes_msg::kVal, [this](VerifiedEnvelope& env, rpc::RequestContext&) {
    (void)env;
    Reader r(as_view(env.payload));
    auto key = r.str();
    auto ts = decode_ts(r);
    if (!key || !ts) return;
    const auto it = invalid_.find(*key);
    if (it != invalid_.end() && it->second <= *ts) {
      invalid_.erase(it);
      flush_stalled(*key);
    }
  });
}

std::vector<NodeId> HermesNode::live_peers() const {
  std::vector<NodeId> out;
  for (NodeId n : membership()) {
    if (n != self() && !dead_.contains(n)) out.push_back(n);
  }
  return out;
}

void HermesNode::submit(const ClientRequest& request, ReplyFn reply) {
  if (request.op == OpType::kGet) {
    serve_local_read(request.key, std::move(reply));
    return;
  }

  // Write: INV to all live replicas, commit on ALL acks, then VAL.
  const kv::Timestamp ts{++lamport_, self().value};
  const std::string key = request.key;
  kv_write(key, as_view(request.value), ts);
  invalid_[key] = ts;

  const auto peers = live_peers();
  auto quorum_tracker = std::make_shared<QuorumTracker>(
      peers.size() + 1, [this, key, ts, reply = std::move(reply)] {
        // All live replicas hold the version: committed. Validate everywhere
        // (shadows too — their dirtiness tracking mirrors ours).
        Writer val;
        val.str(key);
        val.raw(as_view(encode_ts(ts)));
        for (NodeId peer : live_peers()) {
          send_to(peer, hermes_msg::kVal, as_view(val.buffer()));
        }
        for (NodeId peer : shadow_peers()) {
          send_to(peer, hermes_msg::kVal, as_view(val.buffer()));
        }
        const auto it = invalid_.find(key);
        if (it != invalid_.end() && it->second <= ts) {
          invalid_.erase(it);
          flush_stalled(key);
        }
        ClientReply r;
        r.ok = true;
        reply(r);
      });
  quorum_tracker->ack(self());

  Writer inv;
  inv.str(key);
  inv.bytes(as_view(request.value));
  inv.raw(as_view(encode_ts(ts)));
  for (NodeId peer : peers) {
    send_to(peer, hermes_msg::kInv, as_view(inv.buffer()),
            [quorum_tracker](VerifiedEnvelope& env) {
              quorum_tracker->ack(env.sender);
            });
  }
  // Live-traffic tee: shadows apply the INV (and the VAL above) but their
  // ack is neither expected nor counted.
  for (NodeId peer : shadow_peers()) {
    send_to(peer, hermes_msg::kInv, as_view(inv.buffer()));
  }
}

void HermesNode::serve_local_read(const std::string& key, ReplyFn reply) {
  if (invalid_.contains(key)) {
    // Key is being written: stall until the VAL arrives (linearizability).
    ++stalled_reads_;
    stalled_[key].push_back(std::move(reply));
    return;
  }
  auto value = kv_get(key);
  ClientReply r;
  r.ok = true;
  r.found = value.is_ok();
  if (value.is_ok()) r.value = std::move(value.value().value);
  reply(r);
}

void HermesNode::flush_stalled(const std::string& key) {
  const auto it = stalled_.find(key);
  if (it == stalled_.end()) return;
  std::deque<ReplyFn> waiting = std::move(it->second);
  stalled_.erase(it);
  for (ReplyFn& reply : waiting) serve_local_read(key, std::move(reply));
}

void HermesNode::on_suspected(NodeId peer) {
  dead_.insert(peer);
  // Writes blocked on the dead peer's ack cannot complete; Hermes replays
  // writes as new coordinators in the full protocol. Here the client-side
  // retransmission re-drives the write through a live coordinator, and the
  // timestamp order makes the replay idempotent.
}

void HermesNode::on_peer_shadow(NodeId peer) {
  // A shadow holds no write quorum slot: writes must commit on the live
  // set without it (its copy arrives via the tee).
  dead_.insert(peer);
}

void HermesNode::on_peer_promoted(NodeId peer) { dead_.erase(peer); }

void HermesNode::replay_write(const std::string& key) {
  // Re-drive INV/VAL for a version this replica holds but whose VAL it
  // missed (Hermes write replay): idempotent by timestamp everywhere.
  auto value = kv_get(key);
  if (!value.is_ok()) {
    invalid_.erase(key);  // nothing to replay (value unreadable): unwedge
    flush_stalled(key);
    return;
  }
  const kv::Timestamp replay_ts = value.value().timestamp;
  auto held = std::make_shared<Bytes>(std::move(value.value().value));
  const auto peers = live_peers();
  auto quorum_tracker = std::make_shared<QuorumTracker>(
      peers.size() + 1, [this, key, replay_ts] {
        Writer val;
        val.str(key);
        val.raw(as_view(encode_ts(replay_ts)));
        for (NodeId peer : live_peers()) {
          send_to(peer, hermes_msg::kVal, as_view(val.buffer()));
        }
        const auto it = invalid_.find(key);
        if (it != invalid_.end() && it->second <= replay_ts) {
          invalid_.erase(it);
          flush_stalled(key);
        }
      });
  quorum_tracker->ack(self());
  Writer inv;
  inv.str(key);
  inv.bytes(as_view(*held));
  inv.raw(as_view(encode_ts(replay_ts)));
  for (NodeId peer : peers) {
    send_to(peer, hermes_msg::kInv, as_view(inv.buffer()),
            [quorum_tracker](VerifiedEnvelope& env) {
              quorum_tracker->ack(env.sender);
            });
  }
}

void HermesNode::on_promoted() {
  // Resume the Lamport clock from the recovered store: catch-up installs
  // bypass the INV path, so without this a promoted coordinator could stamp
  // new writes OLDER than versions it already holds — the write would ack
  // (replicas ack INVs regardless of staleness) yet never become visible.
  kv().scan([this](std::string_view, const kv::Timestamp& ts) {
    lamport_ = std::max(lamport_, ts.counter);
    return true;
  });
  // Keys still INVALID after catch-up missed their VAL while we were
  // shadow; replay each pending write as a fresh coordinator to heal them
  // (serving them blindly could expose an uncommitted version).
  std::vector<std::pair<std::string, kv::Timestamp>> pending(invalid_.begin(),
                                                             invalid_.end());
  for (const auto& [key, ts] : pending) {
    (void)ts;
    replay_write(key);
  }
}

}  // namespace recipe::protocols
